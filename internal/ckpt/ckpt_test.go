package ckpt

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

const pageSize = 4096

func TestKindString(t *testing.T) {
	if Full.String() != "full" || Incremental.String() != "incremental" {
		t.Fatal("Kind strings")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := &Segment{
		Rank:     3,
		Seq:      7,
		Epoch:    5,
		Kind:     Incremental,
		PageSize: pageSize,
		TakenAt:  42 * des.Second,
		Regions: []RegionInfo{
			{Start: 0x1000, Size: 0x4000, Kind: mem.Data},
			{Start: 0x10000, Size: 0x8000, Kind: mem.Mmap},
		},
		Pages: []PageRecord{
			{Addr: 0x1000, Data: bytes.Repeat([]byte{0xAB}, pageSize)},
			{Addr: 0x2000, Data: nil}, // zero page, elided
		},
	}
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rank != 3 || dec.Seq != 7 || dec.Epoch != 5 || dec.Kind != Incremental {
		t.Fatalf("header mismatch: %+v", dec)
	}
	if dec.TakenAt != 42*des.Second || dec.PageSize != pageSize {
		t.Fatalf("header mismatch: %+v", dec)
	}
	if len(dec.Regions) != 2 || dec.Regions[1].Kind != mem.Mmap {
		t.Fatalf("regions: %+v", dec.Regions)
	}
	if len(dec.Pages) != 2 || !bytes.Equal(dec.Pages[0].Data, seg.Pages[0].Data) {
		t.Fatal("pages mismatch")
	}
	if dec.Pages[1].Data != nil {
		t.Fatal("zero page not elided")
	}
	if dec.PageBytes() != 2*pageSize {
		t.Fatalf("PageBytes = %d", dec.PageBytes())
	}
}

func TestSegmentContentFreeRoundTrip(t *testing.T) {
	seg := &Segment{
		Rank: 1, Seq: 0, Kind: Full, ContentFree: true, PageSize: pageSize,
		Pages: []PageRecord{{Addr: 0x1000}, {Addr: 0x2000}},
	}
	dec, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ContentFree || len(dec.Pages) != 2 || dec.Pages[0].Addr != 0x1000 {
		t.Fatalf("content-free round trip: %+v", dec)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("ICKP"),
		append([]byte("ICKP"), 99, 0, 0, 0), // bad version
	}
	for i, c := range cases {
		if _, err := DecodeSegment(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncations of a valid segment must all fail (not panic).
	seg := &Segment{Rank: 1, PageSize: pageSize, Kind: Full,
		Regions: []RegionInfo{{Start: 0x1000, Size: 0x1000, Kind: mem.Data}},
		Pages:   []PageRecord{{Addr: 0x1000, Data: make([]byte, pageSize)}}}
	enc := seg.Encode()
	for cut := 0; cut < len(enc); cut += 97 {
		if _, err := DecodeSegment(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeSegment(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// Property: encode/decode round-trips random segments.
func TestPropertySegmentRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		seg := &Segment{
			Rank:     rng.IntN(64),
			Seq:      rng.Uint64N(1000),
			Epoch:    rng.Uint64N(100),
			Kind:     Kind(rng.IntN(2)),
			PageSize: 512,
			TakenAt:  des.Time(rng.Int64N(1e12)),
		}
		for i := 0; i < rng.IntN(5); i++ {
			seg.Regions = append(seg.Regions, RegionInfo{
				Start: rng.Uint64N(1<<40) &^ 511,
				Size:  uint64(rng.IntN(100)+1) * 512,
				Kind:  mem.Kind(rng.IntN(4)),
			})
		}
		for i := 0; i < rng.IntN(8); i++ {
			p := PageRecord{Addr: rng.Uint64N(1<<40) &^ 511}
			if rng.IntN(2) == 0 {
				p.Data = make([]byte, 512)
				for j := range p.Data {
					p.Data[j] = byte(rng.IntN(256))
				}
			}
			seg.Pages = append(seg.Pages, p)
		}
		dec, err := DecodeSegment(seg.Encode())
		if err != nil {
			return false
		}
		if dec.Rank != seg.Rank || dec.Seq != seg.Seq || dec.Kind != seg.Kind ||
			len(dec.Regions) != len(seg.Regions) || len(dec.Pages) != len(seg.Pages) {
			return false
		}
		for i := range seg.Pages {
			if dec.Pages[i].Addr != seg.Pages[i].Addr || !bytes.Equal(dec.Pages[i].Data, seg.Pages[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newCkpt(t *testing.T) (*des.Engine, *mem.AddressSpace, *Checkpointer, *storage.MemStore) {
	t.Helper()
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	store := storage.NewMemStore()
	c, err := NewCheckpointer(eng, sp, Options{Rank: 0, Store: store, FullEvery: 4, TrackCow: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sp, c, store
}

func TestCheckpointerValidation(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	if _, err := NewCheckpointer(eng, sp, Options{}); err == nil {
		t.Fatal("nil store accepted")
	}
	c, _ := NewCheckpointer(eng, sp, Options{Store: storage.NewMemStore()})
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint before Start succeeded")
	}
}

func TestFullThenIncremental(t *testing.T) {
	_, sp, c, _ := newCkpt(t)
	r, _ := sp.Mmap(10 * pageSize)
	sp.Write(r.Start(), []byte("before"))
	c.Start()

	res1, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Kind != Full || res1.Pages != 10 {
		t.Fatalf("first checkpoint: %+v", res1)
	}
	// Dirty 2 pages, then incremental.
	sp.Write(r.Start()+pageSize, bytes.Repeat([]byte{1}, 2*pageSize))
	res2, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Kind != Incremental || res2.Pages != 2 {
		t.Fatalf("second checkpoint: %+v", res2)
	}
	// Nothing dirty: empty delta.
	res3, _ := c.Checkpoint()
	if res3.Kind != Incremental || res3.Pages != 0 {
		t.Fatalf("third checkpoint: %+v", res3)
	}
	// FullEvery=4: the fifth (seq 4) is full again.
	c.Checkpoint()
	res5, _ := c.Checkpoint()
	if res5.Kind != Full || res5.Seq != 4 || res5.Epoch != 4 {
		t.Fatalf("fifth checkpoint: %+v", res5)
	}
	st := c.Stats()
	if st.Checkpoints != 5 || st.FullPages != 20 || st.DeltaPages != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCheckpointDurationModel(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	sink := storage.Model{Name: "x", Bandwidth: float64(pageSize)} // 1 page/s
	c, _ := NewCheckpointer(eng, sp, Options{Store: storage.NewMemStore(), Sink: sink})
	r, _ := sp.Mmap(3 * pageSize)
	_ = r
	c.Start()
	res, _ := c.Checkpoint()
	if res.Duration != 3*des.Second {
		t.Fatalf("duration = %v, want 3s", res.Duration)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	eng, sp, c, store := newCkpt(t)
	d := sp.MapData(2 * pageSize)
	sp.Sbrk(3 * pageSize)
	m, _ := sp.Mmap(4 * pageSize)
	heap := sp.Heap()

	write := func(addr uint64, val byte, n int) {
		sp.Write(addr, bytes.Repeat([]byte{val}, n))
	}
	write(d.Start(), 0xD0, 100)
	write(heap.Start()+pageSize, 0xE0, 2*pageSize)
	write(m.Start(), 0xF0, 300)
	c.Start()
	c.Checkpoint() // seq 0: full

	eng.Schedule(des.Second, func() {
		write(m.Start()+2*pageSize, 0xF1, pageSize)
		write(d.Start()+pageSize, 0xD1, 10)
	})
	eng.Run(des.MaxTime)
	c.Checkpoint() // seq 1: delta

	// Restore into a fresh space and compare every checkpointable byte.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	if err := Restore(store, 0, 1, fresh); err != nil {
		t.Fatal(err)
	}
	for _, r := range sp.Regions() {
		if !r.Kind().Checkpointable() {
			continue
		}
		want := make([]byte, r.Size())
		got := make([]byte, r.Size())
		if err := sp.Read(r.Start(), want); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Read(r.Start(), got); err != nil {
			t.Fatalf("restored space missing %v region: %v", r.Kind(), err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%v region contents differ after restore", r.Kind())
		}
	}
	// Restored heap is usable.
	if fresh.Heap() == nil || fresh.Heap().Size() != 3*pageSize {
		t.Fatal("heap not reconstructed")
	}
}

func TestRestoreValidation(t *testing.T) {
	_, _, c, store := newCkpt(t)
	_ = c
	phantom := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
	if err := Restore(store, 0, 0, phantom); err == nil {
		t.Fatal("phantom restore accepted")
	}
	occupied := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	occupied.Mmap(pageSize)
	if err := Restore(store, 0, 0, occupied); err == nil {
		t.Fatal("occupied restore target accepted")
	}
	clean := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	if err := Restore(store, 0, 99, clean); err == nil {
		t.Fatal("missing segment accepted")
	}
}

func TestMemoryExclusionInCheckpoint(t *testing.T) {
	_, sp, c, _ := newCkpt(t)
	keep, _ := sp.Mmap(2 * pageSize)
	c.Start()
	c.Checkpoint() // full baseline
	temp, _ := sp.Mmap(8 * pageSize)
	sp.WriteRange(temp.Start(), 8*pageSize)
	sp.WriteRange(keep.Start(), pageSize)
	sp.Munmap(temp)
	res, _ := c.Checkpoint()
	if res.Pages != 1 {
		t.Fatalf("delta pages = %d, want 1 (exclusion failed)", res.Pages)
	}
	if res.ExcludedPages != 8 {
		t.Fatalf("excluded = %d, want 8", res.ExcludedPages)
	}
}

func TestExcludedRegionNotCaptured(t *testing.T) {
	_, sp, c, _ := newCkpt(t)
	bounce, _ := sp.Mmap(4 * pageSize)
	c.Exclude(bounce)
	c.Start()
	res, _ := c.Checkpoint()
	if res.Pages != 0 {
		t.Fatalf("full checkpoint captured %d pages of excluded region", res.Pages)
	}
	sp.WriteRange(bounce.Start(), 4*pageSize)
	res2, _ := c.Checkpoint()
	if res2.Pages != 0 {
		t.Fatalf("delta captured %d excluded pages", res2.Pages)
	}
}

func TestCowAccounting(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	// Sink slow enough that the drain covers subsequent writes:
	// 10 pages at 1 page/s = 10 s drain.
	sink := storage.Model{Name: "slow", Bandwidth: float64(pageSize)}
	store := storage.NewMemStore()
	c, _ := NewCheckpointer(eng, sp, Options{Store: store, Sink: sink, TrackCow: true})
	r, _ := sp.Mmap(10 * pageSize)
	c.Start()
	sp.WriteRange(r.Start(), 10*pageSize)
	eng.Schedule(des.Second, func() {
		if _, err := c.Checkpoint(); err != nil { // delta of 10 pages, 10s drain
			t.Error(err)
		}
	})
	// Writes during the drain to 3 captured pages → 3 CoW copies.
	eng.Schedule(2*des.Second, func() { sp.WriteRange(r.Start(), 3*pageSize) })
	// Rewriting the same pages again during the drain: no double count
	// (the pre-image is copied once).
	eng.Schedule(3*des.Second, func() {
		sp.UnprotectAllData() // force re-faults via re-protection below
		c.protectAll()
		sp.WriteRange(r.Start(), 3*pageSize)
	})
	// Writes after the drain completes don't count.
	eng.Schedule(20*des.Second, func() { sp.WriteRange(r.Start()+5*pageSize, pageSize) })
	eng.Run(des.MaxTime)
	if got := c.Stats().CowCopyBytes; got != 3*pageSize {
		t.Fatalf("CowCopyBytes = %d, want %d", got, 3*pageSize)
	}
	// The first checkpoint (seq 0) was full; wait — this test's first
	// checkpoint is seq 0 and therefore Full. Its pages: 10.
	if c.Stats().FullPages != 10 {
		t.Fatalf("FullPages = %d", c.Stats().FullPages)
	}
}

func TestHandlerChainingWithSecondConsumer(t *testing.T) {
	// A second fault consumer (like a tracker) installed after the
	// checkpointer still sees faults, and both dirty views agree.
	_, sp, c, _ := newCkpt(t)
	r, _ := sp.Mmap(6 * pageSize)
	c.Start()
	c.Checkpoint()
	var seen int
	prev := sp.SetFaultHandler(nil)
	sp.SetFaultHandler(func(f mem.Fault) {
		seen++
		f.Region.SetProtected(f.Page, false)
		if prev != nil {
			prev(f)
		}
	})
	sp.WriteRange(r.Start(), 4*pageSize)
	res, _ := c.Checkpoint()
	if seen != 4 {
		t.Fatalf("outer handler saw %d faults", seen)
	}
	if res.Pages != 4 {
		t.Fatalf("checkpointer captured %d pages under chaining", res.Pages)
	}
}

func TestCoordinator(t *testing.T) {
	eng := des.NewEngine()
	store := storage.NewMemStore()
	var cps []*Checkpointer
	var spaces []*mem.AddressSpace
	for i := 0; i < 4; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
		sp.Mmap(uint64(i+1) * pageSize)
		c, _ := NewCheckpointer(eng, sp, Options{Rank: i, Store: store})
		c.Start()
		cps = append(cps, c)
		spaces = append(spaces, sp)
	}
	co, err := NewCoordinator(eng, cps)
	if err != nil {
		t.Fatal(err)
	}
	var globals int
	co.OnGlobal = func(GlobalResult) { globals++ }
	co.StartInterval(des.Second)
	eng.Run(3 * des.Second)
	co.Stop()
	if globals != 3 {
		t.Fatalf("global checkpoints = %d, want 3", globals)
	}
	rs := co.Results()
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	// First global: full checkpoints of 1+2+3+4 = 10 pages.
	if rs[0].TotalPageBytes != 10*pageSize {
		t.Fatalf("global 0 bytes = %d", rs[0].TotalPageBytes)
	}
	// MaxDuration comes from the largest rank (4 pages on SCSI).
	want := storage.SCSISink().WriteTime(4 * pageSize)
	if rs[0].MaxDuration != want {
		t.Fatalf("MaxDuration = %v, want %v", rs[0].MaxDuration, want)
	}
	if _, err := NewCoordinator(eng, nil); err == nil {
		t.Fatal("empty coordinator accepted")
	}
}

// Property: for random write/checkpoint interleavings, restoring the last
// checkpoint reproduces exactly the state at that checkpoint.
func TestPropertyCheckpointRestoreIdentity(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		eng := des.NewEngine()
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		store := storage.NewMemStore()
		c, _ := NewCheckpointer(eng, sp, Options{Store: store, FullEvery: 3})
		const pages = 32
		r, _ := sp.Mmap(pages * 512)
		c.Start()
		var lastSeq uint64
		var snapshot []byte
		did := false
		for i := 0; i < int(nOps%30)+2; i++ {
			if rng.IntN(3) == 0 {
				res, err := c.Checkpoint()
				if err != nil {
					return false
				}
				lastSeq = res.Seq
				snapshot = make([]byte, pages*512)
				sp.Read(r.Start(), snapshot)
				did = true
			} else {
				off := uint64(rng.IntN(pages * 512))
				n := uint64(rng.IntN(2048) + 1)
				if off+n > pages*512 {
					n = pages*512 - off
				}
				if n == 0 {
					continue
				}
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(rng.IntN(256))
				}
				if sp.Write(r.Start()+off, data) != nil {
					return false
				}
			}
		}
		if !did {
			return true
		}
		fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
		if err := Restore(store, 0, lastSeq, fresh); err != nil {
			return false
		}
		got := make([]byte, pages*512)
		if fresh.Read(r.Start(), got) != nil {
			return false
		}
		return bytes.Equal(got, snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSegmentMissing(t *testing.T) {
	store := storage.NewMemStore()
	if _, err := LoadSegment(store, 0, 0); err == nil {
		t.Fatal("missing segment loaded")
	}
	store.Put("rank000/seg000000", []byte("garbage"))
	if _, err := LoadSegment(store, 0, 0); err == nil {
		t.Fatal("garbage segment loaded")
	}
}

func BenchmarkIncrementalCheckpoint(b *testing.B) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	store := storage.NewMemStore()
	c, _ := NewCheckpointer(eng, sp, Options{Store: store})
	r, _ := sp.Mmap(1024 * pageSize)
	c.Start()
	c.Checkpoint()
	b.SetBytes(64 * pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.WriteRange(r.Start(), 64*pageSize)
		if _, err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
