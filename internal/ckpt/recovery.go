package ckpt

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mem"
	"repro/internal/storage"
)

// Cluster-level recovery helpers: after a failure, every rank must roll
// back to the same coordinated checkpoint, or messages exchanged between
// ranks would straddle the recovery line. Coordinated checkpoints give
// each global checkpoint the same per-rank sequence number, so the
// recovery line is simply the largest sequence present in the store for
// *all* ranks.

// LatestConsistentSeq scans the store and returns the largest segment
// sequence number persisted by every one of the given ranks — the most
// recent consistent recovery line. ok is false when some rank has no
// segment at all.
func LatestConsistentSeq(store storage.Store, ranks int) (seq uint64, ok bool, err error) {
	keys, err := store.Keys()
	if err != nil {
		return 0, false, err
	}
	// maxSeq[r] is the largest contiguous-or-not sequence seen per rank;
	// consistency needs the *minimum across ranks* of those maxima, and
	// the chosen seq must exist for every rank — with coordinated
	// checkpointing sequences are dense, so min-of-max suffices.
	maxSeq := make(map[int]uint64, ranks)
	seen := make(map[int]bool, ranks)
	for _, k := range keys {
		var rank int
		var s uint64
		if !ParseSegmentKey(k, &rank, &s) {
			continue
		}
		if rank < 0 || rank >= ranks {
			continue
		}
		if !seen[rank] || s > maxSeq[rank] {
			maxSeq[rank] = s
		}
		seen[rank] = true
	}
	if len(seen) < ranks {
		return 0, false, nil
	}
	first := true
	for r := 0; r < ranks; r++ {
		if first || maxSeq[r] < seq {
			seq = maxSeq[r]
			first = false
		}
	}
	return seq, true, nil
}

// SegmentKey returns the store key of one rank's segment — the layout
// Checkpointer.Checkpoint writes and ParseSegmentKey parses.
func SegmentKey(rank int, seq uint64) string {
	return fmt.Sprintf("rank%03d/seg%06d", rank, seq)
}

// ParseSegmentKey parses a store key of the form "rankNNN/segNNNNNN",
// the layout written by Checkpointer.Checkpoint. Either out-pointer may
// be nil when the caller only needs the other field (or just the match).
func ParseSegmentKey(key string, rank *int, seq *uint64) bool {
	parts := strings.Split(key, "/")
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "rank") || !strings.HasPrefix(parts[1], "seg") {
		return false
	}
	r, err := strconv.Atoi(strings.TrimPrefix(parts[0], "rank"))
	if err != nil {
		return false
	}
	s, err := strconv.ParseUint(strings.TrimPrefix(parts[1], "seg"), 10, 64)
	if err != nil {
		return false
	}
	if rank != nil {
		*rank = r
	}
	if seq != nil {
		*seq = s
	}
	return true
}

// Prune deletes segments that can no longer participate in any restore:
// everything below each rank's newest chain base (the epoch of its
// latest segment). Restores target the latest consistent line or later,
// and every chain is self-contained from its base full segment, so older
// epochs are garbage. It returns the number of segments deleted and the
// bytes reclaimed.
func Prune(store storage.Store, ranks int) (deleted int, reclaimed uint64, err error) {
	keys, err := store.Keys()
	if err != nil {
		return 0, 0, err
	}
	// Find each rank's newest segment, then its epoch.
	newest := make(map[int]uint64, ranks)
	seen := make(map[int]bool, ranks)
	for _, k := range keys {
		var rank int
		var s uint64
		if !ParseSegmentKey(k, &rank, &s) || rank < 0 || rank >= ranks {
			continue
		}
		if !seen[rank] || s > newest[rank] {
			newest[rank] = s
		}
		seen[rank] = true
	}
	floor := make(map[int]uint64, ranks)
	for rank := range seen {
		seg, err := LoadSegment(store, rank, newest[rank])
		if err != nil {
			return 0, 0, fmt.Errorf("ckpt: prune: %w", err)
		}
		floor[rank] = seg.Epoch
	}
	for _, k := range keys {
		var rank int
		var s uint64
		if !ParseSegmentKey(k, &rank, &s) || !seen[rank] {
			continue
		}
		if s < floor[rank] {
			data, err := store.Get(k)
			if err != nil {
				return deleted, reclaimed, err
			}
			if err := store.Delete(k); err != nil {
				return deleted, reclaimed, err
			}
			deleted++
			reclaimed += uint64(len(data))
		}
	}
	return deleted, reclaimed, nil
}

// ChainVolume returns the total encoded bytes that a restore of the
// given rank to targetSeq must read: the chain's base full segment plus
// every delta up to the target. Together with a sink's read bandwidth
// this gives the restart-cost term of the efficiency model.
func ChainVolume(store storage.Store, rank int, targetSeq uint64) (uint64, error) {
	target, err := LoadSegment(store, rank, targetSeq)
	if err != nil {
		return 0, err
	}
	var total uint64
	for seq := target.Epoch; seq <= targetSeq; seq++ {
		data, err := store.Get(SegmentKey(rank, seq))
		if err != nil {
			return 0, fmt.Errorf("ckpt: chain segment %d: %w", seq, err)
		}
		total += uint64(len(data))
	}
	return total, nil
}

// RestoreError identifies exactly where a multi-rank restore failed:
// which rank's chain, at which coordinated sequence, and why. Callers
// unwrap the cause with the standard taxonomy — errors.Is(err,
// storage.ErrNotFound) distinguishes a rank whose segment is simply
// missing from errors.Is(err, storage.ErrCorrupt), a segment whose
// bytes failed integrity or decode — and so can report (or route
// around) a torn line precisely instead of guessing from message text.
type RestoreError struct {
	// Rank is the rank whose restore chain failed.
	Rank int
	// Seq is the coordinated recovery line being restored.
	Seq uint64
	// Err is the underlying cause, wrapped for errors.Is/As.
	Err error
}

// Error implements error.
func (e *RestoreError) Error() string {
	return fmt.Sprintf("ckpt: restore rank %d to line %d: %v", e.Rank, e.Seq, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *RestoreError) Unwrap() error { return e.Err }

// RestoreAll restores every rank to the given coordinated sequence
// number, returning one fresh address space per rank. Page size is taken
// from rank 0's target segment. Any per-rank failure is returned as a
// *RestoreError naming the rank and sequence that failed, with the
// cause wrapped.
func RestoreAll(store storage.Store, ranks int, seq uint64) ([]*mem.AddressSpace, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("ckpt: RestoreAll with %d ranks", ranks)
	}
	base, err := LoadSegment(store, 0, seq)
	if err != nil {
		return nil, &RestoreError{Rank: 0, Seq: seq, Err: err}
	}
	spaces := make([]*mem.AddressSpace, ranks)
	for r := 0; r < ranks; r++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: base.PageSize})
		if err := Restore(store, r, seq, sp); err != nil {
			return nil, &RestoreError{Rank: r, Seq: seq, Err: err}
		}
		spaces[r] = sp
	}
	return spaces, nil
}
