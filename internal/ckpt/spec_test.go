package ckpt

import (
	"testing"

	"repro/internal/ckptspec"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// TestExcludeDataDroppedButRestored is the spec-exclusion contract:
// an ExcludeData'd region is never protected or captured, yet it stays
// in every segment's region table so a restore recreates it at its
// original address — zero-filled, ready for a recompute hook.
func TestExcludeDataDroppedButRestored(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
	keep, err := sp.Mmap(2 * 512)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := sp.Mmap(2 * 512)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore()
	c, err := NewCheckpointer(eng, sp, Options{Store: store, FullEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.ExcludeData(scratch)
	c.ExcludeData(scratch) // idempotent
	c.Start()
	defer c.Stop()

	pattern := make([]byte, 512)
	for i := range pattern {
		pattern[i] = byte(i)
	}
	for _, r := range []*mem.Region{keep, scratch} {
		if err := sp.Write(r.Start(), pattern); err != nil {
			t.Fatal(err)
		}
	}
	// The excluded region is unprotected: its write took no fault and
	// left no dirty record. The kept region faulted normally.
	if c.dirty[scratch] != nil && c.dirty[scratch].CountBelow(scratch.Pages()) != 0 {
		t.Fatalf("excluded region accumulated dirty pages")
	}
	if c.dirty[keep] == nil || c.dirty[keep].CountBelow(keep.Pages()) != 1 {
		t.Fatalf("kept region did not fault")
	}

	// Full capture: only the kept region's pages.
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != Full || res.Pages != keep.Pages() {
		t.Fatalf("full captured %d pages (kind %v), want %d", res.Pages, res.Kind, keep.Pages())
	}
	// Incremental after rewriting both: still only the kept page.
	for _, r := range []*mem.Region{keep, scratch} {
		if err := sp.Write(r.Start(), pattern); err != nil {
			t.Fatal(err)
		}
	}
	res, err = c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != Incremental || res.Pages != 1 {
		t.Fatalf("incremental captured %d pages (kind %v), want 1", res.Pages, res.Kind)
	}

	// Restore recreates BOTH regions — the excluded one zero-filled.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
	if err := Restore(store, 0, 1, fresh); err != nil {
		t.Fatal(err)
	}
	var mmaps int
	for _, r := range fresh.Regions() {
		if r.Kind() == mem.Mmap {
			mmaps++
		}
	}
	if mmaps != 2 {
		t.Fatalf("restored %d mmap regions, want 2", mmaps)
	}
	got := make([]byte, 512)
	if err := fresh.Read(keep.Start(), got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != pattern[i] {
			t.Fatalf("kept region byte %d = %d, want %d", i, got[i], pattern[i])
		}
	}
	if err := fresh.Read(scratch.Start(), got); err != nil {
		t.Fatalf("excluded region not recreated: %v", err)
	}
	for i := range got {
		if got[i] != 0 {
			t.Fatalf("excluded region byte %d = %d, want 0", i, got[i])
		}
	}
}

// TestCheckpointerApplySpec covers the spec → exclusion plumbing and
// that bindings absent from the spec stay protected.
func TestCheckpointerApplySpec(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
	grid, _ := sp.Mmap(512)
	scratch, _ := sp.Mmap(512)
	unlisted, _ := sp.Mmap(512)
	c, err := NewCheckpointer(eng, sp, Options{Store: storage.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	spec := &ckptspec.Spec{Package: "p", Regions: []ckptspec.Region{
		{Name: "K.grid", Class: ckptspec.Must, Reason: "live"},
		{Name: "K.scratch", Class: ckptspec.Recomputable, Reason: "scratch"},
	}}
	bindings := []ckptspec.Binding{
		{Name: "K.grid", Region: grid},
		{Name: "K.scratch", Region: scratch},
		{Name: "K.other", Region: unlisted},
	}
	ex := c.ApplySpec(spec, bindings)
	if len(ex) != 1 || ex[0].Region != scratch {
		t.Fatalf("ApplySpec excluded %+v, want just K.scratch", ex)
	}
	// Re-applying is idempotent and a nil spec excludes nothing.
	if ex2 := c.ApplySpec(spec, bindings); len(ex2) != 1 || ex2[0].Region != scratch {
		t.Fatalf("second ApplySpec = %+v", ex2)
	}
	if c.ApplySpec(nil, bindings) != nil {
		t.Fatalf("nil spec excluded bindings")
	}
	c.Start()
	defer c.Stop()
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// grid + unlisted captured, scratch dropped.
	if res.Pages != 2 {
		t.Fatalf("full captured %d pages, want 2", res.Pages)
	}
}
