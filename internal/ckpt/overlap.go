package ckpt

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mem"
)

// Overlapped (copy-on-write) checkpointing: instead of stopping the
// application while the checkpoint drains to stable storage,
// CheckpointOverlapped snapshots only the dirty-page *set* at the trigger
// and lets the application keep running. Page contents are captured
// lazily:
//
//   - a write fault on a still-pending page captures the page *before*
//     the write proceeds (the simulated MMU delivers faults
//     synchronously ahead of the store, so the copy is exactly the
//     trigger-time pre-image);
//   - pages of a region that is unmapped mid-drain are captured at the
//     unmap, preserving trigger-time state;
//   - everything still pending when the sink finishes draining is
//     captured then — those pages are untouched, so their content still
//     equals the trigger-time content.
//
// The resulting segment is byte-identical to what a stop-and-copy
// checkpoint at the trigger instant would have produced; the test suite
// asserts this under concurrent writes.
//
// This is the mechanism behind the paper's §6.2 placement advice: the
// number of pre-image copies (Result.Pages accounted in
// Stats.CowCopyBytes) is exactly the working-set overlap between the
// drain window and the application's write stream.

// drain is an in-flight overlapped checkpoint.
type drain struct {
	seg     *Segment
	pending map[*mem.Region]*bitset.Set
	done    func(Result, error)
	res     Result
}

// Draining reports whether an overlapped checkpoint is still in flight.
func (c *Checkpointer) Draining() bool { return c.inflight != nil }

// CheckpointOverlapped begins an overlapped checkpoint of the pages
// dirtied since the last checkpoint. It returns immediately; onDone runs
// at the virtual time the segment has been fully captured and persisted.
// Only one overlapped checkpoint may be in flight at a time, and
// overlapped and synchronous checkpoints must not be mixed while
// draining.
func (c *Checkpointer) CheckpointOverlapped(onDone func(Result, error)) error {
	if !c.running {
		return fmt.Errorf("ckpt: checkpointer not started")
	}
	if c.inflight != nil {
		return fmt.Errorf("ckpt: overlapped checkpoint %d still draining", c.inflight.seg.Seq)
	}
	kind := Incremental
	if !c.took || (c.opts.FullEvery > 0 && (c.seq-c.opts.StartSeq)%uint64(c.opts.FullEvery) == 0) {
		kind = Full
		c.epoch = c.seq
	}
	c.took = true
	seg := &Segment{
		Rank:        c.opts.Rank,
		Seq:         c.seq,
		Epoch:       c.epoch,
		Kind:        kind,
		ContentFree: c.space.Phantom(),
		PageSize:    c.space.PageSize(),
		TakenAt:     c.eng.Now(),
		Regions:     c.regionTable(),
	}
	d := &drain{seg: seg, pending: make(map[*mem.Region]*bitset.Set), done: onDone}

	// Snapshot the page *set* (cheap), not the contents.
	var pages uint64
	switch kind {
	case Full:
		for _, r := range c.space.Regions() {
			if !r.Kind().Checkpointable() || c.excluded[r] {
				continue
			}
			s := &bitset.Set{}
			for idx := uint64(0); idx < r.Pages(); idx++ {
				s.Add(idx)
			}
			pages += r.Pages()
			d.pending[r] = s
		}
	case Incremental:
		for r, rs := range c.dirty {
			if r.Dead() {
				delete(c.dirty, r)
				continue
			}
			clone := rs.CloneBelow(r.Pages())
			pages += clone.Count()
			d.pending[r] = clone
		}
	}
	// The next delta starts now: reset dirty state, re-protect.
	for _, rs := range c.dirty {
		rs.Clear()
	}
	c.protectAll()

	d.res = Result{
		Seq:           c.seq,
		Epoch:         c.epoch,
		Kind:          kind,
		Pages:         pages,
		PageBytes:     pages * c.space.PageSize(),
		Duration:      c.opts.Sink.WriteTime(pages * c.space.PageSize()),
		ExcludedPages: c.excludedAccum,
	}
	c.excludedAccum = 0
	c.seq++
	c.inflight = d
	c.eng.After(d.res.Duration, func() { c.finishDrain() })
	return nil
}

// capturePending saves one pending page into the in-flight segment,
// applying content deduplication like the synchronous path.
func (c *Checkpointer) capturePending(d *drain, r *mem.Region, idx uint64) {
	rec := PageRecord{Addr: r.PageAddr(idx)}
	d.pending[r].Remove(idx)
	if !d.seg.ContentFree {
		if pd := r.PeekPage(idx); pd != nil {
			rec.Data = append([]byte(nil), pd...)
		}
		if c.skipUnchanged(d.seg.Kind, rec.Addr, rec.Data) {
			d.res.DedupSkipped++
			return
		}
	}
	d.seg.Pages = append(d.seg.Pages, rec)
}

// overlapFault is called from the main fault handler before the write
// proceeds: a pending page is captured as its pre-image.
func (c *Checkpointer) overlapFault(f mem.Fault) {
	d := c.inflight
	if d == nil {
		return
	}
	rs := d.pending[f.Region]
	if rs == nil {
		return
	}
	idx := f.Region.PageIndex(f.Page)
	if !rs.Has(idx) {
		return
	}
	c.capturePending(d, f.Region, idx)
	c.stats.CowCopyBytes += c.space.PageSize()
}

// overlapUnmap captures the pending pages of a dying region: at trigger
// time the region was mapped, so its state belongs in the checkpoint.
func (c *Checkpointer) overlapUnmap(r *mem.Region) {
	d := c.inflight
	if d == nil {
		return
	}
	rs := d.pending[r]
	if rs == nil {
		return
	}
	for idx, ok := rs.NextSet(0); ok; idx, ok = rs.NextSet(idx + 1) {
		c.capturePending(d, r, idx)
	}
	delete(d.pending, r)
}

// finishDrain captures all still-pending (untouched) pages and persists
// the segment.
func (c *Checkpointer) finishDrain() {
	d := c.inflight
	if d == nil {
		return
	}
	c.inflight = nil
	for r, rs := range d.pending {
		if r.Dead() {
			continue // already captured by overlapUnmap
		}
		// capturePending removes the current element while we iterate,
		// which NextSet tolerates: the cursor never revisits positions
		// at or below the one just captured.
		limit := r.Pages()
		for idx, ok := rs.NextSet(0); ok && idx < limit; idx, ok = rs.NextSet(idx + 1) {
			c.capturePending(d, r, idx)
		}
	}
	var enc []byte
	var payload uint64
	if c.opts.Compress {
		enc, payload = d.seg.EncodeCompressed()
	} else {
		enc, payload = d.seg.Encode(), uint64(len(d.seg.Pages))*c.space.PageSize()
	}
	key := fmt.Sprintf("rank%03d/seg%06d", c.opts.Rank, d.seg.Seq)
	var err error
	if perr := c.opts.Store.Put(key, enc); perr != nil {
		err = fmt.Errorf("ckpt: persist %s: %w", key, perr)
	}
	d.res.Bytes = uint64(len(enc))
	d.res.PayloadBytes = payload
	d.res.CompletedAt = c.eng.Now()
	c.stats.DedupSkippedPages += d.res.DedupSkipped
	c.stats.PayloadBytes += payload
	c.stats.Checkpoints++
	if d.res.Kind == Full {
		c.stats.FullPages += d.res.Pages
	} else {
		c.stats.DeltaPages += d.res.Pages
	}
	c.stats.TotalBytes += d.res.Bytes
	c.stats.TotalDuration += d.res.Duration
	c.stats.ExcludedPages += d.res.ExcludedPages
	if d.done != nil {
		d.done(d.res, err)
	}
}
