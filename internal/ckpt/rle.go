package ckpt

import (
	"encoding/binary"
	"fmt"
)

// Run-length encoding for page payloads. Checkpointed pages of scientific
// codes are full of repeated values (zero-initialised arrays, constant
// fills, padding), and the paper's related work ([18]) shows how much
// checkpoint-size optimisation matters; this codec captures the cheap
// part of that win without external dependencies.
//
// Stream grammar (little-endian lengths):
//
//	op 0x00: run     — u16 length, 1 value byte
//	op 0x01: literal — u16 length, length raw bytes
//
// Runs shorter than rleMinRun are folded into literals.
const rleMinRun = 4

// rleCompress encodes src; it returns nil when compression would not
// shrink the data, letting callers fall back to the raw page.
func rleCompress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2)
	var lit []byte // pending literal bytes
	flushLit := func() {
		for len(lit) > 0 {
			n := min(len(lit), 0xFFFF)
			out = append(out, 0x01, byte(n), byte(n>>8))
			out = append(out, lit[:n]...)
			lit = lit[n:]
		}
	}
	i := 0
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] && j-i < 0xFFFF {
			j++
		}
		if runLen := j - i; runLen >= rleMinRun {
			flushLit()
			out = append(out, 0x00, byte(runLen), byte(runLen>>8), src[i])
		} else {
			lit = append(lit, src[i:j]...)
		}
		i = j
		if len(out)+len(lit) >= len(src) {
			return nil // not shrinking; bail out early
		}
	}
	flushLit()
	if len(out) >= len(src) {
		return nil
	}
	return out
}

// rleDecompress decodes a stream produced by rleCompress into a buffer of
// exactly want bytes.
func rleDecompress(src []byte, want int) ([]byte, error) {
	out := make([]byte, 0, want)
	i := 0
	for i < len(src) {
		if i+3 > len(src) {
			return nil, fmt.Errorf("ckpt: truncated RLE stream at %d", i)
		}
		op := src[i]
		n := int(binary.LittleEndian.Uint16(src[i+1 : i+3]))
		i += 3
		switch op {
		case 0x00:
			if i >= len(src) {
				return nil, fmt.Errorf("ckpt: truncated RLE run at %d", i)
			}
			v := src[i]
			i++
			for k := 0; k < n; k++ {
				out = append(out, v)
			}
		case 0x01:
			if i+n > len(src) {
				return nil, fmt.Errorf("ckpt: truncated RLE literal at %d", i)
			}
			out = append(out, src[i:i+n]...)
			i += n
		default:
			return nil, fmt.Errorf("ckpt: bad RLE opcode %#x at %d", op, i-3)
		}
		if len(out) > want {
			return nil, fmt.Errorf("ckpt: RLE output exceeds page size")
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("ckpt: RLE output %d bytes, want %d", len(out), want)
	}
	return out, nil
}

// pageHash is FNV-1a over a page's contents, used for unchanged-content
// deduplication. A nil (zero) page hashes to the hash of pageSize zero
// bytes, computed without materialising them.
func pageHash(data []byte, pageSize uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if data == nil {
		for i := uint64(0); i < pageSize; i++ {
			h ^= 0
			h *= prime64
		}
		return h
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
