package ckpt

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte{0xAB}, 4096),
		append(bytes.Repeat([]byte{1}, 2000), bytes.Repeat([]byte{2}, 2096)...),
	}
	for i, src := range cases {
		c := rleCompress(src)
		if c == nil {
			t.Fatalf("case %d: compressible data not compressed", i)
		}
		if len(c) >= len(src) {
			t.Fatalf("case %d: no shrink (%d >= %d)", i, len(c), len(src))
		}
		got, err := rleDecompress(c, len(src))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestRLEIncompressibleReturnsNil(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(rng.IntN(256))
	}
	if rleCompress(src) != nil {
		t.Fatal("random data reported as compressible")
	}
}

func TestRLEDecompressRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0x00},                   // truncated header
		{0x00, 0x10, 0x00},       // run without value
		{0x01, 0x10, 0x00, 1, 2}, // literal shorter than declared
		{0x07, 0x01, 0x00, 0x00}, // bad opcode
		{0x00, 0xFF, 0xFF, 0x05}, // output overruns page
	}
	for i, c := range cases {
		if _, err := rleDecompress(c, 64); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Correct stream but wrong final size.
	if _, err := rleDecompress([]byte{0x00, 0x10, 0x00, 0xAA}, 64); err == nil {
		t.Error("short output accepted")
	}
}

// Property: compress/decompress is the identity whenever compression
// succeeds.
func TestPropertyRLERoundTrip(t *testing.T) {
	f := func(seed uint64, runBias uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		src := make([]byte, 1024)
		i := 0
		for i < len(src) {
			if rng.IntN(int(runBias%8)+2) != 0 {
				// run
				v := byte(rng.IntN(4))
				n := min(rng.IntN(200)+1, len(src)-i)
				for k := 0; k < n; k++ {
					src[i+k] = v
				}
				i += n
			} else {
				src[i] = byte(rng.IntN(256))
				i++
			}
		}
		c := rleCompress(src)
		if c == nil {
			return true // incompressible is a valid outcome
		}
		got, err := rleDecompress(c, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPageHash(t *testing.T) {
	a := pageHash(bytes.Repeat([]byte{1}, 64), 64)
	b := pageHash(bytes.Repeat([]byte{1}, 64), 64)
	c := pageHash(bytes.Repeat([]byte{2}, 64), 64)
	if a != b || a == c {
		t.Fatal("hash determinism/discrimination")
	}
	// nil page hashes like an explicit zero page.
	if pageHash(nil, 64) != pageHash(make([]byte, 64), 64) {
		t.Fatal("nil page hash differs from zero page hash")
	}
}

func TestCompressedSegmentRoundTrip(t *testing.T) {
	seg := &Segment{
		Rank: 0, Seq: 1, Kind: Incremental, PageSize: 4096,
		Pages: []PageRecord{
			{Addr: 0x1000, Data: bytes.Repeat([]byte{0x55}, 4096)}, // compressible
			{Addr: 0x2000, Data: nil},                              // zero page
		},
	}
	// Add an incompressible page.
	rng := rand.New(rand.NewPCG(3, 4))
	raw := make([]byte, 4096)
	for i := range raw {
		raw[i] = byte(rng.IntN(256))
	}
	seg.Pages = append(seg.Pages, PageRecord{Addr: 0x3000, Data: raw})

	enc, payload := seg.EncodeCompressed()
	if payload >= 2*4096 {
		t.Fatalf("payload %d did not shrink", payload)
	}
	rawEnc := seg.Encode()
	if len(enc) >= len(rawEnc) {
		t.Fatalf("compressed encoding %d >= raw %d", len(enc), len(rawEnc))
	}
	dec, err := DecodeSegment(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seg.Pages {
		if !bytes.Equal(dec.Pages[i].Data, seg.Pages[i].Data) {
			t.Fatalf("page %d mismatch after compressed round trip", i)
		}
	}
}

func TestCheckpointerCompression(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	store := storage.NewMemStore()
	sink := storage.Model{Name: "s", Bandwidth: 4096} // 1 raw page per second
	c, err := NewCheckpointer(eng, sp, Options{Store: store, Sink: sink, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sp.Mmap(8 * 4096)
	sp.Write(r.Start(), bytes.Repeat([]byte{7}, 8*4096)) // highly compressible
	c.Start()
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 8 || res.PageBytes != 8*4096 {
		t.Fatalf("pages: %+v", res)
	}
	if res.PayloadBytes >= res.PageBytes/10 {
		t.Fatalf("payload %d barely compressed", res.PayloadBytes)
	}
	// Sink time charged on the compressed volume: far below 8 s.
	if res.Duration >= des.Second {
		t.Fatalf("duration %v not reduced by compression", res.Duration)
	}
	// Restore still exact.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := Restore(store, 0, 0, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8*4096)
	fresh.Read(r.Start(), got)
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 8*4096)) {
		t.Fatal("compressed restore mismatch")
	}
}

func TestCheckpointerDedup(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	store := storage.NewMemStore()
	c, err := NewCheckpointer(eng, sp, Options{Store: store, DedupUnchanged: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sp.Mmap(4 * 4096)
	sp.Write(r.Start(), bytes.Repeat([]byte{1}, 4*4096))
	c.Start()
	c.Checkpoint() // full: hashes recorded

	// Rewrite page 0 with IDENTICAL content, page 1 with new content.
	sp.Write(r.Start(), bytes.Repeat([]byte{1}, 4096))
	sp.Write(r.Start()+4096, bytes.Repeat([]byte{2}, 4096))
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 1 {
		t.Fatalf("delta pages = %d, want 1 (unchanged page not deduped)", res.Pages)
	}
	if res.DedupSkipped != 1 {
		t.Fatalf("DedupSkipped = %d", res.DedupSkipped)
	}
	// Restore correctness with a deduped chain.
	sp.Write(r.Start()+2*4096, bytes.Repeat([]byte{3}, 4096))
	res3, _ := c.Checkpoint()
	want := make([]byte, 4*4096)
	sp.Read(r.Start(), want)
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := Restore(store, 0, res3.Seq, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*4096)
	fresh.Read(r.Start(), got)
	if !bytes.Equal(got, want) {
		t.Fatal("deduped chain restore mismatch")
	}
	if c.Stats().DedupSkippedPages != 1 {
		t.Fatalf("stats dedup = %d", c.Stats().DedupSkippedPages)
	}
}

func TestDedupRequiresBackedSpace(t *testing.T) {
	eng := des.NewEngine()
	phantom := mem.NewAddressSpace(mem.Config{PageSize: 4096, Phantom: true})
	if _, err := NewCheckpointer(eng, phantom, Options{Store: storage.NewMemStore(), DedupUnchanged: true}); err == nil {
		t.Fatal("dedup on phantom space accepted")
	}
	if _, err := NewCheckpointer(eng, phantom, Options{Store: storage.NewMemStore(), Compress: true}); err == nil {
		t.Fatal("compression on phantom space accepted")
	}
}

// Property: with dedup and compression on, random write/checkpoint
// interleavings still restore to the exact trigger-time state.
func TestPropertyDedupCompressRestoreIdentity(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 101))
		eng := des.NewEngine()
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		store := storage.NewMemStore()
		c, _ := NewCheckpointer(eng, sp, Options{
			Store: store, FullEvery: 4, Compress: true, DedupUnchanged: true,
		})
		const pages = 16
		r, _ := sp.Mmap(pages * 512)
		c.Start()
		var lastSeq uint64
		var snapshot []byte
		did := false
		for i := 0; i < int(nOps%25)+2; i++ {
			if rng.IntN(3) == 0 {
				res, err := c.Checkpoint()
				if err != nil {
					return false
				}
				lastSeq = res.Seq
				snapshot = make([]byte, pages*512)
				sp.Read(r.Start(), snapshot)
				did = true
			} else {
				off := uint64(rng.IntN(pages)) * 512
				// Low-entropy values make dedup hits likely.
				val := byte(rng.IntN(3))
				sp.Write(r.Start()+off, bytes.Repeat([]byte{val}, 512))
			}
		}
		if !did {
			return true
		}
		fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
		if Restore(store, 0, lastSeq, fresh) != nil {
			return false
		}
		got := make([]byte, pages*512)
		fresh.Read(r.Start(), got)
		return bytes.Equal(got, snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRLECompressPage(b *testing.B) {
	src := append(bytes.Repeat([]byte{0}, 8192), bytes.Repeat([]byte{3}, 8192)...)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if rleCompress(src) == nil {
			b.Fatal("not compressed")
		}
	}
}
