package ckpt

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// Recovery-line verification: LatestConsistentSeq trusts the key space —
// a segment whose key exists counts, whatever its bytes hold. On a
// storage tier that can tear, rot or lose segments that is not enough:
// choosing a recovery line means proving every byte of every rank's
// restore chain is actually readable and decodable. VerifyChain proves
// it for one rank, VerifyLine for a full coordinated line, and
// LatestVerifiableSeq picks the newest line that survives proof —
// skipping corrupt or incomplete lines instead of handing the supervisor
// a restore that will blow up mid-recovery.

// VerifyChain checks that rank's restore chain ending at targetSeq is
// complete and sound: every segment from the chain's base full segment
// through the target fetches, passes the storage tier's integrity
// checks, decodes, and is chain-consistent (full base, matching epochs,
// one page size, restorable content). A nil return means Restore to
// targetSeq will not fail on the data path.
func VerifyChain(store storage.Store, rank int, targetSeq uint64) error {
	target, err := LoadSegment(store, rank, targetSeq)
	if err != nil {
		return fmt.Errorf("ckpt: verify rank %d seq %d: %w", rank, targetSeq, err)
	}
	if target.Rank != rank || target.Seq != targetSeq {
		return fmt.Errorf("ckpt: verify rank %d seq %d: segment labeled rank %d seq %d",
			rank, targetSeq, target.Rank, target.Seq)
	}
	if target.Epoch > targetSeq {
		return fmt.Errorf("ckpt: verify rank %d seq %d: epoch %d after target", rank, targetSeq, target.Epoch)
	}
	for seq := target.Epoch; seq <= targetSeq; seq++ {
		seg := target
		if seq != targetSeq {
			if seg, err = LoadSegment(store, rank, seq); err != nil {
				return fmt.Errorf("ckpt: verify rank %d seq %d: chain segment %d: %w", rank, targetSeq, seq, err)
			}
		}
		switch {
		case seg.Rank != rank || seg.Seq != seq:
			return fmt.Errorf("ckpt: verify rank %d seq %d: segment %d labeled rank %d seq %d",
				rank, targetSeq, seq, seg.Rank, seg.Seq)
		case seq == target.Epoch && seg.Kind != Full:
			return fmt.Errorf("ckpt: verify rank %d seq %d: chain base %d is %s", rank, targetSeq, seq, seg.Kind)
		case seq != target.Epoch && seg.Kind != Incremental:
			return fmt.Errorf("ckpt: verify rank %d seq %d: mid-chain segment %d is %s", rank, targetSeq, seq, seg.Kind)
		case seg.Epoch != target.Epoch:
			return fmt.Errorf("ckpt: verify rank %d seq %d: segment %d epoch %d != chain epoch %d",
				rank, targetSeq, seq, seg.Epoch, target.Epoch)
		case seg.PageSize != target.PageSize:
			return fmt.Errorf("ckpt: verify rank %d seq %d: segment %d page size %d != %d",
				rank, targetSeq, seq, seg.PageSize, target.PageSize)
		case seg.ContentFree:
			return fmt.Errorf("ckpt: verify rank %d seq %d: segment %d is content-free, not restorable",
				rank, targetSeq, seq)
		}
	}
	return nil
}

// VerifyLine checks the coordinated recovery line at seq: every one of
// the given ranks must have a verifiable chain ending there.
func VerifyLine(store storage.Store, ranks int, seq uint64) error {
	for r := 0; r < ranks; r++ {
		if err := VerifyChain(store, r, seq); err != nil {
			return err
		}
	}
	return nil
}

// LatestVerifiableSeq returns the newest coordinated recovery line whose
// every chain verifies end to end, scanning candidate lines newest
// first and skipping any that are incomplete (a rank missing the
// sequence) or damaged (torn, corrupt, mis-chained segments). ok is
// false when no line at all survives verification — the caller must
// restart from scratch. The error return is reserved for the key
// listing itself failing; per-line damage never surfaces as an error.
func LatestVerifiableSeq(store storage.Store, ranks int) (seq uint64, ok bool, err error) {
	if ranks <= 0 {
		return 0, false, nil
	}
	keys, err := store.Keys()
	if err != nil {
		return 0, false, err
	}
	// Candidate lines: sequences present (as keys) for every rank.
	perRank := make([]map[uint64]bool, ranks)
	for i := range perRank {
		perRank[i] = make(map[uint64]bool)
	}
	for _, k := range keys {
		var rank int
		var s uint64
		if !ParseSegmentKey(k, &rank, &s) || rank < 0 || rank >= ranks {
			continue
		}
		perRank[rank][s] = true
	}
	var candidates []uint64
	for s := range perRank[0] {
		common := true
		for r := 1; r < ranks; r++ {
			if !perRank[r][s] {
				common = false
				break
			}
		}
		if common {
			candidates = append(candidates, s)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	for _, s := range candidates {
		if VerifyLine(store, ranks, s) == nil {
			return s, true, nil
		}
	}
	return 0, false, nil
}
