package ckpt

// Two-phase global checkpoint commit. GlobalCheckpoint persists every
// rank's segment and calls the line good the moment the last Put
// returns — but the Puts model the *start* of the sink writes, and a
// rank dying while its segment drains leaves a line the key space
// advertises and recovery would trust. The DMTCP lineage of
// coordinator-driven checkpointing solves this with prepare/commit:
// ranks write their segments in the prepare phase, ack the coordinator
// when their sink write completes, and only then does the coordinator
// write a small COMMIT marker through the same (hardened) store. A line
// without a verified marker never existed as far as recovery is
// concerned, so a mid-checkpoint failure — or a straggler timeout, or a
// refused marker write — aborts the line, deletes the prepared
// segments, and falls back to the previous committed line.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/des"
	"repro/internal/storage"
)

// ErrCommitAborted reports a two-phase global checkpoint rolled back
// after a successful prepare: a rank failure inside the commit window, a
// straggler timeout, or a refused COMMIT-marker write. Distinct from a
// prepare-phase storage refusal, which surfaces as the storage error
// itself.
var ErrCommitAborted = errors.New("ckpt: global commit aborted")

const (
	commitMagic   = "GCMT"
	commitVersion = 1
	// commitMarkerSize is magic + version + seq + ranks + time.
	commitMarkerSize = 4 + 1 + 8 + 4 + 8
)

// CommitMarker is the durable record that a coordinated line fully
// committed: every rank's prepare acked before it was written.
type CommitMarker struct {
	Seq   uint64
	Ranks int
	At    des.Time
}

// CommitKey returns the store key of seq's COMMIT marker.
func CommitKey(seq uint64) string { return fmt.Sprintf("commit/seq%06d", seq) }

// ParseCommitKey parses a key written by CommitKey.
func ParseCommitKey(key string, seq *uint64) bool {
	rest, ok := strings.CutPrefix(key, "commit/seq")
	if !ok {
		return false
	}
	s, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return false
	}
	*seq = s
	return true
}

// EncodeCommitMarker serialises a marker.
func EncodeCommitMarker(m CommitMarker) []byte {
	buf := make([]byte, 0, commitMarkerSize)
	buf = append(buf, commitMagic...)
	buf = append(buf, commitVersion)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Ranks))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.At))
	return buf
}

// DecodeCommitMarker parses a marker, returning a typed error on any
// corruption; it never panics on hostile input.
func DecodeCommitMarker(data []byte) (CommitMarker, error) {
	if len(data) != commitMarkerSize {
		return CommitMarker{}, fmt.Errorf("ckpt: commit marker is %d bytes, want %d", len(data), commitMarkerSize)
	}
	if string(data[:4]) != commitMagic {
		return CommitMarker{}, fmt.Errorf("ckpt: bad commit marker magic")
	}
	if data[4] != commitVersion {
		return CommitMarker{}, fmt.Errorf("ckpt: unsupported commit marker version %d", data[4])
	}
	return CommitMarker{
		Seq:   binary.LittleEndian.Uint64(data[5:13]),
		Ranks: int(binary.LittleEndian.Uint32(data[13:17])),
		At:    des.Time(binary.LittleEndian.Uint64(data[17:25])),
	}, nil
}

// TwoPhaseOptions parameterises one prepare/commit round.
type TwoPhaseOptions struct {
	// Timeout aborts the round if some rank's ack has not arrived this
	// long after the prepare started (0 disables the straggler guard).
	Timeout des.Time
	// AckDelay is the coordination-message cost added to each rank's
	// sink write time before its ack lands at the coordinator.
	AckDelay des.Time
}

// pendingCommit is one in-flight prepare/commit round.
type pendingCommit struct {
	g       GlobalResult
	acks    int
	ackEvs  []des.Event
	timeout des.Event
	done    func(GlobalResult, error)
	aborted bool
}

// PendingSeq reports the sequence of an in-flight two-phase round.
func (co *Coordinator) PendingSeq() (uint64, bool) {
	if co.pending == nil {
		return 0, false
	}
	return co.pending.g.Seq, true
}

// PendingLastAck reports the virtual time the in-flight two-phase
// round's final prepare ack is scheduled for — the earliest instant the
// COMMIT marker could be written. A fault injector that wants to land a
// crash *inside* the commit window (after prepare started, before the
// marker can exist) aims strictly before this time.
func (co *Coordinator) PendingLastAck() (des.Time, bool) {
	if co.pending == nil {
		return 0, false
	}
	var last des.Time
	for _, ev := range co.pending.ackEvs {
		if ev.Time() > last {
			last = ev.Time()
		}
	}
	return last, true
}

// BeginTwoPhase starts a prepare/commit global checkpoint. The prepare
// phase writes every rank's segment now; rank i's ack arrives at its
// sink write time (serialised under Staggered) plus AckDelay; once all
// acks are in, the coordinator writes the COMMIT marker and done runs
// with the aggregate result, at the commit's virtual completion time.
//
// Failure paths, all of which leave no trace recovery could trust:
//   - a prepare-phase Put refused by storage → segments of this seq are
//     deleted and done receives the storage error directly;
//   - straggler timeout, refused marker write, or an external
//     AbortPending (rank death inside the window) → segments deleted, no
//     marker, done receives an ErrCommitAborted-wrapped error.
func (co *Coordinator) BeginTwoPhase(opts TwoPhaseOptions, done func(GlobalResult, error)) {
	if co.pending != nil {
		panic(fmt.Sprintf("ckpt: two-phase commit %d already in flight", co.pending.g.Seq))
	}
	if done == nil {
		done = func(GlobalResult, error) {}
	}
	g := GlobalResult{Seq: co.cps[0].Seq(), At: co.eng.Now()}
	for _, c := range co.cps {
		res, err := c.Checkpoint()
		if err != nil {
			co.deleteLine(g.Seq)
			done(GlobalResult{}, err)
			return
		}
		g.PerRank = append(g.PerRank, res)
		g.TotalPageBytes += res.PageBytes
		if co.Staggered {
			g.MaxDuration += res.Duration
		} else if res.Duration > g.MaxDuration {
			g.MaxDuration = res.Duration
		}
	}
	p := &pendingCommit{g: g, done: done}
	co.pending = p
	var serial des.Time
	for _, res := range g.PerRank {
		ackAt := res.Duration + opts.AckDelay
		if co.Staggered {
			serial += res.Duration
			ackAt = serial + opts.AckDelay
		}
		p.ackEvs = append(p.ackEvs, co.eng.After(ackAt, func() { co.onAck(p) }))
	}
	if opts.Timeout > 0 {
		seq := g.Seq
		p.timeout = co.eng.After(opts.Timeout, func() {
			co.abortPending(p, fmt.Errorf("ckpt: seq %d straggler timeout after %v (%d/%d acks): %w",
				seq, opts.Timeout, p.acks, len(co.cps), ErrCommitAborted))
		})
	}
}

// onAck records one rank's prepare acknowledgement; the last ack writes
// the COMMIT marker.
func (co *Coordinator) onAck(p *pendingCommit) {
	if p.aborted {
		return
	}
	p.acks++
	if p.acks < len(co.cps) {
		return
	}
	p.timeout.Cancel()
	marker := CommitMarker{Seq: p.g.Seq, Ranks: len(co.cps), At: co.eng.Now()}
	if err := co.cps[0].Store().Put(CommitKey(p.g.Seq), EncodeCommitMarker(marker)); err != nil {
		co.abortPending(p, fmt.Errorf("ckpt: seq %d commit marker refused (%v): %w", p.g.Seq, err, ErrCommitAborted))
		return
	}
	co.pending = nil
	co.results = append(co.results, p.g)
	if co.OnGlobal != nil {
		co.OnGlobal(p.g)
	}
	p.done(p.g, nil)
}

// AbortPending rolls back an in-flight two-phase round from outside —
// the supervisor calls it when a rank dies inside the commit window. It
// reports whether there was a round to abort.
func (co *Coordinator) AbortPending(reason error) bool {
	p := co.pending
	if p == nil {
		return false
	}
	if reason == nil {
		reason = fmt.Errorf("ckpt: seq %d externally aborted: %w", p.g.Seq, ErrCommitAborted)
	} else {
		reason = fmt.Errorf("ckpt: seq %d: %v: %w", p.g.Seq, reason, ErrCommitAborted)
	}
	co.abortPending(p, reason)
	return true
}

// abortPending tears down an in-flight round: cancel its events, delete
// the prepared segments (no marker was ever written, and without their
// data the key space cannot even claim the line), and report the cause.
func (co *Coordinator) abortPending(p *pendingCommit, reason error) {
	if p.aborted {
		return
	}
	p.aborted = true
	for _, ev := range p.ackEvs {
		ev.Cancel()
	}
	p.timeout.Cancel()
	co.deleteLine(p.g.Seq)
	co.pending = nil
	p.done(GlobalResult{}, reason)
}

// deleteLine removes every rank's segment at seq (best effort — a
// decayed store may refuse; the absent COMMIT marker alone already keeps
// recovery away from the line).
func (co *Coordinator) deleteLine(seq uint64) {
	st := co.cps[0].Store()
	for _, c := range co.cps {
		_ = st.Delete(SegmentKey(c.Rank(), seq))
	}
}

// VerifyCommittedLine checks that seq has a readable, well-formed COMMIT
// marker for the given rank count and that every rank's chain verifies
// end to end — the two-phase trust rule.
func VerifyCommittedLine(store storage.Store, ranks int, seq uint64) error {
	data, err := store.Get(CommitKey(seq))
	if err != nil {
		return fmt.Errorf("ckpt: line %d: commit marker: %w", seq, err)
	}
	m, err := DecodeCommitMarker(data)
	if err != nil {
		return fmt.Errorf("ckpt: line %d: %w", seq, err)
	}
	if m.Seq != seq || m.Ranks != ranks {
		return fmt.Errorf("ckpt: line %d: marker labeled seq %d ranks %d", seq, m.Seq, m.Ranks)
	}
	return VerifyLine(store, ranks, seq)
}

// LatestCommittedSeq returns the newest line recovery may trust under
// two-phase commit: a sequence with a verified COMMIT marker whose every
// chain verifies. Lines with damaged or missing markers are skipped, not
// errors; ok is false when no committed line survives.
func LatestCommittedSeq(store storage.Store, ranks int) (seq uint64, ok bool, err error) {
	if ranks <= 0 {
		return 0, false, nil
	}
	keys, err := store.Keys()
	if err != nil {
		return 0, false, err
	}
	var candidates []uint64
	for _, k := range keys {
		var s uint64
		if ParseCommitKey(k, &s) {
			candidates = append(candidates, s)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	for _, s := range candidates {
		if VerifyCommittedLine(store, ranks, s) == nil {
			return s, true, nil
		}
	}
	return 0, false, nil
}
