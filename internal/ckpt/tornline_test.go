package ckpt

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/storage"
)

// A multi-rank restore that hits a missing segment must name the rank
// and line, with the cause typed as storage.ErrNotFound.
func TestRestoreErrorMissingSegment(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, _ := commitRig(t, 3, store)
	var commitErr error
	co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { commitErr = e })
	eng.Run(des.MaxTime)
	if commitErr != nil {
		t.Fatal(commitErr)
	}
	if err := store.Delete(SegmentKey(1, 0)); err != nil {
		t.Fatal(err)
	}
	_, err := RestoreAll(store, 3, 0)
	if err == nil {
		t.Fatal("restore of a torn line succeeded")
	}
	var re *RestoreError
	if !errors.As(err, &re) {
		t.Fatalf("restore failure not a *RestoreError: %v", err)
	}
	if re.Rank != 1 || re.Seq != 0 {
		t.Fatalf("RestoreError names rank %d seq %d, want 1/0", re.Rank, re.Seq)
	}
	if !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing segment not typed ErrNotFound: %v", err)
	}
	if errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("missing segment mis-typed as corrupt: %v", err)
	}
}

// A restore that hits undecodable segment bytes must distinguish itself
// from a missing segment: same *RestoreError shape, cause typed
// storage.ErrCorrupt.
func TestRestoreErrorCorruptSegment(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, _ := commitRig(t, 3, store)
	var commitErr error
	co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { commitErr = e })
	eng.Run(des.MaxTime)
	if commitErr != nil {
		t.Fatal(commitErr)
	}
	if err := store.Put(SegmentKey(2, 0), []byte("not a segment")); err != nil {
		t.Fatal(err)
	}
	_, err := RestoreAll(store, 3, 0)
	var re *RestoreError
	if !errors.As(err, &re) {
		t.Fatalf("restore failure not a *RestoreError: %v", err)
	}
	if re.Rank != 2 || re.Seq != 0 {
		t.Fatalf("RestoreError names rank %d seq %d, want 2/0", re.Rank, re.Seq)
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("undecodable segment not typed ErrCorrupt: %v", err)
	}
	if errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("corrupt segment mis-typed as missing: %v", err)
	}
}

// The issue's edge case: a crash lands between two-phase prepare and
// commit. The prepared segments are already in the key space — a naive
// newest-consistent-line selector would trust the torn line — but no
// COMMIT marker was ever written, so the two-phase selector falls back
// one line.
func TestCrashBetweenPrepareAndCommitFallsBack(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, spaces := commitRig(t, 3, store)

	// Line 0 fully commits.
	var err0 error
	co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { err0 = e })
	eng.Run(des.MaxTime)
	if err0 != nil {
		t.Fatal(err0)
	}

	// Line 1: prepare writes the segments immediately; the crash freezes
	// the world 500ms into the 2s commit window, before any ack — the
	// abort cleanup never runs, exactly as on a real node loss.
	dirtyAll(spaces, 9)
	eng.After(0, func() {
		co.BeginTwoPhase(TwoPhaseOptions{}, func(GlobalResult, error) {
			t.Error("done callback ran after the crash instant")
		})
	})
	eng.Run(eng.Now() + 500*des.Millisecond)

	// The torn line's segments are all present and individually sound —
	// the segment key space claims seq 1 and even verifies.
	seq, ok, err := LatestConsistentSeq(store, 3)
	if err != nil || !ok || seq != 1 {
		t.Fatalf("segment key space claims %d/%v/%v, want 1/true", seq, ok, err)
	}
	if err := VerifyLine(store, 3, 1); err != nil {
		t.Fatalf("torn line's segments should verify individually: %v", err)
	}
	// But without a marker the two-phase trust rule rejects it.
	if err := VerifyCommittedLine(store, 3, 1); err == nil {
		t.Fatal("markerless line accepted as committed")
	}
	seq, ok, err = LatestCommittedSeq(store, 3)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("fallback line = %d/%v/%v, want 0/true", seq, ok, err)
	}
	// And the fallback line restores.
	if _, err := RestoreAll(store, 3, seq); err != nil {
		t.Fatalf("fallback restore: %v", err)
	}
}

// The complementary tear: the marker survived but a rank's segment did
// not (storage loss after commit). VerifyCommittedLine rejects the line
// and selection falls back.
func TestTornCommittedLineFallsBack(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, spaces := commitRig(t, 3, store)
	for i := 0; i < 2; i++ {
		var err error
		co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { err = e })
		eng.Run(des.MaxTime)
		if err != nil {
			t.Fatal(err)
		}
		dirtyAll(spaces, byte(10+i))
	}
	if err := store.Delete(SegmentKey(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCommittedLine(store, 3, 1); err == nil {
		t.Fatal("line with a missing segment accepted despite its marker")
	}
	seq, ok, err := LatestCommittedSeq(store, 3)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("fallback line = %d/%v/%v, want 0/true", seq, ok, err)
	}
}
