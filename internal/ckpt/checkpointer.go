package ckpt

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ckptspec"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// Options configures a per-rank Checkpointer.
type Options struct {
	// Rank labels segments and store keys.
	Rank int
	// Store receives encoded segments. Required.
	Store storage.Store
	// Sink models the time cost of persisting segments; the zero value
	// selects the paper's SCSI disk model.
	Sink storage.Model
	// FullEvery forces a full checkpoint every N segments (the first is
	// always full). Zero means only the first segment is full.
	FullEvery int
	// StartSeq is the first segment sequence number this checkpointer
	// writes. After a failure, the recovered run's checkpointers must
	// continue above the old chain (StartSeq = recovery line + 1) so
	// LatestConsistentSeq keeps seeing monotone sequences. The first
	// checkpoint a checkpointer takes is always full regardless of
	// StartSeq — it bases a fresh chain.
	StartSeq uint64
	// TrackCow enables copy-on-write accounting: while a segment is
	// draining to the sink, writes to pages captured in that segment
	// are counted as pre-image copies an overlapped implementation
	// would have to take. Checkpointing mid-burst makes this large;
	// checkpointing between bursts makes it almost zero (§6.2).
	TrackCow bool
	// Compress run-length-encodes page payloads; the sink write time is
	// then charged on the compressed volume. Zero-filled and
	// constant-filled pages — ubiquitous in scientific arrays — shrink
	// dramatically (cf. the checkpoint-size optimisations of [18]).
	Compress bool
	// DedupUnchanged skips incremental pages whose content hash equals
	// the last persisted version of the same page — write-protection
	// flags a page dirty even when it is rewritten with identical
	// values; content hashing removes those false deltas. Full
	// checkpoints never skip, so every restore chain stays
	// self-contained.
	DedupUnchanged bool
}

// Result describes one completed checkpoint.
type Result struct {
	Seq   uint64
	Epoch uint64
	Kind  Kind
	Pages uint64
	// Bytes is the encoded segment size persisted to the store.
	Bytes uint64
	// PageBytes is pages x page size — the payload the IB metric counts.
	PageBytes uint64
	// PayloadBytes is the page-data volume after zero elision and
	// compression — what the sink actually absorbs when Compress is on.
	PayloadBytes uint64
	// DedupSkipped counts dirty pages elided for unchanged content.
	DedupSkipped uint64
	// Duration is the modelled sink write time.
	Duration des.Time
	// CompletedAt is when the segment was fully persisted (overlapped
	// checkpoints only; zero for synchronous ones, which complete at
	// the trigger in simulation terms).
	CompletedAt des.Time
	// ExcludedPages counts dirty pages dropped because their region was
	// unmapped before the checkpoint (memory exclusion).
	ExcludedPages uint64
	// SilentDirtyPages/SilentDirtyBytes report the corruption risk of
	// this checkpoint: pages a Direct-mode NIC dirtied behind the
	// write-fault tracker, which an incremental capture therefore
	// omits. A full checkpoint copies current contents regardless, so
	// it reports zero and absorbs the silent set. Nonzero values mean
	// a restore from this segment's chain replays stale data.
	SilentDirtyPages uint64
	SilentDirtyBytes uint64
}

// Stats aggregates a checkpointer's lifetime counters.
type Stats struct {
	Checkpoints   uint64
	FullPages     uint64
	DeltaPages    uint64
	TotalBytes    uint64
	TotalDuration des.Time
	CowCopyBytes  uint64
	ExcludedPages uint64
	// DedupSkippedPages counts dirty pages dropped because their
	// content was unchanged (Options.DedupUnchanged).
	DedupSkippedPages uint64
	// PayloadBytes is the page-data volume actually persisted after
	// zero elision and compression.
	PayloadBytes uint64
	// SilentDirtyBytes accumulates Result.SilentDirtyBytes: the total
	// volume incremental checkpoints silently omitted.
	SilentDirtyBytes uint64
}

// Checkpointer takes full and incremental checkpoints of one address
// space. It owns a dirty-page view built from write faults, independent of
// (and stackable with) a tracker's.
type Checkpointer struct {
	eng   *des.Engine
	space *mem.AddressSpace
	opts  Options

	dirty    map[*mem.Region]*bitset.Set
	excluded map[*mem.Region]bool
	// dataExcluded regions stay in every segment's region table (a
	// restore recreates them zero-filled) but are never protected or
	// captured: their contents are recomputable per a protection spec.
	dataExcluded map[*mem.Region]bool
	prevF        mem.FaultHandler
	prevM        mem.MapHook
	running      bool

	// Single-entry fault cache, same rationale as the tracker's:
	// consecutive faults repeat the region, so skip the map lookup.
	lastFaultR  *mem.Region
	lastFaultRS *bitset.Set

	seq           uint64
	epoch         uint64
	took          bool // a first (full, chain-basing) checkpoint was taken
	stats         Stats
	excludedAccum uint64
	hashes        map[uint64]uint64 // page addr → last persisted content hash

	// CoW accounting drain state (TrackCow with synchronous
	// checkpoints).
	drainUntil des.Time
	drainSet   map[*mem.Region]*bitset.Set

	// In-flight overlapped checkpoint, if any (see overlap.go).
	inflight *drain
}

// NewCheckpointer creates a checkpointer. Call Start to begin capturing
// dirty pages; the first Checkpoint is always a full one.
func NewCheckpointer(eng *des.Engine, space *mem.AddressSpace, opts Options) (*Checkpointer, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("ckpt: Options.Store is required")
	}
	if opts.Sink == (storage.Model{}) {
		opts.Sink = storage.SCSISink()
	}
	if (opts.Compress || opts.DedupUnchanged) && space.Phantom() {
		return nil, fmt.Errorf("ckpt: compression and dedup need page contents (backed address space)")
	}
	c := &Checkpointer{
		eng:          eng,
		space:        space,
		opts:         opts,
		seq:          opts.StartSeq,
		dirty:        make(map[*mem.Region]*bitset.Set),
		excluded:     make(map[*mem.Region]bool),
		dataExcluded: make(map[*mem.Region]bool),
	}
	if opts.DedupUnchanged {
		c.hashes = make(map[uint64]uint64)
	}
	return c, nil
}

// Exclude marks a region as never checkpointed (bounce buffers and other
// transport scratch space). Call before Start. Excluding a region twice
// is a no-op, and excluded regions vanish from segment region tables —
// a restore does not recreate them.
func (c *Checkpointer) Exclude(r *mem.Region) {
	if r != nil {
		c.excluded[r] = true
	}
}

// ExcludeData marks a region's *contents* as recomputable: the region
// stays in every segment's region table, so a restore recreates it at
// its original address (zero-filled), but its pages are never
// protected, captured, or counted toward a line. This is the runtime
// half of a ckptspec Recomputable classification — callers re-derive
// the contents after a restore (recompute hook) or rely on the kernel
// fully rewriting them before any read. Call before Start; idempotent.
func (c *Checkpointer) ExcludeData(r *mem.Region) {
	if r != nil {
		c.dataExcluded[r] = true
	}
}

// ApplySpec excludes the data of every binding the spec classifies as
// recomputable and returns those bindings, so the caller can run their
// recompute hooks after a restore. Bindings absent from the spec stay
// protected.
func (c *Checkpointer) ApplySpec(spec *ckptspec.Spec, bindings []ckptspec.Binding) []ckptspec.Binding {
	if spec == nil {
		return nil
	}
	ex := spec.Recomputable(bindings)
	for _, b := range ex {
		c.ExcludeData(b.Region)
	}
	return ex
}

// Start protects all data memory and installs the fault/map hooks,
// chaining any previously installed ones.
func (c *Checkpointer) Start() {
	if c.running {
		panic("ckpt: already started")
	}
	c.running = true
	c.prevF = c.space.SetFaultHandler(c.onFault)
	c.prevM = c.space.SetMapHook(c.onMap)
	c.protectAll()
}

// Stop removes the hooks and unprotects memory.
func (c *Checkpointer) Stop() {
	if !c.running {
		return
	}
	c.running = false
	c.space.SetFaultHandler(c.prevF)
	c.space.SetMapHook(c.prevM)
	c.space.UnprotectAllData()
}

// Stats returns a copy of the lifetime counters.
func (c *Checkpointer) Stats() Stats { return c.stats }

// Seq returns the next segment sequence number.
func (c *Checkpointer) Seq() uint64 { return c.seq }

// Rank returns the rank this checkpointer labels its segments with.
func (c *Checkpointer) Rank() int { return c.opts.Rank }

// Store returns the stable-storage backend segments persist to.
func (c *Checkpointer) Store() storage.Store { return c.opts.Store }

// Space returns the address space this checkpointer protects.
func (c *Checkpointer) Space() *mem.AddressSpace { return c.space }

// Rebase realigns the checkpointer after a failed persist: the next
// checkpoint is written at seq and is forced full, basing a fresh
// self-contained chain. A Checkpoint that failed at the store has
// already consumed its dirty set, so continuing incrementally would
// silently drop pages from the chain — re-basing is the only safe
// resumption.
func (c *Checkpointer) Rebase(seq uint64) {
	c.seq = seq
	c.took = false
}

func (c *Checkpointer) protectAll() {
	for _, r := range c.space.Regions() {
		if r.Kind().Checkpointable() && !c.excluded[r] && !c.dataExcluded[r] {
			r.ProtectAll()
		}
	}
}

func (c *Checkpointer) onFault(f mem.Fault) {
	rs := c.lastFaultRS
	if f.Region != c.lastFaultR {
		rs = c.dirty[f.Region]
		if rs == nil {
			rs = &bitset.Set{}
			c.dirty[f.Region] = rs
		}
		c.lastFaultR, c.lastFaultRS = f.Region, rs
	}
	idx := f.Region.PageIndex(f.Page)
	rs.Add(idx)
	f.Region.SetProtected(f.Page, false)
	// Overlapped checkpointing: capture the pre-image of a pending page
	// before the write lands.
	c.overlapFault(f)
	// CoW accounting: a write to a page captured by a still-draining
	// segment forces a pre-image copy in an overlapped implementation.
	if c.opts.TrackCow && c.drainSet != nil {
		if c.eng.Now() >= c.drainUntil {
			c.drainSet = nil
		} else if ds := c.drainSet[f.Region]; ds != nil && ds.Has(idx) {
			ds.Remove(idx) // copy taken once per page per drain
			c.stats.CowCopyBytes += c.space.PageSize()
		}
	}
	if c.prevF != nil {
		c.prevF(f)
	}
}

func (c *Checkpointer) onMap(r *mem.Region, mapped bool) {
	if mapped {
		if c.running && r.Kind().Checkpointable() && !c.excluded[r] && !c.dataExcluded[r] {
			r.ProtectAll()
		}
	} else {
		c.overlapUnmap(r)
		if rs, ok := c.dirty[r]; ok {
			c.excludedAccum += rs.CountBelow(r.Pages())
			delete(c.dirty, r)
		}
		if r == c.lastFaultR {
			c.lastFaultR, c.lastFaultRS = nil, nil
		}
		delete(c.excluded, r)
		delete(c.dataExcluded, r)
		delete(c.drainSet, r)
	}
	if c.prevM != nil {
		c.prevM(r, mapped)
	}
}

// regionTable snapshots the live checkpointable regions.
func (c *Checkpointer) regionTable() []RegionInfo {
	var out []RegionInfo
	for _, r := range c.space.Regions() {
		if r.Kind().Checkpointable() && !c.excluded[r] {
			out = append(out, RegionInfo{Start: r.Start(), Size: r.Size(), Kind: r.Kind()})
		}
	}
	return out
}

// Checkpoint captures a segment — full when due, incremental otherwise —
// persists it to the store and re-protects memory. It returns the
// result including the modelled sink write time.
func (c *Checkpointer) Checkpoint() (Result, error) {
	if !c.running {
		return Result{}, fmt.Errorf("ckpt: checkpointer not started")
	}
	if c.inflight != nil {
		return Result{}, fmt.Errorf("ckpt: overlapped checkpoint %d still draining", c.inflight.seg.Seq)
	}
	kind := Incremental
	if !c.took || (c.opts.FullEvery > 0 && (c.seq-c.opts.StartSeq)%uint64(c.opts.FullEvery) == 0) {
		kind = Full
		c.epoch = c.seq
	}
	c.took = true
	seg := &Segment{
		Rank:        c.opts.Rank,
		Seq:         c.seq,
		Epoch:       c.epoch,
		Kind:        kind,
		ContentFree: c.space.Phantom(),
		PageSize:    c.space.PageSize(),
		TakenAt:     c.eng.Now(),
		Regions:     c.regionTable(),
	}
	ps := c.space.PageSize()
	var dedupSkipped uint64
	capture := func(r *mem.Region, idx uint64) {
		rec := PageRecord{Addr: r.PageAddr(idx)}
		if !seg.ContentFree {
			if pd := r.PeekPage(idx); pd != nil {
				rec.Data = append([]byte(nil), pd...)
			}
			if c.skipUnchanged(kind, rec.Addr, rec.Data) {
				dedupSkipped++
				return
			}
		}
		seg.Pages = append(seg.Pages, rec)
	}
	var silentPages uint64
	switch kind {
	case Full:
		for _, r := range c.space.Regions() {
			if !r.Kind().Checkpointable() || c.excluded[r] || c.dataExcluded[r] {
				continue
			}
			for idx := uint64(0); idx < r.Pages(); idx++ {
				capture(r, idx)
			}
			// A full capture copies current contents, DMA'd or not —
			// the silent set is absorbed into this self-contained base.
			r.ClearSilent()
		}
	case Incremental:
		// Pages the NIC dirtied without faulting are absent from
		// c.dirty: this capture omits them, and a restore through it
		// replays their stale pre-DMA contents. Count them as the
		// segment's corruption risk.
		for _, r := range c.space.Regions() {
			if !r.Kind().Checkpointable() || c.excluded[r] || c.dataExcluded[r] {
				continue
			}
			silentPages += r.SilentPages()
		}
		for r, rs := range c.dirty {
			if r.Dead() {
				delete(c.dirty, r)
				continue
			}
			if c.dataExcluded[r] {
				// Dirtied before ExcludeData: drop, never capture.
				continue
			}
			limit := r.Pages()
			for idx, ok := rs.NextSet(0); ok && idx < limit; idx, ok = rs.NextSet(idx + 1) {
				capture(r, idx)
			}
		}
	}
	// CoW drain window for the next segment's accounting.
	if c.opts.TrackCow {
		c.drainSet = make(map[*mem.Region]*bitset.Set, len(c.dirty))
		for r, rs := range c.dirty {
			c.drainSet[r] = rs.Clone()
		}
	}
	// Reset dirty state and re-protect: the next delta starts now.
	for _, rs := range c.dirty {
		rs.Clear()
	}
	c.protectAll()

	var enc []byte
	var payload uint64
	if c.opts.Compress {
		enc, payload = seg.EncodeCompressed()
	} else {
		enc, payload = seg.Encode(), uint64(len(seg.Pages))*ps
	}
	key := SegmentKey(c.opts.Rank, c.seq)
	if err := c.opts.Store.Put(key, enc); err != nil {
		return Result{}, fmt.Errorf("ckpt: persist %s: %w", key, err)
	}
	// The sink absorbs the raw page volume, or the compressed payload
	// when compression is on (the paper's IB metric is the former).
	durBytes := uint64(len(seg.Pages)) * ps
	if c.opts.Compress {
		durBytes = payload
	}
	res := Result{
		Seq:           c.seq,
		Epoch:         c.epoch,
		Kind:          kind,
		Pages:         uint64(len(seg.Pages)),
		Bytes:         uint64(len(enc)),
		PageBytes:     uint64(len(seg.Pages)) * ps,
		PayloadBytes:  payload,
		DedupSkipped:  dedupSkipped,
		Duration:      c.opts.Sink.WriteTime(durBytes),
		ExcludedPages: c.excludedAccum,

		SilentDirtyPages: silentPages,
		SilentDirtyBytes: silentPages * ps,
	}
	if c.opts.TrackCow {
		c.drainUntil = c.eng.Now() + res.Duration
	}
	c.excludedAccum = 0
	c.seq++
	c.stats.Checkpoints++
	if kind == Full {
		c.stats.FullPages += res.Pages
	} else {
		c.stats.DeltaPages += res.Pages
	}
	c.stats.TotalBytes += res.Bytes
	c.stats.TotalDuration += res.Duration
	c.stats.ExcludedPages += res.ExcludedPages
	c.stats.DedupSkippedPages += dedupSkipped
	c.stats.PayloadBytes += payload
	c.stats.SilentDirtyBytes += res.SilentDirtyBytes
	return res, nil
}

// skipUnchanged implements content deduplication: it records the page's
// content hash and reports whether an incremental capture may elide the
// page because its content is unchanged since it was last persisted.
// Full checkpoints never skip — every chain base is self-contained.
func (c *Checkpointer) skipUnchanged(kind Kind, addr uint64, data []byte) bool {
	if c.hashes == nil {
		return false
	}
	h := pageHash(data, c.space.PageSize())
	prev, seen := c.hashes[addr]
	c.hashes[addr] = h
	return kind == Incremental && seen && prev == h
}

// LoadSegment fetches and decodes one segment of this checkpointer's rank.
// A fetch failure keeps the storage tier's typed cause (ErrNotFound,
// ErrCorrupt, ErrUnavailable, ErrTransient); bytes that fetched but do
// not decode are typed storage.ErrCorrupt, so callers can tell a missing
// segment from a rotten one with errors.Is alone.
func LoadSegment(store storage.Store, rank int, seq uint64) (*Segment, error) {
	data, err := store.Get(SegmentKey(rank, seq))
	if err != nil {
		return nil, err
	}
	seg, err := DecodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: segment rank %d seq %d undecodable (%v): %w", rank, seq, err, storage.ErrCorrupt)
	}
	return seg, nil
}

// Restore rebuilds the state captured for rank up to and including
// targetSeq into space. The space must be backed and must contain no
// checkpointable regions (a fresh process image); region layout is taken
// from the target segment and page contents are replayed from the chain's
// base full segment forward, skipping pages whose regions no longer exist
// at the target — rolled-forward memory exclusion.
func Restore(store storage.Store, rank int, targetSeq uint64, space *mem.AddressSpace) error {
	if space.Phantom() {
		return fmt.Errorf("ckpt: cannot restore into a phantom address space")
	}
	for _, r := range space.Regions() {
		if r.Kind().Checkpointable() {
			return fmt.Errorf("ckpt: restore target already has a %v region", r.Kind())
		}
	}
	target, err := LoadSegment(store, rank, targetSeq)
	if err != nil {
		return fmt.Errorf("ckpt: load target: %w", err)
	}
	if target.PageSize != space.PageSize() {
		return fmt.Errorf("ckpt: page size mismatch: segment %d, space %d", target.PageSize, space.PageSize())
	}
	// Recreate the layout of the target segment.
	for _, ri := range target.Regions {
		if _, err := space.MapAt(ri.Start, ri.Size, ri.Kind); err != nil {
			return fmt.Errorf("ckpt: recreate region: %w", err)
		}
	}
	// Replay pages from the epoch base forward.
	for seq := target.Epoch; seq <= targetSeq; seq++ {
		seg := target
		if seq != targetSeq {
			if seg, err = LoadSegment(store, rank, seq); err != nil {
				return fmt.Errorf("ckpt: load chain segment %d: %w", seq, err)
			}
		}
		if seq == target.Epoch && seg.Kind != Full {
			return fmt.Errorf("ckpt: chain base %d is not a full segment", seq)
		}
		if seg.ContentFree {
			return fmt.Errorf("ckpt: segment %d is content-free; cannot restore data", seq)
		}
		for _, p := range seg.Pages {
			r := space.Find(p.Addr)
			if r == nil {
				continue // page's region gone by target time: excluded
			}
			idx := r.PageIndex(p.Addr)
			if idx >= r.Pages() {
				continue
			}
			if p.Data == nil {
				// Zero page: only meaningful if something nonzero
				// was there before, which replay order guarantees
				// is handled by overwriting.
				zero := make([]byte, space.PageSize())
				r.LoadPage(idx, zero)
				continue
			}
			r.LoadPage(idx, p.Data)
		}
	}
	return nil
}
