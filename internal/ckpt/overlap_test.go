package ckpt

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

func newOverlap(t *testing.T, sink storage.Model) (*des.Engine, *mem.AddressSpace, *Checkpointer, *storage.MemStore) {
	t.Helper()
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	store := storage.NewMemStore()
	c, err := NewCheckpointer(eng, sp, Options{Store: store, Sink: sink, FullEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sp, c, store
}

// slowSink drains one page per virtual second.
func slowSink() storage.Model {
	return storage.Model{Name: "slow", Bandwidth: float64(pageSize)}
}

func TestOverlappedBasic(t *testing.T) {
	eng, sp, c, _ := newOverlap(t, slowSink())
	r, _ := sp.Mmap(5 * pageSize)
	sp.Write(r.Start(), bytes.Repeat([]byte{7}, 5*pageSize))
	c.Start()

	var got Result
	done := false
	if err := c.CheckpointOverlapped(func(res Result, err error) {
		if err != nil {
			t.Error(err)
		}
		got = res
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Draining() {
		t.Fatal("not draining after trigger")
	}
	// A second trigger while draining fails; so does a synchronous one.
	if err := c.CheckpointOverlapped(nil); err == nil {
		t.Fatal("double overlapped trigger accepted")
	}
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("synchronous checkpoint during drain accepted")
	}
	eng.Run(des.MaxTime)
	if !done || c.Draining() {
		t.Fatal("drain never completed")
	}
	if got.Kind != Full || got.Pages != 5 {
		t.Fatalf("result: %+v", got)
	}
	if got.CompletedAt != got.Duration {
		t.Fatalf("completed at %v, want %v", got.CompletedAt, got.Duration)
	}
	if c.Stats().CowCopyBytes != 0 {
		t.Fatal("no writes during drain, but CoW copies counted")
	}
}

// The defining property: writes racing the drain do NOT leak into the
// checkpoint — the segment holds the trigger-time image.
func TestOverlappedPreImageSemantics(t *testing.T) {
	eng, sp, c, store := newOverlap(t, slowSink())
	r, _ := sp.Mmap(4 * pageSize)
	sp.Write(r.Start(), bytes.Repeat([]byte{0xAA}, 4*pageSize))
	c.Start()

	// Snapshot the trigger-time image.
	want := make([]byte, 4*pageSize)
	sp.Read(r.Start(), want)

	if err := c.CheckpointOverlapped(nil); err != nil {
		t.Fatal(err)
	}
	// Drain lasts 4 virtual seconds; dirty pages 0 and 2 at t=1s.
	eng.Schedule(des.Second, func() {
		sp.Write(r.Start(), bytes.Repeat([]byte{0xBB}, 100))
		sp.Write(r.Start()+2*pageSize, bytes.Repeat([]byte{0xCC}, 100))
	})
	eng.Run(des.MaxTime)

	if got := c.Stats().CowCopyBytes; got != 2*pageSize {
		t.Fatalf("CowCopyBytes = %d, want 2 pages", got)
	}
	fresh := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	if err := Restore(store, 0, 0, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*pageSize)
	fresh.Read(r.Start(), got)
	if !bytes.Equal(got, want) {
		t.Fatal("drain-racing writes leaked into the checkpoint")
	}
	// And the post-drain dirty state carries the racing writes into the
	// NEXT checkpoint.
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 2 {
		t.Fatalf("next delta pages = %d, want 2", res.Pages)
	}
}

func TestOverlappedUnmapDuringDrain(t *testing.T) {
	eng, sp, c, store := newOverlap(t, slowSink())
	keep, _ := sp.Mmap(pageSize)
	sp.Write(keep.Start(), []byte{1})
	c.Start()
	c.CheckpointOverlapped(nil) // full: 1 page, 1s drain
	eng.Run(des.MaxTime)

	// Map a temp arena, dirty it, trigger, then unmap mid-drain.
	temp, _ := sp.Mmap(3 * pageSize)
	sp.Write(temp.Start(), bytes.Repeat([]byte{9}, 3*pageSize))
	tempStart := temp.Start()
	if err := c.CheckpointOverlapped(nil); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(eng.Now()+des.Second, func() { sp.Munmap(temp) })
	eng.Run(des.MaxTime)

	// The segment must still carry the arena's trigger-time contents.
	seg, err := LoadSegment(store, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, p := range seg.Pages {
		if p.Addr >= tempStart && p.Addr < tempStart+3*pageSize {
			found++
			if p.Data == nil || p.Data[0] != 9 {
				t.Fatal("unmapped-region page captured with wrong contents")
			}
		}
	}
	if found != 3 {
		t.Fatalf("captured %d pages of the unmapped arena, want 3", found)
	}
}

func TestOverlappedIncrementalChainRestores(t *testing.T) {
	eng, sp, c, store := newOverlap(t, slowSink())
	r, _ := sp.Mmap(8 * pageSize)
	sp.Write(r.Start(), bytes.Repeat([]byte{1}, 8*pageSize))
	c.Start()

	var lastSeq uint64
	step := func(mutate func()) {
		if err := c.CheckpointOverlapped(func(res Result, err error) {
			if err != nil {
				t.Error(err)
			}
			lastSeq = res.Seq
		}); err != nil {
			t.Fatal(err)
		}
		eng.Run(des.MaxTime) // drain fully
		mutate()
	}
	step(func() { sp.Write(r.Start()+pageSize, bytes.Repeat([]byte{2}, pageSize)) })
	step(func() { sp.Write(r.Start()+5*pageSize, bytes.Repeat([]byte{3}, 2*pageSize)) })
	step(func() {})

	want := make([]byte, 8*pageSize)
	sp.Read(r.Start(), want)
	fresh := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	if err := Restore(store, 0, lastSeq, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8*pageSize)
	fresh.Read(r.Start(), got)
	if !bytes.Equal(got, want) {
		t.Fatal("overlapped chain restore mismatch")
	}
}

func TestOverlappedRequiresStart(t *testing.T) {
	_, _, c, _ := newOverlap(t, slowSink())
	if err := c.CheckpointOverlapped(nil); err == nil {
		t.Fatal("overlapped checkpoint before Start accepted")
	}
}

// Property: under random write schedules racing random drains, the
// restored image always equals the trigger-time snapshot.
func TestPropertyOverlappedTriggerImage(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 81))
		eng := des.NewEngine()
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		store := storage.NewMemStore()
		sink := storage.Model{Name: "s", Bandwidth: 512 * float64(rng.IntN(4)+1)}
		c, _ := NewCheckpointer(eng, sp, Options{Store: store, Sink: sink})
		const pages = 16
		r, _ := sp.Mmap(pages * 512)
		// Random initial contents.
		init := make([]byte, pages*512)
		for i := range init {
			init[i] = byte(rng.IntN(256))
		}
		sp.Write(r.Start(), init)
		c.Start()

		want := make([]byte, pages*512)
		sp.Read(r.Start(), want)
		if c.CheckpointOverlapped(nil) != nil {
			return false
		}
		// Racing writes at random times during (and after) the drain.
		for i := 0; i < rng.IntN(10); i++ {
			at := des.Time(rng.IntN(20)+1) * des.Second / 2
			off := uint64(rng.IntN(pages)) * 512
			val := byte(rng.IntN(256))
			eng.Schedule(at, func() {
				sp.Write(r.Start()+off, bytes.Repeat([]byte{val}, 512))
			})
		}
		eng.Run(des.MaxTime)
		fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
		if Restore(store, 0, 0, fresh) != nil {
			return false
		}
		got := make([]byte, pages*512)
		fresh.Read(r.Start(), got)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOverlappedCheckpoint(b *testing.B) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	store := storage.NewMemStore()
	c, _ := NewCheckpointer(eng, sp, Options{Store: store, Sink: storage.SCSISink()})
	r, _ := sp.Mmap(256 * pageSize)
	c.Start()
	b.SetBytes(64 * pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.WriteRange(r.Start(), 64*pageSize)
		if err := c.CheckpointOverlapped(nil); err != nil {
			b.Fatal(err)
		}
		eng.Run(des.MaxTime)
	}
}
