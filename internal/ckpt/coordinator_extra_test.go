package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

func TestStaggeredCoordinator(t *testing.T) {
	eng := des.NewEngine()
	store := storage.NewMemStore()
	sink := storage.Model{Name: "s", Bandwidth: float64(pageSize)} // 1 page/s
	var cps []*Checkpointer
	for i := 0; i < 3; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
		sp.Mmap(2 * pageSize)
		c, _ := NewCheckpointer(eng, sp, Options{Rank: i, Store: store, Sink: sink})
		c.Start()
		cps = append(cps, c)
	}
	parallel, _ := NewCoordinator(eng, cps)
	g1, err := parallel.GlobalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Parallel sinks: commit latency = slowest rank = 2 pages = 2s.
	if g1.MaxDuration != 2*des.Second {
		t.Fatalf("parallel commit = %v, want 2s", g1.MaxDuration)
	}

	// Same layout through a shared (staggered) sink.
	eng2 := des.NewEngine()
	var cps2 []*Checkpointer
	for i := 0; i < 3; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
		sp.Mmap(2 * pageSize)
		c, _ := NewCheckpointer(eng2, sp, Options{Rank: i, Store: storage.NewMemStore(), Sink: sink})
		c.Start()
		cps2 = append(cps2, c)
	}
	shared, _ := NewCoordinator(eng2, cps2)
	shared.Staggered = true
	g2, err := shared.GlobalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Shared sink: 3 ranks x 2 pages serialise = 6s.
	if g2.MaxDuration != 6*des.Second {
		t.Fatalf("staggered commit = %v, want 6s", g2.MaxDuration)
	}
}

func TestChainVolume(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	store := storage.NewMemStore()
	c, _ := NewCheckpointer(eng, sp, Options{Store: store, FullEvery: 3})
	r, _ := sp.Mmap(4 * pageSize)
	sp.Write(r.Start(), bytes.Repeat([]byte{1}, 4*pageSize))
	c.Start()
	r0, _ := c.Checkpoint() // seq 0: full
	sp.Write(r.Start(), bytes.Repeat([]byte{2}, pageSize))
	r1, _ := c.Checkpoint() // seq 1: delta
	sp.Write(r.Start()+pageSize, bytes.Repeat([]byte{3}, pageSize))
	r2, _ := c.Checkpoint() // seq 2: delta

	vol, err := ChainVolume(store, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vol != r0.Bytes+r1.Bytes+r2.Bytes {
		t.Fatalf("chain volume = %d, want %d", vol, r0.Bytes+r1.Bytes+r2.Bytes)
	}
	// Restoring to seq 1 reads only the first two segments.
	vol1, _ := ChainVolume(store, 0, 1)
	if vol1 != r0.Bytes+r1.Bytes {
		t.Fatalf("chain volume to 1 = %d", vol1)
	}
	// A new epoch resets the chain base.
	sp.Write(r.Start(), bytes.Repeat([]byte{4}, pageSize))
	r3, _ := c.Checkpoint() // seq 3: full (FullEvery=3)
	if r3.Kind != Full {
		t.Fatalf("seq 3 kind = %v", r3.Kind)
	}
	vol3, _ := ChainVolume(store, 0, 3)
	if vol3 != r3.Bytes {
		t.Fatalf("fresh epoch volume = %d, want %d", vol3, r3.Bytes)
	}
	if _, err := ChainVolume(store, 0, 99); err == nil {
		t.Fatal("missing target accepted")
	}
}
