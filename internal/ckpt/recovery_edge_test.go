package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// Satellite coverage: ParseSegmentKey against hostile key shapes, and
// Prune against stores holding foreign keys and gapped sequence spaces.

func TestParseSegmentKeyEdgeCases(t *testing.T) {
	var rank int
	var seq uint64

	// Width is a formatting convention, not a requirement.
	if !ParseSegmentKey("rank7/seg12", &rank, &seq) || rank != 7 || seq != 12 {
		t.Fatalf("unpadded key: rank=%d seq=%d", rank, seq)
	}
	// Maximum representable sequence survives the round trip.
	if !ParseSegmentKey("rank000/seg18446744073709551615", &rank, &seq) || seq != ^uint64(0) {
		t.Fatalf("max seq: %d", seq)
	}
	malformed := []string{
		"rank003/seg00001/extra", // too many separators
		"rank/seg000001",         // empty rank digits
		"rank003/seg",            // empty seq digits
		"rank-03/seg000001",      // negative-looking rank... rejected by Atoi? no: "-03" parses
		"rank003seg000001",       // missing separator
		"RANK003/seg000001",      // case matters
		"rank003/SEG000001",
		"rank0x3/seg000001",                // hex not allowed
		"rank003/seg1.5",                   // non-integer
		"rank003/seg18446744073709551616",  // overflows uint64
		"rank003/seg-1",                    // negative sequence
		"prefix/rank003/seg000001",         // nested under another dir
		"rank003/seg000001 ",               // trailing space in digits
		"\x00rank003/seg000001",            // leading junk
		"rank999999999999999999/seg000001", // overflows int on 64-bit? no — but must parse or reject cleanly
	}
	for _, key := range malformed {
		rank, seq = -1, 0
		got := ParseSegmentKey(key, &rank, &seq)
		switch key {
		case "rank-03/seg000001":
			// strconv.Atoi accepts a sign; the scan layer tolerates it
			// and range checks (rank < 0) reject it downstream.
			if got && rank >= 0 {
				t.Errorf("key %q: rank %d parsed non-negative", key, rank)
			}
		case "rank999999999999999999/seg000001":
			// Parses on 64-bit ints; the caller's rank-range check drops it.
			if got && rank < 1 {
				t.Errorf("key %q: implausible rank %d", key, rank)
			}
		default:
			if got {
				t.Errorf("malformed key %q accepted (rank=%d seq=%d)", key, rank, seq)
			}
		}
	}
}

// chainedStore builds one rank's store with epochs 0(F),1,2 and 3(F),4
// plus foreign keys that Prune must leave untouched.
func chainedStore(t *testing.T) storage.Store {
	t.Helper()
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
	store := storage.NewMemStore()
	c, err := NewCheckpointer(eng, sp, Options{Store: store, FullEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sp.Mmap(4 * 512)
	c.Start()
	for i := 0; i < 5; i++ {
		sp.Write(r.Start(), bytes.Repeat([]byte{byte(i)}, 512))
		if _, err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	store.Put("manifest.json", []byte(`{"owner":"someone else"}`))
	store.Put("rank000/notes.txt", []byte("not a segment"))
	return store
}

func TestPruneIgnoresForeignKeys(t *testing.T) {
	store := chainedStore(t)
	deleted, _, err := Prune(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 3 { // seqs 0-2 below the newest epoch base 3
		t.Fatalf("deleted %d, want 3", deleted)
	}
	keys, _ := store.Keys()
	foreign := 0
	for _, k := range keys {
		if k == "manifest.json" || k == "rank000/notes.txt" {
			foreign++
		}
	}
	if foreign != 2 {
		t.Fatalf("foreign keys damaged: %v", keys)
	}
}

func TestPruneWithSequenceGaps(t *testing.T) {
	store := chainedStore(t)
	// Open a gap below the newest epoch: seq 1 vanished (lost replica,
	// manual cleanup). Prune must still remove the rest of the dead
	// epoch without tripping on the hole.
	if err := store.Delete(keyFor(0, 1)); err != nil {
		t.Fatal(err)
	}
	deleted, _, err := Prune(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 2 { // seqs 0 and 2; 1 is already gone
		t.Fatalf("deleted %d, want 2", deleted)
	}
	// The surviving epoch still restores.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
	if err := Restore(store, 0, 4, fresh); err != nil {
		t.Fatalf("restore after gapped prune: %v", err)
	}
}

func TestPruneRanksBeyondStore(t *testing.T) {
	store := chainedStore(t)
	// Asking about more ranks than have segments: ranks with no data
	// are simply absent; rank 0 still prunes.
	deleted, _, err := Prune(store, 8)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 3 {
		t.Fatalf("deleted %d, want 3", deleted)
	}
}

func TestPruneCorruptNewestSegment(t *testing.T) {
	store := chainedStore(t)
	// The newest segment's bytes are garbage: Prune needs its epoch and
	// must fail loudly rather than guess a floor.
	store.Put(keyFor(0, 4), []byte("garbage"))
	if _, _, err := Prune(store, 1); err == nil {
		t.Fatal("prune over a corrupt newest segment succeeded")
	}
}
