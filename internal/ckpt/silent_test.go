package ckpt

import (
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// A DMA write behind the checkpointer's protection must surface as the
// incremental segment's corruption risk — and a full checkpoint, which
// copies current contents regardless of dirty sets, must absorb it.
func TestCheckpointSilentDirtyAccounting(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	d := sp.MapData(4 * pageSize)
	c, err := NewCheckpointer(eng, sp, Options{Store: storage.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if _, err := c.Checkpoint(); err != nil { // seq 0: full base
		t.Fatal(err)
	}

	// One CPU write (tracked) and one DMA write (silent).
	if err := sp.Write(d.Start(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.WriteDirect(d.Start()+2*pageSize, []byte{2}); err != nil {
		t.Fatal(err)
	}

	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != Incremental || res.Pages != 1 {
		t.Fatalf("incremental captured %d pages (kind %v), want 1: the DMA page must be missed", res.Pages, res.Kind)
	}
	if res.SilentDirtyPages != 1 || res.SilentDirtyBytes != pageSize {
		t.Fatalf("corruption risk = %d pages / %d bytes, want 1/%d", res.SilentDirtyPages, res.SilentDirtyBytes, pageSize)
	}
	if c.Stats().SilentDirtyBytes != pageSize {
		t.Fatalf("Stats.SilentDirtyBytes = %d, want %d", c.Stats().SilentDirtyBytes, pageSize)
	}

	// Reconcile through replay (the drain protocol's deregister step):
	// the next incremental captures the page and the risk drops to zero.
	if pages := sp.ReplaySilent(); pages != 1 {
		t.Fatalf("ReplaySilent = %d, want 1", pages)
	}
	res, err = c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentDirtyPages != 0 || res.Pages != 1 {
		t.Fatalf("post-replay incremental: %d silent / %d pages, want 0/1", res.SilentDirtyPages, res.Pages)
	}
}

func TestFullCheckpointAbsorbsSilentPages(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
	d := sp.MapData(2 * pageSize)
	c, err := NewCheckpointer(eng, sp, Options{Store: storage.NewMemStore(), FullEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.WriteDirect(d.Start(), []byte{3}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Checkpoint() // FullEvery=1: full again
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != Full || res.SilentDirtyPages != 0 {
		t.Fatalf("full checkpoint reported %d silent pages (kind %v), want 0", res.SilentDirtyPages, res.Kind)
	}
	if sp.SilentDirtyBytes() != 0 {
		t.Fatal("full capture did not clear the silent set")
	}
}
