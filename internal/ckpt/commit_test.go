package ckpt

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// commitRig builds n ranks of 2 dirty pages each over one shared store
// with a 1-page-per-second sink, so prepare acks land at predictable
// virtual times.
func commitRig(t *testing.T, n int, store storage.Store) (*des.Engine, *Coordinator, []*mem.AddressSpace) {
	t.Helper()
	eng := des.NewEngine()
	sink := storage.Model{Name: "s", Bandwidth: float64(pageSize)}
	var cps []*Checkpointer
	var spaces []*mem.AddressSpace
	for i := 0; i < n; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize})
		r, _ := sp.Mmap(2 * pageSize)
		sp.Write(r.Start(), bytes.Repeat([]byte{byte(i + 1)}, 2*pageSize))
		c, err := NewCheckpointer(eng, sp, Options{Rank: i, Store: store, Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		cps = append(cps, c)
		spaces = append(spaces, sp)
	}
	co, err := NewCoordinator(eng, cps)
	if err != nil {
		t.Fatal(err)
	}
	return eng, co, spaces
}

// dirtyAll rewrites both pages of every rank so the next checkpoint has
// a full-size commit window again.
func dirtyAll(spaces []*mem.AddressSpace, val byte) {
	for _, sp := range spaces {
		for _, r := range sp.Regions() {
			if r.Kind().Checkpointable() {
				sp.Write(r.Start(), bytes.Repeat([]byte{val}, 2*pageSize))
			}
		}
	}
}

func TestCommitMarkerRoundTrip(t *testing.T) {
	m := CommitMarker{Seq: 42, Ranks: 7, At: 3 * des.Second}
	got, err := DecodeCommitMarker(EncodeCommitMarker(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
	var seq uint64
	if !ParseCommitKey(CommitKey(42), &seq) || seq != 42 {
		t.Fatalf("ParseCommitKey(%q) failed", CommitKey(42))
	}
	if ParseCommitKey("rank000/seg000001", &seq) {
		t.Fatal("segment key parsed as commit key")
	}
}

func TestDecodeCommitMarkerCorrupt(t *testing.T) {
	valid := EncodeCommitMarker(CommitMarker{Seq: 1, Ranks: 2, At: 1})
	for name, data := range map[string][]byte{
		"empty":     nil,
		"short":     valid[:10],
		"long":      append(append([]byte(nil), valid...), 0),
		"bad magic": append([]byte("XXXX"), valid[4:]...),
		"bad ver":   append(append([]byte(nil), valid[:4]...), append([]byte{99}, valid[5:]...)...),
	} {
		if _, err := DecodeCommitMarker(data); err == nil {
			t.Fatalf("%s marker accepted", name)
		}
	}
}

// The happy path: prepare, per-rank acks, COMMIT marker, done at the
// commit's virtual completion time.
func TestTwoPhaseCommitCompletes(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, _ := commitRig(t, 3, store)
	var g GlobalResult
	var doneAt des.Time
	var doneErr error
	done := false
	co.BeginTwoPhase(TwoPhaseOptions{AckDelay: 10 * des.Millisecond}, func(res GlobalResult, err error) {
		g, doneErr, doneAt, done = res, err, eng.Now(), true
	})
	eng.Run(des.MaxTime)
	if !done || doneErr != nil {
		t.Fatalf("commit: done=%v err=%v", done, doneErr)
	}
	// 2 pages at 1 page/s per rank, parallel sinks: last ack at 2s+10ms.
	if want := 2*des.Second + 10*des.Millisecond; doneAt != want {
		t.Fatalf("committed at %v, want %v", doneAt, want)
	}
	if g.Seq != 0 || len(g.PerRank) != 3 {
		t.Fatalf("result = %+v", g)
	}
	seq, ok, err := LatestCommittedSeq(store, 3)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("LatestCommittedSeq = %d/%v/%v", seq, ok, err)
	}
	if err := VerifyCommittedLine(store, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, pending := co.PendingSeq(); pending {
		t.Fatal("round still pending after commit")
	}
	if len(co.Results()) != 1 {
		t.Fatalf("results = %d", len(co.Results()))
	}
}

// An abort between prepare and commit deletes the prepared segments and
// never writes a marker — recovery cannot trust the line.
func TestAbortBetweenPrepareAndCommit(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, spaces := commitRig(t, 3, store)

	// First, a line that fully commits.
	var firstErr error
	co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, err error) { firstErr = err })
	eng.Run(des.MaxTime)
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Second line: re-dirty every page so the commit window is 2s again,
	// then kill a rank 500ms into it.
	dirtyAll(spaces, 9)
	var abortErr error
	aborted := false
	eng.After(0, func() {
		co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, err error) { abortErr, aborted = err, true })
	})
	eng.After(500*des.Millisecond, func() {
		if !co.AbortPending(errors.New("rank 1 died")) {
			t.Fatal("nothing pending to abort")
		}
	})
	eng.Run(des.MaxTime)

	if !aborted || !errors.Is(abortErr, ErrCommitAborted) {
		t.Fatalf("abort: done=%v err=%v", aborted, abortErr)
	}
	// The aborted line left nothing: no marker, no segments.
	keys, _ := store.Keys()
	for _, k := range keys {
		if strings.Contains(k, "seg000001") || k == CommitKey(1) {
			t.Fatalf("aborted line left key %q", k)
		}
	}
	// Recovery falls back to the previous committed line.
	seq, ok, err := LatestCommittedSeq(store, 3)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("fallback line = %d/%v/%v, want 0/true", seq, ok, err)
	}
	if err := VerifyCommittedLine(store, 3, 1); err == nil {
		t.Fatal("aborted line verified as committed")
	}
}

// A straggler timeout aborts the round on its own.
func TestStragglerTimeoutAborts(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, _ := commitRig(t, 2, store)
	var err error
	done := false
	// Acks land at 2s; a 1s straggler guard fires first.
	co.BeginTwoPhase(TwoPhaseOptions{Timeout: des.Second}, func(_ GlobalResult, e error) { err, done = e, true })
	eng.Run(des.MaxTime)
	if !done || !errors.Is(err, ErrCommitAborted) {
		t.Fatalf("straggler: done=%v err=%v", done, err)
	}
	if eng.Now() != des.Second {
		t.Fatalf("abort at %v, want 1s", eng.Now())
	}
	if _, ok, _ := LatestCommittedSeq(store, 2); ok {
		t.Fatal("timed-out line trusted")
	}
}

// A prepare-phase storage refusal surfaces the storage error itself,
// not ErrCommitAborted — the caller distinguishes refused from
// rolled-back.
func TestPrepareRefusalIsNotAbort(t *testing.T) {
	faulty := storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{
		Seed: 1, OutageAfterOps: 1,
	})
	_, co, _ := commitRig(t, 2, faulty)
	var err error
	co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { err = e })
	if err == nil {
		t.Fatal("outage store accepted prepare")
	}
	if errors.Is(err, ErrCommitAborted) {
		t.Fatalf("prepare refusal reported as abort: %v", err)
	}
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("refusal not typed: %v", err)
	}
	if _, pending := co.PendingSeq(); pending {
		t.Fatal("refused prepare left a pending round")
	}
}

// A refused marker write aborts: damaged markers are skipped, committed
// lines only.
func TestDamagedMarkerSkipped(t *testing.T) {
	store := storage.NewMemStore()
	eng, co, spaces := commitRig(t, 2, store)
	for i := 0; i < 2; i++ {
		var err error
		co.BeginTwoPhase(TwoPhaseOptions{}, func(_ GlobalResult, e error) { err = e })
		eng.Run(des.MaxTime)
		if err != nil {
			t.Fatal(err)
		}
		dirtyAll(spaces, byte(10+i))
	}
	// Corrupt the newest line's marker: recovery falls back to line 0.
	if err := store.Put(CommitKey(1), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	seq, ok, err := LatestCommittedSeq(store, 2)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("with damaged marker: %d/%v/%v, want 0/true", seq, ok, err)
	}
	// Delete it entirely: same answer.
	if err := store.Delete(CommitKey(1)); err != nil {
		t.Fatal(err)
	}
	seq, ok, _ = LatestCommittedSeq(store, 2)
	if !ok || seq != 0 {
		t.Fatalf("with missing marker: %d/%v, want 0/true", seq, ok)
	}
}
