package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

// buildChains drives ranks checkpointers through n coordinated
// checkpoints (FullEvery controls epochs) over an integrity-enveloped
// store and returns the sealed store plus its raw backing store.
func buildChains(t *testing.T, ranks, n, fullEvery int) (storage.Store, *storage.MemStore) {
	t.Helper()
	eng := des.NewEngine()
	raw := storage.NewMemStore()
	store := storage.NewIntegrityStore(raw)
	var cps []*Checkpointer
	for i := 0; i < ranks; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		r, _ := sp.Mmap(4 * 512)
		sp.Write(r.Start(), bytes.Repeat([]byte{byte(i + 1)}, 4*512))
		c, err := NewCheckpointer(eng, sp, Options{Rank: i, Store: store, FullEvery: fullEvery})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		cps = append(cps, c)
		t.Cleanup(c.Stop)
	}
	co, err := NewCoordinator(eng, cps)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if _, err := co.GlobalCheckpoint(); err != nil {
			t.Fatal(err)
		}
	}
	return store, raw
}

func TestVerifyChainAcceptsSoundChains(t *testing.T) {
	store, _ := buildChains(t, 2, 5, 3)
	for rank := 0; rank < 2; rank++ {
		for seq := uint64(0); seq < 5; seq++ {
			if err := VerifyChain(store, rank, seq); err != nil {
				t.Fatalf("sound chain rejected: rank %d seq %d: %v", rank, seq, err)
			}
		}
	}
	if err := VerifyLine(store, 2, 4); err != nil {
		t.Fatalf("sound line rejected: %v", err)
	}
}

func TestVerifyChainDetectsDamage(t *testing.T) {
	// Chains 0(F) 1 2, 3(F) 4 per rank.
	store, raw := buildChains(t, 1, 5, 3)

	// Missing target.
	if err := VerifyChain(store, 0, 9); err == nil {
		t.Fatal("missing target accepted")
	}
	// Corrupt the mid-chain delta at seq 1 — target 2 must fail, target
	// 4 (a different epoch) must still verify.
	frame, _ := raw.Get(keyFor(0, 1))
	good := append([]byte(nil), frame...)
	frame[len(frame)-1] ^= 1
	raw.Put(keyFor(0, 1), frame)
	if err := VerifyChain(store, 0, 2); err == nil {
		t.Fatal("chain over corrupt delta accepted")
	}
	if err := VerifyChain(store, 0, 4); err != nil {
		t.Fatalf("independent epoch rejected: %v", err)
	}
	raw.Put(keyFor(0, 1), good)

	// Delete the chain base — every target in that epoch must fail.
	baseFrame, _ := raw.Get(keyFor(0, 0))
	raw.Delete(keyFor(0, 0))
	for seq := uint64(0); seq <= 2; seq++ {
		if err := VerifyChain(store, 0, seq); err == nil {
			t.Fatalf("chain with missing base accepted at seq %d", seq)
		}
	}
	raw.Put(keyFor(0, 0), baseFrame)

	// A segment whose bytes decode but lie about their identity.
	wrong := &Segment{Rank: 0, Seq: 99, Kind: Full, PageSize: 512}
	store.Put(keyFor(0, 5), wrong.Encode())
	if err := VerifyChain(store, 0, 5); err == nil {
		t.Fatal("mislabeled segment accepted")
	}
}

func TestLatestVerifiableSeqSkipsDamagedLines(t *testing.T) {
	store, raw := buildChains(t, 2, 5, 3)

	// Pristine store: verifiable line == consistent line == 4.
	seq, ok, err := LatestVerifiableSeq(store, 2)
	if err != nil || !ok || seq != 4 {
		t.Fatalf("pristine: seq=%d ok=%v err=%v", seq, ok, err)
	}

	// Corrupt rank 1's newest segment: line 4 is out, 3 still proves.
	frame, _ := raw.Get(keyFor(1, 4))
	frame[len(frame)/2] ^= 0x10
	raw.Put(keyFor(1, 4), frame)
	if seq, ok, _ = LatestVerifiableSeq(store, 2); !ok || seq != 3 {
		t.Fatalf("after corrupting (1,4): seq=%d ok=%v, want 3", seq, ok)
	}
	// LatestConsistentSeq still blindly trusts the key space.
	if blind, ok, _ := LatestConsistentSeq(store, 2); !ok || blind != 4 {
		t.Fatalf("consistent-seq baseline moved: %d %v", blind, ok)
	}

	// Kill the second epoch's base (seq 3 for both ranks): lines 3 and 4
	// are gone, and the first epoch's top line 2 is next.
	raw.Delete(keyFor(0, 3))
	if seq, ok, _ = LatestVerifiableSeq(store, 2); !ok || seq != 2 {
		t.Fatalf("after losing a base: seq=%d ok=%v, want 2", seq, ok)
	}

	// Wreck everything: no line survives.
	for _, k := range mustKeys(t, raw) {
		d, _ := raw.Get(k)
		if len(d) > 0 {
			d[0] ^= 0xFF
			raw.Put(k, d)
		}
	}
	if _, ok, err = LatestVerifiableSeq(store, 2); err != nil || ok {
		t.Fatalf("fully corrupt store: ok=%v err=%v, want no line", ok, err)
	}
	// Zero or negative ranks: no line, no panic.
	if _, ok, _ := LatestVerifiableSeq(store, 0); ok {
		t.Fatal("zero ranks reported a line")
	}
}

func mustKeys(t *testing.T, s storage.Store) []string {
	t.Helper()
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestVerifiedRestoreEquality: restoring from the line LatestVerifiableSeq
// picks after damage yields exactly the state that line captured.
func TestVerifiedRestoreEquality(t *testing.T) {
	eng := des.NewEngine()
	raw := storage.NewMemStore()
	store := storage.NewIntegrityStore(raw)
	sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
	r, _ := sp.Mmap(4 * 512)
	c, _ := NewCheckpointer(eng, sp, Options{Store: store})
	c.Start()
	var wantAt1 []byte
	for seq := 0; seq < 3; seq++ {
		sp.Write(r.Start()+uint64(seq)*512, bytes.Repeat([]byte{byte(0xA0 + seq)}, 512))
		if _, err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if seq == 1 {
			wantAt1 = make([]byte, 4*512)
			sp.Read(r.Start(), wantAt1)
		}
	}
	// Newest segment rots at rest.
	frame, _ := raw.Get(keyFor(0, 2))
	frame[20] ^= 0x04
	raw.Put(keyFor(0, 2), frame)

	seq, ok, err := LatestVerifiableSeq(store, 1)
	if err != nil || !ok || seq != 1 {
		t.Fatalf("line: seq=%d ok=%v err=%v", seq, ok, err)
	}
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
	if err := Restore(store, 0, seq, fresh); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*512)
	if err := fresh.Read(r.Start(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantAt1) {
		t.Fatal("verified-line restore is not bit-exact")
	}
}
