package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
)

func TestParseSegmentKey(t *testing.T) {
	var rank int
	var seq uint64
	if !ParseSegmentKey("rank003/seg000042", &rank, &seq) || rank != 3 || seq != 42 {
		t.Fatalf("parse: %d %d", rank, seq)
	}
	for _, bad := range []string{"", "rank003", "seg000001/rank003", "rankX/seg000001", "rank003/segY", "a/b/c"} {
		if ParseSegmentKey(bad, &rank, &seq) {
			t.Errorf("bad key %q accepted", bad)
		}
	}
}

func TestLatestConsistentSeq(t *testing.T) {
	store := storage.NewMemStore()
	// No segments at all.
	if _, ok, err := LatestConsistentSeq(store, 2); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	put := func(rank int, seq uint64) {
		seg := &Segment{Rank: rank, Seq: seq, Kind: Full, PageSize: 512}
		key := keyFor(rank, seq)
		store.Put(key, seg.Encode())
	}
	put(0, 0)
	put(0, 1)
	put(1, 0)
	// Rank 1's checkpoint 1 never committed (failure mid-global-ckpt):
	// the consistent line is 0.
	seq, ok, err := LatestConsistentSeq(store, 2)
	if err != nil || !ok || seq != 0 {
		t.Fatalf("seq=%d ok=%v err=%v, want 0 true", seq, ok, err)
	}
	put(1, 1)
	seq, _, _ = LatestConsistentSeq(store, 2)
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	// A rank with no segments blocks consistency.
	if _, ok, _ := LatestConsistentSeq(store, 3); ok {
		t.Fatal("missing rank reported consistent")
	}
	// Foreign keys are ignored.
	store.Put("junk/key", []byte("x"))
	if seq, ok, _ := LatestConsistentSeq(store, 2); !ok || seq != 1 {
		t.Fatal("foreign keys disturbed the scan")
	}
}

func keyFor(rank int, seq uint64) string {
	return "rank" + pad(rank, 3) + "/seg" + pad(int(seq), 6)
}

func pad(v, width int) string {
	s := ""
	for d := width - 1; d >= 0; d-- {
		p := 1
		for i := 0; i < d; i++ {
			p *= 10
		}
		s += string(rune('0' + (v/p)%10))
	}
	return s
}

// Multi-rank coordinated checkpoint + failure + RestoreAll: every rank's
// memory must come back exactly as at the last consistent line.
func TestCoordinatedRecoveryEndToEnd(t *testing.T) {
	const ranks = 4
	eng := des.NewEngine()
	store := storage.NewMemStore()
	var spaces []*mem.AddressSpace
	var cps []*Checkpointer
	var regions []*mem.Region
	for i := 0; i < ranks; i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		r, _ := sp.Mmap(8 * 512)
		sp.Write(r.Start(), bytes.Repeat([]byte{byte(i + 1)}, 8*512))
		c, _ := NewCheckpointer(eng, sp, Options{Rank: i, Store: store})
		c.Start()
		spaces = append(spaces, sp)
		cps = append(cps, c)
		regions = append(regions, r)
	}
	co, _ := NewCoordinator(eng, cps)
	if _, err := co.GlobalCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Each rank makes progress, then a second global checkpoint.
	for i, sp := range spaces {
		sp.Write(regions[i].Start()+512, bytes.Repeat([]byte{0xF0 | byte(i)}, 512))
	}
	if _, err := co.GlobalCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Snapshot expected state at the line.
	want := make([][]byte, ranks)
	for i, sp := range spaces {
		want[i] = make([]byte, 8*512)
		sp.Read(regions[i].Start(), want[i])
	}
	// More progress that will be lost to the failure.
	for i, sp := range spaces {
		sp.Write(regions[i].Start()+3*512, bytes.Repeat([]byte{0xEE}, 512))
	}

	// Failure: all address spaces lost. Find the line and restore all.
	seq, ok, err := LatestConsistentSeq(store, ranks)
	if err != nil || !ok || seq != 1 {
		t.Fatalf("line: seq=%d ok=%v err=%v", seq, ok, err)
	}
	restored, err := RestoreAll(store, ranks, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range restored {
		got := make([]byte, 8*512)
		if err := sp.Read(regions[i].Start(), got); err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("rank %d state mismatch after recovery", i)
		}
	}
}

func TestRestoreAllValidation(t *testing.T) {
	store := storage.NewMemStore()
	if _, err := RestoreAll(store, 0, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := RestoreAll(store, 2, 5); err == nil {
		t.Fatal("missing segments accepted")
	}
}

func TestPrune(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
	store := storage.NewMemStore()
	c, _ := NewCheckpointer(eng, sp, Options{Store: store, FullEvery: 3})
	r, _ := sp.Mmap(4 * 512)
	c.Start()
	// Two full epochs: seqs 0(F),1,2, 3(F),4.
	for i := 0; i < 5; i++ {
		sp.WriteRange(r.Start(), 512)
		if _, err := c.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := store.Keys()
	if len(before) != 5 {
		t.Fatalf("segments before prune: %d", len(before))
	}
	deleted, reclaimed, err := Prune(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch base of the newest segment (seq 4) is seq 3: seqs 0-2 go.
	if deleted != 3 || reclaimed == 0 {
		t.Fatalf("deleted %d (%d bytes)", deleted, reclaimed)
	}
	after, _ := store.Keys()
	if len(after) != 2 {
		t.Fatalf("segments after prune: %v", after)
	}
	// The surviving chain still restores.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 512})
	if err := Restore(store, 0, 4, fresh); err != nil {
		t.Fatalf("restore after prune: %v", err)
	}
	// Pruning again is a no-op.
	d2, _, _ := Prune(store, 1)
	if d2 != 0 {
		t.Fatalf("second prune deleted %d", d2)
	}
	// Empty store: no-op, no error.
	if d3, _, err := Prune(storage.NewMemStore(), 2); err != nil || d3 != 0 {
		t.Fatalf("empty prune: %d %v", d3, err)
	}
}
