package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/des"
)

// Fuzz targets for every parser that consumes bytes a decayed storage
// tier may have mangled: the contract is typed errors on hostile input,
// never a panic, and exact round-trips on valid input.

func fuzzSegment() *Segment {
	return &Segment{
		Rank:     3,
		Seq:      7,
		Epoch:    5,
		Kind:     Incremental,
		PageSize: 64,
		Regions:  []RegionInfo{{Start: 0, Size: 256}},
		Pages: []PageRecord{
			{Addr: 0, Data: bytes.Repeat([]byte{0xAB}, 64)},
			{Addr: 64, Data: append(bytes.Repeat([]byte{0}, 32), bytes.Repeat([]byte{9}, 32)...)},
			{Addr: 192}, // zero page, elided payload
		},
	}
}

func FuzzDecodeSegment(f *testing.F) {
	f.Add(fuzzSegment().Encode())
	compressed, _ := fuzzSegment().EncodeCompressed()
	f.Add(compressed)
	full := fuzzSegment()
	full.Kind = Full
	full.ContentFree = true
	full.Pages = full.Pages[2:]
	f.Add(full.Encode())
	f.Add([]byte("ICKP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSegment(data)
		if err != nil {
			return // typed rejection is the contract; a panic fails the fuzz
		}
		// Anything accepted must re-encode and re-decode to itself.
		s2, err := DecodeSegment(s.Encode())
		if err != nil {
			t.Fatalf("accepted segment did not re-decode: %v", err)
		}
		if s2.Rank != s.Rank || s2.Seq != s.Seq || s2.Epoch != s.Epoch ||
			s2.Kind != s.Kind || len(s2.Pages) != len(s.Pages) {
			t.Fatalf("re-decode mismatch: %+v vs %+v", s2, s)
		}
	})
}

func FuzzRLEDecompress(f *testing.F) {
	for _, src := range [][]byte{
		bytes.Repeat([]byte{0}, 128),
		append(bytes.Repeat([]byte{1}, 60), []byte{2, 3, 4, 5}...),
		{0x00, 0x04, 0x00, 0xFF}, // hand-rolled run record
		{0x01, 0x02, 0x00, 7, 8}, // hand-rolled literal record
		{},
	} {
		if enc := rleCompress(src); enc != nil {
			f.Add(enc, len(src))
		} else {
			f.Add(src, len(src))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, want int) {
		if want < 0 || want > 1<<16 {
			return
		}
		out, err := rleDecompress(data, want)
		if err == nil && len(out) != want {
			t.Fatalf("decompress returned %d bytes, want %d", len(out), want)
		}
	})
}

func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xCC}, 256))
	f.Add([]byte{1, 1, 1, 1, 1, 2, 2, 2, 2, 3})
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := rleCompress(src)
		if enc == nil {
			return // incompressible: caller keeps the raw page
		}
		dec, err := rleDecompress(enc, len(src))
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzParseSegmentKey(f *testing.F) {
	f.Add(SegmentKey(0, 0))
	f.Add(SegmentKey(999, 123456))
	f.Add("rank003/seg000007")
	f.Add("commit/seq000001")
	f.Add("rank/seg")
	f.Add("")
	f.Fuzz(func(t *testing.T, key string) {
		var rank int
		var seq uint64
		if !ParseSegmentKey(key, &rank, &seq) {
			return
		}
		// The parser is lenient about zero padding, so the canonical
		// property is parse → format → parse stability, not string
		// identity.
		var rank2 int
		var seq2 uint64
		if !ParseSegmentKey(SegmentKey(rank, seq), &rank2, &seq2) {
			t.Fatalf("formatted key %q unparseable", SegmentKey(rank, seq))
		}
		if rank2 != rank || seq2 != seq {
			t.Fatalf("parse/format unstable: %q -> %d/%d -> %d/%d", key, rank, seq, rank2, seq2)
		}
	})
}

func FuzzDecodeCommitMarker(f *testing.F) {
	f.Add(EncodeCommitMarker(CommitMarker{Seq: 0, Ranks: 1, At: 0}))
	f.Add(EncodeCommitMarker(CommitMarker{Seq: 42, Ranks: 64, At: 9 * des.Second}))
	f.Add([]byte("GCMT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeCommitMarker(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeCommitMarker(m), data) {
			t.Fatal("accepted marker did not re-encode to itself")
		}
	})
}
