package ckpt

import (
	"fmt"

	"repro/internal/des"
)

// GlobalResult describes one coordinated checkpoint across all ranks.
type GlobalResult struct {
	// Seq is the global checkpoint number.
	Seq uint64
	// At is the virtual time the checkpoint was triggered.
	At des.Time
	// TotalPageBytes sums the page payloads across ranks.
	TotalPageBytes uint64
	// MaxDuration is the slowest rank's sink write time — the global
	// commit latency under coordinated checkpointing.
	MaxDuration des.Time
	// PerRank holds each rank's result.
	PerRank []Result
}

// Coordinator triggers coordinated global checkpoints across a set of
// per-rank checkpointers. The paper's applications are bulk-synchronous
// (§6.2), so a coordinated checkpoint at a common virtual instant is
// consistent: in-flight message payloads are re-received after rollback
// because the model's receives are idempotent within an iteration.
type Coordinator struct {
	eng *des.Engine
	cps []*Checkpointer

	// OnGlobal, when set, observes each completed global checkpoint.
	OnGlobal func(GlobalResult)

	// Staggered models a *shared* checkpoint sink: ranks' segments
	// serialise through it, so the global commit latency is the sum of
	// per-rank write times rather than the maximum. The default
	// (parallel) models per-node local disks, the paper's §3 setting.
	Staggered bool

	ticker  *des.Ticker
	results []GlobalResult
	// pending is the in-flight two-phase round, if any (see commit.go).
	pending *pendingCommit
}

// NewCoordinator creates a coordinator over the given checkpointers
// (one per rank, all Started by the caller).
func NewCoordinator(eng *des.Engine, cps []*Checkpointer) (*Coordinator, error) {
	if len(cps) == 0 {
		return nil, fmt.Errorf("ckpt: coordinator needs at least one checkpointer")
	}
	return &Coordinator{eng: eng, cps: cps}, nil
}

// GlobalCheckpoint checkpoints every rank at the current virtual time and
// returns the aggregate result.
func (co *Coordinator) GlobalCheckpoint() (GlobalResult, error) {
	g := GlobalResult{Seq: uint64(len(co.results)), At: co.eng.Now()}
	for _, c := range co.cps {
		res, err := c.Checkpoint()
		if err != nil {
			return GlobalResult{}, err
		}
		g.PerRank = append(g.PerRank, res)
		g.TotalPageBytes += res.PageBytes
		if co.Staggered {
			// Shared sink: commits serialise.
			g.MaxDuration += res.Duration
		} else if res.Duration > g.MaxDuration {
			g.MaxDuration = res.Duration
		}
	}
	co.results = append(co.results, g)
	if co.OnGlobal != nil {
		co.OnGlobal(g)
	}
	return g, nil
}

// Resync realigns every rank after a partially failed global
// checkpoint: ranks that persisted before the failure have advanced
// their sequence, ranks after it have not, and any rank may hold a
// consumed dirty set. Resync moves all ranks to a common next sequence
// (the maximum across ranks) and forces their next checkpoint full, so
// the next global checkpoint bases a clean coordinated line. It returns
// that common sequence number.
func (co *Coordinator) Resync() uint64 {
	var next uint64
	for _, c := range co.cps {
		if c.Seq() > next {
			next = c.Seq()
		}
	}
	for _, c := range co.cps {
		c.Rebase(next)
	}
	return next
}

// StartInterval triggers a global checkpoint every interval of virtual
// time — the fixed checkpoint-timeslice policy.
func (co *Coordinator) StartInterval(interval des.Time) {
	if co.ticker != nil {
		panic("ckpt: coordinator interval already started")
	}
	co.ticker = co.eng.NewTicker(interval, func(des.Time) {
		if _, err := co.GlobalCheckpoint(); err != nil {
			panic(fmt.Sprintf("ckpt: coordinated checkpoint failed: %v", err))
		}
	})
}

// Stop cancels the interval ticker, if any.
func (co *Coordinator) Stop() {
	if co.ticker != nil {
		co.ticker.Stop()
		co.ticker = nil
	}
}

// Results returns all completed global checkpoints.
func (co *Coordinator) Results() []GlobalResult { return co.results }
