// Package ckpt implements the mechanism the paper argues is feasible:
// automatic, user-transparent incremental checkpointing. It builds on the
// same write-protection machinery as the tracker — each checkpoint saves
// the pages dirtied since the previous one (the delta), with periodic full
// checkpoints bounding the recovery chain — plus coordinated global
// checkpoints across MPI ranks, restore/rollback, the memory-exclusion
// optimisation for unmapped pages, and a copy-on-write accounting model
// that quantifies the cost of checkpointing in the middle of a processing
// burst (the paper's §6.2 observation).
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/des"
	"repro/internal/mem"
)

// Kind distinguishes full from incremental segments.
type Kind uint8

const (
	// Full segments contain every mapped checkpointable page.
	Full Kind = iota
	// Incremental segments contain only pages dirtied since the
	// previous segment.
	Incremental
)

// String returns "full" or "incremental".
func (k Kind) String() string {
	if k == Full {
		return "full"
	}
	return "incremental"
}

// RegionInfo records one mapped region at capture time, enough to recreate
// the address-space layout on restore.
type RegionInfo struct {
	Start uint64
	Size  uint64
	Kind  mem.Kind
}

// PageRecord is one saved page. Data is nil in content-free segments
// (phantom address spaces, used for volume accounting at full scale) and
// for all-zero pages that were never materialised.
type PageRecord struct {
	Addr uint64
	Data []byte
}

// Segment is one checkpoint of one rank.
type Segment struct {
	Rank        int
	Seq         uint64 // monotonically increasing per rank
	Epoch       uint64 // Seq of the base full segment of this chain
	Kind        Kind
	ContentFree bool
	PageSize    uint64
	TakenAt     des.Time
	Regions     []RegionInfo
	Pages       []PageRecord
}

// PageBytes returns the page payload volume (pages x page size), the
// quantity the paper's Incremental Bandwidth measures.
func (s *Segment) PageBytes() uint64 {
	return uint64(len(s.Pages)) * s.PageSize
}

const (
	segmentMagic   = "ICKP"
	segmentVersion = 1
	// page record header values
	pageZero    = 0 // never-written page, elided
	pageHasData = 1 // raw page bytes follow
	pageRLE     = 2 // u32 stream length + RLE stream follow
)

// Encode serialises the segment to a portable little-endian byte stream
// with raw (uncompressed) page payloads.
func (s *Segment) Encode() []byte {
	enc, _ := s.encode(false)
	return enc
}

// EncodeCompressed serialises the segment with per-page RLE compression
// (pages that do not shrink stay raw). It additionally returns the page
// payload volume actually persisted — the quantity a bandwidth-limited
// sink has to absorb.
func (s *Segment) EncodeCompressed() ([]byte, uint64) {
	return s.encode(true)
}

func (s *Segment) encode(compress bool) ([]byte, uint64) {
	var payload uint64
	var buf bytes.Buffer
	buf.WriteString(segmentMagic)
	le := binary.LittleEndian
	var scratch [8]byte
	w32 := func(v uint32) { le.PutUint32(scratch[:4], v); buf.Write(scratch[:4]) }
	w64 := func(v uint64) { le.PutUint64(scratch[:8], v); buf.Write(scratch[:8]) }
	w32(segmentVersion)
	w32(uint32(s.Rank))
	w64(s.Seq)
	w64(s.Epoch)
	buf.WriteByte(byte(s.Kind))
	if s.ContentFree {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	w64(s.PageSize)
	w64(uint64(s.TakenAt))
	w32(uint32(len(s.Regions)))
	for _, r := range s.Regions {
		w64(r.Start)
		w64(r.Size)
		buf.WriteByte(byte(r.Kind))
	}
	w64(uint64(len(s.Pages)))
	for _, p := range s.Pages {
		w64(p.Addr)
		if s.ContentFree {
			continue
		}
		switch {
		case p.Data == nil:
			buf.WriteByte(pageZero) // zero page, elided
		case compress:
			if c := rleCompress(p.Data); c != nil {
				buf.WriteByte(pageRLE)
				w32(uint32(len(c)))
				buf.Write(c)
				payload += uint64(len(c))
				continue
			}
			buf.WriteByte(pageHasData)
			buf.Write(p.Data)
			payload += uint64(len(p.Data))
		default:
			buf.WriteByte(pageHasData)
			buf.Write(p.Data)
			payload += uint64(len(p.Data))
		}
	}
	return buf.Bytes(), payload
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) need(n int) ([]byte, error) {
	if d.off+n > len(d.b) {
		return nil, fmt.Errorf("ckpt: truncated segment at offset %d (need %d of %d)", d.off, n, len(d.b))
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u8() (byte, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// DecodeSegment parses a segment encoded by Encode, validating structure
// and bounds.
func DecodeSegment(data []byte) (*Segment, error) {
	d := &decoder{b: data}
	magic, err := d.need(4)
	if err != nil || string(magic) != segmentMagic {
		return nil, fmt.Errorf("ckpt: bad magic")
	}
	ver, err := d.u32()
	if err != nil || ver != segmentVersion {
		return nil, fmt.Errorf("ckpt: unsupported version %d", ver)
	}
	s := &Segment{}
	rank, err := d.u32()
	if err != nil {
		return nil, err
	}
	s.Rank = int(rank)
	if s.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	if s.Epoch, err = d.u64(); err != nil {
		return nil, err
	}
	k, err := d.u8()
	if err != nil {
		return nil, err
	}
	if k > uint8(Incremental) {
		return nil, fmt.Errorf("ckpt: bad segment kind %d", k)
	}
	s.Kind = Kind(k)
	cf, err := d.u8()
	if err != nil {
		return nil, err
	}
	s.ContentFree = cf != 0
	if s.PageSize, err = d.u64(); err != nil {
		return nil, err
	}
	if s.PageSize == 0 || s.PageSize > 1<<30 {
		return nil, fmt.Errorf("ckpt: implausible page size %d", s.PageSize)
	}
	at, err := d.u64()
	if err != nil {
		return nil, err
	}
	s.TakenAt = des.Time(at)
	nr, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nr)*17 > uint64(len(data)) {
		return nil, fmt.Errorf("ckpt: region count %d exceeds segment size", nr)
	}
	s.Regions = make([]RegionInfo, nr)
	for i := range s.Regions {
		if s.Regions[i].Start, err = d.u64(); err != nil {
			return nil, err
		}
		if s.Regions[i].Size, err = d.u64(); err != nil {
			return nil, err
		}
		rk, err := d.u8()
		if err != nil {
			return nil, err
		}
		s.Regions[i].Kind = mem.Kind(rk)
	}
	np, err := d.u64()
	if err != nil {
		return nil, err
	}
	// Every page record costs at least its address (plus a flag byte
	// unless content-free), so np is bounded by the bytes actually left.
	minRec := uint64(9)
	if s.ContentFree {
		minRec = 8
	}
	if np > uint64(len(data)-d.off)/minRec {
		return nil, fmt.Errorf("ckpt: page count %d exceeds segment size", np)
	}
	s.Pages = make([]PageRecord, 0, np)
	for i := uint64(0); i < np; i++ {
		var p PageRecord
		if p.Addr, err = d.u64(); err != nil {
			return nil, err
		}
		if !s.ContentFree {
			flag, err := d.u8()
			if err != nil {
				return nil, err
			}
			switch flag {
			case pageZero:
				// elided zero page
			case pageHasData:
				raw, err := d.need(int(s.PageSize))
				if err != nil {
					return nil, err
				}
				p.Data = append([]byte(nil), raw...)
			case pageRLE:
				n, err := d.u32()
				if err != nil {
					return nil, err
				}
				stream, err := d.need(int(n))
				if err != nil {
					return nil, err
				}
				p.Data, err = rleDecompress(stream, int(s.PageSize))
				if err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("ckpt: bad page flag %d", flag)
			}
		}
		s.Pages = append(s.Pages, p)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes", len(data)-d.off)
	}
	return s, nil
}
