package redundancy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/storage"
)

// Parity-shard wire/storage frame. Every L2 shard placed on a partner
// rank's local store is wrapped in a canonical, fuzzable frame that
// records the parity-group geometry, which member segments the shard
// protects (rank, unpadded length, CRC-32C of the original bytes), and a
// CRC over the shard payload itself. The member CRCs let the rebuild
// path verify a reconstructed segment bit-for-bit before handing it to
// the restore machinery — a corrupt parity shard degrades the read to
// the next tier instead of producing a torn restore.
//
// Layout (big-endian):
//
//	magic   "CKPF" (4 bytes)
//	version u8
//	group   u32   parity-group id
//	seq     u64   checkpoint line the shard protects
//	shard   u8    shard index in [0, k+m): [0,k) data, [k,k+m) parity
//	k       u8    data shards per group
//	m       u8    parity shards per group
//	members k × { rank u32, origLen u32, crc u32 }
//	payload u32 length + bytes (padded shard)
//	crc     u32   CRC-32C of everything above
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadParityFrame reports a parity frame that does not parse: wrong
// magic, unknown version, truncated fields, inconsistent geometry, or
// trailing bytes. Parse failures wrap both this and storage.ErrCorrupt,
// so the tiered read path classifies them like any other corrupt read.
var ErrBadParityFrame = errors.New("redundancy: malformed parity frame")

const (
	parityMagic   = "CKPF"
	parityVersion = 1
)

// MemberRef describes one member segment a parity shard protects.
type MemberRef struct {
	// Rank owns the protected segment.
	Rank int
	// Length is the unpadded byte length of the original segment;
	// reconstruction truncates the padded rebuild back to it.
	Length uint32
	// CRC is the CRC-32C (Castagnoli) of the original segment bytes.
	CRC uint32
}

// ParityFrame is one framed L2 shard.
type ParityFrame struct {
	// Group is the parity-group id.
	Group uint32
	// Seq is the checkpoint line the shard belongs to.
	Seq uint64
	// Shard is the shard index: [0, K) are data shards, [K, K+M) parity.
	Shard int
	// K and M are the group geometry.
	K, M int
	// Members lists the protected segments, one per data shard, in
	// shard order.
	Members []MemberRef
	// Payload is the padded shard bytes.
	Payload []byte
}

// EncodeParityFrame serializes a frame in canonical form.
func EncodeParityFrame(f *ParityFrame) ([]byte, error) {
	if f.K < 1 || f.K > 255 || f.M < 1 || f.M > 255 || f.K+f.M > 255 {
		return nil, fmt.Errorf("redundancy: frame geometry k=%d m=%d out of range", f.K, f.M)
	}
	if f.Shard < 0 || f.Shard >= f.K+f.M {
		return nil, fmt.Errorf("redundancy: shard index %d outside [0, %d)", f.Shard, f.K+f.M)
	}
	if len(f.Members) != f.K {
		return nil, fmt.Errorf("redundancy: frame lists %d members, want k=%d", len(f.Members), f.K)
	}
	size := 4 + 1 + 4 + 8 + 1 + 1 + 1 + 12*f.K + 4 + len(f.Payload) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, parityMagic...)
	buf = append(buf, parityVersion)
	buf = binary.BigEndian.AppendUint32(buf, f.Group)
	buf = binary.BigEndian.AppendUint64(buf, f.Seq)
	buf = append(buf, byte(f.Shard), byte(f.K), byte(f.M))
	for _, m := range f.Members {
		if m.Rank < 0 || m.Rank > 1<<31-1 {
			return nil, fmt.Errorf("redundancy: member rank %d out of range", m.Rank)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.Rank))
		buf = binary.BigEndian.AppendUint32(buf, m.Length)
		buf = binary.BigEndian.AppendUint32(buf, m.CRC)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// badFrame wraps a parse failure in both the frame error and the
// storage corruption class.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("%w: %s: %w", ErrBadParityFrame, fmt.Sprintf(format, args...), storage.ErrCorrupt)
}

// ParseParityFrame decodes a canonical parity frame. It never panics on
// arbitrary input; any malformation — including a CRC mismatch — is
// reported as a wrapped storage.ErrCorrupt.
func ParseParityFrame(data []byte) (*ParityFrame, error) {
	const fixed = 4 + 1 + 4 + 8 + 1 + 1 + 1
	if len(data) < fixed+4+4 {
		return nil, badFrame("%d bytes, need at least %d", len(data), fixed+8)
	}
	if string(data[:4]) != parityMagic {
		return nil, badFrame("bad magic %q", data[:4])
	}
	if data[4] != parityVersion {
		return nil, badFrame("unknown version %d", data[4])
	}
	// CRC trailer covers everything before it; checking first keeps the
	// remaining parse free of corruption cases.
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.BigEndian.Uint32(trailer); got != want {
		return nil, badFrame("frame crc %08x, want %08x", got, want)
	}
	f := &ParityFrame{
		Group: binary.BigEndian.Uint32(data[5:9]),
		Seq:   binary.BigEndian.Uint64(data[9:17]),
		Shard: int(data[17]),
		K:     int(data[18]),
		M:     int(data[19]),
	}
	if f.K < 1 || f.M < 1 || f.K+f.M > 255 {
		return nil, badFrame("geometry k=%d m=%d out of range", f.K, f.M)
	}
	if f.Shard >= f.K+f.M {
		return nil, badFrame("shard index %d outside [0, %d)", f.Shard, f.K+f.M)
	}
	off := fixed
	if len(body) < off+12*f.K+4 {
		return nil, badFrame("truncated member table")
	}
	f.Members = make([]MemberRef, f.K)
	for i := range f.Members {
		f.Members[i] = MemberRef{
			Rank:   int(binary.BigEndian.Uint32(data[off : off+4])),
			Length: binary.BigEndian.Uint32(data[off+4 : off+8]),
			CRC:    binary.BigEndian.Uint32(data[off+8 : off+12]),
		}
		off += 12
	}
	plen := int(binary.BigEndian.Uint32(data[off : off+4]))
	off += 4
	if len(body) != off+plen {
		return nil, badFrame("payload length %d does not match frame size", plen)
	}
	f.Payload = append([]byte(nil), data[off:off+plen]...)
	return f, nil
}

// SegmentCRC returns the CRC-32C of a stored segment's bytes — the
// integrity mark recorded per member in parity frames and re-checked
// after reconstruction.
func SegmentCRC(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}
