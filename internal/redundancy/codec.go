// Package redundancy implements the L2 tier of a multi-level checkpoint
// hierarchy: erasure-coded partner redundancy across ranks. Checkpoint
// segments from k ranks form a parity group; m parity shards, computed by
// an erasure codec (XOR for m=1, Reed-Solomon for general k+m), are
// framed and placed on partner ranks' local stores so that any m
// simultaneous member losses can be rebuilt from survivors without
// touching the global (L3) store. A failure-domain map drives placement:
// no two shards of one group — data or parity — share a domain, so a
// whole-domain crash costs each group at most one shard.
//
// The hierarchy composes with the rest of the system through
// storage.Store: RankStore gives each checkpointer a write-through
// L1(+L3) store, and RecoveryView presents the tiered L1 → L2-rebuild →
// L3 read path to the existing VerifyChain/RestoreAll machinery.
package redundancy

import (
	"fmt"
)

// SchemeKind selects the redundancy codec family.
type SchemeKind uint8

const (
	// None disables L2: checkpoints live on L1 and (periodically) L3 only.
	None SchemeKind = iota
	// XOR is single-parity partner redundancy: one parity shard per
	// group, tolerating one lost shard (the FTI L2 scheme).
	XOR
	// RS is systematic Reed-Solomon k+m over GF(2^8): m parity shards
	// per group of k, tolerating any m lost shards.
	RS
)

func (k SchemeKind) String() string {
	switch k {
	case None:
		return "none"
	case XOR:
		return "xor"
	case RS:
		return "rs"
	}
	return fmt.Sprintf("SchemeKind(%d)", uint8(k))
}

// Scheme names a redundancy configuration: the codec family plus the
// parity-group geometry (K data shards protected by M parity shards).
type Scheme struct {
	Kind SchemeKind
	// K is the number of data shards (group members). Ignored for None.
	K int
	// M is the number of parity shards. XOR requires M == 1.
	M int
}

func (s Scheme) String() string {
	switch s.Kind {
	case None:
		return "none"
	case XOR:
		return fmt.Sprintf("xor(%d+1)", s.K)
	default:
		return fmt.Sprintf("rs(%d+%d)", s.K, s.M)
	}
}

// Validate checks the geometry against codec limits.
func (s Scheme) Validate() error {
	switch s.Kind {
	case None:
		return nil
	case XOR:
		if s.K < 1 {
			return fmt.Errorf("redundancy: xor needs k >= 1, got k=%d", s.K)
		}
		if s.M != 1 {
			return fmt.Errorf("redundancy: xor carries exactly one parity shard, got m=%d", s.M)
		}
		return nil
	case RS:
		if s.K < 1 || s.M < 1 {
			return fmt.Errorf("redundancy: rs needs k >= 1 and m >= 1, got k=%d m=%d", s.K, s.M)
		}
		if s.K+s.M > 255 {
			return fmt.Errorf("redundancy: rs over GF(2^8) supports k+m <= 255, got %d", s.K+s.M)
		}
		return nil
	}
	return fmt.Errorf("redundancy: unknown scheme kind %d", uint8(s.Kind))
}

// Codec computes parity shards over equal-length data shards and
// reconstructs missing shards from survivors.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// DataShards returns k.
	DataShards() int
	// ParityShards returns m.
	ParityShards() int
	// Encode computes the m parity shards for k equal-length data
	// shards. The returned slices are freshly allocated.
	Encode(data [][]byte) ([][]byte, error)
	// Reconstruct fills in missing shards in place. shards has length
	// k+m: indices [0,k) are data shards, [k,k+m) parity; nil entries
	// are missing. At most m entries may be nil, and all present
	// entries must have equal length. On success every entry is
	// non-nil.
	Reconstruct(shards [][]byte) error
}

// NewCodec builds the codec for a scheme. None has no codec.
func NewCodec(s Scheme) (Codec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case XOR:
		return &xorCodec{k: s.K}, nil
	case RS:
		return newRSCodec(s.K, s.M)
	}
	return nil, fmt.Errorf("redundancy: scheme %v has no codec", s.Kind)
}

// checkShardLengths verifies all non-nil shards share one length and
// counts the nil (missing) entries.
func checkShardLengths(shards [][]byte) (shardLen, missing int, err error) {
	shardLen = -1
	for i, s := range shards {
		if s == nil {
			missing++
			continue
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return 0, 0, fmt.Errorf("redundancy: shard %d has %d bytes, want %d", i, len(s), shardLen)
		}
	}
	if shardLen == -1 {
		return 0, 0, fmt.Errorf("redundancy: no surviving shards to reconstruct from")
	}
	return shardLen, missing, nil
}

// xorCodec is single-parity: parity = XOR of all data shards. Any one
// missing shard (data or parity) is the XOR of the others.
type xorCodec struct{ k int }

func (c *xorCodec) Name() string      { return fmt.Sprintf("xor(%d+1)", c.k) }
func (c *xorCodec) DataShards() int   { return c.k }
func (c *xorCodec) ParityShards() int { return 1 }

func (c *xorCodec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("redundancy: xor encode got %d shards, want %d", len(data), c.k)
	}
	shardLen, missing, err := checkShardLengths(data)
	if err != nil {
		return nil, err
	}
	if missing > 0 {
		return nil, fmt.Errorf("redundancy: xor encode requires all %d data shards", c.k)
	}
	parity := make([]byte, shardLen)
	for _, s := range data {
		for i, b := range s {
			parity[i] ^= b
		}
	}
	return [][]byte{parity}, nil
}

func (c *xorCodec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+1 {
		return fmt.Errorf("redundancy: xor reconstruct got %d shards, want %d", len(shards), c.k+1)
	}
	shardLen, missing, err := checkShardLengths(shards)
	if err != nil {
		return err
	}
	if missing == 0 {
		return nil
	}
	if missing > 1 {
		return fmt.Errorf("redundancy: xor tolerates 1 lost shard, %d missing", missing)
	}
	rebuilt := make([]byte, shardLen)
	hole := -1
	for i, s := range shards {
		if s == nil {
			hole = i
			continue
		}
		for j, b := range s {
			rebuilt[j] ^= b
		}
	}
	shards[hole] = rebuilt
	return nil
}
