package redundancy

import (
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/storage"
)

// restoreAndCheck restores every rank to the latest verifiable line
// through the view and compares memory digests against the fixture's
// pre-failure record.
func restoreAndCheck(t *testing.T, f *fixture, v *RecoveryView) uint64 {
	t.Helper()
	latest, ok, err := ckpt.LatestVerifiableSeq(v, f.h.Ranks())
	if err != nil || !ok {
		t.Fatalf("LatestVerifiableSeq: %v, %v", ok, err)
	}
	if latest != uint64(f.lines-1) {
		t.Fatalf("latest verifiable = %d, want %d", latest, f.lines-1)
	}
	spaces, err := ckpt.RestoreAll(v, f.h.Ranks(), latest)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range spaces {
		if got := sp.Digest(nil); got != f.digests[i] {
			t.Fatalf("rank %d digest %#x, want %#x — restore not bit-exact", i, got, f.digests[i])
		}
	}
	return latest
}

func TestViewHealthyReadsStayLocal(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}, 4)
	v := f.h.NewView()
	restoreAndCheck(t, f, v)
	st := v.Stats()
	if st.LevelReads[LevelLocal] == 0 || st.LevelReads[LevelParity] != 0 || st.LevelReads[LevelGlobal] != 0 {
		t.Fatalf("healthy stats = %+v", st)
	}
	if st.Rebuilds != 0 || st.RepairedBack != 0 {
		t.Fatalf("healthy run rebuilt: %+v", st)
	}
}

// One lost rank rebuilds its whole chain from XOR parity without a
// single global-store read — the zero-L3 property of the L2 tier.
func TestViewRebuildsLostRankWithoutL3(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}, 4)
	victim := f.h.Groups()[0].Members[0]
	if err := f.h.WipeRank(victim); err != nil {
		t.Fatal(err)
	}
	v := f.h.NewView()
	latest := restoreAndCheck(t, f, v)
	st := v.Stats()
	if st.LevelReads[LevelParity] == 0 || st.Rebuilds == 0 {
		t.Fatalf("no L2 rebuilds: %+v", st)
	}
	if st.LevelReads[LevelGlobal] != 0 || st.LevelBytes[LevelGlobal] != 0 {
		t.Fatalf("global store touched: %+v", st)
	}
	if st.RepairedBack == 0 || st.RepairWriteFailures != 0 {
		t.Fatalf("read-repair stats = %+v", st)
	}
	// Read-repair healed the victim's L1 for the next recovery.
	if _, err := f.h.Local(victim).Get(ckpt.SegmentKey(victim, latest)); err != nil {
		t.Fatalf("repaired segment not back on L1: %v", err)
	}
}

// RS k+2 absorbs two simultaneous member losses in one group — the
// m-loss capacity the erasure codec buys over XOR.
func TestViewRebuildsDoubleLossRS(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: RS, K: 2, M: 2},
		Domains:     domains(t, 8, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}, 4)
	g := f.h.Groups()[0]
	for _, r := range g.Members {
		if err := f.h.WipeRank(r); err != nil {
			t.Fatal(err)
		}
	}
	v := f.h.NewView()
	restoreAndCheck(t, f, v)
	st := v.Stats()
	if st.Rebuilds == 0 || st.LevelReads[LevelGlobal] != 0 {
		t.Fatalf("double-loss stats = %+v", st)
	}
}

// A corrupt parity shard is detected by the frame CRC and the read
// degrades to L3 — never a torn restore.
func TestViewCorruptParityDegradesToL3(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1, // every line on L3, so the last tier can serve
	}, 4)
	victim := f.h.Groups()[0].Members[0]
	if err := f.h.WipeRank(victim); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 7))
	if _, ok := f.h.CorruptParity(2, rng); !ok {
		t.Fatal("nothing corrupted")
	}
	v := f.h.NewView()
	restoreAndCheck(t, f, v)
	st := v.Stats()
	if st.CorruptShards == 0 {
		t.Fatalf("corruption undetected: %+v", st)
	}
	if st.LevelReads[LevelGlobal] == 0 {
		t.Fatalf("corrupt shard did not degrade to L3: %+v", st)
	}
	// Lines with intact parity still rebuilt at L2.
	if st.Rebuilds == 0 {
		t.Fatalf("no L2 rebuilds at all: %+v", st)
	}
}

// An undecodable L1 copy (at-rest rot below any envelope) is treated as
// lost, not trusted: the read silently falls through to a rebuild.
func TestViewDistrustsRottenLocalCopy(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}, 3)
	victim := f.h.Groups()[0].Members[0]
	key := ckpt.SegmentKey(victim, 1)
	if err := f.h.Local(victim).Put(key, []byte("rotten bytes")); err != nil {
		t.Fatal(err)
	}
	v := f.h.NewView()
	restoreAndCheck(t, f, v)
	if st := v.Stats(); st.Rebuilds == 0 || st.LevelReads[LevelGlobal] != 0 {
		t.Fatalf("rot stats = %+v", st)
	}
}

// Regression: a rank whose L1 is a MirrorStore with a dead replica
// accepts the post-rebuild read-repair write-back on the surviving
// replica, surfaces the lost copy in PutQuorumFailures, and serves the
// repaired segment from L1 afterwards.
func TestViewReadRepairThroughDegradedMirror(t *testing.T) {
	var mirror *storage.MirrorStore
	var deadReplica *storage.FaultyStore
	victim := -1
	cfg := Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}
	cfg.NewLocal = func(rank int) storage.Store {
		if rank != 0 {
			return storage.NewMemStore()
		}
		victim = rank
		deadReplica = storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{})
		m, err := storage.NewMirrorStore(deadReplica, storage.NewMemStore())
		if err != nil {
			panic(err)
		}
		mirror = m
		return m
	}
	f := buildFixture(t, cfg, 3)
	if victim != 0 || mirror == nil {
		t.Fatal("mirror-backed rank not built")
	}
	// Lose the rank's chain while both replicas are up, then lose one
	// replica: the read-repair write-back can only land a minority.
	if err := f.h.WipeRank(victim); err != nil {
		t.Fatal(err)
	}
	deadReplica.Kill()
	before := mirror.Stats().PutQuorumFailures

	v := f.h.NewView()
	latest := restoreAndCheck(t, f, v)
	st := v.Stats()
	if st.Rebuilds == 0 || st.RepairedBack == 0 || st.RepairWriteFailures != 0 {
		t.Fatalf("repair stats = %+v", st)
	}
	after := mirror.Stats()
	if after.PutQuorumFailures <= before {
		t.Fatalf("minority write-back not surfaced: %d -> %d", before, after.PutQuorumFailures)
	}
	if after.DegradedPuts == 0 {
		t.Fatalf("mirror stats = %+v", after)
	}
	// The repaired copy is readable back at L1 through the mirror.
	data, err := f.h.Local(victim).Get(ckpt.SegmentKey(victim, latest))
	if err != nil {
		t.Fatalf("repaired copy not on L1: %v", err)
	}
	if _, err := ckpt.DecodeSegment(data); err != nil {
		t.Fatalf("repaired copy undecodable: %v", err)
	}
}

// A fully dead L1 makes the write-back fail: the read still succeeds
// (best-effort repair) and the miss is tallied.
func TestViewRepairWriteFailureIsBestEffort(t *testing.T) {
	var replicas []*storage.FaultyStore
	cfg := Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}
	cfg.NewLocal = func(rank int) storage.Store {
		if rank != 0 {
			return storage.NewMemStore()
		}
		a := storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{})
		b := storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{})
		replicas = []*storage.FaultyStore{a, b}
		m, err := storage.NewMirrorStore(a, b)
		if err != nil {
			panic(err)
		}
		return m
	}
	f := buildFixture(t, cfg, 3)
	if err := f.h.WipeRank(0); err != nil {
		t.Fatal(err)
	}
	for _, r := range replicas {
		r.Kill()
	}
	v := f.h.NewView()
	restoreAndCheck(t, f, v)
	if st := v.Stats(); st.RepairWriteFailures == 0 || st.LevelReads[LevelGlobal] != 0 {
		t.Fatalf("best-effort stats = %+v", st)
	}
}

func TestViewKeysSynthesizeLostSegments(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 1000,
	}, 3)
	victim := f.h.Groups()[0].Members[0]
	if err := f.h.WipeRank(victim); err != nil {
		t.Fatal(err)
	}
	v := f.h.NewView()
	keys, err := v.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for seq := uint64(0); seq < 3; seq++ {
		want[ckpt.SegmentKey(victim, seq)] = true
	}
	for _, k := range keys {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("wiped rank's segments missing from Keys: %v", want)
	}
	if n, err := v.Size(); err != nil || n == 0 {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func TestViewIsReadOnly(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:  Scheme{Kind: XOR, K: 2, M: 1},
		Domains: domains(t, 4, 1),
		Global:  storage.NewMemStore(),
	}, 1)
	v := f.h.NewView()
	if err := v.Put("k", nil); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("Put: %v", err)
	}
	if err := v.Delete("k"); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("Delete: %v", err)
	}
}
