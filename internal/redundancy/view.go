package redundancy

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/storage"
)

// Recovery levels, indexing the per-level counters in ViewStats and the
// autonomic Report.
const (
	LevelLocal  = 0 // L1: the rank's own local store
	LevelParity = 1 // L2: rebuilt from surviving parity shards
	LevelGlobal = 2 // L3: the global store of last resort
	LevelCount  = 3
)

// LevelName names a recovery level for reports.
func LevelName(l int) string {
	switch l {
	case LevelLocal:
		return "L1-local"
	case LevelParity:
		return "L2-parity"
	case LevelGlobal:
		return "L3-global"
	}
	return fmt.Sprintf("level(%d)", l)
}

// ViewStats accounts the tiered read path of one RecoveryView.
type ViewStats struct {
	// LevelReads and LevelBytes count successful Gets per level.
	LevelReads [LevelCount]uint64
	LevelBytes [LevelCount]uint64
	// Rebuilds counts successful L2 reconstructions (one per parity
	// group × line rebuilt, however many segments it recovered).
	Rebuilds uint64
	// RebuildFailures counts L2 attempts that could not reconstruct —
	// too many shards lost, or a corrupt shard detected by CRC.
	RebuildFailures uint64
	// CorruptShards counts parity frames rejected by the frame codec
	// during rebuilds.
	CorruptShards uint64
	// RepairedBack counts rebuilt segments written back to the owning
	// rank's L1 (read-repair), RepairWriteFailures the write-backs that
	// failed.
	RepairedBack        uint64
	RepairWriteFailures uint64
}

// RecoveryView is the tiered read path over a Hierarchy: it implements
// storage.Store so the existing recovery machinery — VerifyChain,
// LatestVerifiableSeq, ChainVolume, RestoreAll — transparently reads
// L1 first, then rebuilds lost segments from surviving parity shards,
// then falls back to L3. Every level is integrity-checked (segment
// decode at L1, frame + member CRCs at L2), so a corrupt copy degrades
// the read to the next tier instead of surfacing torn bytes.
//
// The view is read-only and caches L2 rebuilds: a segment rebuilt once
// is served from the cache (still accounted to L2) for the rest of the
// recovery, so repeated chain walks don't re-run the codec. Use a fresh
// view per recovery.
type RecoveryView struct {
	h       *Hierarchy
	rebuilt map[string][]byte
	stats   ViewStats
}

// NewView returns a fresh tiered read view over the hierarchy.
func (h *Hierarchy) NewView() *RecoveryView {
	return &RecoveryView{h: h, rebuilt: make(map[string][]byte)}
}

// Stats returns a copy of the view's per-level accounting.
func (v *RecoveryView) Stats() ViewStats { return v.stats }

// Put implements storage.Store; the view is read-only.
func (v *RecoveryView) Put(key string, data []byte) error {
	return fmt.Errorf("redundancy: recovery view is read-only (put %q): %w", key, storage.ErrUnavailable)
}

// Delete implements storage.Store; the view is read-only.
func (v *RecoveryView) Delete(key string) error {
	return fmt.Errorf("redundancy: recovery view is read-only (delete %q): %w", key, storage.ErrUnavailable)
}

func (v *RecoveryView) account(level int, n int) {
	v.stats.LevelReads[level]++
	v.stats.LevelBytes[level] += uint64(n)
}

// Get implements storage.Store with the tiered read path.
func (v *RecoveryView) Get(key string) ([]byte, error) {
	var rank int
	var seq uint64
	isSeg := ckpt.ParseSegmentKey(key, &rank, &seq)
	if isSeg && rank < len(v.h.local) {
		// Cached L2 rebuilds win over L1 so one recovery attributes a
		// rebuilt segment to the same level on every pass.
		if data, ok := v.rebuilt[key]; ok {
			v.account(LevelParity, len(data))
			return append([]byte(nil), data...), nil
		}
		if data, err := v.h.local[rank].Get(key); err == nil {
			// A local copy that no longer decodes is treated as lost,
			// not trusted: fall through to the rebuild path.
			if _, derr := ckpt.DecodeSegment(data); derr == nil {
				v.account(LevelLocal, len(data))
				return data, nil
			}
		}
		if data, err := v.rebuild(rank, seq, key); err == nil {
			v.account(LevelParity, len(data))
			return data, nil
		}
	}
	data, err := v.h.cfg.Global.Get(key)
	if err != nil {
		return nil, err
	}
	v.account(LevelGlobal, len(data))
	return data, nil
}

// rebuild reconstructs rank's segment at seq from its parity group's
// surviving shards, caches every segment the reconstruction recovered,
// and read-repairs the requested one back to the owner's L1.
func (v *RecoveryView) rebuild(rank int, seq uint64, key string) ([]byte, error) {
	h := v.h
	if h.codec == nil || h.groupOf[rank] < 0 {
		return nil, fmt.Errorf("redundancy: no parity group for rank %d: %w", rank, storage.ErrNotFound)
	}
	gi := h.groupOf[rank]
	g := &h.groups[gi]
	k, m := h.cfg.Scheme.K, h.cfg.Scheme.M

	// Gather parity frames first: they carry the member table (lengths
	// and CRCs) the rebuild is checked against.
	shards := make([][]byte, k+m)
	var ref *ParityFrame
	for j, partner := range g.Partners {
		raw, err := h.local[partner].Get(ParityKey(gi, seq, k+j))
		if err != nil {
			continue
		}
		f, err := ParseParityFrame(raw)
		if err != nil {
			v.stats.CorruptShards++
			continue
		}
		if f.Group != uint32(gi) || f.Seq != seq || f.Shard != k+j || f.K != k || f.M != m {
			v.stats.CorruptShards++
			continue
		}
		shards[k+j] = f.Payload
		if ref == nil {
			ref = f
		}
	}
	if ref == nil {
		v.stats.RebuildFailures++
		return nil, fmt.Errorf("redundancy: no usable parity shard for group %d line %d: %w", gi, seq, storage.ErrNotFound)
	}
	shardLen := len(ref.Payload)

	// Surviving member segments become data shards, padded to the
	// parity length; members whose local copy is missing, mis-sized, or
	// fails its recorded CRC stay nil for the codec to fill.
	for i, member := range g.Members {
		data, err := h.local[member].Get(ckpt.SegmentKey(member, seq))
		if err != nil {
			continue
		}
		mr := ref.Members[i]
		if uint32(len(data)) != mr.Length || SegmentCRC(data) != mr.CRC || len(data) > shardLen {
			continue
		}
		if len(data) == shardLen {
			shards[i] = data
		} else {
			p := make([]byte, shardLen)
			copy(p, data)
			shards[i] = p
		}
	}
	if err := h.codec.Reconstruct(shards); err != nil {
		v.stats.RebuildFailures++
		return nil, fmt.Errorf("redundancy: rebuild group %d line %d: %w: %w", gi, seq, err, storage.ErrCorrupt)
	}

	// Check every reconstructed member against its recorded CRC before
	// trusting anything: a silently corrupt surviving shard poisons the
	// whole reconstruction, and the member CRCs are how we notice.
	recovered := make(map[string][]byte)
	for i, member := range g.Members {
		mr := ref.Members[i]
		if int(mr.Length) > shardLen {
			v.stats.RebuildFailures++
			return nil, fmt.Errorf("redundancy: member %d length %d exceeds shard length %d: %w", member, mr.Length, shardLen, storage.ErrCorrupt)
		}
		seg := shards[i][:mr.Length]
		if SegmentCRC(seg) != mr.CRC {
			v.stats.RebuildFailures++
			return nil, fmt.Errorf("redundancy: rebuilt segment for rank %d line %d fails CRC: %w", member, seq, storage.ErrCorrupt)
		}
		recovered[ckpt.SegmentKey(member, seq)] = seg
	}
	v.stats.Rebuilds++
	for rk, seg := range recovered {
		v.rebuilt[rk] = seg
	}

	// Read-repair: the requested segment goes back to its owner's L1 so
	// the next recovery finds it locally. Best effort — a failing L1
	// (e.g. a MirrorStore short of quorum) doesn't fail the read, it
	// just records the miss.
	out := recovered[key]
	if err := h.local[rank].Put(key, append([]byte(nil), out...)); err != nil {
		v.stats.RepairWriteFailures++
	} else {
		v.stats.RepairedBack++
	}
	return append([]byte(nil), out...), nil
}

// Keys implements storage.Store: the union of every L1's segment keys,
// the segments reconstructible from stored parity frames, and the L3
// keys — i.e. everything the tiered Get could serve.
func (v *RecoveryView) Keys() ([]string, error) {
	seen := make(map[string]bool)
	for _, l := range v.h.local {
		keys, err := l.Keys()
		if err != nil {
			continue
		}
		for _, k := range keys {
			if ckpt.ParseSegmentKey(k, nil, nil) {
				seen[k] = true
				continue
			}
			var gi, shard int
			var seq uint64
			if ParseParityKey(k, &gi, &seq, &shard) && gi < len(v.h.groups) {
				for _, member := range v.h.groups[gi].Members {
					seen[ckpt.SegmentKey(member, seq)] = true
				}
			}
		}
	}
	gkeys, err := v.h.cfg.Global.Keys()
	if err == nil {
		for _, k := range gkeys {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Size implements storage.Store: total bytes across all tiers.
func (v *RecoveryView) Size() (uint64, error) {
	var total uint64
	for _, l := range v.h.local {
		n, err := l.Size()
		if err != nil && !errors.Is(err, storage.ErrNotFound) {
			continue
		}
		total += n
	}
	if n, err := v.h.cfg.Global.Size(); err == nil {
		total += n
	}
	return total, nil
}
