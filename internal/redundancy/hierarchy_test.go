package redundancy

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// fixture is a hierarchy with real checkpoint chains: ranks run
// coordinated checkpoints through their RankStores, every committed line
// is parity-protected, and the pre-failure memory digests are recorded
// for bit-exactness checks.
type fixture struct {
	h       *Hierarchy
	spaces  []*mem.AddressSpace
	digests []uint64
	lines   int
}

func domains(t *testing.T, ranks, size int) *cluster.DomainMap {
	t.Helper()
	dm, err := cluster.NewDomainMap(ranks, size)
	if err != nil {
		t.Fatal(err)
	}
	return dm
}

// buildFixture drives the given hierarchy config through lines
// coordinated checkpoints with per-line mutations, parity-protecting
// each line.
func buildFixture(t *testing.T, cfg Config, lines int) *fixture {
	t.Helper()
	if cfg.Net == (mpi.Network{}) {
		cfg.Net = mpi.QsNet()
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine()
	f := &fixture{h: h, lines: lines}
	var cps []*ckpt.Checkpointer
	var regions []*mem.Region
	for i := 0; i < h.Ranks(); i++ {
		sp := mem.NewAddressSpace(mem.Config{PageSize: 512})
		r, err := sp.Mmap(4 * 512)
		if err != nil {
			t.Fatal(err)
		}
		sp.Write(r.Start(), bytes.Repeat([]byte{byte(i + 1)}, 4*512))
		c, err := ckpt.NewCheckpointer(eng, sp, ckpt.Options{Rank: i, Store: h.RankStore(i)})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		t.Cleanup(c.Stop)
		cps = append(cps, c)
		f.spaces = append(f.spaces, sp)
		regions = append(regions, r)
	}
	co, err := ckpt.NewCoordinator(eng, cps)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < lines; n++ {
		if n > 0 {
			for i, sp := range f.spaces {
				sp.Write(regions[i].Start()+uint64(n%4)*512, bytes.Repeat([]byte{byte(i*16 + n)}, 512))
			}
		}
		if _, err := co.GlobalCheckpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.EncodeLine(uint64(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, sp := range f.spaces {
		f.digests = append(f.digests, sp.Digest(nil))
	}
	return f
}

func TestPlacementDomainDisjoint(t *testing.T) {
	for _, tc := range []struct {
		name       string
		scheme     Scheme
		ranks, dom int
	}{
		{"xor nodes of 2", Scheme{Kind: XOR, K: 2, M: 1}, 8, 2},
		{"rs 2+2 singleton", Scheme{Kind: RS, K: 2, M: 2}, 8, 1},
		{"rs 3+2 singleton", Scheme{Kind: RS, K: 3, M: 2}, 12, 1},
		{"xor wide group", Scheme{Kind: XOR, K: 4, M: 1}, 16, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dm := domains(t, tc.ranks, tc.dom)
			h, err := NewHierarchy(Config{Scheme: tc.scheme, Domains: dm, Global: storage.NewMemStore(), Net: mpi.QsNet()})
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]int)
			for _, g := range h.Groups() {
				if len(g.Members) != tc.scheme.K || len(g.Partners) != tc.scheme.M {
					t.Fatalf("group %d geometry: %+v", g.ID, g)
				}
				used := make(map[int]bool)
				for _, r := range append(append([]int{}, g.Members...), g.Partners...) {
					d := dm.Of(r)
					if used[d] {
						t.Fatalf("group %d places two shards in domain %s", g.ID, dm.Name(d))
					}
					used[d] = true
				}
				for _, r := range g.Members {
					seen[r]++
				}
			}
			for r := 0; r < tc.ranks; r++ {
				if seen[r] != 1 {
					t.Fatalf("rank %d in %d groups", r, seen[r])
				}
				g, ok := h.GroupOf(r)
				if !ok {
					t.Fatalf("rank %d has no group", r)
				}
				found := false
				for _, m := range g.Members {
					if m == r {
						found = true
					}
				}
				if !found {
					t.Fatalf("GroupOf(%d) returned a group without it", r)
				}
			}
		})
	}
}

func TestPlacementInfeasible(t *testing.T) {
	mk := func(scheme Scheme, ranks, dom int) error {
		_, err := NewHierarchy(Config{Scheme: scheme, Domains: domains(t, ranks, dom), Global: storage.NewMemStore()})
		return err
	}
	if err := mk(Scheme{Kind: XOR, K: 3, M: 1}, 8, 2); err == nil {
		t.Error("indivisible rank count accepted")
	}
	if err := mk(Scheme{Kind: XOR, K: 2, M: 1}, 8, 8); err == nil {
		t.Error("single jumbo domain accepted")
	}
	// Two domains cannot host k+m = 3 distinct-domain shards.
	if err := mk(Scheme{Kind: XOR, K: 2, M: 1}, 8, 4); err == nil {
		t.Error("parity shard with no fresh domain accepted")
	}
	if _, err := NewHierarchy(Config{Scheme: Scheme{Kind: None}, Global: storage.NewMemStore()}); err == nil {
		t.Error("nil domain map accepted")
	}
	if _, err := NewHierarchy(Config{Scheme: Scheme{Kind: None}, Domains: domains(t, 4, 1)}); err == nil {
		t.Error("nil global store accepted")
	}
}

func TestSchemeNoneHasNoGroups(t *testing.T) {
	h, err := NewHierarchy(Config{Scheme: Scheme{Kind: None}, Domains: domains(t, 4, 1), Global: storage.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Groups()) != 0 {
		t.Fatalf("groups = %v", h.Groups())
	}
	if _, ok := h.GroupOf(0); ok {
		t.Fatal("rank grouped under scheme none")
	}
	if rep, err := h.EncodeLine(0); err != nil || rep.Bytes != 0 {
		t.Fatalf("EncodeLine under none: %+v, %v", rep, err)
	}
}

func TestRankStoreWriteThrough(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:      Scheme{Kind: XOR, K: 2, M: 1},
		Domains:     domains(t, 4, 1),
		Global:      storage.NewMemStore(),
		GlobalEvery: 2,
	}, 5)
	for rank := 0; rank < 4; rank++ {
		for seq := uint64(0); seq < 5; seq++ {
			_, lerr := f.h.Local(rank).Get(ckpt.SegmentKey(rank, seq))
			if lerr != nil {
				t.Fatalf("L1 missing rank %d seq %d: %v", rank, seq, lerr)
			}
			_, gerr := f.h.Global().Get(ckpt.SegmentKey(rank, seq))
			if seq%2 == 0 && gerr != nil {
				t.Fatalf("L3 missing write-through rank %d seq %d: %v", rank, seq, gerr)
			}
			if seq%2 != 0 && gerr == nil {
				t.Fatalf("L3 holds off-cadence line rank %d seq %d", rank, seq)
			}
		}
	}
}

func TestEncodeLinePlacesVerifiableParity(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:  Scheme{Kind: XOR, K: 2, M: 1},
		Domains: domains(t, 4, 1),
		Global:  storage.NewMemStore(),
	}, 3)
	h := f.h
	for _, g := range h.Groups() {
		for seq := uint64(0); seq < 3; seq++ {
			raw, err := h.Local(g.Partners[0]).Get(ParityKey(g.ID, seq, 2))
			if err != nil {
				t.Fatalf("group %d seq %d parity missing: %v", g.ID, seq, err)
			}
			pf, err := ParseParityFrame(raw)
			if err != nil {
				t.Fatal(err)
			}
			if pf.Group != uint32(g.ID) || pf.Seq != seq || pf.Shard != 2 || pf.K != 2 || pf.M != 1 {
				t.Fatalf("frame header %+v", pf)
			}
			// The payload is the XOR of the (padded) member segments.
			want := make([]byte, len(pf.Payload))
			for i, r := range g.Members {
				seg, err := h.Local(r).Get(ckpt.SegmentKey(r, seq))
				if err != nil {
					t.Fatal(err)
				}
				if pf.Members[i].Rank != r || pf.Members[i].Length != uint32(len(seg)) || pf.Members[i].CRC != SegmentCRC(seg) {
					t.Fatalf("member ref %d = %+v", i, pf.Members[i])
				}
				for j, b := range seg {
					want[j] ^= b
				}
			}
			if !bytes.Equal(pf.Payload, want) {
				t.Fatalf("group %d seq %d parity payload wrong", g.ID, seq)
			}
		}
	}
	st := h.Stats()
	if st.Encodes != 3 || st.ExchangeBytes == 0 || st.ParityBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEncodeLineMissingMember(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:  Scheme{Kind: XOR, K: 2, M: 1},
		Domains: domains(t, 4, 1),
		Global:  storage.NewMemStore(),
	}, 2)
	victim := f.h.Groups()[0].Members[0]
	if err := f.h.Local(victim).Delete(ckpt.SegmentKey(victim, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.h.EncodeLine(1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("encode over missing member: %v", err)
	}
}

func TestExchangeTimeDirectSkipsBounceCopy(t *testing.T) {
	dm := domains(t, 4, 1)
	mk := func(direct bool) *Hierarchy {
		h, err := NewHierarchy(Config{
			Scheme: Scheme{Kind: XOR, K: 2, M: 1}, Domains: dm,
			Global: storage.NewMemStore(), Net: mpi.QsNet(), Direct: direct,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	segs := [][]byte{make([]byte, 1<<20), make([]byte, 1<<20)}
	bounce := mk(false).exchangeTime(segs, 1)
	direct := mk(true).exchangeTime(segs, 1)
	if direct >= bounce {
		t.Fatalf("direct %v not cheaper than bounce %v", direct, bounce)
	}
}

func TestWipeRankAndCorruptParity(t *testing.T) {
	f := buildFixture(t, Config{
		Scheme:  Scheme{Kind: XOR, K: 2, M: 1},
		Domains: domains(t, 4, 1),
		Global:  storage.NewMemStore(),
	}, 2)
	if err := f.h.WipeRank(0); err != nil {
		t.Fatal(err)
	}
	keys, err := f.h.Local(0).Keys()
	if err != nil || len(keys) != 0 {
		t.Fatalf("wiped rank still holds %v", keys)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	key, ok := f.h.CorruptParity(1, rng)
	if !ok {
		t.Fatal("nothing to corrupt")
	}
	var gi, shard int
	var seq uint64
	if !ParseParityKey(key, &gi, &seq, &shard) || seq != 1 {
		t.Fatalf("corrupted key %q", key)
	}
	g := f.h.Groups()[gi]
	raw, err := f.h.Local(g.Partners[shard-2]).Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseParityFrame(raw); err == nil {
		t.Fatal("corrupt parity frame still parses")
	}
}

func TestParityKeyRoundTrip(t *testing.T) {
	key := ParityKey(3, 41, 5)
	var g, s int
	var q uint64
	if !ParseParityKey(key, &g, &q, &s) || g != 3 || q != 41 || s != 5 {
		t.Fatalf("round trip: %d %d %d", g, q, s)
	}
	for _, bad := range []string{"", "parity/g003", "segment/r000/seq000001", "parity/g3/seq41/s5", ckpt.SegmentKey(0, 1)} {
		if ParseParityKey(bad, nil, nil, nil) {
			t.Errorf("%q parsed as parity key", bad)
		}
	}
}

func TestFileHierarchyManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dm, err := cluster.DomainMapFromGroups(4, map[string][]int{
		"rack0": {0, 1}, "rack1": {2}, "rack2": {3},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewFileHierarchy(dir, Scheme{Kind: XOR, K: 2, M: 1}, dm, 2, mpi.QsNet())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Local(0).Put(ckpt.SegmentKey(0, 7), []byte("seg")); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFileHierarchy(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme() != h.Scheme() || got.Ranks() != 4 || got.cfg.GlobalEvery != 2 {
		t.Fatalf("reloaded: scheme %v ranks %d every %d", got.Scheme(), got.Ranks(), got.cfg.GlobalEvery)
	}
	if len(got.Groups()) != len(h.Groups()) {
		t.Fatalf("groups: %v vs %v", got.Groups(), h.Groups())
	}
	for i, g := range h.Groups() {
		rg := got.Groups()[i]
		if g.ID != rg.ID || !equalInts(g.Members, rg.Members) || !equalInts(g.Partners, rg.Partners) {
			t.Fatalf("group %d moved: %+v vs %+v", i, g, rg)
		}
	}
	if data, err := got.Local(0).Get(ckpt.SegmentKey(0, 7)); err != nil || string(data) != "seg" {
		t.Fatalf("reloaded L1: %q, %v", data, err)
	}
	if _, err := LoadFileHierarchy(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
