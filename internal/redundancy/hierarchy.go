package redundancy

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Config describes a multi-level checkpoint hierarchy.
type Config struct {
	// Scheme selects the L2 redundancy codec and group geometry.
	Scheme Scheme
	// Domains maps ranks to failure domains; placement guarantees no
	// two shards of a parity group share a domain. Required unless
	// Scheme.Kind is None.
	Domains *cluster.DomainMap
	// Global is the L3 store of last resort (the existing global
	// store/service). Required.
	Global storage.Store
	// GlobalEvery writes through to L3 every Nth checkpoint line
	// (seq % GlobalEvery == 0); values <= 1 write every line through.
	// Align it with the checkpointer's FullEvery so L3 lines are
	// self-contained full segments.
	GlobalEvery int
	// Net is the interconnect model parity-shard exchange rides on.
	Net mpi.Network
	// Direct marks an RDMA-capable fabric: partner writes are one-sided
	// DMA deposits, so the exchange cost skips the CPU bounce copy.
	Direct bool
	// NewLocal builds rank r's L1 store; nil defaults to MemStore.
	// Tests substitute FileStore or MirrorStore-wrapped L1s here.
	NewLocal func(rank int) storage.Store
}

// Group is one parity group: K member ranks whose segments form the
// data shards (shard i belongs to Members[i]) and M partner ranks
// holding the parity shards (shard K+j lives on Partners[j]'s L1).
type Group struct {
	ID       int
	Members  []int
	Partners []int
}

// Stats counts L2 encode/exchange activity.
type Stats struct {
	// Encodes is the number of checkpoint lines parity-protected.
	Encodes uint64
	// ExchangeBytes is the total bytes moved between ranks for parity
	// computation (member segments to partners).
	ExchangeBytes uint64
	// ParityBytes is the total framed parity bytes stored on partners.
	ParityBytes uint64
}

// Hierarchy owns the three checkpoint tiers and the parity-group
// placement over the failure-domain map.
type Hierarchy struct {
	cfg     Config
	codec   Codec // nil for Scheme None
	groups  []Group
	groupOf []int // rank → group index; -1 when Scheme is None
	shardOf []int // rank → data-shard index within its group
	local   []storage.Store
	stats   Stats
}

// NewHierarchy validates the scheme against the domain map, computes a
// domain-disjoint placement, and builds the per-rank L1 stores.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.Global == nil {
		return nil, fmt.Errorf("redundancy: hierarchy needs a global (L3) store")
	}
	if cfg.Domains == nil {
		return nil, fmt.Errorf("redundancy: hierarchy needs a failure-domain map")
	}
	ranks := cfg.Domains.Ranks()
	if cfg.Scheme.Kind != None && ranks%cfg.Scheme.K != 0 {
		return nil, fmt.Errorf("redundancy: %d ranks do not divide into groups of k=%d", ranks, cfg.Scheme.K)
	}
	h := &Hierarchy{cfg: cfg}
	if cfg.NewLocal == nil {
		h.cfg.NewLocal = func(int) storage.Store { return storage.NewMemStore() }
	}
	for r := 0; r < ranks; r++ {
		h.local = append(h.local, h.cfg.NewLocal(r))
	}
	if cfg.Scheme.Kind == None {
		h.groupOf = make([]int, ranks)
		h.shardOf = make([]int, ranks)
		for r := range h.groupOf {
			h.groupOf[r] = -1
			h.shardOf[r] = -1
		}
		return h, nil
	}
	codec, err := NewCodec(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	h.codec = codec
	if err := h.place(); err != nil {
		return nil, err
	}
	return h, nil
}

// place deals ranks into parity groups and picks parity partners so
// that no two shards of a group — data or parity — share a failure
// domain. The placement is a pure function of (scheme, domain map).
func (h *Hierarchy) place() error {
	dm := h.cfg.Domains
	ranks := dm.Ranks()
	k, m := h.cfg.Scheme.K, h.cfg.Scheme.M
	nGroups := ranks / k
	if mx := dm.MaxDomainSize(); mx > nGroups {
		return fmt.Errorf("redundancy: domain of %d ranks cannot spread over %d groups (k=%d); shrink domains or k", mx, nGroups, k)
	}
	// Deal ranks domain-major, round-robin across groups: consecutive
	// ranks of one domain land in consecutive groups, so a domain never
	// places two members in one group when it has at most nGroups ranks.
	order := make([]int, ranks)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := dm.Of(order[a]), dm.Of(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	h.groups = make([]Group, nGroups)
	h.groupOf = make([]int, ranks)
	h.shardOf = make([]int, ranks)
	for i, r := range order {
		g := i % nGroups
		h.groupOf[r] = g
		h.shardOf[r] = len(h.groups[g].Members)
		h.groups[g].ID = g
		h.groups[g].Members = append(h.groups[g].Members, r)
	}
	// Partners: for each group, scan ranks (rotated by group id so the
	// parity load spreads) for m ranks outside the group whose domains
	// are disjoint from every member's and every prior partner's.
	for g := range h.groups {
		used := make(map[int]bool)
		for _, r := range h.groups[g].Members {
			if used[dm.Of(r)] {
				return fmt.Errorf("redundancy: group %d places two members in domain %s", g, dm.Name(dm.Of(r)))
			}
			used[dm.Of(r)] = true
		}
		for j := 0; j < m; j++ {
			found := -1
			for off := 0; off < ranks; off++ {
				cand := (g*k + k + off) % ranks
				if h.groupOf[cand] == g || used[dm.Of(cand)] {
					continue
				}
				found = cand
				break
			}
			if found == -1 {
				return fmt.Errorf("redundancy: group %d cannot place parity shard %d in a fresh domain (need %d distinct domains, have %d)", g, j, k+m, dm.Domains())
			}
			used[dm.Of(found)] = true
			h.groups[g].Partners = append(h.groups[g].Partners, found)
		}
	}
	return nil
}

// Ranks returns the number of ranks.
func (h *Hierarchy) Ranks() int { return len(h.local) }

// Scheme returns the configured redundancy scheme.
func (h *Hierarchy) Scheme() Scheme { return h.cfg.Scheme }

// Domains returns the failure-domain map the placement was planned over.
func (h *Hierarchy) Domains() *cluster.DomainMap { return h.cfg.Domains }

// GlobalEvery returns the L3 write-through period in lines.
func (h *Hierarchy) GlobalEvery() int {
	if h.cfg.GlobalEvery < 1 {
		return 1
	}
	return h.cfg.GlobalEvery
}

// Groups returns a copy of the parity-group placement.
func (h *Hierarchy) Groups() []Group {
	out := make([]Group, len(h.groups))
	for i, g := range h.groups {
		out[i] = Group{
			ID:       g.ID,
			Members:  append([]int(nil), g.Members...),
			Partners: append([]int(nil), g.Partners...),
		}
	}
	return out
}

// GroupOf returns the parity group rank r's segments belong to, or
// (Group{}, false) when the scheme has no L2.
func (h *Hierarchy) GroupOf(rank int) (Group, bool) {
	if rank < 0 || rank >= len(h.groupOf) || h.groupOf[rank] < 0 {
		return Group{}, false
	}
	g := h.groups[h.groupOf[rank]]
	return Group{ID: g.ID, Members: append([]int(nil), g.Members...), Partners: append([]int(nil), g.Partners...)}, true
}

// Local returns rank r's raw L1 store.
func (h *Hierarchy) Local(rank int) storage.Store { return h.local[rank] }

// Global returns the L3 store.
func (h *Hierarchy) Global() storage.Store { return h.cfg.Global }

// Stats returns a copy of the L2 activity counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ParityKey names the stored frame of shard s (in [k, k+m)) protecting
// group g's line seq.
func ParityKey(group int, seq uint64, shard int) string {
	return fmt.Sprintf("parity/g%03d/seq%06d/s%02d", group, seq, shard)
}

// ParseParityKey inverts ParityKey.
func ParseParityKey(key string, group *int, seq *uint64, shard *int) bool {
	var g, s int
	var q uint64
	n, err := fmt.Sscanf(key, "parity/g%03d/seq%06d/s%02d", &g, &q, &s)
	if err != nil || n != 3 {
		return false
	}
	if key != ParityKey(g, q, s) {
		return false
	}
	if group != nil {
		*group = g
	}
	if seq != nil {
		*seq = q
	}
	if shard != nil {
		*shard = s
	}
	return true
}

// RankStore returns rank r's checkpoint store: every Put lands on L1,
// and lines with seq % GlobalEvery == 0 write through to L3. Reads and
// deletes touch L1 only — L3 is the archive of last resort and is never
// pruned by rank-local retention.
func (h *Hierarchy) RankStore(rank int) storage.Store {
	return &rankStore{h: h, rank: rank}
}

type rankStore struct {
	h    *Hierarchy
	rank int
}

func (s *rankStore) Put(key string, data []byte) error {
	if err := s.h.local[s.rank].Put(key, data); err != nil {
		return err
	}
	var seq uint64
	every := uint64(max(s.h.cfg.GlobalEvery, 1))
	if ckpt.ParseSegmentKey(key, nil, &seq) && seq%every == 0 {
		if err := s.h.cfg.Global.Put(key, data); err != nil {
			return fmt.Errorf("redundancy: L3 write-through %q: %w", key, err)
		}
	}
	return nil
}

func (s *rankStore) Get(key string) ([]byte, error) { return s.h.local[s.rank].Get(key) }
func (s *rankStore) Delete(key string) error        { return s.h.local[s.rank].Delete(key) }
func (s *rankStore) Keys() ([]string, error)        { return s.h.local[s.rank].Keys() }
func (s *rankStore) Size() (uint64, error)          { return s.h.local[s.rank].Size() }

// ExchangeReport accounts one line's parity exchange.
type ExchangeReport struct {
	// Bytes is the member-segment traffic moved to partners.
	Bytes uint64
	// ParityBytes is the framed parity volume stored on partner L1s.
	ParityBytes uint64
	// Time is the modeled wall time of the exchange: groups run
	// concurrently; within a group the cost is the slower of the
	// busiest sender and the busiest receiver (plus the CPU copy on
	// non-RDMA fabrics).
	Time des.Time
}

// EncodeLine parity-protects checkpoint line seq: each group reads its
// members' segments from L1, computes parity shards, and places the
// framed shards on its partners' L1 stores. Missing member segments are
// an error — the caller invokes this only after a line fully commits.
func (h *Hierarchy) EncodeLine(seq uint64) (ExchangeReport, error) {
	var rep ExchangeReport
	if h.codec == nil {
		return rep, nil
	}
	k := h.cfg.Scheme.K
	for gi := range h.groups {
		g := &h.groups[gi]
		segs := make([][]byte, k)
		members := make([]MemberRef, k)
		maxLen := 0
		var groupSend uint64
		for i, r := range g.Members {
			data, err := h.local[r].Get(ckpt.SegmentKey(r, seq))
			if err != nil {
				return rep, fmt.Errorf("redundancy: group %d member %d line %d: %w", gi, r, seq, err)
			}
			segs[i] = data
			members[i] = MemberRef{Rank: r, Length: uint32(len(data)), CRC: SegmentCRC(data)}
			if len(data) > maxLen {
				maxLen = len(data)
			}
			groupSend += uint64(len(data)) * uint64(len(g.Partners))
		}
		padded := make([][]byte, k)
		for i, s := range segs {
			if len(s) == maxLen {
				padded[i] = s
			} else {
				p := make([]byte, maxLen)
				copy(p, s)
				padded[i] = p
			}
		}
		parity, err := h.codec.Encode(padded)
		if err != nil {
			return rep, err
		}
		for j, p := range parity {
			frame := &ParityFrame{
				Group:   uint32(gi),
				Seq:     seq,
				Shard:   k + j,
				K:       k,
				M:       h.cfg.Scheme.M,
				Members: members,
				Payload: p,
			}
			enc, err := EncodeParityFrame(frame)
			if err != nil {
				return rep, err
			}
			partner := g.Partners[j]
			if err := h.local[partner].Put(ParityKey(gi, seq, k+j), enc); err != nil {
				return rep, fmt.Errorf("redundancy: parity shard %d of group %d on rank %d: %w", k+j, gi, partner, err)
			}
			rep.ParityBytes += uint64(len(enc))
		}
		rep.Bytes += groupSend
		if t := h.exchangeTime(segs, len(g.Partners)); t > rep.Time {
			rep.Time = t
		}
	}
	h.stats.Encodes++
	h.stats.ExchangeBytes += rep.Bytes
	h.stats.ParityBytes += rep.ParityBytes
	return rep, nil
}

// exchangeTime models one group's parity exchange on the link: every
// member streams its segment to each of the m partners (the busiest
// sender serializes m copies of its segment), every partner ingests all
// k member segments (the busiest receiver serializes k arrivals), and
// the group finishes when the slower side does. Direct fabrics deposit
// one-sided into the partner's memory; bounce fabrics add the CPU copy.
func (h *Hierarchy) exchangeTime(segs [][]byte, partners int) des.Time {
	var sender des.Time
	var total uint64
	for _, s := range segs {
		n := uint64(len(s))
		total += n
		t := des.Time(partners) * h.cfg.Net.TransferTime(n)
		if t > sender {
			sender = t
		}
	}
	var receiver des.Time
	for _, s := range segs {
		receiver += h.cfg.Net.TransferTime(uint64(len(s)))
	}
	if !h.cfg.Direct {
		receiver += h.cfg.Net.CopyTime(total)
	}
	if sender > receiver {
		return sender
	}
	return receiver
}

// WipeRank clears rank r's L1 store — the modeled loss of the node's
// local device (its checkpoint chain and any parity shards it held for
// other groups go with it).
func (h *Hierarchy) WipeRank(rank int) error {
	keys, err := h.local[rank].Keys()
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := h.local[rank].Delete(k); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
	}
	return nil
}

// CorruptParity flips one rng-chosen bit in the first stored parity
// shard protecting line seq, returning the damaged key. Used by tests
// and the A21 ablation to prove a corrupt shard degrades the read to
// the next tier rather than producing a torn restore.
func (h *Hierarchy) CorruptParity(seq uint64, rng *rand.Rand) (string, bool) {
	for gi := range h.groups {
		g := &h.groups[gi]
		for j, partner := range g.Partners {
			key := ParityKey(gi, seq, h.cfg.Scheme.K+j)
			data, err := h.local[partner].Get(key)
			if err != nil || len(data) == 0 {
				continue
			}
			bit := rng.IntN(len(data) * 8)
			data[bit/8] ^= 1 << (bit % 8)
			if err := h.local[partner].Put(key, data); err != nil {
				continue
			}
			return key, true
		}
	}
	return "", false
}

// Manifest persistence: a file-backed hierarchy lays out as
//
//	<dir>/manifest      (text manifest below)
//	<dir>/local/rankNNN (one FileStore per rank)
//	<dir>/global        (the L3 FileStore)
//
// so cmd/ckptinspect can reopen the whole hierarchy from a directory.

// SaveManifest writes the hierarchy's geometry under dir.
func (h *Hierarchy) SaveManifest(dir string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "multilevel v1\n")
	fmt.Fprintf(&b, "scheme %s %d %d\n", h.cfg.Scheme.Kind, h.cfg.Scheme.K, h.cfg.Scheme.M)
	fmt.Fprintf(&b, "ranks %d\n", len(h.local))
	fmt.Fprintf(&b, "globalevery %d\n", max(h.cfg.GlobalEvery, 1))
	if dm := h.cfg.Domains; dm != nil {
		for d := 0; d < dm.Domains(); d++ {
			fmt.Fprintf(&b, "domain %s", dm.Name(d))
			for _, r := range dm.Members(d) {
				fmt.Fprintf(&b, " %d", r)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest"), []byte(b.String()), 0o644)
}

// NewFileHierarchy builds a file-backed hierarchy under dir and saves
// its manifest, so the layout is self-describing on disk.
func NewFileHierarchy(dir string, scheme Scheme, domains *cluster.DomainMap, globalEvery int, net mpi.Network) (*Hierarchy, error) {
	global, err := storage.NewFileStore(filepath.Join(dir, "global"))
	if err != nil {
		return nil, err
	}
	var ferr error
	h, err := NewHierarchy(Config{
		Scheme:      scheme,
		Domains:     domains,
		Global:      global,
		GlobalEvery: globalEvery,
		Net:         net,
		NewLocal: func(rank int) storage.Store {
			fs, err := storage.NewFileStore(filepath.Join(dir, "local", fmt.Sprintf("rank%03d", rank)))
			if err != nil {
				ferr = err
				return storage.NewMemStore()
			}
			return fs
		},
	})
	if err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	if err := h.SaveManifest(dir); err != nil {
		return nil, err
	}
	return h, nil
}

// LoadFileHierarchy reopens a file-backed hierarchy from its manifest.
func LoadFileHierarchy(dir string) (*Hierarchy, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest"))
	if err != nil {
		return nil, fmt.Errorf("redundancy: read manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 4 || strings.TrimSpace(lines[0]) != "multilevel v1" {
		return nil, fmt.Errorf("redundancy: unrecognized manifest header")
	}
	var scheme Scheme
	ranks, globalEvery := 0, 1
	groups := make(map[string][]int)
	for _, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "scheme":
			if len(fields) != 4 {
				return nil, fmt.Errorf("redundancy: manifest scheme line %q", ln)
			}
			switch fields[1] {
			case "none":
				scheme.Kind = None
			case "xor":
				scheme.Kind = XOR
			case "rs":
				scheme.Kind = RS
			default:
				return nil, fmt.Errorf("redundancy: unknown scheme %q", fields[1])
			}
			if scheme.K, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("redundancy: manifest k: %w", err)
			}
			if scheme.M, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("redundancy: manifest m: %w", err)
			}
		case "ranks":
			if len(fields) != 2 {
				return nil, fmt.Errorf("redundancy: manifest ranks line %q", ln)
			}
			if ranks, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("redundancy: manifest ranks: %w", err)
			}
		case "globalevery":
			if len(fields) != 2 {
				return nil, fmt.Errorf("redundancy: manifest globalevery line %q", ln)
			}
			if globalEvery, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("redundancy: manifest globalevery: %w", err)
			}
		case "domain":
			if len(fields) < 2 {
				return nil, fmt.Errorf("redundancy: manifest domain line %q", ln)
			}
			var members []int
			for _, f := range fields[2:] {
				r, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("redundancy: manifest domain member: %w", err)
				}
				members = append(members, r)
			}
			groups[fields[1]] = members
		default:
			return nil, fmt.Errorf("redundancy: unknown manifest line %q", ln)
		}
	}
	if ranks < 1 {
		return nil, fmt.Errorf("redundancy: manifest missing ranks")
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("redundancy: manifest missing domain lines")
	}
	dm, err := cluster.DomainMapFromGroups(ranks, groups)
	if err != nil {
		return nil, err
	}
	global, err := storage.NewFileStore(filepath.Join(dir, "global"))
	if err != nil {
		return nil, err
	}
	var ferr error
	h, err := NewHierarchy(Config{
		Scheme:      scheme,
		Domains:     dm,
		Global:      global,
		GlobalEvery: globalEvery,
		Net:         mpi.QsNet(),
		NewLocal: func(rank int) storage.Store {
			fs, err := storage.NewFileStore(filepath.Join(dir, "local", fmt.Sprintf("rank%03d", rank)))
			if err != nil {
				ferr = err
				return storage.NewMemStore()
			}
			return fs
		},
	})
	if err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return h, nil
}
