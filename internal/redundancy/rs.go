package redundancy

import (
	"fmt"
)

// Systematic Reed-Solomon over GF(2^8), polynomial 0x11d (the field
// every production erasure coder uses — Plank's tutorial lineage). The
// generator matrix is a (k+m)×k Vandermonde matrix transformed so its
// top k×k block is the identity: encoding leaves data shards unchanged
// and computes m parity shards; reconstruction inverts the k×k submatrix
// of surviving rows and re-multiplies to recover what was lost.

// gfExp/gfLog are the exponential and logarithm tables of GF(2^8) with
// generator 2. gfExp is doubled so products of two logs index without a
// mod-255 reduction.
var gfExp [510]byte
var gfLog [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("redundancy: GF(2^8) inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfMatMul computes out = mat · shardsIn, where mat is rows×cols and
// shardsIn holds cols shards of shardLen bytes.
func gfMatMul(mat [][]byte, shardsIn [][]byte, out [][]byte, shardLen int) {
	for r := range mat {
		dst := out[r]
		for i := 0; i < shardLen; i++ {
			dst[i] = 0
		}
		for c, coef := range mat[r] {
			if coef == 0 {
				continue
			}
			src := shardsIn[c]
			if coef == 1 {
				for i := 0; i < shardLen; i++ {
					dst[i] ^= src[i]
				}
				continue
			}
			logC := int(gfLog[coef])
			for i := 0; i < shardLen; i++ {
				if src[i] != 0 {
					dst[i] ^= gfExp[logC+int(gfLog[src[i]])]
				}
			}
		}
	}
}

// gfInvertMatrix inverts a k×k matrix in place via Gauss-Jordan,
// returning the inverse. Fails only if the matrix is singular — which a
// Vandermonde-derived submatrix never is for distinct evaluation points.
func gfInvertMatrix(mat [][]byte) ([][]byte, error) {
	k := len(mat)
	work := make([][]byte, k)
	inv := make([][]byte, k)
	for i := range work {
		work[i] = append([]byte(nil), mat[i]...)
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("redundancy: singular decode matrix at column %d", col)
		}
		work[col], work[pivot] = work[pivot], work[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		scale := gfInv(work[col][col])
		for c := 0; c < k; c++ {
			work[col][c] = gfMul(work[col][c], scale)
			inv[col][c] = gfMul(inv[col][c], scale)
		}
		for r := 0; r < k; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for c := 0; c < k; c++ {
				work[r][c] ^= gfMul(f, work[col][c])
				inv[r][c] ^= gfMul(f, inv[col][c])
			}
		}
	}
	return inv, nil
}

type rsCodec struct {
	k, m int
	// gen is the full (k+m)×k systematic generator matrix: identity on
	// top, parity coefficient rows below.
	gen [][]byte
}

func newRSCodec(k, m int) (*rsCodec, error) {
	if k < 1 || m < 1 || k+m > 255 {
		return nil, fmt.Errorf("redundancy: rs(%d+%d) outside GF(2^8) limits", k, m)
	}
	// Vandermonde rows: row r = [r^0, r^1, ..., r^(k-1)] for r in
	// [0, k+m), with 0^0 = 1. Distinct evaluation points make every k×k
	// submatrix invertible once the top block is normalized to identity.
	vand := make([][]byte, k+m)
	for r := range vand {
		vand[r] = make([]byte, k)
		p := byte(1)
		for c := 0; c < k; c++ {
			vand[r][c] = p
			p = gfMul(p, byte(r))
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = vand[i]
	}
	topInv, err := gfInvertMatrix(top)
	if err != nil {
		return nil, err
	}
	// gen = vand · topInv: top k rows become identity, so the code is
	// systematic; the bottom m rows are the parity coefficients.
	gen := make([][]byte, k+m)
	for r := range gen {
		gen[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			var acc byte
			for i := 0; i < k; i++ {
				acc ^= gfMul(vand[r][i], topInv[i][c])
			}
			gen[r][c] = acc
		}
	}
	return &rsCodec{k: k, m: m, gen: gen}, nil
}

func (c *rsCodec) Name() string      { return fmt.Sprintf("rs(%d+%d)", c.k, c.m) }
func (c *rsCodec) DataShards() int   { return c.k }
func (c *rsCodec) ParityShards() int { return c.m }

func (c *rsCodec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("redundancy: rs encode got %d shards, want %d", len(data), c.k)
	}
	shardLen, missing, err := checkShardLengths(data)
	if err != nil {
		return nil, err
	}
	if missing > 0 {
		return nil, fmt.Errorf("redundancy: rs encode requires all %d data shards", c.k)
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, shardLen)
	}
	gfMatMul(c.gen[c.k:], data, parity, shardLen)
	return parity, nil
}

func (c *rsCodec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("redundancy: rs reconstruct got %d shards, want %d", len(shards), c.k+c.m)
	}
	shardLen, missing, err := checkShardLengths(shards)
	if err != nil {
		return err
	}
	if missing == 0 {
		return nil
	}
	if missing > c.m {
		return fmt.Errorf("redundancy: rs(%d+%d) tolerates %d lost shards, %d missing", c.k, c.m, c.m, missing)
	}
	// Pick k surviving rows of the generator matrix, invert, and
	// recover the data shards; parity holes are then re-encoded.
	subMat := make([][]byte, 0, c.k)
	subShards := make([][]byte, 0, c.k)
	for i := 0; i < len(shards) && len(subMat) < c.k; i++ {
		if shards[i] != nil {
			subMat = append(subMat, c.gen[i])
			subShards = append(subShards, shards[i])
		}
	}
	if len(subMat) < c.k {
		return fmt.Errorf("redundancy: only %d surviving shards, need %d", len(subMat), c.k)
	}
	dec, err := gfInvertMatrix(subMat)
	if err != nil {
		return err
	}
	// Recover missing data shards: row d of (dec · survivors) is data
	// shard d. Only compute the holes.
	var holeRows [][]byte
	var holeIdx []int
	for d := 0; d < c.k; d++ {
		if shards[d] == nil {
			holeRows = append(holeRows, dec[d])
			holeIdx = append(holeIdx, d)
		}
	}
	if len(holeRows) > 0 {
		out := make([][]byte, len(holeRows))
		for i := range out {
			out[i] = make([]byte, shardLen)
		}
		gfMatMul(holeRows, subShards, out, shardLen)
		for i, d := range holeIdx {
			shards[d] = out[i]
		}
	}
	// Re-encode missing parity shards from the (now complete) data.
	holeRows = holeRows[:0]
	holeIdx = holeIdx[:0]
	for p := c.k; p < c.k+c.m; p++ {
		if shards[p] == nil {
			holeRows = append(holeRows, c.gen[p])
			holeIdx = append(holeIdx, p)
		}
	}
	if len(holeRows) > 0 {
		out := make([][]byte, len(holeRows))
		for i := range out {
			out[i] = make([]byte, shardLen)
		}
		gfMatMul(holeRows, shards[:c.k], out, shardLen)
		for i, p := range holeIdx {
			shards[p] = out[i]
		}
	}
	return nil
}
