package redundancy

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func sampleFrame() *ParityFrame {
	return &ParityFrame{
		Group: 3,
		Seq:   41,
		Shard: 2,
		K:     2,
		M:     1,
		Members: []MemberRef{
			{Rank: 4, Length: 100, CRC: SegmentCRC([]byte("a"))},
			{Rank: 9, Length: 90, CRC: SegmentCRC([]byte("b"))},
		},
		Payload: bytes.Repeat([]byte{0xAB}, 100),
	}
}

func TestParityFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	enc, err := EncodeParityFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseParityFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != f.Group || got.Seq != f.Seq || got.Shard != f.Shard ||
		got.K != f.K || got.M != f.M || len(got.Members) != 2 ||
		got.Members[1] != f.Members[1] || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
	// The encoding is canonical: re-encoding a parsed frame reproduces
	// the bytes.
	enc2, err := EncodeParityFrame(got)
	if err != nil || !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encode diverged: %v", err)
	}
	// Empty payloads are legal (an empty checkpoint line).
	f.Payload = nil
	if enc, err = EncodeParityFrame(f); err != nil {
		t.Fatal(err)
	}
	if got, err = ParseParityFrame(enc); err != nil || len(got.Payload) != 0 {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestEncodeParityFrameRejects(t *testing.T) {
	bad := []*ParityFrame{
		{K: 0, M: 1, Shard: 0},
		{K: 2, M: 0, Shard: 0},
		{K: 200, M: 56, Shard: 0},
		{K: 2, M: 1, Shard: 3, Members: make([]MemberRef, 2)},
		{K: 2, M: 1, Shard: -1, Members: make([]MemberRef, 2)},
		{K: 2, M: 1, Shard: 2, Members: make([]MemberRef, 1)},
		{K: 2, M: 1, Shard: 2, Members: []MemberRef{{Rank: -1}, {}}},
	}
	for i, f := range bad {
		if _, err := EncodeParityFrame(f); err == nil {
			t.Errorf("bad frame %d accepted", i)
		}
	}
}

// Every single-bit flip anywhere in the frame must be rejected — the CRC
// trailer covers the whole frame, and the rebuild path counts on that to
// classify a damaged shard as corrupt instead of rebuilding garbage.
func TestParseParityFrameDetectsEveryBitFlip(t *testing.T) {
	enc, err := EncodeParityFrame(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := ParseParityFrame(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		} else if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("flip at byte %d not classified corrupt: %v", i, err)
		}
	}
}

func TestParseParityFrameRejectsStructuralDamage(t *testing.T) {
	enc, _ := EncodeParityFrame(sampleFrame())
	cases := map[string][]byte{
		"empty":     nil,
		"tiny":      []byte("CKPF"),
		"truncated": enc[:len(enc)-5],
		"trailing":  append(append([]byte(nil), enc...), 0),
	}
	for name, data := range cases {
		_, err := ParseParityFrame(data)
		if err == nil {
			t.Errorf("%s accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadParityFrame) || !errors.Is(err, storage.ErrCorrupt) {
			t.Errorf("%s: error %v misses a sentinel", name, err)
		}
	}
}

// FuzzParseParityFrame holds the parser to its contract: arbitrary bytes
// never panic, and any frame that parses re-encodes to the same bytes
// (the canonical-form invariant the storage layer depends on).
func FuzzParseParityFrame(f *testing.F) {
	if enc, err := EncodeParityFrame(sampleFrame()); err == nil {
		f.Add(enc)
		f.Add(enc[:len(enc)-1])
		f.Add(append(append([]byte(nil), enc...), 0xFF))
	}
	one := &ParityFrame{
		Group: 0, Seq: 0, Shard: 1, K: 1, M: 1,
		Members: []MemberRef{{Rank: 0, Length: 0, CRC: 0}},
	}
	if enc, err := EncodeParityFrame(one); err == nil {
		f.Add(enc)
	}
	f.Add([]byte("CKPF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := ParseParityFrame(data)
		if err != nil {
			if pf != nil {
				t.Fatal("error with non-nil frame")
			}
			if !errors.Is(err, ErrBadParityFrame) || !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("parse error %v misses a sentinel", err)
			}
			return
		}
		enc, err := EncodeParityFrame(pf)
		if err != nil {
			t.Fatalf("parsed frame does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("re-encode diverged from canonical input")
		}
	})
}
