package redundancy

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func randShards(rng *rand.Rand, k, n int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, n)
		for j := range out[i] {
			out[i][j] = byte(rng.UintN(256))
		}
	}
	return out
}

func TestSchemeValidate(t *testing.T) {
	good := []Scheme{
		{Kind: None},
		{Kind: XOR, K: 1, M: 1},
		{Kind: XOR, K: 7, M: 1},
		{Kind: RS, K: 2, M: 2},
		{Kind: RS, K: 200, M: 55},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
	bad := []Scheme{
		{Kind: XOR, K: 0, M: 1},
		{Kind: XOR, K: 2, M: 2},
		{Kind: RS, K: 0, M: 1},
		{Kind: RS, K: 1, M: 0},
		{Kind: RS, K: 200, M: 56},
		{Kind: SchemeKind(9)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
	if _, err := NewCodec(Scheme{Kind: None}); err == nil {
		t.Error("None yielded a codec")
	}
}

func TestXORCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	c, err := NewCodec(Scheme{Kind: XOR, K: 3, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 3, 64)
	parity, err := c.Encode(data)
	if err != nil || len(parity) != 1 {
		t.Fatalf("encode: %v, %d parity", err, len(parity))
	}
	// Any single hole — data or parity — reconstructs bit-exact.
	for hole := 0; hole < 4; hole++ {
		shards := make([][]byte, 4)
		for i := range data {
			shards[i] = append([]byte(nil), data[i]...)
		}
		shards[3] = append([]byte(nil), parity[0]...)
		want := append([]byte(nil), shards[hole]...)
		shards[hole] = nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("hole %d: %v", hole, err)
		}
		if !bytes.Equal(shards[hole], want) {
			t.Fatalf("hole %d rebuilt wrong", hole)
		}
	}
}

func TestXORCodecRejects(t *testing.T) {
	c, _ := NewCodec(Scheme{Kind: XOR, K: 2, M: 1})
	if _, err := c.Encode([][]byte{{1}}); err == nil {
		t.Error("short encode accepted")
	}
	if _, err := c.Encode([][]byte{{1}, {2, 3}}); err == nil {
		t.Error("ragged encode accepted")
	}
	if err := c.Reconstruct([][]byte{nil, nil, {1}}); err == nil {
		t.Error("two holes accepted")
	}
	if err := c.Reconstruct([][]byte{nil, nil, nil}); err == nil {
		t.Error("all holes accepted")
	}
	if err := c.Reconstruct([][]byte{{1}, {2}}); err == nil {
		t.Error("wrong shard count accepted")
	}
}

// Reed-Solomon must recover from ANY m lost shards. Exhaust every hole
// pair for k=3, m=2 — the property the A21 ablation's "m simultaneous
// rank losses" claim rests on.
func TestRSCodecAllHolePairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	c, err := NewCodec(Scheme{Kind: RS, K: 3, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 3, 97)
	parity, err := c.Encode(data)
	if err != nil || len(parity) != 2 {
		t.Fatalf("encode: %v, %d parity", err, len(parity))
	}
	full := append(append([][]byte{}, data...), parity...)
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			shards := make([][]byte, 5)
			for i, s := range full {
				shards[i] = append([]byte(nil), s...)
			}
			shards[a], shards[b] = nil, nil
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("holes (%d,%d): %v", a, b, err)
			}
			for i, s := range full {
				if !bytes.Equal(shards[i], s) {
					t.Fatalf("holes (%d,%d): shard %d rebuilt wrong", a, b, i)
				}
			}
		}
	}
	// m+1 holes must fail loudly, not fabricate data.
	shards := make([][]byte, 5)
	for i, s := range full {
		shards[i] = append([]byte(nil), s...)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("three holes accepted with m=2")
	}
}

func TestRSCodecDegenerateGeometries(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, s := range []Scheme{
		{Kind: RS, K: 1, M: 1},
		{Kind: RS, K: 1, M: 3},
		{Kind: RS, K: 8, M: 1},
		{Kind: RS, K: 10, M: 4},
	} {
		c, err := NewCodec(s)
		if err != nil {
			t.Fatal(err)
		}
		data := randShards(rng, s.K, 33)
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatalf("%v encode: %v", s, err)
		}
		full := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, len(full))
		for i, sh := range full {
			shards[i] = append([]byte(nil), sh...)
		}
		// Knock out the first m shards (mixes data and parity for k < m).
		for i := 0; i < s.M; i++ {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("%v reconstruct: %v", s, err)
		}
		for i, sh := range full {
			if !bytes.Equal(shards[i], sh) {
				t.Fatalf("%v shard %d wrong", s, i)
			}
		}
	}
}
