package adaptive

import (
	"testing"

	"repro/internal/des"
	"repro/internal/tracker"
)

// feedSquareWave drives the aligner with a synthetic bursty IWS signal:
// period 10 s, the first 6 s busy (100 MB/slice), the last 4 s quiet.
func feedSquareWave(eng *des.Engine, a *Aligner, seconds int) {
	for i := 0; i < seconds; i++ {
		i := i
		eng.Schedule(des.Time(i+1)*des.Second, func() {
			v := uint64(0)
			if i%10 < 6 {
				v = 100 << 20
			}
			a.Feed(tracker.Sample{
				Start:    des.Time(i) * des.Second,
				End:      des.Time(i+1) * des.Second,
				IWSBytes: v,
			})
		})
	}
}

func TestValidation(t *testing.T) {
	eng := des.NewEngine()
	if _, err := New(eng, Options{}, func() {}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := New(eng, Options{Interval: des.Second, QuietFrac: 1.5}, func() {}); err == nil {
		t.Fatal("bad quiet fraction accepted")
	}
	if _, err := New(eng, Options{Interval: des.Second}, nil); err == nil {
		t.Fatal("nil fire accepted")
	}
}

func TestFiresOnlyInQuietWindows(t *testing.T) {
	eng := des.NewEngine()
	var fires []des.Time
	a, err := New(eng, Options{Interval: 9 * des.Second}, func() {
		fires = append(fires, eng.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	feedSquareWave(eng, a, 120)
	eng.Run(des.MaxTime)

	if len(fires) < 8 {
		t.Fatalf("fired %d times over 120s at 9s cadence", len(fires))
	}
	// Every trigger must land in a quiet second (t mod 10 in [7..10];
	// samples arrive at integer seconds covering [t-1,t), so a sample
	// ending at second e is quiet when (e-1)%10 >= 6).
	for _, at := range fires {
		e := int(at.Seconds())
		if (e-1)%10 < 6 {
			t.Fatalf("trigger at %v landed in a burst", at)
		}
	}
	st := a.Stats()
	if st.FiredQuiet != st.Fired || st.FiredForced != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.TotalDefer == 0 {
		t.Fatal("9s cadence against a 10s pattern must defer sometimes")
	}
}

func TestDeferralCapForcesFire(t *testing.T) {
	eng := des.NewEngine()
	var fires []des.Time
	a, _ := New(eng, Options{Interval: 5 * des.Second, MaxDefer: 3 * des.Second}, func() {
		fires = append(fires, eng.Now())
	})
	a.Start()
	// Never-quiet signal: constant heavy writing.
	for i := 0; i < 60; i++ {
		i := i
		eng.Schedule(des.Time(i+1)*des.Second, func() {
			a.Feed(tracker.Sample{IWSBytes: 50 << 20, End: des.Time(i+1) * des.Second})
		})
	}
	eng.Run(des.MaxTime)
	if len(fires) < 6 {
		t.Fatalf("cap did not keep cadence: %d fires", len(fires))
	}
	st := a.Stats()
	if st.FiredForced != st.Fired {
		t.Fatalf("never-quiet signal should force every fire: %+v", st)
	}
	// Effective cadence = interval + cap = 8 s.
	for i := 1; i < len(fires); i++ {
		gap := fires[i] - fires[i-1]
		if gap < 5*des.Second || gap > 9*des.Second {
			t.Fatalf("gap %v outside [5s,9s]", gap)
		}
	}
}

func TestQuietSignalFiresOnCadence(t *testing.T) {
	eng := des.NewEngine()
	fires := 0
	a, _ := New(eng, Options{Interval: 4 * des.Second}, func() { fires++ })
	a.Start()
	for i := 0; i < 40; i++ {
		i := i
		eng.Schedule(des.Time(i+1)*des.Second, func() {
			a.Feed(tracker.Sample{IWSBytes: 0, End: des.Time(i+1) * des.Second})
		})
	}
	eng.Run(des.MaxTime)
	if fires < 9 || fires > 10 {
		t.Fatalf("quiet signal fired %d times over 40s at 4s cadence", fires)
	}
	if a.Stats().TotalDefer != 0 {
		t.Fatal("quiet signal should never defer")
	}
}

func TestNotStartedNeverFires(t *testing.T) {
	eng := des.NewEngine()
	a, _ := New(eng, Options{Interval: des.Second}, func() { t.Fatal("fired before Start") })
	for i := 0; i < 5; i++ {
		a.Feed(tracker.Sample{IWSBytes: 0, End: des.Time(i) * des.Second})
	}
	eng.Run(des.MaxTime)
}
