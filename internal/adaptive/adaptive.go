// Package adaptive implements the optimisation the paper proposes but
// stops short of building (§6.2, §8): "these codes typically alternate
// between processing and communication bursts that can automatically be
// identified at run time … this behavior can be exploited to implement
// efficient coordinated checkpoints."
//
// The Aligner watches the live IWS signal from a tracker and, when a
// checkpoint is due, defers the trigger until the application leaves its
// processing burst — firing in the quiet communication window where the
// pages just saved will not be immediately rewritten. A deferral cap
// bounds the drift so a misbehaving (never-quiet) application still
// checkpoints at close to the requested cadence.
//
// No application knowledge is needed: the alignment is derived purely
// from the page-protection signal the instrumentation already produces,
// preserving the paper's full-transparency requirement.
package adaptive

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/tracker"
)

// Options configures an Aligner.
type Options struct {
	// Interval is the desired mean checkpoint interval (required).
	Interval des.Time
	// QuietFrac classifies a timeslice as quiet when its IWS is below
	// this fraction of the recent peak (default 0.3).
	QuietFrac float64
	// MaxDefer bounds how long past the due time a trigger may slip
	// while waiting for a quiet window (default Interval: deferring up
	// to one whole cadence is acceptable, and it lets the aligner ride
	// out processing bursts longer than half an interval — Sage's
	// bursts are ~40% of a 145 s iteration).
	MaxDefer des.Time
	// EarlySlack lets a trigger fire up to this long *before* its due
	// time at the moment the application transitions from a burst into
	// a quiet window — taking the opportunity rather than gambling that
	// the due instant lands well (default Interval/4). Steadily quiet
	// signals never fire early, so the mean cadence stays at Interval.
	EarlySlack des.Time
	// WindowSlices is how many recent samples define the "recent peak"
	// (default 64).
	WindowSlices int
}

func (o Options) withDefaults() (Options, error) {
	if o.Interval <= 0 {
		return o, fmt.Errorf("adaptive: interval must be positive")
	}
	if o.QuietFrac == 0 {
		o.QuietFrac = 0.3
	}
	if o.QuietFrac < 0 || o.QuietFrac >= 1 {
		return o, fmt.Errorf("adaptive: quiet fraction %v out of [0,1)", o.QuietFrac)
	}
	if o.MaxDefer == 0 {
		o.MaxDefer = o.Interval
	}
	if o.EarlySlack == 0 {
		o.EarlySlack = o.Interval / 4
	}
	if o.EarlySlack < 0 || o.EarlySlack >= o.Interval {
		return o, fmt.Errorf("adaptive: early slack %v out of [0, interval)", o.EarlySlack)
	}
	if o.WindowSlices == 0 {
		o.WindowSlices = 64
	}
	return o, nil
}

// Stats counts the aligner's decisions.
type Stats struct {
	// Fired is the number of triggers issued.
	Fired int
	// FiredQuiet counts triggers that landed in a quiet slice;
	// FiredForced counts those released by the deferral cap.
	FiredQuiet, FiredForced int
	// TotalDefer is the cumulative time triggers slipped past due.
	TotalDefer des.Time
}

// Aligner defers periodic triggers into quiet IWS windows.
type Aligner struct {
	eng  *des.Engine
	opts Options
	fire func()

	ring     []float64 // recent IWS values (bytes)
	ringPos  int
	dueAt    des.Time
	armed    bool
	prevBusy bool
	stats    Stats
}

// New creates an aligner that calls fire for each (aligned) checkpoint
// trigger. Feed it samples from a tracker's OnSample hook, then Start it.
func New(eng *des.Engine, opts Options, fire func()) (*Aligner, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if fire == nil {
		return nil, fmt.Errorf("adaptive: fire callback is required")
	}
	return &Aligner{eng: eng, opts: o, fire: fire, ring: make([]float64, 0, o.WindowSlices)}, nil
}

// Start arms the first due time one interval from now.
func (a *Aligner) Start() {
	a.armed = true
	a.dueAt = a.eng.Now() + a.opts.Interval
}

// Stats returns a copy of the decision counters.
func (a *Aligner) Stats() Stats { return a.stats }

// recentPeak returns the maximum IWS over the ring.
func (a *Aligner) recentPeak() float64 {
	var peak float64
	for _, v := range a.ring {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Feed consumes one tracker sample; wire it as tracker.Options.OnSample.
// Trigger decisions happen at sample boundaries — the same granularity
// the instrumentation already operates at.
func (a *Aligner) Feed(s tracker.Sample) {
	v := float64(s.IWSBytes)
	if len(a.ring) < cap(a.ring) {
		a.ring = append(a.ring, v)
	} else {
		a.ring[a.ringPos] = v
		a.ringPos = (a.ringPos + 1) % len(a.ring)
	}
	peak := a.recentPeak()
	quiet := peak == 0 || v < a.opts.QuietFrac*peak
	onset := quiet && a.prevBusy
	a.prevBusy = !quiet
	if !a.armed {
		return
	}
	now := a.eng.Now()
	switch {
	case now >= a.dueAt:
		// Due: fire when quiet, or when the deferral cap expires.
		if !quiet && now < a.dueAt+a.opts.MaxDefer {
			return // still in a processing burst: keep deferring
		}
	case onset && now >= a.dueAt-a.opts.EarlySlack:
		// A quiet window just opened shortly before the due time:
		// take it rather than risk the due instant landing mid-burst.
	default:
		return
	}
	forced := !quiet
	if forced {
		a.stats.FiredForced++
	} else {
		a.stats.FiredQuiet++
	}
	a.stats.Fired++
	if now > a.dueAt {
		a.stats.TotalDefer += now - a.dueAt
	}
	a.dueAt = now + a.opts.Interval
	a.fire()
}
