// Package chaos is a deterministic, seed-driven fault-schedule engine.
//
// The repo already injects faults per layer — storage.FaultyStore rots a
// sink, mpi.NetFaultConfig degrades the interconnect, the autonomic
// supervisor kills nodes on a Poisson clock — but each layer rolls its
// own dice, so "crash while the network is partitioned and the sink is
// browning out" cannot be expressed, let alone reproduced. This package
// turns adversarial failure timing into data: a declarative Schedule
// lists fault specs (node crashes, crashes aimed inside two-phase commit
// windows, crashes at RDMA drain-protocol phase entries, network
// partitions and brownouts, storage outages and brownouts, silent
// bit-flips of stored checkpoint payloads), each with
// a virtual-time window, an optional correlation group, and seeded
// jitter. Compile resolves the schedule against one seed into a Plan of
// concrete virtual-time events, and a Driver binds the plan to a
// des.Engine and drives the existing injectors through one interface:
//
//	sched, _ := chaos.ParseSchedule(text)
//	plan, _ := sched.Compile(seed)
//	drv := chaos.NewDriver(eng, plan)
//	store := drv.WrapStore(storage.NewMemStore()) // timed outages, brownouts, bit-flips
//	cfg.NetFaults = drv.MergeNetFaults(cfg.NetFaults)
//	drv.StartCrashes(killNode)
//
// Same schedule, same seed → the same faults at the same virtual
// instants, every run. That determinism is what makes the
// crash–restore–replay equivalence validation in internal/autonomic
// possible: a failure-free reference run and a chaos run of the same
// seed are comparable bit for bit.
package chaos

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mpi"
)

// Kind enumerates the fault classes a Spec can inject.
type Kind uint8

const (
	// Crash kills a node at a seeded instant inside the window.
	Crash Kind = iota
	// CommitCrash kills a node inside a two-phase checkpoint commit
	// window (between prepare and the COMMIT-marker write) that opens
	// during the spec's window. Each Count consumes one commit round.
	CommitCrash
	// Partition severs the whole fabric for the window: severe packet
	// loss on every link (clamped by the mpi layer's loss cap, so ARQ
	// traffic crawls through rather than deadlocking the simulation).
	Partition
	// Brownout degrades the fabric for the window: extra loss and a
	// transfer-time slowdown — a congested or flapping switch.
	Brownout
	// StorageOutage makes stable storage refuse every operation during
	// the window (storage.ErrUnavailable).
	StorageOutage
	// StorageBrownout makes stable storage drop a seeded fraction of
	// operations during the window (storage.ErrTransient).
	StorageBrownout
	// BitFlip silently flips one seeded bit of one stored checkpoint
	// payload at a seeded instant inside the window — at-rest corruption
	// below any integrity envelope, detectable only on read-back.
	BitFlip
	// DrainCrash kills a node the moment the RDMA checkpoint-drain
	// protocol enters a named phase (quiesce, drain, deregister,
	// checkpoint, reregister, reconnect) inside the spec's window. Each
	// Count consumes one drain round — the adversarial instants for the
	// drain/re-register state machine.
	DrainCrash
	// DomainCrash kills every rank of a named failure domain mid-commit:
	// the first checkpoint-commit pause that opens inside the spec's
	// window draws a seeded kill instant inside the pause, before the
	// line's parity shards finish placing — the correlated loss a
	// multi-level hierarchy's domain-disjoint placement must absorb.
	// Each Count consumes one commit round.
	DomainCrash
)

// String names the kind the way the schedule language spells it.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case CommitCrash:
		return "commit-crash"
	case Partition:
		return "partition"
	case Brownout:
		return "brownout"
	case StorageOutage:
		return "storage-outage"
	case StorageBrownout:
		return "storage-brownout"
	case BitFlip:
		return "bitflip"
	case DrainCrash:
		return "crash-during-drain"
	case DomainCrash:
		return "domain-crash"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", k)
	}
}

// Spec is one declarative fault: a kind, a virtual-time window it lands
// in, and knobs whose meaning depends on the kind. The zero values of
// the knobs select per-kind defaults (see Validate).
type Spec struct {
	Kind Kind
	// From and To bound the fault's virtual-time window. Instant kinds
	// (Crash, BitFlip) draw their instants inside [From, To]; window
	// kinds (Partition, Brownout, StorageOutage, StorageBrownout) are
	// active over [From+shift, To+shift) where shift is the seeded
	// jitter draw; CommitCrash consumes commit rounds that open inside
	// [From, To).
	From, To des.Time
	// Jitter adds a uniform seeded offset in [0, Jitter) to each drawn
	// instant (instant kinds) or shifts the whole window (window kinds).
	Jitter des.Time
	// Count is the number of events drawn for instant kinds and the
	// number of commit rounds a CommitCrash consumes (0 → 1). Window
	// kinds ignore it.
	Count int
	// Group names a correlation group: specs sharing a group share one
	// seeded base draw, so their events land at the same fractional
	// position of their windows — correlated, bursty failures (stdchk's
	// adversary) instead of independent ones.
	Group string
	// Drop is the extra packet-loss probability of Partition (default
	// 0.85) and Brownout (default 0.2) windows.
	Drop float64
	// Slow is Brownout's transfer-time multiplier (default 2).
	Slow float64
	// Rate is StorageBrownout's per-operation drop probability
	// (default 0.5).
	Rate float64
	// Phase is the drain-protocol phase token a DrainCrash targets
	// (one of mpi's drain phase names, e.g. "deregister").
	Phase string
	// Domain names the failure domain a DomainCrash kills (a domain
	// name from the run's cluster.DomainMap, e.g. "d1").
	Domain string
}

// Schedule is a declarative list of fault specs — the unit that parses,
// validates and compiles.
type Schedule struct {
	Specs []Spec
}

// Validate checks every spec for structural sanity and reports the first
// violation. A valid schedule always compiles.
func (s *Schedule) Validate() error {
	if s == nil {
		return fmt.Errorf("chaos: nil schedule")
	}
	for i, sp := range s.Specs {
		prefix := fmt.Sprintf("chaos: spec %d (%s)", i, sp.Kind)
		switch {
		case sp.Kind > DomainCrash:
			return fmt.Errorf("chaos: spec %d: unknown kind %d", i, sp.Kind)
		case sp.From < 0 || sp.To < sp.From:
			return fmt.Errorf("%s: window [%v, %v] is not ordered and non-negative", prefix, sp.From, sp.To)
		case sp.Jitter < 0:
			return fmt.Errorf("%s: negative jitter %v", prefix, sp.Jitter)
		case sp.Count < 0:
			return fmt.Errorf("%s: negative count %d", prefix, sp.Count)
		case sp.Count > maxEventsPerSpec:
			return fmt.Errorf("%s: count %d exceeds the per-spec cap %d", prefix, sp.Count, maxEventsPerSpec)
		case !(sp.Drop >= 0 && sp.Drop < 1): // also rejects NaN
			return fmt.Errorf("%s: drop %v out of [0, 1)", prefix, sp.Drop)
		case !(sp.Rate >= 0 && sp.Rate < 1):
			return fmt.Errorf("%s: rate %v out of [0, 1)", prefix, sp.Rate)
		case !(sp.Slow >= 0) || sp.Slow > maxSlowFactor:
			return fmt.Errorf("%s: slow factor %v out of [0, %v]", prefix, sp.Slow, float64(maxSlowFactor))
		}
		switch sp.Kind {
		case Partition, Brownout, StorageOutage, StorageBrownout:
			if sp.To == sp.From {
				return fmt.Errorf("%s: window kinds need a non-empty window", prefix)
			}
		case DrainCrash:
			if _, err := mpi.ParseDrainPhase(sp.Phase); err != nil {
				return fmt.Errorf("%s: %w", prefix, err)
			}
		case DomainCrash:
			if sp.To == sp.From {
				return fmt.Errorf("%s: needs a non-empty window to catch a commit round", prefix)
			}
			if sp.Domain == "" {
				return fmt.Errorf("%s: needs a domain name (domain <name>)", prefix)
			}
		}
	}
	return nil
}

// maxEventsPerSpec bounds Count so a hostile schedule cannot compile
// into an event flood.
const maxEventsPerSpec = 1024

// maxSlowFactor bounds Brownout's transfer-time multiplier: a slowdown
// beyond this effectively freezes the simulation's traffic.
const maxSlowFactor = 1024
