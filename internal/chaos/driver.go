package chaos

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Stats counts what the driver actually injected — the ground truth the
// equivalence validator checks its lost-work accounting against.
type Stats struct {
	// Crashes counts node-kill events fired.
	Crashes int
	// CommitCrashes counts two-phase rounds the driver aimed a kill at.
	CommitCrashes int
	// DrainCrashes counts drain rounds killed at a phase entry.
	DrainCrashes int
	// DomainCrashes counts commit rounds that took a whole failure
	// domain down mid-commit.
	DomainCrashes int
	// BitFlips counts stored payloads corrupted; BitFlipMisses counts
	// flip instants that found nothing to corrupt (empty store or a
	// store that refused the read-modify-write).
	BitFlips, BitFlipMisses int
	// OutageRefusals and BrownoutDrops count storage operations the
	// timed fault windows rejected.
	OutageRefusals, BrownoutDrops uint64
}

// Driver binds a compiled Plan to a des.Engine and drives the existing
// per-layer injectors through one interface. One driver serves one run:
// it owns seeded streams whose draws are ordered by the engine's
// deterministic event order.
type Driver struct {
	eng  *des.Engine
	plan *Plan
	rng  *rand.Rand

	stats      Stats
	commitUsed []bool
	drainUsed  []bool
	domainUsed []bool
	flipTarget storage.Store
}

// NewDriver binds plan to eng. The engine must be fresh (virtual time
// zero) so the plan's absolute instants are all still ahead.
func NewDriver(eng *des.Engine, plan *Plan) *Driver {
	if eng == nil || plan == nil {
		panic("chaos: NewDriver needs an engine and a compiled plan")
	}
	return &Driver{
		eng:        eng,
		plan:       plan,
		rng:        rand.New(rand.NewPCG(plan.Seed, 0xD21F)),
		commitUsed: make([]bool, len(plan.CommitCrashes)),
		drainUsed:  make([]bool, len(plan.DrainCrashes)),
		domainUsed: make([]bool, len(plan.DomainCrashes)),
	}
}

// Plan returns the compiled plan the driver is executing.
func (d *Driver) Plan() *Plan { return d.plan }

// Stats returns a copy of the injection counters.
func (d *Driver) Stats() Stats { return d.stats }

// StartCrashes schedules every planned node-kill instant; each fires
// kill. Call once, before the engine runs.
func (d *Driver) StartCrashes(kill func()) {
	if kill == nil {
		panic("chaos: StartCrashes with nil kill callback")
	}
	for _, at := range d.plan.Crashes {
		if at < d.eng.Now() {
			continue // plan instant already in the past: unreachable on a fresh engine
		}
		d.eng.Schedule(at, func() {
			d.stats.Crashes++
			kill()
		})
	}
}

// CommitCrashDelay asks whether a two-phase commit round opening at now,
// whose last prepare ack is scheduled for lastAck, should be killed
// mid-commit. It consumes at most one planned commit-crash window per
// call and returns a seeded delay strictly inside [0, lastAck-now) —
// after the prepare has started, before the COMMIT marker can be
// written — so the resulting abort exercises the torn-line recovery
// path at an adversarial instant.
func (d *Driver) CommitCrashDelay(now, lastAck des.Time) (des.Time, bool) {
	for i, w := range d.plan.CommitCrashes {
		if d.commitUsed[i] || !w.contains(now) {
			continue
		}
		d.commitUsed[i] = true
		d.stats.CommitCrashes++
		span := lastAck - now
		if span <= 0 {
			return 0, true
		}
		return des.Time(d.rng.Float64() * float64(span)), true
	}
	return 0, false
}

// DomainCrashDelay asks whether a checkpoint-commit pause opening at now
// and resolving at pauseEnd should take a whole failure domain with it.
// It consumes at most one planned domain-crash window per call and
// returns the domain's name plus a seeded delay strictly inside
// [0, pauseEnd-now) — mid-commit, before the line's parity placement
// lands — so the correlated loss hits the hierarchy at its most
// adversarial instant.
func (d *Driver) DomainCrashDelay(now, pauseEnd des.Time) (string, des.Time, bool) {
	for i, w := range d.plan.DomainCrashes {
		if d.domainUsed[i] || !w.contains(now) {
			continue
		}
		d.domainUsed[i] = true
		d.stats.DomainCrashes++
		span := pauseEnd - now
		if span <= 0 {
			return w.Domain, 0, true
		}
		return w.Domain, des.Time(d.rng.Float64() * float64(span)), true
	}
	return "", 0, false
}

// DrainCrashHit asks whether the drain protocol's entry into phase p at
// virtual time now should kill the node. It consumes at most one planned
// drain-crash window per call, so a schedule with Count n kills n drain
// rounds at the same phase.
func (d *Driver) DrainCrashHit(p mpi.DrainPhase, now des.Time) bool {
	for i, w := range d.plan.DrainCrashes {
		if d.drainUsed[i] || w.Phase != p || !w.contains(now) {
			continue
		}
		d.drainUsed[i] = true
		d.stats.DrainCrashes++
		return true
	}
	return false
}

// MergeNetFaults folds the plan's partition/brownout windows into an
// interconnect fault config: base (which may be nil) is copied, never
// mutated. With no network windows in the plan, base passes through
// untouched — a clean network stays bit-for-bit clean.
func (d *Driver) MergeNetFaults(base *mpi.NetFaultConfig) *mpi.NetFaultConfig {
	if len(d.plan.NetWindows) == 0 {
		return base
	}
	var cfg mpi.NetFaultConfig
	if base != nil {
		cfg = *base
	} else {
		cfg.Seed = d.plan.Seed ^ 0x9E77
	}
	windows := make([]mpi.DegradedWindow, 0, len(cfg.Windows)+len(d.plan.NetWindows))
	windows = append(windows, cfg.Windows...)
	windows = append(windows, d.plan.NetWindows...)
	cfg.Windows = windows
	return &cfg
}

// WrapStore interposes the plan's timed storage faults on inner and
// schedules the plan's bit-flip instants against it. Outage windows
// refuse every operation with storage.ErrUnavailable; brownout windows
// drop a seeded fraction with storage.ErrTransient; bit flips mutate
// stored bytes in place through inner itself, below whatever integrity
// or retry layers the caller stacks on top — silent at-rest corruption
// that only an integrity envelope can surface. Call once per run.
func (d *Driver) WrapStore(inner storage.Store) storage.Store {
	if d.flipTarget != nil {
		panic("chaos: WrapStore called twice")
	}
	d.flipTarget = inner
	for _, at := range d.plan.BitFlips {
		if at < d.eng.Now() {
			continue
		}
		d.eng.Schedule(at, d.flipBit)
	}
	return &timedStore{d: d, inner: inner}
}

// flipBit corrupts one seeded bit of one seeded stored payload, chosen
// uniformly over the store's (sorted, deterministic) key listing at the
// flip instant. A payload already enveloped by an IntegrityStore above
// the wrap point is corrupted envelope and all, so read-back fails the
// CRC — exactly how at-rest rot surfaces in a hardened tier.
func (d *Driver) flipBit() {
	keys, err := d.flipTarget.Keys()
	if err != nil || len(keys) == 0 {
		d.stats.BitFlipMisses++
		return
	}
	key := keys[d.rng.IntN(len(keys))]
	data, err := d.flipTarget.Get(key)
	if err != nil || len(data) == 0 {
		d.stats.BitFlipMisses++
		return
	}
	bit := d.rng.IntN(len(data) * 8)
	flipped := append([]byte(nil), data...)
	flipped[bit/8] ^= 1 << (bit % 8)
	if err := d.flipTarget.Put(key, flipped); err != nil {
		d.stats.BitFlipMisses++
		return
	}
	d.stats.BitFlips++
}

// timedStore is the storage.Store wrapper that evaluates the plan's
// outage and brownout windows against the engine's virtual clock on
// every operation.
type timedStore struct {
	d     *Driver
	inner storage.Store
}

// check evaluates the timed windows for one operation.
func (s *timedStore) check(op string) error {
	now := s.d.eng.Now()
	for _, w := range s.d.plan.Outages {
		if w.contains(now) {
			s.d.stats.OutageRefusals++
			return fmt.Errorf("chaos: %s at %v inside storage outage [%v, %v): %w",
				op, now, w.From, w.To, storage.ErrUnavailable)
		}
	}
	for _, w := range s.d.plan.Brownouts {
		if w.contains(now) && s.d.rng.Float64() < w.Rate {
			s.d.stats.BrownoutDrops++
			return fmt.Errorf("chaos: %s at %v dropped by storage brownout: %w", op, now, storage.ErrTransient)
		}
	}
	return nil
}

// Put implements storage.Store.
func (s *timedStore) Put(key string, data []byte) error {
	if err := s.check("put"); err != nil {
		return err
	}
	return s.inner.Put(key, data)
}

// Get implements storage.Store.
func (s *timedStore) Get(key string) ([]byte, error) {
	if err := s.check("get"); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// Delete implements storage.Store.
func (s *timedStore) Delete(key string) error {
	if err := s.check("delete"); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// Keys implements storage.Store.
func (s *timedStore) Keys() ([]string, error) {
	if err := s.check("keys"); err != nil {
		return nil, err
	}
	return s.inner.Keys()
}

// Size implements storage.Store.
func (s *timedStore) Size() (uint64, error) {
	if err := s.check("size"); err != nil {
		return 0, err
	}
	return s.inner.Size()
}
