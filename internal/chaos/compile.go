package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/des"
	"repro/internal/mpi"
)

// Window is a half-open virtual-time interval [From, To).
type Window struct {
	From, To des.Time
}

// contains reports whether at falls inside the window.
func (w Window) contains(at des.Time) bool { return at >= w.From && at < w.To }

// BrownoutWindow is a storage brownout: during the window a seeded
// fraction Rate of operations fail transiently.
type BrownoutWindow struct {
	Window
	Rate float64
}

// DrainCrashWindow is a drain-protocol kill: the first time the drain
// state machine enters Phase inside the window, the node dies.
type DrainCrashWindow struct {
	Window
	Phase mpi.DrainPhase
}

// DomainCrashWindow is a correlated kill: the first checkpoint-commit
// pause opening inside the window takes every rank of the named failure
// domain with it, at a seeded instant inside the pause.
type DomainCrashWindow struct {
	Window
	Domain string
}

// Plan is a compiled schedule: every seeded draw resolved against one
// seed, leaving only concrete virtual-time events and windows. Plans are
// immutable once compiled; a Driver consumes one.
type Plan struct {
	// Seed is the seed the schedule was compiled with; the Driver
	// derives its own streams (bit selection, commit-crash placement,
	// brownout rolls) from it.
	Seed uint64
	// Crashes are node-kill instants, ascending.
	Crashes []des.Time
	// CommitCrashes are windows inside which two-phase commit rounds are
	// killed mid-commit, one round per entry.
	CommitCrashes []Window
	// NetWindows are the compiled partition/brownout fabric degradations
	// in mpi's native form.
	NetWindows []mpi.DegradedWindow
	// Outages are storage dead-air windows (every operation refused).
	Outages []Window
	// Brownouts are storage degradation windows (seeded fractional drop).
	Brownouts []BrownoutWindow
	// BitFlips are at-rest corruption instants, ascending.
	BitFlips []des.Time
	// DrainCrashes are windows inside which RDMA drain rounds are killed
	// at a named phase's entry, one round per entry.
	DrainCrashes []DrainCrashWindow
	// DomainCrashes are windows inside which checkpoint-commit rounds
	// kill a whole failure domain mid-commit, one round per entry.
	DomainCrashes []DomainCrashWindow
}

// Horizon returns the virtual time after which the plan injects nothing
// more — useful for sizing runs so every fault actually lands.
func (p *Plan) Horizon() des.Time {
	var h des.Time
	grow := func(t des.Time) {
		if t > h {
			h = t
		}
	}
	for _, t := range p.Crashes {
		grow(t)
	}
	for _, t := range p.BitFlips {
		grow(t)
	}
	for _, w := range p.CommitCrashes {
		grow(w.To)
	}
	for _, w := range p.NetWindows {
		grow(w.To)
	}
	for _, w := range p.Outages {
		grow(w.To)
	}
	for _, w := range p.Brownouts {
		grow(w.To)
	}
	for _, w := range p.DrainCrashes {
		grow(w.To)
	}
	for _, w := range p.DomainCrashes {
		grow(w.To)
	}
	return h
}

// Events reports how many discrete injections the plan holds (crashes,
// commit kills, bit flips) — windows count once each.
func (p *Plan) Events() int {
	return len(p.Crashes) + len(p.CommitCrashes) + len(p.BitFlips) +
		len(p.NetWindows) + len(p.Outages) + len(p.Brownouts) +
		len(p.DrainCrashes) + len(p.DomainCrashes)
}

// Compile resolves the schedule's seeded draws into a Plan. The same
// (schedule, seed) pair always yields the identical plan; different
// seeds move every jittered instant and shifted window. Specs sharing a
// correlation group share one base draw, so their events land at the
// same fractional position of their respective windows — a correlated
// failure burst.
func (s *Schedule) Compile(seed uint64) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xC4A05))
	groupBase := make(map[string]float64)
	// base returns the spec's fractional position draw: the group's
	// shared draw when grouped (drawn on first use, in spec order, so
	// compilation stays deterministic), a fresh one otherwise.
	base := func(sp Spec) float64 {
		if sp.Group == "" {
			return rng.Float64()
		}
		f, ok := groupBase[sp.Group]
		if !ok {
			f = rng.Float64()
			groupBase[sp.Group] = f
		}
		return f
	}
	p := &Plan{Seed: seed}
	for _, sp := range s.Specs {
		count := sp.Count
		if count == 0 {
			count = 1
		}
		switch sp.Kind {
		case Crash, BitFlip:
			for i := 0; i < count; i++ {
				at := sp.From + des.Time(base(sp)*float64(sp.To-sp.From))
				if sp.Jitter > 0 {
					at += des.Time(rng.Float64() * float64(sp.Jitter))
				}
				if at > sp.To {
					at = sp.To
				}
				if sp.Kind == Crash {
					p.Crashes = append(p.Crashes, at)
				} else {
					p.BitFlips = append(p.BitFlips, at)
				}
			}
		case CommitCrash:
			w := shiftWindow(sp, base(sp))
			for i := 0; i < count; i++ {
				p.CommitCrashes = append(p.CommitCrashes, w)
			}
		case Partition:
			drop := sp.Drop
			if drop == 0 {
				drop = 0.85
			}
			p.NetWindows = append(p.NetWindows, degraded(shiftWindow(sp, base(sp)), drop, 1))
		case Brownout:
			drop, slow := sp.Drop, sp.Slow
			if drop == 0 {
				drop = 0.2
			}
			if slow == 0 {
				slow = 2
			}
			p.NetWindows = append(p.NetWindows, degraded(shiftWindow(sp, base(sp)), drop, slow))
		case StorageOutage:
			p.Outages = append(p.Outages, shiftWindow(sp, base(sp)))
		case StorageBrownout:
			rate := sp.Rate
			if rate == 0 {
				rate = 0.5
			}
			p.Brownouts = append(p.Brownouts, BrownoutWindow{Window: shiftWindow(sp, base(sp)), Rate: rate})
		case DrainCrash:
			phase, err := mpi.ParseDrainPhase(sp.Phase)
			if err != nil {
				return nil, fmt.Errorf("chaos: compile: %w", err)
			}
			w := shiftWindow(sp, base(sp))
			for i := 0; i < count; i++ {
				p.DrainCrashes = append(p.DrainCrashes, DrainCrashWindow{Window: w, Phase: phase})
			}
		case DomainCrash:
			w := shiftWindow(sp, base(sp))
			for i := 0; i < count; i++ {
				p.DomainCrashes = append(p.DomainCrashes, DomainCrashWindow{Window: w, Domain: sp.Domain})
			}
		default:
			return nil, fmt.Errorf("chaos: compile: unknown kind %d", sp.Kind)
		}
	}
	sort.Slice(p.Crashes, func(i, j int) bool { return p.Crashes[i] < p.Crashes[j] })
	sort.Slice(p.BitFlips, func(i, j int) bool { return p.BitFlips[i] < p.BitFlips[j] })
	return p, nil
}

// shiftWindow applies a window kind's seeded jitter: the whole window
// shifts by frac*Jitter, preserving its width.
func shiftWindow(sp Spec, frac float64) Window {
	shift := des.Time(frac * float64(sp.Jitter))
	return Window{From: sp.From + shift, To: sp.To + shift}
}

// degraded converts a window to mpi's fabric-degradation form.
func degraded(w Window, drop, slow float64) mpi.DegradedWindow {
	return mpi.DegradedWindow{From: w.From, To: w.To, ExtraDrop: drop, SlowFactor: slow}
}
