package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/des"
)

// The schedule language: one fault per line, blank lines and #-comments
// ignored.
//
//	crash at 2s..8s count 2 jitter 300ms group burst
//	commit-crash at 1s..30s count 2
//	partition at 2s..4s drop 0.85 group burst
//	brownout at 6s..9s drop 0.3 slow 2.5
//	storage-outage at 7s..8s
//	storage-brownout at 2s..10s rate 0.5
//	bitflip at 1200ms..5s count 4
//	crash-during-drain at 1s..20s phase deregister
//	domain-crash at 5s..20s domain d1
//
// Every line is "<kind> at <from>..<to>" followed by optional key/value
// pairs (jitter <dur>, count <n>, group <name>, drop <p>, slow <x>,
// rate <p>, phase <name>, domain <name>). Durations use Go syntax ("1.5s", "300ms") and denote
// virtual time. ParseSchedule returns a typed error naming the offending
// line for any malformed input; it never panics, however hostile the
// bytes (FuzzParseSchedule holds it to that).

// kindNames maps the language's kind tokens to Kind values.
var kindNames = map[string]Kind{
	"crash":              Crash,
	"commit-crash":       CommitCrash,
	"partition":          Partition,
	"brownout":           Brownout,
	"storage-outage":     StorageOutage,
	"storage-brownout":   StorageBrownout,
	"bitflip":            BitFlip,
	"crash-during-drain": DrainCrash,
	"domain-crash":       DomainCrash,
}

// ParseSchedule parses the schedule language and validates the result.
func ParseSchedule(text string) (*Schedule, error) {
	var s Schedule
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		sp, err := parseSpec(fields)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", ln+1, err)
		}
		s.Specs = append(s.Specs, sp)
	}
	if len(s.Specs) == 0 {
		return nil, fmt.Errorf("chaos: schedule has no fault specs")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// parseSpec parses one non-empty line's fields into a Spec.
func parseSpec(fields []string) (Spec, error) {
	var sp Spec
	kind, ok := kindNames[fields[0]]
	if !ok {
		return sp, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	sp.Kind = kind
	if len(fields) < 3 || fields[1] != "at" {
		return sp, fmt.Errorf("%s: want %q followed by a window, got %v", fields[0], "at", fields[1:])
	}
	from, to, err := parseWindow(fields[2])
	if err != nil {
		return sp, fmt.Errorf("%s: %w", fields[0], err)
	}
	sp.From, sp.To = from, to
	rest := fields[3:]
	if len(rest)%2 != 0 {
		return sp, fmt.Errorf("%s: dangling option %q (options are key/value pairs)", fields[0], rest[len(rest)-1])
	}
	for i := 0; i < len(rest); i += 2 {
		key, val := rest[i], rest[i+1]
		switch key {
		case "jitter":
			if sp.Jitter, err = parseDur(val); err != nil {
				return sp, fmt.Errorf("jitter: %w", err)
			}
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil {
				return sp, fmt.Errorf("count %q: %w", val, err)
			}
			sp.Count = n
		case "group":
			sp.Group = val
		case "drop":
			if sp.Drop, err = parseProb(val); err != nil {
				return sp, fmt.Errorf("drop: %w", err)
			}
		case "slow":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return sp, fmt.Errorf("slow %q: %w", val, err)
			}
			if !(f >= 0) || f > maxSlowFactor { // NaN fails the first test
				return sp, fmt.Errorf("slow factor %v out of [0, %v]", f, float64(maxSlowFactor))
			}
			sp.Slow = f
		case "rate":
			if sp.Rate, err = parseProb(val); err != nil {
				return sp, fmt.Errorf("rate: %w", err)
			}
		case "phase":
			sp.Phase = val
		case "domain":
			sp.Domain = val
		default:
			return sp, fmt.Errorf("%s: unknown option %q", fields[0], key)
		}
	}
	return sp, nil
}

// parseWindow parses "<from>..<to>" with both bounds Go durations.
func parseWindow(s string) (from, to des.Time, err error) {
	lo, hi, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("window %q: want <from>..<to>", s)
	}
	if from, err = parseDur(lo); err != nil {
		return 0, 0, fmt.Errorf("window start: %w", err)
	}
	if to, err = parseDur(hi); err != nil {
		return 0, 0, fmt.Errorf("window end: %w", err)
	}
	return from, to, nil
}

// parseDur parses a Go duration literal into virtual time. Durations in
// the schedule are virtual-clock deltas; time.ParseDuration is only the
// lexer (no wall clock is read).
func parseDur(s string) (des.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("duration %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %q is negative", s)
	}
	return des.Time(d.Nanoseconds()), nil
}

// parseProb parses a probability literal, requiring [0, 1).
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("probability %q: %w", s, err)
	}
	if !(p >= 0 && p < 1) { // written to also reject NaN
		return 0, fmt.Errorf("probability %v out of [0, 1)", p)
	}
	return p, nil
}
