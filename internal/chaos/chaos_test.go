package chaos

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

func mustParse(t *testing.T, text string) *Schedule {
	t.Helper()
	s, err := ParseSchedule(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return s
}

func TestParseScheduleFull(t *testing.T) {
	s := mustParse(t, `
# adversarial burst
crash at 2s..8s count 2 jitter 300ms group burst
commit-crash at 1s..30s count 2
partition at 2s..4s drop 0.85 group burst
brownout at 6s..9s drop 0.3 slow 2.5
storage-outage at 7s..8s
storage-brownout at 2s..10s rate 0.5
bitflip at 1200ms..5s count 4
crash-during-drain at 1s..20s phase deregister count 2
domain-crash at 5s..20s domain d1
`)
	if len(s.Specs) != 9 {
		t.Fatalf("parsed %d specs, want 9", len(s.Specs))
	}
	sp := s.Specs[0]
	if sp.Kind != Crash || sp.From != 2*des.Second || sp.To != 8*des.Second ||
		sp.Count != 2 || sp.Jitter != 300*des.Millisecond || sp.Group != "burst" {
		t.Fatalf("crash spec = %+v", sp)
	}
	if s.Specs[3].Slow != 2.5 || s.Specs[3].Drop != 0.3 {
		t.Fatalf("brownout spec = %+v", s.Specs[3])
	}
	if s.Specs[5].Rate != 0.5 {
		t.Fatalf("storage-brownout spec = %+v", s.Specs[5])
	}
	if s.Specs[7].Kind != DrainCrash || s.Specs[7].Phase != "deregister" || s.Specs[7].Count != 2 {
		t.Fatalf("crash-during-drain spec = %+v", s.Specs[7])
	}
	if s.Specs[8].Kind != DomainCrash || s.Specs[8].Domain != "d1" {
		t.Fatalf("domain-crash spec = %+v", s.Specs[8])
	}
}

func TestParseScheduleRejects(t *testing.T) {
	for name, text := range map[string]string{
		"empty":            "",
		"comments only":    "# nothing\n\n",
		"unknown kind":     "meteor at 1s..2s",
		"missing at":       "crash 1s..2s",
		"bad window":       "crash at 1s-2s",
		"reversed window":  "crash at 5s..2s",
		"negative dur":     "crash at -1s..2s",
		"dangling option":  "crash at 1s..2s count",
		"unknown option":   "crash at 1s..2s colour red",
		"bad count":        "crash at 1s..2s count x",
		"huge count":       "crash at 1s..2s count 1000000",
		"bad drop":         "partition at 1s..2s drop 1.5",
		"nan drop":         "partition at 1s..2s drop NaN",
		"nan rate":         "storage-brownout at 1s..2s rate nan",
		"nan slow":         "brownout at 1s..2s slow NaN",
		"huge slow":        "brownout at 1s..2s slow 1e9",
		"empty window":     "partition at 2s..2s",
		"garbage duration": "crash at eleventy..2s",
		"drain no phase":   "crash-during-drain at 1s..2s",
		"drain bad phase":  "crash-during-drain at 1s..2s phase warp",
	} {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("%s: %q accepted", name, text)
		}
	}
}

// Compilation is a pure function of (schedule, seed): identical twice,
// different under a different seed, and group-correlated specs land at
// the same fractional window position.
func TestCompileDeterministicAndSeeded(t *testing.T) {
	s := mustParse(t, `
crash at 2s..8s count 3 jitter 300ms
partition at 2s..4s
bitflip at 1s..5s count 2
`)
	a, err := s.Compile(42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Compile(42)
	c, _ := s.Compile(43)
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("same seed, different crash instants: %v vs %v", a.Crashes, b.Crashes)
		}
	}
	same := len(a.Crashes) == len(c.Crashes)
	if same {
		for i := range a.Crashes {
			if a.Crashes[i] != c.Crashes[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("seed 42 and 43 compiled identical crash instants: %v", a.Crashes)
	}
	if len(a.Crashes) != 3 || len(a.BitFlips) != 2 || len(a.NetWindows) != 1 {
		t.Fatalf("plan shape: %+v", a)
	}
	for i := 1; i < len(a.Crashes); i++ {
		if a.Crashes[i] < a.Crashes[i-1] {
			t.Fatalf("crash instants not ascending: %v", a.Crashes)
		}
	}
	for _, at := range a.Crashes {
		if at < 2*des.Second || at > 8*des.Second {
			t.Fatalf("crash instant %v escaped its window", at)
		}
	}
}

func TestCompileGroupCorrelation(t *testing.T) {
	s := mustParse(t, `
crash at 0s..10s group g
crash at 100s..110s group g
`)
	p, err := s.Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	// Same group, same-width windows → same offset from each window start.
	off0 := p.Crashes[0]
	off1 := p.Crashes[1] - 100*des.Second
	if off0 != off1 {
		t.Fatalf("grouped specs drew different fractions: %v vs %v", off0, off1)
	}
}

func TestPlanHorizonAndEvents(t *testing.T) {
	s := mustParse(t, "crash at 1s..2s\nstorage-outage at 5s..9s")
	p, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if h := p.Horizon(); h != 9*des.Second {
		t.Fatalf("horizon %v, want 9s", h)
	}
	if p.Events() != 2 {
		t.Fatalf("events %d, want 2", p.Events())
	}
}

func TestValidateRejectsHostileSpecs(t *testing.T) {
	nan := func() float64 { var z float64; return z / z }() // NaN without math import
	for name, sp := range map[string]Spec{
		"unknown kind": {Kind: DrainCrash + 1, To: des.Second},
		"drain phase":  {Kind: DrainCrash, To: des.Second, Phase: "warp"},
		"neg window":   {Kind: Crash, From: -1},
		"nan drop":     {Kind: Partition, To: des.Second, Drop: nan},
		"nan rate":     {Kind: StorageBrownout, To: des.Second, Rate: nan},
		"nan slow":     {Kind: Brownout, To: des.Second, Slow: nan},
	} {
		s := &Schedule{Specs: []Spec{sp}}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: %+v validated", name, sp)
		}
	}
}

// The driver's timed store: operations inside an outage window refuse
// with ErrUnavailable, a brownout drops a seeded fraction with
// ErrTransient, and outside all windows the store is transparent.
func TestDriverTimedStore(t *testing.T) {
	s := mustParse(t, "storage-outage at 1s..2s\nstorage-brownout at 3s..5s rate 0.99")
	p, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine()
	d := NewDriver(eng, p)
	st := d.WrapStore(storage.NewMemStore())
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("put before any window: %v", err)
	}
	var outageErr, brownErr error
	eng.Schedule(1500*des.Millisecond, func() { _, outageErr = st.Get("k") })
	eng.Schedule(4*des.Second, func() {
		// 20 tries at 99% drop: overwhelmingly likely to observe one.
		for i := 0; i < 20; i++ {
			if _, err := st.Get("k"); err != nil {
				brownErr = err
				return
			}
		}
	})
	eng.Run(des.MaxTime)
	if !errors.Is(outageErr, storage.ErrUnavailable) {
		t.Fatalf("outage-window get: %v", outageErr)
	}
	if !errors.Is(brownErr, storage.ErrTransient) {
		t.Fatalf("brownout-window get: %v", brownErr)
	}
	stats := d.Stats()
	if stats.OutageRefusals == 0 || stats.BrownoutDrops == 0 {
		t.Fatalf("stats did not count the refusals: %+v", stats)
	}
}

// A bit flip mutates exactly one stored bit, silently: the store still
// serves the key, but the payload differs from what was written.
func TestDriverBitFlip(t *testing.T) {
	s := mustParse(t, "bitflip at 1s..2s")
	p, err := s.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := des.NewEngine()
	d := NewDriver(eng, p)
	st := d.WrapStore(storage.NewMemStore())
	orig := []byte{0xAA, 0xBB, 0xCC}
	if err := st.Put("seg", append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	eng.Run(des.MaxTime)
	if d.Stats().BitFlips != 1 {
		t.Fatalf("stats = %+v, want 1 flip", d.Stats())
	}
	got, err := st.Get("seg")
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1 (%x vs %x)", diff, got, orig)
	}
}

// A flip instant on an empty store is a counted miss, not a panic.
func TestDriverBitFlipMiss(t *testing.T) {
	s := mustParse(t, "bitflip at 1s..2s")
	p, _ := s.Compile(1)
	eng := des.NewEngine()
	d := NewDriver(eng, p)
	d.WrapStore(storage.NewMemStore())
	eng.Run(des.MaxTime)
	if st := d.Stats(); st.BitFlips != 0 || st.BitFlipMisses != 1 {
		t.Fatalf("stats = %+v, want one miss", st)
	}
}

func TestMergeNetFaults(t *testing.T) {
	s := mustParse(t, "partition at 2s..4s drop 0.9")
	p, _ := s.Compile(5)
	d := NewDriver(des.NewEngine(), p)

	// nil base: a fresh config seeded from the plan.
	cfg := d.MergeNetFaults(nil)
	if cfg == nil || len(cfg.Windows) != 1 || cfg.Windows[0].ExtraDrop != 0.9 {
		t.Fatalf("merged from nil: %+v", cfg)
	}

	// Non-nil base: copied, not mutated.
	base := &mpi.NetFaultConfig{Seed: 77, Windows: []mpi.DegradedWindow{{From: 0, To: des.Second}}}
	merged := d.MergeNetFaults(base)
	if len(base.Windows) != 1 {
		t.Fatal("base mutated")
	}
	if merged.Seed != 77 || len(merged.Windows) != 2 {
		t.Fatalf("merged: %+v", merged)
	}
}

func TestCommitCrashDelayConsumesWindows(t *testing.T) {
	s := mustParse(t, "commit-crash at 1s..10s count 2")
	p, _ := s.Compile(3)
	d := NewDriver(des.NewEngine(), p)
	now, last := 2*des.Second, 4*des.Second
	d1, ok := d.CommitCrashDelay(now, last)
	if !ok || d1 < 0 || now+d1 >= last {
		t.Fatalf("first delay %v/%v not strictly inside the commit window", d1, ok)
	}
	if _, ok := d.CommitCrashDelay(now, last); !ok {
		t.Fatal("second planned round not consumed")
	}
	if _, ok := d.CommitCrashDelay(now, last); ok {
		t.Fatal("third round killed with only two planned")
	}
	if _, ok := d.CommitCrashDelay(20*des.Second, 21*des.Second); ok {
		t.Fatal("round outside every window killed")
	}
}

// A domain-crash window fires once per planned round, carries its domain
// name through compilation, and draws its kill instant strictly inside
// the commit pause.
func TestDomainCrashDelayConsumesWindows(t *testing.T) {
	s := mustParse(t, "domain-crash at 1s..10s domain d1 count 2")
	p, err := s.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DomainCrashes) != 2 || p.DomainCrashes[0].Domain != "d1" {
		t.Fatalf("plan domain crashes: %+v", p.DomainCrashes)
	}
	d := NewDriver(des.NewEngine(), p)
	if _, _, ok := d.DomainCrashDelay(500*des.Millisecond, des.Second); ok {
		t.Fatal("kill outside the window")
	}
	now, end := 2*des.Second, 4*des.Second
	name, delay, ok := d.DomainCrashDelay(now, end)
	if !ok || name != "d1" || delay < 0 || now+delay >= end {
		t.Fatalf("first round: name=%q delay=%v ok=%v", name, delay, ok)
	}
	if name, _, ok := d.DomainCrashDelay(now, end); !ok || name != "d1" {
		t.Fatal("second planned round not consumed")
	}
	if _, _, ok := d.DomainCrashDelay(now, end); ok {
		t.Fatal("third round killed with only two planned")
	}
	if d.Stats().DomainCrashes != 2 {
		t.Fatalf("stats = %+v, want 2 domain crashes", d.Stats())
	}
	// A degenerate pause (end <= now) still kills, at delay zero.
	p2, _ := mustParse(t, "domain-crash at 1s..10s domain rack0").Compile(9)
	d2 := NewDriver(des.NewEngine(), p2)
	if name, delay, ok := d2.DomainCrashDelay(now, now); !ok || name != "rack0" || delay != 0 {
		t.Fatalf("degenerate pause: name=%q delay=%v ok=%v", name, delay, ok)
	}
}

// A drain-crash window fires once per planned round, only for its own
// phase, only inside its window.
func TestDrainCrashHitConsumesWindows(t *testing.T) {
	s := mustParse(t, "crash-during-drain at 1s..10s phase deregister count 2")
	p, err := s.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DrainCrashes) != 2 || p.DrainCrashes[0].Phase != mpi.PhaseDeregister {
		t.Fatalf("plan drain crashes: %+v", p.DrainCrashes)
	}
	d := NewDriver(des.NewEngine(), p)
	if d.DrainCrashHit(mpi.PhaseQuiesce, 2*des.Second) {
		t.Fatal("wrong phase killed")
	}
	if d.DrainCrashHit(mpi.PhaseDeregister, 500*des.Millisecond) {
		t.Fatal("kill outside the window")
	}
	if !d.DrainCrashHit(mpi.PhaseDeregister, 2*des.Second) {
		t.Fatal("first planned round not killed")
	}
	if !d.DrainCrashHit(mpi.PhaseDeregister, 3*des.Second) {
		t.Fatal("second planned round not killed")
	}
	if d.DrainCrashHit(mpi.PhaseDeregister, 4*des.Second) {
		t.Fatal("third round killed with only two planned")
	}
	if d.Stats().DrainCrashes != 2 {
		t.Fatalf("stats = %+v, want 2 drain crashes", d.Stats())
	}
}

// FuzzParseSchedule holds the parser to its contract: malformed
// schedules error, hostile bytes never panic, and anything that parses
// also validates and compiles.
func FuzzParseSchedule(f *testing.F) {
	f.Add("crash at 2s..8s count 2 jitter 300ms group burst")
	f.Add("commit-crash at 1s..30s count 2\npartition at 2s..4s drop 0.85")
	f.Add("# comment\nstorage-brownout at 2s..10s rate 0.5\nbitflip at 1200ms..5s count 4")
	f.Add("brownout at 6s..9s drop 0.3 slow 2.5")
	f.Add("crash at 1s..2s drop NaN")
	f.Add("crash at -1s..2s")
	f.Add("storage-outage at 9223372036854775807ns..9223372036854775807ns")
	f.Add("crash-during-drain at 1s..20s phase deregister count 2")
	f.Add("crash-during-drain at 1s..2s phase warp")
	f.Add("crash-during-drain at 1s..2s")
	f.Add("domain-crash at 5s..20s domain d1")
	f.Add("domain-crash at 5s..20s domain d1 count 2 jitter 100ms")
	f.Add("domain-crash at 5s..20s")
	f.Add("domain-crash at 5s..5s domain d0")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			if s != nil {
				t.Fatal("error with non-nil schedule")
			}
			return
		}
		if len(s.Specs) == 0 {
			t.Fatal("empty schedule parsed without error")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed schedule fails validation: %v", err)
		}
		p, err := s.Compile(1)
		if err != nil {
			t.Fatalf("parsed schedule fails compilation: %v", err)
		}
		if p.Events() == 0 {
			t.Fatal("non-empty schedule compiled to zero events")
		}
		// Round-trip sanity on spec kinds' names.
		for _, sp := range s.Specs {
			if strings.Contains(sp.Kind.String(), "chaos.Kind") {
				t.Fatalf("parsed spec has unnamed kind %d", sp.Kind)
			}
		}
	})
}
