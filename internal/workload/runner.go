package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// Config parameterises a Runner.
type Config struct {
	// Ranks is the number of MPI processes; zero selects the spec's
	// reference count (64 in the paper).
	Ranks int
	// PageSize is the simulated page size; zero selects the Itanium II
	// default (16 KB).
	PageSize uint64
	// Backed selects content-carrying pages. The default (phantom)
	// carries protection metadata only, which is all the feasibility
	// experiments need; checkpoint/restore tests require Backed.
	Backed bool
	// Mode selects NIC delivery; the default is Bounce, the paper's
	// workaround, which is the only mode compatible with tracking.
	Mode mpi.DeliveryMode
	// Net is the interconnect model; the zero value selects QsNet.
	Net mpi.Network
	// Seed drives per-rank jitter; runs with equal seeds are identical.
	Seed uint64
	// MaxTick caps the sweep scheduling granularity. Zero selects
	// 50 ms. Smaller ticks cost more events but resolve shorter
	// timeslices; the runner automatically refines ticks for bursts
	// shorter than ~20 ticks.
	MaxTick des.Time
	// Shards selects the event-engine topology. Zero or one runs the
	// whole simulation on a single sequential engine (the default, and
	// bit-identical to historical runs). Larger values spread ranks
	// round-robin across that many parallel event shards (clamped to
	// Ranks), synchronised at deterministic epoch barriers; per-seed
	// results are identical at every shard count.
	Shards int
}

func (c Config) withDefaults(spec Spec) Config {
	if c.Ranks == 0 {
		c.Ranks = spec.RefRanks
	}
	if c.PageSize == 0 {
		c.PageSize = mem.DefaultPageSize
	}
	if c.Net == (mpi.Network{}) {
		c.Net = mpi.QsNet()
	}
	if c.MaxTick == 0 {
		c.MaxTick = 50 * des.Millisecond
	}
	return c
}

// Runner executes one application model across a set of ranks on a
// dedicated simulation engine.
type Runner struct {
	Spec Spec
	Cfg  Config

	// Eng is the engine experiments drive Run/Step on and the home of
	// control-plane work (coordinators, adaptive controllers). With
	// Shards <= 1 it is the single sequential engine; otherwise it is
	// the group's control engine, whose events run at serial instants.
	Eng    *des.Engine
	World  *mpi.World
	group  *des.Group
	spaces []*mem.AddressSpace
	apps   []*app

	iterZero des.Time // when rank 0 started iteration 0; 0 until known
}

// New builds the engine, address spaces, MPI world and per-rank
// application instances, and schedules the data-initialization phase at
// virtual time zero. Attach trackers to Space(i) before calling Run.
func New(spec Spec, cfg Config) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(spec)
	spaces := make([]*mem.AddressSpace, cfg.Ranks)
	for i := range spaces {
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: cfg.PageSize, Phantom: !cfg.Backed})
	}
	r := &Runner{Spec: spec, Cfg: cfg, spaces: spaces}
	if cfg.Shards > 1 {
		r.group = des.NewGroup(min(cfg.Shards, cfg.Ranks))
		r.Eng = r.group.Control()
		engs := make([]*des.Engine, cfg.Ranks)
		for i := range engs {
			engs[i] = r.EngineFor(i)
		}
		world, err := mpi.NewShardedWorld(engs, cfg.Net, cfg.Mode, spaces)
		if err != nil {
			return nil, err
		}
		r.World = world
	} else {
		r.Eng = des.NewEngine()
		world, err := mpi.NewWorld(r.Eng, cfg.Net, cfg.Mode, spaces)
		if err != nil {
			return nil, err
		}
		r.World = world
	}
	for i := 0; i < cfg.Ranks; i++ {
		a, err := newApp(r, i)
		if err != nil {
			return nil, err
		}
		r.apps = append(r.apps, a)
	}
	// All ranks begin initialization at t=0, each on its own engine.
	for _, a := range r.apps {
		a := a
		a.eng.Schedule(0, func() { a.startInit() })
	}
	return r, nil
}

// Space returns rank i's address space.
func (r *Runner) Space(i int) *mem.AddressSpace { return r.spaces[i] }

// EngineFor returns the engine rank i's events execute on: the single
// sequential engine, or the rank's data shard in a sharded run. Per-rank
// instruments (trackers, checkpointers) must bind to this engine so
// their callbacks stay on the rank's shard.
func (r *Runner) EngineFor(i int) *des.Engine {
	if r.group != nil {
		return r.group.Shard(i % r.group.Shards())
	}
	return r.Eng
}

// Group returns the shard group, or nil for a sequential run.
func (r *Runner) Group() *des.Group { return r.group }

// CriticalPathEvents reports the longest dependent event chain executed
// so far. Eng.Fired()/CriticalPathEvents() is the run's available
// concurrency — deterministic per seed and shard count, unlike
// wall-clock. A sequential run has every event on the chain.
func (r *Runner) CriticalPathEvents() uint64 {
	if r.group != nil {
		return r.group.CriticalPathEvents()
	}
	return r.Eng.Fired()
}

// Run advances the simulation until the given virtual time.
func (r *Runner) Run(until des.Time) { r.Eng.Run(until) }

// Now reports the run's current virtual time: the engine clock, or the
// maximum member clock of a sharded group (members may transiently skew
// within an epoch; they unify at Run boundaries).
func (r *Runner) Now() des.Time {
	if r.group != nil {
		return r.group.Now()
	}
	return r.Eng.Now()
}

// IterZero reports when rank 0 entered its first iteration (after the
// data-initialization phase); zero until that has happened. Experiments
// exclude samples before this point, as the paper excludes the
// initialization write burst (§6.3).
func (r *Runner) IterZero() des.Time { return r.iterZero }

// InitEstimate returns an analytic upper bound for the initialization
// phase duration, usable to size Run budgets before running.
func (r *Runner) InitEstimate() des.Time {
	secs := r.Spec.PersistentMB() / r.Spec.InitRateMBs
	return des.FromSeconds(secs*1.05) + 100*des.Millisecond
}

// InitTail returns the virtual instant of the final initialization sweep
// tick — a strict floor for the init barrier's release (the release adds
// at least one network latency). Callers seeking the exact first
// iteration boundary run to this point in bulk (parallel in a sharded
// run), then Step the remaining handful of events; the resulting event
// sequence is identical to stepping the whole way.
func (r *Runner) InitTail() des.Time {
	// Mirrors startInit's schedule: every rank sweeps the same total at
	// the same rate, one tick per 50 ms starting at t=0.
	a := r.apps[0]
	rate := r.Spec.InitRateMBs * MB
	total := a.static.Size() + a.arena.Size()
	tick := 50 * des.Millisecond
	perTick := uint64(rate * tick.Seconds())
	if perTick == 0 || perTick >= total {
		return 0
	}
	steps := (total + perTick - 1) / perTick
	return des.Time(steps-1) * tick
}

// DurationFor returns a virtual-time budget covering initialization plus
// the given number of iterations (plus slack for barrier drift).
func (r *Runner) DurationFor(iterations int) des.Time {
	period := r.Spec.PeriodAt(r.Cfg.Ranks)
	return r.InitEstimate() + des.Time(iterations)*period + period/4
}

// Iterations reports how many full iterations rank 0 has completed.
func (r *Runner) Iterations() int { return r.apps[0].iter }

// span is a byte extent the sweep walks through.
type span struct {
	base, size uint64
}

// app is one rank's application instance.
type app struct {
	r     *Runner
	id    int
	rank  *mpi.Rank
	eng   *des.Engine // the rank's engine (shard or sequential)
	space *mem.AddressSpace
	rng   *rand.Rand

	arena     *mem.Region // persistent arena
	static    *mem.Region // initialized-data segment
	stripBase uint64      // ghost-cell strip inside the arena
	sweepBase uint64      // working-set window base (before AltShift)

	wsBytes        uint64 // total working-set bytes per iteration
	persistentWS   uint64 // part of the working set in the persistent arena
	transientBytes uint64 // per-iteration transient arena (dynamic apps)
	stripBytes     uint64
	shiftBytes     uint64
	msgBytes       uint64
	nMsgs          int

	iter      int
	transient *mem.Region
	cursor    uint64 // sweep position within the iteration's spans
	spans     []span
	spanBuf   [2]span // scratch backing for iterationSpans
}

func newApp(r *Runner, id int) (*app, error) {
	s := r.Spec
	a := &app{
		r:     r,
		id:    id,
		rank:  r.World.Rank(id),
		eng:   r.EngineFor(id),
		space: r.spaces[id],
		rng:   rand.New(rand.NewPCG(r.Cfg.Seed, uint64(id)+1)),
	}
	a.wsBytes = uint64(s.WorkingSetMB * MB)
	a.transientBytes = uint64(s.TransientMB() * MB)
	// The whole working set lives in persistent memory: the transient
	// arena is *additional* scratch space, swept while mapped but
	// dropped by memory exclusion when the allocator releases it. This
	// is what keeps the per-iteration overwrite fraction (Table 3, at
	// period-aligned alarms where the arena is already gone) at the
	// published ~53% while the footprint still oscillates (Table 2).
	a.persistentWS = a.wsBytes
	a.stripBytes = uint64(s.CommStripMB * MB)
	a.shiftBytes = uint64(s.AltShiftMB * MB)
	if s.CommMB > 0 {
		a.msgBytes = uint64(s.CommMsgKB * 1024)
		a.nMsgs = max(1, int(s.CommMB*MB/float64(a.msgBytes)+0.5))
	}

	// Address-space layout: a small static data segment, then one
	// persistent arena holding the working-set window (plus its
	// alternation shift), the ghost strip, and init-only remainder.
	a.static = a.space.MapData(uint64(s.StaticMB * MB))
	persistent := uint64(s.PersistentMB()*MB) - a.static.Size()
	// The 1 MB margin keeps strip writes (and the reduction scalar) away
	// from the arena end even when a message overhangs the strip.
	spikeSpan := a.persistentWS + uint64(s.SpikeExtraMB*MB)
	needed := max(a.persistentWS+a.shiftBytes, spikeSpan) + a.stripBytes + 1<<20
	if persistent < needed {
		return nil, fmt.Errorf("workload %s: persistent arena %d B cannot hold ws+shift+strip %d B", s.Name, persistent, needed)
	}
	arena, err := a.space.Mmap(persistent)
	if err != nil {
		return nil, err
	}
	a.arena = arena
	a.sweepBase = arena.Start()
	a.stripBase = arena.Start() + max(a.persistentWS+a.shiftBytes, spikeSpan)
	return a, nil
}

// startInit sweeps the whole persistent footprint once at the
// initialization rate (the initial IWS peak of Fig 1a), then joins a
// barrier and enters the iteration loop.
func (a *app) startInit() {
	rate := a.r.Spec.InitRateMBs * MB
	total := a.static.Size() + a.arena.Size()
	tick := 50 * des.Millisecond
	perTick := uint64(rate * tick.Seconds())
	if perTick == 0 {
		perTick = total
	}
	var pos uint64
	var step func()
	step = func() {
		n := min(perTick, total-pos)
		a.writeAcross([]span{{a.static.Start(), a.static.Size()}, {a.arena.Start(), a.arena.Size()}}, pos, n)
		pos += n
		if pos < total {
			a.eng.After(tick, step)
			return
		}
		a.rank.Barrier(func() {
			if a.id == 0 {
				a.r.iterZero = a.eng.Now()
			}
			a.startIteration()
		})
	}
	step()
}

// writeAcross writes n bytes starting at logical offset pos within the
// concatenation of the given spans, wrapping around.
func (a *app) writeAcross(spans []span, pos, n uint64) {
	var total uint64
	for _, sp := range spans {
		total += sp.size
	}
	if total == 0 || n == 0 {
		return
	}
	pos %= total
	for n > 0 {
		// Locate the span containing pos.
		rem := pos
		var sp span
		for _, cand := range spans {
			if rem < cand.size {
				sp = cand
				break
			}
			rem -= cand.size
		}
		w := min(n, sp.size-rem)
		if err := a.space.WriteRange(sp.base+rem, w); err != nil {
			panic(fmt.Sprintf("workload %s rank %d: sweep write: %v", a.r.Spec.Name, a.id, err))
		}
		pos = (pos + w) % total
		n -= w
	}
}

// iterationSpans returns the sweep spans for the current iteration:
// the (possibly shifted or spike-extended) persistent window plus the
// transient arena. The returned slice aliases a per-app scratch buffer —
// it is valid until the next call, which is all the sweep ticks need, and
// keeps the per-tick hot path allocation-free.
func (a *app) iterationSpans() []span {
	spans := a.spanBuf[:0]
	if a.r.Spec.IsSpike(a.iter) {
		extended := a.persistentWS + uint64(a.r.Spec.SpikeExtraMB*MB)
		return append(spans, span{a.sweepBase, extended})
	}
	shift := uint64(0)
	if a.shiftBytes > 0 && a.iter%2 == 1 {
		shift = a.shiftBytes
	}
	spans = append(spans, span{a.sweepBase + shift, a.persistentWS})
	if a.transient != nil {
		spans = append(spans, span{a.transient.Start(), a.transient.Size()})
	}
	return spans
}

// startIteration runs one bulk-synchronous iteration: processing burst,
// communication burst, global reduction, repeat.
func (a *app) startIteration() {
	s := a.r.Spec
	eng := a.eng
	period := s.PeriodAt(a.r.Cfg.Ranks)
	burst := s.BurstDuration(a.r.Cfg.Ranks)
	iterStart := eng.Now()

	// Small per-rank jitter on the burst start keeps ranks from being
	// artificially phase-locked at event granularity.
	jitter := des.Time(a.rng.Int64N(int64(period/200) + 1))

	// Dynamic applications map their transient arena for the duration
	// of the processing burst (§4.1: Fortran90 allocates per cycle).
	// Mapping touches only this rank's space, so the event is local.
	if s.Dynamic && a.transientBytes > 0 {
		eng.AfterLocal(jitter, func() {
			t, err := a.space.Mmap(a.transientBytes)
			if err != nil {
				panic(fmt.Sprintf("workload %s: transient mmap: %v", s.Name, err))
			}
			a.transient = t
		})
	}

	// Processing burst: sub-bursts with profiled rates sweep the
	// working set. The cursor restarts each iteration so coverage is
	// deterministic.
	a.cursor = 0
	meanRate := s.SweepRateBps(a.r.Cfg.Ranks)
	if s.IsSpike(a.iter) {
		meanRate = s.SpikeSweeps * (s.WorkingSetMB + s.SpikeExtraMB) * MB / burst.Seconds()
	}
	profile := normalize(s.RateProfile)
	subDur := burst / des.Time(len(profile))
	tick := subDur / 12
	if tick > a.r.Cfg.MaxTick {
		tick = a.r.Cfg.MaxTick
	}
	if tick < 100*des.Microsecond {
		tick = 100 * des.Microsecond
	}
	// Temporal locality: each tick also rewrites the whole trailing
	// dwell window behind the sweep cursor. Re-touching already-dirty
	// pages is nearly free in the simulation (a bitmap word scan), and
	// in measurement terms the window contributes a constant DwellMB to
	// every timeslice's IWS — the hot-inner-array behaviour.
	dwellBytes := uint64(s.DwellMB * MB)
	for bi, mult := range profile {
		rate := meanRate * mult
		perTick := uint64(rate * tick.Seconds())
		start := jitter + des.Time(bi)*subDur
		// One closure serves every tick of this sub-burst: the per-tick
		// state (cursor, spans) lives on the app, so scheduling the same
		// func value repeatedly keeps the sweep loop allocation-free.
		doTick := func() {
			spans := a.iterationSpans()
			a.writeAcross(spans, a.cursor, perTick)
			a.cursor += perTick
			if dwellBytes > 0 {
				var total uint64
				for _, sp := range spans {
					total += sp.size
				}
				if dwellBytes < total {
					a.writeAcross(spans, a.cursor+total-dwellBytes, dwellBytes)
				}
			}
		}
		// Sweep ticks write this rank's memory and schedule nothing, so
		// they are local events: a sharded run excludes them from epoch
		// horizons, which is what lets shards advance in parallel.
		for off := des.Time(0); off+tick <= subDur; off += tick {
			eng.AfterLocal(start+off+tick, doTick)
		}
	}

	// Burst end: drop the transient arena (memory exclusion target).
	eng.AfterLocal(jitter+burst, func() {
		if a.transient != nil {
			if err := a.space.Munmap(a.transient); err != nil {
				panic(fmt.Sprintf("workload %s: transient munmap: %v", s.Name, err))
			}
			a.transient = nil
		}
	})

	// Communication burst: ring exchange with the right neighbour in
	// clumps spread across the window between burst end and period end.
	if a.nMsgs > 0 {
		a.scheduleComm(iterStart, burst, period)
	}

	// Global reduction at period end synchronises ranks and starts the
	// next iteration (the paper's codes end iterations with global
	// convergence checks).
	eng.Schedule(iterStart+period, func() {
		a.rank.AllReduce(8, a.stripBase, func() {
			a.iter++
			a.startIteration()
		})
	})
}

// scheduleComm posts this iteration's receives and schedules its sends.
func (a *app) scheduleComm(iterStart des.Time, burst, period des.Time) {
	s := a.r.Spec
	eng := a.eng
	n := a.r.Cfg.Ranks
	right := (a.id + 1) % n
	slots := max(1, int(a.stripBytes/a.msgBytes))
	window := period - burst
	clumps := max(1, s.CommClumps)
	perClump := (a.nMsgs + clumps - 1) / clumps
	// Each clump is compressed into a short sub-window so received data
	// arrives in bursts (Fig 1b), not as a smear.
	clumpDur := des.Time(float64(window) * 0.05)

	// Post all receives at burst end; they match sends as they arrive.
	eng.Schedule(iterStart+burst, func() {
		for j := 0; j < a.nMsgs; j++ {
			dest := a.stripBase + uint64(j%slots)*a.msgBytes
			a.rank.Recv(mpi.AnySource, 0, dest, nil)
		}
	})
	msg := 0
	sendOne := func() { a.rank.Send(right, 0, a.msgBytes, nil) }
	for c := 0; c < clumps && msg < a.nMsgs; c++ {
		clumpStart := burst + des.Time(float64(window)*(float64(c)+0.3)/float64(clumps))
		for k := 0; k < perClump && msg < a.nMsgs; k++ {
			at := clumpStart + des.Time(float64(clumpDur)*float64(k)/float64(perClump))
			eng.Schedule(iterStart+at, sendOne)
			msg++
		}
	}
}

// normalize scales profile entries to mean 1.
func normalize(profile []float64) []float64 {
	var sum float64
	for _, p := range profile {
		sum += p
	}
	mean := sum / float64(len(profile))
	out := make([]float64, len(profile))
	for i, p := range profile {
		out[i] = p / mean
	}
	return out
}
