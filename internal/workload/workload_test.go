package workload

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/tracker"
)

func TestAllSpecsValidate(t *testing.T) {
	specs := All()
	if len(specs) != 9 {
		t.Fatalf("All() = %d specs, want 9 (Table 2)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Sweep3D")
	if err != nil || s.Name != "Sweep3D" {
		t.Fatalf("ByName: %v %v", s.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	base := SP()
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Paper.AvgFootprintMB = 0 },
		func(s *Spec) { s.Paper.MaxFootprintMB = s.Paper.AvgFootprintMB - 1 },
		func(s *Spec) { s.Paper.PeriodS = 0 },
		func(s *Spec) { s.WorkingSetMB = 0 },
		func(s *Spec) { s.WorkingSetMB = s.Paper.MaxFootprintMB + 1 },
		func(s *Spec) { s.Sweeps = 0 },
		func(s *Spec) { s.BurstFrac = 1.5 },
		func(s *Spec) { s.RateProfile = nil },
		func(s *Spec) { s.RefRanks = 0 },
		func(s *Spec) { s.CommStripMB = 0 },
	}
	for i, mut := range cases {
		s := base
		mut(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestPeriodScaling(t *testing.T) {
	s := Sage1000MB()
	ref := s.PeriodAt(64)
	if ref != des.FromSeconds(145) {
		t.Fatalf("PeriodAt(64) = %v", ref)
	}
	// Fewer ranks → shorter period (less communication).
	if p8 := s.PeriodAt(8); p8 >= ref {
		t.Fatalf("PeriodAt(8) = %v, want < %v", p8, ref)
	}
	if p128 := s.PeriodAt(128); p128 <= ref {
		t.Fatalf("PeriodAt(128) = %v, want > %v", p128, ref)
	}
	noScale := s
	noScale.ScaleAlpha = 0
	if noScale.PeriodAt(8) != ref {
		t.Fatal("ScaleAlpha=0 must not scale")
	}
}

func TestDerivedQuantities(t *testing.T) {
	s := Sage1000MB()
	// Transient/persistent split reproduces Table 2's avg and max.
	d := s.TransientMB()
	p := s.PersistentMB()
	if math.Abs(p+d-s.Paper.MaxFootprintMB) > 0.1 {
		t.Fatalf("persistent+transient = %v, want max %v", p+d, s.Paper.MaxFootprintMB)
	}
	avg := p + s.BurstFrac*d
	if math.Abs(avg-s.Paper.AvgFootprintMB) > 0.1 {
		t.Fatalf("modelled avg footprint = %v, want %v", avg, s.Paper.AvgFootprintMB)
	}
	if SP().TransientMB() != 0 {
		t.Fatal("static app has a transient arena")
	}
	// Sweep rate: S*W/B.
	rate := s.SweepRateBps(64)
	wantRate := s.Sweeps * s.WorkingSetMB * MB / (145 * s.BurstFrac)
	if math.Abs(rate-wantRate)/wantRate > 0.01 {
		t.Fatalf("SweepRateBps = %v, want %v", rate, wantRate)
	}
}

// tiny returns a small fast spec for unit tests.
func tiny() Spec {
	return Spec{
		Name:         "tiny",
		Paper:        Paper{MaxFootprintMB: 8, AvgFootprintMB: 8, PeriodS: 1, OverwritePct: 50},
		WorkingSetMB: 4, Sweeps: 2, BurstFrac: 0.5,
		RateProfile: []float64{1},
		CommMB:      0.25, CommStripMB: 0.25, CommMsgKB: 64, CommClumps: 1,
		RefRanks: 4, InitRateMBs: 100, StaticMB: 1,
	}
}

func TestRunnerLifecycle(t *testing.T) {
	r, err := New(tiny(), Config{Ranks: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.World.Size() != 4 {
		t.Fatalf("world size = %d", r.World.Size())
	}
	r.Run(r.DurationFor(3))
	if r.Iterations() < 3 {
		t.Fatalf("iterations = %d, want >= 3", r.Iterations())
	}
	if r.IterZero() <= 0 {
		t.Fatal("IterZero not recorded")
	}
	// Init takes about footprint/rate = 8MB/100MBs = 80ms.
	if got := r.IterZero().Seconds(); got < 0.05 || got > 0.5 {
		t.Fatalf("IterZero = %v s", got)
	}
	// Footprint matches the spec (static apps stay constant).
	wantFp := uint64(8 * MB)
	fp := r.Space(0).Footprint()
	// Page rounding and the MPI bounce buffer add a little.
	if fp < wantFp || fp > wantFp+(2<<20)+4*r.Space(0).PageSize() {
		t.Fatalf("footprint = %d, want ~%d", fp, wantFp)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		r, err := New(tiny(), Config{Ranks: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(r.DurationFor(2))
		return r.Space(0).WrittenBytes(), r.Eng.Fired()
	}
	w1, f1 := run()
	w2, f2 := run()
	if w1 != w2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", w1, f1, w2, f2)
	}
}

func TestRunnerInvalidSpec(t *testing.T) {
	s := tiny()
	s.Sweeps = 0
	if _, err := New(s, Config{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// Working set too large for the persistent arena.
	s = tiny()
	s.WorkingSetMB = 7.9
	if _, err := New(s, Config{Ranks: 2}); err == nil {
		t.Fatal("oversized working set accepted")
	}
}

// trackedRun runs spec for the given iterations with a tracker on rank 0
// and returns the post-initialization IWS series in MB.
func trackedRun(t *testing.T, spec Spec, ranks int, ts des.Time, iters int) (*metrics.Series, *Runner, *tracker.Tracker) {
	t.Helper()
	r, err := New(spec, Config{Ranks: ranks, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracker.New(r.Eng, r.Space(0), tracker.Options{Timeslice: ts})
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachRank(r.World, 0)
	tr.Start()
	r.Run(r.DurationFor(iters))
	return tr.IWSSeries().After(r.IterZero().Seconds() + ts.Seconds()), r, tr
}

func TestTrackedTinyIWS(t *testing.T) {
	spec := tiny()
	// Timeslice = period: every slice sees exactly one iteration's
	// working set (plus the comm strip and reduction page).
	iws, _, _ := trackedRun(t, spec, 4, des.Second, 6)
	if iws.Len() < 4 {
		t.Fatalf("too few samples: %d", iws.Len())
	}
	m := metrics.Summarize(iws)
	// Working set 4 MB + strip 0.25 MB; allow page rounding slack.
	if m.Mean < 3.5 || m.Mean > 5.5 {
		t.Fatalf("mean IWS = %.2f MB, want ~4.25", m.Mean)
	}
}

func TestIWSDropsWithTimeslice(t *testing.T) {
	spec := tiny()
	ib1, _, _ := trackedRun(t, spec, 2, des.Second, 8)
	ib4, _, _ := trackedRun(t, spec, 2, 4*des.Second, 8)
	m1 := metrics.Summarize(ib1).Mean / 1.0 // MB per 1s slice
	m4 := metrics.Summarize(ib4).Mean / 4.0 // MB/s at 4s slices
	if m4 >= m1 {
		t.Fatalf("IB did not drop with timeslice: %v at 1s vs %v at 4s", m1, m4)
	}
}

func TestDynamicFootprintOscillates(t *testing.T) {
	spec := tiny()
	spec.Name = "tiny-dyn"
	spec.Dynamic = true
	spec.Paper.MaxFootprintMB = 16 // 8 MB transient at BurstFrac 0.5 → 12 avg
	spec.Paper.AvgFootprintMB = 12
	r, err := New(spec, Config{Ranks: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := tracker.New(r.Eng, r.Space(0), tracker.Options{Timeslice: 250 * des.Millisecond})
	tr.AttachRank(r.World, 0)
	tr.Start()
	r.Run(r.DurationFor(4))
	fp := tr.FootprintSeries().After(r.IterZero().Seconds())
	m := metrics.Summarize(fp)
	if m.Max <= m.Min {
		t.Fatalf("dynamic footprint did not oscillate: %+v", m)
	}
	// Max should approach persistent+transient = 16 MB (plus bounce).
	if m.Max < 14 || m.Max > 19 {
		t.Fatalf("max footprint = %.1f MB, want ~16-17", m.Max)
	}
	// Transient pages written then unmapped must show up as exclusions.
	var excluded uint64
	for _, s := range tr.Samples() {
		excluded += s.ExcludedBytes
	}
	if excluded == 0 {
		t.Fatal("no memory exclusion observed for dynamic app")
	}
}

func TestCommDataReceived(t *testing.T) {
	spec := tiny()
	_, r, tr := trackedRun(t, spec, 4, 500*des.Millisecond, 6)
	recv := tr.RecvSeries().After(r.IterZero().Seconds())
	m := metrics.Summarize(recv)
	if m.Sum <= 0 {
		t.Fatal("no data received recorded")
	}
	// ~0.25 MB per iteration (plus allreduce payloads).
	perIter := m.Sum / float64(r.Iterations())
	if perIter < 0.1 || perIter > 1.0 {
		t.Fatalf("received %.3f MB per iteration, want ~0.25", perIter)
	}
}

func TestAltShiftIncreasesCrossIterationUnion(t *testing.T) {
	base := tiny()
	base.Paper.MaxFootprintMB = 16
	base.Paper.AvgFootprintMB = 16
	shifted := base
	shifted.Name = "tiny-shift"
	shifted.AltShiftMB = 2

	union := func(spec Spec) float64 {
		// Timeslice of 2 periods captures two consecutive iterations.
		iws, _, _ := trackedRun(t, spec, 2, 2*des.Second, 8)
		return metrics.Summarize(iws).Mean
	}
	u0 := union(base)
	u1 := union(shifted)
	if u1 <= u0+1.5 {
		t.Fatalf("AltShift union %.2f MB not > base %.2f + shift", u1, u0)
	}
}

func TestWeakScalingPeriodStretch(t *testing.T) {
	spec := tiny()
	spec.ScaleAlpha = 0.05
	spec.RefRanks = 2
	r2, _ := New(spec, Config{Ranks: 2, Seed: 1})
	r2.Run(r2.DurationFor(4))
	r8, _ := New(spec, Config{Ranks: 8, Seed: 1})
	r8.Run(r8.DurationFor(4))
	// Same virtual budget per iteration; more ranks → longer period →
	// same iteration count but measured over a longer wall time is
	// covered by DurationFor. Just verify both progressed and that the
	// configured period differs.
	if r2.Iterations() < 4 || r8.Iterations() < 4 {
		t.Fatalf("iterations: %d, %d", r2.Iterations(), r8.Iterations())
	}
	if spec.PeriodAt(8) <= spec.PeriodAt(2) {
		t.Fatal("period did not stretch with ranks")
	}
}

func TestNormalize(t *testing.T) {
	out := normalize([]float64{2, 4, 6})
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum/3-1) > 1e-12 {
		t.Fatalf("normalize mean = %v", sum/3)
	}
	if math.Abs(out[0]/out[2]-2.0/6.0) > 1e-12 {
		t.Fatal("normalize changed ratios")
	}
}

func BenchmarkTinyIteration(b *testing.B) {
	spec := tiny()
	r, err := New(spec, Config{Ranks: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r.Run(r.InitEstimate() + des.Second)
	period := spec.PeriodAt(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(r.Eng.Now() + period)
	}
}

func TestDwellBendsCurveImmediately(t *testing.T) {
	// With a dwell window, IB drops from ts=1 to ts=2 even while the
	// fresh sweep is far from wrapping; without it the curve is flat
	// until the sweep wraps.
	base := tiny()
	base.Paper.MaxFootprintMB = 64
	base.Paper.AvgFootprintMB = 64
	base.Paper.PeriodS = 8
	base.WorkingSetMB = 40
	base.Sweeps = 2
	base.BurstFrac = 0.8

	withDwell := base
	withDwell.Name = "tiny-dwell"
	withDwell.Sweeps = 1
	withDwell.DwellMB = 6.25 // half the 12.5 MB/s mean rate

	avgIB := func(spec Spec, ts des.Time) float64 {
		ib, _, _ := trackedRun(t, spec, 2, ts, 4)
		return metrics.Summarize(ib).Mean / ts.Seconds() * 1.0
	}
	// Without dwell: flat between 1s and 2s (sweep rate 12.5 MB/s,
	// working set 40 MB: no wrap inside 2s).
	flat1 := avgIB(base, des.Second)
	flat2 := avgIB(base, 2*des.Second)
	if flat2 < flat1*0.93 {
		t.Fatalf("no-dwell curve not flat: %.2f → %.2f", flat1, flat2)
	}
	// With dwell at equal ts=1 calibration: clear drop by ts=2.
	d1 := avgIB(withDwell, des.Second)
	d2 := avgIB(withDwell, 2*des.Second)
	if d2 > d1*0.88 {
		t.Fatalf("dwell curve did not bend: %.2f → %.2f", d1, d2)
	}
	// Calibration: both specs measure similar IB at ts=1.
	if math.Abs(d1-flat1)/flat1 > 0.25 {
		t.Fatalf("dwell calibration off at 1s: %.2f vs %.2f", d1, flat1)
	}
}

// Property: the IWS of any slice never exceeds the mapped footprint at
// the alarm, for any app and timeslice.
func TestPropertyIWSBoundedByFootprint(t *testing.T) {
	for _, spec := range []Spec{SP(), Sweep3D(), Sage50MB()} {
		for _, ts := range []des.Time{des.Second, 3 * des.Second} {
			r, err := New(spec, Config{Ranks: 2, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			tr, _ := tracker.New(r.Eng, r.Space(0), tracker.Options{Timeslice: ts})
			tr.AttachRank(r.World, 0)
			tr.Start()
			r.Run(r.DurationFor(3))
			for i, s := range tr.Samples() {
				if s.IWSBytes > s.FootprintBytes {
					t.Fatalf("%s ts=%v slice %d: IWS %d > footprint %d",
						spec.Name, ts, i, s.IWSBytes, s.FootprintBytes)
				}
			}
		}
	}
}
