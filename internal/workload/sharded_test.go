package workload

import (
	"runtime"
	"testing"

	"repro/internal/des"
)

// shardedFingerprint runs tiny() at the given shard count and returns
// the full observable state: per-rank space digests, written-byte
// counts, iteration count, IterZero and total events fired.
func shardedFingerprint(t *testing.T, shards int, backed bool) ([]uint64, []uint64, int, des.Time, uint64) {
	t.Helper()
	r, err := New(tiny(), Config{Ranks: 4, Seed: 42, Shards: shards, Backed: backed})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(r.DurationFor(3))
	digests := make([]uint64, 4)
	written := make([]uint64, 4)
	for i := 0; i < 4; i++ {
		digests[i] = r.Space(i).Digest(nil)
		written[i] = r.Space(i).WrittenBytes()
	}
	return digests, written, r.Iterations(), r.IterZero(), r.Eng.Fired()
}

// TestShardedRunnerMatchesSequential pins the tentpole guarantee at the
// workload level: per-seed results — page digests, write volumes,
// iteration progress and total event counts — are bit-identical between
// the sequential engine and every shard count.
func TestShardedRunnerMatchesSequential(t *testing.T) {
	for _, backed := range []bool{false, true} {
		refD, refW, refIter, refZero, refFired := shardedFingerprint(t, 0, backed)
		for _, shards := range []int{1, 2, 3, 8} {
			d, w, iter, zero, fired := shardedFingerprint(t, shards, backed)
			for i := range refD {
				if d[i] != refD[i] || w[i] != refW[i] {
					t.Fatalf("backed=%v shards=%d rank %d: digest/written %x/%d, want %x/%d",
						backed, shards, i, d[i], w[i], refD[i], refW[i])
				}
			}
			if iter != refIter || zero != refZero {
				t.Fatalf("backed=%v shards=%d: iter=%d zero=%v, want %d/%v", backed, shards, iter, zero, refIter, refZero)
			}
			if fired != refFired {
				t.Fatalf("backed=%v shards=%d: fired=%d, want %d", backed, shards, fired, refFired)
			}
		}
	}
}

// TestShardedRunnerCounterAggregation pins Pending/Fired aggregation
// across shards against the sequential engine at a mid-run cut, where
// events are still outstanding.
func TestShardedRunnerCounterAggregation(t *testing.T) {
	cut := 400 * des.Millisecond // mid-init: ticks outstanding on every rank
	run := func(shards int) (uint64, int) {
		r, err := New(tiny(), Config{Ranks: 4, Seed: 42, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(cut)
		return r.Eng.Fired(), r.Eng.Pending()
	}
	refFired, refPending := run(0)
	if refPending == 0 {
		t.Fatal("cut too late: no pending events to compare")
	}
	for _, shards := range []int{1, 3, 8} {
		fired, pending := run(shards)
		if fired != refFired || pending != refPending {
			t.Fatalf("shards=%d: fired/pending = %d/%d, want %d/%d", shards, fired, pending, refFired, refPending)
		}
	}
}

// TestShardedRunnerParallelRace exercises the parallel path under the
// race detector with real shard concurrency.
func TestShardedRunnerParallelRace(t *testing.T) {
	r, err := New(tiny(), Config{Ranks: 8, Seed: 9, Shards: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(r.DurationFor(2))
	if r.Iterations() < 2 {
		t.Fatalf("iterations = %d", r.Iterations())
	}
}
