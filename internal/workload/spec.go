// Package workload models the parallel scientific applications of the
// paper's evaluation (§5): Sage at four memory footprints, Sweep3D, and
// the NAS parallel benchmarks BT, SP, LU and FT.
//
// Each application is a bulk-synchronous iteration model (§6.2): a
// processing burst that sweeps the iteration's working set one or more
// times, followed by a communication burst exchanging ghost-cell data with
// neighbours and a small global reduction. The models execute genuine
// page-granular writes through a simulated address space and genuine
// messages through the simulated MPI layer, so a tracker attached to a
// rank observes the same signal shape the paper measured — write bursts,
// communication bursts between them, footprint oscillation for Sage's
// dynamic allocator, and page reuse that makes bandwidth fall as the
// timeslice grows.
//
// Model parameters are calibrated from the paper's own published numbers
// (Tables 2-4); the Paper struct carries those targets so experiments can
// report paper-vs-measured side by side. The calibration's derivation is
// documented in DESIGN.md §5 and validated by the tests in this package
// and in internal/experiments.
package workload

import (
	"fmt"

	"repro/internal/des"
)

// MB is the paper's megabyte (10^6 bytes).
const MB = 1e6

// Paper holds the published measurements for one application, used both
// to derive model parameters and as the calibration target.
type Paper struct {
	// MaxFootprintMB and AvgFootprintMB are Table 2.
	MaxFootprintMB, AvgFootprintMB float64
	// PeriodS and OverwritePct are Table 3 (main-iteration duration and
	// percent of memory overwritten per iteration).
	PeriodS      float64
	OverwritePct float64
	// MaxIBMBs and AvgIBMBs are Table 4 (timeslice 1 s).
	MaxIBMBs, AvgIBMBs float64
}

// Spec is the complete model of one application.
type Spec struct {
	// Name identifies the application (e.g. "Sage-1000MB").
	Name string
	// Paper carries the published targets this model was calibrated to.
	Paper Paper

	// WorkingSetMB is the page-union working set swept per iteration.
	WorkingSetMB float64
	// Sweeps is how many times the working set is swept per iteration.
	// Multi-pass kernels (Sweep3D's octant sweeps, SSOR's lower/upper
	// triangular passes, FFT's butterflies) re-dirty the same pages,
	// which is what makes bandwidth fall as the timeslice grows (§6.3).
	Sweeps float64
	// BurstFrac is the fraction of the period occupied by the
	// processing burst.
	BurstFrac float64
	// RateProfile shapes the sweep rate across the burst: the burst is
	// divided into len(RateProfile) equal sub-bursts whose rates are
	// proportional to the entries (normalised to mean 1). Sub-kernels
	// of different intensity give Sage's ragged in-burst IWS (Fig 1a).
	RateProfile []float64
	// AltShiftMB shifts the working-set window by this many MB on odd
	// iterations. Double-buffered kernels (FT's out-of-place FFT) and
	// direction-alternating sweeps (Sweep3D's octants) write partially
	// different page sets in consecutive iterations.
	AltShiftMB float64
	// DwellMB models sub-second temporal locality: besides the fresh
	// sweep, the burst continuously rewrites a trailing window of this
	// many MB of recently-touched pages (refreshed about twice a
	// second). Within one timeslice the window collapses to a constant
	// IWS contribution, so the measured bandwidth falls as soon as the
	// timeslice exceeds one second instead of staying flat until the
	// sweep wraps — the behaviour real codes with hot inner arrays
	// (Sage's hydro scratch) show. Calibration: per-slice in-burst IWS
	// = freshRate*ts + DwellMB (until it saturates at the working set).
	DwellMB float64
	// SpikeEveryK > 0 makes every K-th iteration a heavy one that
	// sweeps an extended window of WorkingSetMB+SpikeExtraMB with
	// SpikeSweeps passes. Transport codes periodically run flux-fixup
	// passes over otherwise-quiet arrays; these rare heavy iterations
	// are what push the measured IWS *maximum* above the typical
	// per-iteration working set (Sweep3D: max 79.1 MB vs 52% of
	// 105.5 MB typical).
	SpikeEveryK  int
	SpikeExtraMB float64
	SpikeSweeps  float64

	// CommMB is the message payload received per rank per iteration,
	// deposited into a ghost-cell strip of CommStripMB (the strip is
	// rewritten every iteration, so it joins the working set).
	CommMB      float64
	CommStripMB float64
	// CommMsgKB is the individual message size; CommClumps spreads the
	// messages over that many clumps across the communication window.
	CommMsgKB  float64
	CommClumps int

	// Dynamic marks Sage's allocator behaviour: a transient arena is
	// mmapped at the start of every processing burst and munmapped at
	// its end, so the footprint oscillates between Table 2's average
	// and maximum and memory exclusion has something to exclude.
	Dynamic bool

	// RefRanks is the processor count the paper's numbers were measured
	// at (64). ScaleAlpha stretches the period by that fraction per
	// rank doubling beyond RefRanks (weak scaling: more ranks, more
	// communication per iteration, slightly longer period, §6.4.2).
	RefRanks   int
	ScaleAlpha float64

	// InitRateMBs is the data-initialization write rate (the initial
	// IWS peak in Fig 1a). StaticMB is the initialized-data segment.
	InitRateMBs float64
	StaticMB    float64
}

// Validate reports structural problems with the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: spec has no name")
	case s.Paper.AvgFootprintMB <= 0 || s.Paper.MaxFootprintMB < s.Paper.AvgFootprintMB:
		return fmt.Errorf("workload %s: bad footprint %v/%v", s.Name, s.Paper.AvgFootprintMB, s.Paper.MaxFootprintMB)
	case s.Paper.PeriodS <= 0:
		return fmt.Errorf("workload %s: bad period %v", s.Name, s.Paper.PeriodS)
	case s.WorkingSetMB <= 0 || s.WorkingSetMB > s.Paper.MaxFootprintMB:
		return fmt.Errorf("workload %s: bad working set %v", s.Name, s.WorkingSetMB)
	case s.Sweeps <= 0:
		return fmt.Errorf("workload %s: bad sweeps %v", s.Name, s.Sweeps)
	case s.BurstFrac <= 0 || s.BurstFrac >= 1:
		return fmt.Errorf("workload %s: bad burst fraction %v", s.Name, s.BurstFrac)
	case len(s.RateProfile) == 0:
		return fmt.Errorf("workload %s: empty rate profile", s.Name)
	case s.RefRanks <= 0:
		return fmt.Errorf("workload %s: bad ref ranks %d", s.Name, s.RefRanks)
	case s.CommMB > 0 && (s.CommStripMB <= 0 || s.CommMsgKB <= 0 || s.CommClumps <= 0):
		return fmt.Errorf("workload %s: incomplete comm parameters", s.Name)
	case s.SpikeEveryK > 0 && (s.SpikeExtraMB <= 0 || s.SpikeSweeps <= 0):
		return fmt.Errorf("workload %s: incomplete spike parameters", s.Name)
	case s.SpikeEveryK > 0 && s.Dynamic:
		return fmt.Errorf("workload %s: spike iterations are not supported for dynamic apps", s.Name)
	}
	return nil
}

// IsSpike reports whether the given iteration is a heavy fixup iteration.
func (s Spec) IsSpike(iter int) bool {
	return s.SpikeEveryK > 0 && iter%s.SpikeEveryK == s.SpikeEveryK-1
}

// PeriodAt returns the iteration period at the given rank count, in
// virtual time. Weak scaling stretches the communication share of the
// period slightly as ranks double (§6.4.2, Fig 5).
func (s Spec) PeriodAt(ranks int) des.Time {
	p := s.Paper.PeriodS
	if s.ScaleAlpha != 0 && ranks != s.RefRanks {
		doublings := 0.0
		for r := s.RefRanks; r < ranks; r *= 2 {
			doublings++
		}
		for r := s.RefRanks; r > ranks; r /= 2 {
			doublings--
		}
		p *= 1 + s.ScaleAlpha*doublings
	}
	return des.FromSeconds(p)
}

// BurstDuration returns the processing-burst duration at the given rank
// count.
func (s Spec) BurstDuration(ranks int) des.Time {
	return des.Time(float64(s.PeriodAt(ranks)) * s.BurstFrac)
}

// SweepRateBps returns the mean in-burst sweep rate in bytes per virtual
// second: the working set is covered Sweeps times within the burst.
func (s Spec) SweepRateBps(ranks int) float64 {
	b := s.BurstDuration(ranks).Seconds()
	return s.Sweeps * s.WorkingSetMB * MB / b
}

// TransientMB returns the size of the per-iteration transient arena for
// dynamic applications, chosen so the time-averaged footprint matches
// Table 2's average and the peak matches its maximum:
//
//	avg = persistent + BurstFrac*transient
//	max = persistent + transient
func (s Spec) TransientMB() float64 {
	if !s.Dynamic {
		return 0
	}
	return (s.Paper.MaxFootprintMB - s.Paper.AvgFootprintMB) / (1 - s.BurstFrac)
}

// PersistentMB returns the persistently mapped footprint (everything but
// the transient arena), including the static data segment.
func (s Spec) PersistentMB() float64 {
	return s.Paper.MaxFootprintMB - s.TransientMB()
}

// sage builds a Sage configuration. Sage is Fortran90; its allocator maps
// and unmaps large arenas every iteration (§4.1, §5).
//
// Calibration note: the published in-burst slice IWS (Table 4's rates) is
// split half/half between the fresh sweep and the dwell window
// (DwellMB = meanRate/2), which preserves the 1 s numbers exactly while
// giving the immediate 1 s → 2 s bandwidth drop of Fig 2(a)/3. The
// profile multipliers are correspondingly stretched (2x-1) so the peak
// (fresh + dwell) still hits Table 4's maximum.
func sage(name string, p Paper, workingSet, sweeps, burstFrac, commMB float64) Spec {
	meanRate := sweeps * workingSet / (p.PeriodS * burstFrac)
	return Spec{
		Name:         name,
		Paper:        p,
		WorkingSetMB: workingSet,
		Sweeps:       sweeps / 2,
		DwellMB:      meanRate / 2,
		BurstFrac:    burstFrac,
		// Sage iterations run several hydro sub-kernels of different
		// intensity; the ragged profile reproduces Fig 1a's uneven
		// in-burst IWS.
		RateProfile: []float64{1.8, 1.3, 0.7, 0.2},
		CommMB:      commMB,
		CommStripMB: commMB / 12,
		CommMsgKB:   256,
		CommClumps:  4,
		Dynamic:     true,
		RefRanks:    64,
		ScaleAlpha:  0.04,
		InitRateMBs: 400,
		StaticMB:    2,
	}
}

// Sage1000MB returns the Sage model with a ~1 GB per-process footprint.
func Sage1000MB() Spec {
	return sage("Sage-1000MB",
		Paper{954.6, 779.5, 145, 53, 274.9, 78.8},
		413, 27.7, 0.40, 60)
}

// Sage500MB returns the Sage model with a ~500 MB per-process footprint.
func Sage500MB() Spec {
	return sage("Sage-500MB",
		Paper{497.3, 407.3, 80, 54, 186.9, 49.9},
		220, 18.1, 0.375, 40)
}

// Sage100MB returns the Sage model with a ~100 MB per-process footprint.
func Sage100MB() Spec {
	return sage("Sage-100MB",
		Paper{103.7, 86.9, 38, 56, 42.6, 15.0},
		48.7, 11.7, 0.49, 15)
}

// Sage50MB returns the Sage model with a ~50 MB per-process footprint.
func Sage50MB() Spec {
	return sage("Sage-50MB",
		Paper{55, 45.2, 20, 57, 24.9, 9.6},
		25.8, 7.4, 0.54, 8)
}

// Sweep3D returns the Sweep3D model (1000x1000x50 grid, §5): a wavefront
// transport sweep performing octant passes in alternating directions.
// Computation is nearly continuous (the wavefront pipeline interleaves
// communication), and consecutive iterations sweep in opposite directions,
// writing partially shifted page sets — which is how the measured 1 s IWS
// maximum (79.1 MB) exceeds the per-iteration working set (52% of
// 105.5 MB): slices straddling two iterations capture both windows.
func Sweep3D() Spec {
	return Spec{
		Name:         "Sweep3D",
		Paper:        Paper{105.5, 105.5, 7, 52, 79.1, 49.5},
		WorkingSetMB: 54.9,
		Sweeps:       6,
		BurstFrac:    0.9,
		RateProfile:  []float64{1.1, 1.0, 0.9},
		SpikeEveryK:  5,
		SpikeExtraMB: 26,
		SpikeSweeps:  6.5,
		CommMB:       6,
		CommStripMB:  1.2,
		CommMsgKB:    128,
		CommClumps:   3,
		RefRanks:     64,
		ScaleAlpha:   0.03,
		InitRateMBs:  400,
		StaticMB:     2,
	}
}

// SP returns the NAS SP (scalar penta-diagonal ADI solver) class C model.
func SP() Spec {
	return Spec{
		Name:         "SP",
		Paper:        Paper{40.1, 40.1, 0.16, 72, 32.6, 32.6},
		WorkingSetMB: 28.9,
		Sweeps:       1.5,
		BurstFrac:    0.6,
		RateProfile:  []float64{1},
		CommMB:       3.7,
		CommStripMB:  3.7,
		CommMsgKB:    256,
		CommClumps:   1,
		RefRanks:     64,
		ScaleAlpha:   0.03,
		InitRateMBs:  400,
		StaticMB:     2,
	}
}

// LU returns the NAS LU (SSOR solver) class C model. SSOR makes two
// triangular sweeps per iteration.
func LU() Spec {
	return Spec{
		Name:         "LU",
		Paper:        Paper{16.6, 16.6, 0.7, 72, 12.5, 12.5},
		WorkingSetMB: 11.95,
		Sweeps:       2,
		BurstFrac:    0.7,
		RateProfile:  []float64{1, 1},
		CommMB:       0.55,
		CommStripMB:  0.55,
		CommMsgKB:    64,
		CommClumps:   2,
		RefRanks:     64,
		ScaleAlpha:   0.03,
		InitRateMBs:  400,
		StaticMB:     2,
	}
}

// BT returns the NAS BT (block tri-diagonal ADI solver) class C model.
// BT rewrites nearly its whole image every iteration (Table 3: 92%).
func BT() Spec {
	return Spec{
		Name:         "BT",
		Paper:        Paper{76.5, 76.5, 0.4, 92, 72.7, 68.6},
		WorkingSetMB: 68.6,
		Sweeps:       1.2,
		BurstFrac:    0.75,
		RateProfile:  []float64{1},
		CommMB:       1.5,
		CommStripMB:  1.5,
		CommMsgKB:    128,
		CommClumps:   1,
		RefRanks:     64,
		ScaleAlpha:   0.03,
		InitRateMBs:  400,
		StaticMB:     2,
	}
}

// FT returns the NAS FT (3-D FFT) class C model. The out-of-place FFT
// double-buffers, so consecutive iterations write shifted page sets, and
// the transpose step receives a comparatively large all-to-all payload.
func FT() Spec {
	return Spec{
		Name:         "FT",
		Paper:        Paper{118, 118, 1.2, 57, 101, 92.1},
		WorkingSetMB: 74,
		Sweeps:       2,
		BurstFrac:    0.8,
		RateProfile:  []float64{1, 1},
		AltShiftMB:   22,
		CommMB:       8,
		CommStripMB:  8,
		CommMsgKB:    512,
		CommClumps:   1,
		RefRanks:     64,
		ScaleAlpha:   0.03,
		InitRateMBs:  400,
		StaticMB:     2,
	}
}

// All returns every application model in the paper's Table 2 order.
func All() []Spec {
	return []Spec{
		Sage1000MB(), Sage500MB(), Sage100MB(), Sage50MB(),
		Sweep3D(), SP(), LU(), BT(), FT(),
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}
