package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// IgnoreCategory is the category under which the runner reports
// problems with suppression directives themselves (a malformed
// //lint:ignore never silently suppresses anything).
const IgnoreCategory = "lint"

// An ignoreDirective is one parsed //lint:ignore comment. A directive
// suppresses diagnostics of the named checks on its own line or on the
// line directly below it (so it can trail the offending statement or
// sit on the line above, staticcheck-style).
type ignoreDirective struct {
	file     string
	line     int
	pos      token.Pos
	position token.Position
	checks   []string
	// used records, per named check, whether the directive suppressed
	// at least one diagnostic in this run — the unused-suppression
	// check reports the ones that did nothing.
	used map[string]bool
}

// RunPackage runs each analyzer over pkg, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by
// position, category, and message — a deterministic order, since the
// linter of a determinism contract had better not have
// nondeterministic output itself.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Category = a.Name
			d.Position = pkg.Fset.Position(d.Pos)
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	directives, malformed := collectIgnores(pkg)
	diags = append(diags, malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, directives) {
			kept = append(kept, d)
		}
	}
	diags = kept
	// Stale-suppression findings: a directive naming a check that ran
	// in this very analyzer set yet suppressed nothing is dead weight
	// that would hide a future diagnostic at that line unreviewed.
	// Checks outside this run's set are not flagged — per-package
	// analyzer subsets and single-analyzer golden runs would otherwise
	// produce false positives.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, dir := range directives {
		for _, c := range dir.checks {
			if ran[c] && !dir.used[c] {
				diags = append(diags, Diagnostic{
					Pos:      dir.pos,
					Category: IgnoreCategory,
					Message:  fmt.Sprintf("unused //lint:ignore: check %q reports nothing here", c),
					Position: dir.position,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// collectIgnores parses every //lint:ignore directive in pkg. The
// required form is
//
//	//lint:ignore check1[,check2...] reason
//
// A directive without both a check list and a non-empty reason is
// reported as a diagnostic (category "lint") and suppresses nothing:
// an unexplained suppression is itself a contract violation.
func collectIgnores(pkg *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Category: IgnoreCategory,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <checks> <reason>\" with a non-empty reason",
						Position: pos,
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
					position: pos,
					checks:   strings.Split(fields[0], ","),
					used:     make(map[string]bool),
				})
			}
		}
	}
	return dirs, malformed
}

func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	if d.Category == IgnoreCategory {
		return false // directive problems cannot be self-suppressed
	}
	for _, dir := range dirs {
		if dir.file != d.Position.Filename {
			continue
		}
		if dir.line != d.Position.Line && dir.line != d.Position.Line-1 {
			continue
		}
		for _, c := range dir.checks {
			if c == d.Category {
				dir.used[c] = true
				return true
			}
		}
	}
	return false
}
