package analysis_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// frametest flags every call to a function literally named "bad" — the
// minimal analyzer, used to test the framework rather than any check.
var frametest = &analysis.Analyzer{
	Name: "frametest",
	Doc:  "flag calls to bad()",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

func loadIgnorePkg(t *testing.T) *analysis.Package {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader(src, "golden.test").LoadDir("ignore")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestSuppression pins the whole suppression contract: directives on
// the same or preceding line suppress their named check only, and a
// directive without a reason both fails to suppress and is itself
// reported.
func TestSuppression(t *testing.T) {
	pkg := loadIgnorePkg(t)
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{frametest})
	if err != nil {
		t.Fatal(err)
	}
	type finding struct {
		line     int
		category string
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{d.Position.Line, d.Category})
	}
	want := []finding{
		{8, "frametest"},  // no directive
		{22, "frametest"}, // directive names a different check
		{26, "lint"},      // malformed directive (missing reason)
		{27, "frametest"}, // ... which therefore suppresses nothing
		{31, "lint"},      // unused directive: out of reach, suppresses nothing
		{33, "frametest"}, // directive separated by a blank line
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, d := range diags {
		if d.Category != "lint" {
			continue
		}
		if !strings.Contains(d.Message, "malformed //lint:ignore") &&
			!strings.Contains(d.Message, "unused //lint:ignore") {
			t.Errorf("lint-category message = %q", d.Message)
		}
	}
	// The unused finding names the idle check; directives naming checks
	// absent from the run (line 21's "othercheck") are not flagged.
	for _, d := range diags {
		if d.Position.Line == 31 && !strings.Contains(d.Message, `"frametest"`) {
			t.Errorf("unused-directive message = %q", d.Message)
		}
		if d.Position.Line == 21 {
			t.Errorf("directive naming a non-running check flagged: %q", d.Message)
		}
	}
}

// TestDeterministicOrder runs the same package twice and demands
// byte-identical diagnostics: the determinism linter's own output must
// be deterministic.
func TestDeterministicOrder(t *testing.T) {
	render := func() string {
		pkg := loadIgnorePkg(t)
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{frametest})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range diags {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two renders differ:\n%s\nvs\n%s", a, b)
	}
}

// TestFindModule resolves the enclosing module from a nested directory.
func TestFindModule(t *testing.T) {
	dir, path, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "repro" {
		t.Errorf("module path = %q, want %q", path, "repro")
	}
	if filepath.Base(filepath.Dir(filepath.Dir(dir))) == "internal" {
		t.Errorf("module dir = %q should be the repo root", dir)
	}
}

// TestExpand checks ./... pattern expansion: testdata is skipped,
// nested packages are found, and the order is sorted (deterministic).
func TestExpand(t *testing.T) {
	modDir, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(modDir, modPath)
	dirs, err := l.Expand([]string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(dirs, " ")
	for _, wantDir := range []string{
		"internal/analysis",
		"internal/analysis/analysistest",
		"internal/analysis/detlint",
	} {
		if !strings.Contains(joined, wantDir) {
			t.Errorf("Expand missing %s in %v", wantDir, dirs)
		}
	}
	if strings.Contains(joined, "testdata") {
		t.Errorf("Expand must skip testdata dirs, got %v", dirs)
	}
	if !sortedStrings(dirs) {
		t.Errorf("Expand order not sorted: %v", dirs)
	}
}

// TestLoadTypesInfo spot-checks that loaded packages carry full type
// information — the analyzers are useless without it.
func TestLoadTypesInfo(t *testing.T) {
	modDir, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(modDir, modPath)
	pkg, err := l.LoadDir("internal/bitset")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/bitset" {
		t.Errorf("path = %q", pkg.Path)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Info.Defs) == 0 {
		t.Fatalf("missing type info for %s", pkg.Path)
	}
	// Loading again returns the memoized package.
	again, err := l.LoadDir("internal/bitset")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Error("LoadDir did not memoize")
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
