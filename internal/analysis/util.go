package analysis

import (
	"go/ast"
	"go/types"
)

// CalleePkgFunc resolves a call whose callee is a package-level
// function selected off an imported package (possibly via a generic
// instantiation like rand.N[int]) and returns the package's import
// path and the function name. ok is false for method calls, calls of
// local functions, conversions, and builtins.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	fun := call.Fun
	// Unwrap explicit generic instantiation: f[T](...) .
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = e.X
	case *ast.IndexListExpr:
		fun = e.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// SelectedPkgName resolves a selector expression whose base is an
// imported package ("crand.Read", "rand.Reader") and returns the
// import path and selected name.
func SelectedPkgName(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// RootObject digs through parens, selectors, indexing, and one level
// of conversion/call wrapping to the object an expression ultimately
// names: for `s.keys[i]` the field keys, for `byLen(out)` the variable
// out. It returns nil when no single object anchors the expression.
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			// A conversion or single-arg wrapper: follow the operand.
			if len(x.Args) != 1 {
				return nil
			}
			e = x.Args[0]
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsErrorSentinel reports whether e names a package-level error
// variable following the ErrXxx naming convention — the shape of this
// repo's error taxonomy (storage.ErrNotFound, ckpt.ErrCommitAborted,
// mem.ErrSegv, ...). The returned object is the sentinel's var.
func IsErrorSentinel(info *types.Info, e ast.Expr) (types.Object, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	n := v.Name()
	if len(n) < 4 || n[:3] != "Err" || n[3] < 'A' || n[3] > 'Z' {
		return nil, false
	}
	if !types.AssignableTo(v.Type(), types.Universe.Lookup("error").Type()) {
		return nil, false
	}
	return v, true
}

// WalkSameFunc walks n in preorder but does not descend into function
// literals: the visit stays within one function body, which is the
// granularity every determinism check reasons at.
func WalkSameFunc(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}
