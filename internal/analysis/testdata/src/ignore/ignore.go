// Package ignore exercises //lint:ignore suppression semantics for the
// framework's own tests (analysis_test.go flags every call to bad).
package ignore

func bad() {}

func reported() {
	bad() // line 8: reported — no directive
}

func suppressedAbove() {
	//lint:ignore frametest covered by the design doc
	bad() // line 13: suppressed by the directive on line 12
}

func suppressedTrailing() {
	bad() //lint:ignore frametest same-line trailing form — line 17
}

func wrongCheckName() {
	//lint:ignore othercheck reason naming a different analyzer
	bad() // line 22: NOT suppressed — directive names another check
}

func missingReason() {
	//lint:ignore frametest
	bad() // line 27: NOT suppressed — the directive above is malformed (line 26)
}

func tooFarAway() {
	//lint:ignore frametest directives reach one line, not two

	bad() // line 33: NOT suppressed — blank line between directive and call
}
