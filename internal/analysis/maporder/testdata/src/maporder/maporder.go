// Package maporder is golden-test input for the map-iteration-order
// analyzer.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration`
	}
	return out
}

// appendThenSort is the repo's canonical pattern (MirrorStore.Keys):
// collect in map order, then impose a deterministic order.
func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSliceSort(m map[uint64]bool) []uint64 {
	var seqs []uint64
	for s := range m {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs
}

func appendSortedBeforeOnly(m map[string]int) []string {
	var out []string
	sort.Strings(out) // a sort *before* the loop proves nothing
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration`
	}
	return out
}

func fprintInLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration`
	}
}

func printInLoop(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside map iteration`
	}
}

func builderInLoop(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on an io\.Writer inside map iteration`
	}
	return b.String()
}

func sendInLoop(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// sliceRangeFine: iteration over slices is deterministic, so ordered
// output is fine.
func sliceRangeFine(xs []string, w io.Writer, ch chan string) []string {
	var out []string
	for _, x := range xs {
		fmt.Fprintln(w, x)
		ch <- x
		out = append(out, x)
	}
	return out
}

// mapWritesFine: mutating maps or scalars inside map iteration carries
// no ordering — only ordered sinks are flagged.
func mapWritesFine(m map[string]int) int {
	sum := 0
	inverse := make(map[int]string)
	for k, v := range m {
		sum += v
		inverse[v] = k
	}
	return sum
}

func suppressedProbe(m map[string]int, ch chan string) {
	for k := range m {
		//lint:ignore maporder single-element map in this protocol step
		ch <- k
	}
}
