// Package maporder flags map iterations whose bodies leak Go's
// randomized map ordering into observable output: appending to a slice
// that is never subsequently sorted, writing to an io.Writer, or
// sending on a channel. This is the classic way nondeterminism reaches
// the repo's figures and tables — the simulation is bit-exact, and
// then a `for k := range m { fmt.Fprintf(w, ...) }` shuffles the rows.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append to a slice without a " +
		"subsequent sort, write to an io.Writer, or send on a channel — " +
		"map iteration order would leak into observable output",
	Run: run,
}

// fmtWriters are the fmt functions that emit text in call order.
var fmtWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are method names that, on an io.Writer, emit bytes in
// call order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// writerIface is io.Writer built from first principles so the analyzer
// does not depend on the target package importing io.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	i.Complete()
	return i
}()

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// sortCall records a deterministic reordering (sort.* / slices.Sort*)
// of some slice object at some position within a function body.
type sortCall struct {
	pos token.Pos
	obj types.Object
}

// checkFunc analyzes one function body. Nested function literals are
// skipped here; the outer Inspect visits them as functions in their
// own right.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var mapRanges []*ast.RangeStmt
	var sorts []sortCall
	analysis.WalkSameFunc(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					mapRanges = append(mapRanges, n)
				}
			}
		case *ast.CallExpr:
			if obj, ok := sortedSlice(pass.TypesInfo, n); ok {
				sorts = append(sorts, sortCall{n.Pos(), obj})
			}
		}
		return true
	})
	for _, r := range mapRanges {
		checkRange(pass, r, sorts)
	}
}

// sortedSlice reports whether call deterministically orders a slice,
// and which object that slice is.
func sortedSlice(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	path, name, ok := analysis.CalleePkgFunc(info, call)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	isSort := path == "sort" || (path == "slices" && len(name) >= 4 && name[:4] == "Sort")
	if !isSort {
		return nil, false
	}
	obj := analysis.RootObject(info, call.Args[0])
	return obj, obj != nil
}

func checkRange(pass *analysis.Pass, r *ast.RangeStmt, sorts []sortCall) {
	analysis.WalkSameFunc(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: delivery order depends on map iteration order; iterate over sorted keys instead")
		case *ast.CallExpr:
			checkWriteCall(pass, n)
		case *ast.AssignStmt:
			checkAppend(pass, n, r, sorts)
		}
		return true
	})
}

// checkWriteCall flags ordered output produced inside the loop body:
// fmt print functions and Write* methods on io.Writer implementations.
func checkWriteCall(pass *analysis.Pass, call *ast.CallExpr) {
	if path, name, ok := analysis.CalleePkgFunc(pass.TypesInfo, call); ok {
		if path == "fmt" && fmtWriters[name] {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration: output row order depends on map iteration order; iterate over sorted keys instead", name)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeMethods[sel.Sel.Name] {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if types.Implements(recv, writerIface) || types.Implements(types.NewPointer(recv), writerIface) {
		pass.Reportf(call.Pos(), "%s on an io.Writer inside map iteration: byte order depends on map iteration order; iterate over sorted keys instead", sel.Sel.Name)
	}
}

// checkAppend flags `x = append(x, ...)` in the loop body unless some
// sort of x happens after the range statement in the same function.
func checkAppend(pass *analysis.Pass, as *ast.AssignStmt, r *ast.RangeStmt, sorts []sortCall) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		var target types.Object
		if i < len(as.Lhs) {
			target = analysis.RootObject(pass.TypesInfo, as.Lhs[i])
		}
		if target == nil {
			continue
		}
		sorted := false
		for _, s := range sorts {
			if s.obj == target && s.pos > r.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(call.Pos(), "append to %s inside map iteration without a subsequent sort: element order depends on map iteration order", target.Name())
		}
	}
}
