// Package shardorder flags event-scheduling calls made while ranging
// over a map. Same-time events on an Engine fire in scheduling (FIFO)
// order, and cross-shard posts take their canonical tie-break keys from
// per-source scheduling sequence — so a `for k := range m { eng.After(...) }`
// lets Go's randomized map order decide the event interleaving, breaking
// the bit-identical sequential-vs-sharded contract the shard suite pins.
// maporder catches map order leaking into output; shardorder catches it
// leaking into the simulation itself.
package shardorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the shardorder check.
var Analyzer = &analysis.Analyzer{
	Name: "shardorder",
	Doc: "flag Engine scheduling calls inside range-over-map loops — " +
		"same-time events fire in scheduling order and cross-shard posts " +
		"are keyed by scheduling sequence, so map iteration order would " +
		"decide the event interleaving",
	Run: run,
}

// schedMethods are the Engine methods that enqueue events. Their call
// order is observable: it decides FIFO tie-breaks between same-time
// events and the canonical (source, sequence) keys of cross-shard posts.
var schedMethods = map[string]bool{
	"Schedule":      true,
	"ScheduleLocal": true,
	"After":         true,
	"AfterLocal":    true,
	"PostTo":        true,
	"PostToOrdered": true,
	"NewTicker":     true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(r.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkRange(pass, r)
			return true
		})
	}
	return nil, nil
}

// checkRange flags Engine scheduling calls in one map-range body.
// Function literals are skipped: a callback defined inside the loop
// runs later, in event order, not map order. (The loop visiting the
// range statement still descends into literals, so a map range inside
// a callback is checked in its own right.)
func checkRange(pass *analysis.Pass, r *ast.RangeStmt) {
	analysis.WalkSameFunc(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := engineSched(pass.TypesInfo, call); ok {
			pass.Reportf(call.Pos(), "Engine.%s inside map iteration: same-time events fire in scheduling order, so the interleaving would follow map order; iterate over sorted keys instead", name)
		}
		return true
	})
}

// engineSched reports whether call is a scheduling method on a type
// named Engine (matched by name so the check works on any package's
// engine, including golden-test stand-ins).
func engineSched(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !schedMethods[sel.Sel.Name] {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return "", false
	}
	return sel.Sel.Name, true
}
