package shardorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardorder"
)

func TestShardorder(t *testing.T) {
	analysistest.Run(t, shardorder.Analyzer, "shardorder")
}
