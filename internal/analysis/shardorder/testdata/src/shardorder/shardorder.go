// Package shardorder is golden-test input for the engine-scheduling
// map-order analyzer. The local Engine type stands in for the real
// event engine; the analyzer matches scheduling methods by receiver
// type name.
package shardorder

import "sort"

type Time int64

type Event struct{}

type Engine struct{}

func (e *Engine) Schedule(at Time, fn func()) Event      { return Event{} }
func (e *Engine) After(d Time, fn func()) Event          { return Event{} }
func (e *Engine) AfterLocal(d Time, fn func()) Event     { return Event{} }
func (e *Engine) PostTo(dst *Engine, at Time, fn func()) {}
func (e *Engine) Now() Time                              { return 0 }

// scheduleFromMap schedules straight out of a map range: the FIFO order
// of the resulting same-time events follows map iteration order.
func scheduleFromMap(e *Engine, due map[string]Time) {
	for _, at := range due {
		e.Schedule(at, func() {}) // want `Engine\.Schedule inside map iteration`
	}
}

// postFromMap leaks map order into cross-shard post sequence numbers.
func postFromMap(e *Engine, peers map[int]*Engine) {
	for _, p := range peers {
		e.PostTo(p, 10, func() {}) // want `Engine\.PostTo inside map iteration`
		e.AfterLocal(1, func() {}) // want `Engine\.AfterLocal inside map iteration`
	}
}

// sortedKeys is the canonical fix: impose an order before scheduling.
func sortedKeys(e *Engine, due map[string]Time) {
	keys := make([]string, 0, len(due))
	for k := range due {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Schedule(due[k], func() {})
	}
}

// deferredCallback only builds a closure inside the range; the schedule
// call runs later, in event order, so it is fine.
func deferredCallback(e *Engine, due map[string]Time) func() {
	var fns []func()
	for _, at := range due {
		at := at
		fns = append(fns, func() { e.Schedule(at, func() {}) })
	}
	sort.Slice(fns, func(i, j int) bool { return i < j })
	if len(fns) == 0 {
		return nil
	}
	return fns[0]
}

// readsAreFine: non-scheduling Engine methods do not order events.
func readsAreFine(e *Engine, due map[string]Time) Time {
	var last Time
	for range due {
		last = e.Now()
	}
	return last
}

// otherReceiver: same method name on a non-Engine type is not flagged.
type Planner struct{}

func (p *Planner) Schedule(at Time, fn func()) {}

func otherReceiver(p *Planner, due map[string]Time) {
	for _, at := range due {
		p.Schedule(at, func() {})
	}
}

// suppressed: //lint:ignore works as for every other analyzer.
func suppressed(e *Engine, due map[string]Time) {
	for _, at := range due {
		//lint:ignore shardorder golden-test suppression exercise
		e.Schedule(at, func() {})
	}
}
