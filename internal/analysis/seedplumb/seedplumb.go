// Package seedplumb enforces seed plumbing at package boundaries: an
// exported function in internal/ must not build its own generator from
// constant literals, because then no caller — not the experiment
// harness, not a sweep over seeds, not a bisection of a divergent run
// — can vary the randomness. Constructors must accept a seed (or a
// ready *rand.Rand / rand.Source) and thread it down, the way
// autonomic.New, storage.NewFaultyStore, and mpi.NewFlakyWorld do.
package seedplumb

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the seedplumb check.
var Analyzer = &analysis.Analyzer{
	Name: "seedplumb",
	Doc: "flag exported functions that seed their own generator from " +
		"constant literals instead of accepting a seed or *rand.Rand " +
		"parameter — callers would be unable to control reproducibility",
	Run: run,
}

// seeders are the math/rand(/v2) constructors that turn raw seed
// material into a generator.
var seeders = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": false,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if acceptsSeed(pass.TypesInfo, fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

// acceptsSeed reports whether fd gives its caller a randomness knob:
// a parameter of type *rand.Rand or rand.Source (either math/rand
// flavor), or an integer parameter whose name mentions "seed".
func acceptsSeed(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch t.String() {
		case "*math/rand.Rand", "*math/rand/v2.Rand",
			"math/rand.Source", "math/rand/v2.Source":
			return true
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			for _, name := range field.Names {
				if strings.Contains(strings.ToLower(name.Name), "seed") {
					return true
				}
			}
		}
	}
	return false
}

// checkBody flags seeder calls whose every argument is a compile-time
// constant. Seeding from a parameter, a config field, or any other
// runtime value is exactly what the contract wants, so those pass.
// Function literals are included: a constant-seeded closure inside an
// exported function is the same trap.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := analysis.CalleePkgFunc(pass.TypesInfo, call)
		if !ok || (path != "math/rand" && path != "math/rand/v2") || !seeders[name] {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		for _, arg := range call.Args {
			if !isConstant(pass.TypesInfo, arg) {
				return true
			}
		}
		pass.Reportf(call.Pos(), "exported %s seeds its generator from constant literals via %s.%s; accept a seed or *rand.Rand parameter so callers control reproducibility", fd.Name.Name, path, name)
		return true
	})
}

// isConstant reports whether e is a compile-time constant or a
// composite literal of constants (the [32]byte{...} shape NewChaCha8
// takes).
func isConstant(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		if !isConstant(info, el) {
			return false
		}
	}
	return true
}
