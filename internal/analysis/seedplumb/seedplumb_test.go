package seedplumb_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seedplumb"
)

func TestSeedplumb(t *testing.T) {
	analysistest.Run(t, seedplumb.Analyzer, "seedplumb")
}
