package seedplumb

import mrand "math/rand"

// LegacySource exercises the math/rand (v1) flavor.
func LegacySource() *mrand.Rand {
	return mrand.New(mrand.NewSource(99)) // want `exported LegacySource seeds its generator from constant literals`
}

// LegacySeeded is the plumbed v1 counterpart.
func LegacySeeded(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}
