// Package seedplumb is golden-test input for the seed-plumbing
// analyzer.
package seedplumb

import (
	"math/rand/v2"
)

type Thing struct{ rng *rand.Rand }

// NewFixed bakes its seed in: no caller can ever vary the run.
func NewFixed() *Thing {
	return &Thing{rng: rand.New(rand.NewPCG(42, 0xbeef))} // want `exported NewFixed seeds its generator from constant literals`
}

// NewSeeded plumbs the seed from the caller — the contract's shape.
func NewSeeded(seed uint64) *Thing {
	return &Thing{rng: rand.New(rand.NewPCG(seed, 1))}
}

// NewFromRand accepts a ready generator.
func NewFromRand(rng *rand.Rand) *Thing { return &Thing{rng: rng} }

// NewFromConfig seeds from runtime data (a struct field), which keeps
// the knob on the caller's side.
type Config struct{ Seed uint64 }

func NewFromConfig(cfg Config) *Thing {
	return &Thing{rng: rand.New(rand.NewPCG(cfg.Seed, 0xA57))}
}

// NewChaCha with a constant key is just as baked-in as a constant PCG.
func NewChaCha() *Thing {
	src := rand.NewChaCha8([32]byte{1, 2, 3}) // want `exported NewChaCha seeds its generator from constant literals`
	return &Thing{rng: rand.New(src)}
}

// newFixedInternal is unexported: package-private helpers may pin
// seeds (tests and defaults do), the contract is about the API.
func newFixedInternal() *Thing {
	return &Thing{rng: rand.New(rand.NewPCG(7, 7))}
}

// NewSuppressed documents why its constant seed is deliberate.
func NewSuppressed() *Thing {
	//lint:ignore seedplumb golden reference stream must never vary
	return &Thing{rng: rand.New(rand.NewPCG(1, 1))}
}
