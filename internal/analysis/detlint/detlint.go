// Package detlint forbids wall-clock time and ambient entropy in
// simulator code. Every published number in this repo is claimed to be
// bit-reproducible per seed; that holds only if all time flows through
// the des engine's virtual clock and all randomness through an
// explicitly threaded, explicitly seeded *rand.Rand. One stray
// time.Now() or global rand.IntN() quietly voids the claim.
package detlint

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the detlint check.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock time (time.Now/Since/Sleep/After/Tick/...) and " +
		"ambient entropy (global math/rand funcs, crypto/rand, process ids) " +
		"in simulator code; use des virtual time and a threaded *rand.Rand",
	Run: run,
}

// wallClock is the forbidden surface of package time: everything that
// observes or waits on the host clock. Types, constants, and
// conversions (time.Duration, time.Second) remain fine — they carry no
// ambient state.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// hostState is the forbidden surface of package os: process identity
// that changes run to run and therefore must never feed a seed.
var hostState = map[string]bool{"Getpid": true, "Getppid": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.SelectorExpr:
				// Any mention of crypto/rand (rand.Reader as much as
				// rand.Read) is ambient entropy.
				if path, name, ok := analysis.SelectedPkgName(pass.TypesInfo, n); ok && path == "crypto/rand" {
					pass.Reportf(n.Pos(), "ambient entropy: crypto/rand.%s is nondeterministic; derive randomness from the run's seeded *rand.Rand", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	path, name, ok := analysis.CalleePkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch path {
	case "time":
		if wallClock[name] {
			pass.Reportf(call.Pos(), "wall-clock dependence: time.%s is forbidden in simulator code; all time must come from des virtual time (Engine.Now/After)", name)
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws (rand.Int, rand.IntN, rand.N, rand.Perm,
		// rand.Shuffle, ...) use the shared, implicitly seeded global
		// source. Constructors (New, NewPCG, NewSource, ...) are how a
		// seeded generator is built, so they stay legal here —
		// seedplumb polices how they are seeded.
		if len(name) >= 3 && name[:3] == "New" {
			return
		}
		pass.Reportf(call.Pos(), "ambient randomness: %s.%s draws from the shared global generator; thread an explicitly seeded *rand.Rand instead", path, name)
	case "os":
		if hostState[name] {
			pass.Reportf(call.Pos(), "ambient process state: os.%s leaks host identity into the simulation; derive identifiers from configuration", name)
		}
	}
}
