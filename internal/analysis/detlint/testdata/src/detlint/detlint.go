// Package detlint is golden-test input: each // want comment asserts a
// diagnostic on its line; lines without one must stay clean.
package detlint

import (
	crand "crypto/rand"
	"math/rand/v2"
	"os"
	"time"
)

func wallClock() {
	_ = time.Now()                 // want `time\.Now`
	time.Sleep(time.Millisecond)   // want `time\.Sleep`
	_ = time.Since(time.Time{})    // want `time\.Since`
	_ = time.After(time.Second)    // want `time\.After`
	_ = time.Tick(time.Second)     // want `time\.Tick`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer`
}

func globalRand() {
	_ = rand.Int()                     // want `rand/v2\.Int draws from the shared global`
	_ = rand.IntN(4)                   // want `rand/v2\.IntN`
	_ = rand.Float64()                 // want `rand/v2\.Float64`
	_ = rand.N(int64(9))               // want `rand/v2\.N`
	rand.Shuffle(2, func(i, j int) {}) // want `rand/v2\.Shuffle`
}

func ambientEntropy() {
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `crypto/rand\.Read`
	_ = os.Getpid()         // want `os\.Getpid`
}

// clean shows the legal forms: virtual-time constants, conversions,
// and draws from an explicitly threaded generator.
func clean(rng *rand.Rand, virtualNanos int64) time.Duration {
	d := time.Duration(virtualNanos) * time.Nanosecond
	_ = rng.IntN(3)
	_ = rand.New(rand.NewPCG(1, 2)) // constructors are seedplumb's concern, not detlint's
	_ = os.Getenv("HOME")           // os is fine outside pid calls
	return d
}

func suppressedForDemo() {
	//lint:ignore detlint this demo deliberately measures host elapsed time
	_ = time.Now()
	_ = time.Now() //lint:ignore detlint trailing-comment form works too
}
