package detlint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "detlint")
}
