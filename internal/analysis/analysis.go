// Package analysis is a small, stdlib-only static-analysis framework:
// a loader built on go/parser + go/types + go/importer, an Analyzer
// type mirroring the golang.org/x/tools/go/analysis shape (so analyzers
// port trivially in either direction), and a diagnostics runner with
// deterministic ordering and //lint:ignore suppression.
//
// The framework exists to give the repo's determinism contract
// mechanical teeth: every published figure and table depends on the
// simulation being bit-reproducible per seed, and the analyzers under
// internal/analysis/... prove the invariant holds on every build
// instead of trusting code review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer: Name is the check's
// identifier (used in diagnostics and //lint:ignore directives), Doc a
// one-paragraph description, and Run the per-package entry point.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass provides one analyzer run over one package: the parsed files,
// full type information, and a Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The runner fills in Category
	// and resolved Position, and applies suppression afterwards.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. Position is resolved by the runner from
// Pos so callers can print file:line:col without holding the FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name, filled by the runner
	Message  string
	Position token.Position
}

// String renders the conventional "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Category, d.Message)
}
