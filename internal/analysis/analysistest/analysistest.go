// Package analysistest runs an analyzer over a golden package under
// testdata/src and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest with only the
// standard library.
//
// A want comment asserts diagnostics on its own line:
//
//	_ = time.Now() // want `time\.Now`
//
// The payload is one or more backquoted regular expressions; each must
// match exactly one diagnostic reported on that line, and every
// diagnostic must be claimed by a pattern. Suppression is exercised
// for real: the runner applies //lint:ignore filtering exactly as
// cmd/lint does, so a golden file can assert that a suppressed
// violation produces no diagnostic.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<pkg> relative to the calling test's working
// directory, runs a over it, and reports any mismatch between the
// diagnostics and the // want comments via t.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	// The testdata tree acts as its own tiny module so golden packages
	// could even import one another; stdlib imports go to the source
	// importer as usual.
	loader := analysis.NewLoader(src, "golden.test")
	p, err := loader.LoadDir(pkg)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", pkg, err)
	}
	diags, err := analysis.RunPackage(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, p)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]analysis.Diagnostic)
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		got[k] = append(got[k], d)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		ds := got[k]
		idx := -1
		for i, d := range ds {
			if w.re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %s)", w.file, w.line, w.re, messages(ds))
			continue
		}
		got[k] = append(ds[:idx], ds[idx+1:]...)
	}
	for k, ds := range got {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", k.file, k.line, d.Category, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, p *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: // want comment without a backquoted pattern", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern: %v", pos, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants
}

func messages(ds []analysis.Diagnostic) string {
	if len(ds) == 0 {
		return "none"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%q", d.Message))
	}
	return strings.Join(parts, ", ")
}
