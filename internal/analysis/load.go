package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the unit analyzers run
// over. Only non-test files are loaded — the determinism contract
// applies to simulator code, and tests are free to use wall-clock
// timeouts or ad-hoc comparisons.
type Package struct {
	Path  string // import path ("repro/internal/des")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of a single module without
// invoking the go tool: imports within the module are resolved
// recursively from source by the loader itself, and everything else
// (the standard library) is delegated to go/importer's source
// importer. The zero dependency cost is the point — the linter must
// never be the thing that drags a module requirement into go.mod.
type Loader struct {
	ModDir  string // module root (directory holding go.mod)
	ModPath string // module path from go.mod

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

// NewLoader returns a Loader for the module rooted at modDir with
// module path modPath.
func NewLoader(modDir, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModDir:  modDir,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer. Module-internal paths load
// recursively from source; "unsafe" maps to types.Unsafe; everything
// else goes to the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.cache[path]; ok {
		return p.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.load(filepath.Join(l.ModDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load expands the given patterns ("./...", "./internal/...", or plain
// directories relative to the module root) and returns the matched
// packages in deterministic (path-sorted) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, rel := range dirs {
		p, err := l.LoadDir(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir loads the package in the directory rel (relative to the
// module root; "." is the module root itself).
func (l *Loader) LoadDir(rel string) (*Package, error) {
	rel = filepath.ToSlash(filepath.Clean(rel))
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + rel
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	return l.load(filepath.Join(l.ModDir, filepath.FromSlash(rel)), path)
}

// Expand resolves "..."-style patterns to the sorted set of module
// directories (relative to the module root) that contain at least one
// non-test Go file. testdata, vendor, hidden, and underscore-prefixed
// directories are skipped, matching go-tool convention.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			root = filepath.Clean(strings.TrimPrefix(root, "./"))
			absRoot := filepath.Join(l.ModDir, filepath.FromSlash(root))
			err := filepath.WalkDir(absRoot, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != absRoot && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return fs.SkipDir
				}
				ok, err := hasGoFiles(p)
				if err != nil {
					return err
				}
				if ok {
					rel, err := filepath.Rel(l.ModDir, p)
					if err != nil {
						return err
					}
					set[filepath.ToSlash(rel)] = true
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		rel := filepath.Clean(strings.TrimPrefix(pat, "./"))
		ok, err := hasGoFiles(filepath.Join(l.ModDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("analysis: no non-test Go files in %s", rel)
		}
		set[rel] = true
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks the package in dir under import path
// path, memoizing the result so diamond imports type-check once.
func (l *Loader) load(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}
