// Package errwrap is golden-test input for the sentinel-wrapping
// analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

var (
	ErrCorrupt   = errors.New("corrupt")
	ErrTransient = errors.New("transient")
	notSentinel  = errors.New("named outside the taxonomy")
)

func compare(err error) bool {
	if err == ErrCorrupt { // want `sentinel ErrCorrupt .* use errors\.Is\(err, ErrCorrupt\)`
		return true
	}
	return err != ErrTransient // want `sentinel ErrTransient .* use !errors\.Is\(err, ErrTransient\)`
}

func compareFine(err error) bool {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return true
	}
	return err == notSentinel // not ErrXxx-shaped: outside the taxonomy
}

func wrap(key string, cause error) error {
	if cause != nil {
		return fmt.Errorf("get %q: %v", key, ErrCorrupt) // want `embeds sentinel ErrCorrupt with %v; use %w`
	}
	return fmt.Errorf("get %q: %w", key, ErrCorrupt)
}

func wrapIndirect(err error) error {
	// Wrapping a plain error variable with %v is merely lossy, not a
	// taxonomy break — only literal sentinels are errwrap's business.
	return fmt.Errorf("wrapped: %v", err)
}

func wrapWidth(n int, cause error) error {
	// *-width consumes an operand; the sentinel lands on the second
	// verb and must still be tracked to it.
	return fmt.Errorf("%*d items: %v", n, 3, ErrTransient) // want `embeds sentinel ErrTransient with %v`
}

func switchCompare(err error) int {
	switch err {
	case ErrCorrupt: // want `switch case compares sentinel ErrCorrupt`
		return 1
	case nil:
		return 0
	}
	return 2
}

func suppressedIdentity(err error) bool {
	//lint:ignore errwrap identity check on the unwrapped producer side
	return err == ErrTransient
}
