// Package errwrap keeps the repo's error taxonomy intact under
// wrapping. ResilientStore and MirrorStore deliberately wrap sentinels
// (storage.ErrNotFound, ckpt.ErrCommitAborted, ...) with context via
// fmt.Errorf("...: %w", err); any `err == ErrX` comparison or a
// sentinel formatted with %v instead of %w silently stops matching the
// moment a wrapping layer is inserted between producer and consumer.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "flag err == ErrX / err != ErrX / switch-on-error comparisons that " +
		"should be errors.Is, and fmt.Errorf calls that embed a sentinel " +
		"without %w — both break the error taxonomy under wrapping",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	sentinel, other := b.X, b.Y
	obj, ok := analysis.IsErrorSentinel(pass.TypesInfo, sentinel)
	if !ok {
		sentinel, other = b.Y, b.X
		if obj, ok = analysis.IsErrorSentinel(pass.TypesInfo, sentinel); !ok {
			return
		}
	}
	if !isErrorExpr(pass.TypesInfo, other) {
		return
	}
	verb := "errors.Is(err, %s)"
	if b.Op == token.NEQ {
		verb = "!errors.Is(err, %s)"
	}
	pass.Reportf(b.Pos(), "comparison with sentinel %s stops matching once the error is wrapped; use "+verb, obj.Name(), obj.Name())
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorExpr(pass.TypesInfo, sw.Tag) {
		return
	}
	for _, st := range sw.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			if obj, ok := analysis.IsErrorSentinel(pass.TypesInfo, v); ok {
				pass.Reportf(v.Pos(), "switch case compares sentinel %s with ==, which stops matching once the error is wrapped; use errors.Is(err, %s)", obj.Name(), obj.Name())
			}
		}
	}
}

// isErrorExpr reports whether e has error type and is not the nil
// literal (err == nil is the one comparison that survives wrapping by
// definition).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return types.AssignableTo(tv.Type, types.Universe.Lookup("error").Type())
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	path, name, ok := analysis.CalleePkgFunc(pass.TypesInfo, call)
	if !ok || path != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := verbByArg(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		obj, ok := analysis.IsErrorSentinel(pass.TypesInfo, arg)
		if !ok {
			continue
		}
		if v, seen := verbs[i]; seen && v != 'w' {
			pass.Reportf(arg.Pos(), "fmt.Errorf embeds sentinel %s with %%%c; use %%w so errors.Is keeps matching through the wrap", obj.Name(), v)
		}
	}
}

// verbByArg maps operand index (0 = first argument after the format
// string) to the verb that consumes it, handling %%, flags,
// *-widths/precisions, and explicit [n] argument indexes.
func verbByArg(format string) map[int]rune {
	verbs := make(map[int]rune)
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && isFlag(format[i]) {
			i++
		}
		if i < len(format) && format[i] == '*' {
			arg++ // the width itself consumes an operand
			i++
		}
		for i < len(format) && isDigit(format[i]) {
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
			for i < len(format) && isDigit(format[i]) {
				i++
			}
		}
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && isDigit(format[j]) {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i < len(format) {
			verbs[arg] = rune(format[i])
			arg++
			i++
		}
	}
	return verbs
}

func isFlag(c byte) bool  { return c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
