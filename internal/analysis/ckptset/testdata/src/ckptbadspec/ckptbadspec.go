// Package ckptbadspec commits a spec file that does not parse: the
// analyzer reports it rather than silently treating it as empty.
package ckptbadspec // want `ckptbadspec\.ckptspec is unparseable`

import "golden.test/ckptgood"

type K struct {
	g *ckptgood.Array
}

func NewK(sp *ckptgood.Space) (*K, error) {
	g, err := sp.Alloc(4)
	if err != nil {
		return nil, err
	}
	return &K{g: g}, nil
}

func (k *K) Step() error {
	v := make([]float64, 4)
	if err := k.g.Read(v, 0); err != nil {
		return err
	}
	return k.g.Write(v, 0)
}
