// Package ckptdrift pins every drift diagnostic: a class mismatch, a
// reason mismatch, an entry missing from the committed spec, and a
// stale committed entry whose role no longer exists. It imports the
// ckptgood mini framework rather than redeclaring it — roles are
// discovered structurally across package boundaries.
package ckptdrift // want `spec drift: stale entry Sim\.gone in ckptdrift\.ckptspec; no such protection region`

import "golden.test/ckptgood"

// Sim's committed spec disagrees with the source on purpose.
type Sim struct {
	grid *ckptgood.Array // want `spec drift: Sim\.grid is must \(live across iterations: read before written in Step\) but ckptdrift\.ckptspec says recomputable`
	work *ckptgood.Array // want `spec drift: Sim\.work classified recomputable \(scratch: written before any read in every step\) but missing from ckptdrift\.ckptspec`
	buf  *ckptgood.Array // want `spec drift: Sim\.buf reason is "scratch: written before any read in every step" but ckptdrift\.ckptspec says "hand-edited reason"`
}

func NewSim(sp *ckptgood.Space) (*Sim, error) {
	grid, err := sp.Alloc(8)
	if err != nil {
		return nil, err
	}
	work, err := sp.Alloc(8)
	if err != nil {
		return nil, err
	}
	buf, err := sp.Alloc(8)
	if err != nil {
		return nil, err
	}
	return &Sim{grid: grid, work: work, buf: buf}, nil
}

func (s *Sim) Step() error {
	v := make([]float64, 8)
	if err := s.grid.Read(v, 0); err != nil {
		return err
	}
	if err := s.work.Write(v, 0); err != nil {
		return err
	}
	if err := s.work.Read(v, 0); err != nil {
		return err
	}
	if err := s.buf.Write(v, 0); err != nil {
		return err
	}
	if err := s.buf.Read(v, 0); err != nil {
		return err
	}
	return s.grid.Write(v, 0)
}
