// Package ckptgood is the in-sync golden package: its committed
// ckptgood.ckptspec matches the analyzer's classification exactly, so
// the run must produce zero diagnostics. The types cover every class:
// live-in must, escape must (return, swap, ctor alias), conditional
// write, zero-iteration loop, scratch, table, raw region, and idle.
package ckptgood

// Space is the mini allocator backing the golden kernels.
type Space struct {
	next uint64
}

// Alloc maps a fresh array of n float64s.
func (s *Space) Alloc(n int) (*Array, error) {
	r := &Region{start: s.next}
	s.next += uint64(8 * n)
	return &Array{buf: make([]float64, n), reg: r}, nil
}

// Raw maps a bare region with no array view over it.
func (s *Space) Raw(n int) (*Region, error) {
	r := &Region{start: s.next}
	s.next += uint64(n)
	return r, nil
}

// Region is the raw mapping: structurally a protection region.
type Region struct {
	start uint64
}

func (r *Region) Start() uint64 { return r.start }
func (r *Region) ProtectAll()   {}

// Array is the mini kernel array: structurally an array type, so its
// own fields sit below the abstraction boundary and are not roles.
type Array struct {
	buf []float64
	reg *Region
}

func (a *Array) Write(v []float64, off int) error {
	copy(a.buf[off:], v)
	return nil
}

func (a *Array) Read(v []float64, off int) error {
	copy(v, a.buf[off:])
	return nil
}

func (a *Array) At(i int) (float64, error) { return a.buf[i], nil }

func (a *Array) Checksum() (float64, error) {
	var sum float64
	for _, v := range a.buf {
		sum += v
	}
	return sum, nil
}

func (a *Array) Len() int        { return len(a.buf) }
func (a *Array) Region() *Region { return a.reg }
func (a *Array) Free() error     { return nil }
