package ckptgood

// Solver exercises the core lattice: a live-in grid, a scratch buffer,
// a recomputable table, a raw region, and an idle ctor-only array.
type Solver struct {
	n    int
	grid *Array  // must: read before written in Step
	work *Array  // recomputable: staged before any read, every step
	tab  *Array  // recomputable: derived by fill, a hook-shaped method
	raw  *Region // unknown: raw writes bypass the array API
	idle *Array  // unknown: only the constructor touches it
}

// NewSolver is the constructor: its accesses initialise, they do not
// affect liveness.
func NewSolver(sp *Space, n int) (*Solver, error) {
	grid, err := sp.Alloc(n)
	if err != nil {
		return nil, err
	}
	work, err := sp.Alloc(n)
	if err != nil {
		return nil, err
	}
	tab, err := sp.Alloc(n)
	if err != nil {
		return nil, err
	}
	raw, err := sp.Raw(8 * n)
	if err != nil {
		return nil, err
	}
	idle, err := sp.Alloc(n)
	if err != nil {
		return nil, err
	}
	seed := make([]float64, n)
	if err := grid.Write(seed, 0); err != nil { // ctor write: not a step
		return nil, err
	}
	if err := idle.Write(seed, 0); err != nil {
		return nil, err
	}
	s := &Solver{n: n, grid: grid, work: work, tab: tab, raw: raw, idle: idle}
	if err := s.fill(); err != nil {
		return nil, err
	}
	return s, nil
}

// fill derives the table from nothing: hook-shaped (no params, error
// result), writes tab alone, reads no role — a recompute hook.
func (s *Solver) fill() error {
	t := make([]float64, s.n)
	for i := range t {
		t[i] = float64(i) * 0.5
	}
	return s.tab.Write(t, 0)
}

// Step reads the grid and table, stages through work, writes back.
func (s *Solver) Step() error {
	in := make([]float64, s.n)
	if err := s.grid.Read(in, 0); err != nil { // live-in: read before write
		return err
	}
	t := make([]float64, s.n)
	if err := s.tab.Read(t, 0); err != nil { // live-in, but fill covers it
		return err
	}
	for i := range in {
		in[i] += t[i]
	}
	if err := s.work.Write(in, 0); err != nil { // scratch: write then read
		return err
	}
	if err := s.work.Read(in, 0); err != nil {
		return err
	}
	return s.grid.Write(in, 0)
}

// Cond shows that a conditional write covers nothing: the read below
// the if may observe the previous step's contents.
type Cond struct {
	buf *Array // must: the guarded write may not run
}

func NewCond(sp *Space) (*Cond, error) {
	buf, err := sp.Alloc(4)
	if err != nil {
		return nil, err
	}
	return &Cond{buf: buf}, nil
}

func (c *Cond) Step(flag bool) error {
	v := make([]float64, 4)
	if flag {
		if err := c.buf.Write(v, 0); err != nil {
			return err
		}
	}
	return c.buf.Read(v, 0)
}

// Alias would be pure scratch, but its constructor aliases the array
// into a slice the analysis cannot follow: must.
type Alias struct {
	s *Array // must: aliased in the constructor
}

func NewAlias(sp *Space) (*Alias, error) {
	s, err := sp.Alloc(8)
	if err != nil {
		return nil, err
	}
	all := []*Array{s} // escapes: aliased beyond the binding
	if len(all) != 1 {
		return nil, err
	}
	return &Alias{s: s}, nil
}

func (a *Alias) Step() error {
	v := make([]float64, 8)
	if err := a.s.Write(v, 0); err != nil {
		return err
	}
	return a.s.Read(v, 0)
}
