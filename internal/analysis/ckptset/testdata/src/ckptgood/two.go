package ckptgood

// This file holds Ping's methods and the Loop kernel so the analyzer
// is exercised across a multi-file package: the type and constructor
// live in kernels-style file one, the accesses here.

// Ping is a double buffer; both halves escape.
type Ping struct {
	a *Array // must: returned by Cur
	b *Array // must: swapped through Flip
}

func NewPing(sp *Space) (*Ping, error) {
	a, err := sp.Alloc(16)
	if err != nil {
		return nil, err
	}
	b, err := sp.Alloc(16)
	if err != nil {
		return nil, err
	}
	return &Ping{a: a, b: b}, nil
}

// Cur hands the buffer to the caller: escape.
func (p *Ping) Cur() *Array { return p.a }

// Flip re-points both role fields: escape for a and b alike.
func (p *Ping) Flip() {
	p.a, p.b = p.b, p.a
}

// Loop writes only inside a loop that may run zero times, then reads:
// the write covers nothing, so the buffer is live-in.
type Loop struct {
	v *Array // must: loop body writes do not persist
}

func NewLoop(sp *Space) (*Loop, error) {
	v, err := sp.Alloc(2)
	if err != nil {
		return nil, err
	}
	return &Loop{v: v}, nil
}

func (l *Loop) Step(n int) error {
	buf := make([]float64, 1)
	for i := 0; i < n; i++ {
		if err := l.v.Write(buf, 0); err != nil {
			return err
		}
	}
	return l.v.Read(buf, 0)
}
