// Package ckptset identifies the checkpoint set of a kernel package:
// a data-dependency pass that classifies every protection role — a
// struct field holding a kernel array (a named type whose pointer
// method set carries Write([]float64, int) error and Read([]float64,
// int) error) or a raw memory region — as must-checkpoint,
// recomputable, or unknown, and checks the committed .ckptspec file
// for drift against that classification.
//
// The lattice, from the paper's point of view: a region whose contents
// are live across an iteration boundary must be captured (losing it
// loses the solution); a region fully rewritten before any read in
// every step, or derivable by a self-contained fill method, costs
// checkpoint bytes for nothing and can be excluded if a restore-time
// recompute hook exists; anything the analysis cannot see through is
// protected conservatively.
//
// Classification per role, in precedence order:
//
//   - raw *Region fields (structurally: Start() uint64 + ProtectAll())
//     are unknown — writes bypass the array API and are invisible;
//   - a role that escapes (aliased into a composite literal, returned,
//     reassigned, indexed outside a modeled call, exported, or touched
//     by an unmodeled method) is must;
//   - a live-in role (read before written in some method) whose only
//     writers are hook-shaped methods (no params, error result) that
//     write this role alone and read nothing is a recomputable table;
//   - a live-in role otherwise is must;
//   - a role written by step code but never live-in is recomputable
//     scratch;
//   - a role never accessed outside its constructor is unknown.
//
// The pass is conservative about control flow: writes inside an
// if-without-else, a switch, or a loop body do not count as covering
// later reads (the branch may not run, the loop may run zero times),
// while a write-then-read inside one loop body is covered. Constructor
// accesses (functions returning the roled type) initialise rather than
// step, so they never affect liveness — but aliasing a role inside a
// constructor still escapes it.
//
// Only packages declaring at least one array role participate; the
// memory and checkpoint layers hold *mem.Region fields for plumbing,
// not for protection policy, and get no spec demanded of them.
package ckptset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ckptspec"
)

// Analyzer checks committed protection-region specs against the
// classification computed from source.
var Analyzer = &analysis.Analyzer{
	Name: "ckptset",
	Doc:  "classify kernel protection regions (must / recomputable / unknown) and report drift against the committed .ckptspec",
	Run:  run,
}

// The modeled surface of a kernel array. Any other method invoked on a
// role is unmodeled and escapes it.
var (
	arrayReads   = map[string]bool{"Read": true, "At": true, "Checksum": true}
	arrayWrites  = map[string]bool{"Write": true, "Fill": true}
	arrayNeutral = map[string]bool{"Len": true, "Region": true, "Free": true}
)

// Canonical reason strings. ComputeSpec output must be byte-stable, so
// every classification path funnels into one of these forms.
const (
	reasonEscape = "escapes: aliased, returned, or passed to unmodeled code"
	reasonRaw    = "raw region: writes invisible to the analysis"
	reasonIdle   = "idle: no step reads or writes; conservatively protected"
)

// A role is one protection region: a struct field of array or region
// type, identified as Type.field.
type role struct {
	name  string
	field *types.Var
	pos   token.Pos
	raw   bool // *Region (or slice of): class is Unknown outright

	escaped bool
	// liveIn, written: function names (non-constructor) with a
	// read-before-write of, respectively any write to, this role.
	liveIn  map[string]bool
	written map[string]bool
}

// A fnInfo aggregates one function's role accesses for the table rule.
type fnInfo struct {
	name     string
	ctor     bool
	hookable bool // func() error shape: usable as a recompute hook
	reads    map[*role]bool
	writes   map[*role]bool
}

func run(pass *analysis.Pass) (any, error) {
	spec, positions := compute(pass.Files, pass.Pkg, pass.TypesInfo)
	if spec == nil {
		return nil, nil
	}
	at := pass.Files[0].Package
	name := pass.Pkg.Name() + ".ckptspec"
	path := filepath.Join(filepath.Dir(pass.Fset.Position(at).Filename), name)
	data, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(at, "package declares %d protection regions but has no %s; regenerate with `go run ./cmd/lint -write-specs ./...`",
			len(spec.Regions), name)
		return nil, nil
	}
	committed, err := ckptspec.Parse(data)
	if err != nil {
		pass.Reportf(at, "%s is unparseable (%v); regenerate with `go run ./cmd/lint -write-specs ./...`", name, err)
		return nil, nil
	}
	if committed.Package != spec.Package {
		pass.Reportf(at, "%s names package %q, want %q; regenerate with `go run ./cmd/lint -write-specs ./...`",
			name, committed.Package, spec.Package)
	}
	for _, r := range spec.Regions {
		pos := positions[r.Name]
		c, ok := committed.Lookup(r.Name)
		switch {
		case !ok:
			pass.Reportf(pos, "spec drift: %s classified %s (%s) but missing from %s", r.Name, r.Class, r.Reason, name)
		case c.Class != r.Class:
			pass.Reportf(pos, "spec drift: %s is %s (%s) but %s says %s", r.Name, r.Class, r.Reason, name, c.Class)
		case c.Reason != r.Reason:
			pass.Reportf(pos, "spec drift: %s reason is %q but %s says %q", r.Name, r.Reason, name, c.Reason)
		}
	}
	for _, c := range committed.Regions {
		if _, ok := spec.Lookup(c.Name); !ok {
			pass.Reportf(at, "spec drift: stale entry %s in %s; no such protection region", c.Name, name)
		}
	}
	return nil, nil
}

// ComputeSpec derives the protection-region spec for a loaded package.
// It returns nil for packages that declare no array roles — only
// kernel packages carry protection policy.
func ComputeSpec(p *analysis.Package) *ckptspec.Spec {
	spec, _ := compute(p.Files, p.Types, p.Info)
	return spec
}

// compute runs role discovery, the per-function access analysis, and
// classification. The returned map carries each region's field
// position for drift diagnostics.
func compute(files []*ast.File, pkg *types.Package, info *types.Info) (*ckptspec.Spec, map[string]token.Pos) {
	an := &pkgAnalysis{
		info:   info,
		roles:  make(map[*types.Var]*role),
		owners: make(map[types.Type]bool),
	}
	an.discoverRoles(pkg)
	hasArray := false
	for _, r := range an.roles {
		if !r.raw {
			hasArray = true
		}
	}
	if !hasArray {
		return nil, nil
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			an.funcs = append(an.funcs, an.analyzeFunc(fd))
		}
	}
	spec := &ckptspec.Spec{Package: pkg.Path()}
	positions := make(map[string]token.Pos)
	for _, r := range an.sortedRoles() {
		spec.Regions = append(spec.Regions, an.classify(r))
		positions[r.name] = r.pos
	}
	spec.Sort()
	return spec, positions
}

type pkgAnalysis struct {
	info   *types.Info
	roles  map[*types.Var]*role
	owners map[types.Type]bool // named types that declare at least one role
	funcs  []*fnInfo
}

// discoverRoles walks the package scope for struct types and registers
// every array- or region-typed field. Struct types that are themselves
// arrays or regions are skipped: a wrapper's internals sit below the
// abstraction boundary the analysis models.
func (an *pkgAnalysis) discoverRoles(pkg *types.Package) {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || isArrayType(named) || isRegionType(named) {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			raw, ok := roleKind(f.Type())
			if !ok {
				continue
			}
			an.roles[f] = &role{
				name:    name + "." + f.Name(),
				field:   f,
				pos:     f.Pos(),
				raw:     raw,
				escaped: f.Exported(), // exported fields alias beyond the package
				liveIn:  make(map[string]bool),
				written: make(map[string]bool),
			}
			an.owners[named] = true
		}
	}
}

// roleKind reports whether t makes its field a role, and whether that
// role is a raw region. Slices of array or region pointers count: a
// per-rank arena table is as much a protection region as a scalar one.
func roleKind(t types.Type) (raw, ok bool) {
	if sl, isSlice := t.Underlying().(*types.Slice); isSlice {
		t = sl.Elem()
	}
	pt, isPtr := t.Underlying().(*types.Pointer)
	if !isPtr {
		return false, false
	}
	named, isNamed := pt.Elem().(*types.Named)
	if !isNamed {
		return false, false
	}
	if isArrayType(named) {
		return false, true
	}
	if isRegionType(named) {
		return true, true
	}
	return false, false
}

// isArrayType reports whether *T structurally is a kernel array:
// Write([]float64, int) error and Read([]float64, int) error.
func isArrayType(named *types.Named) bool {
	return hasMethodSig(named, "Write", sigSliceIntErr) && hasMethodSig(named, "Read", sigSliceIntErr)
}

// isRegionType reports whether *T structurally is a raw memory region:
// Start() uint64 and ProtectAll().
func isRegionType(named *types.Named) bool {
	return hasMethodSig(named, "Start", sigStartUint64) && hasMethodSig(named, "ProtectAll", sigNoArgNoRet)
}

func hasMethodSig(named *types.Named, name string, match func(*types.Signature) bool) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != name {
			continue
		}
		return match(fn.Type().(*types.Signature))
	}
	return false
}

func sigSliceIntErr(sig *types.Signature) bool {
	p, r := sig.Params(), sig.Results()
	if p.Len() != 2 || r.Len() != 1 {
		return false
	}
	sl, ok := p.At(0).Type().(*types.Slice)
	if !ok || !isFloat64(sl.Elem()) {
		return false
	}
	return isInt(p.At(1).Type()) && isError(r.At(0).Type())
}

func sigStartUint64(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		isBasic(sig.Results().At(0).Type(), types.Uint64)
}

func sigNoArgNoRet(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func isFloat64(t types.Type) bool { return isBasic(t, types.Float64) }
func isInt(t types.Type) bool     { return isBasic(t, types.Int) }

func isBasic(t types.Type, k types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == k
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// analyzeFunc interprets one function body in statement order,
// recording role accesses. Constructors (plain functions whose results
// include a roled type) bind locals to the fields they initialise;
// their reads and writes are initialisation, not steps.
func (an *pkgAnalysis) analyzeFunc(fd *ast.FuncDecl) *fnInfo {
	fa := &funcAnalysis{
		an: an,
		info: &fnInfo{
			name:     fd.Name.Name,
			hookable: hookShape(fd),
			reads:    make(map[*role]bool),
			writes:   make(map[*role]bool),
		},
		locals: make(map[types.Object]*role),
		exempt: make(map[*ast.Ident]bool),
	}
	if fd.Recv == nil && an.resultsRoledType(fd) {
		fa.info.ctor = true
		fa.bindCtorLocals(fd.Body)
	}
	fa.walkStmt(fd.Body, make(map[*role]bool))
	return fa.info
}

// resultsRoledType reports whether fd returns a type that owns roles —
// the constructor signature shape.
func (an *pkgAnalysis) resultsRoledType(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := an.info.TypeOf(res.Type)
		if t == nil {
			continue
		}
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		if an.owners[t] {
			return true
		}
	}
	return false
}

// hookShape reports whether fd can serve as a restore-time recompute
// hook: a method with no parameters and a single error result.
func hookShape(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Type.Params.NumFields() != 0 {
		return false
	}
	res := fd.Type.Results
	if res == nil || res.NumFields() != 1 {
		return false
	}
	id, ok := res.List[0].Type.(*ast.Ident)
	return ok && id.Name == "error"
}

type funcAnalysis struct {
	an   *pkgAnalysis
	info *fnInfo
	// locals maps constructor locals to the role they initialise;
	// exempt marks the binding occurrences themselves (the composite
	// literal value, the field-assignment operands) so the binding is
	// not read back as an escape.
	locals map[types.Object]*role
	exempt map[*ast.Ident]bool
}

// bindCtorLocals pre-scans a constructor body for the idioms that tie
// a local variable to a role field: a composite literal entry
// (&T{field: local}) or a direct field assignment (v.field = local).
func (fa *funcAnalysis) bindCtorLocals(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				val, ok := kv.Value.(*ast.Ident)
				if !ok {
					continue
				}
				f, _ := fa.an.info.Uses[key].(*types.Var)
				r := fa.an.roles[f]
				if r == nil {
					continue
				}
				if obj := fa.an.info.Uses[val]; obj != nil {
					fa.locals[obj] = r
					fa.exempt[val] = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			sel, ok := n.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			val, ok := n.Rhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			r := fa.an.roles[fa.fieldOf(sel)]
			if r == nil {
				return true
			}
			if obj := fa.an.info.Uses[val]; obj != nil {
				fa.locals[obj] = r
				fa.exempt[val] = true
				fa.exempt[sel.Sel] = true
			}
		}
		return true
	})
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func (fa *funcAnalysis) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := fa.an.info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	v, _ := fa.an.info.Uses[sel.Sel].(*types.Var)
	return v
}

// roleOf resolves an expression to the role it accesses: a field
// selector on any base (recv.f, d.grids[i] after index unwrap), or a
// bare constructor local bound to a role. Binding occurrences are
// exempt — they define the tie, they do not use the array.
func (fa *funcAnalysis) roleOf(e ast.Expr) *role {
	e = unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = unparen(ix.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if fa.exempt[x.Sel] {
			return nil
		}
		return fa.an.roles[fa.fieldOf(x)]
	case *ast.Ident:
		if fa.exempt[x] {
			return nil
		}
		return fa.locals[fa.an.info.Uses[x]]
	}
	return nil
}

func (fa *funcAnalysis) escape(r *role) {
	if !r.raw {
		r.escaped = true
	}
}

// roleCall records a modeled method call on a role. Raw-region roles
// are already pinned at Unknown; constructor reads and writes
// initialise rather than step. Unmodeled methods escape.
func (fa *funcAnalysis) roleCall(r *role, method string, written map[*role]bool) {
	if r.raw {
		return
	}
	switch {
	case arrayWrites[method]:
		if !fa.info.ctor {
			fa.info.writes[r] = true
			r.written[fa.info.name] = true
		}
		written[r] = true
	case arrayReads[method]:
		if !fa.info.ctor {
			fa.info.reads[r] = true
			if !written[r] {
				r.liveIn[fa.info.name] = true
			}
		}
	case arrayNeutral[method]:
	default:
		fa.escape(r)
	}
}

func copyState(m map[*role]bool) map[*role]bool {
	c := make(map[*role]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// walkStmt interprets stmt with written tracking which roles are
// definitely written so far on this path. Branch and loop bodies run
// on copies; only an if/else pair merges writes back (by
// intersection), because either arm may be the one that executes.
func (fa *funcAnalysis) walkStmt(s ast.Stmt, written map[*role]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			fa.walkStmt(st, written)
		}
	case *ast.ExprStmt:
		fa.walkExpr(s.X, written)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			fa.walkExpr(rhs, written)
		}
		for _, lhs := range s.Lhs {
			// Reassigning a role field (or element) re-points the
			// protection region itself: aliasing beyond the model.
			if r := fa.roleOf(lhs); r != nil {
				fa.escape(r)
				continue
			}
			fa.walkLhs(lhs, written)
		}
	case *ast.IfStmt:
		fa.walkStmt(s.Init, written)
		fa.walkExpr(s.Cond, written)
		then := copyState(written)
		fa.walkStmt(s.Body, then)
		if s.Else == nil {
			return // branch may not run: its writes cover nothing later
		}
		els := copyState(written)
		fa.walkStmt(s.Else, els)
		for r := range then {
			if then[r] && els[r] {
				written[r] = true
			}
		}
	case *ast.ForStmt:
		fa.walkStmt(s.Init, written)
		fa.walkExpr(s.Cond, written)
		body := copyState(written)
		fa.walkStmt(s.Body, body)
		fa.walkStmt(s.Post, body)
		// Zero iterations are possible: body writes do not persist.
	case *ast.RangeStmt:
		if r := fa.roleOf(s.X); r != nil {
			fa.escape(r) // ranging aliases elements into loop vars
		} else {
			fa.walkExpr(s.X, written)
		}
		body := copyState(written)
		fa.walkStmt(s.Body, body)
	case *ast.SwitchStmt:
		fa.walkStmt(s.Init, written)
		fa.walkExpr(s.Tag, written)
		for _, cc := range s.Body.List {
			fa.walkStmt(cc, copyState(written))
		}
	case *ast.TypeSwitchStmt:
		fa.walkStmt(s.Init, written)
		fa.walkStmt(s.Assign, written)
		for _, cc := range s.Body.List {
			fa.walkStmt(cc, copyState(written))
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			fa.walkStmt(cc, copyState(written))
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			fa.walkExpr(e, written)
		}
		for _, st := range s.Body {
			fa.walkStmt(st, written)
		}
	case *ast.CommClause:
		fa.walkStmt(s.Comm, written)
		for _, st := range s.Body {
			fa.walkStmt(st, written)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			// Returning a role hands the array to the caller.
			if r := fa.roleOf(e); r != nil {
				fa.escape(r)
				continue
			}
			fa.walkExpr(e, written)
		}
	case *ast.DeferStmt:
		fa.walkExpr(s.Call, copyState(written)) // runs at exit, order unknown
	case *ast.GoStmt:
		fa.walkExpr(s.Call, copyState(written))
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, sp := range gd.Specs {
			if vs, ok := sp.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					fa.walkExpr(v, written)
				}
			}
		}
	case *ast.LabeledStmt:
		fa.walkStmt(s.Stmt, written)
	case *ast.IncDecStmt:
		fa.walkExpr(s.X, written)
	case *ast.SendStmt:
		fa.walkExpr(s.Chan, written)
		fa.walkExpr(s.Value, written)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// walkLhs handles non-role assignment targets whose subexpressions may
// still touch roles (buf[i] = x, s.other.field = x).
func (fa *funcAnalysis) walkLhs(lhs ast.Expr, written map[*role]bool) {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
	case *ast.IndexExpr:
		fa.walkExpr(x.X, written)
		fa.walkExpr(x.Index, written)
	case *ast.SelectorExpr:
		fa.walkExpr(x.X, written)
	case *ast.StarExpr:
		fa.walkExpr(x.X, written)
	default:
		fa.walkExpr(lhs, written)
	}
}

// walkExpr interprets an expression. A role appearing as the receiver
// of a modeled method call is classified; a role appearing anywhere
// else escapes.
func (fa *funcAnalysis) walkExpr(e ast.Expr, written map[*role]bool) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			if r := fa.roleOf(sel.X); r != nil {
				fa.roleCall(r, sel.Sel.Name, written)
				fa.walkBelowRole(sel.X, written)
				for _, a := range x.Args {
					fa.walkArg(a, written)
				}
				return
			}
		}
		fa.walkExpr(x.Fun, written)
		for _, a := range x.Args {
			fa.walkArg(a, written)
		}
	case *ast.SelectorExpr:
		if r := fa.roleOf(x); r != nil {
			fa.escape(r)
			return
		}
		fa.walkExpr(x.X, written)
	case *ast.IndexExpr:
		if r := fa.roleOf(x); r != nil {
			fa.escape(r)
			return
		}
		fa.walkExpr(x.X, written)
		fa.walkExpr(x.Index, written)
	case *ast.Ident:
		if r := fa.roleOf(x); r != nil {
			fa.escape(r)
		}
	case *ast.ParenExpr:
		fa.walkExpr(x.X, written)
	case *ast.UnaryExpr:
		fa.walkExpr(x.X, written)
	case *ast.StarExpr:
		fa.walkExpr(x.X, written)
	case *ast.BinaryExpr:
		fa.walkExpr(x.X, written)
		fa.walkExpr(x.Y, written)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				fa.walkArg(kv.Value, written)
				continue
			}
			fa.walkArg(elt, written)
		}
	case *ast.KeyValueExpr:
		fa.walkArg(x.Value, written)
	case *ast.SliceExpr:
		fa.walkExpr(x.X, written)
		fa.walkExpr(x.Low, written)
		fa.walkExpr(x.High, written)
		fa.walkExpr(x.Max, written)
	case *ast.TypeAssertExpr:
		fa.walkExpr(x.X, written)
	case *ast.FuncLit:
		// A closure may run later, out of statement order: analyze on
		// a fresh copy so its writes cover nothing outside.
		fa.walkStmt(x.Body, copyState(written))
	}
}

// walkArg walks an expression in argument position, where a bare role
// is an escape (the callee gets the array).
func (fa *funcAnalysis) walkArg(e ast.Expr, written map[*role]bool) {
	if r := fa.roleOf(e); r != nil {
		fa.escape(r)
		return
	}
	fa.walkExpr(e, written)
}

// walkBelowRole walks the base of a role selector after the role call
// itself was handled (d.grids[i].Write → walk d and i, not grids).
func (fa *funcAnalysis) walkBelowRole(e ast.Expr, written map[*role]bool) {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		fa.walkExpr(x.X, written)
	case *ast.IndexExpr:
		fa.walkExpr(x.Index, written)
		if sel, ok := unparen(x.X).(*ast.SelectorExpr); ok {
			fa.walkExpr(sel.X, written)
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (an *pkgAnalysis) sortedRoles() []*role {
	rs := make([]*role, 0, len(an.roles))
	for _, r := range an.roles {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].name < rs[j].name })
	return rs
}

// classify applies the lattice to one analyzed role.
func (an *pkgAnalysis) classify(r *role) ckptspec.Region {
	if r.raw {
		return ckptspec.Region{Name: r.name, Class: ckptspec.Unknown, Reason: reasonRaw}
	}
	if r.escaped {
		return ckptspec.Region{Name: r.name, Class: ckptspec.Must, Reason: reasonEscape}
	}
	if len(r.liveIn) > 0 {
		if writers, ok := an.tableWriters(r); ok {
			return ckptspec.Region{
				Name:   r.name,
				Class:  ckptspec.Recomputable,
				Reason: fmt.Sprintf("table: derived by %s; restore recomputes", strings.Join(writers, ", ")),
			}
		}
		return ckptspec.Region{
			Name:   r.name,
			Class:  ckptspec.Must,
			Reason: fmt.Sprintf("live across iterations: read before written in %s", firstKey(r.liveIn)),
		}
	}
	if len(r.written) > 0 {
		return ckptspec.Region{Name: r.name, Class: ckptspec.Recomputable, Reason: "scratch: written before any read in every step"}
	}
	return ckptspec.Region{Name: r.name, Class: ckptspec.Unknown, Reason: reasonIdle}
}

// tableWriters reports whether every writer of r is a self-contained
// fill: a hook-shaped method that writes r alone and reads no role. If
// so, a restore can drop the region and rerun the writers.
func (an *pkgAnalysis) tableWriters(r *role) ([]string, bool) {
	var names []string
	for _, f := range an.funcs {
		if f.ctor || !f.writes[r] {
			continue
		}
		if !f.hookable || len(f.writes) != 1 || len(f.reads) != 0 {
			return nil, false
		}
		names = append(names, f.name)
	}
	if len(names) == 0 {
		return nil, false
	}
	sort.Strings(names)
	return names, true
}

func firstKey(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}
