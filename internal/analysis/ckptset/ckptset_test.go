package ckptset_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ckptset"
)

// TestGoldenInSync: a package whose committed spec matches the
// computed classification produces zero diagnostics. The package
// covers every class edge: live-in, escape by return / swap / ctor
// alias, conditional write, zero-iteration loop, scratch, table, raw
// region, idle, across multiple files.
func TestGoldenInSync(t *testing.T) {
	analysistest.Run(t, ckptset.Analyzer, "ckptgood")
}

// TestGoldenDrift pins the drift diagnostics: class mismatch, reason
// mismatch, missing entry, stale entry.
func TestGoldenDrift(t *testing.T) {
	analysistest.Run(t, ckptset.Analyzer, "ckptdrift")
}

// TestGoldenMissingSpec: a package with roles and no committed spec.
func TestGoldenMissingSpec(t *testing.T) {
	analysistest.Run(t, ckptset.Analyzer, "ckptmissing")
}

// TestGoldenBadSpec: an unparseable committed spec is reported.
func TestGoldenBadSpec(t *testing.T) {
	analysistest.Run(t, ckptset.Analyzer, "ckptbadspec")
}

func loadGolden(t *testing.T, pkg string) *analysis.Package {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := analysis.NewLoader(src, "golden.test").LoadDir(pkg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestComputeSpecDeterministic: two computations over the same package
// encode byte-identically — the spec format is diffable, so the
// generator must never leak map order.
func TestComputeSpecDeterministic(t *testing.T) {
	a := ckptset.ComputeSpec(loadGolden(t, "ckptgood")).Encode()
	b := ckptset.ComputeSpec(loadGolden(t, "ckptgood")).Encode()
	if !bytes.Equal(a, b) {
		t.Errorf("two encodings differ:\n%s\nvs\n%s", a, b)
	}
}

// TestComputeSpecSkipsRoleFreePackages: a package with no array roles
// gets no spec demanded of it.
func TestComputeSpecSkipsRoleFreePackages(t *testing.T) {
	modDir, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader(modDir, modPath).LoadDir("internal/bitset")
	if err != nil {
		t.Fatal(err)
	}
	if spec := ckptset.ComputeSpec(pkg); spec != nil {
		t.Errorf("bitset spec = %+v, want nil", spec)
	}
}

// TestKernelsSpecInSync recomputes the real kernels spec and compares
// it byte-for-byte against the committed kernels.ckptspec — the same
// gate CI applies with `lint -write-specs && git diff`.
func TestKernelsSpecInSync(t *testing.T) {
	modDir, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.NewLoader(modDir, modPath).LoadDir("internal/kernels")
	if err != nil {
		t.Fatal(err)
	}
	spec := ckptset.ComputeSpec(pkg)
	if spec == nil {
		t.Fatal("kernels package computed no spec")
	}
	committed, err := os.ReadFile(filepath.Join(modDir, "internal", "kernels", "kernels.ckptspec"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spec.Encode(), committed) {
		t.Errorf("kernels.ckptspec is stale; regenerate with `go run ./cmd/lint -write-specs ./...`\ncomputed:\n%s\ncommitted:\n%s", spec.Encode(), committed)
	}
}
