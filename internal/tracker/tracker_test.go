package tracker

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

const pageSize = 4096

func setup(t *testing.T, ts des.Time) (*des.Engine, *mem.AddressSpace, *Tracker) {
	t.Helper()
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
	tr, err := New(eng, sp, Options{Timeslice: ts})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sp, tr
}

func TestNewValidation(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{})
	if _, err := New(eng, sp, Options{}); err == nil {
		t.Fatal("zero timeslice accepted")
	}
}

func TestBasicIWSAccounting(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	r, _ := sp.Mmap(100 * pageSize)
	tr.Start()

	// Slice 0: write 10 pages. Slice 1: write 3 pages (overlapping).
	eng.Schedule(100*des.Millisecond, func() {
		if err := sp.WriteRange(r.Start(), 10*pageSize); err != nil {
			t.Error(err)
		}
	})
	eng.Schedule(1100*des.Millisecond, func() {
		if err := sp.WriteRange(r.Start()+5*pageSize, 3*pageSize); err != nil {
			t.Error(err)
		}
	})
	eng.Run(2 * des.Second)
	tr.Stop()

	ss := tr.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %d, want 2", len(ss))
	}
	if ss[0].IWSPages != 10 || ss[0].IWSBytes != 10*pageSize {
		t.Fatalf("slice0 IWS = %d pages", ss[0].IWSPages)
	}
	if ss[1].IWSPages != 3 {
		t.Fatalf("slice1 IWS = %d pages (re-protection failed?)", ss[1].IWSPages)
	}
	if ss[0].Faults != 10 || ss[1].Faults != 3 {
		t.Fatalf("faults = %d, %d", ss[0].Faults, ss[1].Faults)
	}
	if ss[0].FootprintBytes != 100*pageSize {
		t.Fatalf("footprint = %d", ss[0].FootprintBytes)
	}
	if got := ss[0].IBytesPerSec(); got != 10*pageSize {
		t.Fatalf("IB = %v B/s, want %v", got, 10*pageSize)
	}
}

func TestRewriteWithinSliceCountsOnce(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	r, _ := sp.Mmap(50 * pageSize)
	tr.Start()
	for i := 0; i < 5; i++ {
		eng.Schedule(des.Time(i+1)*100*des.Millisecond, func() {
			sp.WriteRange(r.Start(), 20*pageSize)
		})
	}
	eng.Run(des.Second)
	ss := tr.Samples()
	if len(ss) != 1 || ss[0].IWSPages != 20 {
		t.Fatalf("IWS = %+v, want 20 pages once", ss)
	}
	if ss[0].Faults != 20 {
		t.Fatalf("faults = %d, want 20 (one per page, not per write)", ss[0].Faults)
	}
}

func TestMemoryExclusion(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	keep, _ := sp.Mmap(10 * pageSize)
	tr.Start()
	var temp *mem.Region
	eng.Schedule(100*des.Millisecond, func() {
		temp, _ = sp.Mmap(40 * pageSize)
		sp.WriteRange(temp.Start(), 40*pageSize)
		sp.WriteRange(keep.Start(), 5*pageSize)
	})
	eng.Schedule(500*des.Millisecond, func() {
		sp.Munmap(temp)
	})
	eng.Run(des.Second)
	ss := tr.Samples()
	if len(ss) != 1 {
		t.Fatalf("samples = %d", len(ss))
	}
	// Only the 5 pages of the surviving region count; the 40 pages of
	// the unmapped arena are excluded.
	if ss[0].IWSPages != 5 {
		t.Fatalf("IWS = %d pages, want 5 (exclusion failed)", ss[0].IWSPages)
	}
	if ss[0].ExcludedBytes != 40*pageSize {
		t.Fatalf("ExcludedBytes = %d, want %d", ss[0].ExcludedBytes, 40*pageSize)
	}
	if ss[0].FootprintBytes != 10*pageSize {
		t.Fatalf("footprint = %d after unmap", ss[0].FootprintBytes)
	}
}

func TestNewlyMappedRegionIsProtected(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	tr.Start()
	var iws uint64
	eng.Schedule(100*des.Millisecond, func() {
		r, _ := sp.Mmap(8 * pageSize)
		// Initialization writes of a freshly mapped arena must fault
		// and be counted.
		sp.WriteRange(r.Start(), 8*pageSize)
	})
	eng.Run(des.Second)
	iws = tr.Samples()[0].IWSPages
	if iws != 8 {
		t.Fatalf("IWS = %d, want 8 (new arena writes missed)", iws)
	}
}

func TestHeapShrinkExcludesTail(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	sp.Sbrk(20 * pageSize)
	tr.Start()
	eng.Schedule(100*des.Millisecond, func() {
		sp.WriteRange(sp.Heap().Start(), 20*pageSize)
		sp.Sbrk(-10 * pageSize)
	})
	eng.Run(des.Second)
	if got := tr.Samples()[0].IWSPages; got != 10 {
		t.Fatalf("IWS after heap shrink = %d, want 10", got)
	}
}

func TestStopRestoresState(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	r, _ := sp.Mmap(4 * pageSize)
	tr.Start()
	eng.Run(500 * des.Millisecond)
	tr.Stop()
	if tr.Running() {
		t.Fatal("Running after Stop")
	}
	if r.ProtectedPages() != 0 {
		t.Fatal("pages left protected after Stop")
	}
	// Writes after Stop must not fault.
	before := sp.Faults()
	if err := sp.WriteRange(r.Start(), 4*pageSize); err != nil {
		t.Fatal(err)
	}
	if sp.Faults() != before {
		t.Fatal("write faulted after Stop")
	}
	tr.Stop() // idempotent
}

func TestDoubleStartPanics(t *testing.T) {
	_, _, tr := setup(t, des.Second)
	tr.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	tr.Start()
}

func TestExcludedRegionNotTracked(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	bounce, _ := sp.Mmap(16 * pageSize)
	tr.Exclude(bounce)
	tr.Start()
	if bounce.ProtectedPages() != 0 {
		t.Fatal("excluded region was protected")
	}
	eng.Schedule(100*des.Millisecond, func() {
		sp.WriteRange(bounce.Start(), 16*pageSize)
	})
	eng.Run(des.Second)
	if got := tr.Samples()[0].IWSPages; got != 0 {
		t.Fatalf("excluded region contributed %d pages to IWS", got)
	}
}

func TestRecvAccountingViaMPI(t *testing.T) {
	eng := des.NewEngine()
	spaces := []*mem.AddressSpace{
		mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true}),
		mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true}),
	}
	w, err := mpi.NewWorld(eng, mpi.QsNet(), mpi.Bounce, spaces)
	if err != nil {
		t.Fatal(err)
	}
	dest, _ := spaces[1].Mmap(64 * pageSize)
	tr, _ := New(eng, spaces[1], Options{Timeslice: des.Second})
	tr.AttachRank(w, 1)
	tr.Start()

	eng.Schedule(100*des.Millisecond, func() {
		w.Rank(1).Recv(0, 0, dest.Start(), nil)
		w.Rank(0).Send(1, 0, 3*pageSize, nil)
	})
	eng.Run(des.Second)
	ss := tr.Samples()
	if len(ss) != 1 {
		t.Fatalf("samples = %d", len(ss))
	}
	if ss[0].RecvBytes != 3*pageSize {
		t.Fatalf("RecvBytes = %d", ss[0].RecvBytes)
	}
	// Bounce copy writes must appear in the IWS.
	if ss[0].IWSPages != 3 {
		t.Fatalf("IWS = %d pages, want 3 (bounce copy not tracked)", ss[0].IWSPages)
	}
	// Bounce buffer itself must be excluded from protection.
	if w.BounceRegion(1).ProtectedPages() != 0 {
		t.Fatal("bounce buffer protected")
	}
	tr.Stop()
	// Hook restored after Stop.
	got := w.Rank(1).Stats().BytesReceived
	if got != 3*pageSize {
		t.Fatalf("stats after stop = %d", got)
	}
}

func TestOverheadAndSlowdown(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
	tr, _ := New(eng, sp, Options{
		Timeslice:            des.Second,
		FaultCost:            10 * des.Microsecond,
		ReprotectCostPerPage: des.Microsecond,
		AlarmFixedCost:       des.Millisecond,
	})
	r, _ := sp.Mmap(1000 * pageSize)
	tr.Start()
	eng.Schedule(100*des.Millisecond, func() {
		sp.WriteRange(r.Start(), 1000*pageSize)
	})
	eng.Run(des.Second)
	s := tr.Samples()[0]
	// Overhead charged to slice 0: Start's initial protection pass
	// (1ms + 1000 pages * 1us) + 1000 faults * 10us + the alarm's
	// re-protection pass (1ms + 1000 pages * 1us) = 14ms.
	want := 2*(des.Millisecond+1000*des.Microsecond) + 1000*10*des.Microsecond
	if s.Overhead != want {
		t.Fatalf("slice overhead = %v, want %v", s.Overhead, want)
	}
	if tr.TotalFaults() != 1000 {
		t.Fatalf("TotalFaults = %d", tr.TotalFaults())
	}
	// Slowdown over 1s of virtual time: 14ms → 1.4%.
	sd := tr.Slowdown()
	if sd < 0.0135 || sd > 0.0145 {
		t.Fatalf("Slowdown = %v", sd)
	}
}

func TestOnSampleAndWithoutSamples(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
	var seen int
	tr, _ := New(eng, sp, Options{Timeslice: des.Second, OnSample: func(Sample) { seen++ }})
	tr.WithoutSamples()
	tr.Start()
	eng.Run(5 * des.Second)
	if seen != 5 {
		t.Fatalf("OnSample fired %d times, want 5", seen)
	}
	if len(tr.Samples()) != 1 {
		t.Fatalf("retained %d samples, want 1 (latest only)", len(tr.Samples()))
	}
	if tr.Samples()[0].Index != 4 {
		t.Fatalf("latest sample index = %d", tr.Samples()[0].Index)
	}
}

func TestSeriesExports(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	r, _ := sp.Mmap(1000 * pageSize)
	tr.Start()
	eng.Schedule(100*des.Millisecond, func() { sp.WriteRange(r.Start(), 500*pageSize) })
	eng.Run(2 * des.Second)
	iws := tr.IWSSeries()
	ib := tr.IBSeries()
	fp := tr.FootprintSeries()
	rcv := tr.RecvSeries()
	if iws.Len() != 2 || ib.Len() != 2 || fp.Len() != 2 || rcv.Len() != 2 {
		t.Fatal("series lengths")
	}
	wantMB := 500 * pageSize / MB
	if iws.Points[0].V != wantMB {
		t.Fatalf("IWS[0] = %v MB, want %v", iws.Points[0].V, wantMB)
	}
	if ib.Points[0].V != wantMB {
		t.Fatalf("IB[0] = %v MB/s, want %v", ib.Points[0].V, wantMB)
	}
	if fp.Points[1].V != 1000*pageSize/MB {
		t.Fatalf("footprint = %v", fp.Points[1].V)
	}
	if iws.Points[1].V != 0 {
		t.Fatalf("IWS[1] = %v, want 0", iws.Points[1].V)
	}
}

func TestSampleIBZeroDuration(t *testing.T) {
	s := Sample{IWSBytes: 100}
	if s.IBytesPerSec() != 0 {
		t.Fatal("zero-duration sample must report 0 IB")
	}
}

// Property: for random write patterns, the IWS of each slice equals the
// number of distinct pages written in that slice (single region, no
// unmapping).
func TestPropertyIWSMatchesDistinctPages(t *testing.T) {
	f := func(seed uint64, nWrites uint8) bool {
		eng := des.NewEngine()
		sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
		const pages = 128
		r, _ := sp.Mmap(pages * pageSize)
		tr, _ := New(eng, sp, Options{Timeslice: des.Second})
		tr.Start()
		rng := rand.New(rand.NewPCG(seed, 11))
		nSlices := 3
		want := make([]map[uint64]bool, nSlices)
		for i := range want {
			want[i] = map[uint64]bool{}
		}
		for i := 0; i < int(nWrites%50)+1; i++ {
			slice := rng.IntN(nSlices)
			at := des.Time(slice)*des.Second + des.Time(rng.IntN(999)+1)*des.Millisecond
			start := uint64(rng.IntN(pages * pageSize))
			n := uint64(rng.IntN(4*pageSize) + 1)
			if start+n > pages*pageSize {
				n = pages*pageSize - start
			}
			if n == 0 {
				continue
			}
			eng.Schedule(at, func() { sp.WriteRange(r.Start()+start, n) })
			for p := start / pageSize; p <= (start+n-1)/pageSize; p++ {
				want[slice][p] = true
			}
		}
		eng.Run(des.Time(nSlices) * des.Second)
		ss := tr.Samples()
		if len(ss) != nSlices {
			return false
		}
		for i, s := range ss {
			if s.IWSPages != uint64(len(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: longer timeslices never increase total IWS volume for a fixed
// write pattern (page reuse can only collapse more writes together) —
// the monotonicity underlying Fig 2.
func TestPropertyIWSVolumeMonotoneInTimeslice(t *testing.T) {
	f := func(seed uint64) bool {
		volume := func(ts des.Time) uint64 {
			eng := des.NewEngine()
			sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
			const pages = 64
			r, _ := sp.Mmap(pages * pageSize)
			tr, _ := New(eng, sp, Options{Timeslice: ts})
			tr.Start()
			rng := rand.New(rand.NewPCG(seed, 13))
			for i := 0; i < 200; i++ {
				at := des.Time(rng.IntN(11900) + 1)
				start := uint64(rng.IntN(pages)) * pageSize
				eng.Schedule(at*des.Millisecond, func() {
					sp.WriteRange(r.Start()+start, pageSize)
				})
			}
			eng.Run(12 * des.Second)
			var total uint64
			for _, s := range tr.Samples() {
				total += s.IWSBytes
			}
			return total
		}
		v1 := volume(des.Second)
		v2 := volume(2 * des.Second)
		v4 := volume(4 * des.Second)
		return v1 >= v2 && v2 >= v4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrackerSweep(b *testing.B) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{Phantom: true})
	r, _ := sp.Mmap(256 * 1024 * 1024)
	tr, _ := New(eng, sp, Options{Timeslice: des.Second})
	tr.WithoutSamples()
	tr.Start()
	var t0 des.Time
	b.SetBytes(256 * 1024 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(t0+des.Millisecond, func() { sp.WriteRange(r.Start(), r.Size()) })
		t0 += des.Second
		eng.Run(t0)
	}
}

// TestSamplesNoAliasingWithoutRetention is the regression test for the
// keep-last-sample branch: a slice obtained from Samples() before a
// later alarm must not have its contents rewritten in place.
func TestSamplesNoAliasingWithoutRetention(t *testing.T) {
	eng, sp, tr := setup(t, des.Second)
	r, _ := sp.Mmap(100 * pageSize)
	tr.WithoutSamples()
	tr.Start()

	eng.Schedule(100*des.Millisecond, func() {
		if err := sp.WriteRange(r.Start(), 10*pageSize); err != nil {
			t.Error(err)
		}
	})
	var held []Sample
	eng.Schedule(1050*des.Millisecond, func() { held = tr.Samples() })
	eng.Schedule(1100*des.Millisecond, func() {
		if err := sp.WriteRange(r.Start(), 3*pageSize); err != nil {
			t.Error(err)
		}
	})
	eng.Run(2 * des.Second)
	tr.Stop()

	if len(held) != 1 || held[0].Index != 0 {
		t.Fatalf("held = %+v, want the slice-0 sample", held)
	}
	if held[0].IWSPages != 10 {
		t.Fatalf("held sample rewritten in place: IWSPages = %d, want 10", held[0].IWSPages)
	}
	cur := tr.Samples()
	if len(cur) != 1 || cur[0].Index == 0 {
		t.Fatalf("current samples = %+v, want only the latest", cur)
	}
}
