// Package tracker implements the paper's instrumentation library (§4): a
// user-transparent monitor that write-protects a process's data memory,
// records the pages dirtied in each checkpoint timeslice (the Incremental
// Working Set), re-protects everything at every timeslice alarm, and
// derives the Incremental Bandwidth required to save those pages.
//
// Correspondence with the real library:
//
//   - LD_PRELOAD + MPI_Init interception   → Tracker.Start
//   - mprotect(PROT_READ) over data memory → mem.AddressSpace.ProtectAllData
//   - SIGSEGV handler marking dirty pages  → the mem.FaultHandler installed here
//   - setitimer alarm per timeslice        → des.Ticker
//   - mmap/munmap interception             → mem.MapHook (memory exclusion, §4.2)
//   - network receive interception         → mpi delivery hook + bounce buffer
//
// The tracker also carries the paper's intrusiveness model (§6.5): each
// write fault and each alarm re-protection pass accrues a virtual CPU cost,
// from which the slowdown the paper reports (<10% at a 1 s timeslice) is
// derived.
package tracker

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/ckptspec"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// MB is the paper's megabyte (10^6 bytes), used for all reported sizes
// and bandwidths.
const MB = 1e6

// Options configures a Tracker.
type Options struct {
	// Timeslice is the checkpoint timeslice (required, > 0).
	Timeslice des.Time
	// FaultCost is the CPU cost charged per write fault (SIGSEGV
	// delivery, handler bookkeeping, mprotect of one page). The default
	// is 12 µs, calibrated so Sage-1000MB at a 1 s timeslice lands under
	// the paper's <10% slowdown (§6.5).
	FaultCost des.Time
	// ReprotectCostPerPage is the alarm-time cost per re-protected page.
	ReprotectCostPerPage des.Time
	// AlarmFixedCost is the fixed per-alarm cost (signal delivery,
	// bookkeeping, flushing the sample).
	AlarmFixedCost des.Time
	// OnSample, when set, observes each completed timeslice sample.
	OnSample func(Sample)

	keepSamples bool
}

// withDefaults fills zero fields with calibrated defaults.
func (o Options) withDefaults() Options {
	if o.FaultCost == 0 {
		o.FaultCost = 12 * des.Microsecond
	}
	if o.ReprotectCostPerPage == 0 {
		o.ReprotectCostPerPage = 400 * des.Nanosecond
	}
	if o.AlarmFixedCost == 0 {
		o.AlarmFixedCost = 200 * des.Microsecond
	}
	return o
}

// Sample is the measurement for one completed timeslice.
type Sample struct {
	// Index is the zero-based timeslice number.
	Index int
	// Start and End delimit the timeslice in virtual time.
	Start, End des.Time
	// IWSPages and IWSBytes give the Incremental Working Set: pages
	// written during the slice that are still mapped at the alarm.
	IWSPages uint64
	IWSBytes uint64
	// ExcludedBytes counts dirty pages that were unmapped before the
	// alarm and therefore dropped (memory exclusion, §4.2).
	ExcludedBytes uint64
	// FootprintBytes is the mapped data-memory size at the alarm.
	FootprintBytes uint64
	// RecvBytes is the message payload delivered during the slice
	// (Fig 1b's "data received").
	RecvBytes uint64
	// Faults is the number of write faults taken during the slice.
	Faults uint64
	// SilentDirtyBytes is the ground-truth IWS under-count at the
	// alarm: bytes of pages a Direct-mode NIC wrote while protected,
	// which the fault-driven IWS above therefore misses (§4.2).
	SilentDirtyBytes uint64
	// Overhead is the instrumentation CPU time accrued during the slice
	// (fault handling plus the alarm's re-protection pass).
	Overhead des.Time
}

// IBytesPerSec returns the sample's Incremental Bandwidth in bytes per
// virtual second.
func (s Sample) IBytesPerSec() float64 {
	dt := (s.End - s.Start).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(s.IWSBytes) / dt
}

// Tracker monitors one process (one address space / one MPI rank).
type Tracker struct {
	eng   *des.Engine
	space *mem.AddressSpace
	opts  Options

	dirty    map[*mem.Region]*bitset.Set
	excluded map[*mem.Region]bool // regions never protected (bounce buffers)

	// Single-entry fault cache: consecutive faults overwhelmingly hit the
	// same region (the sweep walks one arena), so the per-fault map lookup
	// is skipped while the region repeats.
	lastFaultR  *mem.Region
	lastFaultRS *bitset.Set

	ticker      *des.Ticker
	prevFault   mem.FaultHandler
	prevMap     mem.MapHook
	prevDeliver func(uint64, des.Time)
	rank        *mpi.Rank
	running     bool

	sliceStart    des.Time
	sliceFaults   uint64
	sliceRecv     uint64
	sliceExcluded uint64
	sliceOverhead des.Time

	samples       []Sample
	sampleCount   int
	totalOverhead des.Time
	totalFaults   uint64
	startAt       des.Time
}

// New creates a tracker for the given address space. Call Start to begin
// monitoring (the analogue of the library's MPI_Init interception).
func New(eng *des.Engine, space *mem.AddressSpace, opts Options) (*Tracker, error) {
	if opts.Timeslice <= 0 {
		return nil, fmt.Errorf("tracker: timeslice must be positive, got %v", opts.Timeslice)
	}
	o := opts.withDefaults()
	o.keepSamples = true
	return &Tracker{
		eng:      eng,
		space:    space,
		opts:     o,
		dirty:    make(map[*mem.Region]*bitset.Set),
		excluded: make(map[*mem.Region]bool),
	}, nil
}

// WithoutSamples disables sample retention (only the most recent sample is
// kept); OnSample still fires. Long parameter sweeps use this to bound
// memory.
func (t *Tracker) WithoutSamples() *Tracker {
	t.opts.keepSamples = false
	return t
}

// Exclude marks a region as never write-protected and never counted in
// the IWS. The MPI bounce buffer must be excluded: the paper's library
// keeps its network landing zone writable so the NIC can deposit messages
// (§4.2). Call before Start.
func (t *Tracker) Exclude(r *mem.Region) {
	if r != nil {
		t.excluded[r] = true
	}
}

// ApplySpec excludes every binding the spec classifies as recomputable
// — the regions the ckptset analysis proved are never read across an
// iteration boundary — and returns those bindings. The measured IWS
// then covers only the must-checkpoint set. Bindings absent from the
// spec stay protected; re-applying a spec is idempotent (Exclude of an
// already-excluded region is a no-op).
func (t *Tracker) ApplySpec(spec *ckptspec.Spec, bindings []ckptspec.Binding) []ckptspec.Binding {
	if spec == nil {
		return nil
	}
	ex := spec.Recomputable(bindings)
	for _, b := range ex {
		t.Exclude(b.Region)
	}
	return ex
}

// AttachRank subscribes the tracker to an MPI rank's payload deliveries
// for the data-received series (Fig 1b), and excludes the rank's bounce
// buffer when present. Call before Start.
func (t *Tracker) AttachRank(w *mpi.World, rankID int) {
	r := w.Rank(rankID)
	t.rank = r
	t.Exclude(w.BounceRegion(rankID))
	t.prevDeliver = r.SetDeliveryHook(func(b uint64, _ des.Time) {
		t.sliceRecv += b
	})
}

// Start write-protects all data memory, installs the fault and map hooks,
// and arms the timeslice alarm.
func (t *Tracker) Start() {
	if t.running {
		panic("tracker: already started")
	}
	t.running = true
	t.startAt = t.eng.Now()
	t.sliceStart = t.eng.Now()
	t.prevFault = t.space.SetFaultHandler(t.onFault)
	t.prevMap = t.space.SetMapHook(t.onMap)
	t.protectAll()
	t.ticker = t.eng.NewTicker(t.opts.Timeslice, t.onAlarm)
}

// Stop cancels the alarm, removes the hooks and unprotects all memory.
// The partial final timeslice is discarded, matching the paper's per-
// timeslice reporting.
func (t *Tracker) Stop() {
	if !t.running {
		return
	}
	t.running = false
	t.ticker.Stop()
	t.space.SetFaultHandler(t.prevFault)
	t.space.SetMapHook(t.prevMap)
	if t.rank != nil {
		t.rank.SetDeliveryHook(t.prevDeliver)
	}
	t.space.UnprotectAllData()
}

// Running reports whether the tracker is active.
func (t *Tracker) Running() bool { return t.running }

// protectAll write-protects every checkpointable region except exclusions,
// charging the re-protection cost, and returns the pages protected.
func (t *Tracker) protectAll() uint64 {
	var pages uint64
	for _, r := range t.space.Regions() {
		if !r.Kind().Checkpointable() || t.excluded[r] {
			continue
		}
		r.ProtectAll()
		pages += r.Pages()
	}
	cost := t.opts.AlarmFixedCost + des.Time(pages)*t.opts.ReprotectCostPerPage
	t.sliceOverhead += cost
	t.totalOverhead += cost
	return pages
}

// onFault is the SIGSEGV-handler analogue: mark the page dirty, unprotect
// it so subsequent writes in this timeslice proceed at full speed, and
// charge the fault cost. A previously installed handler (e.g. a
// checkpointer's) is chained afterwards so mechanisms can stack.
func (t *Tracker) onFault(f mem.Fault) {
	rs := t.lastFaultRS
	if f.Region != t.lastFaultR {
		rs = t.dirty[f.Region]
		if rs == nil {
			rs = &bitset.Set{}
			t.dirty[f.Region] = rs
		}
		t.lastFaultR, t.lastFaultRS = f.Region, rs
	}
	rs.Add(f.Region.PageIndex(f.Page))
	f.Region.SetProtected(f.Page, false)
	t.sliceFaults++
	t.totalFaults++
	t.sliceOverhead += t.opts.FaultCost
	t.totalOverhead += t.opts.FaultCost
	if t.prevFault != nil {
		t.prevFault(f)
	}
}

// onMap tracks region lifetime, mirroring the library's mmap/munmap
// interception (§4.1). A newly mapped region is write-protected
// immediately so its initialization writes are observed; dirty pages of an
// unmapped region are counted as excluded and dropped — they will never be
// needed again, the memory-exclusion optimisation of §4.2.
func (t *Tracker) onMap(r *mem.Region, mapped bool) {
	if mapped {
		if t.running && r.Kind().Checkpointable() && !t.excluded[r] {
			r.ProtectAll()
			cost := des.Time(r.Pages()) * t.opts.ReprotectCostPerPage
			t.sliceOverhead += cost
			t.totalOverhead += cost
		}
		if t.prevMap != nil {
			t.prevMap(r, mapped)
		}
		return // dirty state is created lazily on first fault
	}
	if rs, ok := t.dirty[r]; ok {
		t.sliceExcluded += rs.CountBelow(r.Pages()) * t.space.PageSize()
		delete(t.dirty, r)
	}
	if r == t.lastFaultR {
		t.lastFaultR, t.lastFaultRS = nil, nil
	}
	delete(t.excluded, r)
	if t.prevMap != nil {
		t.prevMap(r, mapped)
	}
}

// onAlarm is the timeslice boundary: snapshot the IWS, emit the sample,
// reset dirty state and re-protect everything.
func (t *Tracker) onAlarm(at des.Time) {
	ps := t.space.PageSize()
	var iwsPages uint64
	for r, rs := range t.dirty {
		if r.Dead() {
			delete(t.dirty, r) // defensive; onMap normally handles this
			continue
		}
		// Only pages within the region's *current* size count: a heap
		// that shrank since the writes leaves its tail excluded.
		iwsPages += rs.CountBelow(r.Pages())
		rs.Clear()
	}
	s := Sample{
		Index:          t.sampleCount,
		Start:          t.sliceStart,
		End:            at,
		IWSPages:       iwsPages,
		IWSBytes:       iwsPages * ps,
		ExcludedBytes:  t.sliceExcluded,
		FootprintBytes: t.space.Footprint(),
		RecvBytes:      t.sliceRecv,
		Faults:         t.sliceFaults,

		SilentDirtyBytes: t.space.SilentDirtyBytes(),
	}
	t.sampleCount++
	t.sliceStart = at
	t.sliceFaults = 0
	t.sliceRecv = 0
	t.sliceExcluded = 0
	t.protectAll()
	s.Overhead = t.sliceOverhead
	t.sliceOverhead = 0
	if t.opts.keepSamples {
		t.samples = append(t.samples, s)
	} else {
		// Fresh slice, not append(t.samples[:0], s): a caller holding a
		// slice from an earlier Samples() call must not see its contents
		// rewritten in place.
		t.samples = []Sample{s}
	}
	if t.opts.OnSample != nil {
		t.opts.OnSample(s)
	}
}

// Samples returns the retained samples.
func (t *Tracker) Samples() []Sample { return t.samples }

// TotalFaults returns the number of write faults taken since Start.
func (t *Tracker) TotalFaults() uint64 { return t.totalFaults }

// TotalOverhead returns the accumulated instrumentation CPU time.
func (t *Tracker) TotalOverhead() des.Time { return t.totalOverhead }

// Slowdown returns the modelled relative slowdown of the application due
// to instrumentation — overhead time divided by monitored virtual time —
// the quantity the paper bounds below 10% for a 1 s timeslice (§6.5).
func (t *Tracker) Slowdown() float64 {
	elapsed := t.eng.Now() - t.startAt
	if elapsed <= 0 {
		return 0
	}
	return t.totalOverhead.Seconds() / elapsed.Seconds()
}

// IWSSeries returns the per-timeslice IWS sizes in MB (Fig 1a).
func (t *Tracker) IWSSeries() *metrics.Series {
	s := &metrics.Series{Name: "IWS (MB)"}
	for _, smp := range t.samples {
		s.Add(smp.End.Seconds(), float64(smp.IWSBytes)/MB)
	}
	return s
}

// IBSeries returns the per-timeslice Incremental Bandwidth in MB/s.
func (t *Tracker) IBSeries() *metrics.Series {
	s := &metrics.Series{Name: "IB (MB/s)"}
	for _, smp := range t.samples {
		s.Add(smp.End.Seconds(), smp.IBytesPerSec()/MB)
	}
	return s
}

// RecvSeries returns the per-timeslice received data in MB (Fig 1b).
func (t *Tracker) RecvSeries() *metrics.Series {
	s := &metrics.Series{Name: "Data received (MB)"}
	for _, smp := range t.samples {
		s.Add(smp.End.Seconds(), float64(smp.RecvBytes)/MB)
	}
	return s
}

// FootprintSeries returns the per-timeslice mapped footprint in MB.
func (t *Tracker) FootprintSeries() *metrics.Series {
	s := &metrics.Series{Name: "Footprint (MB)"}
	for _, smp := range t.samples {
		s.Add(smp.End.Seconds(), float64(smp.FootprintBytes)/MB)
	}
	return s
}
