package tracker

import (
	"testing"

	"repro/internal/ckptspec"
	"repro/internal/des"
	"repro/internal/mem"
)

// TestApplySpecExcludesRecomputable is the tracker half of the ckptset
// regression: a spec-excluded region is never protected (its writes
// take no faults and never enter the IWS), and excluding an
// already-excluded region stays idempotent.
func TestApplySpecExcludesRecomputable(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: pageSize, Phantom: true})
	grid, _ := sp.Mmap(4 * pageSize)
	scratch, _ := sp.Mmap(2 * pageSize)
	tr, err := New(eng, sp, Options{Timeslice: des.Second})
	if err != nil {
		t.Fatal(err)
	}
	spec := &ckptspec.Spec{Package: "p", Regions: []ckptspec.Region{
		{Name: "K.grid", Class: ckptspec.Must, Reason: "live"},
		{Name: "K.scratch", Class: ckptspec.Recomputable, Reason: "scratch"},
	}}
	bindings := []ckptspec.Binding{
		{Name: "K.grid", Region: grid},
		{Name: "K.scratch", Region: scratch},
	}
	ex := tr.ApplySpec(spec, bindings)
	if len(ex) != 1 || ex[0].Region != scratch {
		t.Fatalf("ApplySpec excluded %+v, want just K.scratch", ex)
	}
	// Idempotent: applying again (Exclude of an excluded region) is a
	// no-op with the same result.
	if ex2 := tr.ApplySpec(spec, bindings); len(ex2) != 1 || ex2[0].Region != scratch {
		t.Fatalf("re-apply = %+v", ex2)
	}
	if got := tr.ApplySpec(nil, bindings); got != nil {
		t.Fatalf("nil spec excluded %+v", got)
	}

	tr.Start()
	eng.Schedule(100*des.Millisecond, func() {
		if err := sp.WriteRange(grid.Start(), 4*pageSize); err != nil {
			t.Error(err)
		}
		if err := sp.WriteRange(scratch.Start(), 2*pageSize); err != nil {
			t.Error(err)
		}
	})
	eng.Run(2 * des.Second)
	tr.Stop()

	ss := tr.Samples()
	if len(ss) == 0 {
		t.Fatal("no samples")
	}
	// Only the grid's pages fault into the IWS; the scratch region was
	// never protected.
	if ss[0].IWSPages != 4 || ss[0].Faults != 4 {
		t.Fatalf("IWS = %d pages, %d faults; want 4, 4", ss[0].IWSPages, ss[0].Faults)
	}
}
