package bitset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Has(0) || s.Has(1000) {
		t.Fatal("zero value not empty")
	}
	s.Add(3)
	s.Add(64)
	s.Add(64) // duplicate
	s.Add(129)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(3) || !s.Has(64) || !s.Has(129) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	s.Remove(64)
	s.Remove(9999) // absent, no-op
	if s.Len() != 2 || s.Has(64) {
		t.Fatal("Remove failed")
	}
}

func TestCountBelow(t *testing.T) {
	var s Set
	for _, i := range []uint64{0, 5, 63, 64, 65, 200} {
		s.Add(i)
	}
	cases := map[uint64]uint64{0: 0, 1: 1, 6: 2, 64: 3, 65: 4, 66: 5, 201: 6, 1000: 6}
	for limit, want := range cases {
		if got := s.CountBelow(limit); got != want {
			t.Errorf("CountBelow(%d) = %d, want %d", limit, got, want)
		}
	}
}

func TestForEachOrder(t *testing.T) {
	var s Set
	in := []uint64{200, 3, 64, 5}
	for _, i := range in {
		s.Add(i)
	}
	var got []uint64
	s.ForEach(func(i uint64) bool { got = append(got, i); return true })
	want := []uint64{3, 5, 64, 200}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	var s Set
	for i := uint64(0); i < 100; i++ {
		s.Add(i)
	}
	n := 0
	s.ForEach(func(uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestForEachBelow(t *testing.T) {
	var s Set
	for _, i := range []uint64{1, 70, 130} {
		s.Add(i)
	}
	var got []uint64
	s.ForEachBelow(130, func(i uint64) bool { got = append(got, i); return true })
	if len(got) != 2 || got[0] != 1 || got[1] != 70 {
		t.Fatalf("ForEachBelow = %v", got)
	}
}

func TestClearClone(t *testing.T) {
	var s Set
	s.Add(7)
	c := s.Clone()
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear failed")
	}
	if c.Len() != 1 || !c.Has(7) {
		t.Fatal("Clone not independent")
	}
	c.Add(9)
	if s.Has(9) {
		t.Fatal("Clone shares storage")
	}
}

// Property: Set agrees with a reference map under random operations.
func TestPropertyModelEquivalence(t *testing.T) {
	f := func(seed uint64, nOps uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		var s Set
		ref := map[uint64]bool{}
		for i := 0; i < int(nOps%500); i++ {
			x := uint64(rng.IntN(1024))
			switch rng.IntN(3) {
			case 0:
				s.Add(x)
				ref[x] = true
			case 1:
				s.Remove(x)
				delete(ref, x)
			case 2:
				if s.Has(x) != ref[x] {
					return false
				}
			}
		}
		if s.Len() != uint64(len(ref)) {
			return false
		}
		n := 0
		ok := true
		s.ForEach(func(i uint64) bool {
			if !ref[i] {
				ok = false
			}
			n++
			return true
		})
		return ok && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddDense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Set
		for j := uint64(0); j < 4096; j++ {
			s.Add(j)
		}
	}
}
