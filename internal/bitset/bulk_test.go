package bitset

import (
	"math/rand/v2"
	"testing"
)

// randomSet fills a set with n random elements below limit and returns
// the element slice for model comparison.
func randomSet(rng *rand.Rand, n int, limit uint64) *Set {
	s := &Set{}
	for i := 0; i < n; i++ {
		s.Add(rng.Uint64N(limit))
	}
	return s
}

// TestPropertyBulkOpsMatchPerBit checks each word-level bulk operation
// against the obvious per-bit loop over the same inputs.
func TestPropertyBulkOpsMatchPerBit(t *testing.T) {
	const limit = 1000
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewPCG(7, uint64(trial)))
		a := randomSet(rng, 200, limit)
		b := randomSet(rng, 200, limit)

		union := a.Clone()
		union.UnionWith(b)
		diff := a.Clone()
		diff.AndNotWith(b)
		inter := a.Clone()
		inter.IntersectWith(b)

		for i := uint64(0); i < limit; i++ {
			if want := a.Has(i) || b.Has(i); union.Has(i) != want {
				t.Fatalf("trial %d: UnionWith wrong at %d", trial, i)
			}
			if want := a.Has(i) && !b.Has(i); diff.Has(i) != want {
				t.Fatalf("trial %d: AndNotWith wrong at %d", trial, i)
			}
			if want := a.Has(i) && b.Has(i); inter.Has(i) != want {
				t.Fatalf("trial %d: IntersectWith wrong at %d", trial, i)
			}
		}
		if union.Count() != union.Len() {
			t.Fatalf("Count != Len")
		}
		if a.Any() != (a.Len() > 0) {
			t.Fatalf("Any disagrees with Len")
		}
	}
}

// TestPropertyNextSetMatchesForEach checks the iterator visits exactly
// the ForEach order.
func TestPropertyNextSetMatchesForEach(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewPCG(11, uint64(trial)))
		s := randomSet(rng, int(rng.Uint64N(300)), 2000)

		var want []uint64
		s.ForEach(func(i uint64) bool { want = append(want, i); return true })

		var got []uint64
		for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: NextSet visited %d, ForEach %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestNextSetRemoveDuringIteration pins the contract finishDrain relies
// on: removing the current element mid-loop must not derail the scan.
func TestNextSetRemoveDuringIteration(t *testing.T) {
	s := &Set{}
	for _, i := range []uint64{0, 1, 63, 64, 65, 127, 128, 500} {
		s.Add(i)
	}
	var got []uint64
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		got = append(got, i)
		s.Remove(i)
	}
	want := []uint64{0, 1, 63, 64, 65, 127, 128, 500}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
	if s.Any() {
		t.Fatal("set should be empty after remove-during-iteration sweep")
	}
}

// TestPropertyCloneBelow checks CloneBelow against ForEachBelow+Add.
func TestPropertyCloneBelow(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewPCG(13, uint64(trial)))
		s := randomSet(rng, 300, 2000)
		limit := rng.Uint64N(2100) // sometimes past the set's extent

		got := s.CloneBelow(limit)
		want := &Set{}
		s.ForEachBelow(limit, func(i uint64) bool { want.Add(i); return true })

		if got.Len() != want.Len() {
			t.Fatalf("trial %d limit %d: CloneBelow has %d elements, want %d",
				trial, limit, got.Len(), want.Len())
		}
		want.ForEach(func(i uint64) bool {
			if !got.Has(i) {
				t.Fatalf("trial %d limit %d: CloneBelow missing %d", trial, limit, i)
			}
			return true
		})
		// Independence: mutating the clone must not touch the source.
		before := s.Len()
		got.Clear()
		if s.Len() != before {
			t.Fatalf("trial %d: CloneBelow aliases the source", trial)
		}
	}
}

// TestZeroAllocBulkOps pins the allocation-free property of the word
// loops on pre-sized sets.
func TestZeroAllocBulkOps(t *testing.T) {
	a, b := &Set{}, &Set{}
	for i := uint64(0); i < 4096; i += 3 {
		a.Add(i)
	}
	for i := uint64(0); i < 4096; i += 5 {
		b.Add(i)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"UnionWith", func() { a.UnionWith(b) }},
		{"AndNotWith", func() { a.AndNotWith(b) }},
		{"IntersectWith", func() { a.IntersectWith(b) }},
		{"Count", func() { _ = a.Count() }},
		{"Any", func() { _ = a.Any() }},
		{"CountBelow", func() { _ = a.CountBelow(1000) }},
		{"NextSetSweep", func() {
			for i, ok := a.NextSet(0); ok; i, ok = a.NextSet(i + 1) {
			}
		}},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(100, c.fn); allocs != 0 {
			t.Errorf("%s allocates %v/op, want 0", c.name, allocs)
		}
	}
}

func BenchmarkNextSetSweep(b *testing.B) {
	s := &Set{}
	for i := uint64(0); i < 1<<18; i += 7 {
		s.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var count int
		for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
			count++
		}
		if count == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkForEachSweep(b *testing.B) {
	s := &Set{}
	for i := uint64(0); i < 1<<18; i += 7 {
		s.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var count int
		s.ForEach(func(uint64) bool { count++; return true })
		if count == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkUnionWith(b *testing.B) {
	x, y := &Set{}, &Set{}
	for i := uint64(0); i < 1<<18; i += 3 {
		x.Add(i)
	}
	for i := uint64(0); i < 1<<18; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		x.UnionWith(y)
	}
}
