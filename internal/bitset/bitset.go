// Package bitset provides a growable bitmap used for page-granular dirty
// tracking by the tracker and the checkpointer.
package bitset

import "math/bits"

// Set is a growable set of uint64 indexes. The zero value is an empty set.
type Set struct {
	words []uint64
}

// Add inserts i, growing the set as needed.
func (s *Set) Add(i uint64) {
	w := i / 64
	for uint64(len(s.words)) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (i % 64)
}

// Has reports whether i is in the set.
func (s *Set) Has(i uint64) bool {
	w := i / 64
	return w < uint64(len(s.words)) && s.words[w]&(1<<(i%64)) != 0
}

// Remove deletes i. Removing an absent element is a no-op.
func (s *Set) Remove(i uint64) {
	w := i / 64
	if w < uint64(len(s.words)) {
		s.words[w] &^= 1 << (i % 64)
	}
}

// Len returns the number of elements.
func (s *Set) Len() uint64 {
	var n uint64
	for _, w := range s.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// CountBelow returns the number of elements strictly less than limit.
func (s *Set) CountBelow(limit uint64) uint64 {
	var n uint64
	full := limit / 64
	for i := uint64(0); i < full && i < uint64(len(s.words)); i++ {
		n += uint64(bits.OnesCount64(s.words[i]))
	}
	if rem := limit % 64; rem != 0 && full < uint64(len(s.words)) {
		n += uint64(bits.OnesCount64(s.words[full] & ((1 << rem) - 1)))
	}
	return n
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// ForEach calls fn for each element in ascending order until fn returns
// false.
func (s *Set) ForEach(fn func(uint64) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			if !fn(uint64(wi)*64 + b) {
				return
			}
			w &^= 1 << b
		}
	}
}

// ForEachBelow is ForEach restricted to elements strictly below limit.
func (s *Set) ForEachBelow(limit uint64, fn func(uint64) bool) {
	s.ForEach(func(i uint64) bool {
		if i >= limit {
			return false
		}
		return fn(i)
	})
}
