// Package bitset provides a growable bitmap used for page-granular dirty
// tracking by the tracker and the checkpointer.
package bitset

import "math/bits"

// Set is a growable set of uint64 indexes. The zero value is an empty set.
type Set struct {
	words []uint64
}

// Add inserts i, growing the set as needed.
func (s *Set) Add(i uint64) {
	w := i / 64
	for uint64(len(s.words)) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (i % 64)
}

// Has reports whether i is in the set.
func (s *Set) Has(i uint64) bool {
	w := i / 64
	return w < uint64(len(s.words)) && s.words[w]&(1<<(i%64)) != 0
}

// Remove deletes i. Removing an absent element is a no-op.
func (s *Set) Remove(i uint64) {
	w := i / 64
	if w < uint64(len(s.words)) {
		s.words[w] &^= 1 << (i % 64)
	}
}

// Len returns the number of elements.
func (s *Set) Len() uint64 {
	var n uint64
	for _, w := range s.words {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// CountBelow returns the number of elements strictly less than limit.
func (s *Set) CountBelow(limit uint64) uint64 {
	var n uint64
	full := limit / 64
	for i := uint64(0); i < full && i < uint64(len(s.words)); i++ {
		n += uint64(bits.OnesCount64(s.words[i]))
	}
	if rem := limit % 64; rem != 0 && full < uint64(len(s.words)) {
		n += uint64(bits.OnesCount64(s.words[full] & ((1 << rem) - 1)))
	}
	return n
}

// Count is Len: the number of elements, one OnesCount64 per word.
func (s *Set) Count() uint64 { return s.Len() }

// Any reports whether the set is non-empty without counting it.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// UnionWith adds every element of o to s, word at a time.
func (s *Set) UnionWith(o *Set) {
	for uint64(len(s.words)) < uint64(len(o.words)) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// AndNotWith removes every element of o from s (s = s \ o), word at a
// time.
func (s *Set) AndNotWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// IntersectWith keeps only elements present in both sets (s = s ∩ o).
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// NextSet returns the smallest element ≥ from, scanning whole zero words
// in one step. ok is false when no such element exists. It is the
// allocation-free replacement for ForEach callbacks on hot paths:
//
//	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) { ... }
//
// Removing the current element (or any element ≤ i) during the loop is
// safe: the scan never revisits positions below the cursor.
func (s *Set) NextSet(from uint64) (uint64, bool) {
	w := from / 64
	if w >= uint64(len(s.words)) {
		return 0, false
	}
	if v := s.words[w] >> (from % 64); v != 0 {
		return from + uint64(bits.TrailingZeros64(v)), true
	}
	for w++; w < uint64(len(s.words)); w++ {
		if v := s.words[w]; v != 0 {
			return w*64 + uint64(bits.TrailingZeros64(v)), true
		}
	}
	return 0, false
}

// CloneBelow returns an independent copy containing only the elements
// strictly below limit — the word-level form of the clone-then-truncate
// snapshot the checkpointers take at a trigger.
func (s *Set) CloneBelow(limit uint64) *Set {
	n := (limit + 63) / 64
	if n > uint64(len(s.words)) {
		n = uint64(len(s.words))
	}
	c := &Set{words: append([]uint64(nil), s.words[:n]...)}
	if rem := limit % 64; rem != 0 && limit/64 < uint64(len(c.words)) {
		c.words[limit/64] &= (1 << rem) - 1
	}
	return c
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// ForEach calls fn for each element in ascending order until fn returns
// false.
func (s *Set) ForEach(fn func(uint64) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			if !fn(uint64(wi)*64 + b) {
				return
			}
			w &^= 1 << b
		}
	}
}

// ForEachBelow is ForEach restricted to elements strictly below limit.
func (s *Set) ForEachBelow(limit uint64, fn func(uint64) bool) {
	s.ForEach(func(i uint64) bool {
		if i >= limit {
			return false
		}
		return fn(i)
	})
}
