package ckptstore

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/storage"
)

// newTestService builds a 3-replica service over MemStores with fast
// defaults suitable for unit tests. Returns the service, its engine,
// and the raw replicas for inspection.
func newTestService(t *testing.T, mutate func(*Config)) (*Service, *des.Engine, []*storage.MemStore) {
	t.Helper()
	eng := des.NewEngine()
	mems := []*storage.MemStore{storage.NewMemStore(), storage.NewMemStore(), storage.NewMemStore()}
	cfg := Config{
		Engine:   eng,
		Replicas: []storage.Store{mems[0], mems[1], mems[2]},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, eng, mems
}

func TestServiceBasicOpsThroughFrames(t *testing.T) {
	svc, _, mems := newTestService(t, nil)
	c := svc.Client(1)
	if err := c.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q", got)
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	n, err := c.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("Size = %d, want 9", n)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	// Quorum-replicated: every replica holds the surviving key.
	for i, m := range mems {
		if _, err := m.Get("b"); err != nil {
			t.Fatalf("replica %d missing quorum write: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.SyncAcks != 2 || st.QuorumFailures != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if svc.Mode() != ModeSync {
		t.Fatalf("mode = %v, want sync", svc.Mode())
	}
}

func TestServiceDegradesToAsyncAndDrains(t *testing.T) {
	svc, eng, mems := newTestService(t, nil)
	c := svc.Client(0)
	// Take two followers out: writes land on the leader only — under
	// quorum, so the service must journal the debt and ack async.
	svc.Crash(1)
	svc.Crash(2)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("under-quorum put must still ack: %v", err)
	}
	st := svc.Stats()
	if st.AsyncAcks != 1 || st.QuorumFailures != 1 {
		t.Fatalf("stats after degraded put: %+v", st)
	}
	if svc.Mode() != ModeAsync {
		t.Fatalf("mode = %v, want async", svc.Mode())
	}
	// The acked value is readable while degraded (served from journal).
	if got, err := c.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("degraded Get = %q, %v", got, err)
	}
	// Heal the followers; the next drain tick retires the debt.
	svc.Heal(1)
	svc.Heal(2)
	eng.Run(eng.Now() + des.Second)
	if _, err := mems[2].Get("k"); err != nil {
		t.Fatalf("drain did not replicate journaled write: %v", err)
	}
	st = svc.Stats()
	if st.DrainedBytes != 1 {
		t.Fatalf("DrainedBytes = %d, want 1", st.DrainedBytes)
	}
	if svc.Mode() != ModeSync {
		t.Fatalf("mode after drain = %v, want sync", svc.Mode())
	}
}

func TestServiceSpillsWhenAllReplicasDown(t *testing.T) {
	svc, _, _ := newTestService(t, nil)
	for i := 0; i < 3; i++ {
		svc.Crash(i)
	}
	c := svc.Client(0)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("spill-mode put must ack: %v", err)
	}
	if st := svc.Stats(); st.SpillAcks == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if got, err := c.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("spill Get = %q, %v", got, err)
	}
}

func TestServiceRefusesWhenSpillFull(t *testing.T) {
	svc, _, _ := newTestService(t, func(c *Config) { c.SpillCapacity = 8 })
	for i := 0; i < 3; i++ {
		svc.Crash(i)
	}
	c := svc.Client(0)
	if err := c.Put("a", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	err := c.Put("b", []byte("x"))
	if !errors.Is(err, storage.ErrOverload) {
		t.Fatalf("full spill journal: %v, want ErrOverload", err)
	}
	if !storage.IsTransient(err) {
		t.Fatal("spill refusal must stay retryable")
	}
}

func TestServiceAdmissionBudget(t *testing.T) {
	svc, _, _ := newTestService(t, func(c *Config) {
		c.InFlightBudget = 100
		c.ClientShare = 1.0
	})
	c := svc.Client(0)
	if err := c.Put("a", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	// The engine has not run, so the first put's bytes are still in
	// flight: the second must be shed.
	err := c.Put("b", make([]byte, 80))
	if !errors.Is(err, storage.ErrOverload) || !storage.IsTransient(err) {
		t.Fatalf("over-budget put: %v, want retryable ErrOverload", err)
	}
	if st := svc.Stats(); st.OverloadSheds != 1 {
		t.Fatalf("OverloadSheds = %d", st.OverloadSheds)
	}
}

func TestServicePerClientFairness(t *testing.T) {
	svc, _, _ := newTestService(t, func(c *Config) {
		c.InFlightBudget = 1000
		c.ClientShare = 0.1 // 100 bytes per client
	})
	hog, other := svc.Client(1), svc.Client(2)
	if err := hog.Put("a", make([]byte, 90)); err != nil {
		t.Fatal(err)
	}
	if err := hog.Put("b", make([]byte, 90)); !errors.Is(err, storage.ErrOverload) {
		t.Fatalf("hog's second put: %v, want ErrOverload", err)
	}
	// Global budget still has room: another client is not punished for
	// the hog's appetite.
	if err := other.Put("c", make([]byte, 90)); err != nil {
		t.Fatalf("victim client shed too: %v", err)
	}
	if st := svc.Stats(); st.FairnessSheds != 1 {
		t.Fatalf("FairnessSheds = %d", st.FairnessSheds)
	}
}

func TestServiceDeadlineRefusal(t *testing.T) {
	// A slow replica model makes a large put's completion exceed the
	// deadline; the service must refuse it up front, permanently.
	svc, _, _ := newTestService(t, func(c *Config) {
		c.OpDeadline = des.Millisecond
		c.ReplicaModel = storage.Model{Name: "slow", Latency: 0, Bandwidth: 1e6} // 1 MB/s
	})
	c := svc.Client(0)
	err := c.Put("big", make([]byte, 1<<20)) // ~1 s of device time
	if !errors.Is(err, storage.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if storage.IsTransient(err) {
		t.Fatal("deadline refusal must be permanent")
	}
	if st := svc.Stats(); st.DeadlineRefusals != 1 || st.AckedPuts != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// A small put fits and still goes through.
	if err := c.Put("small", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
}

func TestServiceBatchingAndCoalescing(t *testing.T) {
	svc, eng, _ := newTestService(t, func(c *Config) { c.BatchWindow = 10 * des.Millisecond })
	a, b := svc.Client(1), svc.Client(2)
	// Three puts inside one window: one batch; the duplicate key is
	// write-coalesced.
	if err := a.Put("x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("y", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", st.Batches)
	}
	if st.CoalescedPuts != 1 {
		t.Fatalf("CoalescedPuts = %d, want 1", st.CoalescedPuts)
	}
	// After the window closes, a new put opens a new batch.
	eng.Run(eng.Now() + 20*des.Millisecond)
	if err := a.Put("z", []byte("u")); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", st.Batches)
	}
}

func TestServiceLeaderFailover(t *testing.T) {
	svc, eng, _ := newTestService(t, nil)
	c := svc.Client(0)
	// Give follower 2 more applied ops than follower 1 by writing while
	// all are up, then make follower 1 miss a write.
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	svc.Crash(1)
	if err := c.Put("b", []byte("2")); err != nil { // lands on 0 and 2 only
		t.Fatal(err)
	}
	svc.Heal(1)
	svc.CrashLeader()
	if svc.Mode() != ModeSpill {
		t.Fatalf("mode during promotion = %v, want spill", svc.Mode())
	}
	// Writes during promotion spill and still ack.
	if err := c.Put("c", []byte("3")); err != nil {
		t.Fatalf("put during promotion: %v", err)
	}
	eng.Run(eng.Now() + des.Second)
	st := svc.Stats()
	if st.LeaderCrashes != 1 || st.Failovers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Freshest follower wins: replica 2 (applied 2) over replica 1
	// (applied 1).
	if svc.Leader() != 2 {
		t.Fatalf("Leader = %d, want 2 (freshest)", svc.Leader())
	}
	// Nothing acked was lost across the failover.
	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.Get(k); err != nil {
			t.Fatalf("acked key %q lost in failover: %v", k, err)
		}
	}
}

func TestServiceCrashDuringPromotion(t *testing.T) {
	svc, eng, _ := newTestService(t, func(c *Config) { c.PromotionTime = 100 * des.Millisecond })
	c := svc.Client(0)
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	svc.CrashLeader()
	// The would-be successor dies inside the promotion window; the
	// protocol must re-run the election and pick the survivor.
	eng.After(50*des.Millisecond, func() { svc.Crash(2) })
	eng.Run(eng.Now() + des.Second)
	if svc.Leader() != 1 {
		t.Fatalf("Leader = %d, want 1 (the survivor)", svc.Leader())
	}
	if st := svc.Stats(); st.Failovers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := c.Get("a"); err != nil {
		t.Fatalf("acked key lost: %v", err)
	}
}

func TestServicePromotionRestartsWhenNoSurvivor(t *testing.T) {
	svc, eng, _ := newTestService(t, func(c *Config) { c.PromotionTime = 100 * des.Millisecond })
	for i := 0; i < 3; i++ {
		svc.Crash(i)
	}
	eng.Run(eng.Now() + 350*des.Millisecond)
	if st := svc.Stats(); st.PromotionRestarts == 0 {
		t.Fatalf("promotion should re-arm with no survivor: %+v", st)
	}
	// A heal lets the stalled election complete.
	svc.Heal(1)
	eng.Run(eng.Now() + 300*des.Millisecond)
	if svc.Leader() != 1 {
		t.Fatalf("Leader = %d, want 1 after heal", svc.Leader())
	}
}

// writeChain stores a verifiable checkpoint chain for rank through the
// given store: a full base at seq 1 and incrementals after it.
func writeChain(t *testing.T, store storage.Store, rank int, upto uint64) {
	t.Helper()
	const pageSize = 64
	for seq := uint64(1); seq <= upto; seq++ {
		kind := ckpt.Incremental
		if seq == 1 {
			kind = ckpt.Full
		}
		seg := &ckpt.Segment{
			Rank: rank, Seq: seq, Epoch: 1, Kind: kind, PageSize: pageSize,
			Regions: []ckpt.RegionInfo{{Start: 0, Size: pageSize}},
			Pages:   []ckpt.PageRecord{{Addr: 0, Data: bytes.Repeat([]byte{byte(seq)}, pageSize)}},
		}
		if err := store.Put(ckpt.SegmentKey(rank, seq), seg.Encode()); err != nil {
			t.Fatalf("rank %d seq %d: %v", rank, seq, err)
		}
	}
}

func TestServiceRecoveryLineWithRealSegments(t *testing.T) {
	svc, _, _ := newTestService(t, nil)
	const ranks = 2
	// Write verifiable incremental chains through per-rank clients.
	for rank := 0; rank < ranks; rank++ {
		writeChain(t, svc.Client(uint32(rank)), rank, 3)
	}
	seq, ok, err := svc.RecoveryLine(ranks)
	if err != nil || !ok || seq != 3 {
		t.Fatalf("RecoveryLine = %d, %v, %v; want 3, true, nil", seq, ok, err)
	}
	// VerifyChain against the service view: every rank's chain is whole.
	for rank := 0; rank < ranks; rank++ {
		if err := ckpt.VerifyChain(svc.View(), rank, seq); err != nil {
			t.Fatalf("VerifyChain rank %d: %v", rank, err)
		}
	}
}

func TestServiceDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, []des.Time, []Transition, int) {
		svc, eng, _ := newTestService(t, func(c *Config) { c.PromotionTime = 100 * des.Millisecond })
		clients := []*Client{svc.Client(0), svc.Client(1), svc.Client(2), svc.Client(3)}
		tick := eng.NewTicker(5*des.Millisecond, func(at des.Time) {
			for i, c := range clients {
				key := fmt.Sprintf("rank%03d/seg%06d", i, uint64(at)/uint64(5*des.Millisecond))
				_ = c.Put(key, bytes.Repeat([]byte{byte(i)}, 4096))
			}
		})
		eng.Schedule(50*des.Millisecond, svc.CrashLeader)
		svc.PartitionFollower(1, 120*des.Millisecond, 220*des.Millisecond)
		eng.Run(500 * des.Millisecond)
		tick.Stop()
		return svc.Stats(), svc.PutLatencies(), svc.Transitions(), svc.Leader()
	}
	s1, l1, t1, lead1 := run()
	s2, l2, t2, lead2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("put latencies differ across identical runs")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("mode transitions differ across identical runs")
	}
	if lead1 != lead2 {
		t.Fatalf("leaders differ: %d vs %d", lead1, lead2)
	}
	if s1.Failovers == 0 || s1.AckedPuts == 0 {
		t.Fatalf("scenario too quiet to be meaningful: %+v", s1)
	}
}
