// Package ckptstore is a deterministic, simulated checkpoint-store
// service: a leader/follower replication group fronted by an admission
// controller, running entirely on internal/des virtual time. Many
// clients (one per rank) speak a small binary frame protocol to a
// frontend that batches and write-coalesces segment Puts, replicates
// them to followers via quorum writes, sheds load with typed overload
// errors when saturated, degrades gracefully as replicas fail
// (sync-replicate → async-replicate → local-spill → refuse), and
// promotes the freshest follower when the leader crashes — resuming
// from the last quorum-acknowledged segment with ckpt.VerifyChain
// choosing the recovery line.
//
// The service exposes storage.Store through Client, so every existing
// consumer — the autonomic supervisor, two-phase commit, the chaos
// driver, ResilientStore retries — composes unchanged.
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/storage"
)

// ErrBadFrame reports a service frame that does not parse: wrong magic,
// unknown version or op, truncated fields, or trailing bytes.
var ErrBadFrame = errors.New("ckptstore: malformed service frame")

// frameMagic opens every service frame ("CKSF": ChecKpoint Service
// Frame).
const frameMagic = "CKSF"

// frameVersion is the only wire version this codec accepts.
const frameVersion = 1

// Frame kinds.
const (
	// KindRequest marks a client→service frame.
	KindRequest = 0
	// KindResponse marks a service→client frame.
	KindResponse = 1
)

// Op identifies the storage operation a frame carries.
type Op uint8

// Service operations, one per storage.Store method.
const (
	OpPut Op = iota + 1
	OpGet
	OpDelete
	OpKeys
	OpSize
)

// String implements fmt.Stringer for diagnostics.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpKeys:
		return "keys"
	case OpSize:
		return "size"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the outcome code carried by response frames. It is the wire
// projection of the storage error taxonomy: clients map it back to the
// sentinel errors with Err, so errors.Is classification survives the
// round trip through the service.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusCorrupt
	StatusUnavailable
	StatusTransient
	StatusOverload
	StatusDeadline
)

// statusOf maps a storage-taxonomy error to its wire status. Overload
// must be checked before the generic transient class: ErrOverload wraps
// ErrTransient, and the more specific label is the one backpressure
// telemetry needs.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, storage.ErrOverload):
		return StatusOverload
	case errors.Is(err, storage.ErrDeadlineExceeded):
		return StatusDeadline
	case errors.Is(err, storage.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, storage.ErrCorrupt):
		return StatusCorrupt
	case errors.Is(err, storage.ErrTransient):
		return StatusTransient
	default:
		return StatusUnavailable
	}
}

// Err maps a wire status back to the storage error taxonomy, preserving
// the classification the service computed: overload stays transient
// (retryable), deadline stays permanent.
func (st Status) Err(op Op, key string) error {
	switch st {
	case StatusOK:
		return nil
	case StatusNotFound:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrNotFound)
	case StatusCorrupt:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrCorrupt)
	case StatusTransient:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrTransient)
	case StatusOverload:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrOverload)
	case StatusDeadline:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrDeadlineExceeded)
	default:
		return fmt.Errorf("ckptstore: %s %q: %w", op, key, storage.ErrUnavailable)
	}
}

// Frame is one request or response on the client↔service wire.
//
// Layout (little-endian, fixed header then two length-prefixed fields):
//
//	magic    [4]byte  "CKSF"
//	version  uint8    1
//	kind     uint8    0 = request, 1 = response
//	op       uint8    OpPut..OpSize
//	status   uint8    response outcome (0 in requests)
//	client   uint32   issuing client id
//	id       uint64   per-client request sequence number
//	deadline int64    virtual-time deadline in ns (0 = none; >= 0)
//	keylen   uint16   + key bytes
//	paylen   uint32   + payload bytes
//
// The codec is canonical: for every frame Decode accepts,
// Encode(Decode(b)) reproduces b byte-for-byte (the fuzz invariant).
type Frame struct {
	Kind     uint8
	Op       Op
	Status   Status
	Client   uint32
	ID       uint64
	Deadline des.Time
	Key      string
	Payload  []byte
}

// frameHeaderLen is the fixed-size prefix before the two variable
// fields: magic(4) ver(1) kind(1) op(1) status(1) client(4) id(8)
// deadline(8) keylen(2) paylen(4).
const frameHeaderLen = 4 + 1 + 1 + 1 + 1 + 4 + 8 + 8 + 2 + 4

// Encode serialises the frame.
func (f *Frame) Encode() []byte {
	out := make([]byte, 0, frameHeaderLen+len(f.Key)+len(f.Payload))
	out = append(out, frameMagic...)
	out = append(out, frameVersion, f.Kind, uint8(f.Op), uint8(f.Status))
	out = binary.LittleEndian.AppendUint32(out, f.Client)
	out = binary.LittleEndian.AppendUint64(out, f.ID)
	out = binary.LittleEndian.AppendUint64(out, uint64(f.Deadline))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(f.Key)))
	out = append(out, f.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Payload)))
	out = append(out, f.Payload...)
	return out
}

// DecodeFrame parses one frame, rejecting anything Encode could not
// have produced.
func DecodeFrame(b []byte) (*Frame, error) {
	if len(b) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadFrame, len(b), frameHeaderLen)
	}
	if string(b[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[:4])
	}
	if b[4] != frameVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadFrame, b[4])
	}
	f := &Frame{Kind: b[5], Op: Op(b[6]), Status: Status(b[7])}
	if f.Kind != KindRequest && f.Kind != KindResponse {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, f.Kind)
	}
	if f.Op < OpPut || f.Op > OpSize {
		return nil, fmt.Errorf("%w: unknown op %d", ErrBadFrame, uint8(f.Op))
	}
	if f.Status > StatusDeadline {
		return nil, fmt.Errorf("%w: unknown status %d", ErrBadFrame, uint8(f.Status))
	}
	if f.Kind == KindRequest && f.Status != StatusOK {
		return nil, fmt.Errorf("%w: request carries status %d", ErrBadFrame, uint8(f.Status))
	}
	f.Client = binary.LittleEndian.Uint32(b[8:])
	f.ID = binary.LittleEndian.Uint64(b[12:])
	dl := binary.LittleEndian.Uint64(b[20:])
	if int64(dl) < 0 {
		return nil, fmt.Errorf("%w: negative deadline", ErrBadFrame)
	}
	f.Deadline = des.Time(dl)
	keyLen := int(binary.LittleEndian.Uint16(b[28:]))
	rest := b[30:]
	if len(rest) < keyLen+4 {
		return nil, fmt.Errorf("%w: truncated key", ErrBadFrame)
	}
	f.Key = string(rest[:keyLen])
	rest = rest[keyLen:]
	payLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != payLen {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrBadFrame, payLen, len(rest))
	}
	if payLen > 0 {
		f.Payload = append([]byte(nil), rest...)
	}
	return f, nil
}

// encodeKeys packs a key list into a response payload: u32 count, then
// per key a u16 length and the bytes.
func encodeKeys(keys []string) []byte {
	n := 4
	for _, k := range keys {
		n += 2 + len(k)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
	}
	return out
}

// decodeKeys unpacks a Keys response payload.
func decodeKeys(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated key list", ErrBadFrame)
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	keys := make([]string, 0, min(count, 1024))
	for i := uint32(0); i < count; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated key list", ErrBadFrame)
		}
		kl := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < kl {
			return nil, fmt.Errorf("%w: truncated key list", ErrBadFrame)
		}
		keys = append(keys, string(b[:kl]))
		b = b[kl:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after key list", ErrBadFrame, len(b))
	}
	return keys, nil
}

// encodeSize packs a Size response payload.
func encodeSize(n uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, n)
}

// decodeSize unpacks a Size response payload.
func decodeSize(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: size payload is %d bytes, want 8", ErrBadFrame, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}
