package ckptstore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Kind: KindRequest, Op: OpPut, Client: 7, ID: 42, Deadline: 12345, Key: "rank003/seg000009", Payload: []byte("segment bytes")},
		{Kind: KindRequest, Op: OpGet, Client: 0, ID: 1, Key: "commit/seq000001"},
		{Kind: KindRequest, Op: OpKeys, Client: 99, ID: 3},
		{Kind: KindResponse, Op: OpPut, Status: StatusOverload, Client: 7, ID: 42, Key: ""},
		{Kind: KindResponse, Op: OpSize, Status: StatusOK, Client: 1, ID: 2, Payload: encodeSize(1 << 30)},
	}
	for _, f := range frames {
		b := f.Encode()
		got, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("decode %s frame: %v", f.Op, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("round trip mismatch:\n put %+v\n got %+v", f, got)
		}
		// Canonical codec: re-encoding the decode reproduces the bytes.
		if !bytes.Equal(got.Encode(), b) {
			t.Fatalf("%s frame is not canonical", f.Op)
		}
	}
}

func TestDecodeFrameRejectsMalformed(t *testing.T) {
	good := (&Frame{Kind: KindRequest, Op: OpPut, Client: 1, ID: 1, Key: "k", Payload: []byte("v")}).Encode()
	cases := map[string][]byte{
		"empty":            nil,
		"short":            good[:10],
		"bad magic":        append([]byte("XXXX"), good[4:]...),
		"bad version":      mutate(good, 4, 9),
		"bad kind":         mutate(good, 5, 9),
		"bad op":           mutate(good, 6, 0),
		"bad status":       mutate(good, 7, 200),
		"status in req":    mutate(good, 7, uint8(StatusOverload)),
		"trailing bytes":   append(append([]byte(nil), good...), 0xFF),
		"truncated body":   good[:len(good)-1],
		"oversized keylen": mutate(good, 28, 0xFF),
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func mutate(b []byte, i int, v uint8) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

func TestStatusPreservesTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		in        error
		status    Status
		transient bool
	}{
		{nil, StatusOK, false},
		{storage.ErrNotFound, StatusNotFound, false},
		{storage.ErrCorrupt, StatusCorrupt, false},
		{storage.ErrUnavailable, StatusUnavailable, false},
		{storage.ErrTransient, StatusTransient, true},
		{storage.ErrOverload, StatusOverload, true}, // overload beats its transient wrap
		{storage.ErrDeadlineExceeded, StatusDeadline, false},
	} {
		if got := statusOf(tc.in); got != tc.status {
			t.Errorf("statusOf(%v) = %d, want %d", tc.in, got, tc.status)
		}
		err := tc.status.Err(OpPut, "k")
		if (tc.in == nil) != (err == nil) {
			t.Fatalf("Status(%d).Err nil-ness mismatch", tc.status)
		}
		if err != nil {
			if storage.IsTransient(err) != tc.transient {
				t.Errorf("status %d: IsTransient = %v, want %v", tc.status, !tc.transient, tc.transient)
			}
			if tc.in != nil && !errors.Is(err, tc.in) {
				t.Errorf("status %d lost sentinel %v", tc.status, tc.in)
			}
		}
	}
}

func TestKeysPayloadRoundTrip(t *testing.T) {
	for _, keys := range [][]string{{}, {"a"}, {"rank000/seg000001", "rank001/seg000001", "commit/seq000001"}} {
		got, err := decodeKeys(encodeKeys(keys))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("got %d keys, want %d", len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("key %d: %q != %q", i, got[i], keys[i])
			}
		}
	}
	if _, err := decodeKeys([]byte{1, 0, 0, 0}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated key list: %v", err)
	}
	if _, err := decodeSize([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short size payload: %v", err)
	}
}
