package ckptstore

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Mode is the service's degradation level. The service moves down the
// ladder as replicas fail and back up as they heal and the journal
// drains; every transition is recorded so experiments can plot the
// degradation timeline.
type Mode uint8

// Degradation ladder, healthiest first.
const (
	// ModeSync: a write quorum of replicas is reachable and the journal
	// is empty — Puts are quorum-replicated before they are acked.
	ModeSync Mode = iota
	// ModeAsync: fewer than quorum replicas are reachable (or
	// replication debt is still draining): Puts land where they can and
	// the shortfall is journaled, acked before it is quorum-durable.
	ModeAsync
	// ModeSpill: no replica is reachable (or a promotion is in flight):
	// Puts are held entirely in the frontend's local spill journal.
	ModeSpill
	// ModeRefuse: the spill journal is full — the service refuses
	// writes outright until capacity returns.
	ModeRefuse
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	case ModeSpill:
		return "spill"
	case ModeRefuse:
		return "refuse"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Transition records one step on the degradation ladder.
type Transition struct {
	At       des.Time
	From, To Mode
	Reason   string
}

// Config parameterises a Service. Zero values select the documented
// defaults; the zero Config is not usable — Engine and Replicas are
// required.
type Config struct {
	// Engine is the virtual clock everything runs on. Required.
	Engine *des.Engine
	// Replicas are the replication group's stores, leader first.
	// Required, at least one.
	Replicas []storage.Store
	// Quorum is the write quorum (0 → majority of len(Replicas)).
	Quorum int
	// Link is the client↔frontend and frontend↔replica interconnect
	// model (zero → mpi.QsNet).
	Link mpi.Network
	// ReplicaModel is the per-replica persistence cost model (zero →
	// storage.SCSISink): each replica is a serial device, so queueing
	// delay emerges when offered load exceeds its bandwidth.
	ReplicaModel storage.Model
	// InFlightBudget caps admitted-but-incomplete Put bytes
	// (0 → 64 MiB). Beyond it the admission controller sheds with
	// storage.ErrOverload.
	InFlightBudget uint64
	// ClientShare caps any one client's share of InFlightBudget
	// (0 → 0.5): one hot rank cannot starve the rest.
	ClientShare float64
	// BatchWindow is how long the frontend holds a batch open to
	// coalesce Puts across clients (0 → 2 ms). Ops joining an open
	// batch pay only serialization, not another link latency.
	BatchWindow des.Time
	// OpDeadline bounds every op's modeled completion (0 → none): an
	// op that could not finish in time is refused up front with
	// storage.ErrDeadlineExceeded rather than admitted and stalled.
	OpDeadline des.Time
	// SpillCapacity bounds the local spill journal (0 → 256 MiB).
	SpillCapacity uint64
	// DrainPeriod is how often journaled replication debt is re-offered
	// to the replicas (0 → 50 ms).
	DrainPeriod des.Time
	// ProbePeriod is how often struck-out replicas are probed for
	// recovery (0 → 250 ms).
	ProbePeriod des.Time
	// PromotionTime is the failover protocol's promotion latency after
	// a leader crash (0 → 500 ms): election plus state hand-off.
	PromotionTime des.Time
}

// Stats are the service's observable counters. All byte counts are
// payload bytes, all latencies virtual time.
type Stats struct {
	Puts, Gets, Deletes uint64
	// AckedPuts/AckedBytes count Puts the service accepted (at any
	// durability level); an acked Put is never silently dropped.
	AckedPuts  uint64
	AckedBytes uint64
	// Acks by durability level at ack time.
	SyncAcks, AsyncAcks, SpillAcks uint64
	// Admission-control refusals.
	OverloadSheds    uint64
	FairnessSheds    uint64
	DeadlineRefusals uint64
	// QuorumFailures counts Puts that reached fewer than quorum
	// replicas on their first (synchronous) attempt.
	QuorumFailures uint64
	// Batching efficiency.
	Batches       uint64
	CoalescedPuts uint64
	// FailoverReads counts Gets served by a non-leader replica.
	FailoverReads uint64
	// Journal flow.
	JournaledBytes uint64
	DrainedBytes   uint64
	// Failover protocol.
	LeaderCrashes     uint64
	Failovers         uint64
	PromotionRestarts uint64
	// ModeChanges counts degradation-ladder transitions.
	ModeChanges uint64
}

// journalEntry is one unit of replication debt: a value (or tombstone)
// the frontend has acked but not yet proven quorum-durable.
type journalEntry struct {
	data []byte
	del  bool
}

// replica is the service's view of one replication-group member.
type replica struct {
	store storage.Store
	// down: excluded from writes (struck out or crashed).
	down bool
	// crashed: down until explicitly healed; probes skip it.
	crashed bool
	// strikes counts consecutive failed ops; 3 strikes → down.
	strikes int
	// applied counts ops this replica has acknowledged — the freshness
	// criterion promotion uses.
	applied uint64
	// busyUntil models the replica as a serial device: a write starting
	// now completes at max(now, busyUntil) + WriteTime.
	busyUntil des.Time
}

// Service is the checkpoint-store frontend plus its replication group.
// It is not safe for concurrent use; like every des-driven component,
// all calls happen on the single simulation strand.
type Service struct {
	cfg    Config
	eng    *des.Engine
	reps   []*replica
	leader int
	quorum int

	// Admission controller state.
	inflight  uint64
	perClient map[uint32]uint64

	// Batching: an open batch absorbs Puts until batchEnd.
	batchEnd  des.Time
	batchKeys map[string]bool

	// Spill journal: acked-but-not-quorum-durable writes, FIFO.
	journal      map[string]journalEntry
	journalOrder []string
	journalBytes uint64

	mode        Mode
	promoting   bool
	transitions []Transition

	stats   Stats
	putLats []des.Time

	drainTicker *des.Ticker
	probeTicker *des.Ticker
}

// New builds a Service from cfg, applying defaults, and starts its
// maintenance tickers on cfg.Engine.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("ckptstore: Config.Engine is required")
	}
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("ckptstore: at least one replica is required")
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = len(cfg.Replicas)/2 + 1
	}
	if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Replicas) {
		return nil, fmt.Errorf("ckptstore: quorum %d out of range for %d replicas", cfg.Quorum, len(cfg.Replicas))
	}
	if cfg.Link.Bandwidth == 0 {
		cfg.Link = mpi.QsNet()
	}
	if cfg.ReplicaModel.Bandwidth == 0 {
		cfg.ReplicaModel = storage.SCSISink()
	}
	if cfg.InFlightBudget == 0 {
		cfg.InFlightBudget = 64 << 20
	}
	if cfg.ClientShare == 0 {
		cfg.ClientShare = 0.5
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * des.Millisecond
	}
	if cfg.SpillCapacity == 0 {
		cfg.SpillCapacity = 256 << 20
	}
	if cfg.DrainPeriod == 0 {
		cfg.DrainPeriod = 50 * des.Millisecond
	}
	if cfg.ProbePeriod == 0 {
		cfg.ProbePeriod = 250 * des.Millisecond
	}
	if cfg.PromotionTime == 0 {
		cfg.PromotionTime = 500 * des.Millisecond
	}
	s := &Service{
		cfg:       cfg,
		eng:       cfg.Engine,
		perClient: make(map[uint32]uint64),
		batchKeys: make(map[string]bool),
		journal:   make(map[string]journalEntry),
		quorum:    cfg.Quorum,
	}
	for _, st := range cfg.Replicas {
		s.reps = append(s.reps, &replica{store: st})
	}
	s.drainTicker = s.eng.NewTicker(cfg.DrainPeriod, func(des.Time) { s.drain() })
	s.probeTicker = s.eng.NewTicker(cfg.ProbePeriod, func(des.Time) { s.probe() })
	return s, nil
}

// Close stops the service's maintenance tickers. The engine's Stop also
// ends them; Close exists for bounded-horizon runs that keep the engine.
func (s *Service) Close() {
	s.drainTicker.Stop()
	s.probeTicker.Stop()
}

// Stats returns a copy of the service counters.
func (s *Service) Stats() Stats { return s.stats }

// PutLatencies returns a copy of the modeled completion latency of
// every acked Put, in ack order.
func (s *Service) PutLatencies() []des.Time {
	return append([]des.Time(nil), s.putLats...)
}

// Transitions returns a copy of the degradation-ladder timeline.
func (s *Service) Transitions() []Transition {
	return append([]Transition(nil), s.transitions...)
}

// Mode reports the current degradation level.
func (s *Service) Mode() Mode { return s.mode }

// Leader reports the current leader's replica index.
func (s *Service) Leader() int { return s.leader }

// upCount counts replicas currently accepting ops.
func (s *Service) upCount() int {
	n := 0
	for _, r := range s.reps {
		if !r.down {
			n++
		}
	}
	return n
}

// setMode records a ladder transition.
func (s *Service) setMode(to Mode, reason string) {
	if s.mode == to {
		return
	}
	s.transitions = append(s.transitions, Transition{At: s.eng.Now(), From: s.mode, To: to, Reason: reason})
	s.mode = to
	s.stats.ModeChanges++
}

// refreshMode recomputes the ladder position from replica health and
// journal state.
func (s *Service) refreshMode(reason string) {
	up := s.upCount()
	switch {
	case s.journalBytes >= s.cfg.SpillCapacity:
		s.setMode(ModeRefuse, reason)
	case s.promoting || up == 0:
		s.setMode(ModeSpill, reason)
	case up < s.quorum || len(s.journalOrder) > 0:
		s.setMode(ModeAsync, reason)
	default:
		s.setMode(ModeSync, reason)
	}
}

// strike records a failed replica op; three consecutive strikes take
// the replica out of the write set until a probe heals it.
func (s *Service) strike(i int, err error) {
	r := s.reps[i]
	r.strikes++
	if r.strikes >= 3 && !r.down {
		r.down = true
		s.refreshMode(fmt.Sprintf("replica %d struck out (%v)", i, err))
		if i == s.leader {
			s.leaderDown("replica struck out")
		}
	}
}

// clearStrikes marks a successful replica op.
func (s *Service) clearStrikes(i int) {
	r := s.reps[i]
	r.strikes = 0
	r.applied++
}

// Crash marks replica i failed until Heal — the chaos entry point for
// killing group members. Crashing the leader starts the failover
// protocol.
func (s *Service) Crash(i int) {
	r := s.reps[i]
	if r.crashed {
		return
	}
	r.crashed = true
	r.down = true
	r.strikes = 0
	s.refreshMode(fmt.Sprintf("replica %d crashed", i))
	if i == s.leader {
		s.stats.LeaderCrashes++
		s.leaderDown("leader crashed")
	}
}

// CrashLeader crashes whichever replica currently leads.
func (s *Service) CrashLeader() { s.Crash(s.leader) }

// Heal returns a crashed replica to the group. Its store contents are
// whatever survived the crash; drain and read-repair close the gap.
func (s *Service) Heal(i int) {
	r := s.reps[i]
	if !r.crashed {
		return
	}
	r.crashed = false
	r.down = false
	r.strikes = 0
	s.refreshMode(fmt.Sprintf("replica %d healed", i))
}

// PartitionFollower cuts replica i off from the frontend between from
// and to: a scheduled crash + heal, the network-partition analogue for
// a group member.
func (s *Service) PartitionFollower(i int, from, to des.Time) {
	s.eng.Schedule(from, func() { s.Crash(i) })
	s.eng.Schedule(to, func() { s.Heal(i) })
}

// leaderDown starts the failover protocol: writes spill locally while a
// new leader is elected and state is handed off.
func (s *Service) leaderDown(reason string) {
	if s.promoting {
		return
	}
	s.promoting = true
	s.refreshMode("promotion started: " + reason)
	s.eng.After(s.cfg.PromotionTime, s.finishPromotion)
}

// finishPromotion elects the freshest reachable replica (max applied
// ops, ties to the lowest index) as the new leader. If none is
// reachable the protocol re-arms — the group waits for a heal.
func (s *Service) finishPromotion() {
	best := -1
	for i, r := range s.reps {
		if r.down {
			continue
		}
		if best == -1 || r.applied > s.reps[best].applied {
			best = i
		}
	}
	if best == -1 {
		s.stats.PromotionRestarts++
		s.eng.After(s.cfg.PromotionTime, s.finishPromotion)
		return
	}
	s.leader = best
	s.promoting = false
	s.stats.Failovers++
	s.refreshMode(fmt.Sprintf("replica %d promoted to leader", best))
}

// probe retries struck-out (but not crashed) replicas; a replica that
// answers a Size probe rejoins the write set.
func (s *Service) probe() {
	for i, r := range s.reps {
		if !r.down || r.crashed {
			continue
		}
		if _, err := r.store.Size(); err == nil {
			r.down = false
			r.strikes = 0
			s.refreshMode(fmt.Sprintf("replica %d probed healthy", i))
		}
	}
}

// journalPut records replication debt for key. A newer entry replaces
// an older one in place (keeping its FIFO slot).
func (s *Service) journalPut(key string, data []byte, del bool) {
	if old, ok := s.journal[key]; ok {
		s.journalBytes -= uint64(len(old.data))
	} else {
		s.journalOrder = append(s.journalOrder, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.journal[key] = journalEntry{data: cp, del: del}
	s.journalBytes += uint64(len(data))
	s.stats.JournaledBytes += uint64(len(data))
}

// dropJournal removes key's replication debt, if any.
func (s *Service) dropJournal(key string) {
	old, ok := s.journal[key]
	if !ok {
		return
	}
	s.journalBytes -= uint64(len(old.data))
	delete(s.journal, key)
	for i, k := range s.journalOrder {
		if k == key {
			s.journalOrder = append(s.journalOrder[:i], s.journalOrder[i+1:]...)
			break
		}
	}
}

// drain re-offers journaled debt to the replicas, oldest first, and
// retires entries that reach quorum.
func (s *Service) drain() {
	if len(s.journalOrder) == 0 || s.promoting || s.upCount() < s.quorum {
		return
	}
	var remaining []string
	for _, key := range s.journalOrder {
		e := s.journal[key]
		acks := s.writeAll(key, e.data, e.del)
		if acks >= s.quorum {
			s.journalBytes -= uint64(len(e.data))
			s.stats.DrainedBytes += uint64(len(e.data))
			delete(s.journal, key)
		} else {
			remaining = append(remaining, key)
		}
	}
	s.journalOrder = remaining
	s.refreshMode("journal drained")
}

// writeAll offers one write (or delete) to every up replica and returns
// the ack count. Failures strike the replica.
func (s *Service) writeAll(key string, data []byte, del bool) int {
	acks := 0
	for i, r := range s.reps {
		if r.down {
			continue
		}
		var err error
		if del {
			err = r.store.Delete(key)
			if err != nil && statusOf(err) == StatusNotFound {
				err = nil // the point of a tombstone is absence
			}
		} else {
			err = r.store.Put(key, data)
		}
		if err != nil {
			s.strike(i, err)
			continue
		}
		s.clearStrikes(i)
		acks++
	}
	return acks
}

// View returns a read-only composite over the journal and the replica
// group — the bytes a recovery would actually see. Experiments use it
// to run ckpt.VerifyChain against the service's total state.
func (s *Service) View() storage.Store { return (*serviceView)(s) }

// RecoveryLine returns the newest checkpoint line (sequence number)
// that verifies across all ranks in the service's current state — the
// line a post-failover restart resumes from.
func (s *Service) RecoveryLine(ranks int) (uint64, bool, error) {
	return ckpt.LatestVerifiableSeq(s.View(), ranks)
}

// ---- Op handling ----

// Handle services one encoded request frame and returns the encoded
// response. Transport errors (unparseable frames) are returned as Go
// errors; storage-level failures travel inside the response status.
func (s *Service) Handle(req []byte) ([]byte, error) {
	f, err := DecodeFrame(req)
	if err != nil {
		return nil, err
	}
	if f.Kind != KindRequest {
		return nil, fmt.Errorf("%w: service got a non-request frame", ErrBadFrame)
	}
	resp := &Frame{Kind: KindResponse, Op: f.Op, Client: f.Client, ID: f.ID}
	var opErr error
	switch f.Op {
	case OpPut:
		opErr = s.put(f)
	case OpGet:
		var data []byte
		data, opErr = s.get(f.Key)
		resp.Payload = data
	case OpDelete:
		opErr = s.del(f)
	case OpKeys:
		var keys []string
		keys, opErr = s.View().Keys()
		if opErr == nil {
			resp.Payload = encodeKeys(keys)
		}
	case OpSize:
		var n uint64
		n, opErr = s.View().Size()
		if opErr == nil {
			resp.Payload = encodeSize(n)
		}
	}
	resp.Status = statusOf(opErr)
	return resp.Encode(), nil
}

// put admits, times, replicates, and acks one Put. The decision order
// is: model the completion time first, then refuse (deadline, budget,
// fairness) before any state changes, then commit.
func (s *Service) put(f *Frame) error {
	s.stats.Puts++
	n := uint64(len(f.Payload))
	now := s.eng.Now()

	// Batch membership: the first Put opens a window and pays the link
	// latency; later Puts inside it pay serialization only. A duplicate
	// key inside one window is coalesced outright — the frontend's
	// write-combining across retries and re-bases.
	newBatch := now >= s.batchEnd
	coalesced := !newBatch && s.batchKeys[f.Key]
	linkCost := des.Time(float64(n) / s.cfg.Link.Bandwidth * float64(des.Second))
	if newBatch {
		linkCost += s.cfg.Link.Latency
	}

	// Completion estimate: wire transfer, then the quorum-th replica
	// finishes persisting. Spilled writes cost only the wire leg.
	arrive := now + linkCost
	completion := arrive
	if !coalesced && !s.promoting && s.upCount() > 0 {
		var done []des.Time
		for _, r := range s.reps {
			if r.down {
				continue
			}
			start := arrive
			if r.busyUntil > start {
				start = r.busyUntil
			}
			done = append(done, start+s.cfg.ReplicaModel.WriteTime(n))
		}
		sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
		k := s.quorum
		if k > len(done) {
			k = len(done)
		}
		completion = done[k-1]
	}

	// Admission: refuse before mutating anything.
	deadline := f.Deadline
	if s.cfg.OpDeadline > 0 && (deadline == 0 || s.cfg.OpDeadline < deadline) {
		deadline = s.cfg.OpDeadline
	}
	if deadline > 0 && completion-now > deadline {
		s.stats.DeadlineRefusals++
		return fmt.Errorf("ckptstore: put %q would complete in %v, past deadline %v: %w",
			f.Key, completion-now, deadline, storage.ErrDeadlineExceeded)
	}
	if s.inflight+n > s.cfg.InFlightBudget {
		s.stats.OverloadSheds++
		return fmt.Errorf("ckptstore: put %q: in-flight %d+%d over budget %d: %w",
			f.Key, s.inflight, n, s.cfg.InFlightBudget, storage.ErrOverload)
	}
	share := uint64(s.cfg.ClientShare * float64(s.cfg.InFlightBudget))
	if s.perClient[f.Client]+n > share {
		s.stats.FairnessSheds++
		return fmt.Errorf("ckptstore: put %q: client %d over fair share %d: %w",
			f.Key, f.Client, share, storage.ErrOverload)
	}
	if s.mode == ModeRefuse || (s.spillPath() && s.journalBytes+n > s.cfg.SpillCapacity) {
		s.stats.OverloadSheds++
		s.refreshMode("spill journal full")
		return fmt.Errorf("ckptstore: put %q: spill journal full (%d bytes): %w",
			f.Key, s.journalBytes, storage.ErrOverload)
	}

	// Commit: account the batch and the in-flight window.
	if newBatch {
		s.batchEnd = now + s.cfg.BatchWindow
		for k := range s.batchKeys {
			delete(s.batchKeys, k)
		}
		s.stats.Batches++
	}
	s.batchKeys[f.Key] = true
	if coalesced {
		s.stats.CoalescedPuts++
	}
	s.inflight += n
	s.perClient[f.Client] += n
	client := f.Client
	s.eng.Schedule(completion, func() {
		s.inflight -= n
		s.perClient[client] -= n
	})

	// Replicate (or spill) and ack at the achieved durability level.
	switch {
	case s.spillPath():
		s.journalPut(f.Key, f.Payload, false)
		s.stats.SpillAcks++
		s.refreshMode("put spilled")
	default:
		acks := 0
		if !coalesced {
			acks = s.writeAll(f.Key, f.Payload, false)
			for _, r := range s.reps {
				if !r.down && completion > r.busyUntil {
					r.busyUntil = completion
				}
			}
		} else {
			acks = s.quorum // the covering write already carries this key
		}
		switch {
		case acks >= s.quorum:
			s.dropJournal(f.Key)
			s.stats.SyncAcks++
		case acks > 0:
			s.stats.QuorumFailures++
			s.journalPut(f.Key, f.Payload, false)
			s.stats.AsyncAcks++
			s.refreshMode("put under quorum")
		default:
			s.stats.QuorumFailures++
			s.journalPut(f.Key, f.Payload, false)
			s.stats.SpillAcks++
			s.refreshMode("put reached no replica")
		}
	}
	s.stats.AckedPuts++
	s.stats.AckedBytes += n
	s.putLats = append(s.putLats, completion-now)
	return nil
}

// spillPath reports whether writes currently bypass the replicas.
func (s *Service) spillPath() bool {
	return s.promoting || s.upCount() == 0
}

// get serves a read: journal first (the newest acked value), then the
// leader, then follower failover.
func (s *Service) get(key string) ([]byte, error) {
	s.stats.Gets++
	if e, ok := s.journal[key]; ok {
		if e.del {
			return nil, fmt.Errorf("ckptstore: get %q: %w", key, storage.ErrNotFound)
		}
		return append([]byte(nil), e.data...), nil
	}
	order := s.readOrder()
	var firstErr error
	for pos, i := range order {
		r := s.reps[i]
		data, err := r.store.Get(key)
		if err == nil {
			if pos > 0 {
				s.stats.FailoverReads++
			}
			return data, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if statusOf(err) != StatusNotFound {
			s.strike(i, err)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("ckptstore: get %q: no replica reachable: %w", key, storage.ErrUnavailable)
	}
	return nil, firstErr
}

// readOrder returns up-replica indices, leader first.
func (s *Service) readOrder() []int {
	order := make([]int, 0, len(s.reps))
	if !s.reps[s.leader].down {
		order = append(order, s.leader)
	}
	for i, r := range s.reps {
		if i != s.leader && !r.down {
			order = append(order, i)
		}
	}
	return order
}

// del removes a key: replicated when quorum is reachable, otherwise a
// journaled tombstone.
func (s *Service) del(f *Frame) error {
	s.stats.Deletes++
	if s.spillPath() {
		s.journalPut(f.Key, nil, true)
		return nil
	}
	acks := s.writeAll(f.Key, nil, true)
	if acks >= s.quorum {
		s.dropJournal(f.Key)
		return nil
	}
	s.journalPut(f.Key, nil, true)
	return nil
}

// ---- Composite read view ----

// serviceView adapts the service's total state (journal over replica
// group) to storage.Store for verification and recovery. Writes through
// the view are rejected; mutations must go through the protocol.
type serviceView Service

func (v *serviceView) svc() *Service { return (*Service)(v) }

// Get implements storage.Store.
func (v *serviceView) Get(key string) ([]byte, error) { return v.svc().get(key) }

// Put implements storage.Store.
func (v *serviceView) Put(string, []byte) error {
	return fmt.Errorf("ckptstore: view is read-only: %w", storage.ErrUnavailable)
}

// Delete implements storage.Store.
func (v *serviceView) Delete(string) error {
	return fmt.Errorf("ckptstore: view is read-only: %w", storage.ErrUnavailable)
}

// Keys implements storage.Store: the union over up replicas, overlaid
// with journal additions and tombstones, sorted.
func (v *serviceView) Keys() ([]string, error) {
	s := v.svc()
	set := make(map[string]bool)
	for _, r := range s.reps {
		if r.down {
			continue
		}
		keys, err := r.store.Keys()
		if err != nil {
			continue
		}
		for _, k := range keys {
			set[k] = true
		}
	}
	for k, e := range s.journal {
		if e.del {
			delete(set, k)
		} else {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Size implements storage.Store: the largest up replica plus journaled
// debt — the footprint of one logical copy.
func (v *serviceView) Size() (uint64, error) {
	s := v.svc()
	var best uint64
	for _, r := range s.reps {
		if r.down {
			continue
		}
		if n, err := r.store.Size(); err == nil && n > best {
			best = n
		}
	}
	return best + s.journalBytes, nil
}
