package ckptstore

import (
	"fmt"
)

// Client is one rank's connection to the service. It implements
// storage.Store by round-tripping every operation through the frame
// codec — the same bytes a networked deployment would put on the wire —
// so the supervisor, two-phase commit, and ResilientStore compose with
// the service exactly as with any other store.
type Client struct {
	svc    *Service
	id     uint32
	nextID uint64
}

// Client returns a connection for the given client id (one per rank).
func (s *Service) Client(id uint32) *Client {
	return &Client{svc: s, id: id}
}

// roundTrip encodes the request, hands it to the service, and decodes
// the response, translating the wire status back into the storage error
// taxonomy.
func (c *Client) roundTrip(req *Frame) (*Frame, error) {
	c.nextID++
	req.Kind = KindRequest
	req.Client = c.id
	req.ID = c.nextID
	req.Deadline = c.svc.cfg.OpDeadline
	respBytes, err := c.svc.Handle(req.Encode())
	if err != nil {
		return nil, fmt.Errorf("ckptstore: client %d: %w", c.id, err)
	}
	resp, err := DecodeFrame(respBytes)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: client %d: bad response: %w", c.id, err)
	}
	if resp.Kind != KindResponse || resp.Op != req.Op || resp.ID != req.ID {
		return nil, fmt.Errorf("ckptstore: client %d: response mismatch: %w", c.id, ErrBadFrame)
	}
	if err := resp.Status.Err(req.Op, req.Key); err != nil {
		return nil, err
	}
	return resp, nil
}

// Put implements storage.Store.
func (c *Client) Put(key string, data []byte) error {
	_, err := c.roundTrip(&Frame{Op: OpPut, Key: key, Payload: data})
	return err
}

// Get implements storage.Store.
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.roundTrip(&Frame{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Delete implements storage.Store.
func (c *Client) Delete(key string) error {
	_, err := c.roundTrip(&Frame{Op: OpDelete, Key: key})
	return err
}

// Keys implements storage.Store.
func (c *Client) Keys() ([]string, error) {
	resp, err := c.roundTrip(&Frame{Op: OpKeys})
	if err != nil {
		return nil, err
	}
	return decodeKeys(resp.Payload)
}

// Size implements storage.Store.
func (c *Client) Size() (uint64, error) {
	resp, err := c.roundTrip(&Frame{Op: OpSize})
	if err != nil {
		return 0, err
	}
	return decodeSize(resp.Payload)
}
