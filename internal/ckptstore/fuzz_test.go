package ckptstore

import (
	"bytes"
	"testing"
)

// FuzzParseServiceFrame drives DecodeFrame with arbitrary bytes. The
// invariants: no panic on any input, and the codec is canonical — every
// accepted frame re-encodes to exactly the bytes that were decoded, and
// a round trip through Encode/Decode is a fixed point.
func FuzzParseServiceFrame(f *testing.F) {
	seeds := []*Frame{
		{Kind: KindRequest, Op: OpPut, Client: 3, ID: 17, Deadline: 1 << 20, Key: "rank000/seg000001", Payload: []byte("pages")},
		{Kind: KindRequest, Op: OpGet, Key: "commit/seq000004"},
		{Kind: KindRequest, Op: OpKeys},
		{Kind: KindRequest, Op: OpSize},
		{Kind: KindResponse, Op: OpPut, Status: StatusOverload, Client: 3, ID: 17},
		{Kind: KindResponse, Op: OpKeys, Payload: encodeKeys([]string{"a", "b"})},
		{Kind: KindResponse, Op: OpSize, Payload: encodeSize(12345)},
	}
	for _, s := range seeds {
		f.Add(s.Encode())
	}
	f.Add([]byte("CKSF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if fr != nil {
				t.Fatal("error with non-nil frame")
			}
			return
		}
		// Canonical: accepted bytes re-encode identically.
		enc := fr.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, enc)
		}
		// And decoding the re-encode is a fixed point.
		fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical frame failed: %v", err)
		}
		if !bytes.Equal(fr2.Encode(), enc) {
			t.Fatal("second round trip diverged")
		}
	})
}
