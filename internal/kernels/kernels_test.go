package kernels

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func space() *mem.AddressSpace {
	return mem.NewAddressSpace(mem.Config{PageSize: 4096})
}

func TestArrayBasics(t *testing.T) {
	sp := space()
	a, err := NewArray(sp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
	if _, err := NewArray(sp, 0); err == nil {
		t.Fatal("zero-length array accepted")
	}
	src := []float64{1.5, -2.25, math.Pi}
	if err := a.Write(src, 10); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	if err := a.Read(dst, 10); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip: %v != %v", dst, src)
		}
	}
	if v, _ := a.At(11); v != -2.25 {
		t.Fatalf("At(11) = %v", v)
	}
	// Bounds.
	if err := a.Write(src, 999); err == nil {
		t.Fatal("overflow write accepted")
	}
	if err := a.Read(dst, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Fill + checksum.
	if err := a.Fill(2); err != nil {
		t.Fatal(err)
	}
	sum, err := a.Checksum()
	if err != nil || sum != 2000 {
		t.Fatalf("Checksum = %v, %v", sum, err)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
}

// Property: Write/Read round-trips arbitrary finite float64s.
func TestPropertyArrayRoundTrip(t *testing.T) {
	sp := space()
	a, _ := NewArray(sp, 256)
	f := func(vals []float64, off uint8) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		o := int(off) % 56
		if err := a.Write(vals, o); err != nil {
			return false
		}
		got := make([]float64, len(vals))
		if err := a.Read(got, o); err != nil {
			return false
		}
		for i := range vals {
			// NaN round-trips bit-exactly but compares unequal.
			if got[i] != vals[i] && !(math.IsNaN(got[i]) && math.IsNaN(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStencilConvergesToBoundary(t *testing.T) {
	sp := space()
	s, err := NewStencil2D(sp, 16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(400); err != nil {
		t.Fatal(err)
	}
	// With all boundaries at 10 and Laplace's equation, the interior
	// converges to 10 everywhere.
	v, err := s.Cur().At(8*16 + 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 0.01 {
		t.Fatalf("interior = %v, want ~10", v)
	}
	res, err := s.Residual()
	if err != nil {
		t.Fatal(err)
	}
	if res > 0.01 {
		t.Fatalf("residual = %v", res)
	}
	if s.Iter() != 400 {
		t.Fatalf("Iter = %d", s.Iter())
	}
}

func TestStencilMaximumPrinciple(t *testing.T) {
	sp := space()
	s, _ := NewStencil2D(sp, 12, 12, 5)
	for i := 0; i < 50; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		// Every interior value stays within [min, max] of the data —
		// here [0, 5] since the interior started at 0.
		row := make([]float64, 12)
		for y := 1; y < 11; y++ {
			s.Cur().Read(row, y*12)
			for x := 1; x < 11; x++ {
				if row[x] < -1e-12 || row[x] > 5+1e-12 {
					t.Fatalf("maximum principle violated: %v", row[x])
				}
			}
		}
	}
}

func TestStencilDoubleBufferAlternation(t *testing.T) {
	// Consecutive stencil iterations must dirty different arenas —
	// the real-code analogue of the workloads' AltShift.
	sp := space()
	s, _ := NewStencil2D(sp, 64, 64, 1)
	dirtyRegions := func() map[*mem.Region]bool {
		out := map[*mem.Region]bool{}
		h := sp.SetFaultHandler(func(f mem.Fault) {
			out[f.Region] = true
			f.Region.SetProtected(f.Page, false)
		})
		_ = h
		sp.ProtectAllData()
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		sp.UnprotectAllData()
		sp.SetFaultHandler(nil)
		return out
	}
	d1 := dirtyRegions()
	d2 := dirtyRegions()
	if d1[s.a.Region()] == d1[s.b.Region()] {
		t.Fatal("one iteration dirtied both (or neither) buffers")
	}
	if d1[s.a.Region()] == d2[s.a.Region()] {
		t.Fatal("consecutive iterations dirtied the same buffer")
	}
}

func TestSSORConverges(t *testing.T) {
	sp := space()
	s, err := NewSSOR(sp, 16, 16, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := s.Grid().At(8*16 + 8)
	if math.Abs(v-4) > 0.01 {
		t.Fatalf("SSOR interior = %v, want ~4", v)
	}
	if s.Iter() != 60 {
		t.Fatalf("Iter = %d", s.Iter())
	}
}

func TestSSORValidation(t *testing.T) {
	sp := space()
	if _, err := NewSSOR(sp, 2, 16, 1, 1); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := NewSSOR(sp, 16, 16, 1, 2.5); err == nil {
		t.Fatal("omega out of range accepted")
	}
}

func TestSSORFasterThanJacobi(t *testing.T) {
	// SSOR with over-relaxation must reach a given accuracy in fewer
	// iterations than plain Jacobi — the reason LU uses it.
	target := 4.0
	jacobiIters := func() int {
		s, _ := NewStencil2D(space(), 16, 16, target)
		for i := 1; ; i++ {
			s.Step()
			v, _ := s.Cur().At(8*16 + 8)
			if math.Abs(v-target) < 0.05 {
				return i
			}
			if i > 2000 {
				return i
			}
		}
	}()
	ssorIters := func() int {
		s, _ := NewSSOR(space(), 16, 16, target, 1.5)
		for i := 1; ; i++ {
			s.Step()
			v, _ := s.Grid().At(8*16 + 8)
			if math.Abs(v-target) < 0.05 {
				return i
			}
			if i > 2000 {
				return i
			}
		}
	}()
	if ssorIters >= jacobiIters {
		t.Fatalf("SSOR (%d iters) not faster than Jacobi (%d)", ssorIters, jacobiIters)
	}
}

// wavefrontReference replays the same sweeps on plain Go slices.
func wavefrontReference(nx, ny, iters int, seed float64) []float64 {
	v := make([]float64, nx*ny)
	for x := 0; x < nx; x++ {
		v[x] = seed
	}
	for y := 1; y < ny; y++ {
		v[y*nx] = seed
	}
	sweep := func(ox, oy int) {
		for i := 1; i < ny; i++ {
			y := i
			if oy == 1 {
				y = ny - 1 - i
			}
			py := y - 1
			if oy == 1 {
				py = y + 1
			}
			for j := 1; j < nx; j++ {
				x := j
				if ox == 1 {
					x = nx - 1 - j
				}
				ux := x - 1
				if ox == 1 {
					ux = x + 1
				}
				v[y*nx+x] = 0.5*v[y*nx+ux] + 0.5*v[py*nx+x] + 0.01
			}
		}
	}
	for it := 0; it < iters; it++ {
		for _, c := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
			sweep(c[0], c[1])
		}
	}
	return v
}

func TestWavefrontMatchesReference(t *testing.T) {
	sp := space()
	w, err := NewWavefront(sp, 12, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := wavefrontReference(12, 9, 3, 3)
	got := make([]float64, 12*9)
	if err := w.Grid().Read(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("cell %d: %v != %v", i, got[i], want[i])
		}
	}
	if w.Iter() != 3 {
		t.Fatalf("Iter = %d", w.Iter())
	}
}

func TestADISmoothing(t *testing.T) {
	sp := space()
	a, err := NewADI(sp, 12, 12, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := a.Grid().Checksum()
	for i := 0; i < 5; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := a.Grid().Checksum()
	// The implicit operator damps the solution toward zero (homogeneous
	// Dirichlet at the implicit boundaries) while keeping it positive
	// and bounded.
	if !(after < before) || after <= 0 {
		t.Fatalf("ADI did not damp: before=%v after=%v", before, after)
	}
	if a.Iter() != 5 {
		t.Fatalf("Iter = %d", a.Iter())
	}
}

func TestADIValidation(t *testing.T) {
	sp := space()
	if _, err := NewADI(sp, 2, 12, 1, 0.5); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := NewADI(sp, 12, 12, 1, 0); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestThomasSolvesTridiagonal(t *testing.T) {
	// Verify (1+2L)x_i - L x_{i-1} - L x_{i+1} = d reproduces d from a
	// known x.
	lambda := 0.7
	n := 9
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = (1 + 2*lambda) * x[i]
		if i > 0 {
			d[i] -= lambda * x[i-1]
		}
		if i < n-1 {
			d[i] -= lambda * x[i+1]
		}
	}
	thomas(d, lambda)
	for i := range x {
		if math.Abs(d[i]-x[i]) > 1e-10 {
			t.Fatalf("thomas: x[%d] = %v, want %v", i, d[i], x[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 8, 64, 256} {
		f, _, err := NewFFTInSpace(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(uint64(n), 5))
		signal := make([]complex128, n)
		for i := range signal {
			signal[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		if err := f.Load(signal); err != nil {
			t.Fatal(err)
		}
		got, err := f.Transform()
		if err != nil {
			t.Fatal(err)
		}
		want := NaiveDFT(signal)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %v != %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTValidation(t *testing.T) {
	if _, _, err := NewFFTInSpace(12); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	f, _, _ := NewFFTInSpace(8)
	if err := f.Load(make([]complex128, 5)); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

// Property: FFT of a pure tone concentrates all energy in one bin.
func TestPropertyFFTPureTone(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 128
		rng := rand.New(rand.NewPCG(seed, 6))
		bin := rng.IntN(n)
		signal := make([]complex128, n)
		for t := range signal {
			angle := 2 * math.Pi * float64(bin) * float64(t) / float64(n)
			signal[t] = cmplx.Exp(complex(0, angle))
		}
		fft, _, err := NewFFTInSpace(n)
		if err != nil {
			return false
		}
		if fft.Load(signal) != nil {
			return false
		}
		out, err := fft.Transform()
		if err != nil {
			return false
		}
		for k := range out {
			mag := cmplx.Abs(out[k])
			if k == bin && math.Abs(mag-n) > 1e-6 {
				return false
			}
			if k != bin && mag > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval's theorem holds for random signals.
func TestPropertyFFTParseval(t *testing.T) {
	f := func(seed uint64) bool {
		const n = 64
		rng := rand.New(rand.NewPCG(seed, 7))
		signal := make([]complex128, n)
		var timeE float64
		for i := range signal {
			signal[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			timeE += real(signal[i])*real(signal[i]) + imag(signal[i])*imag(signal[i])
		}
		fft, _, _ := NewFFTInSpace(n)
		fft.Load(signal)
		out, err := fft.Transform()
		if err != nil {
			return false
		}
		var freqE float64
		for _, c := range out {
			freqE += real(c)*real(c) + imag(c)*imag(c)
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-9*timeE+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStencilStep(b *testing.B) {
	s, _ := NewStencil2D(space(), 128, 128, 1)
	b.SetBytes(128 * 128 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1K(b *testing.B) {
	f, _, _ := NewFFTInSpace(1024)
	signal := make([]complex128, 1024)
	for i := range signal {
		signal[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Load(signal)
		if _, err := f.Transform(); err != nil {
			b.Fatal(err)
		}
	}
}
