package kernels

import (
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

func putWorld(t *testing.T, n int, mode mpi.DeliveryMode) (*des.Engine, *mpi.World) {
	t.Helper()
	eng := des.NewEngine()
	spaces := make([]*mem.AddressSpace, n)
	for i := range spaces {
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	w, err := mpi.NewWorld(eng, mpi.QsNet(), mode, spaces)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

// emulateDistPut is the serial model of the ring without checkpoints: a
// put injected at boundary k lands during iteration k+1's compute, so
// it is visible from sweep k+2 on.
func emulateDistPut(ranks, pages, putEvery, iters int, seed float64) []float64 {
	vals := pages * 4096 / 8
	w := make([][]float64, ranks)
	a := make([][]float64, ranks)
	for i := range w {
		w[i] = make([]float64, vals)
		a[i] = make([]float64, vals)
		for j := range w[i] {
			w[i][j] = seed + float64(i) + float64(j)*1e-3
		}
	}
	landing := make(map[int][][]float64) // iteration whose compute the put lands in -> new windows
	for k := 1; k <= iters; k++ {
		for i := range a {
			for j := range a[i] {
				a[i][j] += 0.5*w[i][j] + 1e-3
			}
		}
		if nw, ok := landing[k]; ok {
			w = nw
		}
		if ranks > 1 && k%putEvery == 0 {
			nw := make([][]float64, ranks)
			for i := range nw {
				nw[i] = append([]float64(nil), w[i]...)
			}
			for i := range a {
				dst := (i + 1) % ranks
				for j := range a[i] {
					nw[dst][j] = 0.5*a[i][j] + 1
				}
			}
			landing[k+1] = nw
		}
	}
	var out []float64
	for i := range a {
		out = append(out, a[i]...)
	}
	return out
}

func TestDistPutMatchesSerialModel(t *testing.T) {
	const (
		ranks    = 3
		pages    = 1
		putEvery = 2
		iters    = 9
		seed     = 1.5
	)
	eng, w := putWorld(t, ranks, mpi.Bounce)
	d, err := NewDistPut(eng, w, pages, putEvery, seed, 50*des.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	d.Run(iters, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("run did not complete")
	}
	got, err := d.Gather()
	if err != nil {
		t.Fatal(err)
	}
	want := emulateDistPut(ranks, pages, putEvery, iters, seed)
	if len(got) != len(want) {
		t.Fatalf("gather length %d, want %d", len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("value %d: got %v, want %v (bit-exact)", j, got[j], want[j])
		}
	}
}

// The window pages are only ever NIC-written: under the registered-
// memory Direct model every put is silent, under Bounce every put
// faults. Same seed, same program — divergent dirty sets.
func TestDistPutDirectVsBounceDirtySets(t *testing.T) {
	run := func(mode mpi.DeliveryMode, rdma bool) (faults, silent uint64, gather []float64) {
		eng, w := putWorld(t, 2, mode)
		if rdma {
			if err := w.EnableRDMA(mpi.RDMAConfig{}); err != nil {
				t.Fatal(err)
			}
		}
		d, err := NewDistPut(eng, w, 1, 1, 2.0, 50*des.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		if rdma {
			for i := 0; i < w.Size(); i++ {
				w.Rank(i).RegisterAllData()
			}
		}
		// Protect everything, as a tracker/checkpointer would.
		for i := 0; i < w.Size(); i++ {
			sp := w.Rank(i).Space()
			sp.ProtectAllData()
			sp.SetFaultHandler(func(f mem.Fault) { f.Region.SetProtected(f.Addr, false) })
		}
		d.Run(6, nil, nil)
		eng.Run(des.MaxTime)
		for i := 0; i < w.Size(); i++ {
			silent += w.Rank(i).Stats().SilentDirtyBytes
			faults += w.Rank(i).Space().Faults()
		}
		gather, err = d.Gather()
		if err != nil {
			t.Fatal(err)
		}
		return faults, silent, gather
	}

	bFaults, bSilent, bVals := run(mpi.Bounce, false)
	dFaults, dSilent, dVals := run(mpi.Direct, true)

	if bSilent != 0 {
		t.Fatalf("bounce run has %d silent bytes, want 0", bSilent)
	}
	if dSilent == 0 {
		t.Fatal("direct run has no silent bytes — the under-count vanished")
	}
	if dFaults >= bFaults {
		t.Fatalf("direct faults %d >= bounce faults %d: DMA writes should be invisible", dFaults, bFaults)
	}
	// Same seed, same computation: the *answers* agree even though the
	// dirty sets diverge — the corruption only surfaces on restore.
	if len(bVals) != len(dVals) {
		t.Fatal("gather length mismatch")
	}
	for j := range bVals {
		if bVals[j] != dVals[j] {
			t.Fatalf("live answers diverged at %d: %v vs %v", j, bVals[j], dVals[j])
		}
	}
}

func TestAttachDistPutResumesState(t *testing.T) {
	eng, w := putWorld(t, 2, mpi.Bounce)
	d, err := NewDistPut(eng, w, 1, 2, 3.0, 50*des.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Stop at a non-put boundary (3 % putEvery != 0) so no transfer is
	// in flight across the pause and the resumed timeline matches the
	// continuous one.
	d.Run(3, nil, nil)
	eng.Run(des.MaxTime)

	// Re-attach over the same (live) spaces and keep going.
	d2, err := AttachDistPut(eng, w, 1, 2, 3.0, 50*des.Microsecond, d.Iter())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Iter() != 3 {
		t.Fatalf("attached at iter %d, want 3", d2.Iter())
	}
	d2.Run(8, nil, nil)
	eng.Run(des.MaxTime)
	got, err := d2.Gather()
	if err != nil {
		t.Fatal(err)
	}
	want := emulateDistPut(2, 1, 2, 8, 3.0)
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("resumed value %d: got %v, want %v", j, got[j], want[j])
		}
	}
}
