package kernels

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// DistStencil is a genuinely distributed Jacobi solve: the global grid is
// decomposed row-wise across MPI ranks, and every iteration exchanges
// halo rows as real payload-carrying messages through the simulated
// interconnect before sweeping. The payload bytes land in each rank's
// grid memory through the bounce-buffer copy path, taking ordinary write
// faults — so trackers and checkpointers observe the communication
// exactly as the paper's instrumentation observed Sage's (§4.2), and a
// coordinated checkpoint taken at the post-sweep barrier is consistent
// (no in-flight messages).
//
// The decomposition is exact: after any number of iterations the
// distributed solution is bit-identical to a single-rank Stencil2D on the
// equivalent global grid (asserted by tests).
type DistStencil struct {
	world *mpi.World
	eng   *des.Engine

	nx, rowsPerRank int
	boundary        float64
	grids           []*Stencil2D

	iter      int
	stopped   bool
	computeT  des.Time
	onIter    func(iter int, done func())
	doneAll   func()
	targetIts int
}

// tags for halo messages: from above (row arrives at local row 0) and
// from below (arrives at local row ny-1).
const (
	tagFromAbove = 101
	tagFromBelow = 102
)

// NewDistStencil builds the decomposed solver over the given world: one
// strip of rowsPerRank interior rows (plus two halo rows) per rank. The
// world's address spaces must be backed. computeTime is the virtual time
// one sweep takes (the DES has no implicit cost for host computation).
func NewDistStencil(eng *des.Engine, world *mpi.World, nx, rowsPerRank int, boundary float64, computeTime des.Time) (*DistStencil, error) {
	if nx < 3 || rowsPerRank < 1 {
		return nil, fmt.Errorf("kernels: dist stencil %dx%d too small", nx, rowsPerRank)
	}
	if computeTime <= 0 {
		return nil, fmt.Errorf("kernels: compute time must be positive")
	}
	d := &DistStencil{
		world: world, eng: eng, nx: nx, rowsPerRank: rowsPerRank,
		boundary: boundary, computeT: computeTime,
	}
	for i := 0; i < world.Size(); i++ {
		g, err := NewStencil2D(world.Rank(i).Space(), nx, rowsPerRank+2, boundary)
		if err != nil {
			return nil, err
		}
		// Interior halo rows start at zero like the global interior;
		// NewStencil2D seeded them with the boundary value. They are
		// overwritten by the first exchange before any read, except on
		// the outermost ranks where they *are* the global boundary.
		zero := make([]float64, nx)
		zero[0], zero[nx-1] = boundary, boundary
		if i != 0 {
			if err := g.SetRow(0, zero); err != nil {
				return nil, err
			}
		}
		if i != world.Size()-1 {
			if err := g.SetRow(rowsPerRank+1, zero); err != nil {
				return nil, err
			}
		}
		d.grids = append(d.grids, g)
	}
	return d, nil
}

// AttachDistStencil rebuilds the solver over restored address spaces (one
// per rank of the world), resuming at the given completed-iteration
// count.
func AttachDistStencil(eng *des.Engine, world *mpi.World, nx, rowsPerRank int, boundary float64, computeTime des.Time, iter int) (*DistStencil, error) {
	d := &DistStencil{
		world: world, eng: eng, nx: nx, rowsPerRank: rowsPerRank,
		boundary: boundary, computeT: computeTime, iter: iter,
	}
	for i := 0; i < world.Size(); i++ {
		g, err := AttachStencil2D(world.Rank(i).Space(), nx, rowsPerRank+2, iter)
		if err != nil {
			return nil, fmt.Errorf("kernels: rank %d: %w", i, err)
		}
		d.grids = append(d.grids, g)
	}
	return d, nil
}

// Iter returns the completed iteration count.
func (d *DistStencil) Iter() int { return d.iter }

// Grid returns rank i's local grid (rowsPerRank+2 rows including halos).
func (d *DistStencil) Grid(i int) *Stencil2D { return d.grids[i] }

// Stop makes all pending iteration callbacks no-ops — the failure path:
// the computation is abandoned, whatever events remain in the engine fire
// harmlessly against the dead instance.
func (d *DistStencil) Stop() { d.stopped = true }

// Run executes iterations until the total completed count reaches target,
// then calls onDone. onIter (optional) runs after every completed
// iteration — before the next one starts — with a continuation the
// callback must invoke to proceed (letting callers insert checkpoint
// pauses at the quiescent barrier point).
func (d *DistStencil) Run(target int, onIter func(iter int, done func()), onDone func()) {
	d.targetIts = target
	d.onIter = onIter
	d.doneAll = onDone
	d.iterate()
}

// rowBytes reads local row y of rank i's current buffer as raw bytes.
func (d *DistStencil) rowBytes(i, y int) []byte {
	g := d.grids[i]
	buf := make([]byte, d.nx*8)
	addr := g.Cur().base + uint64(y*d.nx*8)
	if err := g.Cur().space.Read(addr, buf); err != nil {
		panic(fmt.Sprintf("kernels: halo read: %v", err))
	}
	return buf
}

// rowAddr returns the address of local row y in rank i's current buffer.
func (d *DistStencil) rowAddr(i, y int) uint64 {
	return d.grids[i].Cur().base + uint64(y*d.nx*8)
}

// iterate performs one halo exchange + sweep across all ranks.
func (d *DistStencil) iterate() {
	if d.stopped {
		return
	}
	if d.iter >= d.targetIts {
		if d.doneAll != nil {
			d.doneAll()
		}
		return
	}
	n := d.world.Size()
	ny := d.rowsPerRank + 2
	// Count the halo receives each rank expects this iteration.
	pending := make([]int, n)
	completed := 0
	total := 0
	arrive := func(rank int) func(mpi.Message) {
		return func(mpi.Message) {
			if d.stopped {
				return
			}
			pending[rank]--
			completed++
			if completed == total {
				d.sweep()
			}
		}
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			pending[i]++ // halo from above
		}
		if i < n-1 {
			pending[i]++ // halo from below
		}
		total += pending[i]
	}
	// Post receives first (destination: the current buffer's halo rows),
	// then inject sends.
	for i := 0; i < n; i++ {
		r := d.world.Rank(i)
		if i > 0 {
			r.Recv(i-1, tagFromAbove, d.rowAddr(i, 0), arrive(i))
		}
		if i < n-1 {
			r.Recv(i+1, tagFromBelow, d.rowAddr(i, ny-1), arrive(i))
		}
	}
	for i := 0; i < n; i++ {
		r := d.world.Rank(i)
		if i > 0 {
			// My top interior row becomes the upper neighbour's
			// bottom halo.
			r.SendData(i-1, tagFromBelow, d.rowBytes(i, 1), nil)
		}
		if i < n-1 {
			r.SendData(i+1, tagFromAbove, d.rowBytes(i, ny-2), nil)
		}
	}
	if total == 0 {
		// Single rank: no exchange.
		d.sweep()
	}
}

// sweep runs every rank's local Jacobi step after the exchange, charges
// the compute time, synchronises, and hands control to the iteration
// hook.
func (d *DistStencil) sweep() {
	if d.stopped {
		return
	}
	for _, g := range d.grids {
		if err := g.Step(); err != nil {
			panic(fmt.Sprintf("kernels: dist sweep: %v", err))
		}
	}
	d.eng.After(d.computeT, func() {
		if d.stopped {
			return
		}
		d.iter++
		next := func() {
			if !d.stopped {
				d.iterate()
			}
		}
		if d.onIter != nil {
			d.onIter(d.iter, next)
			return
		}
		next()
	})
}

// Gather assembles the global interior (all owned rows, top to bottom)
// into a single slice of nx*(ranks*rowsPerRank) values.
func (d *DistStencil) Gather() ([]float64, error) {
	var out []float64
	row := make([]float64, d.nx)
	for i := range d.grids {
		for y := 1; y <= d.rowsPerRank; y++ {
			if err := d.grids[i].Cur().Read(row, y*d.nx); err != nil {
				return nil, err
			}
			out = append(out, row...)
		}
	}
	return out, nil
}

// GlobalReference runs the equivalent single-rank stencil for iters
// iterations and returns its interior, for equivalence checks.
func GlobalReference(nx, rowsPerRank, ranks, iters int, boundary float64) ([]float64, error) {
	sp := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	g, err := NewStencil2D(sp, nx, ranks*rowsPerRank+2, boundary)
	if err != nil {
		return nil, err
	}
	if err := g.Run(iters); err != nil {
		return nil, err
	}
	var out []float64
	row := make([]float64, nx)
	for y := 1; y <= ranks*rowsPerRank; y++ {
		if err := g.Cur().Read(row, y*nx); err != nil {
			return nil, err
		}
		out = append(out, row...)
	}
	return out, nil
}
