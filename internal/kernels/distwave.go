package kernels

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mpi"
)

// DistWavefront is the pipelined parallelization of the transport sweep —
// how Sweep3D actually runs on a cluster. Unlike the stencil's halo
// exchange (all pairs exchange, then everyone computes), the wavefront's
// dependency is a *chain*: in a downward sweep, rank i cannot start its
// strip until rank i-1 has finished and sent its last computed row; the
// upward sweep reverses the chain. Each iteration performs one sweep in
// each direction, so the communication pattern alternates — exactly the
// direction-reversing structure the Sweep3D workload model approximates
// with its alternation shift.
//
// The distributed result is bit-identical to a sequential two-directional
// wavefront on the equivalent global grid (asserted by tests).
type DistWavefront struct {
	world *mpi.World
	eng   *des.Engine

	nx, rowsPerRank int
	seed            float64
	grids           []*Array // one strip (rows+2 incl. halo rows) per rank

	iter     int
	stopped  bool
	computeT des.Time // per-strip sweep cost
	onIter   func(iter int, done func())
	doneAll  func()
	target   int
}

const (
	tagSweepDown = 201
	tagSweepUp   = 202
)

// NewDistWavefront builds the decomposed sweep over the given world:
// rowsPerRank interior rows plus two halo rows per rank. The left column
// and the global top row hold the inflow boundary value seed.
func NewDistWavefront(eng *des.Engine, world *mpi.World, nx, rowsPerRank int, seed float64, computeTime des.Time) (*DistWavefront, error) {
	if nx < 2 || rowsPerRank < 1 {
		return nil, fmt.Errorf("kernels: dist wavefront %dx%d too small", nx, rowsPerRank)
	}
	if computeTime <= 0 {
		return nil, fmt.Errorf("kernels: compute time must be positive")
	}
	d := &DistWavefront{
		world: world, eng: eng, nx: nx, rowsPerRank: rowsPerRank,
		seed: seed, computeT: computeTime,
	}
	ny := rowsPerRank + 2
	for i := 0; i < world.Size(); i++ {
		a, err := NewArray(world.Rank(i).Space(), nx*ny)
		if err != nil {
			return nil, err
		}
		// Left column seeded everywhere; global top row (rank 0's halo
		// row 0) seeded as the sweep inflow.
		edge := []float64{seed}
		for y := 0; y < ny; y++ {
			if err := a.Write(edge, y*nx); err != nil {
				return nil, err
			}
		}
		if i == 0 {
			row := make([]float64, nx)
			for x := range row {
				row[x] = seed
			}
			if err := a.Write(row, 0); err != nil {
				return nil, err
			}
		}
		d.grids = append(d.grids, a)
	}
	return d, nil
}

// AttachDistWavefront rebuilds the solver over restored address spaces,
// resuming at the given completed-iteration count.
func AttachDistWavefront(eng *des.Engine, world *mpi.World, nx, rowsPerRank int, seed float64, computeTime des.Time, iter int) (*DistWavefront, error) {
	d := &DistWavefront{
		world: world, eng: eng, nx: nx, rowsPerRank: rowsPerRank,
		seed: seed, computeT: computeTime, iter: iter,
	}
	for i := 0; i < world.Size(); i++ {
		a, err := attachSingleGrid(world.Rank(i).Space(), nx*(rowsPerRank+2))
		if err != nil {
			return nil, fmt.Errorf("kernels: rank %d: %w", i, err)
		}
		d.grids = append(d.grids, a)
	}
	return d, nil
}

// Iter returns the completed iteration count.
func (d *DistWavefront) Iter() int { return d.iter }

// Stop abandons the computation (failure path): pending events become
// no-ops.
func (d *DistWavefront) Stop() { d.stopped = true }

// Run executes iterations until target, with the same hook contract as
// DistStencil.Run.
func (d *DistWavefront) Run(target int, onIter func(iter int, done func()), onDone func()) {
	d.target = target
	d.onIter = onIter
	d.doneAll = onDone
	d.iterate()
}

// rowAddr returns the address of local row y in rank i's grid.
func (d *DistWavefront) rowAddr(i, y int) uint64 {
	return d.grids[i].base + uint64(y*d.nx*8)
}

// rowBytes reads local row y of rank i as raw bytes.
func (d *DistWavefront) rowBytes(i, y int) []byte {
	buf := make([]byte, d.nx*8)
	if err := d.grids[i].space.Read(d.rowAddr(i, y), buf); err != nil {
		panic(fmt.Sprintf("kernels: wavefront row read: %v", err))
	}
	return buf
}

// sweepStrip updates rank i's interior rows in the given direction using
// the already-updated upwind halo row — the Gauss-Seidel-style transport
// update of Wavefront.sweepFrom, restricted to one strip.
func (d *DistWavefront) sweepStrip(i int, down bool) {
	a := d.grids[i]
	ny := d.rowsPerRank + 2
	prev := make([]float64, d.nx)
	cur := make([]float64, d.nx)
	ys := make([]int, 0, d.rowsPerRank)
	if down {
		for y := 1; y <= d.rowsPerRank; y++ {
			ys = append(ys, y)
		}
		if err := a.Read(prev, 0); err != nil {
			panic(err)
		}
	} else {
		for y := d.rowsPerRank; y >= 1; y-- {
			ys = append(ys, y)
		}
		if err := a.Read(prev, (ny-1)*d.nx); err != nil {
			panic(err)
		}
	}
	for _, y := range ys {
		if err := a.Read(cur, y*d.nx); err != nil {
			panic(err)
		}
		if down {
			for x := 1; x < d.nx; x++ {
				cur[x] = 0.5*cur[x-1] + 0.5*prev[x] + 0.01
			}
		} else {
			for x := d.nx - 2; x >= 0; x-- {
				cur[x] = 0.5*cur[x+1] + 0.5*prev[x] + 0.01
			}
		}
		if err := a.Write(cur, y*d.nx); err != nil {
			panic(err)
		}
		copy(prev, cur)
	}
}

// iterate performs one iteration: a pipelined downward sweep (rank 0
// first) followed by a pipelined upward sweep (rank n-1 first).
func (d *DistWavefront) iterate() {
	if d.stopped {
		return
	}
	if d.iter >= d.target {
		if d.doneAll != nil {
			d.doneAll()
		}
		return
	}
	d.sweepChain(true, 0, func() {
		d.sweepChain(false, d.world.Size()-1, func() {
			d.iter++
			next := func() {
				if !d.stopped {
					d.iterate()
				}
			}
			if d.onIter != nil {
				d.onIter(d.iter, next)
				return
			}
			next()
		})
	})
}

// sweepChain runs one directional sweep down (or up) the rank chain:
// each rank computes after its upwind neighbour's boundary row arrives,
// then forwards its own boundary row.
func (d *DistWavefront) sweepChain(down bool, rank int, done func()) {
	if d.stopped {
		return
	}
	n := d.world.Size()
	ny := d.rowsPerRank + 2
	// Compute this rank's strip, charging the per-strip cost.
	d.sweepStrip(rank, down)
	d.eng.After(d.computeT, func() {
		if d.stopped {
			return
		}
		var next int
		var tag int
		var sendRow, recvRow int
		if down {
			next, tag = rank+1, tagSweepDown
			sendRow, recvRow = d.rowsPerRank, 0
		} else {
			next, tag = rank-1, tagSweepUp
			sendRow, recvRow = 1, ny-1
		}
		if next < 0 || next >= n {
			done()
			return
		}
		// Deliver the boundary row into the downwind rank's halo, then
		// continue the chain there.
		d.world.Rank(next).Recv(rank, tag, d.rowAddr(next, recvRow), func(mpi.Message) {
			if d.stopped {
				return
			}
			d.sweepChain(down, next, done)
		})
		d.world.Rank(rank).SendData(next, tag, d.rowBytes(rank, sendRow), nil)
	})
}

// Gather assembles the global interior (owned rows, top to bottom).
func (d *DistWavefront) Gather() ([]float64, error) {
	var out []float64
	row := make([]float64, d.nx)
	for i := range d.grids {
		for y := 1; y <= d.rowsPerRank; y++ {
			if err := d.grids[i].Read(row, y*d.nx); err != nil {
				return nil, err
			}
			out = append(out, row...)
		}
	}
	return out, nil
}

// WavefrontReference replays the same two-directional sweep sequentially
// on plain slices over the equivalent global grid and returns its
// interior after iters iterations.
func WavefrontReference(nx, rowsPerRank, ranks, iters int, seed float64) []float64 {
	nyG := ranks*rowsPerRank + 2
	v := make([]float64, nx*nyG)
	for y := 0; y < nyG; y++ {
		v[y*nx] = seed
	}
	for x := 0; x < nx; x++ {
		v[x] = seed
	}
	for it := 0; it < iters; it++ {
		// Downward sweep over global interior rows.
		for y := 1; y <= ranks*rowsPerRank; y++ {
			for x := 1; x < nx; x++ {
				v[y*nx+x] = 0.5*v[y*nx+x-1] + 0.5*v[(y-1)*nx+x] + 0.01
			}
		}
		// Upward sweep (reads the global bottom halo row, which is
		// never written — it stays at its initial value).
		for y := ranks * rowsPerRank; y >= 1; y-- {
			for x := nx - 2; x >= 0; x-- {
				v[y*nx+x] = 0.5*v[y*nx+x+1] + 0.5*v[(y+1)*nx+x] + 0.01
			}
		}
	}
	var out []float64
	for y := 1; y <= ranks*rowsPerRank; y++ {
		out = append(out, v[y*nx:(y+1)*nx]...)
	}
	return out
}
