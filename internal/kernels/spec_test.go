package kernels

import (
	"testing"

	"repro/internal/ckptspec"
	"repro/internal/mem"
)

// TestSpecParsesAndClassifies pins the committed kernels.ckptspec: it
// parses, names this package, and classifies the known allocation
// sites the way the paper's ablation depends on — grids must, staging
// arenas recomputable, the twiddle table recomputable, raw arenas
// unknown.
func TestSpecParsesAndClassifies(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Package != "repro/internal/kernels" {
		t.Errorf("spec package = %q", spec.Package)
	}
	wantClass := map[string]ckptspec.Class{
		"Stencil2D.a":    ckptspec.Must,
		"Stencil2D.b":    ckptspec.Must,
		"Stencil2D.work": ckptspec.Recomputable,
		"SSOR.u":         ckptspec.Must,
		"SSOR.work":      ckptspec.Recomputable,
		"Wavefront.v":    ckptspec.Must,
		"Wavefront.work": ckptspec.Recomputable,
		"ADI.u":          ckptspec.Must,
		"ADI.work":       ckptspec.Recomputable,
		"FFT.x":          ckptspec.Must,
		"FFT.y":          ckptspec.Must,
		"FFT.tw":         ckptspec.Recomputable,
		"DistPut.arenas": ckptspec.Unknown,
	}
	for name, class := range wantClass {
		r, ok := spec.Lookup(name)
		if !ok {
			t.Errorf("spec missing %s", name)
			continue
		}
		if r.Class != class {
			t.Errorf("%s = %s, want %s", name, r.Class, class)
		}
	}
}

// TestBindingsCoverSpec builds every single-space kernel and checks
// each binding resolves to a spec entry with a live region, and that
// the recomputable selection is exactly the staging arenas (plus the
// FFT table, which must carry its recompute hook).
func TestBindingsCoverSpec(t *testing.T) {
	spec, err := Spec()
	if err != nil {
		t.Fatal(err)
	}
	space := func() *mem.AddressSpace {
		return mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	type bound interface {
		ProtectionBindings() []ckptspec.Binding
	}
	build := []struct {
		name       string
		kernel     func() (bound, error)
		recompute  []string
		needsHooks []string
	}{
		{"stencil", func() (bound, error) { return NewStencil2D(space(), 8, 8, 1) }, []string{"Stencil2D.work"}, nil},
		{"ssor", func() (bound, error) { return NewSSOR(space(), 8, 8, 1, 1.2) }, []string{"SSOR.work"}, nil},
		{"wavefront", func() (bound, error) { return NewWavefront(space(), 8, 8, 1) }, []string{"Wavefront.work"}, nil},
		{"adi", func() (bound, error) { return NewADI(space(), 8, 8, 1, 0.5) }, []string{"ADI.work"}, nil},
		{"fft", func() (bound, error) { return NewFFT(space(), 64) }, []string{"FFT.tw", "FFT.x"}, []string{"FFT.tw"}},
	}
	for _, b := range build {
		k, err := b.kernel()
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		bindings := k.ProtectionBindings()
		for _, bd := range bindings {
			if _, ok := spec.Lookup(bd.Name); !ok {
				t.Errorf("%s: binding %s has no spec entry", b.name, bd.Name)
			}
			if bd.Region == nil {
				t.Errorf("%s: binding %s has nil region", b.name, bd.Name)
			}
		}
		ex := spec.Recomputable(bindings)
		var exNames []string
		for _, e := range ex {
			exNames = append(exNames, e.Name)
		}
		// recompute lists the bindings that may be excluded; FFT.x is
		// in the candidate list above only to document it must NOT be
		// selected (it is must-class).
		want := map[string]bool{}
		for _, n := range b.recompute {
			if r, ok := spec.Lookup(n); ok && !r.Class.Protected() {
				want[n] = true
			}
		}
		if len(exNames) != len(want) {
			t.Errorf("%s: recomputable = %v, want %v", b.name, exNames, want)
		}
		for _, n := range exNames {
			if !want[n] {
				t.Errorf("%s: unexpectedly excludable: %s", b.name, n)
			}
		}
		hooks := map[string]bool{}
		for _, n := range b.needsHooks {
			hooks[n] = true
		}
		for _, e := range ex {
			if hooks[e.Name] && e.Recompute == nil {
				t.Errorf("%s: %s excluded without a recompute hook", b.name, e.Name)
			}
		}
	}
}
