package kernels

import (
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

func distWorld(t *testing.T, ranks int) (*des.Engine, *mpi.World) {
	t.Helper()
	eng := des.NewEngine()
	spaces := make([]*mem.AddressSpace, ranks)
	for i := range spaces {
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	w, err := mpi.NewWorld(eng, mpi.QsNet(), mpi.Bounce, spaces)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestDistStencilMatchesGlobalReference(t *testing.T) {
	const nx, rows, ranks, iters = 16, 4, 4, 10
	eng, w := distWorld(t, ranks)
	d, err := NewDistStencil(eng, w, nx, rows, 7.5, 10*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	d.Run(iters, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("distributed run never completed")
	}
	if d.Iter() != iters {
		t.Fatalf("iterations = %d", d.Iter())
	}
	got, err := d.Gather()
	if err != nil {
		t.Fatal(err)
	}
	want, err := GlobalReference(nx, rows, ranks, iters, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: distributed %v != global %v (bit-exactness lost)", i, got[i], want[i])
		}
	}
}

func TestDistStencilSingleRank(t *testing.T) {
	eng, w := distWorld(t, 1)
	d, err := NewDistStencil(eng, w, 12, 6, 3, des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	d.Run(5, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("single-rank run never completed")
	}
	got, _ := d.Gather()
	want, _ := GlobalReference(12, 6, 1, 5, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestDistStencilIterationHook(t *testing.T) {
	eng, w := distWorld(t, 2)
	d, _ := NewDistStencil(eng, w, 8, 3, 1, des.Millisecond)
	var hooks []int
	d.Run(4, func(iter int, next func()) {
		hooks = append(hooks, iter)
		// Insert a virtual pause before resuming — like a checkpoint.
		eng.After(50*des.Millisecond, next)
	}, nil)
	eng.Run(des.MaxTime)
	if len(hooks) != 4 || hooks[0] != 1 || hooks[3] != 4 {
		t.Fatalf("hooks = %v", hooks)
	}
	// Pauses must show in virtual time: 4 iterations x (exchange +
	// 1ms compute + 50ms pause) > 200ms.
	if eng.Now() < 200*des.Millisecond {
		t.Fatalf("elapsed %v too short for paused iterations", eng.Now())
	}
}

func TestDistStencilStop(t *testing.T) {
	eng, w := distWorld(t, 2)
	d, _ := NewDistStencil(eng, w, 8, 3, 1, des.Millisecond)
	finished := false
	d.Run(1000, func(iter int, next func()) {
		if iter == 3 {
			d.Stop()
			return // never resume
		}
		next()
	}, func() { finished = true })
	eng.Run(des.MaxTime)
	if finished {
		t.Fatal("stopped run reported completion")
	}
	if d.Iter() != 3 {
		t.Fatalf("iterations after stop = %d", d.Iter())
	}
}

func TestDistStencilValidation(t *testing.T) {
	eng, w := distWorld(t, 2)
	if _, err := NewDistStencil(eng, w, 2, 3, 1, des.Millisecond); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := NewDistStencil(eng, w, 8, 0, 1, des.Millisecond); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewDistStencil(eng, w, 8, 3, 1, 0); err == nil {
		t.Fatal("zero compute time accepted")
	}
}

func TestDistStencilHaloWritesAreTracked(t *testing.T) {
	// Halo payload deliveries must take write faults on protected grid
	// pages (the §4.2 bounce path), so checkpointers see them.
	eng, w := distWorld(t, 2)
	d, err := NewDistStencil(eng, w, 512, 4, 1, des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sp := w.Rank(1).Space()
	var haloFaults int
	sp.SetFaultHandler(func(f mem.Fault) {
		haloFaults++
		f.Region.SetProtected(f.Page, false)
	})
	// Protect only rank 1's grids; the halo from rank 0 must fault.
	d.Grid(1).Cur().Region().ProtectAll()
	done := false
	d.Run(1, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("run incomplete")
	}
	if haloFaults == 0 {
		t.Fatal("halo delivery bypassed write-fault tracking")
	}
}

func BenchmarkDistStencilIteration(b *testing.B) {
	eng := des.NewEngine()
	spaces := make([]*mem.AddressSpace, 4)
	for i := range spaces {
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	w, _ := mpi.NewWorld(eng, mpi.QsNet(), mpi.Bounce, spaces)
	d, _ := NewDistStencil(eng, w, 64, 16, 1, des.Millisecond)
	b.SetBytes(4 * 64 * 18 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		d.Run(d.Iter()+1, nil, func() { done = true })
		eng.Run(des.MaxTime)
		if !done {
			b.Fatal("iteration incomplete")
		}
	}
}

// mpiWorld builds a world over existing spaces (recovery-path helper for
// tests).
func mpiWorld(eng *des.Engine, spaces []*mem.AddressSpace) (*mpi.World, error) {
	return mpi.NewWorld(eng, mpi.QsNet(), mpi.Bounce, spaces)
}
