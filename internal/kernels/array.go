// Package kernels implements real numerical kernels — Jacobi stencil,
// SSOR, wavefront sweep, ADI tridiagonal solves, and an FFT — whose data
// lives in a simulated address space and whose every store goes through
// the simulated MMU. They are scaled-down, genuine counterparts of the
// paper's applications (Sweep3D's wavefront, LU's SSOR, BT/SP's ADI, FT's
// FFT): the synthetic models in internal/workload reproduce the paper's
// published write patterns at full scale, while these kernels validate
// that the tracker and checkpointer observe *real* programs correctly —
// double-buffered page alternation, in-place sweeps, transpose bursts —
// and that checkpoint/restore preserves real computations.
package kernels

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mem"
)

// Array is a dense float64 vector stored in a region of a simulated
// address space. All element accesses go through the simulated MMU, so a
// tracker attached to the space observes the kernel's true write pattern.
type Array struct {
	space *mem.AddressSpace
	reg   *mem.Region
	base  uint64
	n     int
}

// NewArray maps a fresh arena holding n float64s.
func NewArray(space *mem.AddressSpace, n int) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kernels: array length %d", n)
	}
	reg, err := space.Mmap(uint64(n) * 8)
	if err != nil {
		return nil, err
	}
	return &Array{space: space, reg: reg, base: reg.Start(), n: n}, nil
}

// AttachArray rebinds an Array to an existing region starting at addr —
// the restore path, where checkpointed arenas already exist in the
// address space at their original locations.
func AttachArray(space *mem.AddressSpace, addr uint64, n int) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kernels: array length %d", n)
	}
	reg := space.Find(addr)
	if reg == nil || reg.Start() != addr {
		return nil, fmt.Errorf("kernels: no region starts at %#x", addr)
	}
	if reg.Size() < uint64(n)*8 {
		return nil, fmt.Errorf("kernels: region at %#x holds %d bytes, need %d", addr, reg.Size(), n*8)
	}
	return &Array{space: space, reg: reg, base: addr, n: n}, nil
}

// Len returns the element count.
func (a *Array) Len() int { return a.n }

// Region returns the backing region.
func (a *Array) Region() *mem.Region { return a.reg }

// Free unmaps the backing region.
func (a *Array) Free() error { return a.space.Munmap(a.reg) }

func (a *Array) check(off, n int) error {
	if off < 0 || n < 0 || off+n > a.n {
		return fmt.Errorf("kernels: slice [%d,%d) out of array of %d", off, off+n, a.n)
	}
	return nil
}

// Read copies elements [off, off+len(dst)) into dst.
func (a *Array) Read(dst []float64, off int) error {
	if err := a.check(off, len(dst)); err != nil {
		return err
	}
	buf := make([]byte, len(dst)*8)
	if err := a.space.Read(a.base+uint64(off)*8, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// Write stores src at element offset off, faulting through the MMU like
// any application store.
func (a *Array) Write(src []float64, off int) error {
	if err := a.check(off, len(src)); err != nil {
		return err
	}
	buf := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return a.space.Write(a.base+uint64(off)*8, buf)
}

// Fill sets every element to v.
func (a *Array) Fill(v float64) error {
	row := make([]float64, min(a.n, 4096))
	for i := range row {
		row[i] = v
	}
	for off := 0; off < a.n; off += len(row) {
		chunk := row[:min(len(row), a.n-off)]
		if err := a.Write(chunk, off); err != nil {
			return err
		}
	}
	return nil
}

// At returns element i (convenience for tests; row I/O is faster).
func (a *Array) At(i int) (float64, error) {
	var one [1]float64
	err := a.Read(one[:], i)
	return one[0], err
}

// Checksum returns the sum of all elements — a cheap integrity probe for
// checkpoint/restore equivalence tests.
func (a *Array) Checksum() (float64, error) {
	row := make([]float64, min(a.n, 4096))
	var sum float64
	for off := 0; off < a.n; off += len(row) {
		chunk := row[:min(len(row), a.n-off)]
		if err := a.Read(chunk, off); err != nil {
			return 0, err
		}
		for _, v := range chunk {
			sum += v
		}
	}
	return sum, nil
}
