package kernels

// Values accessors give every single-space kernel a uniform way to
// export its full solution state for verification, and — together with
// Step/Iter/ProtectionBindings — the face the autonomic SoloFactory
// adapter supervises. FFT additionally aliases Pass as Step so the
// butterfly passes count as iterations.

// Values returns the current solution buffer's contents.
func (s *Stencil2D) Values() ([]float64, error) {
	out := make([]float64, s.nx*s.ny)
	if err := s.Cur().Read(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Values returns the grid contents.
func (s *SSOR) Values() ([]float64, error) {
	out := make([]float64, s.nx*s.ny)
	if err := s.u.Read(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Values returns the grid contents.
func (w *Wavefront) Values() ([]float64, error) {
	out := make([]float64, w.nx*w.ny)
	if err := w.v.Read(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Values returns the grid contents.
func (a *ADI) Values() ([]float64, error) {
	out := make([]float64, a.nx*a.ny)
	if err := a.u.Read(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Step performs one butterfly pass, so the transform's log2(n) passes
// supervise like iterations.
func (f *FFT) Step() error { return f.Pass() }

// Iter returns completed butterfly passes.
func (f *FFT) Iter() int { return f.pass }

// Values returns the raw interleaved re/im contents of the buffer
// holding the latest pass.
func (f *FFT) Values() ([]float64, error) {
	src, _ := f.cur()
	out := make([]float64, 2*f.n)
	if err := src.Read(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}
