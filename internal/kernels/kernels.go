package kernels

import (
	"fmt"

	"repro/internal/mem"
)

// Stencil2D is a double-buffered 5-point Jacobi iteration on an nx x ny
// grid — the canonical bulk-synchronous kernel. Because it ping-pongs
// between two arrays, consecutive iterations dirty different page sets:
// the real-code counterpart of the workload models' AltShift behaviour
// (and of NAS FT's out-of-place buffers).
type Stencil2D struct {
	nx, ny int
	a, b   *Array
	work   *Array // staging row: fully rewritten before any read, every sweep
	iter   int
}

// NewStencil2D allocates the two grid buffers in space, with boundary
// values boundary and interior zero.
func NewStencil2D(space *mem.AddressSpace, nx, ny int, boundary float64) (*Stencil2D, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("kernels: stencil grid %dx%d too small", nx, ny)
	}
	a, err := NewArray(space, nx*ny)
	if err != nil {
		return nil, err
	}
	b, err := NewArray(space, nx*ny)
	if err != nil {
		return nil, err
	}
	work, err := NewArray(space, nx)
	if err != nil {
		return nil, err
	}
	s := &Stencil2D{nx: nx, ny: ny, a: a, b: b, work: work}
	// Boundary rows/columns hold the boundary value in both buffers.
	row := make([]float64, nx)
	for i := range row {
		row[i] = boundary
	}
	for _, arr := range []*Array{a, b} {
		if err := arr.Write(row, 0); err != nil {
			return nil, err
		}
		if err := arr.Write(row, (ny-1)*nx); err != nil {
			return nil, err
		}
		edge := []float64{boundary}
		for y := 1; y < ny-1; y++ {
			if err := arr.Write(edge, y*nx); err != nil {
				return nil, err
			}
			if err := arr.Write(edge, y*nx+nx-1); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// AttachStencil2D rebuilds a Stencil2D handle over a restored address
// space. The arenas must have been created by NewStencil2D with the
// same dimensions; they are rebound by allocation-order layout matching
// (NewStencil2D allocates a, b, then the staging row). iter sets the
// completed-iteration count, which selects the current buffer — pass
// the iteration the checkpoint was taken at.
func AttachStencil2D(space *mem.AddressSpace, nx, ny, iter int) (*Stencil2D, error) {
	if nx < 3 || ny < 3 || iter < 0 {
		return nil, fmt.Errorf("kernels: bad attach parameters %dx%d iter %d", nx, ny, iter)
	}
	bufs, err := arenaLayout(space, nx*ny, nx*ny, nx)
	if err != nil {
		return nil, err
	}
	return &Stencil2D{nx: nx, ny: ny, a: bufs[0], b: bufs[1], work: bufs[2], iter: iter}, nil
}

// SetRow writes initial conditions into row y of *both* buffers, so the
// values behave as if they had always been there (useful for seeding
// already-converged subregions).
func (s *Stencil2D) SetRow(y int, vals []float64) error {
	if y < 0 || y >= s.ny || len(vals) != s.nx {
		return fmt.Errorf("kernels: SetRow(%d) with %d values on %dx%d grid", y, len(vals), s.nx, s.ny)
	}
	if err := s.a.Write(vals, y*s.nx); err != nil {
		return err
	}
	return s.b.Write(vals, y*s.nx)
}

// Cur returns the buffer holding the current solution.
func (s *Stencil2D) Cur() *Array {
	if s.iter%2 == 0 {
		return s.a
	}
	return s.b
}

func (s *Stencil2D) next() *Array {
	if s.iter%2 == 0 {
		return s.b
	}
	return s.a
}

// Iter returns the number of completed iterations.
func (s *Stencil2D) Iter() int { return s.iter }

// Step performs one Jacobi sweep: next[y][x] = mean of cur's 4 neighbours.
func (s *Stencil2D) Step() error {
	cur, nxt := s.Cur(), s.next()
	up := make([]float64, s.nx)
	mid := make([]float64, s.nx)
	down := make([]float64, s.nx)
	out := make([]float64, s.nx)
	if err := cur.Read(mid, 0); err != nil {
		return err
	}
	if err := cur.Read(down, s.nx); err != nil {
		return err
	}
	for y := 1; y < s.ny-1; y++ {
		up, mid, down = mid, down, up
		if err := cur.Read(down, (y+1)*s.nx); err != nil {
			return err
		}
		out[0] = mid[0]
		out[s.nx-1] = mid[s.nx-1]
		for x := 1; x < s.nx-1; x++ {
			out[x] = 0.25 * (up[x] + down[x] + mid[x-1] + mid[x+1])
		}
		// Publish through the staging arena before committing to the
		// grid, the way production solvers assemble a result row in
		// private workspace. The arena is rewritten at the same offset
		// from protected inputs on every sweep — never read across an
		// iteration boundary — which is what lets the ckptset analysis
		// classify it recomputable and drop it from checkpoint lines.
		if err := s.work.Write(out, 0); err != nil {
			return err
		}
		if err := s.work.Read(out, 0); err != nil {
			return err
		}
		if err := nxt.Write(out, y*s.nx); err != nil {
			return err
		}
	}
	s.iter++
	return nil
}

// Run performs n sweeps.
func (s *Stencil2D) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Residual returns the max absolute difference between the two buffers'
// interiors — the Jacobi convergence measure.
func (s *Stencil2D) Residual() (float64, error) {
	ra := make([]float64, s.nx)
	rb := make([]float64, s.nx)
	var res float64
	for y := 1; y < s.ny-1; y++ {
		if err := s.a.Read(ra, y*s.nx); err != nil {
			return 0, err
		}
		if err := s.b.Read(rb, y*s.nx); err != nil {
			return 0, err
		}
		for x := 1; x < s.nx-1; x++ {
			if d := ra[x] - rb[x]; d > res {
				res = d
			} else if -d > res {
				res = -d
			}
		}
	}
	return res, nil
}

// SSOR is an in-place symmetric successive over-relaxation smoother on an
// nx x ny grid: one forward (lower-triangular) and one backward
// (upper-triangular) Gauss-Seidel sweep per iteration, like NAS LU's
// solver. Being in-place, it rewrites the same pages every iteration —
// the fixed-working-set pattern of LU/SP/BT.
type SSOR struct {
	nx, ny int
	u      *Array
	work   *Array // staging row: fully rewritten before any read, every sweep
	omega  float64
	iter   int
}

// NewSSOR allocates the grid with the given boundary value and
// relaxation factor omega in (0, 2).
func NewSSOR(space *mem.AddressSpace, nx, ny int, boundary, omega float64) (*SSOR, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("kernels: ssor grid %dx%d too small", nx, ny)
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("kernels: ssor omega %v out of (0,2)", omega)
	}
	u, err := NewArray(space, nx*ny)
	if err != nil {
		return nil, err
	}
	work, err := NewArray(space, nx)
	if err != nil {
		return nil, err
	}
	s := &SSOR{nx: nx, ny: ny, u: u, work: work, omega: omega}
	row := make([]float64, nx)
	for i := range row {
		row[i] = boundary
	}
	if err := u.Write(row, 0); err != nil {
		return nil, err
	}
	if err := u.Write(row, (ny-1)*nx); err != nil {
		return nil, err
	}
	edge := []float64{boundary}
	for y := 1; y < ny-1; y++ {
		if err := u.Write(edge, y*nx); err != nil {
			return nil, err
		}
		if err := u.Write(edge, y*nx+nx-1); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Grid returns the solution array.
func (s *SSOR) Grid() *Array { return s.u }

// Iter returns completed iterations.
func (s *SSOR) Iter() int { return s.iter }

func (s *SSOR) sweep(backward bool) error {
	up := make([]float64, s.nx)
	mid := make([]float64, s.nx)
	down := make([]float64, s.nx)
	ys := make([]int, 0, s.ny-2)
	if backward {
		for y := s.ny - 2; y >= 1; y-- {
			ys = append(ys, y)
		}
	} else {
		for y := 1; y < s.ny-1; y++ {
			ys = append(ys, y)
		}
	}
	for _, y := range ys {
		if err := s.u.Read(up, (y-1)*s.nx); err != nil {
			return err
		}
		if err := s.u.Read(mid, y*s.nx); err != nil {
			return err
		}
		if err := s.u.Read(down, (y+1)*s.nx); err != nil {
			return err
		}
		if backward {
			for x := s.nx - 2; x >= 1; x-- {
				gs := 0.25 * (up[x] + down[x] + mid[x-1] + mid[x+1])
				mid[x] += s.omega * (gs - mid[x])
			}
		} else {
			for x := 1; x < s.nx-1; x++ {
				gs := 0.25 * (up[x] + down[x] + mid[x-1] + mid[x+1])
				mid[x] += s.omega * (gs - mid[x])
			}
		}
		// Stage the relaxed row through the scratch arena (rewritten at
		// offset 0 every row, dead across iteration boundaries).
		if err := s.work.Write(mid, 0); err != nil {
			return err
		}
		if err := s.work.Read(mid, 0); err != nil {
			return err
		}
		if err := s.u.Write(mid, y*s.nx); err != nil {
			return err
		}
	}
	return nil
}

// Step performs one SSOR iteration (forward + backward sweep).
func (s *SSOR) Step() error {
	if err := s.sweep(false); err != nil {
		return err
	}
	if err := s.sweep(true); err != nil {
		return err
	}
	s.iter++
	return nil
}

// Wavefront is a 2-D analogue of Sweep3D's transport sweep: each cell
// combines its west and north neighbours, and each iteration performs
// four corner-origin sweeps (the 2-D "octants"), alternating write
// direction exactly like the transport code.
type Wavefront struct {
	nx, ny int
	v      *Array
	work   *Array // staging row: fully rewritten before any read, every sweep
	iter   int
}

// NewWavefront allocates the grid initialised to seed along the edges.
func NewWavefront(space *mem.AddressSpace, nx, ny int, seed float64) (*Wavefront, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("kernels: wavefront grid %dx%d too small", nx, ny)
	}
	v, err := NewArray(space, nx*ny)
	if err != nil {
		return nil, err
	}
	work, err := NewArray(space, nx)
	if err != nil {
		return nil, err
	}
	w := &Wavefront{nx: nx, ny: ny, v: v, work: work}
	row := make([]float64, nx)
	for i := range row {
		row[i] = seed
	}
	if err := v.Write(row, 0); err != nil {
		return nil, err
	}
	edge := []float64{seed}
	for y := 1; y < ny; y++ {
		if err := v.Write(edge, y*nx); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Grid returns the solution array.
func (w *Wavefront) Grid() *Array { return w.v }

// Iter returns completed iterations.
func (w *Wavefront) Iter() int { return w.iter }

// sweepFrom runs one directional sweep with origin corner (ox, oy) in
// {0,1}^2: cells are visited moving away from the origin, each updated
// from its two upwind neighbours.
func (w *Wavefront) sweepFrom(ox, oy int) error {
	prev := make([]float64, w.nx)
	cur := make([]float64, w.nx)
	for i := 0; i < w.ny; i++ {
		y := i
		if oy == 1 {
			y = w.ny - 1 - i
		}
		if err := w.v.Read(cur, y*w.nx); err != nil {
			return err
		}
		if i > 0 {
			for j := 1; j < w.nx; j++ {
				x := j
				if ox == 1 {
					x = w.nx - 1 - j
				}
				upwindX := x - 1
				if ox == 1 {
					upwindX = x + 1
				}
				cur[x] = 0.5*cur[upwindX] + 0.5*prev[x] + 0.01
			}
			// Stage the swept row through the scratch arena (rewritten
			// at offset 0 every row, dead across iteration boundaries).
			if err := w.work.Write(cur, 0); err != nil {
				return err
			}
			if err := w.work.Read(cur, 0); err != nil {
				return err
			}
			if err := w.v.Write(cur, y*w.nx); err != nil {
				return err
			}
		}
		prev, cur = cur, prev
	}
	return nil
}

// Step performs one iteration: four corner-origin sweeps.
func (w *Wavefront) Step() error {
	for _, c := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if err := w.sweepFrom(c[0], c[1]); err != nil {
			return err
		}
	}
	w.iter++
	return nil
}

// ADI is an alternating-direction-implicit step like NAS SP/BT's solvers:
// each iteration performs tridiagonal Thomas solves along every row, then
// along every column, over a right-hand side derived from the current
// solution.
type ADI struct {
	nx, ny int
	u      *Array
	work   *Array // staging: row slot at 0, column slot at nx; rewritten every solve
	iter   int
	lambda float64 // implicit coupling strength
}

// NewADI allocates the grid with the given initial interior value.
func NewADI(space *mem.AddressSpace, nx, ny int, initial, lambda float64) (*ADI, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("kernels: adi grid %dx%d too small", nx, ny)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("kernels: adi lambda %v must be positive", lambda)
	}
	u, err := NewArray(space, nx*ny)
	if err != nil {
		return nil, err
	}
	work, err := NewArray(space, nx+ny)
	if err != nil {
		return nil, err
	}
	a := &ADI{nx: nx, ny: ny, u: u, work: work, lambda: lambda}
	row := make([]float64, nx)
	for i := range row {
		row[i] = initial
	}
	for y := 0; y < ny; y++ {
		if err := u.Write(row, y*nx); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Grid returns the solution array.
func (a *ADI) Grid() *Array { return a.u }

// Iter returns completed iterations.
func (a *ADI) Iter() int { return a.iter }

// thomas solves the constant-coefficient tridiagonal system
// (1+2L) x_i - L x_{i-1} - L x_{i+1} = d_i in place on d.
func thomas(d []float64, lambda float64) {
	n := len(d)
	c := make([]float64, n)
	b := 1 + 2*lambda
	c[0] = -lambda / b
	d[0] /= b
	for i := 1; i < n; i++ {
		m := b + lambda*c[i-1]
		if i < n-1 {
			c[i] = -lambda / m
		}
		d[i] = (d[i] + lambda*d[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= c[i] * d[i+1]
	}
}

// Step performs one ADI iteration: row solves then column solves.
func (a *ADI) Step() error {
	// Row direction.
	row := make([]float64, a.nx)
	for y := 0; y < a.ny; y++ {
		if err := a.u.Read(row, y*a.nx); err != nil {
			return err
		}
		thomas(row, a.lambda)
		// Stage the solved row through the scratch arena's row slot
		// (rewritten at offset 0 every solve, dead across iterations).
		if err := a.work.Write(row, 0); err != nil {
			return err
		}
		if err := a.work.Read(row, 0); err != nil {
			return err
		}
		if err := a.u.Write(row, y*a.nx); err != nil {
			return err
		}
	}
	// Column direction: gather, solve, scatter.
	col := make([]float64, a.ny)
	one := make([]float64, 1)
	for x := 0; x < a.nx; x++ {
		for y := 0; y < a.ny; y++ {
			if err := a.u.Read(one, y*a.nx+x); err != nil {
				return err
			}
			col[y] = one[0]
		}
		thomas(col, a.lambda)
		// Column slot of the scratch arena, at offset nx.
		if err := a.work.Write(col, a.nx); err != nil {
			return err
		}
		if err := a.work.Read(col, a.nx); err != nil {
			return err
		}
		for y := 0; y < a.ny; y++ {
			one[0] = col[y]
			if err := a.u.Write(one, y*a.nx+x); err != nil {
				return err
			}
		}
	}
	a.iter++
	return nil
}
