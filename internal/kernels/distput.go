package kernels

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// DistPut is the workload that makes the §4.2 NIC-vs-mprotect conflict
// *matter*: a ring of ranks exchanging state through one-sided RDMA
// writes (mpi.Put). Each rank owns a window W and an accumulator A.
// Every iteration the CPU folds the window into the accumulator
// (ordinary tracked writes); every PutEvery-th iteration each rank Puts
// a function of its accumulator into its right neighbour's window.
//
// The window is *only ever written by the NIC*. Under bounce-buffer
// delivery those writes fault and the tracker sees them; under naive
// Direct delivery they are silent — every incremental checkpoint omits
// the window, and a restore replays a stale window that the subsequent
// sweeps fold into the accumulator, corrupting the answer end to end.
// (The halo-exchanging kernels are immune by accident: they re-receive
// halos before every read. One-sided windows have no such re-send.)
//
// Timing contract: a put injected at an iteration boundary is read no
// earlier than the *second* sweep after it (the landing costs one
// transfer time, the next sweep runs synchronously at the boundary), so
// the computation is a pure function of the iteration/checkpoint
// schedule — the property replay-equivalence validation relies on.
type DistPut struct {
	world *mpi.World
	eng   *des.Engine

	pages    int // pages per buffer (window and accumulator alike)
	putEvery int
	seed     float64
	arenas   []*mem.Region

	iter      int
	stopped   bool
	computeT  des.Time
	onIter    func(iter int, done func())
	doneAll   func()
	targetIts int
}

// NewDistPut builds the ring over the given world: per rank one arena of
// 2*pages pages (window first, accumulator second). putEvery must be
// >= 1; pages >= 1. The world's address spaces must be backed.
func NewDistPut(eng *des.Engine, world *mpi.World, pages, putEvery int, seed float64, computeTime des.Time) (*DistPut, error) {
	d, err := newDistPut(eng, world, pages, putEvery, seed, computeTime)
	if err != nil {
		return nil, err
	}
	for i := 0; i < world.Size(); i++ {
		sp := world.Rank(i).Space()
		arena, err := sp.Mmap(uint64(2*pages) * sp.PageSize())
		if err != nil {
			return nil, fmt.Errorf("kernels: put arena for rank %d: %w", i, err)
		}
		d.arenas = append(d.arenas, arena)
		vals := make([]float64, d.vals())
		for j := range vals {
			vals[j] = seed + float64(i) + float64(j)*1e-3
		}
		if err := d.writeVals(i, d.wAddr(i), vals); err != nil {
			return nil, err
		}
		for j := range vals {
			vals[j] = 0
		}
		if err := d.writeVals(i, d.aAddr(i), vals); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AttachDistPut rebuilds the ring over restored address spaces, resuming
// at the given completed-iteration count. Arenas are recovered by size
// (one 2*pages-page Mmap region per rank, distinct from the 1 MB bounce
// arenas).
func AttachDistPut(eng *des.Engine, world *mpi.World, pages, putEvery int, seed float64, computeTime des.Time, iter int) (*DistPut, error) {
	d, err := newDistPut(eng, world, pages, putEvery, seed, computeTime)
	if err != nil {
		return nil, err
	}
	d.iter = iter
	for i := 0; i < world.Size(); i++ {
		sp := world.Rank(i).Space()
		want := uint64(2*pages) * sp.PageSize()
		var arena *mem.Region
		for _, r := range sp.Regions() {
			if r.Kind() == mem.Mmap && r.Size() == want && r != world.BounceRegion(i) {
				arena = r
				break
			}
		}
		if arena == nil {
			return nil, fmt.Errorf("kernels: rank %d: no %d-byte put arena in restored space", i, want)
		}
		d.arenas = append(d.arenas, arena)
	}
	return d, nil
}

func newDistPut(eng *des.Engine, world *mpi.World, pages, putEvery int, seed float64, computeTime des.Time) (*DistPut, error) {
	if pages < 1 || putEvery < 1 {
		return nil, fmt.Errorf("kernels: dist put pages %d / putEvery %d", pages, putEvery)
	}
	if computeTime <= 0 {
		return nil, fmt.Errorf("kernels: compute time must be positive")
	}
	return &DistPut{
		world: world, eng: eng, pages: pages, putEvery: putEvery,
		seed: seed, computeT: computeTime,
	}, nil
}

// vals is the float64 count of one buffer.
func (d *DistPut) vals() int {
	return d.pages * int(d.world.Rank(0).Space().PageSize()) / 8
}

// wAddr returns rank i's window base; aAddr its accumulator base.
func (d *DistPut) wAddr(i int) uint64 { return d.arenas[i].Start() }
func (d *DistPut) aAddr(i int) uint64 {
	return d.arenas[i].Start() + uint64(d.pages)*d.world.Rank(i).Space().PageSize()
}

func (d *DistPut) readVals(i int, addr uint64) ([]float64, error) {
	n := d.vals()
	buf := make([]byte, n*8)
	if err := d.world.Rank(i).Space().Read(addr, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for j := range out {
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
	}
	return out, nil
}

func (d *DistPut) writeVals(i int, addr uint64, vals []float64) error {
	buf := make([]byte, len(vals)*8)
	for j, v := range vals {
		binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(v))
	}
	return d.world.Rank(i).Space().Write(addr, buf)
}

// Iter returns the completed iteration count.
func (d *DistPut) Iter() int { return d.iter }

// Window returns rank i's current window values (test hook).
func (d *DistPut) Window(i int) ([]float64, error) { return d.readVals(i, d.wAddr(i)) }

// Stop makes all pending callbacks no-ops (the failure path).
func (d *DistPut) Stop() { d.stopped = true }

// Run executes iterations until the completed count reaches target, then
// calls onDone. onIter (optional) runs after every completed iteration
// with a continuation — the coordinated-checkpoint hook. One-sided puts
// are injected at the boundary *before* onIter fires, so a checkpoint
// trigger finds them genuinely in flight: that is the traffic the drain
// protocol exists to land.
func (d *DistPut) Run(target int, onIter func(iter int, done func()), onDone func()) {
	d.targetIts = target
	d.onIter = onIter
	d.doneAll = onDone
	d.iterate()
}

// iterate performs one sweep (CPU: A += 0.5*W + 1e-3) across all ranks,
// charges the compute time, injects the boundary's puts, and hands
// control to the iteration hook.
func (d *DistPut) iterate() {
	if d.stopped {
		return
	}
	if d.iter >= d.targetIts {
		if d.doneAll != nil {
			d.doneAll()
		}
		return
	}
	for i := 0; i < d.world.Size(); i++ {
		if err := d.sweep(i); err != nil {
			panic(fmt.Sprintf("kernels: put sweep: %v", err))
		}
	}
	d.eng.After(d.computeT, func() {
		if d.stopped {
			return
		}
		d.iter++
		if d.world.Size() > 1 && d.iter%d.putEvery == 0 {
			n := d.world.Size()
			for i := 0; i < n; i++ {
				payload, err := d.putPayload(i)
				if err != nil {
					panic(fmt.Sprintf("kernels: put payload: %v", err))
				}
				dst := (i + 1) % n
				d.world.Rank(i).Put(dst, d.wAddr(dst), payload, nil)
			}
		}
		next := func() {
			if !d.stopped {
				d.iterate()
			}
		}
		if d.onIter != nil {
			d.onIter(d.iter, next)
			return
		}
		next()
	})
}

// sweep folds rank i's window into its accumulator with ordinary
// (tracked) CPU writes.
func (d *DistPut) sweep(i int) error {
	w, err := d.readVals(i, d.wAddr(i))
	if err != nil {
		return err
	}
	a, err := d.readVals(i, d.aAddr(i))
	if err != nil {
		return err
	}
	for j := range a {
		a[j] += 0.5*w[j] + 1e-3
	}
	return d.writeVals(i, d.aAddr(i), a)
}

// putPayload derives the bytes rank i sends into its neighbour's window:
// a pure function of the accumulator, so the whole computation is
// state-determined and replays bit-exactly from any consistent line.
func (d *DistPut) putPayload(i int) ([]byte, error) {
	a, err := d.readVals(i, d.aAddr(i))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(a)*8)
	for j, v := range a {
		binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(0.5*v+1))
	}
	return buf, nil
}

// Gather returns the concatenated accumulators of all ranks — the
// verification solution.
func (d *DistPut) Gather() ([]float64, error) {
	var out []float64
	for i := 0; i < d.world.Size(); i++ {
		a, err := d.readVals(i, d.aAddr(i))
		if err != nil {
			return nil, err
		}
		out = append(out, a...)
	}
	return out, nil
}
