package kernels

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Attach constructors rebuild kernel handles over a *restored* address
// space: after ckpt.Restore recreates the regions at their original
// addresses with their checkpointed contents, these functions locate the
// kernel's arenas and resume computation from the checkpointed iteration.
// Together with the New constructors they give every kernel a full
// crash/restore round trip, exercised by the integration tests.

// gridRegions returns the mmap regions that exactly hold `elems`
// float64s, in address order.
func gridRegions(space *mem.AddressSpace, elems int) []*mem.Region {
	want := uint64(elems) * 8
	var out []*mem.Region
	for _, r := range space.Regions() {
		if r.Kind() == mem.Mmap && r.Size() >= want && r.Size() < want+space.PageSize() {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start() < out[j].Start() })
	return out
}

// attachSingleGrid binds the unique grid-sized arena in the space.
func attachSingleGrid(space *mem.AddressSpace, elems int) (*Array, error) {
	regs := gridRegions(space, elems)
	if len(regs) != 1 {
		return nil, fmt.Errorf("kernels: found %d candidate grid arenas, want 1", len(regs))
	}
	return AttachArray(space, regs[0].Start(), elems)
}

// arenaLayout rebinds a kernel's full arena layout: one element count
// per arena, in the order the New constructor allocates them. Mmap
// bump-allocates monotonically and kernels never unmap, so address
// order equals allocation order, and a restore (ckpt.Restore → MapAt)
// recreates every region at its original address — including regions a
// protection spec excluded from capture, which come back zero-filled
// but still present. Candidate regions are those whose (page-rounded)
// size matches any layout slot; the count must match exactly, and each
// region in address order must fit its slot's size bucket.
func arenaLayout(space *mem.AddressSpace, elems ...int) ([]*Array, error) {
	fits := func(r *mem.Region, n int) bool {
		want := uint64(n) * 8
		return r.Size() >= want && r.Size() < want+space.PageSize()
	}
	var cands []*mem.Region
	for _, r := range space.Regions() {
		if r.Kind() != mem.Mmap {
			continue
		}
		for _, n := range elems {
			if fits(r, n) {
				cands = append(cands, r)
				break
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Start() < cands[j].Start() })
	if len(cands) != len(elems) {
		return nil, fmt.Errorf("kernels: found %d candidate arenas, want %d", len(cands), len(elems))
	}
	out := make([]*Array, len(elems))
	for i, n := range elems {
		if !fits(cands[i], n) {
			return nil, fmt.Errorf("kernels: arena %d at %#x holds %d bytes, want %d elems",
				i, cands[i].Start(), cands[i].Size(), n)
		}
		a, err := AttachArray(space, cands[i].Start(), n)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// AttachSSOR rebuilds an SSOR handle over a restored space. omega must
// match the original; iter is the completed-iteration count at the
// checkpoint.
func AttachSSOR(space *mem.AddressSpace, nx, ny int, omega float64, iter int) (*SSOR, error) {
	if nx < 3 || ny < 3 || omega <= 0 || omega >= 2 || iter < 0 {
		return nil, fmt.Errorf("kernels: bad SSOR attach parameters")
	}
	bufs, err := arenaLayout(space, nx*ny, nx)
	if err != nil {
		return nil, err
	}
	return &SSOR{nx: nx, ny: ny, u: bufs[0], work: bufs[1], omega: omega, iter: iter}, nil
}

// AttachWavefront rebuilds a Wavefront handle over a restored space.
func AttachWavefront(space *mem.AddressSpace, nx, ny, iter int) (*Wavefront, error) {
	if nx < 2 || ny < 2 || iter < 0 {
		return nil, fmt.Errorf("kernels: bad wavefront attach parameters")
	}
	bufs, err := arenaLayout(space, nx*ny, nx)
	if err != nil {
		return nil, err
	}
	return &Wavefront{nx: nx, ny: ny, v: bufs[0], work: bufs[1], iter: iter}, nil
}

// AttachADI rebuilds an ADI handle over a restored space. lambda must
// match the original.
func AttachADI(space *mem.AddressSpace, nx, ny int, lambda float64, iter int) (*ADI, error) {
	if nx < 3 || ny < 3 || lambda <= 0 || iter < 0 {
		return nil, fmt.Errorf("kernels: bad ADI attach parameters")
	}
	bufs, err := arenaLayout(space, nx*ny, nx+ny)
	if err != nil {
		return nil, err
	}
	return &ADI{nx: nx, ny: ny, u: bufs[0], work: bufs[1], lambda: lambda, iter: iter}, nil
}

// AttachFFT rebuilds an FFT handle over a restored space; pass is the
// number of butterfly passes completed at the checkpoint (the ping-pong
// parity selects which buffer holds the live data).
func AttachFFT(space *mem.AddressSpace, n, pass int) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 || pass < 0 {
		return nil, fmt.Errorf("kernels: bad FFT attach parameters")
	}
	bufs, err := arenaLayout(space, 2*n, 2*n, n)
	if err != nil {
		return nil, err
	}
	return &FFT{n: n, x: bufs[0], y: bufs[1], tw: bufs[2], pass: pass}, nil
}
