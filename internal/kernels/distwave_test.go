package kernels

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/storage"
)

func TestDistWavefrontMatchesReference(t *testing.T) {
	const nx, rows, ranks, iters = 12, 3, 4, 6
	eng, w := distWorld(t, ranks)
	d, err := NewDistWavefront(eng, w, nx, rows, 5, 5*des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	d.Run(iters, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("pipelined run never completed")
	}
	got, err := d.Gather()
	if err != nil {
		t.Fatal(err)
	}
	want := WavefrontReference(nx, rows, ranks, iters, 5)
	if len(got) != len(want) {
		t.Fatalf("lengths: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: %v != %v (pipelined sweep diverged)", i, got[i], want[i])
		}
	}
}

func TestDistWavefrontSingleRank(t *testing.T) {
	eng, w := distWorld(t, 1)
	d, err := NewDistWavefront(eng, w, 8, 5, 2, des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(4, nil, nil)
	eng.Run(des.MaxTime)
	got, _ := d.Gather()
	want := WavefrontReference(8, 5, 1, 4, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-rank cell %d mismatch", i)
		}
	}
}

// The chain dependency must serialize in virtual time: with R ranks and
// per-strip cost C, one iteration takes about 2*R*C (two directional
// chains), unlike the stencil's parallel R-independent sweep.
func TestDistWavefrontPipelineTiming(t *testing.T) {
	const ranks = 4
	compute := 100 * des.Millisecond
	eng, w := distWorld(t, ranks)
	d, _ := NewDistWavefront(eng, w, 8, 2, 1, compute)
	d.Run(1, nil, nil)
	eng.Run(des.MaxTime)
	elapsed := eng.Now()
	wantMin := des.Time(2*ranks) * compute
	if elapsed < wantMin {
		t.Fatalf("iteration took %v, chain serialization demands >= %v", elapsed, wantMin)
	}
	if elapsed > wantMin+des.Second {
		t.Fatalf("iteration took %v, far above the chain cost %v", elapsed, wantMin)
	}
}

func TestDistWavefrontStopAndHook(t *testing.T) {
	eng, w := distWorld(t, 2)
	d, _ := NewDistWavefront(eng, w, 8, 2, 1, des.Millisecond)
	var hooks []int
	d.Run(100, func(iter int, next func()) {
		hooks = append(hooks, iter)
		if iter == 2 {
			d.Stop()
			return
		}
		next()
	}, func() { t.Fatal("stopped run completed") })
	eng.Run(des.MaxTime)
	if len(hooks) != 2 || d.Iter() != 2 {
		t.Fatalf("hooks=%v iter=%d", hooks, d.Iter())
	}
}

func TestDistWavefrontValidation(t *testing.T) {
	eng, w := distWorld(t, 2)
	if _, err := NewDistWavefront(eng, w, 1, 2, 1, des.Millisecond); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := NewDistWavefront(eng, w, 8, 0, 1, des.Millisecond); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewDistWavefront(eng, w, 8, 2, 1, 0); err == nil {
		t.Fatal("zero compute accepted")
	}
}

// Full crash/restore cycle for the pipelined kernel: coordinated
// checkpoints at iteration boundaries, failure, RestoreAll, re-attach,
// resume — final answer identical to an uninterrupted run.
func TestDistWavefrontCrashRecovery(t *testing.T) {
	const nx, rows, ranks, total = 10, 3, 3, 9
	ref := WavefrontReference(nx, rows, ranks, total, 4)

	eng, w := distWorld(t, ranks)
	d, err := NewDistWavefront(eng, w, nx, rows, 4, des.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMemStore()
	var cps []*ckpt.Checkpointer
	for i := 0; i < ranks; i++ {
		c, err := ckpt.NewCheckpointer(eng, w.Rank(i).Space(), ckpt.Options{Rank: i, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		c.Exclude(w.BounceRegion(i))
		c.Start()
		cps = append(cps, c)
	}
	co, _ := ckpt.NewCoordinator(eng, cps)

	crashAt, ckptEvery := 7, 3
	lastLine := 0
	d.Run(total, func(iter int, next func()) {
		if iter%ckptEvery == 0 {
			if _, err := co.GlobalCheckpoint(); err != nil {
				t.Error(err)
			}
			lastLine = iter
		}
		if iter == crashAt {
			d.Stop() // failure: abandon this incarnation
			return
		}
		next()
	}, nil)
	eng.Run(des.MaxTime)
	if d.Iter() != crashAt {
		t.Fatalf("crashed at iter %d, want %d", d.Iter(), crashAt)
	}

	// Recovery on the same engine: restore all ranks, rebuild the
	// world, re-attach, resume from the line.
	seq, ok, err := ckpt.LatestConsistentSeq(store, ranks)
	if err != nil || !ok {
		t.Fatalf("no recovery line: %v", err)
	}
	spaces, err := ckpt.RestoreAll(store, ranks, seq)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := mpiWorld(eng, spaces)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := AttachDistWavefront(eng, w2, nx, rows, 4, des.Millisecond, lastLine)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	d2.Run(total, nil, func() { done = true })
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("resumed run never completed")
	}
	got, _ := d2.Gather()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("cell %d after recovery: %v != %v", i, got[i], ref[i])
		}
	}
}
