package kernels

import (
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/tracker"
)

// Integration tests: real kernels under the real checkpointer — crash,
// restore into a fresh address space, resume, and compare against an
// uninterrupted run. These exercise content-backed checkpointing on
// genuine computations, not synthetic write patterns.

// protect wraps a space with an incremental checkpointer.
func protect(t *testing.T, sp *mem.AddressSpace) (*ckpt.Checkpointer, *storage.MemStore) {
	t.Helper()
	store := storage.NewMemStore()
	c, err := ckpt.NewCheckpointer(des.NewEngine(), sp, ckpt.Options{Store: store, FullEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	return c, store
}

func TestSSORCrashRestoreResume(t *testing.T) {
	const nx, ny, total, crash = 16, 16, 40, 23
	// Uninterrupted reference.
	ref, _ := NewSSOR(space(), nx, ny, 4, 1.3)
	for i := 0; i < total; i++ {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := ref.Grid().Checksum()

	// Protected run, checkpoint every 5 iterations, crash at 23.
	sp := space()
	s, _ := NewSSOR(sp, nx, ny, 4, 1.3)
	c, store := protect(t, sp)
	lastIter := -1
	var lastSeq uint64
	for i := 1; i <= crash; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			res, err := c.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			lastIter, lastSeq = i, res.Seq
		}
	}
	// Crash. Restore and resume.
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := ckpt.Restore(store, 0, lastSeq, fresh); err != nil {
		t.Fatal(err)
	}
	resumed, err := AttachSSOR(fresh, nx, ny, 1.3, lastIter)
	if err != nil {
		t.Fatal(err)
	}
	for i := lastIter + 1; i <= total; i++ {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := resumed.Grid().Checksum()
	if got != want {
		t.Fatalf("SSOR resume checksum %v != reference %v", got, want)
	}
}

func TestWavefrontCrashRestoreResume(t *testing.T) {
	const nx, ny, total, crash = 14, 11, 12, 7
	ref, _ := NewWavefront(space(), nx, ny, 2)
	for i := 0; i < total; i++ {
		ref.Step()
	}
	want, _ := ref.Grid().Checksum()

	sp := space()
	w, _ := NewWavefront(sp, nx, ny, 2)
	c, store := protect(t, sp)
	var lastSeq uint64
	lastIter := 0
	for i := 1; i <= crash; i++ {
		w.Step()
		if i%3 == 0 {
			res, err := c.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			lastIter, lastSeq = i, res.Seq
		}
	}
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := ckpt.Restore(store, 0, lastSeq, fresh); err != nil {
		t.Fatal(err)
	}
	resumed, err := AttachWavefront(fresh, nx, ny, lastIter)
	if err != nil {
		t.Fatal(err)
	}
	for i := lastIter + 1; i <= total; i++ {
		resumed.Step()
	}
	got, _ := resumed.Grid().Checksum()
	if got != want {
		t.Fatalf("wavefront resume checksum %v != %v", got, want)
	}
}

func TestADICrashRestoreResume(t *testing.T) {
	const nx, ny, total, crash = 12, 12, 10, 6
	ref, _ := NewADI(space(), nx, ny, 9, 0.5)
	for i := 0; i < total; i++ {
		ref.Step()
	}
	want, _ := ref.Grid().Checksum()

	sp := space()
	a, _ := NewADI(sp, nx, ny, 9, 0.5)
	c, store := protect(t, sp)
	var lastSeq uint64
	lastIter := 0
	for i := 1; i <= crash; i++ {
		a.Step()
		if i%2 == 0 {
			res, _ := c.Checkpoint()
			lastIter, lastSeq = i, res.Seq
		}
	}
	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := ckpt.Restore(store, 0, lastSeq, fresh); err != nil {
		t.Fatal(err)
	}
	resumed, err := AttachADI(fresh, nx, ny, 0.5, lastIter)
	if err != nil {
		t.Fatal(err)
	}
	for i := lastIter + 1; i <= total; i++ {
		resumed.Step()
	}
	got, _ := resumed.Grid().Checksum()
	if got != want {
		t.Fatalf("ADI resume checksum %v != %v", got, want)
	}
}

// FFT interrupted mid-transform: checkpoint between butterfly passes,
// crash, restore, finish the transform — the spectrum must match the
// uninterrupted transform bit for bit.
func TestFFTCrashMidTransform(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewPCG(11, 12))
	signal := make([]complex128, n)
	for i := range signal {
		signal[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	ref, _, _ := NewFFTInSpace(n)
	ref.Load(signal)
	want, err := ref.Transform()
	if err != nil {
		t.Fatal(err)
	}

	sp := space()
	f, _ := NewFFT(sp, n)
	f.Load(signal)
	c, store := protect(t, sp)
	passes := 0
	for 1<<passes < n {
		passes++
	}
	crashAfter := passes / 2
	for p := 0; p < crashAfter; p++ {
		if err := f.Pass(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// More passes that the crash destroys.
	f.Pass()
	f.Pass()

	fresh := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	if err := ckpt.Restore(store, 0, res.Seq, fresh); err != nil {
		t.Fatal(err)
	}
	resumed, err := AttachFFT(fresh, n, crashAfter)
	if err != nil {
		t.Fatal(err)
	}
	for p := crashAfter; p < passes; p++ {
		if err := resumed.Pass(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("bin %d: %v != %v after mid-transform recovery", k, got[k], want[k])
		}
	}
}

// A real kernel under the tracker: the measured IWS of a stencil equals
// one grid buffer (+ boundary-page slack) per iteration, alternating.
func TestStencilUnderTracker(t *testing.T) {
	eng := des.NewEngine()
	sp := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	const nx, ny = 64, 64
	s, err := NewStencil2D(sp, nx, ny, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracker.New(eng, sp, tracker.Options{Timeslice: des.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	// One stencil iteration per virtual second.
	for i := 0; i < 4; i++ {
		at := des.Time(i)*des.Second + des.Millisecond
		eng.Schedule(at, func() {
			if err := s.Step(); err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run(4 * des.Second)
	tr.Stop()
	grid := uint64(nx * ny * 8)
	for i, smp := range tr.Samples() {
		// One buffer's interior is written per iteration: between half
		// a grid and a full grid of pages.
		if smp.IWSBytes < grid/2 || smp.IWSBytes > grid+8*4096 {
			t.Fatalf("slice %d IWS = %d, want ~%d", i, smp.IWSBytes, grid)
		}
	}
	if tr.TotalFaults() == 0 {
		t.Fatal("no faults observed")
	}
}

func TestAttachValidation(t *testing.T) {
	sp := space()
	if _, err := AttachSSOR(sp, 2, 2, 1.2, 0); err == nil {
		t.Fatal("bad dims accepted")
	}
	if _, err := AttachSSOR(sp, 16, 16, 1.2, 0); err == nil {
		t.Fatal("attach with no arenas accepted")
	}
	if _, err := AttachFFT(sp, 12, 0); err == nil {
		t.Fatal("non-power-of-two FFT attach accepted")
	}
	if _, err := AttachWavefront(sp, 1, 5, 0); err == nil {
		t.Fatal("bad wavefront dims accepted")
	}
	if _, err := AttachADI(sp, 12, 12, 0, 0); err == nil {
		t.Fatal("bad lambda accepted")
	}
	if _, err := AttachArray(sp, 0x1234, 10); err == nil {
		t.Fatal("attach at unmapped address accepted")
	}
	// Ambiguity: two same-sized arenas break single-grid attach.
	NewArray(sp, 100)
	NewArray(sp, 100)
	if _, err := attachSingleGrid(sp, 100); err == nil {
		t.Fatal("ambiguous attach accepted")
	}
}
