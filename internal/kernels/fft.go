package kernels

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mem"
)

// FFT is an out-of-place iterative radix-2 Stockham FFT whose complex
// data lives in two ping-pong arrays in a simulated address space — the
// scaled-down counterpart of NAS FT. Each pass reads one buffer and
// writes the other, so the write set alternates between two arenas, the
// double-buffering pattern that shapes FT's measured IWS.
type FFT struct {
	n    int
	x, y *Array // interleaved re/im pairs: 2n float64 each
	tw   *Array // twiddle table: exp(-iπ m/(n/2)) for m in [0, n/2), re/im interleaved
	pass int    // completed butterfly passes (for mid-transform ckpt tests)
}

// NewFFT allocates ping-pong buffers for an n-point transform (n a power
// of two).
func NewFFT(space *mem.AddressSpace, n int) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("kernels: FFT size %d is not a power of two >= 2", n)
	}
	x, err := NewArray(space, 2*n)
	if err != nil {
		return nil, err
	}
	y, err := NewArray(space, 2*n)
	if err != nil {
		return nil, err
	}
	tw, err := NewArray(space, n)
	if err != nil {
		return nil, err
	}
	f := &FFT{n: n, x: x, y: y, tw: tw}
	if err := f.fillTwiddles(); err != nil {
		return nil, err
	}
	return f, nil
}

// fillTwiddles (re)derives the twiddle table from the transform size
// alone: T[m] = exp(-iπ m/(n/2)). It is a pure function of n, so it
// doubles as the restore-time recompute hook when the table is dropped
// from checkpoint lines — a restored, zero-filled table arena is
// rebuilt bit-identically.
func (f *FFT) fillTwiddles() error {
	half := f.n / 2
	buf := make([]float64, 2*half)
	for m := 0; m < half; m++ {
		w := cmplx.Exp(complex(0, -math.Pi*float64(m)/float64(half)))
		buf[2*m] = real(w)
		buf[2*m+1] = imag(w)
	}
	return f.tw.Write(buf, 0)
}

// N returns the transform size.
func (f *FFT) N() int { return f.n }

// Load writes the input signal into the primary buffer.
func (f *FFT) Load(signal []complex128) error {
	if len(signal) != f.n {
		return fmt.Errorf("kernels: FFT input length %d, want %d", len(signal), f.n)
	}
	buf := make([]float64, 2*f.n)
	for i, c := range signal {
		buf[2*i] = real(c)
		buf[2*i+1] = imag(c)
	}
	f.pass = 0
	return f.x.Write(buf, 0)
}

// cur returns (src, dst) for the next pass.
func (f *FFT) cur() (*Array, *Array) {
	if f.pass%2 == 0 {
		return f.x, f.y
	}
	return f.y, f.x
}

// log2 returns log2(n) for a power-of-two n.
func log2(n int) int {
	p := 0
	for 1<<p < n {
		p++
	}
	return p
}

// Transform runs the full forward FFT and returns the spectrum.
func (f *FFT) Transform() ([]complex128, error) {
	passes := log2(f.n)
	for p := 0; p < passes; p++ {
		if err := f.Pass(); err != nil {
			return nil, err
		}
	}
	return f.Result()
}

// Pass performs one Stockham butterfly pass (there are log2(n) in total).
// Exposing single passes lets checkpoint tests interrupt the transform
// midway.
func (f *FFT) Pass() error {
	src, dst := f.cur()
	n := f.n
	l := 1 << f.pass // current butterfly span
	half := n / 2
	if l > half {
		return fmt.Errorf("kernels: FFT pass %d beyond the %d passes of a %d-point transform", f.pass, log2(n), n)
	}
	in := make([]float64, 2*n)
	out := make([]float64, 2*n)
	if err := src.Read(in, 0); err != nil {
		return err
	}
	// The per-group twiddle exp(-iπ j/l) is table entry m = j·(half/l):
	// half/l is a power of two, and scaling by a power of two commutes
	// exactly with float64 rounding, so -π·m/half and -π·j/l round to
	// the same value and the looked-up twiddles are bit-identical to
	// the previously inlined cmplx.Exp.
	twid := make([]float64, 2*half)
	if err := f.tw.Read(twid, 0); err != nil {
		return err
	}
	for j := 0; j < l; j++ {
		m := j * (half / l)
		w := complex(twid[2*m], twid[2*m+1])
		for k := j; k < half; k += l {
			aRe, aIm := in[2*k], in[2*k+1]
			bRe, bIm := in[2*(k+half)], in[2*(k+half)+1]
			b := complex(bRe, bIm) * w
			// Stockham self-sorting placement: group q of span l
			// scatters to j + 2*l*q and j + 2*l*q + l.
			kq := (k - j) / l
			outIdx := j + 2*l*kq
			a := complex(aRe, aIm)
			sum := a + b
			diff := a - b
			out[2*outIdx] = real(sum)
			out[2*outIdx+1] = imag(sum)
			out[2*(outIdx+l)] = real(diff)
			out[2*(outIdx+l)+1] = imag(diff)
		}
	}
	if err := dst.Write(out, 0); err != nil {
		return err
	}
	f.pass++
	return nil
}

// Result reads the spectrum out of the buffer holding the latest pass.
func (f *FFT) Result() ([]complex128, error) {
	src, _ := f.cur()
	buf := make([]float64, 2*f.n)
	if err := src.Read(buf, 0); err != nil {
		return nil, err
	}
	out := make([]complex128, f.n)
	for i := range out {
		out[i] = complex(buf[2*i], buf[2*i+1])
	}
	return out, nil
}

// NaiveDFT computes the reference O(n^2) transform of signal, for
// validating the FFT.
func NaiveDFT(signal []complex128) []complex128 {
	n := len(signal)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += signal[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// NewFFTInSpace is a convenience that builds the FFT in a fresh backed
// space and returns both.
func NewFFTInSpace(n int) (*FFT, *mem.AddressSpace, error) {
	space := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	f, err := NewFFT(space, n)
	return f, space, err
}
