// Package mpi simulates the message-passing substrate the paper's
// applications run on: a set of ranks exchanging point-to-point messages
// and collectives over a network with a peak-bandwidth/latency cost model
// (defaults match the Quadrics QsNet II figures the paper cites: 900 MB/s,
// a few microseconds of latency).
//
// The package also reproduces the interaction the paper describes in §4.2
// between a user-level memory-protection tracker and a NIC capable of
// writing directly into user memory: in Direct mode, deliveries into
// write-protected pages fail (the hardware analogue of the "problems" the
// paper reports), while in Bounce mode the NIC deposits messages into an
// unprotected bounce buffer and the CPU copies them to their destination,
// taking ordinary write faults that the tracker observes — the paper's
// workaround, with its "unavoidable overhead".
//
// Completion is continuation-passing: every operation takes a callback run
// at the operation's virtual completion time. This keeps the simulation
// deterministic (no goroutines) while preserving blocking MPI semantics:
// a rank's program is a chain of callbacks, and a Recv's continuation does
// not run before the matching Send has arrived.
package mpi

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/des"
	"repro/internal/mem"
)

// AnySource matches a Recv against a Send from any rank.
const AnySource = -1

// DeliveryMode selects how the NIC writes incoming message payloads.
type DeliveryMode uint8

const (
	// Bounce models the paper's workaround (and is the default): the
	// NIC writes into a dedicated unprotected buffer, and the CPU
	// copies the payload to its destination, faulting like any other
	// write.
	Bounce DeliveryMode = iota
	// Direct models zero-copy DMA into the destination buffer. Writes
	// bypass the CPU entirely, so they take no write faults — and fail
	// outright when the destination page is write-protected.
	Direct
)

// Network is the interconnect cost model.
type Network struct {
	// Latency is the one-way message latency.
	Latency des.Time
	// Bandwidth is the peak link bandwidth in bytes per virtual second.
	Bandwidth float64
	// CopyBandwidth is the CPU memcpy bandwidth used for bounce-buffer
	// copies, in bytes per virtual second.
	CopyBandwidth float64
}

// QsNet returns the network model for the Quadrics QsNet II interconnect
// used in the paper's cluster (§3: 900 MB/s peak).
func QsNet() Network {
	return Network{
		Latency:       2 * des.Microsecond,
		Bandwidth:     900e6,
		CopyBandwidth: 2e9, // Itanium II STREAM-class copy rate
	}
}

// transfer returns the wire time for n bytes.
func (n Network) transfer(bytes uint64) des.Time {
	return n.Latency + des.Time(float64(bytes)/n.Bandwidth*float64(des.Second))
}

// copyTime returns the CPU time to copy n bytes out of the bounce buffer.
func (n Network) copyTime(bytes uint64) des.Time {
	if n.CopyBandwidth <= 0 {
		return 0
	}
	return des.Time(float64(bytes) / n.CopyBandwidth * float64(des.Second))
}

// TransferTime returns the wire time for n bytes — one latency plus the
// serialization delay at peak bandwidth. Exported for cost accounting by
// layers (e.g. parity-shard exchange in internal/redundancy) that model
// traffic on this link without routing it through a World.
func (n Network) TransferTime(bytes uint64) des.Time { return n.transfer(bytes) }

// CopyTime returns the CPU memcpy time for n bytes at the bounce-copy
// rate; zero when CopyBandwidth is unset. Direct (RDMA) transfers skip
// this cost.
func (n Network) CopyTime(bytes uint64) des.Time { return n.copyTime(bytes) }

// Message describes a delivered point-to-point message.
type Message struct {
	Src, Dst int
	Tag      int
	Bytes    uint64
	// Payload carries the message bytes when the sender used SendData;
	// nil for size-only sends, whose delivery writes a synthetic fill.
	Payload []byte
	// SentAt is the virtual time the sender injected the message.
	SentAt des.Time
	// DeliveredAt is the virtual time the payload landed at the receiver.
	DeliveredAt des.Time
}

type matchKey struct {
	src int // AnySource allowed in recvs
	tag int
}

type pendingRecv struct {
	key  matchKey
	addr uint64 // destination buffer; 0 means "count only"
	fn   func(Message)
}

type pendingMsg struct {
	msg     Message
	arrived des.Time
}

// Stats aggregates per-rank communication counters.
type Stats struct {
	Sends, Recvs     uint64
	Puts             uint64 // one-sided RDMA writes injected
	BytesSent        uint64
	BytesReceived    uint64
	NICConflicts     uint64 // Direct-mode deliveries that hit protected pages
	BounceCopyBytes  uint64 // bytes copied out of the bounce buffer by the CPU
	CollectiveCalls  uint64
	BarrierWaitTotal des.Time // total time ranks spent waiting in barriers

	// DirectBypassBytes counts bytes DMA'd straight into registered
	// regions — traffic the CPU (and therefore the write-fault tracker)
	// never touched.
	DirectBypassBytes uint64
	// SilentDirtyBytes counts the subset of DirectBypassBytes that
	// landed on write-protected pages: the measured IWS under-count.
	SilentDirtyBytes uint64
	// RegisteredBytes is the current NIC-registered footprint (a gauge:
	// RegisterMemory raises it, DeregisterAll lowers it).
	RegisteredBytes uint64
}

// Rank is one simulated MPI process.
type Rank struct {
	world *World
	id    int
	space *mem.AddressSpace

	bounce    *mem.Region // unprotected landing zone (Bounce mode / degraded RDMA)
	recvQ     []*pendingRecv
	arrived   []pendingMsg
	stats     Stats
	onDeliver func(bytes uint64, at des.Time)

	registered []*MemoryRegion // NIC-pinned regions (see rdma.go)
	degraded   bool            // sticky bounce-mode fallback after drain timeout
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Space returns the rank's address space.
func (r *Rank) Space() *mem.AddressSpace { return r.space }

// Stats returns a copy of the rank's counters.
func (r *Rank) Stats() Stats { return r.stats }

// SetDeliveryHook installs fn to observe every payload delivery (the
// tracker uses this to build the paper's "data received per timeslice"
// series, Fig 1b). It returns the previous hook.
func (r *Rank) SetDeliveryHook(fn func(bytes uint64, at des.Time)) func(uint64, des.Time) {
	old := r.onDeliver
	r.onDeliver = fn
	return old
}

// World is a communicator spanning a fixed set of ranks.
type World struct {
	eng   *des.Engine
	net   Network
	mode  DeliveryMode
	ranks []*Rank

	// engs, when non-nil, maps each rank to the engine shard it runs on
	// (see NewShardedWorld). Nil worlds run every rank on eng.
	engs    []*des.Engine
	sharded bool

	bmu            sync.Mutex // guards barrier state in sharded worlds
	barrierGen     uint64
	barrierArrived int
	barrierFns     []func()
	barrierSlots   []func() // per-rank arrival slots (sharded barriers)
	barrierMax     des.Time
	barrierFirst   des.Time

	// faults, when non-nil, is the installed interconnect fault model
	// (see flaky.go). Nil means a perfect network.
	faults *netFaults

	// rdma, when non-nil, is the registered-memory model installed by
	// EnableRDMA (see rdma.go). Nil worlds skip in-flight tracking.
	rdma *rdmaState
}

// engFor returns the engine rank id runs on.
func (w *World) engFor(id int) *des.Engine {
	if w.engs == nil {
		return w.eng
	}
	return w.engs[id]
}

// NewWorld creates n ranks, each owning one of the provided address
// spaces (len(spaces) must equal n). In Bounce mode each rank gets a
// 1 MB bounce arena mapped outside tracker protection.
func NewWorld(eng *des.Engine, net Network, mode DeliveryMode, spaces []*mem.AddressSpace) (*World, error) {
	if len(spaces) == 0 {
		return nil, fmt.Errorf("mpi: world needs at least one rank")
	}
	w := &World{eng: eng, net: net, mode: mode}
	for i, sp := range spaces {
		r := &Rank{world: w, id: i, space: sp}
		if mode == Bounce {
			b, err := sp.Mmap(1 << 20)
			if err != nil {
				return nil, fmt.Errorf("mpi: bounce buffer for rank %d: %w", i, err)
			}
			r.bounce = b
		}
		w.ranks = append(w.ranks, r)
	}
	return w, nil
}

// NewShardedWorld creates a world whose ranks are distributed over the
// engines of a des.Group: rank i's events run on engs[i] (len(engs) must
// equal len(spaces)), and cross-rank traffic between different shards
// rides the group's mailbox protocol. Every per-message virtual delay in
// this package is at least Network.Latency, so callers should declare
// that latency as the group lookahead. Sharded worlds switch the fault
// model (SetFaults) to per-source RNG streams and the barrier to keyed
// cross-shard releases; both stay deterministic for a fixed seed at
// every shard count.
func NewShardedWorld(engs []*des.Engine, net Network, mode DeliveryMode, spaces []*mem.AddressSpace) (*World, error) {
	if len(engs) != len(spaces) {
		return nil, fmt.Errorf("mpi: %d engines for %d ranks", len(engs), len(spaces))
	}
	if net.Latency <= 0 {
		return nil, fmt.Errorf("mpi: sharded world needs positive link latency for lookahead")
	}
	w, err := NewWorld(engs[0], net, mode, spaces)
	if err != nil {
		return nil, err
	}
	w.engs = engs
	w.sharded = true
	// Every cross-rank delivery carries at least one link latency of
	// virtual delay (transfer, ARQ and barrier paths all lower-bound at
	// Latency), so the network's latency is a sound epoch lookahead.
	for _, e := range engs {
		if g := e.Group(); g != nil {
			g.DeclareLookahead(net.Latency)
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Mode returns the delivery mode.
func (w *World) Mode() DeliveryMode { return w.mode }

// BounceRegion returns rank i's bounce arena (nil in Direct mode).
// The tracker must leave this region unprotected, exactly as the paper's
// library keeps its network landing zone writable.
func (w *World) BounceRegion(i int) *mem.Region { return w.ranks[i].bounce }

// Send injects a message of the given size from r to dst. The payload
// lands at the receiver's posted buffer address. onComplete (optional)
// runs when the sender's injection finishes (eager protocol: immediately
// after the send overhead).
func (r *Rank) Send(dst, tag int, bytes uint64, onComplete func()) {
	r.send(dst, tag, bytes, nil, onComplete)
}

// SendData injects a message carrying real bytes; the receiver's buffer
// ends up holding exactly data. The slice is copied at injection, like a
// NIC reading the send buffer, so the caller may reuse it immediately.
func (r *Rank) SendData(dst, tag int, data []byte, onComplete func()) {
	payload := append([]byte(nil), data...)
	r.send(dst, tag, uint64(len(payload)), payload, onComplete)
}

func (r *Rank) send(dst, tag int, bytes uint64, payload []byte, onComplete func()) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	w := r.world
	src := w.engFor(r.id)
	r.stats.Sends++
	r.stats.BytesSent += bytes
	msg := Message{Src: r.id, Dst: dst, Tag: tag, Bytes: bytes, Payload: payload, SentAt: src.Now()}
	if w.faults != nil {
		// Lossy fabric: exactly-once delivery rides the ARQ schedule;
		// the sender completes at the first surviving ack.
		w.sendFaulty(msg, onComplete)
		return
	}
	arrival := w.net.transfer(bytes)
	w.trackDelivery(dst)
	// transfer() >= Latency, so the cross-shard lookahead contract holds.
	src.PostTo(w.engFor(dst), src.Now()+arrival, func() {
		w.ranks[dst].deliver(msg)
	})
	if onComplete != nil {
		// Eager injection: sender-side overhead is one latency.
		src.After(w.net.Latency, onComplete)
	}
}

// Recv posts a receive on r for a message from src (or AnySource) with the
// given tag, to be deposited at destAddr in r's address space (destAddr 0
// skips the memory write and only counts bytes). fn runs once the payload
// has been delivered — including the bounce-buffer copy in Bounce mode.
func (r *Rank) Recv(src, tag int, destAddr uint64, fn func(Message)) {
	pr := &pendingRecv{key: matchKey{src, tag}, addr: destAddr, fn: fn}
	// Try unexpected-message queue first (arrival order).
	for i, pm := range r.arrived {
		if pr.matches(pm.msg) {
			r.arrived = append(r.arrived[:i], r.arrived[i+1:]...)
			r.complete(pr, pm.msg, pm.arrived)
			return
		}
	}
	r.recvQ = append(r.recvQ, pr)
}

func (pr *pendingRecv) matches(m Message) bool {
	return (pr.key.src == AnySource || pr.key.src == m.Src) && pr.key.tag == m.Tag
}

// deliver handles a message arriving at the NIC at the current time.
// It always executes on the destination rank's engine shard.
func (r *Rank) deliver(m Message) {
	r.world.untrackDelivery(r.id)
	m.DeliveredAt = r.world.engFor(r.id).Now()
	for i, pr := range r.recvQ {
		if pr.matches(m) {
			r.recvQ = append(r.recvQ[:i], r.recvQ[i+1:]...)
			r.complete(pr, m, m.DeliveredAt)
			return
		}
	}
	r.arrived = append(r.arrived, pendingMsg{m, m.DeliveredAt})
}

// complete finishes a matched receive: the payload is written into the
// destination buffer per the delivery mode, then fn runs.
func (r *Rank) complete(pr *pendingRecv, m Message, arrivedAt des.Time) {
	w := r.world
	finish := func() {
		r.stats.Recvs++
		r.stats.BytesReceived += m.Bytes
		if r.onDeliver != nil {
			r.onDeliver(m.Bytes, w.engFor(r.id).Now())
		}
		if pr.fn != nil {
			pr.fn(m)
		}
	}
	if pr.addr == 0 || m.Bytes == 0 {
		finish()
		return
	}
	switch w.mode {
	case Direct:
		if w.rdma != nil {
			// Registered-memory model: a registered destination takes
			// the zero-copy DMA path — the write bypasses the CPU, so
			// protected pages become silent-dirty instead of faulting.
			// Unregistered destinations (and degraded ranks) fall back
			// to the bounce arena, like a NIC refusing an unpinned
			// address.
			if !r.degraded && r.registeredSpan(pr.addr, m.Bytes) {
				if m.Payload != nil {
					r.dmaStore(pr.addr, m.Payload)
				} else {
					r.dmaStoreRange(pr.addr, m.Bytes)
				}
				finish()
				return
			}
			r.bounceDeliver(pr.addr, m, finish)
			return
		}
		// DMA: no CPU involvement, no write faults — but a protected
		// destination page is a conflict the hardware cannot resolve.
		if r.pageSpanProtected(pr.addr, m.Bytes) {
			r.stats.NICConflicts++
			// The payload is dropped; tracking below the NIC is
			// impossible, which is precisely why the paper's
			// library intercepts receive calls.
			finish()
			return
		}
		r.store(pr.addr, m.Bytes, m.Payload)
		finish()
	case Bounce:
		r.bounceDeliver(pr.addr, m, finish)
	}
}

// bounceDeliver lands a message via the bounce arena: the NIC writes
// into the unprotected buffer (no faults), then the CPU copies the
// payload to its destination, faulting normally — the paper's
// workaround, with its copy cost.
func (r *Rank) bounceDeliver(addr uint64, m Message, finish func()) {
	w := r.world
	r.stats.BounceCopyBytes += m.Bytes
	w.engFor(r.id).After(w.net.copyTime(m.Bytes), func() {
		r.store(addr, m.Bytes, m.Payload)
		finish()
	})
}

// pageSpanProtected reports whether any page in [addr, addr+n) is
// write-protected.
func (r *Rank) pageSpanProtected(addr, n uint64) bool {
	reg := r.space.Find(addr)
	if reg == nil {
		return false
	}
	ps := r.space.PageSize()
	end := min(addr+n, reg.End())
	for pa := addr &^ (ps - 1); pa < end; pa += ps {
		if reg.Protected(pa) {
			return true
		}
	}
	return false
}

// store lands n delivered bytes (real payload when non-nil, synthetic
// fill otherwise) at addr, clamped to the destination region. In Direct
// mode all target pages are already unprotected so no faults fire; in
// Bounce mode this is the CPU copy, faulting like any application store.
func (r *Rank) store(addr, n uint64, payload []byte) {
	reg := r.space.Find(addr)
	if reg == nil {
		return
	}
	if addr+n > reg.End() {
		n = reg.End() - addr
	}
	if payload != nil {
		_ = r.space.Write(addr, payload[:n])
		return
	}
	_ = r.space.WriteRange(addr, n)
}

// copyOut is the size-only store used by collectives' result buffers.
func (r *Rank) copyOut(addr, n uint64) { r.store(addr, n, nil) }

// logTwo returns ceil(log2(n)) with logTwo(1) == 0.
func logTwo(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Barrier blocks r until every rank in the world has called Barrier for
// the same generation. All continuations run at the same virtual time:
// lastArrival + latency*ceil(log2 N), the dissemination-barrier cost.
// Each rank's continuation fires as its own release event on that rank's
// engine — in arrival order on sequential worlds, and in canonical
// (generation, rank) key order on sharded worlds, where arrival order is
// a host-scheduling artifact.
func (r *Rank) Barrier(fn func()) {
	w := r.world
	r.stats.CollectiveCalls++
	if w.sharded {
		w.barrierSharded(r, fn)
		return
	}
	w.barrierSequential(r, fn)
}

func (w *World) barrierSequential(r *Rank, fn func()) {
	now := w.eng.Now()
	if w.barrierArrived == 0 {
		w.barrierMax = now
		w.barrierFirst = now
	}
	if now > w.barrierMax {
		w.barrierMax = now
	}
	w.barrierArrived++
	w.barrierFns = append(w.barrierFns, fn)
	if w.barrierArrived < len(w.ranks) {
		return
	}
	release := w.barrierMax + w.net.Latency*des.Time(logTwo(len(w.ranks)))
	if w.faults != nil {
		release += w.barrierPenalty(logTwo(len(w.ranks)), len(w.ranks), w.barrierMax, w.barrierGen)
	}
	fns := w.barrierFns
	wait := w.barrierMax - w.barrierFirst
	for _, rk := range w.ranks {
		rk.stats.BarrierWaitTotal += wait
	}
	w.barrierArrived = 0
	w.barrierFns = nil
	w.barrierGen++
	for _, f := range fns {
		f := f
		w.eng.Schedule(release, func() {
			if f != nil {
				f()
			}
		})
	}
}

// barrierSharded is the concurrent arrival path: ranks on different
// shards may arrive from parallel worker goroutines, so the bookkeeping
// is commutative (max/min/count plus a per-rank slot, all under bmu) and
// the completer posts one keyed release per rank — the canonical
// (generation, rank) mailbox key, never mutex acquisition order, decides
// how simultaneous releases interleave with other traffic.
func (w *World) barrierSharded(r *Rank, fn func()) {
	eng := w.engFor(r.id)
	now := eng.Now()
	w.bmu.Lock()
	if w.barrierArrived == 0 {
		w.barrierMax = now
		w.barrierFirst = now
		if w.barrierSlots == nil {
			w.barrierSlots = make([]func(), len(w.ranks))
		}
	}
	if now > w.barrierMax {
		w.barrierMax = now
	}
	if now < w.barrierFirst {
		w.barrierFirst = now
	}
	w.barrierArrived++
	w.barrierSlots[r.id] = fn
	if w.barrierArrived < len(w.ranks) {
		w.bmu.Unlock()
		return
	}
	release := w.barrierMax + w.net.Latency*des.Time(logTwo(len(w.ranks)))
	gen := w.barrierGen
	if w.faults != nil {
		release += w.barrierPenalty(logTwo(len(w.ranks)), len(w.ranks), w.barrierMax, gen)
	}
	wait := w.barrierMax - w.barrierFirst
	slots := w.barrierSlots
	w.barrierSlots = make([]func(), len(w.ranks))
	w.barrierArrived = 0
	w.barrierGen++
	w.bmu.Unlock()
	for _, rk := range w.ranks {
		// Safe unlocked: barrier completions are serialised by the
		// arrival count, and BarrierWaitTotal is written only here.
		rk.stats.BarrierWaitTotal += wait
	}
	for i := range w.ranks {
		f := slots[i]
		eng.PostToOrdered(w.engFor(i), release, des.OrderedKeyMin+gen, uint64(i), func() {
			if f != nil {
				f()
			}
		})
	}
}

// AllReduce performs a global reduction of bytes payload per rank,
// depositing the result at destAddr in every rank's space (0 to skip the
// write). Completion follows barrier synchronisation plus the
// recursive-doubling transfer cost: log2(N) steps of (latency + bytes/bw).
func (r *Rank) AllReduce(bytes uint64, destAddr uint64, fn func()) {
	w := r.world
	steps := des.Time(logTwo(len(w.ranks)))
	rank := r
	eng := w.engFor(r.id)
	r.Barrier(func() {
		// Computed at release so degradation windows active *now* apply;
		// identical for every rank (no draws), so completion stays
		// simultaneous.
		xfer := w.collectiveXfer(steps, bytes, eng.Now())
		eng.After(xfer, func() {
			if destAddr != 0 && bytes > 0 {
				rank.copyOut(destAddr, bytes)
			}
			rank.stats.BytesReceived += bytes * uint64(logTwo(len(w.ranks)))
			if rank.onDeliver != nil {
				rank.onDeliver(bytes*uint64(logTwo(len(w.ranks))), eng.Now())
			}
			if fn != nil {
				fn()
			}
		})
	})
}
