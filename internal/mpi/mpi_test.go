package mpi

import (
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
)

func testWorld(t *testing.T, n int, mode DeliveryMode) (*des.Engine, *World) {
	t.Helper()
	eng := des.NewEngine()
	spaces := make([]*mem.AddressSpace, n)
	for i := range spaces {
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	w, err := NewWorld(eng, QsNet(), mode, spaces)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestNewWorldValidation(t *testing.T) {
	eng := des.NewEngine()
	if _, err := NewWorld(eng, QsNet(), Direct, nil); err == nil {
		t.Fatal("empty world accepted")
	}
}

func TestSendRecvDirect(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	r0, r1 := w.Rank(0), w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 16)

	var got Message
	done := false
	r1.Recv(0, 7, buf.Start(), func(m Message) { got = m; done = true })
	r0.Send(1, 7, 50000, nil)
	eng.Run(des.MaxTime)

	if !done {
		t.Fatal("recv never completed")
	}
	if got.Src != 0 || got.Dst != 1 || got.Tag != 7 || got.Bytes != 50000 {
		t.Fatalf("message = %+v", got)
	}
	// Transfer time: latency + bytes/bw.
	want := QsNet().transfer(50000)
	if got.DeliveredAt != want {
		t.Fatalf("DeliveredAt = %v, want %v", got.DeliveredAt, want)
	}
	if r1.Stats().BytesReceived != 50000 || r0.Stats().BytesSent != 50000 {
		t.Fatalf("stats: %+v / %+v", r0.Stats(), r1.Stats())
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	r0, r1 := w.Rank(0), w.Rank(1)
	// Send arrives before the receive is posted.
	r0.Send(1, 3, 1000, nil)
	eng.Run(des.MaxTime)
	done := false
	r1.Recv(AnySource, 3, 0, func(m Message) {
		if m.Src != 0 {
			t.Errorf("src = %d", m.Src)
		}
		done = true
	})
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("late-posted recv did not match queued message")
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	eng, w := testWorld(t, 3, Direct)
	var order []int
	w.Rank(2).Recv(1, 5, 0, func(Message) { order = append(order, 1) })
	w.Rank(2).Recv(0, 5, 0, func(Message) { order = append(order, 0) })
	w.Rank(0).Send(2, 5, 10, nil)
	w.Rank(1).Send(2, 5, 10, nil)
	// A non-matching tag must stay queued.
	w.Rank(0).Send(2, 99, 10, nil)
	eng.Run(des.MaxTime)
	if len(order) != 2 {
		t.Fatalf("completions = %v", order)
	}
	matched := map[int]bool{order[0]: true, order[1]: true}
	if !matched[0] || !matched[1] {
		t.Fatalf("wrong matching: %v", order)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	_, w := testWorld(t, 2, Direct)
	defer func() {
		if recover() == nil {
			t.Fatal("send to rank 9 did not panic")
		}
	}()
	w.Rank(0).Send(9, 0, 10, nil)
}

func TestSendCompletionTime(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	var at des.Time = -1
	w.Rank(0).Send(1, 0, 1<<20, func() { at = eng.Now() })
	eng.Run(des.MaxTime)
	if at != QsNet().Latency {
		t.Fatalf("sender completion at %v, want %v (eager)", at, QsNet().Latency)
	}
}

// Direct-mode DMA into protected pages is a conflict: the payload is
// dropped and counted — the problem described in §4.2.
func TestDirectModeNICConflict(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 16)
	r1.Space().SetFaultHandler(func(f mem.Fault) { f.Region.SetProtected(f.Page, false) })
	buf.ProtectAll()

	faultsBefore := r1.Space().Faults()
	r1.Recv(0, 0, buf.Start(), func(Message) {})
	w.Rank(0).Send(1, 0, 8192, nil)
	eng.Run(des.MaxTime)

	if r1.Stats().NICConflicts != 1 {
		t.Fatalf("NICConflicts = %d, want 1", r1.Stats().NICConflicts)
	}
	if r1.Space().Faults() != faultsBefore {
		t.Fatal("DMA delivery must not take CPU write faults")
	}
}

// Direct-mode DMA into unprotected pages silently bypasses write-fault
// tracking: zero faults even though memory was written. This is why a
// tracker cannot coexist with Direct mode.
func TestDirectModeBypassesTracking(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 16)
	r1.Recv(0, 0, buf.Start(), func(Message) {})
	w.Rank(0).Send(1, 0, 8192, nil)
	eng.Run(des.MaxTime)
	if r1.Space().Faults() != 0 {
		t.Fatal("unexpected faults in direct mode")
	}
	if r1.Stats().BytesReceived != 8192 {
		t.Fatalf("BytesReceived = %d", r1.Stats().BytesReceived)
	}
}

// Bounce mode: the CPU copy faults on protected destination pages, so the
// tracker sees the write — the paper's workaround.
func TestBounceModeFaultsNaturally(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 16)
	var faults int
	r1.Space().SetFaultHandler(func(f mem.Fault) {
		faults++
		f.Region.SetProtected(f.Page, false)
	})
	buf.ProtectAll()

	done := false
	r1.Recv(0, 0, buf.Start(), func(Message) { done = true })
	w.Rank(0).Send(1, 0, 8192, nil)
	eng.Run(des.MaxTime)

	if !done {
		t.Fatal("bounce recv never completed")
	}
	if faults != 2 { // 8192 bytes = 2 pages of 4096
		t.Fatalf("faults = %d, want 2", faults)
	}
	if r1.Stats().BounceCopyBytes != 8192 {
		t.Fatalf("BounceCopyBytes = %d", r1.Stats().BounceCopyBytes)
	}
	if w.BounceRegion(1) == nil {
		t.Fatal("bounce region missing")
	}
	if w.BounceRegion(0).Kind() != mem.Mmap {
		t.Fatal("bounce region kind")
	}
}

func TestBounceCopyAddsLatency(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 20)
	var doneAt des.Time
	r1.Recv(0, 0, buf.Start(), func(Message) { doneAt = eng.Now() })
	w.Rank(0).Send(1, 0, 1<<20, nil)
	eng.Run(des.MaxTime)
	net := QsNet()
	want := net.transfer(1<<20) + net.copyTime(1<<20)
	if doneAt != want {
		t.Fatalf("bounce completion at %v, want %v", doneAt, want)
	}
}

func TestDeliveryHook(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	var total uint64
	w.Rank(1).SetDeliveryHook(func(b uint64, _ des.Time) { total += b })
	w.Rank(1).Recv(0, 0, 0, nil)
	w.Rank(1).Recv(0, 0, 0, nil)
	w.Rank(0).Send(1, 0, 100, nil)
	w.Rank(0).Send(1, 0, 200, nil)
	eng.Run(des.MaxTime)
	if total != 300 {
		t.Fatalf("delivery hook total = %d", total)
	}
}

func TestBarrier(t *testing.T) {
	eng, w := testWorld(t, 4, Direct)
	var times []des.Time
	// Ranks arrive at different times; all must release together after
	// the last arrival.
	for i := 0; i < 4; i++ {
		i := i
		eng.Schedule(des.Time(i)*des.Second, func() {
			w.Rank(i).Barrier(func() { times = append(times, eng.Now()) })
		})
	}
	eng.Run(des.MaxTime)
	if len(times) != 4 {
		t.Fatalf("barrier released %d ranks", len(times))
	}
	want := 3*des.Second + QsNet().Latency*2 // log2(4) = 2 steps
	for _, at := range times {
		if at != want {
			t.Fatalf("release at %v, want %v", at, want)
		}
	}
	if w.Rank(0).Stats().BarrierWaitTotal != 3*des.Second {
		t.Fatalf("BarrierWaitTotal = %v", w.Rank(0).Stats().BarrierWaitTotal)
	}
}

func TestBarrierReusable(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	count := 0
	var iterate func(rank int)
	iterate = func(rank int) {
		w.Rank(rank).Barrier(func() {
			if rank == 0 {
				count++
			}
			if count < 3 {
				eng.After(des.Millisecond, func() { iterate(rank) })
			}
		})
	}
	iterate(0)
	iterate(1)
	eng.Run(des.MaxTime)
	if count != 3 {
		t.Fatalf("barrier iterations = %d, want 3", count)
	}
}

func TestAllReduce(t *testing.T) {
	eng, w := testWorld(t, 4, Direct)
	bufs := make([]uint64, 4)
	for i := 0; i < 4; i++ {
		r, _ := w.Rank(i).Space().Mmap(4096)
		bufs[i] = r.Start()
	}
	done := 0
	for i := 0; i < 4; i++ {
		w.Rank(i).AllReduce(1024, bufs[i], func() { done++ })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("allreduce completed on %d ranks", done)
	}
	// Completion must be strictly after a plain barrier (transfer cost).
	if eng.Now() <= QsNet().Latency*2 {
		t.Fatalf("allreduce finished too early: %v", eng.Now())
	}
	if w.Rank(0).Stats().CollectiveCalls != 1 {
		t.Fatalf("CollectiveCalls = %d", w.Rank(0).Stats().CollectiveCalls)
	}
}

func TestLogTwo(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	for n, want := range cases {
		if got := logTwo(n); got != want {
			t.Errorf("logTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTransferCost(t *testing.T) {
	net := Network{Latency: des.Microsecond, Bandwidth: 1e9, CopyBandwidth: 0}
	// 1 GB at 1 GB/s = 1 s + 1 us.
	if got := net.transfer(1e9); got != des.Second+des.Microsecond {
		t.Fatalf("transfer = %v", got)
	}
	if net.copyTime(1000) != 0 {
		t.Fatal("copyTime with zero bandwidth must be 0")
	}
}

func BenchmarkPingPong(b *testing.B) {
	eng := des.NewEngine()
	spaces := []*mem.AddressSpace{
		mem.NewAddressSpace(mem.Config{Phantom: true}),
		mem.NewAddressSpace(mem.Config{Phantom: true}),
	}
	w, _ := NewWorld(eng, QsNet(), Direct, spaces)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		w.Rank(1).Recv(0, 0, 0, func(Message) {
			w.Rank(1).Send(0, 1, 4096, nil)
		})
		w.Rank(0).Recv(1, 1, 0, func(Message) { done = true })
		w.Rank(0).Send(1, 0, 4096, nil)
		eng.Run(des.MaxTime)
		if !done {
			b.Fatal("pingpong incomplete")
		}
	}
}

func TestSendDataDeliversContents(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 14)
	const text = "the quick brown fox"
	payload := []byte(text)
	done := false
	r1.Recv(0, 0, buf.Start(), func(m Message) {
		if string(m.Payload) != text {
			t.Errorf("message payload = %q", m.Payload)
		}
		done = true
	})
	w.Rank(0).SendData(1, 0, payload, nil)
	// Sender may clobber its buffer right away (NIC copied it).
	payload[0] = 'X'
	eng.Run(des.MaxTime)
	if !done {
		t.Fatal("recv never completed")
	}
	got := make([]byte, 19)
	if err := r1.Space().Read(buf.Start(), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "the quick brown fox" {
		t.Fatalf("destination holds %q", got)
	}
}

func TestSendDataDirectMode(t *testing.T) {
	eng, w := testWorld(t, 2, Direct)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 14)
	r1.Recv(0, 0, buf.Start(), nil)
	w.Rank(0).SendData(1, 0, []byte{1, 2, 3, 4}, nil)
	eng.Run(des.MaxTime)
	got := make([]byte, 4)
	r1.Space().Read(buf.Start(), got)
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("direct payload = %v", got)
	}
	if r1.Space().Faults() != 0 {
		t.Fatal("direct delivery faulted")
	}
}

func TestSendDataFaultsThroughTrackerPath(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 14)
	var faults int
	r1.Space().SetFaultHandler(func(f mem.Fault) {
		faults++
		f.Region.SetProtected(f.Page, false)
	})
	buf.ProtectAll()
	r1.Recv(0, 0, buf.Start(), nil)
	w.Rank(0).SendData(1, 0, make([]byte, 5000), nil)
	eng.Run(des.MaxTime)
	if faults != 2 { // 5000 bytes across two 4096 pages
		t.Fatalf("payload copy took %d faults, want 2", faults)
	}
}
