package mpi

import "repro/internal/des"

// Additional collectives beyond Barrier/AllReduce. All follow the same
// completion model: barrier synchronisation (every rank must call the
// collective) plus an algorithmic transfer cost, with result payloads
// deposited through the rank's delivery path so trackers observe the
// writes.

// Bcast broadcasts bytes from root to every rank. Non-root ranks receive
// the payload at destAddr (0 to skip the memory write); the root's buffer
// is its own and is not rewritten. Completion follows a binomial-tree
// schedule: ceil(log2 N) steps of (latency + bytes/bw).
func (r *Rank) Bcast(root int, bytes uint64, destAddr uint64, fn func()) {
	w := r.world
	steps := des.Time(logTwo(len(w.ranks)))
	rank := r
	eng := w.engFor(r.id)
	r.Barrier(func() {
		xfer := w.collectiveXfer(steps, bytes, eng.Now())
		eng.After(xfer, func() {
			if rank.id != root {
				if destAddr != 0 && bytes > 0 {
					rank.copyOut(destAddr, bytes)
				}
				rank.stats.BytesReceived += bytes
				if rank.onDeliver != nil {
					rank.onDeliver(bytes, eng.Now())
				}
			}
			if fn != nil {
				fn()
			}
		})
	})
}

// Reduce combines bytes from every rank at root, which receives the
// result at destAddr (0 to skip). Completion mirrors Bcast's tree.
func (r *Rank) Reduce(root int, bytes uint64, destAddr uint64, fn func()) {
	w := r.world
	steps := des.Time(logTwo(len(w.ranks)))
	rank := r
	eng := w.engFor(r.id)
	r.Barrier(func() {
		xfer := w.collectiveXfer(steps, bytes, eng.Now())
		eng.After(xfer, func() {
			if rank.id == root {
				if destAddr != 0 && bytes > 0 {
					rank.copyOut(destAddr, bytes)
				}
				rank.stats.BytesReceived += bytes
				if rank.onDeliver != nil {
					rank.onDeliver(bytes, eng.Now())
				}
			}
			if fn != nil {
				fn()
			}
		})
	})
}

// Alltoall exchanges bytesPerRank with every other rank (the FT transpose
// pattern): each rank contributes and receives (N-1) x bytesPerRank. The
// received payload lands contiguously at destAddr. Completion models a
// pairwise-exchange schedule: (N-1) steps of (latency + bytesPerRank/bw).
func (r *Rank) Alltoall(bytesPerRank uint64, destAddr uint64, fn func()) {
	w := r.world
	n := len(w.ranks)
	steps := des.Time(n - 1)
	total := bytesPerRank * uint64(n-1)
	rank := r
	eng := w.engFor(r.id)
	r.Barrier(func() {
		xfer := w.collectiveXfer(steps, bytesPerRank, eng.Now())
		eng.After(xfer, func() {
			if destAddr != 0 && total > 0 {
				rank.copyOut(destAddr, total)
			}
			rank.stats.BytesReceived += total
			if rank.onDeliver != nil && total > 0 {
				rank.onDeliver(total, eng.Now())
			}
			if fn != nil {
				fn()
			}
		})
	})
}
