package mpi

// RDMA registered memory and checkpoint-time drain: the production
// alternative to the paper's bounce-buffer workaround. An RDMA-capable
// NIC writes only into memory the application has *registered* (pinned
// and mapped into the NIC's translation table, at real per-page cost).
// Registered-region deliveries are zero-copy and take no write faults —
// which is exactly the §4.2 conflict: a write-protection tracker never
// sees them, so the incremental write set silently under-counts. Here
// the under-count is first-class: Direct deliveries into protected
// pages land via mem.WriteDirect, which marks them silent-dirty, and
// Stats.SilentDirtyBytes/DirectBypassBytes make the bypass observable.
//
// Checkpointing safely therefore requires a drain protocol (Cao et
// al.): quiesce new traffic, wait for in-flight messages to land,
// deregister (handing the NIC's pages back to the MMU tracker via
// mem.ReplaySilent), checkpoint, re-register, reconnect. This file
// provides the mechanisms — registration bookkeeping, in-flight
// delivery tracking, AwaitDrain, bounce-mode degradation — while the
// autonomic supervisor drives the phase state machine.

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/mem"
)

// DrainPhase names one phase of the checkpoint-time drain protocol.
type DrainPhase uint8

const (
	// PhaseQuiesce stops injecting new RDMA traffic.
	PhaseQuiesce DrainPhase = iota
	// PhaseDrainInFlight waits for every in-flight delivery to land.
	PhaseDrainInFlight
	// PhaseDeregister tears down NIC registrations and reconciles
	// silent-dirty pages into the tracker.
	PhaseDeregister
	// PhaseCheckpoint commits the global checkpoint line.
	PhaseCheckpoint
	// PhaseReregister re-pins the regions with the NIC.
	PhaseReregister
	// PhaseReconnect re-establishes transport connections.
	PhaseReconnect

	// NumDrainPhases is the number of drain-protocol phases.
	NumDrainPhases = int(PhaseReconnect) + 1
)

var drainPhaseNames = [NumDrainPhases]string{
	"quiesce", "drain", "deregister", "checkpoint", "reregister", "reconnect",
}

func (p DrainPhase) String() string {
	if int(p) < len(drainPhaseNames) {
		return drainPhaseNames[p]
	}
	return fmt.Sprintf("DrainPhase(%d)", uint8(p))
}

// ParseDrainPhase maps a phase token (as used by the chaos DSL) to its
// DrainPhase.
func ParseDrainPhase(s string) (DrainPhase, error) {
	for i, name := range drainPhaseNames {
		if s == name {
			return DrainPhase(i), nil
		}
	}
	return 0, fmt.Errorf("mpi: unknown drain phase %q", s)
}

// RDMAConfig parameterises the registered-memory model. Zero fields
// take defaults (see withDefaults) so the zero value is usable.
type RDMAConfig struct {
	// RegisterBase is the fixed cost of one register/deregister call.
	RegisterBase des.Time
	// RegisterPerPage is the per-page pinning/translation cost added on
	// top of RegisterBase.
	RegisterPerPage des.Time
	// QuiesceDelay is the time for all ranks to stop injecting traffic.
	QuiesceDelay des.Time
	// DrainPoll is the interval at which AwaitDrain re-checks the
	// in-flight counters.
	DrainPoll des.Time
	// ReconnectLatency is the cost of re-establishing transport
	// connections after re-registration.
	ReconnectLatency des.Time
}

func (c RDMAConfig) withDefaults() RDMAConfig {
	if c.RegisterBase <= 0 {
		c.RegisterBase = 10 * des.Microsecond
	}
	if c.RegisterPerPage <= 0 {
		c.RegisterPerPage = 300 * des.Nanosecond
	}
	if c.QuiesceDelay <= 0 {
		c.QuiesceDelay = 5 * des.Microsecond
	}
	if c.DrainPoll <= 0 {
		c.DrainPoll = 10 * des.Microsecond
	}
	if c.ReconnectLatency <= 0 {
		c.ReconnectLatency = 100 * des.Microsecond
	}
	return c
}

// MemoryRegion is one registered (NIC-pinned) memory region of a rank.
type MemoryRegion struct {
	rank   *Rank
	region *mem.Region
}

// Rank returns the owning rank's number.
func (mr *MemoryRegion) Rank() int { return mr.rank.id }

// Region returns the underlying address-space region.
func (mr *MemoryRegion) Region() *mem.Region { return mr.region }

// Pages returns the registered page count.
func (mr *MemoryRegion) Pages() uint64 { return mr.region.Pages() }

// Bytes returns the registered byte count.
func (mr *MemoryRegion) Bytes() uint64 { return mr.region.Size() }

// rdmaState is the World's RDMA bookkeeping, installed by EnableRDMA.
type rdmaState struct {
	cfg      RDMAConfig
	inflight []int // scheduled-but-unlanded deliveries, by destination rank
	total    int
}

// EnableRDMA installs the registered-memory model on a Direct-mode
// world: each rank gets a bounce arena too (unprotected, tracker-
// excluded) so it can degrade to bounce-buffer delivery when its
// destination is unregistered or the drain protocol times out.
func (w *World) EnableRDMA(cfg RDMAConfig) error {
	if w.mode != Direct {
		return fmt.Errorf("mpi: EnableRDMA requires Direct mode, world is %v", w.mode)
	}
	if w.sharded {
		return fmt.Errorf("mpi: EnableRDMA is unsupported on sharded worlds (drain/poll state is engine-global)")
	}
	for _, r := range w.ranks {
		if r.bounce != nil {
			continue
		}
		b, err := r.space.Mmap(1 << 20)
		if err != nil {
			return fmt.Errorf("mpi: bounce buffer for rank %d: %w", r.id, err)
		}
		r.bounce = b
	}
	w.rdma = &rdmaState{cfg: cfg.withDefaults(), inflight: make([]int, len(w.ranks))}
	return nil
}

// RDMAEnabled reports whether EnableRDMA has been called.
func (w *World) RDMAEnabled() bool { return w.rdma != nil }

// RDMAConfig returns the installed configuration (zero value if RDMA is
// not enabled).
func (w *World) RDMAConfig() RDMAConfig {
	if w.rdma == nil {
		return RDMAConfig{}
	}
	return w.rdma.cfg
}

// RegisterCost returns the des-clock cost of registering (or
// deregistering) a region of the given page count.
func (w *World) RegisterCost(pages uint64) des.Time {
	if w.rdma == nil {
		return 0
	}
	return w.rdma.cfg.RegisterBase + des.Time(pages)*w.rdma.cfg.RegisterPerPage
}

// RegisterMemory pins reg with the NIC so Direct deliveries into it are
// zero-copy. The returned handle stays valid until DeregisterAll. The
// caller accounts the registration latency via World.RegisterCost.
func (r *Rank) RegisterMemory(reg *mem.Region) *MemoryRegion {
	mr := &MemoryRegion{rank: r, region: reg}
	r.registered = append(r.registered, mr)
	r.stats.RegisteredBytes += reg.Size()
	return mr
}

// RegisterAllData registers every checkpointable region of the rank's
// address space (the bounce arena and stack stay unregistered), in
// address order. Returns the handles and the total registered pages.
func (r *Rank) RegisterAllData() ([]*MemoryRegion, uint64) {
	var (
		regs  []*MemoryRegion
		pages uint64
	)
	for _, reg := range r.space.Regions() {
		if !reg.Kind().Checkpointable() || reg == r.bounce {
			continue
		}
		regs = append(regs, r.RegisterMemory(reg))
		pages += reg.Pages()
	}
	return regs, pages
}

// DeregisterAll tears down every registration and reconciles the pages
// the NIC wrote behind the tracker's back: each silent-dirty page is
// replayed through the fault-handler chain (mem.ReplaySilent), so the
// tracker and checkpointer see it before the checkpoint is cut. Returns
// the deregistered page count and the number of silent pages replayed.
func (r *Rank) DeregisterAll() (pages, replayed uint64) {
	for _, mr := range r.registered {
		pages += mr.region.Pages()
		r.stats.RegisteredBytes -= mr.region.Size()
	}
	r.registered = nil
	replayed = r.space.ReplaySilent()
	return pages, replayed
}

// Registered returns the rank's live registration handles.
func (r *Rank) Registered() []*MemoryRegion { return r.registered }

// DegradeToBounce permanently switches the rank to bounce-buffer
// delivery (the paper's workaround): the drain protocol invokes it when
// a rank's in-flight traffic refuses to drain within the timeout, so
// the checkpoint can proceed without a torn region. Sticky for the
// process lifetime — a restarted incarnation starts clean.
func (r *Rank) DegradeToBounce() { r.degraded = true }

// Degraded reports whether the rank has fallen back to bounce mode.
func (r *Rank) Degraded() bool { return r.degraded }

// registeredSpan reports whether [addr, addr+n) lies wholly inside one
// of the rank's registered regions.
func (r *Rank) registeredSpan(addr, n uint64) bool {
	for _, mr := range r.registered {
		if addr >= mr.region.Start() && addr+n <= mr.region.End() {
			return true
		}
	}
	return false
}

// trackDelivery records one scheduled delivery event bound for rank
// dst; untrackDelivery balances it when the event lands at the NIC.
func (w *World) trackDelivery(dst int) {
	if w.rdma == nil {
		return
	}
	w.rdma.inflight[dst]++
	w.rdma.total++
}

func (w *World) untrackDelivery(dst int) {
	if w.rdma == nil {
		return
	}
	w.rdma.inflight[dst]--
	w.rdma.total--
}

// InFlight returns the number of scheduled-but-unlanded deliveries
// across the world (0 when RDMA is not enabled).
func (w *World) InFlight() int {
	if w.rdma == nil {
		return 0
	}
	return w.rdma.total
}

// RankInFlight returns the in-flight delivery count bound for rank i.
func (w *World) RankInFlight(i int) int {
	if w.rdma == nil {
		return 0
	}
	return w.rdma.inflight[i]
}

// strandedRanks lists destination ranks with in-flight deliveries, in
// ascending rank order.
func (w *World) strandedRanks() []int {
	var out []int
	for i, n := range w.rdma.inflight {
		if n > 0 {
			out = append(out, i)
		}
	}
	return out
}

// AwaitDrain polls the in-flight counters every DrainPoll until they
// reach zero, then calls fn(nil). If timeout > 0 and the counters are
// still nonzero once the polls have consumed it, fn receives the list
// of stranded destination ranks instead — the drain protocol degrades
// those ranks to bounce mode rather than checkpointing a torn region.
func (w *World) AwaitDrain(timeout des.Time, fn func(stranded []int)) {
	if w.rdma == nil {
		panic("mpi: AwaitDrain without EnableRDMA")
	}
	start := w.eng.Now()
	var poll func()
	poll = func() {
		if w.rdma.total == 0 {
			fn(nil)
			return
		}
		if timeout > 0 && w.eng.Now()-start >= timeout {
			fn(w.strandedRanks())
			return
		}
		w.eng.After(w.rdma.cfg.DrainPoll, poll)
	}
	poll()
}

// Put performs a one-sided RDMA write: data lands at destAddr in rank
// dst's address space when the transfer arrives, with no matching Recv
// — the defining property of one-sided operations, and the reason they
// are invisible to receive-side interception. In Direct mode with the
// destination registered the payload lands via DMA (no faults, silent-
// dirty marking); otherwise it falls back to the bounce path. Under an
// installed fault model the write rides the exactly-once ARQ schedule.
// onComplete (optional) runs at the sender's completion (local ack).
func (r *Rank) Put(dst int, destAddr uint64, data []byte, onComplete func()) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: put to invalid rank %d", dst))
	}
	w := r.world
	n := uint64(len(data))
	r.stats.Puts++
	r.stats.BytesSent += n
	payload := append([]byte(nil), data...)
	target := w.ranks[dst]
	if w.faults != nil {
		deliver, ack, _, _ := w.planARQ(r.id, dst, n, 0)
		w.faults.suppressDup(r.id)
		w.trackDelivery(dst)
		w.eng.After(deliver, func() { target.landPut(destAddr, payload) })
		if onComplete != nil {
			w.eng.After(ack, onComplete)
		}
		return
	}
	w.trackDelivery(dst)
	w.eng.After(w.net.transfer(n), func() { target.landPut(destAddr, payload) })
	if onComplete != nil {
		w.eng.After(w.net.Latency, onComplete)
	}
}

// landPut lands a one-sided write at the destination NIC.
func (r *Rank) landPut(addr uint64, payload []byte) {
	w := r.world
	w.untrackDelivery(r.id)
	n := uint64(len(payload))
	done := func() {
		r.stats.BytesReceived += n
		if r.onDeliver != nil {
			r.onDeliver(n, w.eng.Now())
		}
	}
	if w.mode == Direct && !r.degraded && r.registeredSpan(addr, n) {
		r.dmaStore(addr, payload)
		done()
		return
	}
	// Unregistered target, degraded rank, or a Bounce-mode world: the
	// NIC lands in the bounce arena and the CPU copies out, faulting.
	r.stats.BounceCopyBytes += n
	w.eng.After(w.net.copyTime(n), func() {
		r.store(addr, n, payload)
		done()
	})
}

// dmaStore lands payload at addr with DMA semantics: zero-copy, no
// write faults, protected pages marked silent-dirty. Clamped to the
// destination region like store.
func (r *Rank) dmaStore(addr uint64, payload []byte) {
	reg := r.space.Find(addr)
	if reg == nil {
		return
	}
	n := uint64(len(payload))
	if addr+n > reg.End() {
		n = reg.End() - addr
	}
	silent, err := r.space.WriteDirect(addr, payload[:n])
	if err != nil {
		return
	}
	r.stats.DirectBypassBytes += n
	r.stats.SilentDirtyBytes += silent
}

// dmaStoreRange is dmaStore for size-only deliveries (synthetic fill).
func (r *Rank) dmaStoreRange(addr, n uint64) {
	reg := r.space.Find(addr)
	if reg == nil {
		return
	}
	if addr+n > reg.End() {
		n = reg.End() - addr
	}
	silent, err := r.space.WriteRangeDirect(addr, n)
	if err != nil {
		return
	}
	r.stats.DirectBypassBytes += n
	r.stats.SilentDirtyBytes += silent
}
