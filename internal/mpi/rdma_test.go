package mpi

import (
	"bytes"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
)

func rdmaWorld(t *testing.T, n int) (*des.Engine, *World) {
	t.Helper()
	eng, w := testWorld(t, n, Direct)
	if err := w.EnableRDMA(RDMAConfig{}); err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestDrainPhaseNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumDrainPhases; i++ {
		p := DrainPhase(i)
		got, err := ParseDrainPhase(p.String())
		if err != nil {
			t.Fatalf("ParseDrainPhase(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParseDrainPhase("warp"); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

func TestEnableRDMARequiresDirect(t *testing.T) {
	_, w := testWorld(t, 2, Bounce)
	if err := w.EnableRDMA(RDMAConfig{}); err == nil {
		t.Fatal("EnableRDMA accepted a Bounce world")
	}
}

func TestRegisteredDeliveryMarksSilent(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	r0, r1 := w.Rank(0), w.Rank(1)
	buf := r1.Space().MapData(1 << 16)
	r1.RegisterMemory(buf)
	buf.ProtectAll()

	payload := bytes.Repeat([]byte{0x42}, 8192)
	r1.Recv(0, 1, buf.Start(), nil)
	r0.SendData(1, 1, payload, nil)
	eng.Run(des.MaxTime)

	st := r1.Stats()
	if st.DirectBypassBytes != 8192 {
		t.Fatalf("DirectBypassBytes = %d, want 8192", st.DirectBypassBytes)
	}
	if st.SilentDirtyBytes != 8192 {
		t.Fatalf("SilentDirtyBytes = %d, want 8192", st.SilentDirtyBytes)
	}
	if st.NICConflicts != 0 {
		t.Fatalf("NICConflicts = %d under the registered-memory model, want 0", st.NICConflicts)
	}
	if r1.Space().Faults() != 0 {
		t.Fatalf("DMA delivery raised %d faults", r1.Space().Faults())
	}
	if got := r1.Space().SilentDirtyBytes(); got != 8192 {
		t.Fatalf("space SilentDirtyBytes = %d, want 8192", got)
	}
	got := make([]byte, 8192)
	if err := r1.Space().Read(buf.Start(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload did not land")
	}
}

func TestUnregisteredDeliveryFallsBackToBounce(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	r0, r1 := w.Rank(0), w.Rank(1)
	buf := r1.Space().MapData(1 << 16)
	buf.ProtectAll()

	var faults uint64
	r1.Space().SetFaultHandler(func(f mem.Fault) { faults++; f.Region.SetProtected(f.Addr, false) })
	r1.Recv(0, 1, buf.Start(), nil)
	r0.Send(1, 1, 4096, nil)
	eng.Run(des.MaxTime)

	st := r1.Stats()
	if st.BounceCopyBytes != 4096 {
		t.Fatalf("BounceCopyBytes = %d, want 4096 (unregistered fallback)", st.BounceCopyBytes)
	}
	if st.DirectBypassBytes != 0 || st.SilentDirtyBytes != 0 {
		t.Fatalf("bypass stats %d/%d on the bounce path, want 0/0", st.DirectBypassBytes, st.SilentDirtyBytes)
	}
	if faults == 0 {
		t.Fatal("bounce copy raised no faults — tracker would miss it")
	}
}

func TestRegisterAllDataAndDeregister(t *testing.T) {
	_, w := rdmaWorld(t, 1)
	r := w.Rank(0)
	d := r.Space().MapData(4 * 4096)
	regs, pages := r.RegisterAllData()
	if len(regs) != 1 || pages != 4 {
		t.Fatalf("RegisterAllData = %d regions / %d pages, want 1/4 (bounce+stack excluded)", len(regs), pages)
	}
	if got := r.Stats().RegisteredBytes; got != 4*4096 {
		t.Fatalf("RegisteredBytes = %d, want %d", got, 4*4096)
	}
	d.ProtectAll()
	if _, err := r.Space().WriteDirect(d.Start(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	deregPages, replayed := r.DeregisterAll()
	if deregPages != 4 || replayed != 1 {
		t.Fatalf("DeregisterAll = %d pages / %d replayed, want 4/1", deregPages, replayed)
	}
	if got := r.Stats().RegisteredBytes; got != 0 {
		t.Fatalf("RegisteredBytes = %d after deregister, want 0", got)
	}
	if r.Space().SilentDirtyBytes() != 0 {
		t.Fatal("deregistration left silent pages")
	}
	if cost := w.RegisterCost(4); cost <= 0 {
		t.Fatalf("RegisterCost(4) = %v, want > 0", cost)
	}
}

func TestPutOneSidedDelivery(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	r0, r1 := w.Rank(0), w.Rank(1)
	win := r1.Space().MapData(4096)
	r1.RegisterMemory(win)
	win.ProtectAll()

	completed := false
	r0.Put(1, win.Start(), []byte{1, 2, 3, 4}, func() { completed = true })
	if w.InFlight() != 1 || w.RankInFlight(1) != 1 {
		t.Fatalf("InFlight = %d / RankInFlight(1) = %d after injection, want 1/1", w.InFlight(), w.RankInFlight(1))
	}
	eng.Run(des.MaxTime)

	if !completed {
		t.Fatal("Put completion never ran")
	}
	if w.InFlight() != 0 {
		t.Fatalf("InFlight = %d after run, want 0", w.InFlight())
	}
	st := r1.Stats()
	if st.BytesReceived != 4 || r0.Stats().Puts != 1 {
		t.Fatalf("receiver got %d bytes, sender Puts = %d; want 4/1", st.BytesReceived, r0.Stats().Puts)
	}
	if st.SilentDirtyBytes != 4 {
		t.Fatalf("SilentDirtyBytes = %d, want 4 (protected page, no Recv posted)", st.SilentDirtyBytes)
	}
	got := make([]byte, 4)
	if err := r1.Space().Read(win.Start(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("one-sided payload did not land")
	}
}

func TestPutUnderFaultsExactlyOnce(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	if err := w.SetFaults(NetFaultConfig{Seed: 3, DropRate: 0.4, DupRate: 0.3}); err != nil {
		t.Fatal(err)
	}
	r0, r1 := w.Rank(0), w.Rank(1)
	win := r1.Space().MapData(4096)
	r1.RegisterMemory(win)

	for i := 0; i < 20; i++ {
		r0.Put(1, win.Start(), []byte{byte(i)}, nil)
	}
	eng.Run(des.MaxTime)
	if got := r1.Stats().BytesReceived; got != 20 {
		t.Fatalf("BytesReceived = %d under ARQ, want exactly 20", got)
	}
	if w.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", w.InFlight())
	}
}

func TestAwaitDrainCompletes(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	r0, r1 := w.Rank(0), w.Rank(1)
	win := r1.Space().MapData(1 << 20)
	r1.RegisterMemory(win)

	r0.Put(1, win.Start(), bytes.Repeat([]byte{7}, 1<<19), nil)
	var stranded []int
	drained := false
	w.AwaitDrain(0, func(s []int) { stranded = s; drained = true })
	if drained {
		t.Fatal("AwaitDrain returned synchronously with traffic in flight")
	}
	eng.Run(des.MaxTime)
	if !drained || stranded != nil {
		t.Fatalf("drained=%v stranded=%v, want true/nil", drained, stranded)
	}
}

func TestAwaitDrainTimeoutReportsStranded(t *testing.T) {
	eng, w := rdmaWorld(t, 3)
	r0, r2 := w.Rank(0), w.Rank(2)
	win := r2.Space().MapData(1 << 20)
	r2.RegisterMemory(win)

	// A transfer whose wire time (>500 µs at 900 MB/s for 512 KB)
	// dwarfs the drain budget.
	r0.Put(2, win.Start(), bytes.Repeat([]byte{7}, 1<<19), nil)
	var stranded []int
	w.AwaitDrain(50*des.Microsecond, func(s []int) { stranded = s })
	eng.Run(des.MaxTime)
	if len(stranded) != 1 || stranded[0] != 2 {
		t.Fatalf("stranded = %v, want [2]", stranded)
	}
}

func TestDegradedRankUsesBouncePath(t *testing.T) {
	eng, w := rdmaWorld(t, 2)
	r0, r1 := w.Rank(0), w.Rank(1)
	win := r1.Space().MapData(4096)
	r1.RegisterMemory(win)
	win.ProtectAll()
	r1.Space().SetFaultHandler(func(f mem.Fault) { f.Region.SetProtected(f.Addr, false) })
	r1.DegradeToBounce()

	r0.Put(1, win.Start(), []byte{9, 9}, nil)
	eng.Run(des.MaxTime)

	st := r1.Stats()
	if st.SilentDirtyBytes != 0 || st.DirectBypassBytes != 0 {
		t.Fatalf("degraded rank still DMA'd: bypass=%d silent=%d", st.DirectBypassBytes, st.SilentDirtyBytes)
	}
	if st.BounceCopyBytes != 2 {
		t.Fatalf("BounceCopyBytes = %d, want 2", st.BounceCopyBytes)
	}
	if !r1.Degraded() {
		t.Fatal("Degraded not sticky")
	}
}

func TestAwaitDrainWithoutRDMAPanics(t *testing.T) {
	_, w := testWorld(t, 1, Direct)
	defer func() {
		if recover() == nil {
			t.Fatal("AwaitDrain without EnableRDMA did not panic")
		}
	}()
	w.AwaitDrain(0, func([]int) {})
}
