package mpi

import (
	"errors"
	"testing"

	"repro/internal/des"
)

func faultyWorld(t *testing.T, n int, mode DeliveryMode, cfg NetFaultConfig) (*des.Engine, *World) {
	t.Helper()
	eng, w := testWorld(t, n, mode)
	if err := w.SetFaults(cfg); err != nil {
		t.Fatal(err)
	}
	return eng, w
}

func TestSetFaultsValidation(t *testing.T) {
	_, w := testWorld(t, 2, Direct)
	if err := w.SetFaults(NetFaultConfig{DropRate: 1.5}); err == nil {
		t.Fatal("drop rate 1.5 accepted")
	}
	if err := w.SetFaults(NetFaultConfig{DupRate: -0.1}); err == nil {
		t.Fatal("negative dup rate accepted")
	}
	if err := w.SetFaults(NetFaultConfig{Links: []LinkFault{{0, 1, 2.0}}}); err == nil {
		t.Fatal("link drop rate 2.0 accepted")
	}
	if w.Faulty() {
		t.Fatal("rejected configs must not install")
	}
}

// Plain sends keep their exactly-once contract under heavy loss: every
// message arrives exactly once, only later.
func TestPlainSendExactlyOnceUnderLoss(t *testing.T) {
	eng, w := faultyWorld(t, 2, Direct, NetFaultConfig{Seed: 7, DropRate: 0.4, DupRate: 0.3})
	r0, r1 := w.Rank(0), w.Rank(1)
	const msgs = 200
	got := make(map[int]int)
	for i := 0; i < msgs; i++ {
		tag := i
		r1.Recv(0, tag, 0, func(m Message) { got[tag]++ })
		r0.Send(1, tag, 4096, nil)
	}
	eng.Run(des.MaxTime)
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d messages", len(got), msgs)
	}
	for tag, n := range got {
		if n != 1 {
			t.Fatalf("tag %d delivered %d times", tag, n)
		}
	}
	st := w.FaultStats()
	if st.Drops == 0 || st.Retransmits == 0 {
		t.Fatalf("fault model idle under 40%% loss: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("plain sends must never time out: %+v", st)
	}
}

// Loss costs time: the same traffic takes strictly longer on a lossy
// fabric than on a clean one.
func TestLossDelaysDelivery(t *testing.T) {
	elapsed := func(cfg *NetFaultConfig) des.Time {
		eng, w := testWorld(t, 2, Direct)
		if cfg != nil {
			if err := w.SetFaults(*cfg); err != nil {
				t.Fatal(err)
			}
		}
		var last des.Time
		for i := 0; i < 50; i++ {
			w.Rank(1).Recv(0, i, 0, func(m Message) { last = m.DeliveredAt })
			w.Rank(0).Send(1, i, 65536, nil)
		}
		eng.Run(des.MaxTime)
		return last
	}
	clean := elapsed(nil)
	lossy := elapsed(&NetFaultConfig{Seed: 3, DropRate: 0.3})
	if lossy <= clean {
		t.Fatalf("lossy delivery (%v) not slower than clean (%v)", lossy, clean)
	}
}

func TestSendReliableTimeoutTyped(t *testing.T) {
	// A link dropping (clamped) ~95% of packets with 2 attempts: seed
	// chosen so the plan loses everything and the send times out.
	eng, w := faultyWorld(t, 2, Direct, NetFaultConfig{
		Seed: 1, MaxAttempts: 2,
		Links: []LinkFault{{Src: 0, Dst: 1, DropRate: 0.94}},
	})
	var timeouts, oks int
	for i := 0; i < 40; i++ {
		w.Rank(1).Recv(0, i, 0, nil)
		w.Rank(0).SendReliable(1, i, 1024, func(err error) {
			if err == nil {
				oks++
				return
			}
			if !errors.Is(err, ErrLinkTimeout) {
				t.Fatalf("timeout error not typed: %v", err)
			}
			timeouts++
		})
	}
	eng.Run(des.MaxTime)
	if timeouts == 0 {
		t.Fatalf("no timeouts on a 95%%-loss link (%d ok)", oks)
	}
	if got := w.FaultStats().Timeouts; got != uint64(timeouts) {
		t.Fatalf("stats.Timeouts = %d, callbacks saw %d", got, timeouts)
	}
}

func TestSendReliableCleanNetwork(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	var err error
	done := false
	w.Rank(1).Recv(0, 1, 0, func(Message) { done = true })
	w.Rank(0).SendReliable(1, 1, 2048, func(e error) { err = e })
	eng.Run(des.MaxTime)
	if !done || err != nil {
		t.Fatalf("clean SendReliable: delivered=%v err=%v", done, err)
	}
}

// Best-effort datagrams genuinely lose and duplicate.
func TestSendBestEffortLossAndDup(t *testing.T) {
	eng, w := faultyWorld(t, 2, Direct, NetFaultConfig{Seed: 5, DropRate: 0.3, DupRate: 0.3})
	const msgs = 300
	counts := make([]int, msgs)
	var post func()
	recvd := 0
	post = func() {
		w.Rank(1).Recv(0, 42, 0, func(m Message) {
			_ = m
			recvd++
			post()
		})
	}
	post()
	for i := 0; i < msgs; i++ {
		tag := i
		_ = tag
		w.Rank(0).SendBestEffort(1, 42, 64, func() { counts[tag]++ })
	}
	eng.Run(des.MaxTime)
	st := w.FaultStats()
	if st.Drops == 0 {
		t.Fatal("no best-effort datagrams lost at 30% drop")
	}
	if st.DupDeliveries == 0 {
		t.Fatal("no duplicates at 30% dup rate")
	}
	// Deliveries = sent - dropped + duplicated.
	want := msgs - int(st.Drops) + int(st.DupDeliveries)
	if recvd != want {
		t.Fatalf("received %d datagrams, want %d (drops %d, dups %d)",
			recvd, want, st.Drops, st.DupDeliveries)
	}
}

// The whole fault model is bit-reproducible per seed, and different
// seeds give different timelines.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed uint64) (des.Time, NetFaultStats) {
		eng, w := testWorld(t, 4, Bounce)
		if err := w.SetFaults(NetFaultConfig{
			Seed: seed, DropRate: 0.2, DupRate: 0.1, JitterMax: 5 * des.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			for r := 0; r < 4; r++ {
				dst := (r + 1) % 4
				w.Rank(dst).Recv(r, 10+i, 0, nil)
				w.Rank(r).Send(dst, 10+i, 8192, nil)
			}
		}
		done := 0
		for r := 0; r < 4; r++ {
			w.Rank(r).AllReduce(1024, 0, func() { done++ })
		}
		eng.Run(des.MaxTime)
		if done != 4 {
			t.Fatalf("allreduce completed on %d/4 ranks", done)
		}
		return eng.Now(), w.FaultStats()
	}
	t1, s1 := run(11)
	t2, s2 := run(11)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", t1, s1, t2, s2)
	}
	t3, _ := run(12)
	if t3 == t1 {
		t.Fatalf("different seeds produced identical timeline %v", t1)
	}
}

// Degradation windows slow transfers and add loss only inside the window.
func TestDegradedWindow(t *testing.T) {
	cfg := NetFaultConfig{
		Seed: 9,
		Windows: []DegradedWindow{{
			From: 1 * des.Millisecond, To: 2 * des.Millisecond,
			ExtraDrop: 0.5, SlowFactor: 8,
		}},
	}
	eng, w := faultyWorld(t, 2, Direct, cfg)
	// Before the window: clean timing.
	var first des.Time
	w.Rank(1).Recv(0, 1, 0, func(m Message) { first = m.DeliveredAt })
	w.Rank(0).Send(1, 1, 65536, nil)
	eng.Run(des.MaxTime)
	if want := QsNet().transfer(65536); first != want {
		t.Fatalf("pre-window delivery at %v, want clean %v", first, want)
	}
	// Inside the window: transfers are slowed 8x (plus any retransmits).
	var second des.Time
	eng.Schedule(1*des.Millisecond+100*des.Microsecond, func() {
		start := eng.Now()
		w.Rank(1).Recv(0, 2, 0, func(m Message) { second = m.DeliveredAt - start })
		w.Rank(0).Send(1, 2, 65536, nil)
	})
	eng.Run(des.MaxTime)
	if second < des.Time(float64(QsNet().transfer(65536))*8)-QsNet().Latency {
		t.Fatalf("in-window transfer took %v, want >= 8x clean", second)
	}
}

// Collectives complete under loss, later than on a clean fabric.
func TestCollectivesCompleteUnderLoss(t *testing.T) {
	for _, n := range []int{1, 3, 4} {
		run := func(faulty bool) des.Time {
			eng, w := testWorld(t, n, Direct)
			if faulty {
				if err := w.SetFaults(NetFaultConfig{Seed: 2, DropRate: 0.3}); err != nil {
					t.Fatal(err)
				}
			}
			done := 0
			for r := 0; r < n; r++ {
				w.Rank(r).Alltoall(4096, 0, func() {
					w.Rank(done%n).Bcast(0, 2048, 0, func() { done++ })
				})
			}
			eng.Run(des.MaxTime)
			if done != n {
				t.Fatalf("n=%d faulty=%v: %d/%d collectives completed", n, faulty, done, n)
			}
			return eng.Now()
		}
		clean, lossy := run(false), run(true)
		if n > 1 && lossy <= clean {
			t.Fatalf("n=%d: lossy collectives (%v) not slower than clean (%v)", n, lossy, clean)
		}
	}
}
