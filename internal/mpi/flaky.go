package mpi

// Flaky interconnect: a seeded, deterministic fault model layered under
// the Network cost model. Real clusters drop, duplicate and delay
// packets — the QsNet hardware the paper ran on retransmits at the link
// level, and MPI implementations above lossy transports run an
// ack/retransmit protocol. This file models both sides:
//
//   - A NetFaultConfig describes per-link loss probability, duplication,
//     delay jitter and timed degradation windows (a flaky cable, a
//     congested switch). All randomness comes from one seeded PCG owned
//     by the World, so a given seed reproduces the exact packet fate
//     sequence — and therefore the exact virtual timeline — every run.
//
//   - Plain Send/SendData keep their exactly-once contract by riding an
//     ack/retransmit-with-backoff (ARQ) schedule: the full retransmit
//     plan is drawn at injection time, the payload is delivered at the
//     first surviving copy's arrival, and the sender completes when the
//     first ack survives the return path. Loss costs time, never data,
//     so the kernels' halo exchanges and the collectives still complete.
//
//   - SendReliable exposes the bounded-retry variant: after MaxAttempts
//     transmissions without a surviving ack the sender gives up and the
//     completion callback receives a typed ErrLinkTimeout.
//
//   - SendBestEffort is the genuinely lossy datagram path (zero, one or
//     two copies arrive; no retransmit) — the transport failure
//     detectors gossip heartbeats over, so message loss produces real
//     false suspicion.
//
// With no faults installed (the default) every code path is bit-for-bit
// identical to the fault-free model.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/des"
)

// ErrLinkTimeout reports that a bounded-retry send exhausted its
// retransmit budget without a surviving acknowledgement.
var ErrLinkTimeout = errors.New("mpi: link timeout")

// LinkFault adds extra loss probability to one directed link.
type LinkFault struct {
	Src, Dst int
	DropRate float64
}

// DegradedWindow degrades the whole fabric during [From, To): extra loss
// probability and a transfer-time multiplier (a congested or flapping
// switch). SlowFactor <= 1 means "no slowdown".
type DegradedWindow struct {
	From, To   des.Time
	ExtraDrop  float64
	SlowFactor float64
}

// NetFaultConfig parameterises the deterministic interconnect fault
// model. The zero value (never installed) means a perfect network.
type NetFaultConfig struct {
	// Seed drives every packet-fate draw; same seed, same timeline.
	Seed uint64
	// DropRate is the base per-packet loss probability on every link.
	DropRate float64
	// DupRate is the probability a surviving packet is duplicated in
	// flight. The ARQ paths suppress duplicates (receiver-side sequence
	// numbers); best-effort deliveries genuinely arrive twice.
	DupRate float64
	// JitterMax adds a uniform [0, JitterMax) delay to each surviving
	// packet. Zero disables jitter.
	JitterMax des.Time
	// RTO is the initial retransmission timeout; it doubles per attempt
	// (capped). Zero selects 4x the message's transfer time.
	RTO des.Time
	// MaxAttempts bounds SendReliable's transmissions (0 -> 8). Plain
	// sends ignore it: they retry until delivered.
	MaxAttempts int
	// Links lists per-link extra loss on top of DropRate.
	Links []LinkFault
	// Windows lists timed whole-fabric degradation intervals.
	Windows []DegradedWindow
}

// NetFaultStats counts what the fault model did to the traffic.
type NetFaultStats struct {
	// Attempts counts packet transmissions, including retransmits.
	Attempts uint64
	// Drops counts lost packets (data and acks).
	Drops uint64
	// Retransmits counts ARQ retransmissions of point-to-point sends.
	Retransmits uint64
	// Timeouts counts bounded-retry sends that gave up (ErrLinkTimeout).
	Timeouts uint64
	// DupDeliveries counts duplicated packets drawn by the model.
	DupDeliveries uint64
	// SuppressedDups counts duplicates the ARQ receiver deduplicated.
	SuppressedDups uint64
	// ForcedDeliveries counts plain sends whose whole bounded plan was
	// drawn lost and were delivered by the terminal forced attempt.
	ForcedDeliveries uint64
	// CollectiveRetransmits counts barrier/collective rounds that lost
	// at least one packet and paid a retransmit round.
	CollectiveRetransmits uint64
	// JitterTotal accumulates injected jitter.
	JitterTotal des.Time
}

// netFaults is the World's installed fault state.
//
// Sequential worlds draw every packet fate from the single shared rng,
// preserving the historical per-seed timelines bit-for-bit. Sharded
// worlds draw from per-source-rank streams (perSrc) instead: a shared
// stream would be consumed in host-scheduling order by concurrent
// shards, while per-source streams are consumed in each source rank's
// own deterministic event order, making the full fault timeline — not
// just the digests — identical at every shard count. Barrier penalties,
// which have no single source rank, draw from a fresh per-generation
// stream. smu guards the shared counters, which concurrent shards bump.
type netFaults struct {
	cfg    NetFaultConfig
	rng    *rand.Rand
	perSrc []*rand.Rand // non-nil on sharded worlds
	smu    sync.Mutex   // guards stats on sharded worlds
	stats  NetFaultStats
	links  map[[2]int]float64
}

// rngFor returns the draw stream for packets injected by src.
func (f *netFaults) rngFor(src int) *rand.Rand {
	if f.perSrc == nil {
		return f.rng
	}
	return f.perSrc[src]
}

// reliableHardCap bounds the unlimited-retry plan of plain sends. The
// link is lossy, not severed: a plan whose every attempt was drawn lost
// (vanishingly rare at sane rates) is completed by one forced terminal
// attempt, preserving the exactly-once contract plain sends always had.
const reliableHardCap = 64

// maxLossRate clamps the effective per-packet loss probability so even a
// badly degraded link eventually gets packets through.
const maxLossRate = 0.95

// SetFaults installs (or replaces) the interconnect fault model. Call it
// before traffic flows; a nil-config network is restored by never
// calling it. Rates outside [0, 1) are rejected.
func (w *World) SetFaults(cfg NetFaultConfig) error {
	if cfg.DropRate < 0 || cfg.DropRate >= 1 || cfg.DupRate < 0 || cfg.DupRate >= 1 {
		return fmt.Errorf("mpi: fault rates must be in [0, 1): drop %v dup %v", cfg.DropRate, cfg.DupRate)
	}
	for _, l := range cfg.Links {
		if l.DropRate < 0 || l.DropRate >= 1 {
			return fmt.Errorf("mpi: link %d->%d drop rate %v out of [0, 1)", l.Src, l.Dst, l.DropRate)
		}
	}
	f := &netFaults{
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0xF1A4)),
		links: make(map[[2]int]float64, len(cfg.Links)),
	}
	if w.sharded {
		f.perSrc = make([]*rand.Rand, len(w.ranks))
		for i := range f.perSrc {
			f.perSrc[i] = rand.New(rand.NewPCG(cfg.Seed, 0xF1A4_0001+uint64(i)))
		}
	}
	for _, l := range cfg.Links {
		f.links[[2]int{l.Src, l.Dst}] += l.DropRate
	}
	w.faults = f
	return nil
}

// Faulty reports whether a fault model is installed.
func (w *World) Faulty() bool { return w.faults != nil }

// FaultStats returns a copy of the fault-model counters (zero value when
// no model is installed). On sharded worlds, call between runs only.
func (w *World) FaultStats() NetFaultStats {
	if w.faults == nil {
		return NetFaultStats{}
	}
	w.faults.smu.Lock()
	defer w.faults.smu.Unlock()
	return w.faults.stats
}

// lossAt returns the effective loss probability on src->dst at time at.
func (w *World) lossAt(src, dst int, at des.Time) float64 {
	f := w.faults
	p := f.cfg.DropRate + f.links[[2]int{src, dst}] + f.windowDrop(at)
	return min(p, maxLossRate)
}

// aggLossAt is the fabric-wide loss probability (no link term), used by
// the analytic collective model.
func (w *World) aggLossAt(at des.Time) float64 {
	f := w.faults
	return min(f.cfg.DropRate+f.windowDrop(at), maxLossRate)
}

func (f *netFaults) windowDrop(at des.Time) float64 {
	var p float64
	for _, dw := range f.cfg.Windows {
		if at >= dw.From && at < dw.To {
			p += dw.ExtraDrop
		}
	}
	return p
}

// slowFactorAt returns the transfer-time multiplier in effect at time at.
func (f *netFaults) slowFactorAt(at des.Time) float64 {
	s := 1.0
	for _, dw := range f.cfg.Windows {
		if at >= dw.From && at < dw.To && dw.SlowFactor > 1 {
			s *= dw.SlowFactor
		}
	}
	return s
}

// scaledTransfer is transfer() under any degradation window active at at.
func (w *World) scaledTransfer(bytes uint64, at des.Time) des.Time {
	base := w.net.transfer(bytes)
	if w.faults == nil {
		return base
	}
	if s := w.faults.slowFactorAt(at); s > 1 {
		return des.Time(float64(base) * s)
	}
	return base
}

// jitterFrom draws one packet's extra delay from rng. The caller holds
// smu (or is on a sequential world, where smu is uncontended anyway).
func (f *netFaults) jitterFrom(rng *rand.Rand) des.Time {
	if f.cfg.JitterMax <= 0 {
		return 0
	}
	j := des.Time(rng.Int64N(int64(f.cfg.JitterMax)))
	f.stats.JitterTotal += j
	return j
}

// rto returns the initial retransmission timeout for a message size.
func (w *World) rto(bytes uint64) des.Time {
	if w.faults.cfg.RTO > 0 {
		return w.faults.cfg.RTO
	}
	return 4 * w.net.transfer(bytes)
}

// planARQ draws the complete ack/retransmit schedule of one
// point-to-point message at injection time. It returns the offsets (from
// now) of the first surviving data arrival and of the sender's first
// surviving ack. maxAttempts <= 0 means an unlimited (plain-send) plan,
// which always ends delivered and acked; a bounded plan may end
// !acked, in which case ack holds the give-up offset after the full
// backoff schedule.
func (w *World) planARQ(src, dst int, bytes uint64, maxAttempts int) (deliver, ack des.Time, delivered, acked bool) {
	f := w.faults
	f.smu.Lock()
	defer f.smu.Unlock()
	rng := f.rngFor(src)
	now := w.engFor(src).Now()
	unlimited := maxAttempts <= 0
	if unlimited {
		maxAttempts = reliableHardCap
	}
	rto := w.rto(bytes)
	var start des.Time
	for k := 0; k < maxAttempts; k++ {
		f.stats.Attempts++
		if k > 0 {
			f.stats.Retransmits++
		}
		at := now + start
		if rng.Float64() < w.lossAt(src, dst, at) {
			f.stats.Drops++
		} else {
			arr := start + w.scaledTransfer(bytes, at) + f.jitterFrom(rng)
			if !delivered {
				deliver, delivered = arr, true
			}
			// The ack rides the reverse link.
			if rng.Float64() < w.lossAt(dst, src, now+arr) {
				f.stats.Drops++
			} else {
				ack, acked = arr+w.net.Latency+f.jitterFrom(rng), true
				break
			}
		}
		start += rto << uint(min(k, 6))
	}
	if unlimited {
		if !delivered {
			f.stats.ForcedDeliveries++
			deliver, delivered = start+w.scaledTransfer(bytes, now+start), true
		}
		if !acked {
			ack, acked = deliver+w.net.Latency, true
		}
	} else if !acked {
		ack = start
	}
	return deliver, ack, delivered, acked
}

// suppressDup accounts for in-flight duplication on an ARQ path: the
// receiver's sequence numbers drop the extra copy, so it costs nothing
// but shows up in the stats.
func (f *netFaults) suppressDup(src int) {
	f.smu.Lock()
	defer f.smu.Unlock()
	if f.cfg.DupRate > 0 && f.rngFor(src).Float64() < f.cfg.DupRate {
		f.stats.DupDeliveries++
		f.stats.SuppressedDups++
	}
}

// sendFaulty routes a plain (exactly-once) send through the ARQ model:
// delivery at the first surviving copy, sender completion at the first
// surviving ack. Every arrival offset is at least one transfer time and
// therefore at least one latency — the sharded lookahead contract.
func (w *World) sendFaulty(msg Message, onComplete func()) {
	deliver, ack, _, _ := w.planARQ(msg.Src, msg.Dst, msg.Bytes, 0)
	w.faults.suppressDup(msg.Src)
	w.trackDelivery(msg.Dst)
	src := w.engFor(msg.Src)
	src.PostTo(w.engFor(msg.Dst), src.Now()+deliver, func() { w.ranks[msg.Dst].deliver(msg) })
	if onComplete != nil {
		src.After(ack, onComplete)
	}
}

// SendReliable sends with bounded retransmission: the message is
// retried up to NetFaultConfig.MaxAttempts times, and onComplete
// receives nil on acknowledgement or an ErrLinkTimeout-wrapped error
// when the budget is exhausted. Note the payload may still have been
// delivered even when the sender times out (the acks, not the data, may
// be what the link is eating) — exactly the ambiguity real ARQ senders
// face. Without a fault model this is identical to Send.
func (r *Rank) SendReliable(dst, tag int, bytes uint64, onComplete func(error)) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	w := r.world
	eng := w.engFor(r.id)
	r.stats.Sends++
	r.stats.BytesSent += bytes
	msg := Message{Src: r.id, Dst: dst, Tag: tag, Bytes: bytes, SentAt: eng.Now()}
	if w.faults == nil {
		w.trackDelivery(dst)
		eng.PostTo(w.engFor(dst), eng.Now()+w.net.transfer(bytes), func() { w.ranks[dst].deliver(msg) })
		if onComplete != nil {
			eng.After(w.net.Latency, func() { onComplete(nil) })
		}
		return
	}
	maxA := w.faults.cfg.MaxAttempts
	if maxA <= 0 {
		maxA = 8
	}
	deliver, ack, delivered, acked := w.planARQ(r.id, dst, bytes, maxA)
	if delivered {
		w.faults.suppressDup(r.id)
		w.trackDelivery(dst)
		eng.PostTo(w.engFor(dst), eng.Now()+deliver, func() { w.ranks[dst].deliver(msg) })
	}
	if acked {
		if onComplete != nil {
			eng.After(ack, func() { onComplete(nil) })
		}
		return
	}
	w.faults.smu.Lock()
	w.faults.stats.Timeouts++
	w.faults.smu.Unlock()
	if onComplete != nil {
		src := r.id
		eng.After(ack, func() {
			onComplete(fmt.Errorf("mpi: send %d->%d tag %d gave up after %d attempts: %w",
				src, dst, tag, maxA, ErrLinkTimeout))
		})
	}
}

// SendBestEffort sends a datagram with no retransmission: under the
// fault model zero, one or two copies arrive (loss and duplication are
// real); without one it behaves like Send. onComplete fires after the
// injection overhead regardless of the packet's fate — the sender never
// learns it. Heartbeats and other gossip ride this path so that message
// loss produces genuine false suspicion in the failure detector.
func (r *Rank) SendBestEffort(dst, tag int, bytes uint64, onComplete func()) {
	if dst < 0 || dst >= len(r.world.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	w := r.world
	eng := w.engFor(r.id)
	r.stats.Sends++
	r.stats.BytesSent += bytes
	msg := Message{Src: r.id, Dst: dst, Tag: tag, Bytes: bytes, SentAt: eng.Now()}
	if w.faults == nil {
		w.trackDelivery(dst)
		eng.PostTo(w.engFor(dst), eng.Now()+w.net.transfer(bytes), func() { w.ranks[dst].deliver(msg) })
	} else {
		f := w.faults
		f.smu.Lock()
		rng := f.rngFor(r.id)
		f.stats.Attempts++
		at := eng.Now()
		if rng.Float64() < w.lossAt(r.id, dst, at) {
			f.stats.Drops++
			f.smu.Unlock()
		} else {
			arr := w.scaledTransfer(bytes, at) + f.jitterFrom(rng)
			dup := f.cfg.DupRate > 0 && rng.Float64() < f.cfg.DupRate
			var arr2 des.Time
			if dup {
				f.stats.DupDeliveries++
				arr2 = arr + w.net.Latency + f.jitterFrom(rng)
			}
			f.smu.Unlock()
			w.trackDelivery(dst)
			eng.PostTo(w.engFor(dst), at+arr, func() { w.ranks[dst].deliver(msg) })
			if dup {
				w.trackDelivery(dst)
				eng.PostTo(w.engFor(dst), at+arr2, func() { w.ranks[dst].deliver(msg) })
			}
		}
	}
	if onComplete != nil {
		eng.After(w.net.Latency, onComplete)
	}
}

// barrierMsgBytes is the notional size of a dissemination-barrier packet.
const barrierMsgBytes = 64

// barrierPenalty draws the extra barrier cost under faults: per
// dissemination round, the slowest participant's jitter, plus one
// retransmit round whenever any of the N packets in the round is lost.
// Drawn once per barrier, at release, by the last arriver — so every
// rank still releases at the same virtual instant. A barrier has no
// single source rank, and on sharded worlds which rank completes it is a
// host-scheduling artifact, so sharded draws come from a fresh stream
// keyed by the barrier generation; sequential worlds keep the shared
// stream and their historical timelines.
func (w *World) barrierPenalty(rounds, ranks int, at des.Time, gen uint64) des.Time {
	f := w.faults
	f.smu.Lock()
	defer f.smu.Unlock()
	rng := f.rng
	if f.perSrc != nil {
		rng = rand.New(rand.NewPCG(f.cfg.Seed, 0xBA22_1E20+gen))
	}
	rto := w.rto(barrierMsgBytes)
	var penalty des.Time
	for round := 0; round < rounds; round++ {
		lost := false
		var jmax des.Time
		for i := 0; i < ranks; i++ {
			f.stats.Attempts++
			if rng.Float64() < w.aggLossAt(at+penalty) {
				f.stats.Drops++
				lost = true
			} else if j := f.jitterFrom(rng); j > jmax {
				jmax = j
			}
		}
		penalty += jmax
		if lost {
			f.stats.CollectiveRetransmits++
			penalty += rto
		}
	}
	return penalty
}

// collectiveXfer is the analytic transfer cost of a collective's payload
// phase under the fault model: the fault-free cost, scaled by any active
// degradation window and by the retransmission inflation 1/(1-p) of the
// fabric loss rate. Deterministic (no draws) and identical for every
// rank, so collectives keep completing at one common virtual time; with
// no fault model it reduces to steps*transfer(bytes) exactly.
func (w *World) collectiveXfer(steps des.Time, bytes uint64, now des.Time) des.Time {
	base := steps * w.net.transfer(bytes)
	if w.faults == nil || base == 0 {
		return base
	}
	scaled := float64(base) * w.faults.slowFactorAt(now)
	if p := w.aggLossAt(now); p > 0 {
		scaled /= 1 - p
	}
	return des.Time(scaled)
}
