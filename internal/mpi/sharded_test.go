package mpi

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/des"
	"repro/internal/mem"
)

// shardedWorld builds an n-rank world over a des.Group with the given
// shard count, mapping rank i onto shard i%shards.
func shardedWorld(t *testing.T, n, shards int, mode DeliveryMode) (*des.Group, *World) {
	t.Helper()
	g := des.NewGroup(shards)
	engs := make([]*des.Engine, n)
	spaces := make([]*mem.AddressSpace, n)
	for i := range spaces {
		engs[i] = g.Shard(i % shards)
		spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
	}
	w, err := NewShardedWorld(engs, QsNet(), mode, spaces)
	if err != nil {
		t.Fatal(err)
	}
	return g, w
}

// timeline is the full virtual-time observable of a run: per-rank
// delivery instants plus barrier-release instants, in occurrence order.
type timeline struct {
	deliveries [][]des.Time
	barriers   [][]des.Time
	received   []uint64
}

func (tl *timeline) equal(o *timeline) bool {
	return fmt.Sprintf("%+v", tl) == fmt.Sprintf("%+v", o)
}

// runPingRing drives a deterministic all-ranks-active workload on w:
// every rank sends msgs tagged messages to its right neighbour, re-posts
// receives, and joins rounds global barriers, recording every virtual
// instant observed.
func runPingRing(run func(des.Time) uint64, w *World, msgs, rounds int) *timeline {
	n := w.Size()
	tl := &timeline{
		deliveries: make([][]des.Time, n),
		barriers:   make([][]des.Time, n),
		received:   make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		for k := 0; k < msgs; k++ {
			r.Recv(AnySource, k, 0, func(m Message) {
				tl.deliveries[i] = append(tl.deliveries[i], m.DeliveredAt)
				tl.received[i] += m.Bytes
			})
			r.Send((i+1)%n, k, uint64(1000+100*k+i), nil)
		}
	}
	var round func(r *Rank, i, left int)
	round = func(r *Rank, i, left int) {
		r.Barrier(func() {
			tl.barriers[i] = append(tl.barriers[i], w.engFor(i).Now())
			if left > 1 {
				round(r, i, left-1)
			}
		})
	}
	for i := 0; i < n; i++ {
		round(w.Rank(i), i, rounds)
	}
	run(des.MaxTime)
	return tl
}

// TestShardedWorldValidation pins the constructor's contract checks.
func TestShardedWorldValidation(t *testing.T) {
	g := des.NewGroup(2)
	spaces := []*mem.AddressSpace{mem.NewAddressSpace(mem.Config{PageSize: 4096})}
	if _, err := NewShardedWorld([]*des.Engine{g.Shard(0), g.Shard(1)}, QsNet(), Direct, spaces); err == nil {
		t.Fatal("engine/space length mismatch accepted")
	}
	net := QsNet()
	net.Latency = 0
	if _, err := NewShardedWorld([]*des.Engine{g.Shard(0)}, net, Direct, spaces); err == nil {
		t.Fatal("zero-latency network accepted for sharded world")
	}
}

// TestShardedLookaheadDeclared checks NewShardedWorld registers the link
// latency as the group's epoch lookahead.
func TestShardedLookaheadDeclared(t *testing.T) {
	g, _ := shardedWorld(t, 4, 2, Direct)
	if got := g.Lookahead(); got != QsNet().Latency {
		t.Fatalf("lookahead = %v, want %v", got, QsNet().Latency)
	}
}

// TestShardedMatchesSequential: with a clean network the sharded world
// must reproduce the sequential world's virtual timeline bit-for-bit at
// every shard count.
func TestShardedMatchesSequential(t *testing.T) {
	const ranks, msgs, rounds = 8, 12, 5
	seqEng, seqW := testWorld(t, ranks, Direct)
	ref := runPingRing(seqEng.Run, seqW, msgs, rounds)
	for _, shards := range []int{1, 2, 3, 8} {
		g, w := shardedWorld(t, ranks, shards, Direct)
		got := runPingRing(g.Control().Run, w, msgs, rounds)
		if !got.equal(ref) {
			t.Fatalf("shards=%d timeline diverged from sequential", shards)
		}
	}
}

// TestShardedChaosDeterministic: under an installed fault model the
// virtual timeline must be identical across shard counts and GOMAXPROCS
// settings (per-source fault streams make the schedule independent of
// shard placement and host parallelism).
func TestShardedChaosDeterministic(t *testing.T) {
	const ranks, msgs, rounds = 8, 12, 5
	cfg := NetFaultConfig{Seed: 11, DropRate: 0.3, DupRate: 0.2, JitterMax: 5 * des.Microsecond}
	run := func(shards, procs int) *timeline {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		g, w := shardedWorld(t, ranks, shards, Direct)
		if err := w.SetFaults(cfg); err != nil {
			t.Fatal(err)
		}
		return runPingRing(g.Control().Run, w, msgs, rounds)
	}
	ref := run(1, runtime.NumCPU())
	for _, shards := range []int{2, 3, 8} {
		if !run(shards, runtime.NumCPU()).equal(ref) {
			t.Fatalf("shards=%d chaos timeline diverged", shards)
		}
	}
	if !run(8, 1).equal(ref) {
		t.Fatal("GOMAXPROCS=1 chaos timeline diverged")
	}
}

// TestShardedRDMARejected: the drain/poll protocol is engine-global and
// must refuse to install on a sharded world.
func TestShardedRDMARejected(t *testing.T) {
	_, w := shardedWorld(t, 2, 2, Direct)
	if err := w.EnableRDMA(RDMAConfig{}); err == nil {
		t.Fatal("EnableRDMA accepted a sharded world")
	}
}
