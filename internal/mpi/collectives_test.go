package mpi

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
)

func TestBcast(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	bufs := make([]uint64, 4)
	for i := range bufs {
		r, _ := w.Rank(i).Space().Mmap(1 << 16)
		bufs[i] = r.Start()
	}
	done := 0
	for i := 0; i < 4; i++ {
		w.Rank(i).Bcast(0, 8192, bufs[i], func() { done++ })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("bcast completed on %d ranks", done)
	}
	// Root does not count itself as a receiver.
	if w.Rank(0).Stats().BytesReceived != 0 {
		t.Fatal("root received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if got := w.Rank(i).Stats().BytesReceived; got != 8192 {
			t.Fatalf("rank %d received %d", i, got)
		}
	}
}

func TestBcastWritesDestination(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 14)
	var faults int
	r1.Space().SetFaultHandler(func(f mem.Fault) {
		faults++
		f.Region.SetProtected(f.Page, false)
	})
	buf.ProtectAll()
	w.Rank(0).Bcast(0, 8192, 0, nil)
	r1.Bcast(0, 8192, buf.Start(), nil)
	eng.Run(des.MaxTime)
	if faults != 2 { // 8192 B = 2 pages of 4096
		t.Fatalf("bcast payload writes took %d faults, want 2", faults)
	}
}

func TestReduce(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	root := 2
	buf, _ := w.Rank(root).Space().Mmap(1 << 14)
	done := 0
	for i := 0; i < 4; i++ {
		dest := uint64(0)
		if i == root {
			dest = buf.Start()
		}
		w.Rank(i).Reduce(root, 4096, dest, func() { done++ })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("reduce completed on %d ranks", done)
	}
	if got := w.Rank(root).Stats().BytesReceived; got != 4096 {
		t.Fatalf("root received %d", got)
	}
	if got := w.Rank(0).Stats().BytesReceived; got != 0 {
		t.Fatalf("non-root received %d", got)
	}
}

func TestAlltoall(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	bufs := make([]uint64, 4)
	for i := range bufs {
		r, _ := w.Rank(i).Space().Mmap(1 << 16)
		bufs[i] = r.Start()
	}
	var doneAt des.Time
	done := 0
	for i := 0; i < 4; i++ {
		w.Rank(i).Alltoall(1000, bufs[i], func() { done++; doneAt = eng.Now() })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("alltoall completed on %d ranks", done)
	}
	// Each rank receives (N-1) x bytesPerRank.
	for i := 0; i < 4; i++ {
		if got := w.Rank(i).Stats().BytesReceived; got != 3000 {
			t.Fatalf("rank %d received %d, want 3000", i, got)
		}
	}
	// Completion: barrier (2 latency steps) + 3 pairwise transfers.
	net := QsNet()
	want := net.Latency*2 + 3*net.transfer(1000)
	if doneAt != want {
		t.Fatalf("alltoall completed at %v, want %v", doneAt, want)
	}
}

func TestCollectiveDeliveryHook(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	var seen uint64
	w.Rank(1).SetDeliveryHook(func(b uint64, _ des.Time) { seen += b })
	w.Rank(0).Bcast(0, 512, 0, nil)
	w.Rank(1).Bcast(0, 512, 0, nil)
	eng.Run(des.MaxTime)
	if seen != 512 {
		t.Fatalf("hook saw %d bytes", seen)
	}
}

// Property: messages between a fixed (src, dst, tag) pair are delivered
// in send order — the MPI non-overtaking guarantee our fixed-latency
// link preserves.
func TestPropertyNonOvertaking(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 121))
		eng := des.NewEngine()
		spaces := []*mem.AddressSpace{
			mem.NewAddressSpace(mem.Config{PageSize: 4096, Phantom: true}),
			mem.NewAddressSpace(mem.Config{PageSize: 4096, Phantom: true}),
		}
		w, err := NewWorld(eng, QsNet(), Direct, spaces)
		if err != nil {
			return false
		}
		count := int(n%20) + 2
		var got []uint64
		for i := 0; i < count; i++ {
			w.Rank(1).Recv(0, 5, 0, func(m Message) { got = append(got, m.Bytes) })
		}
		// Sends injected at increasing times with equal sizes carry
		// their sequence number as the (distinguishable) size.
		for i := 0; i < count; i++ {
			i := i
			at := des.Time(i*10+rng.IntN(5)) * des.Millisecond
			eng.Schedule(at, func() {
				w.Rank(0).Send(1, 5, uint64(i+1), nil)
			})
		}
		eng.Run(des.MaxTime)
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
