package mpi

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/mem"
)

func TestBcast(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	bufs := make([]uint64, 4)
	for i := range bufs {
		r, _ := w.Rank(i).Space().Mmap(1 << 16)
		bufs[i] = r.Start()
	}
	done := 0
	for i := 0; i < 4; i++ {
		w.Rank(i).Bcast(0, 8192, bufs[i], func() { done++ })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("bcast completed on %d ranks", done)
	}
	// Root does not count itself as a receiver.
	if w.Rank(0).Stats().BytesReceived != 0 {
		t.Fatal("root received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if got := w.Rank(i).Stats().BytesReceived; got != 8192 {
			t.Fatalf("rank %d received %d", i, got)
		}
	}
}

func TestBcastWritesDestination(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	r1 := w.Rank(1)
	buf, _ := r1.Space().Mmap(1 << 14)
	var faults int
	r1.Space().SetFaultHandler(func(f mem.Fault) {
		faults++
		f.Region.SetProtected(f.Page, false)
	})
	buf.ProtectAll()
	w.Rank(0).Bcast(0, 8192, 0, nil)
	r1.Bcast(0, 8192, buf.Start(), nil)
	eng.Run(des.MaxTime)
	if faults != 2 { // 8192 B = 2 pages of 4096
		t.Fatalf("bcast payload writes took %d faults, want 2", faults)
	}
}

func TestReduce(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	root := 2
	buf, _ := w.Rank(root).Space().Mmap(1 << 14)
	done := 0
	for i := 0; i < 4; i++ {
		dest := uint64(0)
		if i == root {
			dest = buf.Start()
		}
		w.Rank(i).Reduce(root, 4096, dest, func() { done++ })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("reduce completed on %d ranks", done)
	}
	if got := w.Rank(root).Stats().BytesReceived; got != 4096 {
		t.Fatalf("root received %d", got)
	}
	if got := w.Rank(0).Stats().BytesReceived; got != 0 {
		t.Fatalf("non-root received %d", got)
	}
}

func TestAlltoall(t *testing.T) {
	eng, w := testWorld(t, 4, Bounce)
	bufs := make([]uint64, 4)
	for i := range bufs {
		r, _ := w.Rank(i).Space().Mmap(1 << 16)
		bufs[i] = r.Start()
	}
	var doneAt des.Time
	done := 0
	for i := 0; i < 4; i++ {
		w.Rank(i).Alltoall(1000, bufs[i], func() { done++; doneAt = eng.Now() })
	}
	eng.Run(des.MaxTime)
	if done != 4 {
		t.Fatalf("alltoall completed on %d ranks", done)
	}
	// Each rank receives (N-1) x bytesPerRank.
	for i := 0; i < 4; i++ {
		if got := w.Rank(i).Stats().BytesReceived; got != 3000 {
			t.Fatalf("rank %d received %d, want 3000", i, got)
		}
	}
	// Completion: barrier (2 latency steps) + 3 pairwise transfers.
	net := QsNet()
	want := net.Latency*2 + 3*net.transfer(1000)
	if doneAt != want {
		t.Fatalf("alltoall completed at %v, want %v", doneAt, want)
	}
}

func TestCollectiveDeliveryHook(t *testing.T) {
	eng, w := testWorld(t, 2, Bounce)
	var seen uint64
	w.Rank(1).SetDeliveryHook(func(b uint64, _ des.Time) { seen += b })
	w.Rank(0).Bcast(0, 512, 0, nil)
	w.Rank(1).Bcast(0, 512, 0, nil)
	eng.Run(des.MaxTime)
	if seen != 512 {
		t.Fatalf("hook saw %d bytes", seen)
	}
}

// Property: messages between a fixed (src, dst, tag) pair are delivered
// in send order — the MPI non-overtaking guarantee our fixed-latency
// link preserves.
func TestPropertyNonOvertaking(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 121))
		eng := des.NewEngine()
		spaces := []*mem.AddressSpace{
			mem.NewAddressSpace(mem.Config{PageSize: 4096, Phantom: true}),
			mem.NewAddressSpace(mem.Config{PageSize: 4096, Phantom: true}),
		}
		w, err := NewWorld(eng, QsNet(), Direct, spaces)
		if err != nil {
			return false
		}
		count := int(n%20) + 2
		var got []uint64
		for i := 0; i < count; i++ {
			w.Rank(1).Recv(0, 5, 0, func(m Message) { got = append(got, m.Bytes) })
		}
		// Sends injected at increasing times with equal sizes carry
		// their sequence number as the (distinguishable) size.
		for i := 0; i < count; i++ {
			i := i
			at := des.Time(i*10+rng.IntN(5)) * des.Millisecond
			eng.Schedule(at, func() {
				w.Rank(0).Send(1, 5, uint64(i+1), nil)
			})
		}
		eng.Run(des.MaxTime)
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Edge worlds: single-rank and non-power-of-two sizes, in both delivery
// modes, on clean and lossy fabrics. Collectives must complete, deliver
// the right volumes, and keep every rank's completion simultaneous.
func TestCollectivesEdgeWorlds(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		for _, mode := range []DeliveryMode{Bounce, Direct} {
			for _, lossy := range []bool{false, true} {
				name := map[DeliveryMode]string{Bounce: "bounce", Direct: "direct"}[mode]
				t.Run(fmt.Sprintf("n=%d/%s/lossy=%v", n, name, lossy), func(t *testing.T) {
					eng, w := testWorld(t, n, mode)
					if lossy {
						if err := w.SetFaults(NetFaultConfig{Seed: 4, DropRate: 0.25, DupRate: 0.1}); err != nil {
							t.Fatal(err)
						}
					}
					var times []des.Time
					for i := 0; i < n; i++ {
						w.Rank(i).AllReduce(2048, 0, func() { times = append(times, eng.Now()) })
					}
					eng.Run(des.MaxTime)
					if len(times) != n {
						t.Fatalf("allreduce completed on %d/%d ranks", len(times), n)
					}
					for _, at := range times {
						if at != times[0] {
							t.Fatalf("ranks completed at different times: %v", times)
						}
					}
					exp := uint64(2048 * logTwo(n))
					for i := 0; i < n; i++ {
						if got := w.Rank(i).Stats().BytesReceived; got != exp {
							t.Fatalf("rank %d received %d, want %d", i, got, exp)
						}
					}

					// Bcast from the last rank (non-zero root at the edge).
					done := 0
					root := n - 1
					for i := 0; i < n; i++ {
						w.Rank(i).Bcast(root, 512, 0, func() { done++ })
					}
					eng.Run(des.MaxTime)
					if done != n {
						t.Fatalf("bcast completed on %d/%d ranks", done, n)
					}

					// Alltoall in a size-1 world moves zero bytes but must
					// still complete.
					done = 0
					for i := 0; i < n; i++ {
						w.Rank(i).Alltoall(777, 0, func() { done++ })
					}
					eng.Run(des.MaxTime)
					if done != n {
						t.Fatalf("alltoall completed on %d/%d ranks", done, n)
					}
				})
			}
		}
	}
}

// Single-rank collectives are free: no steps, no transfer, release after
// zero dissemination rounds.
func TestSingleRankCollectiveTiming(t *testing.T) {
	eng, w := testWorld(t, 1, Direct)
	var at des.Time = -1
	w.Rank(0).AllReduce(1<<20, 0, func() { at = eng.Now() })
	eng.Run(des.MaxTime)
	if at != 0 {
		t.Fatalf("single-rank allreduce completed at %v, want 0", at)
	}
}

// Point-to-point retransmission works at the same edges: every plain
// send in a 3- and 5-rank lossy ring arrives exactly once in both modes.
func TestRetransmitEdgeWorlds(t *testing.T) {
	for _, n := range []int{3, 5} {
		for _, mode := range []DeliveryMode{Bounce, Direct} {
			eng, w := testWorld(t, n, mode)
			if err := w.SetFaults(NetFaultConfig{Seed: 8, DropRate: 0.35, DupRate: 0.2}); err != nil {
				t.Fatal(err)
			}
			got := make([]int, n)
			for r := 0; r < n; r++ {
				dst := (r + 1) % n
				d := dst
				w.Rank(dst).Recv(r, 60, 0, func(m Message) { got[d]++ })
				w.Rank(r).Send(dst, 60, 9000, nil)
			}
			eng.Run(des.MaxTime)
			for r, c := range got {
				if c != 1 {
					t.Fatalf("n=%d mode=%v: rank %d received %d copies", n, mode, r, c)
				}
			}
			if w.FaultStats().Retransmits == 0 {
				t.Fatalf("n=%d mode=%v: no retransmits at 35%% loss", n, mode)
			}
		}
	}
}
