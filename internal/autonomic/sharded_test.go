package autonomic

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
)

// TestShardedReplayEquivalence pins the acceptance criterion that
// ValidateReplay digests are bit-identical across shard counts,
// including a chaos schedule: the supervisor hosts every team on the
// group's control engine, so sharding must not perturb a single event.
func TestShardedReplayEquivalence(t *testing.T) {
	sched, err := chaos.ParseSchedule("crash at 1500ms..6s count 2 jitter 400ms")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	type fp struct {
		checksum string
		digests  string
	}
	run := func(shards int) fp {
		cfg := chaosBaseConfig(5)
		cfg.Shards = shards
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !out.BitExact() {
			t.Fatalf("shards=%d: injected run not bit-exact against its own reference", shards)
		}
		if out.Injected.Failures == 0 {
			t.Fatalf("shards=%d: no failures injected", shards)
		}
		return fp{
			checksum: fmt.Sprint(out.Injected.Checksum),
			digests:  fmt.Sprintf("%x", out.Injected.SpaceDigests),
		}
	}
	ref := run(0)
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != ref {
			t.Fatalf("shards=%d: fingerprint %+v diverged from sequential %+v", shards, got, ref)
		}
	}
}
