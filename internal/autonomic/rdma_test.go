package autonomic

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// rdmaConfig is the shared one-sided-Put ring configuration: PutEvery 1
// guarantees in-flight RDMA traffic at every checkpoint boundary, the
// traffic the drain protocol exists to land.
func rdmaConfig(mode RDMAMode) Config {
	return Config{
		Workload:    PutFactory{Pages: 1, PutEvery: 1, Seed: 2.5, ComputeTime: 50 * des.Millisecond},
		Ranks:       3,
		Iterations:  12,
		CkptEvery:   3,
		ComputeTime: 50 * des.Millisecond,
		Seed:        11,
		RDMA:        &RDMAOptions{Mode: mode},
	}
}

// A failure-free drain run completes with the protocol fully exercised:
// every checkpoint boundary runs a drain round, every phase accumulates
// latency, registration is paid, and no line carries silent pages.
func TestDrainRunAccountsPhases(t *testing.T) {
	rep, err := Run(rdmaConfig(RDMADrain))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Iterations != 12 {
		t.Fatalf("run did not complete: %+v", rep)
	}
	if rep.DrainRounds != 4 { // boundaries 3, 6, 9, 12
		t.Fatalf("drain rounds %d, want 4", rep.DrainRounds)
	}
	for p := 0; p < mpi.NumDrainPhases; p++ {
		if rep.DrainPhaseTime[p] <= 0 {
			t.Fatalf("phase %v accumulated no latency: %v", mpi.DrainPhase(p), rep.DrainPhaseTime)
		}
	}
	if rep.RegistrationTime <= 0 {
		t.Fatal("registration cost never hit the clock")
	}
	if rep.DirectBypassBytes == 0 || rep.SilentDirtyBytes == 0 {
		t.Fatalf("no DMA traffic measured: bypass %d, silent %d", rep.DirectBypassBytes, rep.SilentDirtyBytes)
	}
	if rep.CheckpointSilentBytes != 0 {
		t.Fatalf("drain-mode chain carries %d silent bytes, want 0", rep.CheckpointSilentBytes)
	}
	if rep.DrainTimeouts != 0 {
		t.Fatalf("unexpected drain timeouts: %d", rep.DrainTimeouts)
	}
}

// Naive Direct measures the §4.2 under-count: the same run without the
// drain protocol bakes silent pages into its incremental lines.
func TestNaiveDirectBakesSilentPagesIntoChain(t *testing.T) {
	rep, err := Run(rdmaConfig(RDMANaive))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("run did not complete: %+v", rep)
	}
	if rep.DrainRounds != 0 {
		t.Fatalf("naive mode ran %d drain rounds", rep.DrainRounds)
	}
	if rep.CheckpointSilentBytes == 0 {
		t.Fatal("naive Direct chain reports zero silent bytes — the under-count vanished")
	}
}

// The acceptance criterion: a node crash during *each* of the six drain
// phases must recover to a verifiable line and replay to the bit-exact
// final image of a failure-free run.
func TestDrainCrashEveryPhaseReplaysBitExact(t *testing.T) {
	for p := 0; p < mpi.NumDrainPhases; p++ {
		phase := mpi.DrainPhase(p)
		t.Run(phase.String(), func(t *testing.T) {
			sched, err := chaos.ParseSchedule(
				fmt.Sprintf("crash-during-drain at 0s..60s phase %s", phase))
			if err != nil {
				t.Fatal(err)
			}
			var injStore storage.Store
			out, err := ValidateReplayStore(rdmaConfig(RDMADrain), sched,
				func(_ *des.Engine, _ *chaos.Driver) storage.Store {
					injStore = storage.NewMemStore()
					return injStore
				})
			if err != nil {
				t.Fatal(err)
			}
			if out.Stats.DrainCrashes != 1 {
				t.Fatalf("planned drain crash never fired: %+v", out.Stats)
			}
			if out.Injected.Failures != 1 || out.Injected.Recoveries != 1 {
				t.Fatalf("failures %d / recoveries %d, want 1/1",
					out.Injected.Failures, out.Injected.Recoveries)
			}
			if !out.BitExact() {
				t.Fatalf("crash during %v did not replay bit-exactly: digests %v vs %v, checksum %v vs %v",
					phase, out.Reference.SpaceDigests, out.Injected.SpaceDigests,
					out.Reference.Checksum, out.Injected.Checksum)
			}
			// The chain the injected run left behind is verifiable end to
			// end at its newest consistent line.
			seq, ok, err := ckpt.LatestVerifiableSeq(injStore, 3)
			if err != nil || !ok {
				t.Fatalf("no verifiable line after recovery: %v %v", ok, err)
			}
			for rank := 0; rank < 3; rank++ {
				if err := ckpt.VerifyChain(injStore, rank, seq); err != nil {
					t.Fatalf("rank %d chain fails verification at line %d: %v", rank, seq, err)
				}
			}
		})
	}
}

// A rank whose in-flight traffic cannot drain inside the timeout is
// degraded to bounce-buffer delivery: the run still completes, every
// line commits, the chain verifies, and no silent pages are baked in —
// the protocol never checkpoints a torn region.
func TestDrainTimeoutDegradesToBounce(t *testing.T) {
	store := storage.NewMemStore()
	cfg := rdmaConfig(RDMADrain)
	// 128-page (512 KiB) puts against a 50µs drain budget: the transfer
	// cannot land in time, so every rank strands at the first boundary.
	cfg.Workload = PutFactory{Pages: 128, PutEvery: 1, Seed: 1.0, ComputeTime: 50 * des.Millisecond}
	cfg.RDMA = &RDMAOptions{Mode: RDMADrain, DrainTimeout: 50 * des.Microsecond}
	cfg.Store = store
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("degraded run did not complete: %+v", rep)
	}
	if rep.DrainTimeouts == 0 {
		t.Fatal("no rank was stranded — the timeout never bit")
	}
	if rep.CommittedLines != 4 {
		t.Fatalf("committed %d lines, want 4", rep.CommittedLines)
	}
	if rep.CheckpointSilentBytes != 0 {
		t.Fatalf("degraded chain carries %d silent bytes — a torn region", rep.CheckpointSilentBytes)
	}
	seq, ok, err := ckpt.LatestVerifiableSeq(store, cfg.Ranks)
	if err != nil || !ok {
		t.Fatalf("no verifiable line: %v %v", ok, err)
	}
	for rank := 0; rank < cfg.Ranks; rank++ {
		if err := ckpt.VerifyChain(store, rank, seq); err != nil {
			t.Fatalf("rank %d chain fails verification: %v", rank, err)
		}
	}
}

// The naive regime's corruption is visible end to end: the same seeded
// crash that replays bit-exactly under the drain protocol diverges under
// naive Direct, because the restored line misses the NIC-written windows.
func TestNaiveDirectCrashRestoreDiverges(t *testing.T) {
	// Mid-run, past the second committed line (iteration 6 at ~300ms
	// virtual), so the restore replays from a chain that misses silent
	// window pages.
	sched, err := chaos.ParseSchedule("crash at 400ms..410ms")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ValidateReplayStore(rdmaConfig(RDMANaive), sched,
		func(_ *des.Engine, _ *chaos.Driver) storage.Store { return storage.NewMemStore() })
	if err != nil {
		t.Fatal(err)
	}
	if out.Injected.Failures != 1 {
		t.Fatalf("planned crash never fired: %+v", out.Injected)
	}
	if out.BitExact() {
		t.Fatal("naive Direct crash-restore replayed bit-exactly — the under-count has no teeth")
	}

	drainOut, err := ValidateReplayStore(rdmaConfig(RDMADrain), sched,
		func(_ *des.Engine, _ *chaos.Driver) storage.Store { return storage.NewMemStore() })
	if err != nil {
		t.Fatal(err)
	}
	if drainOut.Injected.Failures != 1 {
		t.Fatalf("planned crash never fired under drain: %+v", drainOut.Injected)
	}
	if !drainOut.BitExact() {
		t.Fatal("drain protocol did not restore bit-exactness for the same crash")
	}
}
