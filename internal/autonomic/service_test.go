package autonomic

// Chaos × service equivalence: the checkpoint-store service replaces the
// default hardened stack under the supervisor, the chaos plan tears the
// *application* apart (node crashes forcing restore-and-replay), and
// service-level faults — leader crash mid-batch, follower partition,
// follower brownout — tear the *storage* apart at the same time. The
// contract is unchanged: bit-identical final digests against a
// failure-free run, because the service never drops an acked write.

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/ckptstore"
	"repro/internal/des"
	"repro/internal/storage"
)

// crashAfterPuts wraps a store and fires a trigger immediately before
// the nth Put — the deterministic way to aim a leader crash inside an
// open batch window, with writes in flight behind it.
type crashAfterPuts struct {
	storage.Store
	puts    int
	fireAt  int
	trigger func()
}

func (c *crashAfterPuts) Put(key string, data []byte) error {
	c.puts++
	if c.puts == c.fireAt && c.trigger != nil {
		c.trigger()
	}
	return c.Store.Put(key, data)
}

// serviceStack builds the injected run's storage: a 3-replica
// checkpoint-store service on the injected engine, one follower wrapped
// by the chaos driver (so storage-brownout entries in the schedule land
// inside the replication group), a follower partition mid-run, and a
// leader crash aimed mid-batch. The returned store is the service
// client behind the standard retry layer, deadline-capped.
func serviceStack(crashOnPut int, partition bool) (func(*des.Engine, *chaos.Driver) storage.Store, **ckptstore.Service) {
	var svc *ckptstore.Service
	build := func(eng *des.Engine, driver *chaos.Driver) storage.Store {
		var err error
		svc, err = ckptstore.New(ckptstore.Config{
			Engine: eng,
			Replicas: []storage.Store{
				storage.NewMemStore(),
				driver.WrapStore(storage.NewMemStore()),
				storage.NewMemStore(),
			},
			// Generous admission so backpressure does not starve the
			// supervisor: this suite is about durability, not shedding.
			InFlightBudget: 1 << 30,
			ClientShare:    1.0,
			SpillCapacity:  1 << 30,
			PromotionTime:  300 * des.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		if partition {
			svc.PartitionFollower(2, 2*des.Second, 4*des.Second)
		}
		client := storage.Store(svc.Client(0))
		if crashOnPut > 0 {
			client = &crashAfterPuts{Store: client, fireAt: crashOnPut, trigger: svc.CrashLeader}
		}
		return storage.NewResilientStore(client, storage.RetryPolicy{
			MaxAttempts: 8, BaseDelay: des.Millisecond, MaxDelay: 100 * des.Millisecond,
			Deadline: des.Second, Seed: 11,
		})
	}
	return build, &svc
}

// TestServiceReplayEquivalence: leader crash mid-batch + follower
// partition + chaos storage brownout + node crashes, and the digests
// must still be bit-identical.
func TestServiceReplayEquivalence(t *testing.T) {
	sched, err := chaos.ParseSchedule(
		"crash at 1500ms..6s count 2 jitter 400ms\n" +
			"storage-brownout at 2s..5s rate 0.3")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds {
		build, svcp := serviceStack(25, true)
		out, err := ValidateReplayStore(chaosBaseConfig(seed), sched, build)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Injected.Completed {
			t.Fatalf("seed %d: injected run did not complete", seed)
		}
		if out.Injected.Failures == 0 {
			t.Fatalf("seed %d: chaos plan injected no failures — test proves nothing", seed)
		}
		if !out.BitExact() {
			t.Errorf("seed %d: service replay not bit-exact (digests %v, checksum %v)",
				seed, out.DigestsMatch, out.ChecksumMatch)
		}
		st := (*svcp).Stats()
		if st.LeaderCrashes == 0 || st.Failovers == 0 {
			t.Errorf("seed %d: leader crash/failover did not happen: %+v", seed, st)
		}
		if st.AckedPuts == 0 {
			t.Errorf("seed %d: no puts acked through the service", seed)
		}
		// Never silently dropped: the service acked every put the retry
		// layer reported as succeeded, and the run restored through it.
		if st.ModeChanges == 0 {
			t.Errorf("seed %d: service never changed mode under faults: %+v", seed, st)
		}
	}
}

// TestServiceReplayCrashDuringPromotion: the leader dies mid-batch and
// the would-be successor dies inside the promotion window; the second
// election must still converge and the replay must stay bit-exact.
func TestServiceReplayCrashDuringPromotion(t *testing.T) {
	sched, err := chaos.ParseSchedule("crash at 1500ms..6s count 2 jitter 400ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds {
		var svc *ckptstore.Service
		build := func(eng *des.Engine, driver *chaos.Driver) storage.Store {
			var err error
			svc, err = ckptstore.New(ckptstore.Config{
				Engine: eng,
				Replicas: []storage.Store{
					storage.NewMemStore(), storage.NewMemStore(), storage.NewMemStore(),
				},
				InFlightBudget: 1 << 30,
				ClientShare:    1.0,
				SpillCapacity:  1 << 30,
				PromotionTime:  300 * des.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			client := &crashAfterPuts{Store: svc.Client(0), fireAt: 25, trigger: func() {
				svc.CrashLeader()
				// Kill the freshest follower halfway through the
				// promotion window; the protocol re-elects among the
				// survivors. Heal it later so quorum returns.
				eng.After(150*des.Millisecond, func() { svc.Crash(2) })
				eng.After(3*des.Second, func() { svc.Heal(2) })
			}}
			return storage.NewResilientStore(client, storage.RetryPolicy{
				MaxAttempts: 8, BaseDelay: des.Millisecond, MaxDelay: 100 * des.Millisecond,
				Deadline: des.Second, Seed: 11,
			})
		}
		out, err := ValidateReplayStore(chaosBaseConfig(seed), sched, build)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Injected.Completed {
			t.Fatalf("seed %d: injected run did not complete", seed)
		}
		if !out.BitExact() {
			t.Errorf("seed %d: crash-during-promotion replay not bit-exact", seed)
		}
		st := svc.Stats()
		if st.Failovers == 0 {
			t.Errorf("seed %d: promotion never completed: %+v", seed, st)
		}
		if svc.Leader() != 1 {
			t.Errorf("seed %d: leader = %d, want 1 (the only survivor at election time)", seed, svc.Leader())
		}
	}
}

// TestServiceReplayDeterminism: the full service × chaos composition is
// itself deterministic — same seed, same schedule, same service stats.
func TestServiceReplayDeterminism(t *testing.T) {
	sched, err := chaos.ParseSchedule(
		"crash at 1500ms..6s count 2 jitter 400ms\nstorage-brownout at 2s..5s rate 0.3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*ReplayOutcome, ckptstore.Stats) {
		build, svcp := serviceStack(25, true)
		out, err := ValidateReplayStore(chaosBaseConfig(7), sched, build)
		if err != nil {
			t.Fatal(err)
		}
		return out, (*svcp).Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("service stats diverge across identical runs:\n%+v\n%+v", sa, sb)
	}
	if a.Injected.Checksum != b.Injected.Checksum || a.Injected.Elapsed != b.Injected.Elapsed {
		t.Fatalf("reports diverge: %+v vs %+v", a.Injected, b.Injected)
	}
}
