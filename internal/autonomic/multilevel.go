package autonomic

// Multi-level checkpointing (the FTI lineage): L1 keeps every rank's
// chain on its own node-local device, L2 parity-protects each committed
// line across ranks with an erasure codec placed over failure domains,
// and L3 — the existing global store — absorbs only every Nth line. The
// supervisor's recovery then walks the tiers per segment: local read,
// parity rebuild, global fetch — with per-level byte and latency
// accounting, so the ablation can show k simultaneous rank losses
// recovered without a single global-store read.

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/storage"
)

// MultiLevelOptions configures the checkpoint hierarchy of a supervised
// run. The supervisor builds a fresh redundancy.Hierarchy from these per
// Run, with Config.Store (or a fresh MemStore) as the L3 tier.
type MultiLevelOptions struct {
	// Scheme selects the L2 redundancy codec and parity-group geometry.
	Scheme redundancy.Scheme
	// Domains maps ranks to failure domains; nil defaults to singleton
	// domains (independent node failures). Must cover exactly
	// Config.Ranks ranks.
	Domains *cluster.DomainMap
	// GlobalEvery writes through to L3 every Nth line (<= 1 → every
	// line). Align with FullEvery so L3 lines are self-contained.
	GlobalEvery int
	// FullEvery is the checkpointer epoch length (0 → one full segment
	// per incarnation, deltas after).
	FullEvery int
	// LocalSink models the rank-local (L1) device; zero → NVMe.
	LocalSink storage.Model
	// CorruptParityAt lists lines whose freshly placed parity shard is
	// bit-flipped right after the encode — the injected at-rest rot that
	// must degrade the rebuild to L3, never tear a restore.
	CorruptParityAt []uint64
}

func (o MultiLevelOptions) withDefaults(ranks int) (MultiLevelOptions, error) {
	if o.LocalSink == (storage.Model{}) {
		o.LocalSink = storage.NVMeSink()
	}
	if o.GlobalEvery < 1 {
		o.GlobalEvery = 1
	}
	if o.Domains == nil {
		dm, err := cluster.NewDomainMap(ranks, 1)
		if err != nil {
			return o, err
		}
		o.Domains = dm
	}
	if o.Domains.Ranks() != ranks {
		return o, fmt.Errorf("autonomic: domain map covers %d ranks, run has %d", o.Domains.Ranks(), ranks)
	}
	return o, nil
}

// buildHierarchy constructs the run's hierarchy over the configured (or
// defaulted) L3 store.
func (s *Supervisor) buildHierarchy(global storage.Store) error {
	opts := *s.cfg.MultiLevel
	h, err := redundancy.NewHierarchy(redundancy.Config{
		Scheme:      opts.Scheme,
		Domains:     opts.Domains,
		Global:      global,
		GlobalEvery: opts.GlobalEvery,
		Net:         mpi.QsNet(),
		Direct:      s.cfg.RDMA != nil,
	})
	if err != nil {
		return err
	}
	s.ml = h
	s.mlRng = rand.New(rand.NewPCG(s.cfg.Seed, 0xEC2))
	return nil
}

// rankStore returns the checkpoint store rank i writes through: the
// hierarchy's L1(+L3 write-through) store under multi-level, the shared
// global store otherwise.
func (s *Supervisor) rankStore(i int) storage.Store {
	if s.ml != nil {
		return s.ml.RankStore(i)
	}
	return s.store
}

// protectLine runs the L2 parity encode for a freshly committed line
// during the commit pause, charges its exchange to the report, and
// resumes the computation when the exchange resolves. Encode errors
// never hurt the run — the line simply carries no L2 protection.
func (s *Supervisor) protectLine(t *team, seq uint64, cont func()) {
	rep, err := s.ml.EncodeLine(seq)
	if err != nil {
		s.report.ParityEncodeFailures++
		cont()
		return
	}
	s.report.L2ExchangeTime += rep.Time
	s.report.ParityVolumeMB += float64(rep.ParityBytes) / 1e6
	for _, at := range s.cfg.MultiLevel.CorruptParityAt {
		if at == seq {
			if _, ok := s.ml.CorruptParity(seq, s.mlRng); ok {
				s.report.InjectedParityCorruptions++
			}
		}
	}
	s.eng.After(rep.Time, func() {
		if s.cur != t || s.detecting {
			return
		}
		cont()
	})
}

// domainCrash is the chaos DSL's correlated failure: every rank of the
// named failure domain dies at once, local stores and all, mid-commit.
func (s *Supervisor) domainCrash(name string) {
	if s.report.Completed || s.failed != nil || s.ml == nil {
		return
	}
	dm := s.cfg.MultiLevel.Domains
	d, ok := dm.Index(name)
	if !ok {
		s.fail(fmt.Errorf("autonomic: domain-crash names unknown domain %q (have %d domains)", name, dm.Domains()))
		return
	}
	s.pendingVictims = append([]int(nil), dm.Members(d)...)
	s.report.DomainCrashes++
	s.onFailure()
}

// takeVictims resolves which ranks this failure event kills and wipes
// their L1 stores — the node-local device dies with the node. Under a
// domain crash the victims were preset; otherwise one seeded rank dies.
// Legacy (non-multi-level) runs return nil without consuming entropy,
// keeping their event streams bit-identical.
func (s *Supervisor) takeVictims() []int {
	if s.ml == nil {
		return nil
	}
	victims := s.pendingVictims
	s.pendingVictims = nil
	if len(victims) == 0 {
		victims = []int{s.rng.IntN(s.cfg.Ranks)}
	}
	for _, v := range victims {
		if err := s.ml.WipeRank(v); err != nil {
			s.fail(fmt.Errorf("autonomic: wiping rank %d local store: %w", v, err))
			return nil
		}
	}
	return victims
}

// selectAndRestoreTiered is selectAndRestore over the hierarchy's
// recovery view: the same newest-verifiable-line walk, but every segment
// read tries L1, then an L2 parity rebuild, then L3 — with the view's
// per-level accounting folded into the report and the recovery's read
// time composed from the tier models each level actually hit.
func (s *Supervisor) selectAndRestoreTiered() (spaces []*mem.AddressSpace, line uint64, ok bool, readTime des.Time) {
	view := s.ml.NewView()
	defer func() {
		st := view.Stats()
		for i := 0; i < redundancy.LevelCount; i++ {
			s.report.LevelReadBytes[i] += st.LevelBytes[i]
		}
		s.report.ParityRebuilds += st.Rebuilds
		s.report.ParityRebuildFailures += st.RebuildFailures
		s.report.CorruptParityShards += st.CorruptShards
		s.report.ParityRepairs += st.RepairedBack
		s.report.ParityRepairFailures += st.RepairWriteFailures
	}()
	for attempt := 0; attempt <= len(s.lineIter)+1; attempt++ {
		var err error
		line, ok, err = ckpt.LatestVerifiableSeq(view, s.cfg.Ranks)
		if err != nil {
			s.fail(err)
			return nil, 0, false, 0
		}
		if !ok {
			return nil, 0, false, 0
		}
		spaces, err = ckpt.RestoreAll(view, s.cfg.Ranks, line)
		if err != nil {
			continue
		}
		st := view.Stats()
		var lr [redundancy.LevelCount]des.Time
		if n := st.LevelBytes[redundancy.LevelLocal]; n > 0 {
			lr[redundancy.LevelLocal] = s.cfg.MultiLevel.LocalSink.WriteTime(n)
		}
		if n := st.LevelBytes[redundancy.LevelParity]; n > 0 {
			lr[redundancy.LevelParity] = mpi.QsNet().TransferTime(n)
		}
		if n := st.LevelBytes[redundancy.LevelGlobal]; n > 0 {
			lr[redundancy.LevelGlobal] = s.cfg.Sink.WriteTime(n)
		}
		for i, t := range lr {
			s.report.LevelReadTime[i] += t
			readTime += t
		}
		return spaces, line, true, readTime
	}
	return nil, 0, false, 0
}
