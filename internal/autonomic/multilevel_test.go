package autonomic

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/redundancy"
	"repro/internal/storage"
)

// mlBaseConfig mirrors the chaos-equivalence grid with the multi-level
// hierarchy switched on. GlobalEvery is huge by default so only line 0
// ever reaches L3 — any recovery past the first line must come from L1
// chains and L2 rebuilds, which is exactly the property the zero-L3
// assertions pin.
func mlBaseConfig(seed uint64, ml MultiLevelOptions) Config {
	cfg := Config{
		Ranks: 4, Nx: 32, RowsPerRank: 8, Boundary: 9,
		Iterations: 40, CkptEvery: 5,
		ComputeTime:     200 * des.Millisecond,
		RestartOverhead: 500 * des.Millisecond,
		Sink:            storage.Model{Name: "nfs-class", Latency: 5 * des.Millisecond, Bandwidth: 2e4},
		Seed:            seed,
		MultiLevel:      &ml,
	}
	if cfg.MultiLevel.GlobalEvery == 0 {
		cfg.MultiLevel.GlobalEvery = 1 << 20
	}
	return cfg
}

func mlDomains(t *testing.T, ranks, size int) *cluster.DomainMap {
	t.Helper()
	dm, err := cluster.NewDomainMap(ranks, size)
	if err != nil {
		t.Fatal(err)
	}
	return dm
}

func checkBitExact(t *testing.T, out *ReplayOutcome, seed uint64) {
	t.Helper()
	rep := out.Injected
	if !rep.Completed {
		t.Fatalf("seed %d: injected run did not complete", seed)
	}
	if !out.ChecksumMatch {
		t.Errorf("seed %d: checksum %v != reference %v", seed, rep.Checksum, out.Reference.Checksum)
	}
	if !out.DigestsMatch {
		t.Errorf("seed %d: final address-space digests diverge: %x vs %x",
			seed, rep.SpaceDigests, out.Reference.SpaceDigests)
	}
}

// A healthy multi-level run computes the same answer as a legacy run of
// the same seed: the hierarchy reshapes where checkpoints live, never
// what the computation produces.
func TestMultiLevelHealthyRunMatchesLegacy(t *testing.T) {
	legacy := mlBaseConfig(7, MultiLevelOptions{})
	legacy.MultiLevel = nil
	lr, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []redundancy.Scheme{
		{Kind: redundancy.None},
		{Kind: redundancy.XOR, K: 2, M: 1},
		{Kind: redundancy.RS, K: 2, M: 2},
	} {
		cfg := mlBaseConfig(7, MultiLevelOptions{Scheme: scheme})
		mr, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme.Kind, err)
		}
		if !mr.Completed || mr.Checksum != lr.Checksum {
			t.Fatalf("%v: checksum %v, legacy %v", scheme.Kind, mr.Checksum, lr.Checksum)
		}
		for i, d := range lr.SpaceDigests {
			if mr.SpaceDigests[i] != d {
				t.Fatalf("%v: rank %d digest diverged", scheme.Kind, i)
			}
		}
		if scheme.Kind != redundancy.None && mr.ParityVolumeMB == 0 {
			t.Fatalf("%v: no parity exchanged", scheme.Kind)
		}
		if scheme.Kind != redundancy.None && mr.L2ExchangeTime == 0 {
			t.Fatalf("%v: parity exchange cost not accounted", scheme.Kind)
		}
	}
}

// Crashes under RS 2+2 protection recover through L2 rebuilds without a
// single global-store byte: GlobalEvery is effectively infinite, so L3
// holds only line 0, yet every seed × crash schedule replays bit-exact.
// m=2 matters — two crashes can wipe two ranks of the same parity group
// before read-repair heals the first, which XOR's m=1 cannot absorb.
func TestMultiLevelCrashRecoversFromParityZeroL3(t *testing.T) {
	sched, err := chaos.ParseSchedule("crash at 1500ms..6s count 2 jitter 400ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{3, 5, 9} {
		cfg := mlBaseConfig(seed, MultiLevelOptions{
			Scheme:  redundancy.Scheme{Kind: redundancy.RS, K: 2, M: 2},
			Domains: mlDomains(t, 4, 1),
		})
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkBitExact(t, out, seed)
		rep := out.Injected
		if rep.Failures == 0 {
			t.Fatalf("seed %d: no failures injected", seed)
		}
		if rep.ParityRebuilds == 0 {
			t.Fatalf("seed %d: recovery never rebuilt from parity: %+v", seed, rep)
		}
		if rep.LevelReadBytes[redundancy.LevelGlobal] != 0 {
			t.Fatalf("seed %d: recovery touched the global store: %v bytes",
				seed, rep.LevelReadBytes[redundancy.LevelGlobal])
		}
		if rep.LevelReadBytes[redundancy.LevelParity] == 0 ||
			rep.LevelReadTime[redundancy.LevelParity] == 0 {
			t.Fatalf("seed %d: L2 accounting empty: %+v", seed, rep.LevelReadBytes)
		}
	}
}

// The chaos DSL's domain-crash fault: both ranks of failure domain d1
// die at the same instant — their L1 chains gone, correlated — and the
// RS-coded hierarchy still recovers every rank without touching L3,
// because placement put at most one shard of each parity group in the
// crashed domain. One fault, one failure event, two dead ranks.
func TestMultiLevelDomainCrashReplaysBitExact(t *testing.T) {
	sched, err := chaos.ParseSchedule("domain-crash at 2500ms..30s domain d1")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{3, 5, 9} {
		cfg := mlBaseConfig(seed, MultiLevelOptions{
			Scheme:  redundancy.Scheme{Kind: redundancy.RS, K: 2, M: 2},
			Domains: mlDomains(t, 8, 2),
		})
		cfg.Ranks = 8
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkBitExact(t, out, seed)
		rep := out.Injected
		if rep.DomainCrashes != 1 || out.Stats.DomainCrashes != 1 {
			t.Fatalf("seed %d: domain crashes report %d / driver %d, want 1",
				seed, rep.DomainCrashes, out.Stats.DomainCrashes)
		}
		if rep.Failures != 1 || len(rep.FailureLog) != 1 {
			t.Fatalf("seed %d: one correlated fault must be one failure event, got %d", seed, rep.Failures)
		}
		if ev := rep.FailureLog[0]; ev.Downtime <= 0 {
			t.Fatalf("seed %d: domain crash carries no downtime: %+v", seed, ev)
		}
		if rep.ParityRebuilds == 0 {
			t.Fatalf("seed %d: correlated loss never rebuilt from parity", seed)
		}
		if rep.LevelReadBytes[redundancy.LevelGlobal] != 0 {
			t.Fatalf("seed %d: domain crash fell back to the global store: %v bytes",
				seed, rep.LevelReadBytes[redundancy.LevelGlobal])
		}
	}
}

// Same correlated loss, but with the heartbeat detector on: every
// victim's tickers go silent at once, a survivor declares the death,
// and the measured detection latency lands in the report.
func TestMultiLevelDomainCrashDetected(t *testing.T) {
	sched, err := chaos.ParseSchedule("domain-crash at 1s..30s domain d0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mlBaseConfig(3, MultiLevelOptions{
		Scheme:  redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1},
		Domains: mlDomains(t, 8, 2),
	})
	cfg.Ranks = 8
	cfg.HeartbeatPeriod = 50 * des.Millisecond
	out, err := ValidateReplay(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	checkBitExact(t, out, 3)
	rep := out.Injected
	if rep.DomainCrashes != 1 || rep.Failures != 1 {
		t.Fatalf("domain crashes %d failures %d, want 1/1", rep.DomainCrashes, rep.Failures)
	}
	if len(rep.DetectionLatencies) == 0 {
		t.Fatalf("no detection latency measured: %+v", rep)
	}
}

// A parity shard corrupted at rest degrades that line's rebuild to L3 —
// the frame CRC rejects the shard, the global copy serves the read, and
// the replay still converges bit-exact. GlobalEvery is 1 here so the
// last tier actually holds every line. The corruptor flips a bit in
// group 0's shard, so the fault is aimed at domain d0 — rank 0, a
// group-0 member under round-robin placement — to guarantee recovery
// actually consults the rotten shard.
func TestMultiLevelCorruptParityDegradesToL3(t *testing.T) {
	sched, err := chaos.ParseSchedule("domain-crash at 2500ms..30s domain d0")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{3, 5, 9} {
		cfg := mlBaseConfig(seed, MultiLevelOptions{
			Scheme:          redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1},
			Domains:         mlDomains(t, 4, 1),
			GlobalEvery:     1,
			CorruptParityAt: []uint64{0, 1, 2, 3, 4, 5, 6, 7},
		})
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkBitExact(t, out, seed)
		rep := out.Injected
		if rep.InjectedParityCorruptions == 0 {
			t.Fatalf("seed %d: no parity corrupted — test proves nothing", seed)
		}
		if rep.CorruptParityShards == 0 {
			t.Fatalf("seed %d: corrupt shard never detected: %+v", seed, rep)
		}
		if rep.LevelReadBytes[redundancy.LevelGlobal] == 0 {
			t.Fatalf("seed %d: corrupt parity did not degrade to L3", seed)
		}
	}
}

// Without L2 the hierarchy still recovers — everything comes from the
// surviving L1 chains and the global store. The scheme=None baseline of
// the A21 ablation.
func TestMultiLevelSchemeNoneFallsBackToL3(t *testing.T) {
	sched, err := chaos.ParseSchedule("crash at 2s..8s count 1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mlBaseConfig(5, MultiLevelOptions{
		Scheme:      redundancy.Scheme{Kind: redundancy.None},
		GlobalEvery: 1,
	})
	out, err := ValidateReplay(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	checkBitExact(t, out, 5)
	rep := out.Injected
	if rep.ParityRebuilds != 0 || rep.ParityVolumeMB != 0 {
		t.Fatalf("scheme None exchanged parity: %+v", rep)
	}
	if rep.Failures == 0 || rep.LevelReadBytes[redundancy.LevelGlobal] == 0 {
		t.Fatalf("victim's chain must come from L3: %+v", rep.LevelReadBytes)
	}
}

func TestMultiLevelDeterminism(t *testing.T) {
	sched, err := chaos.ParseSchedule("domain-crash at 1s..30s domain d1\ncrash at 4s..9s count 1")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		cfg := mlBaseConfig(9, MultiLevelOptions{
			Scheme:  redundancy.Scheme{Kind: redundancy.RS, K: 2, M: 2},
			Domains: mlDomains(t, 8, 2),
		})
		cfg.Ranks = 8
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatal(err)
		}
		return out.Injected
	}
	a, b := run(), run()
	if a.Checksum != b.Checksum || a.Elapsed != b.Elapsed ||
		a.ParityRebuilds != b.ParityRebuilds ||
		a.LevelReadBytes != b.LevelReadBytes ||
		a.LevelReadTime != b.LevelReadTime {
		t.Fatalf("multi-level run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestMultiLevelConfigErrors(t *testing.T) {
	base := mlBaseConfig(1, MultiLevelOptions{Scheme: redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1}})

	cfg := base
	cfg.TwoPhaseCommit = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("MultiLevel+TwoPhaseCommit accepted")
	}

	cfg = base
	cfg.MultiLevel = &MultiLevelOptions{
		Scheme:  redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1},
		Domains: mlDomains(t, 8, 1), // run has 4 ranks
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched domain map accepted")
	}

	cfg = base
	// 4 ranks in 2 domains cannot place k+m=3 shards domain-disjoint.
	cfg.MultiLevel = &MultiLevelOptions{
		Scheme:  redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1},
		Domains: mlDomains(t, 4, 2),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("infeasible placement accepted")
	}

	cfg = base
	cfg.Chaos = nil
	cfg.MultiLevel.Scheme = redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 0}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

// An unknown domain name in the chaos plan is a hard configuration
// error, not a silent no-op.
func TestMultiLevelUnknownDomainFails(t *testing.T) {
	sched, err := chaos.ParseSchedule("domain-crash at 1s..30s domain rack9")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mlBaseConfig(3, MultiLevelOptions{
		Scheme:  redundancy.Scheme{Kind: redundancy.XOR, K: 2, M: 1},
		Domains: mlDomains(t, 4, 1),
	})
	if _, err := ValidateReplay(cfg, sched); err == nil {
		t.Fatal("unknown domain accepted")
	}
}
