package autonomic

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/des"
	"repro/internal/kernels"
	"repro/internal/mem"
)

func stencilSolo() SoloFactory {
	return SoloFactory{
		ComputeTime: 50 * des.Millisecond,
		Build: func(sp *mem.AddressSpace) (SoloKernel, error) {
			return kernels.NewStencil2D(sp, 16, 16, 1.0)
		},
		Rebind: func(sp *mem.AddressSpace, iter int) (SoloKernel, error) {
			return kernels.AttachStencil2D(sp, 16, 16, iter)
		},
	}
}

func fftSolo(n int) SoloFactory {
	return SoloFactory{
		ComputeTime: 50 * des.Millisecond,
		Build: func(sp *mem.AddressSpace) (SoloKernel, error) {
			f, err := kernels.NewFFT(sp, n)
			if err != nil {
				return nil, err
			}
			sig := make([]complex128, n)
			for i := range sig {
				sig[i] = complex(float64(i%17)-8, float64(i%5))
			}
			if err := f.Load(sig); err != nil {
				return nil, err
			}
			return f, nil
		},
		Rebind: func(sp *mem.AddressSpace, iter int) (SoloKernel, error) {
			return kernels.AttachFFT(sp, n, iter)
		},
	}
}

// TestSoloRunsUnderSupervision adapts a single-space kernel to the
// supervisor: a failure-free run completes all iterations and gathers
// a solution.
func TestSoloRunsUnderSupervision(t *testing.T) {
	rep, err := Run(Config{
		Workload:    stencilSolo(),
		Ranks:       1,
		Iterations:  6,
		CkptEvery:   2,
		ComputeTime: 50 * des.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Iterations != 6 {
		t.Fatalf("run: completed=%v iters=%d", rep.Completed, rep.Iterations)
	}
	if rep.Checksum == 0 {
		t.Error("no solution checksum")
	}
}

// TestSoloSpecReplayBitExact is the acceptance check for spec-driven
// exclusion on the crash path: a solo FFT run with the committed spec
// applied — twiddle table excluded from every checkpoint, recomputed
// by hook after restore — survives a mid-run crash and finishes in the
// bit-identical state of the failure-free reference.
func TestSoloSpecReplayBitExact(t *testing.T) {
	spec, err := kernels.Spec()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:    fftSolo(1024), // 10 passes
		Ranks:       1,
		Iterations:  10,
		CkptEvery:   3,
		ComputeTime: 50 * des.Millisecond,
		Seed:        11,
		Spec:        spec,
	}
	sched, err := chaos.ParseSchedule("crash at 260ms..270ms")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ValidateReplay(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if out.Injected.Failures == 0 {
		t.Fatal("chaos injected no failure; the test exercised nothing")
	}
	if !out.BitExact() {
		t.Errorf("spec-excluded replay diverged: digests=%v checksum=%v",
			out.DigestsMatch, out.ChecksumMatch)
	}
}

// TestSoloSpecMatchesWholeProtection pins that applying the spec does
// not change the computed solution of an unfailing run — exclusion
// must be observationally invisible outside checkpoint volume.
func TestSoloSpecMatchesWholeProtection(t *testing.T) {
	spec, err := kernels.Spec()
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Workload:    stencilSolo(),
		Ranks:       1,
		Iterations:  6,
		CkptEvery:   2,
		ComputeTime: 50 * des.Millisecond,
		Seed:        3,
	}
	whole, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withSpec := base
	withSpec.Spec = spec
	speced, err := Run(withSpec)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Checksum != speced.Checksum {
		t.Errorf("checksum changed under spec: %x vs %x", whole.Checksum, speced.Checksum)
	}
	if speced.CheckpointVolumeMB >= whole.CheckpointVolumeMB {
		t.Errorf("spec saved nothing: %.3f MB vs %.3f MB", speced.CheckpointVolumeMB, whole.CheckpointVolumeMB)
	}
}
