// RDMA direct-write checkpointing: registered memory regions, the silent
// IWS under-count they cause, and the crash-safe checkpoint-time drain
// protocol that closes it.
//
// The paper's §4.2 observation is that an OS-bypass NIC writing into
// application memory defeats mprotect-based write tracking: DMA stores
// raise no faults, so the incremental working set silently under-counts
// and incremental checkpoints omit NIC-written pages. The supervisor can
// run its world in that regime (RDMAOptions.Mode = RDMANaive) and
// *measure* the resulting corruption risk, or run the drain protocol
// (RDMADrain, the default): at every checkpoint boundary a six-phase
// state machine quiesces traffic, drains in-flight one-sided writes,
// deregisters the NIC regions — replaying every suppressed write fault
// so the tracker sees the true dirty set — cuts the line, re-registers,
// and reconnects. A rank whose in-flight traffic refuses to drain within
// the timeout is degraded to bounce-buffer delivery instead of
// checkpointing a torn region.
package autonomic

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/kernels"
	"repro/internal/mpi"
)

// RDMAMode selects how the supervisor checkpoints a registered-memory
// world.
type RDMAMode uint8

const (
	// RDMADrain (the default) runs the drain/re-register protocol at
	// every checkpoint boundary, so incremental lines capture the true
	// dirty set.
	RDMADrain RDMAMode = iota
	// RDMANaive checkpoints without draining: DMA-written pages stay
	// silent and incremental lines under-count — the failure mode the
	// report's SilentDirtyBytes quantifies and restores corrupt.
	RDMANaive
)

// String names the mode.
func (m RDMAMode) String() string {
	switch m {
	case RDMADrain:
		return "drain"
	case RDMANaive:
		return "naive"
	default:
		return fmt.Sprintf("autonomic.RDMAMode(%d)", m)
	}
}

// RDMAOptions puts the supervised world in Direct (OS-bypass) delivery
// mode with registered memory regions.
type RDMAOptions struct {
	// Mode picks naive Direct checkpointing or the drain protocol.
	Mode RDMAMode
	// DrainTimeout bounds the DrainInFlight phase; ranks still awaiting
	// traffic when it expires are degraded to bounce-buffer delivery
	// (0 → 10ms).
	DrainTimeout des.Time
	// NIC parameterises registration, quiesce, poll and reconnect costs
	// (zero fields take mpi defaults).
	NIC mpi.RDMAConfig
}

func (o RDMAOptions) withDefaults() RDMAOptions {
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * des.Millisecond
	}
	return o
}

// PutFactory supervises the one-sided-Put ring (kernels.DistPut): the
// workload whose windows are only ever NIC-written, making the silent
// under-count fatal to naive Direct restores.
type PutFactory struct {
	// Pages is the per-buffer page count (0 → 1).
	Pages int
	// PutEvery injects the ring's one-sided writes every N iterations
	// (0 → 1).
	PutEvery int
	// Seed parameterises the initial windows.
	Seed float64
	// ComputeTime is the virtual cost of one sweep (0 → 100ms).
	ComputeTime des.Time
}

func (f PutFactory) withDefaults() PutFactory {
	if f.Pages == 0 {
		f.Pages = 1
	}
	if f.PutEvery == 0 {
		f.PutEvery = 1
	}
	if f.ComputeTime == 0 {
		f.ComputeTime = 100 * des.Millisecond
	}
	return f
}

// New implements Factory.
func (f PutFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	f = f.withDefaults()
	return kernels.NewDistPut(eng, world, f.Pages, f.PutEvery, f.Seed, f.ComputeTime)
}

// Attach implements Factory.
func (f PutFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	f = f.withDefaults()
	return kernels.AttachDistPut(eng, world, f.Pages, f.PutEvery, f.Seed, f.ComputeTime, iter)
}

// registerRDMA pins every rank's checkpointable regions with the NIC on
// a freshly built (or respawned) team and records the registration
// latency the team must pay before it starts iterating. Ranks register
// in parallel; the team waits for the slowest.
func registerRDMA(t *team) {
	var maxPages uint64
	for i := 0; i < t.world.Size(); i++ {
		_, pages := t.world.Rank(i).RegisterAllData()
		if pages > maxPages {
			maxPages = pages
		}
	}
	t.regCost = t.world.RegisterCost(maxPages)
}

// harvestRDMA folds a dying (or finishing) team's NIC counters into the
// report. Idempotent per team: a nested failure must not double-count.
func (s *Supervisor) harvestRDMA(t *team) {
	if s.cfg.RDMA == nil || t == nil || t.harvested {
		return
	}
	t.harvested = true
	for i := 0; i < t.world.Size(); i++ {
		st := t.world.Rank(i).Stats()
		s.report.DirectBypassBytes += st.DirectBypassBytes
		s.report.SilentDirtyBytes += st.SilentDirtyBytes
	}
	for _, c := range t.cps {
		s.report.CheckpointSilentBytes += c.Stats().SilentDirtyBytes
	}
}

// drainCheckpoint runs the checkpoint-time drain protocol for team t at
// iteration iter, then resumes the computation via next. The six phases
// run strictly in order on the des clock, each accounted separately:
//
//	Quiesce → DrainInFlight → Deregister → Checkpoint → Reregister → Reconnect
//
// Every phase entry is a chaos hook (crash-during-drain) and every
// continuation is guarded, so a node crash mid-protocol abandons the
// machine cleanly and the recovery path owns the future. A DrainInFlight
// timeout degrades the stranded ranks to bounce-buffer delivery — the
// checkpoint proceeds over a consistent (reconciled) image rather than
// a torn region.
func (s *Supervisor) drainCheckpoint(t *team, iter int, next func()) {
	nic := t.world.RDMAConfig()
	opts := s.cfg.RDMA
	s.report.DrainRounds++
	phaseStart := s.eng.Now()
	account := func(p mpi.DrainPhase) {
		now := s.eng.Now()
		s.report.DrainPhaseTime[p] += now - phaseStart
		phaseStart = now
	}
	alive := func() bool {
		return s.cur == t && !s.detecting && !s.report.Completed && s.failed == nil
	}
	// enter fires the chaos plan's crash-during-drain faults: entering a
	// targeted phase kills a node on the spot, the adversarial instant
	// for this protocol.
	enter := func(p mpi.DrainPhase) bool {
		if s.cfg.Chaos != nil && s.cfg.Chaos.DrainCrashHit(p, s.eng.Now()) {
			s.onFailure()
			return false
		}
		return true
	}

	if !enter(mpi.PhaseQuiesce) {
		return
	}
	s.eng.After(nic.QuiesceDelay, func() {
		if !alive() {
			return
		}
		account(mpi.PhaseQuiesce)
		if !enter(mpi.PhaseDrainInFlight) {
			return
		}
		t.world.AwaitDrain(opts.DrainTimeout, func(stranded []int) {
			if !alive() {
				return
			}
			for _, i := range stranded {
				t.world.Rank(i).DegradeToBounce()
				s.report.DrainTimeouts++
			}
			account(mpi.PhaseDrainInFlight)
			if !enter(mpi.PhaseDeregister) {
				return
			}
			// Deregistration replays every suppressed write fault, so the
			// checkpointers' dirty sets are ground truth before the line
			// is cut. Ranks deregister in parallel; wait for the slowest.
			var maxPages uint64
			for i := 0; i < t.world.Size(); i++ {
				pages, _ := t.world.Rank(i).DeregisterAll()
				if pages > maxPages {
					maxPages = pages
				}
			}
			s.eng.After(t.world.RegisterCost(maxPages), func() {
				if !alive() {
					return
				}
				account(mpi.PhaseDeregister)
				if !enter(mpi.PhaseCheckpoint) {
					return
				}
				s.commitLine(t, iter, func() {
					if !alive() {
						return
					}
					account(mpi.PhaseCheckpoint)
					if !enter(mpi.PhaseReregister) {
						return
					}
					// Degraded ranks stay on the bounce path: their NIC
					// never re-pins, so no new silent writes can land.
					var rePages uint64
					registered := false
					for i := 0; i < t.world.Size(); i++ {
						r := t.world.Rank(i)
						if r.Degraded() {
							continue
						}
						_, pages := r.RegisterAllData()
						registered = true
						if pages > rePages {
							rePages = pages
						}
					}
					reCost := des.Time(0)
					if registered {
						reCost = t.world.RegisterCost(rePages)
					}
					s.eng.After(reCost, func() {
						if !alive() {
							return
						}
						account(mpi.PhaseReregister)
						if !enter(mpi.PhaseReconnect) {
							return
						}
						s.eng.After(nic.ReconnectLatency, func() {
							if !alive() {
								return
							}
							account(mpi.PhaseReconnect)
							next()
						})
					})
				})
			})
		})
	})
}
