package autonomic

import (
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/storage"
)

// hardenedStore composes the full storage hardening stack the issue
// calls for: two mirrored replicas, each retry-wrapped and
// integrity-enveloped over a deterministic fault injector. Replica A is
// clean but dies permanently after outageOps operations; replica B
// stays up but tears writes, flips bits at rest and drops requests.
// Once A is gone, B is the sole copy, so its silent damage turns into
// unverifiable recovery lines — exactly the degraded-recovery path.
func hardenedStore(t *testing.T, outageOps int) (storage.Store, *storage.FaultyStore, *storage.FaultyStore) {
	t.Helper()
	fa := storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{
		Seed:           11,
		OutageAfterOps: outageOps,
	})
	fb := storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{
		Seed:          12,
		TransientRate: 0.10,
		TornWriteRate: 0.10,
		CorruptRate:   0.10,
	})
	mkReplica := func(f *storage.FaultyStore) storage.Store {
		return storage.NewResilientStore(storage.NewIntegrityStore(f), storage.DefaultRetryPolicy())
	}
	m, err := storage.NewMirrorStore(mkReplica(fa), mkReplica(fb))
	if err != nil {
		t.Fatal(err)
	}
	return m, fa, fb
}

// TestHardenedStorageRecovery is the issue's acceptance test: node
// failures land on a storage tier that simultaneously corrupts data at
// rest, drops requests transiently and loses a whole replica to a
// permanent outage — and the supervised run still finishes with the
// bit-exact reference answer, by falling back to earlier *verified*
// recovery lines when the newest consistent line cannot be proven.
func TestHardenedStorageRecovery(t *testing.T) {
	want := referenceChecksum(t, baseConfig())

	run := func() (*Report, *storage.FaultyStore, *storage.FaultyStore) {
		cfg := baseConfig()
		cfg.MTBF = 3 * des.Second
		cfg.RestartOverhead = 500 * des.Millisecond
		// Fresh store per run: the wrappers are mutable (fault streams,
		// outage state), so determinism is per-store-lifetime.
		store, fa, fb := hardenedStore(t, 60)
		cfg.Store = store
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("supervised run failed: %v", err)
		}
		return rep, fa, fb
	}

	rep, fa, fb := run()
	if !rep.Completed {
		t.Fatalf("run did not complete: %+v", rep)
	}
	if rep.Failures == 0 {
		t.Fatal("no node failures injected — test proves nothing")
	}
	if !fa.Down() {
		t.Fatal("replica A never hit its permanent outage")
	}
	if st := fb.Stats(); st.TornWrites == 0 || st.BitFlips == 0 || st.Transients == 0 {
		t.Fatalf("replica B injected too little: %+v", st)
	}
	// The headline: the storage tier lied, tore, rotted and died, and
	// the answer is still bit-exact.
	if rep.Checksum != want {
		t.Fatalf("checksum %v != reference %v (failures=%d degraded=%d)",
			rep.Checksum, want, rep.Failures, rep.DegradedRecoveries)
	}
	// At least one recovery had to skip the newest consistent line and
	// fall back to an earlier verified one — and the report says so.
	if rep.DegradedRecoveries == 0 {
		t.Fatalf("no degraded recoveries recorded: %+v", rep)
	}
	if rep.DegradedRecoveries > rep.Recoveries {
		t.Fatalf("degraded (%d) exceeds total recoveries (%d)",
			rep.DegradedRecoveries, rep.Recoveries)
	}

	// Deterministic: an identical fresh stack replays the identical run,
	// fault for fault.
	rep2, _, _ := run()
	if fmt.Sprintf("%+v", rep) != fmt.Sprintf("%+v", rep2) {
		t.Fatalf("non-deterministic under faults:\n  %+v\nvs\n  %+v", rep, rep2)
	}
}

// TestCheckpointFailuresSurvived: with no mirror and a single flaky
// sink, some coordinated checkpoints fail outright. The supervisor must
// absorb them — count the failure, re-base the chains — and still
// finish with the right answer.
func TestCheckpointFailuresSurvived(t *testing.T) {
	want := referenceChecksum(t, baseConfig())

	cfg := baseConfig()
	// No retry layer: every injected transient reaches the coordinator.
	cfg.Store = storage.NewIntegrityStore(storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{
		Seed:          7,
		TransientRate: 0.15,
	}))
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("run did not complete: %+v", rep)
	}
	if rep.CheckpointFailures == 0 {
		t.Fatal("no checkpoint failures injected — test proves nothing")
	}
	if rep.Checksum != want {
		t.Fatalf("checksum %v != reference %v after %d checkpoint failures",
			rep.Checksum, want, rep.CheckpointFailures)
	}
}
