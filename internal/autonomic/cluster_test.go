package autonomic

import (
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// clusterConfig is a run long enough (and with commit windows wide
// enough) that seeded failures land both between and inside checkpoint
// rounds.
func clusterConfig() Config {
	return Config{
		Ranks:       4,
		Nx:          32,
		RowsPerRank: 8,
		Boundary:    7,
		Iterations:  40,
		CkptEvery:   5,
		ComputeTime: 200 * des.Millisecond,
		// ~0.5 MB of pages per line at SCSI bandwidth keeps the commit
		// window wide relative to MTBF.
		MTBF:            6 * des.Second,
		RestartOverhead: 500 * des.Millisecond,
		Seed:            11,
	}
}

// TestTwoPhaseMidCheckpointFailure drives the supervisor until a seeded
// failure lands inside a two-phase commit window, then checks the core
// guarantee: the aborted line is never trusted, recovery falls back to a
// committed line, and the final answer is still bit-exact.
func TestTwoPhaseMidCheckpointFailure(t *testing.T) {
	cfg := clusterConfig()
	// A 20 KB/s sink stretches each commit window to ~0.2s, so seeded
	// failures actually land inside prepare/commit rounds.
	cfg.Sink = storage.Model{Name: "slow", Latency: 5 * des.Millisecond, Bandwidth: 2e4}
	want := referenceChecksum(t, cfg)
	cfg.TwoPhaseCommit = true

	// Scan seeds for one whose failure schedule hits a commit window;
	// every run must stay correct whether or not an abort occurred.
	sawAbort := false
	for seed := uint64(1); seed <= 20; seed++ {
		cfg.Seed = seed
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Completed || rep.Checksum != want {
			t.Fatalf("seed %d: completed=%v checksum=%v want %v",
				seed, rep.Completed, rep.Checksum, want)
		}
		if rep.Recoveries != rep.Failures {
			t.Fatalf("seed %d: %d recoveries for %d failures", seed, rep.Recoveries, rep.Failures)
		}
		if rep.AbortedCommits > 0 {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Fatal("no seed produced a mid-checkpoint failure; widen the window")
	}
}

// TestAbortedCommitsVsCheckpointFailures pins the accounting split: a
// prepare-phase storage refusal is a CheckpointFailure, a post-prepare
// rollback is an AbortedCommit, and the two never bleed together.
func TestAbortedCommitsVsCheckpointFailures(t *testing.T) {
	// Outage store, no failures: every round after the outage is refused
	// in prepare. AbortedCommits must stay zero.
	cfg := clusterConfig()
	cfg.MTBF = 0
	cfg.TwoPhaseCommit = true
	// 8 rounds of 4 segment Puts + 1 marker Put = 40 ops total; a
	// boundary of 18 lands the outage mid-prepare of round 4.
	cfg.Store = storage.NewFaultyStore(storage.NewMemStore(), storage.FaultConfig{
		Seed: 5, OutageAfterOps: 18,
	})
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("outage run did not complete")
	}
	if rep.CheckpointFailures == 0 {
		t.Fatal("outage produced no prepare refusals")
	}
	if rep.AbortedCommits != 0 {
		t.Fatalf("prepare refusals counted as aborts: %d", rep.AbortedCommits)
	}

	// Healthy store, failures on: rollbacks inside commit windows are
	// AbortedCommits, and none may masquerade as storage refusals.
	cfg = clusterConfig()
	cfg.Sink = storage.Model{Name: "slow", Latency: 5 * des.Millisecond, Bandwidth: 2e4}
	cfg.TwoPhaseCommit = true
	total := 0
	for seed := uint64(1); seed <= 20; seed++ {
		cfg.Seed = seed
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CheckpointFailures != 0 {
			t.Fatalf("seed %d: healthy store refused %d prepares", seed, rep.CheckpointFailures)
		}
		total += rep.AbortedCommits
	}
	if total == 0 {
		t.Fatal("no aborted commits across 20 seeds")
	}
}

// TestDetectionLatencyMeasured runs with the heartbeat detector and
// checks that each failure's detection latency is a *measured* quantity:
// present per failure, bounded by the protocol (silence must exceed the
// timeout; the check tick quantises on the period), and reflected in the
// elapsed time as real downtime.
func TestDetectionLatencyMeasured(t *testing.T) {
	cfg := clusterConfig()
	want := referenceChecksum(t, cfg)
	period := 50 * des.Millisecond
	cfg.HeartbeatPeriod = period
	timeout := 4 * period

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Checksum != want {
		t.Fatalf("completed=%v checksum=%v want %v", rep.Completed, rep.Checksum, want)
	}
	if rep.Failures == 0 {
		t.Fatal("no failures injected")
	}
	if len(rep.DetectionLatencies) != rep.Failures {
		t.Fatalf("%d latencies for %d failures", len(rep.DetectionLatencies), rep.Failures)
	}
	for i, l := range rep.DetectionLatencies {
		if l < timeout-period || l > timeout+2*period {
			t.Fatalf("latency[%d] = %v outside [%v, %v]", i, l, timeout-period, timeout+2*period)
		}
	}
	if m := rep.MeanDetectionLatency(); m < timeout-period {
		t.Fatalf("mean latency %v below %v", m, timeout-period)
	}

	// The same run without the detector recovers instantly on failure;
	// with it, each failure's downtime grows by its detection latency.
	cfg2 := cfg
	cfg2.HeartbeatPeriod = 0
	rep2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failures == rep.Failures && rep.Elapsed <= rep2.Elapsed {
		t.Fatalf("detector added no downtime: %v vs %v", rep.Elapsed, rep2.Elapsed)
	}
}

// TestFullClusterFaultsDeterministic turns everything on at once — flaky
// interconnect, heartbeat detection, two-phase commit, node failures —
// and requires a bit-exact answer and a bit-identical replay.
func TestFullClusterFaultsDeterministic(t *testing.T) {
	cfg := clusterConfig()
	want := referenceChecksum(t, cfg)
	cfg.TwoPhaseCommit = true
	cfg.HeartbeatPeriod = 50 * des.Millisecond
	cfg.NetFaults = &mpi.NetFaultConfig{
		Seed:      cfg.Seed,
		DropRate:  0.05,
		DupRate:   0.01,
		JitterMax: 200 * des.Microsecond,
	}

	run := func() *Report {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if !rep.Completed || rep.Checksum != want {
		t.Fatalf("completed=%v checksum=%v want %v", rep.Completed, rep.Checksum, want)
	}
	if rep.Failures == 0 || rep.Recoveries != rep.Failures {
		t.Fatalf("failures=%d recoveries=%d", rep.Failures, rep.Recoveries)
	}
	if len(rep.DetectionLatencies) != rep.Failures {
		t.Fatalf("%d latencies for %d failures", len(rep.DetectionLatencies), rep.Failures)
	}
	rep2 := run()
	if fmt.Sprintf("%+v", rep) != fmt.Sprintf("%+v", rep2) {
		t.Fatalf("non-deterministic cluster run:\n  %+v\nvs\n  %+v", rep, rep2)
	}

	// A different seed must explore a different fault schedule.
	cfg.Seed++
	cfg.NetFaults.Seed++
	rep3 := run()
	if !rep3.Completed || rep3.Checksum != want {
		t.Fatalf("reseeded run wrong: %+v", rep3)
	}
	if fmt.Sprintf("%+v", rep) == fmt.Sprintf("%+v", rep3) {
		t.Fatal("different seed replayed the identical run")
	}
}
