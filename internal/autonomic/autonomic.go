// Package autonomic closes the loop the paper opens in §1: "there is an
// inevitable need for autonomic computing systems which are able to
// self-heal and self-repair". It runs a genuinely distributed computation
// (a halo-exchanging Jacobi solve across MPI ranks) under coordinated
// incremental checkpointing, injects node failures, and recovers
// automatically — restore every rank from the last consistent line,
// rebuild the communicator, re-attach the solver, resume — until the
// computation completes. Everything happens in one deterministic
// discrete-event simulation, so the end-to-end efficiency under failures
// is *measured*, not modelled, and the final answer is verified against
// an uninterrupted run.
package autonomic

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Computation is a distributed, resumable, stoppable iterative program —
// the contract both kernels' Dist* types satisfy.
type Computation interface {
	// Run iterates to target; onIter (optional) runs after each
	// completed iteration with a continuation; onDone at completion.
	Run(target int, onIter func(iter int, next func()), onDone func())
	// Stop abandons the computation (failure path).
	Stop()
	// Iter reports completed iterations.
	Iter() int
	// Gather returns the global solution for verification.
	Gather() ([]float64, error)
}

// Factory builds a computation fresh or re-attaches it to restored
// address spaces.
type Factory interface {
	New(eng *des.Engine, world *mpi.World) (Computation, error)
	Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error)
}

// StencilFactory supervises a halo-exchanging Jacobi solve.
type StencilFactory struct {
	Nx, RowsPerRank int
	Boundary        float64
	ComputeTime     des.Time
}

// New implements Factory.
func (f StencilFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	return kernels.NewDistStencil(eng, world, f.Nx, f.RowsPerRank, f.Boundary, f.ComputeTime)
}

// Attach implements Factory.
func (f StencilFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	return kernels.AttachDistStencil(eng, world, f.Nx, f.RowsPerRank, f.Boundary, f.ComputeTime, iter)
}

// WavefrontFactory supervises a pipelined transport sweep.
type WavefrontFactory struct {
	Nx, RowsPerRank int
	Seed            float64
	ComputeTime     des.Time
}

// New implements Factory.
func (f WavefrontFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	return kernels.NewDistWavefront(eng, world, f.Nx, f.RowsPerRank, f.Seed, f.ComputeTime)
}

// Attach implements Factory.
func (f WavefrontFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	return kernels.AttachDistWavefront(eng, world, f.Nx, f.RowsPerRank, f.Seed, f.ComputeTime, iter)
}

// Config parameterises a supervised run.
type Config struct {
	// Workload picks the computation; nil selects a StencilFactory
	// built from the grid fields below.
	Workload Factory
	// Ranks is the number of MPI processes (>= 1).
	Ranks int
	// Nx and RowsPerRank shape the decomposed grid.
	Nx, RowsPerRank int
	// Boundary is the Dirichlet boundary value.
	Boundary float64
	// Iterations is the total sweeps to complete.
	Iterations int
	// CkptEvery takes a coordinated checkpoint after every N completed
	// iterations (>= 1).
	CkptEvery int
	// ComputeTime is the virtual cost of one sweep.
	ComputeTime des.Time
	// MTBF is the *system* mean time between failures; zero disables
	// failure injection.
	MTBF des.Time
	// RestartOverhead is the fixed downtime per failure (detection,
	// reboot, re-spawn) on top of the chain-read time.
	RestartOverhead des.Time
	// Sink models stable storage (zero → SCSI).
	Sink storage.Model
	// Seed drives failure times deterministically.
	Seed uint64
	// MaxFailures aborts pathological runs (0 → 1000).
	MaxFailures int
}

func (c Config) withDefaults() Config {
	if c.Nx == 0 {
		c.Nx = 64
	}
	if c.RowsPerRank == 0 {
		c.RowsPerRank = 16
	}
	if c.Ranks == 0 {
		c.Ranks = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.CkptEvery == 0 {
		c.CkptEvery = 5
	}
	if c.ComputeTime == 0 {
		c.ComputeTime = 100 * des.Millisecond
	}
	if c.RestartOverhead == 0 {
		c.RestartOverhead = 2 * des.Second
	}
	if c.Sink == (storage.Model{}) {
		c.Sink = storage.SCSISink()
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 1000
	}
	if c.Workload == nil {
		c.Workload = StencilFactory{
			Nx: c.Nx, RowsPerRank: c.RowsPerRank,
			Boundary: c.Boundary, ComputeTime: c.ComputeTime,
		}
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Ranks < 1:
		return fmt.Errorf("autonomic: ranks %d", c.Ranks)
	case c.Nx < 3 || c.RowsPerRank < 1:
		return fmt.Errorf("autonomic: grid %dx%d", c.Nx, c.RowsPerRank)
	case c.Iterations < 1 || c.CkptEvery < 1:
		return fmt.Errorf("autonomic: iterations %d / ckpt every %d", c.Iterations, c.CkptEvery)
	}
	return nil
}

// Report summarises a supervised run.
type Report struct {
	Completed  bool
	Iterations int
	// Failures injected and recoveries performed (equal on success).
	Failures, Recoveries int
	// LostIterations is the work rolled back across all failures.
	LostIterations int
	// Elapsed is the end-to-end virtual time; Ideal is the failure- and
	// checkpoint-free compute time; Efficiency = Ideal/Elapsed.
	Elapsed, Ideal des.Time
	Efficiency     float64
	// CheckpointVolumeMB is the total page payload persisted.
	CheckpointVolumeMB float64
	// CommitTime is the cumulative stop-and-copy pause.
	CommitTime des.Time
	// Checksum of the final global interior, for external verification.
	Checksum float64
}

// team is one incarnation of the computation (between failures).
type team struct {
	world *mpi.World
	d     Computation
	cps   []*ckpt.Checkpointer
	co    *ckpt.Coordinator
}

// Supervisor drives a run to completion through failures.
type Supervisor struct {
	cfg   Config
	eng   *des.Engine
	store storage.Store
	rng   *rand.Rand

	cur          *team
	lastLineIter int // iteration the latest consistent line corresponds to
	nextSeq      uint64
	report       Report
	failed       error
}

// Run executes the configured computation under supervision and returns
// the report. The final checksum is filled in on success.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:   cfg,
		eng:   des.NewEngine(),
		store: storage.NewMemStore(),
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0xA57)),
	}
	t, err := s.buildTeam(nil, 0)
	if err != nil {
		return nil, err
	}
	s.cur = t
	s.startTeam()
	s.scheduleFailure()
	s.eng.Run(des.MaxTime)
	if s.failed != nil {
		return nil, s.failed
	}
	s.report.Elapsed = s.eng.Now()
	s.report.Ideal = des.Time(cfg.Iterations) * cfg.ComputeTime
	if s.report.Elapsed > 0 {
		s.report.Efficiency = s.report.Ideal.Seconds() / s.report.Elapsed.Seconds()
	}
	return &s.report, nil
}

// buildTeam constructs a new world/solver/checkpointer incarnation.
// spaces is nil for a fresh start, or the restored address spaces after a
// failure; startIter is the iteration count the state corresponds to.
func (s *Supervisor) buildTeam(spaces []*mem.AddressSpace, startIter int) (*team, error) {
	cfg := s.cfg
	fresh := spaces == nil
	if fresh {
		spaces = make([]*mem.AddressSpace, cfg.Ranks)
		for i := range spaces {
			spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
		}
	}
	world, err := mpi.NewWorld(s.eng, mpi.QsNet(), mpi.Bounce, spaces)
	if err != nil {
		return nil, err
	}
	var d Computation
	if fresh {
		d, err = cfg.Workload.New(s.eng, world)
	} else {
		d, err = cfg.Workload.Attach(s.eng, world, startIter)
	}
	if err != nil {
		return nil, err
	}
	t := &team{world: world, d: d}
	for i := 0; i < cfg.Ranks; i++ {
		c, err := ckpt.NewCheckpointer(s.eng, spaces[i], ckpt.Options{
			Rank:     i,
			Store:    s.store,
			Sink:     cfg.Sink,
			StartSeq: s.nextSeq,
		})
		if err != nil {
			return nil, err
		}
		c.Exclude(world.BounceRegion(i))
		c.Start()
		t.cps = append(t.cps, c)
	}
	t.co, err = ckpt.NewCoordinator(s.eng, t.cps)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// startTeam begins (or resumes) iterating the current team.
func (s *Supervisor) startTeam() {
	t := s.cur
	t.d.Run(s.cfg.Iterations, func(iter int, next func()) {
		if iter%s.cfg.CkptEvery != 0 && iter != s.cfg.Iterations {
			next()
			return
		}
		// Quiescent point: coordinated checkpoint, then pause for the
		// stop-and-copy commit before resuming.
		g, err := t.co.GlobalCheckpoint()
		if err != nil {
			s.fail(err)
			return
		}
		s.nextSeq = g.PerRank[0].Seq + 1
		s.lastLineIter = iter
		s.report.CheckpointVolumeMB += float64(g.TotalPageBytes) / 1e6
		s.report.CommitTime += g.MaxDuration
		s.eng.After(g.MaxDuration, next)
	}, func() {
		s.finish(t)
	})
}

// finish completes the run: gather the verification checksum.
func (s *Supervisor) finish(t *team) {
	vals, err := t.d.Gather()
	if err != nil {
		s.fail(err)
		return
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.report.Completed = true
	s.report.Iterations = t.d.Iter()
	s.report.Checksum = sum
	s.eng.Stop()
}

// scheduleFailure arms the next failure event.
func (s *Supervisor) scheduleFailure() {
	if s.cfg.MTBF <= 0 {
		return
	}
	delay := des.FromSeconds(s.rng.ExpFloat64() * s.cfg.MTBF.Seconds())
	if delay < des.Millisecond {
		delay = des.Millisecond
	}
	s.eng.After(delay, s.onFailure)
}

// onFailure kills the current team and schedules recovery.
func (s *Supervisor) onFailure() {
	if s.report.Completed || s.failed != nil {
		return
	}
	if s.report.Failures >= s.cfg.MaxFailures {
		s.fail(fmt.Errorf("autonomic: exceeded %d failures", s.cfg.MaxFailures))
		return
	}
	s.report.Failures++
	t := s.cur
	s.report.LostIterations += t.d.Iter() - s.lastLineIter
	// The node is gone: abandon the incarnation. Pending events against
	// it become no-ops; its address spaces are garbage.
	t.d.Stop()
	for _, c := range t.cps {
		c.Stop()
	}
	s.cur = nil

	// Downtime: fixed overhead plus reading the recovery chain.
	line, ok, err := ckpt.LatestConsistentSeq(s.store, s.cfg.Ranks)
	if err != nil {
		s.fail(err)
		return
	}
	downtime := s.cfg.RestartOverhead
	if ok {
		var chain uint64
		for r := 0; r < s.cfg.Ranks; r++ {
			v, err := ckpt.ChainVolume(s.store, r, line)
			if err != nil {
				s.fail(err)
				return
			}
			chain += v
		}
		downtime += s.cfg.Sink.WriteTime(chain) // read ≈ write bandwidth
	}
	s.eng.After(downtime, func() { s.recover(line, ok) })
}

// recover rebuilds the team from the last consistent line (or from
// scratch when no checkpoint ever committed).
func (s *Supervisor) recover(line uint64, haveLine bool) {
	if s.report.Completed || s.failed != nil {
		return
	}
	var spaces []*mem.AddressSpace
	startIter := 0
	if haveLine {
		var err error
		spaces, err = ckpt.RestoreAll(s.store, s.cfg.Ranks, line)
		if err != nil {
			s.fail(err)
			return
		}
		startIter = s.lastLineIter
	} else {
		s.lastLineIter = 0
	}
	t, err := s.buildTeam(spaces, startIter)
	if err != nil {
		s.fail(err)
		return
	}
	s.cur = t
	s.report.Recoveries++
	s.startTeam()
	s.scheduleFailure()
}

func (s *Supervisor) fail(err error) {
	s.failed = err
	s.eng.Stop()
}
