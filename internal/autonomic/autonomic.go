// Package autonomic closes the loop the paper opens in §1: "there is an
// inevitable need for autonomic computing systems which are able to
// self-heal and self-repair". It runs a genuinely distributed computation
// (a halo-exchanging Jacobi solve across MPI ranks) under coordinated
// incremental checkpointing, injects node failures, and recovers
// automatically — restore every rank from the last consistent line,
// rebuild the communicator, re-attach the solver, resume — until the
// computation completes. Everything happens in one deterministic
// discrete-event simulation, so the end-to-end efficiency under failures
// is *measured*, not modelled, and the final answer is verified against
// an uninterrupted run.
package autonomic

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/chaos"
	"repro/internal/ckpt"
	"repro/internal/ckptspec"
	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/redundancy"
	"repro/internal/storage"
)

// Computation is a distributed, resumable, stoppable iterative program —
// the contract both kernels' Dist* types satisfy.
type Computation interface {
	// Run iterates to target; onIter (optional) runs after each
	// completed iteration with a continuation; onDone at completion.
	Run(target int, onIter func(iter int, next func()), onDone func())
	// Stop abandons the computation (failure path).
	Stop()
	// Iter reports completed iterations.
	Iter() int
	// Gather returns the global solution for verification.
	Gather() ([]float64, error)
}

// Factory builds a computation fresh or re-attaches it to restored
// address spaces.
type Factory interface {
	New(eng *des.Engine, world *mpi.World) (Computation, error)
	Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error)
}

// StencilFactory supervises a halo-exchanging Jacobi solve.
type StencilFactory struct {
	Nx, RowsPerRank int
	Boundary        float64
	ComputeTime     des.Time
}

// New implements Factory.
func (f StencilFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	return kernels.NewDistStencil(eng, world, f.Nx, f.RowsPerRank, f.Boundary, f.ComputeTime)
}

// Attach implements Factory.
func (f StencilFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	return kernels.AttachDistStencil(eng, world, f.Nx, f.RowsPerRank, f.Boundary, f.ComputeTime, iter)
}

// WavefrontFactory supervises a pipelined transport sweep.
type WavefrontFactory struct {
	Nx, RowsPerRank int
	Seed            float64
	ComputeTime     des.Time
}

// New implements Factory.
func (f WavefrontFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	return kernels.NewDistWavefront(eng, world, f.Nx, f.RowsPerRank, f.Seed, f.ComputeTime)
}

// Attach implements Factory.
func (f WavefrontFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	return kernels.AttachDistWavefront(eng, world, f.Nx, f.RowsPerRank, f.Seed, f.ComputeTime, iter)
}

// Config parameterises a supervised run.
type Config struct {
	// Workload picks the computation; nil selects a StencilFactory
	// built from the grid fields below.
	Workload Factory
	// Ranks is the number of MPI processes (>= 1).
	Ranks int
	// Nx and RowsPerRank shape the decomposed grid.
	Nx, RowsPerRank int
	// Boundary is the Dirichlet boundary value.
	Boundary float64
	// Iterations is the total sweeps to complete.
	Iterations int
	// CkptEvery takes a coordinated checkpoint after every N completed
	// iterations (>= 1).
	CkptEvery int
	// ComputeTime is the virtual cost of one sweep.
	ComputeTime des.Time
	// MTBF is the *system* mean time between failures; zero disables
	// failure injection.
	MTBF des.Time
	// RestartOverhead is the fixed downtime per failure (detection,
	// reboot, re-spawn) on top of the chain-read time.
	RestartOverhead des.Time
	// Sink models stable storage (zero → SCSI).
	Sink storage.Model
	// Store overrides the stable-storage backend (nil → a fresh
	// in-memory store). Stack the hardening wrappers — per-replica
	// storage.IntegrityStore + storage.ResilientStore under a
	// storage.MirrorStore — to run the supervisor against a storage
	// tier that tears writes, rots at rest, drops requests, or dies.
	Store storage.Store
	// Seed drives failure times deterministically.
	Seed uint64
	// MaxFailures aborts pathological runs (0 → 1000).
	MaxFailures int

	// NetFaults, when non-nil, runs the team over a flaky interconnect:
	// per-link drop and duplication, delay jitter, and degradation
	// windows, all seeded and deterministic (see mpi.NetFaultConfig).
	NetFaults *mpi.NetFaultConfig
	// HeartbeatPeriod, when > 0 (and Ranks > 1), runs a gossip-style
	// heartbeat failure detector over the (possibly flaky) interconnect.
	// Failures are then *detected* rather than observed instantly: the
	// measured detection latency of each failure is added to its
	// downtime and recorded in the report. With the detector off, the
	// supervisor notices failures immediately — the paper's idealised
	// constant-overhead assumption.
	HeartbeatPeriod des.Time
	// HeartbeatTimeout declares a peer dead after this much heartbeat
	// silence (0 → 4×HeartbeatPeriod).
	HeartbeatTimeout des.Time
	// Engine, when non-nil, hosts the run on an existing (fresh, clock
	// at zero) engine instead of a private one. Chaos wiring needs this:
	// a chaos.Driver binds to an engine before Run, so the driver's
	// timed storage faults, bit-flip instants and crash schedule share
	// the run's virtual clock.
	Engine *des.Engine
	// Chaos, when non-nil, drives deterministic scheduled failures from
	// a compiled fault plan bound to Engine: node crashes at planned
	// instants, crashes aimed inside two-phase commit windows, and — via
	// the driver's MergeNetFaults, applied automatically — planned
	// network partitions and brownouts. Storage-layer chaos (outages,
	// brownouts, bit flips) rides the store the caller wrapped with
	// Driver.WrapStore. Chaos composes with MTBF: most chaos runs set
	// MTBF to zero so the plan is the sole failure source.
	Chaos *chaos.Driver
	// TwoPhaseCommit switches coordinated checkpoints to the
	// prepare/commit protocol: ranks write segments in the prepare
	// phase and a per-line COMMIT marker is written only after every
	// rank's sink write acks. Recovery then trusts only committed
	// lines, so a mid-checkpoint failure can never surface a line the
	// key space merely advertises.
	TwoPhaseCommit bool
	// CommitTimeout aborts a two-phase round whose acks straggle past
	// this guard (0 disables; only meaningful with TwoPhaseCommit).
	CommitTimeout des.Time
	// RDMA, when non-nil, runs the team over an OS-bypass interconnect
	// (mpi.Direct with registered memory regions): one-sided NIC writes
	// land without raising tracker faults. Mode selects naive
	// checkpointing (measure the silent under-count) or the drain
	// protocol (close it). See RDMAOptions.
	RDMA *RDMAOptions
	// Spec, when non-nil, applies a protection-region spec to every
	// rank's checkpointer: regions the ckptset analyzer classified as
	// recomputable are excluded from protection and capture (the
	// restore recreates them zero-filled), and their recompute hooks
	// run on every re-attach before the team resumes. The workload
	// must implement SpecBound to participate; others run unchanged.
	Spec *ckptspec.Spec
	// Shards, when > 1, hosts the run on the control engine of a shard
	// group of that size instead of a standalone engine (ignored when
	// Engine is set). Supervisor, team and chaos events all run at the
	// group's serial instants, so the execution — and every digest —
	// is bit-identical to a sequential run at any shard count.
	Shards int
	// MultiLevel, when non-nil, runs the checkpoint hierarchy: ranks
	// commit to rank-local L1 stores, every committed line is parity-
	// protected across ranks by the configured erasure scheme (L2), and
	// the global store (Store/Sink above) becomes the L3 tier written
	// only every GlobalEvery lines. Failures wipe the victims' L1
	// stores; recovery reads through the tiers — L1, L2 rebuild, L3 —
	// with per-level accounting in the report. The chaos DSL's
	// domain-crash fault kills whole failure domains at once.
	// Incompatible with TwoPhaseCommit (the commit marker is a global-
	// store protocol).
	MultiLevel *MultiLevelOptions
}

// SpecBound is the optional Computation extension that ties a rank's
// live arenas to protection-spec names. kernels' Dist* types and the
// solo adapter implement it.
type SpecBound interface {
	ProtectionBindings(rank int) []ckptspec.Binding
}

func (c Config) withDefaults() Config {
	if c.Nx == 0 {
		c.Nx = 64
	}
	if c.RowsPerRank == 0 {
		c.RowsPerRank = 16
	}
	if c.Ranks == 0 {
		c.Ranks = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.CkptEvery == 0 {
		c.CkptEvery = 5
	}
	if c.ComputeTime == 0 {
		c.ComputeTime = 100 * des.Millisecond
	}
	if c.RestartOverhead == 0 {
		c.RestartOverhead = 2 * des.Second
	}
	if c.Sink == (storage.Model{}) {
		c.Sink = storage.SCSISink()
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 1000
	}
	if c.Workload == nil {
		c.Workload = StencilFactory{
			Nx: c.Nx, RowsPerRank: c.RowsPerRank,
			Boundary: c.Boundary, ComputeTime: c.ComputeTime,
		}
	}
	if c.HeartbeatPeriod > 0 && c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatPeriod
	}
	if c.RDMA != nil {
		opts := c.RDMA.withDefaults()
		c.RDMA = &opts
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Ranks < 1:
		return fmt.Errorf("autonomic: ranks %d", c.Ranks)
	case c.Nx < 3 || c.RowsPerRank < 1:
		return fmt.Errorf("autonomic: grid %dx%d", c.Nx, c.RowsPerRank)
	case c.Iterations < 1 || c.CkptEvery < 1:
		return fmt.Errorf("autonomic: iterations %d / ckpt every %d", c.Iterations, c.CkptEvery)
	case c.MultiLevel != nil && c.TwoPhaseCommit:
		return fmt.Errorf("autonomic: MultiLevel is incompatible with TwoPhaseCommit")
	}
	return nil
}

// FailureEvent is the per-failure lost-work record: when the failure
// struck, what it cost, and where recovery landed. The chaos
// equivalence validator asserts every injected failure carries non-zero
// accounting — lost iterations, downtime, or wasted checkpoint lines.
type FailureEvent struct {
	// At is the virtual time the failure struck.
	At des.Time
	// Iter is the completed-iteration count at the failure instant.
	Iter int
	// DuringCommit reports that a two-phase commit round was in flight
	// when the failure struck (the torn-line window).
	DuringCommit bool
	// RestoredIter is the iteration of the line recovery restored to
	// (0 for a scratch restart).
	RestoredIter int
	// LostIterations is Iter - RestoredIter: the work that must be
	// replayed. For nested failures absorbed by one recovery, each
	// event records its own distance to the common restored line.
	LostIterations int
	// WastedCheckpoints counts committed lines newer than the restored
	// line at recovery time: checkpoints whose cost bought nothing
	// because the failure forced a rollback past them. Each line is
	// charged to at most one failure. Recorded on the batch's first
	// event.
	WastedCheckpoints int
	// Downtime is the virtual time from the failure to the rebuilt
	// team resuming — detection, selection, chain read, respawn.
	Downtime des.Time
}

// Report summarises a supervised run.
type Report struct {
	Completed  bool
	Iterations int
	// Failures injected and recoveries performed (equal on success).
	Failures, Recoveries int
	// DegradedRecoveries counts recoveries that could not use the
	// newest consistent line — its segments were torn, corrupt or
	// unreadable — and fell back to an earlier verified line (or to a
	// scratch restart when no line survived verification).
	DegradedRecoveries int
	// CheckpointFailures counts coordinated checkpoints the storage
	// tier refused; the run continues without that line and the next
	// checkpoint re-bases a fresh chain.
	CheckpointFailures int
	// AbortedCommits counts two-phase rounds rolled back *after* a
	// successful prepare — a rank death inside the commit window, a
	// straggler timeout, or a refused COMMIT-marker write. Distinct
	// from CheckpointFailures (prepare-phase storage refusals): an
	// aborted commit had already paid the sink writes and deleted them.
	AbortedCommits int
	// DetectionLatencies holds, per heartbeat-detected failure, the
	// measured virtual time between the death and a survivor declaring
	// it — a distribution, because heartbeat loss on a flaky network
	// stretches individual detections past the timeout.
	DetectionLatencies []des.Time
	// FalseSuspicions counts heartbeat silences that crossed the
	// timeout for a peer that was in fact alive (loss-induced).
	FalseSuspicions int
	// LostIterations is the work rolled back across all failures.
	LostIterations int
	// Elapsed is the end-to-end virtual time; Ideal is the failure- and
	// checkpoint-free compute time; Efficiency = Ideal/Elapsed.
	Elapsed, Ideal des.Time
	Efficiency     float64
	// CheckpointVolumeMB is the total page payload persisted.
	CheckpointVolumeMB float64
	// CommitTime is the cumulative stop-and-copy pause.
	CommitTime des.Time
	// CommittedLines counts coordinated checkpoint lines the run
	// recorded as trustworthy (marker-committed under two-phase).
	CommittedLines int
	// WastedCheckpoints sums FailureEvent.WastedCheckpoints: committed
	// lines that rollback invalidated before they were ever restored.
	WastedCheckpoints int
	// FailureLog holds one lost-work record per injected failure, in
	// failure order.
	FailureLog []FailureEvent
	// Checksum of the final global interior, for external verification.
	Checksum float64
	// SpaceDigests holds, per rank, a digest of the final address
	// space's checkpointable regions (communication bounce buffers
	// excluded) — the bit-identity witness the replay validator
	// compares against a failure-free run.
	SpaceDigests []uint64
	// DrainRounds counts executions of the checkpoint-time RDMA drain
	// protocol; DrainPhaseTime breaks their cumulative cost down per
	// phase (indexed by mpi.DrainPhase); DrainTimeouts counts ranks the
	// DrainInFlight deadline stranded into bounce-buffer degradation.
	DrainRounds    int
	DrainPhaseTime [mpi.NumDrainPhases]des.Time
	DrainTimeouts  int
	// RegistrationTime is the cumulative team-startup NIC memory-
	// registration cost (initial and after every respawn).
	RegistrationTime des.Time
	// DirectBypassBytes counts NIC bytes that landed via DMA without
	// tracker faults, summed over every team incarnation;
	// SilentDirtyBytes is the portion that hit protected pages — the
	// ground-truth IWS under-count. Under the drain protocol the silent
	// set is reconciled before every line; under naive Direct it is the
	// corruption the restore path inherits.
	DirectBypassBytes uint64
	SilentDirtyBytes  uint64
	// CheckpointSilentBytes sums the per-checkpoint corruption risk
	// (ckpt.Result.SilentDirtyBytes) over every line the run cut — the
	// under-count actually baked into the stored chain. The drain
	// protocol reconciles the silent set before every line, holding
	// this at zero; naive Direct does not.
	CheckpointSilentBytes uint64
	// Multi-level checkpointing (Config.MultiLevel). DomainCrashes
	// counts correlated whole-domain failures the chaos plan injected;
	// ParityEncodeFailures, lines left without L2 protection because
	// the parity exchange failed; InjectedParityCorruptions, parity
	// shards the chaos schedule bit-flipped at rest.
	DomainCrashes             int
	ParityEncodeFailures      int
	InjectedParityCorruptions int
	// ParityVolumeMB is the parity payload exchanged between partners;
	// L2ExchangeTime its cumulative link cost (part of the commit
	// pause under multi-level).
	ParityVolumeMB float64
	L2ExchangeTime des.Time
	// LevelReadBytes/LevelReadTime break every recovery's reads down by
	// tier (indexed by redundancy.LevelLocal/LevelParity/LevelGlobal) —
	// the per-level accounting the A21 ablation plots. A recovery that
	// never touches LevelGlobal restored entirely from local chains and
	// partner parity.
	LevelReadBytes [redundancy.LevelCount]uint64
	LevelReadTime  [redundancy.LevelCount]des.Time
	// ParityRebuilds counts segments reconstructed from surviving
	// shards; ParityRebuildFailures, rebuild attempts that fell through
	// to L3; CorruptParityShards, shards the frame CRC rejected;
	// ParityRepairs/ParityRepairFailures, read-repair write-backs of
	// rebuilt segments onto the owner's L1 (and the best-effort misses).
	ParityRebuilds        uint64
	ParityRebuildFailures uint64
	CorruptParityShards   uint64
	ParityRepairs         uint64
	ParityRepairFailures  uint64
}

// MeanDetectionLatency averages the measured detection latencies
// (0 when no failure was heartbeat-detected).
func (r *Report) MeanDetectionLatency() des.Time {
	if len(r.DetectionLatencies) == 0 {
		return 0
	}
	var sum des.Time
	for _, l := range r.DetectionLatencies {
		sum += l
	}
	return sum / des.Time(len(r.DetectionLatencies))
}

// MaxDetectionLatency returns the slowest measured detection.
func (r *Report) MaxDetectionLatency() des.Time {
	var max des.Time
	for _, l := range r.DetectionLatencies {
		if l > max {
			max = l
		}
	}
	return max
}

// team is one incarnation of the computation (between failures).
type team struct {
	world *mpi.World
	d     Computation
	cps   []*ckpt.Checkpointer
	co    *ckpt.Coordinator
	det   *cluster.Detector // nil unless HeartbeatPeriod > 0 and Ranks > 1

	regCost   des.Time // NIC registration latency paid before iterating
	harvested bool     // RDMA counters already folded into the report
}

// Supervisor drives a run to completion through failures.
type Supervisor struct {
	cfg   Config
	eng   *des.Engine
	store storage.Store
	rng   *rand.Rand

	cur          *team
	lastLineIter int             // iteration of the line a recovery would target
	lineIter     map[uint64]int  // committed line seq → iteration it captured
	wastedSeqs   map[uint64]bool // line seqs already charged as wasted to some failure
	nextSeq      uint64
	report       Report
	failed       error

	// Multi-level checkpointing state (nil/unused without
	// Config.MultiLevel). mlRng is a dedicated stream for parity-
	// corruption injection so the failure rng's draw sequence stays
	// bit-identical to legacy runs. pendingVictims is the rank set a
	// domain crash preloaded for the next failure event.
	ml             *redundancy.Hierarchy
	mlRng          *rand.Rand
	pendingVictims []int

	// Failure/recovery state machine. Failures are re-armed from the
	// failure instant, so a second failure can land while detection or
	// recovery of the first is still in progress (nested failures).
	detecting       bool      // a heartbeat detection round is running
	pendingRecovery des.Event // the in-flight respawn, cancellable
	pendingFailIter int       // iteration count at the failure being recovered
	pendingDegraded bool      // the in-flight recovery fell short of the claimed line
	unrecovered     int       // failures absorbed since the last completed recovery
}

// Run executes the configured computation under supervision and returns
// the report. The final checksum is filled in on success.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MultiLevel != nil {
		opts, err := cfg.MultiLevel.withDefaults(cfg.Ranks)
		if err != nil {
			return nil, err
		}
		cfg.MultiLevel = &opts
	}
	store := cfg.Store
	if store == nil {
		store = storage.NewMemStore()
	}
	eng := cfg.Engine
	if eng == nil {
		if cfg.Shards > 1 {
			eng = des.NewGroup(cfg.Shards).Control()
		} else {
			eng = des.NewEngine()
		}
	}
	if cfg.Chaos != nil {
		// Fold the plan's partition/brownout windows into the interconnect
		// fault config every team incarnation is built with.
		cfg.NetFaults = cfg.Chaos.MergeNetFaults(cfg.NetFaults)
	}
	s := &Supervisor{
		cfg:        cfg,
		eng:        eng,
		store:      store,
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0xA57)),
		lineIter:   make(map[uint64]int),
		wastedSeqs: make(map[uint64]bool),
	}
	if cfg.MultiLevel != nil {
		if err := s.buildHierarchy(store); err != nil {
			return nil, err
		}
	}
	t, err := s.buildTeam(nil, 0)
	if err != nil {
		return nil, err
	}
	s.cur = t
	s.startTeam()
	s.scheduleFailure()
	if cfg.Chaos != nil {
		cfg.Chaos.StartCrashes(s.onFailure)
	}
	s.eng.Run(des.MaxTime)
	if s.failed != nil {
		return nil, s.failed
	}
	s.report.Elapsed = s.eng.Now()
	s.report.Ideal = des.Time(cfg.Iterations) * cfg.ComputeTime
	if s.report.Elapsed > 0 {
		s.report.Efficiency = s.report.Ideal.Seconds() / s.report.Elapsed.Seconds()
	}
	return &s.report, nil
}

// buildTeam constructs a new world/solver/checkpointer incarnation.
// spaces is nil for a fresh start, or the restored address spaces after a
// failure; startIter is the iteration count the state corresponds to.
func (s *Supervisor) buildTeam(spaces []*mem.AddressSpace, startIter int) (*team, error) {
	cfg := s.cfg
	fresh := spaces == nil
	if fresh {
		spaces = make([]*mem.AddressSpace, cfg.Ranks)
		for i := range spaces {
			spaces[i] = mem.NewAddressSpace(mem.Config{PageSize: 4096})
		}
	}
	mode := mpi.Bounce
	if cfg.RDMA != nil {
		mode = mpi.Direct
	}
	world, err := mpi.NewWorld(s.eng, mpi.QsNet(), mode, spaces)
	if err != nil {
		return nil, err
	}
	if cfg.RDMA != nil {
		// Before the workload maps its arenas: the bounce fallback arenas
		// must exist before checkpointer exclusion below.
		if err := world.EnableRDMA(cfg.RDMA.NIC); err != nil {
			return nil, err
		}
	}
	if cfg.NetFaults != nil {
		if err := world.SetFaults(*cfg.NetFaults); err != nil {
			return nil, err
		}
	}
	var d Computation
	if fresh {
		d, err = cfg.Workload.New(s.eng, world)
	} else {
		d, err = cfg.Workload.Attach(s.eng, world, startIter)
	}
	if err != nil {
		return nil, err
	}
	t := &team{world: world, d: d}
	if cfg.RDMA != nil {
		// The workload's arenas exist now; pin them with the NIC.
		registerRDMA(t)
	}
	for i := 0; i < cfg.Ranks; i++ {
		opts := ckpt.Options{
			Rank:     i,
			Store:    s.rankStore(i),
			Sink:     cfg.Sink,
			StartSeq: s.nextSeq,
		}
		if cfg.MultiLevel != nil {
			// Under multi-level the commit pause is a *local* device
			// write: ranks persist to their own L1, not the shared sink.
			opts.Sink = cfg.MultiLevel.LocalSink
			opts.FullEvery = cfg.MultiLevel.FullEvery
		}
		c, err := ckpt.NewCheckpointer(s.eng, spaces[i], opts)
		if err != nil {
			return nil, err
		}
		c.Exclude(world.BounceRegion(i))
		if cfg.Spec != nil {
			if sb, ok := d.(SpecBound); ok {
				excluded := c.ApplySpec(cfg.Spec, sb.ProtectionBindings(i))
				if !fresh {
					// The restore recreated excluded arenas zero-filled;
					// rebuild derivable contents before iterating resumes.
					for _, b := range excluded {
						if b.Recompute == nil {
							continue
						}
						if err := b.Recompute(); err != nil {
							return nil, fmt.Errorf("autonomic: recompute %s: %w", b.Name, err)
						}
					}
				}
			}
		}
		c.Start()
		t.cps = append(t.cps, c)
	}
	t.co, err = ckpt.NewCoordinator(s.eng, t.cps)
	if err != nil {
		return nil, err
	}
	if cfg.HeartbeatPeriod > 0 && cfg.Ranks > 1 {
		t.det, err = cluster.NewDetector(s.eng, world, cluster.DetectorConfig{
			Period:  cfg.HeartbeatPeriod,
			Timeout: cfg.HeartbeatTimeout,
		})
		if err != nil {
			return nil, err
		}
		t.det.OnDeath = func(d cluster.Detection) { s.onDetected(t, d) }
		t.det.Start()
	}
	return t, nil
}

// startTeam begins (or resumes) iterating the current team. A
// registered-memory team first pays its NIC registration latency.
func (s *Supervisor) startTeam() {
	t := s.cur
	run := func() {
		t.d.Run(s.cfg.Iterations, func(iter int, next func()) {
			if iter%s.cfg.CkptEvery != 0 && iter != s.cfg.Iterations {
				next()
				return
			}
			// Quiescent point: coordinated checkpoint, then pause for the
			// stop-and-copy commit before resuming. A drain-mode RDMA team
			// wraps the commit in the drain/re-register protocol.
			if s.cfg.RDMA != nil && s.cfg.RDMA.Mode == RDMADrain {
				s.drainCheckpoint(t, iter, next)
				return
			}
			s.commitLine(t, iter, next)
		}, func() {
			s.finish(t)
		})
	}
	if t.regCost > 0 {
		s.report.RegistrationTime += t.regCost
		s.eng.After(t.regCost, func() {
			if s.cur != t || s.detecting {
				return
			}
			run()
		})
		return
	}
	run()
}

// commitLine cuts one coordinated checkpoint line for team t at
// iteration iter and calls cont when the stop-and-copy pause resolves.
// A refused line leaves the computation unharmed: cont still runs, the
// run just carries on without that line.
func (s *Supervisor) commitLine(t *team, iter int, cont func()) {
	if s.cfg.TwoPhaseCommit {
		s.beginTwoPhase(t, iter, cont)
		return
	}
	g, err := t.co.GlobalCheckpoint()
	if err != nil {
		// The storage tier refused the line. The computation is
		// unharmed — realign the checkpointers (ranks that
		// persisted before the error are ahead of ranks after it,
		// and consumed dirty sets force a full re-base) and keep
		// iterating without this line. The cost shows up as extra
		// rollback distance if a failure lands before the next
		// line commits.
		s.report.CheckpointFailures++
		s.nextSeq = t.co.Resync()
		cont()
		return
	}
	seq := g.PerRank[0].Seq
	s.nextSeq = seq + 1
	s.lastLineIter = iter
	s.lineIter[seq] = iter
	s.report.CommittedLines++
	s.report.CheckpointVolumeMB += float64(g.TotalPageBytes) / 1e6
	s.report.CommitTime += g.MaxDuration
	// A chaos plan may aim a correlated domain crash inside the commit
	// pause: the line's segments are on L1 but its parity exchange has
	// not resolved, so the newest line is exactly as exposed as a real
	// mid-commit loss would leave it.
	if s.cfg.Chaos != nil {
		if name, delay, hit := s.cfg.Chaos.DomainCrashDelay(s.eng.Now(), s.eng.Now()+g.MaxDuration); hit {
			s.eng.After(delay, func() { s.domainCrash(name) })
		}
	}
	if s.ml == nil {
		s.eng.After(g.MaxDuration, cont)
		return
	}
	s.eng.After(g.MaxDuration, func() {
		if s.cur != t || s.detecting {
			return
		}
		s.protectLine(t, seq, cont)
	})
}

// beginTwoPhase runs one prepare/commit checkpoint round for the current
// team and resumes the computation when the round resolves. The done
// callback fires at the commit's (or abort's) virtual completion time,
// so the full round is a measured pause, not a modelled one.
func (s *Supervisor) beginTwoPhase(t *team, iter int, next func()) {
	ackDelay := 2 * mpi.QsNet().Latency
	t.co.BeginTwoPhase(ckpt.TwoPhaseOptions{Timeout: s.cfg.CommitTimeout, AckDelay: ackDelay},
		func(g ckpt.GlobalResult, err error) {
			if err != nil {
				if errors.Is(err, ckpt.ErrCommitAborted) {
					s.report.AbortedCommits++
				} else {
					s.report.CheckpointFailures++
				}
				if s.cur != t || s.detecting {
					// Aborted by a rank failure: the recovery path owns
					// the future; do not resurrect the computation.
					return
				}
				// Autonomous abort (straggler timeout, refused marker) or
				// prepare refusal: the computation is unharmed. Realign
				// the checkpointers and keep iterating without this line.
				s.nextSeq = t.co.Resync()
				next()
				return
			}
			s.nextSeq = g.PerRank[0].Seq + 1
			s.lastLineIter = iter
			s.lineIter[g.PerRank[0].Seq] = iter
			s.report.CommittedLines++
			s.report.CheckpointVolumeMB += float64(g.TotalPageBytes) / 1e6
			s.report.CommitTime += s.eng.Now() - g.At
			if s.cur != t || s.detecting {
				return
			}
			next()
		})
	// A chaos plan may want this round killed mid-commit: after the
	// prepare started, strictly before the last ack (the earliest instant
	// the COMMIT marker could be written). If the prepare already resolved
	// synchronously (storage refusal), there is no window to aim at.
	if s.cfg.Chaos != nil {
		if lastAck, open := t.co.PendingLastAck(); open {
			if delay, hit := s.cfg.Chaos.CommitCrashDelay(s.eng.Now(), lastAck); hit {
				s.eng.After(delay, s.onFailure)
			}
		}
	}
}

// finish completes the run: gather the verification checksum.
func (s *Supervisor) finish(t *team) {
	s.harvestRDMA(t)
	if t.det != nil {
		t.det.Stop()
		s.report.FalseSuspicions += t.det.FalseSuspicions()
	}
	vals, err := t.d.Gather()
	if err != nil {
		s.fail(err)
		return
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.report.Completed = true
	s.report.Iterations = t.d.Iter()
	s.report.Checksum = sum
	// Per-rank digests of the final process images, restricted to the
	// checkpoint contract: bounce buffers carry transient wire payloads
	// and stacks are excluded from checkpoints, so neither may vote on
	// replay equivalence.
	for i, c := range t.cps {
		bounce := t.world.BounceRegion(i)
		s.report.SpaceDigests = append(s.report.SpaceDigests, c.Space().Digest(func(r *mem.Region) bool {
			return r == bounce || !r.Kind().Checkpointable()
		}))
	}
	s.eng.Stop()
}

// scheduleFailure arms the next failure event.
func (s *Supervisor) scheduleFailure() {
	if s.cfg.MTBF <= 0 {
		return
	}
	delay := des.FromSeconds(s.rng.ExpFloat64() * s.cfg.MTBF.Seconds())
	if delay < des.Millisecond {
		delay = des.Millisecond
	}
	s.eng.After(delay, s.onFailure)
}

// onFailure kills a node. With the heartbeat detector off the
// supervisor observes the death instantly (the paper's idealised
// constant-overhead assumption) and schedules recovery directly; with it
// on, a random rank's tickers go silent and recovery waits for a
// survivor to declare the death. The next failure is re-armed from the
// failure instant, so failures can land during detection or recovery.
func (s *Supervisor) onFailure() {
	if s.report.Completed || s.failed != nil {
		return
	}
	if s.report.Failures >= s.cfg.MaxFailures {
		s.fail(fmt.Errorf("autonomic: exceeded %d failures", s.cfg.MaxFailures))
		return
	}
	s.report.Failures++
	s.unrecovered++
	s.scheduleFailure()

	// Open the failure's lost-work record now; recovery completes it.
	// During detection or an in-flight respawn the computation is already
	// stopped, so the failure lands at the iteration being recovered.
	ev := FailureEvent{At: s.eng.Now(), Iter: s.pendingFailIter}
	if s.cur != nil && !s.detecting {
		ev.Iter = s.cur.d.Iter()
		_, ev.DuringCommit = s.cur.co.PendingSeq()
	}
	s.report.FailureLog = append(s.report.FailureLog, ev)

	// Resolve the victims now, wiping their L1 stores under multi-level
	// — the node-local device dies with the node, before any detection
	// or recovery gets to look at it.
	victims := s.takeVictims()
	if s.failed != nil {
		return
	}

	if s.detecting {
		// The job is already stalled waiting on the first death to be
		// detected; this failure takes another of the survivors.
		s.killAnother(s.cur, victims)
		return
	}
	if s.cur == nil {
		// Failure during recovery: the respawn under way is lost. Redo
		// select-and-restore against the (possibly further decayed)
		// store; the spawner itself observes this one, no detection
		// round needed.
		if s.pendingRecovery.Pending() {
			s.pendingRecovery.Cancel()
			s.pendingRecovery = des.Event{}
			s.scheduleRecovery(s.pendingFailIter)
		}
		return
	}

	t := s.cur
	s.pendingFailIter = t.d.Iter()
	if t.det != nil {
		s.detecting = true
	} else {
		s.cur = nil
	}
	// A commit window open at the failure instant can never produce a
	// trusted line: the abort deletes the prepared segments and the
	// COMMIT marker is never written.
	t.co.AbortPending(fmt.Errorf("rank failure at %v", s.eng.Now()))
	// The computation is gone either way: the dead rank's halo partners
	// stall within an iteration, and the stall propagates.
	s.harvestRDMA(t)
	t.d.Stop()
	for _, c := range t.cps {
		c.Stop()
	}
	if t.det != nil {
		if len(victims) == 0 {
			victims = []int{s.rng.IntN(s.cfg.Ranks)}
		}
		for _, v := range victims {
			if live := t.det.MarkFailed(v); live == 0 {
				s.abandonDetection(t)
				return
			}
		}
		return // a survivor's timeout will fire onDetected
	}
	s.scheduleRecovery(s.pendingFailIter)
}

// killAnother fails one more live rank of a team already under
// detection (or, under multi-level, the preset victim set of a domain
// crash). Detection of the first death continues — unless nobody is
// left alive to observe anything.
func (s *Supervisor) killAnother(t *team, victims []int) {
	if len(victims) > 0 {
		for _, v := range victims {
			if t.det.Failed(v) {
				continue
			}
			if live := t.det.MarkFailed(v); live == 0 {
				s.abandonDetection(t)
				return
			}
		}
		return
	}
	start := s.rng.IntN(s.cfg.Ranks)
	for i := 0; i < s.cfg.Ranks; i++ {
		v := (start + i) % s.cfg.Ranks
		if t.det.Failed(v) {
			continue
		}
		if live := t.det.MarkFailed(v); live == 0 {
			s.abandonDetection(t)
		}
		return
	}
}

// abandonDetection handles whole-partition loss: every rank is dead, so
// no survivor can declare anything. The spawner's own liveness timeout
// stands in for peer detection, at the detector's timeout cost.
func (s *Supervisor) abandonDetection(t *team) {
	s.detecting = false
	s.cur = nil
	t.det.Stop()
	s.report.FalseSuspicions += t.det.FalseSuspicions()
	failIter := s.pendingFailIter
	s.eng.After(s.cfg.HeartbeatTimeout, func() {
		if s.report.Completed || s.failed != nil || s.cur != nil || s.pendingRecovery.Pending() {
			return
		}
		s.scheduleRecovery(failIter)
	})
}

// onDetected runs when a surviving rank's heartbeat timeout declares the
// victim dead: record the measured detection latency and start recovery.
func (s *Supervisor) onDetected(t *team, d cluster.Detection) {
	if s.report.Completed || s.failed != nil || !s.detecting || s.cur != t {
		return
	}
	s.detecting = false
	s.cur = nil
	t.det.Stop()
	s.report.FalseSuspicions += t.det.FalseSuspicions()
	s.report.DetectionLatencies = append(s.report.DetectionLatencies, d.Latency())
	s.scheduleRecovery(s.pendingFailIter)
}

// claimedSeq snapshots what the store *claims* is the newest line — the
// commit-marker key space under two-phase commit, the segment key space
// otherwise — before any data is touched. A recovery is degraded when
// the line it actually restores falls short of this claim.
func (s *Supervisor) claimedSeq() (uint64, bool, error) {
	if s.ml != nil {
		// The hierarchy's claim spans all three tiers: the recovery view
		// advertises surviving L1 chains, parity-covered lines and L3.
		return ckpt.LatestConsistentSeq(s.ml.NewView(), s.cfg.Ranks)
	}
	if !s.cfg.TwoPhaseCommit {
		return ckpt.LatestConsistentSeq(s.store, s.cfg.Ranks)
	}
	keys, err := s.store.Keys()
	if err != nil {
		return 0, false, err
	}
	var best uint64
	ok := false
	for _, k := range keys {
		var seq uint64
		if ckpt.ParseCommitKey(k, &seq) && (!ok || seq > best) {
			best, ok = seq, true
		}
	}
	return best, ok, nil
}

// scheduleRecovery selects and restores the newest trustworthy line now
// (the store may decay further while the node respawns) and arms the
// respawn after the restart overhead plus the measured chain-read time.
// The armed event is cancellable: a nested failure redoes the selection.
func (s *Supervisor) scheduleRecovery(failIter int) {
	best, okBest, err := s.claimedSeq()
	if err != nil {
		s.fail(err)
		return
	}
	spaces, line, ok, readTime := s.selectAndRestore()
	if s.failed != nil {
		return
	}
	s.pendingDegraded = okBest && (!ok || line < best)
	s.pendingFailIter = failIter
	downtime := s.cfg.RestartOverhead + readTime
	s.pendingRecovery = s.eng.After(downtime, func() {
		s.pendingRecovery = des.Event{}
		s.recover(spaces, line, ok, failIter)
	})
}

// selectAndRestore finds the newest recovery line the storage tier can
// prove — every rank's chain fetched, integrity-checked and decoded —
// and restores it. Verification races ongoing sink decay (a replica's
// op-countdown outage can land between proving a line and reading it
// back), so a read failure re-verifies against the shifted world and
// falls down to the next surviving line instead of aborting the run.
// Returns nil spaces when no line survives (scratch restart), plus the
// virtual time the winning chain read costs.
func (s *Supervisor) selectAndRestore() (spaces []*mem.AddressSpace, line uint64, ok bool, readTime des.Time) {
	if s.ml != nil {
		return s.selectAndRestoreTiered()
	}
	// Under two-phase commit only lines with a verified COMMIT marker
	// may be trusted; otherwise the newest fully verifiable line wins.
	latest := ckpt.LatestVerifiableSeq
	if s.cfg.TwoPhaseCommit {
		latest = ckpt.LatestCommittedSeq
	}
	for attempt := 0; attempt <= len(s.lineIter)+1; attempt++ {
		var err error
		line, ok, err = latest(s.store, s.cfg.Ranks)
		if err != nil {
			s.fail(err)
			return nil, 0, false, 0
		}
		if !ok {
			return nil, 0, false, 0
		}
		var chain uint64
		for r := 0; r < s.cfg.Ranks; r++ {
			v, err := ckpt.ChainVolume(s.store, r, line)
			if err != nil {
				chain = 0
				break
			}
			chain += v
		}
		if chain == 0 {
			continue // line decayed under us: re-verify
		}
		spaces, err = ckpt.RestoreAll(s.store, s.cfg.Ranks, line)
		if err != nil {
			continue
		}
		return spaces, line, true, s.cfg.Sink.WriteTime(chain) // read ≈ write bandwidth
	}
	// Every candidate decayed faster than we could read it.
	return nil, 0, false, 0
}

// recover rebuilds the team around the restored spaces (nil → scratch
// restart when no verifiable checkpoint survived).
func (s *Supervisor) recover(spaces []*mem.AddressSpace, line uint64, haveLine bool, failIter int) {
	if s.report.Completed || s.failed != nil {
		return
	}
	startIter := 0
	if haveLine {
		startIter = s.lineIter[line]
	}
	s.lastLineIter = startIter
	s.report.LostIterations += failIter - startIter
	s.closeFailureRecords(startIter)
	t, err := s.buildTeam(spaces, startIter)
	if err != nil {
		s.fail(err)
		return
	}
	s.cur = t
	// One completed recovery covers every failure absorbed since the
	// last one (nested failures redo the same recovery), so on success
	// Recoveries == Failures still holds.
	s.report.Recoveries += s.unrecovered
	s.unrecovered = 0
	if s.pendingDegraded {
		s.report.DegradedRecoveries++
		s.pendingDegraded = false
	}
	s.startTeam()
}

// closeFailureRecords completes the lost-work record of every failure
// this recovery absorbs (the last s.unrecovered FailureLog entries):
// where recovery landed, what each failure cost, and — once per batch —
// how many committed lines the rollback wasted. A line is wasted when it
// captured an iteration past the restored point: its commit was paid but
// recovery could not (or will never) use it. Each seq is charged to at
// most one failure, and replayed work commits fresh seqs, so re-taken
// lines are never double-counted.
func (s *Supervisor) closeFailureRecords(startIter int) {
	wasted := 0
	for seq, iter := range s.lineIter {
		if iter > startIter && !s.wastedSeqs[seq] {
			s.wastedSeqs[seq] = true
			wasted++
		}
	}
	s.report.WastedCheckpoints += wasted
	n := len(s.report.FailureLog)
	batch := s.unrecovered
	if batch > n {
		batch = n
	}
	for i := n - batch; i < n; i++ {
		ev := &s.report.FailureLog[i]
		ev.RestoredIter = startIter
		ev.LostIterations = ev.Iter - startIter
		ev.Downtime = s.eng.Now() - ev.At
		if i == n-batch {
			ev.WastedCheckpoints = wasted
		}
	}
}

func (s *Supervisor) fail(err error) {
	s.failed = err
	s.eng.Stop()
}
