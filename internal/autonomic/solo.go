package autonomic

import (
	"fmt"

	"repro/internal/ckptspec"
	"repro/internal/des"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// SoloKernel is the face a single-address-space kernel presents to the
// supervisor: stepped iteration, solution export, and spec bindings.
// All of kernels' single-space types (Stencil2D, SSOR, Wavefront, ADI,
// FFT) satisfy it structurally.
type SoloKernel interface {
	Step() error
	Iter() int
	Values() ([]float64, error)
	ProtectionBindings() []ckptspec.Binding
}

// SoloFactory supervises a single-space kernel on rank 0, adapting it
// to the distributed Computation contract so solo kernels run under
// the same checkpoint/crash/restore/replay machinery as the MPI
// workloads — the vehicle for per-kernel spec ablations.
type SoloFactory struct {
	// ComputeTime is the virtual cost of one step.
	ComputeTime des.Time
	// Build constructs the kernel fresh in space.
	Build func(space *mem.AddressSpace) (SoloKernel, error)
	// Rebind re-attaches the kernel over a restored space at iter.
	Rebind func(space *mem.AddressSpace, iter int) (SoloKernel, error)
}

// New implements Factory.
func (f SoloFactory) New(eng *des.Engine, world *mpi.World) (Computation, error) {
	k, err := f.Build(world.Rank(0).Space())
	if err != nil {
		return nil, err
	}
	return &soloComputation{eng: eng, k: k, computeT: f.ComputeTime}, nil
}

// Attach implements Factory.
func (f SoloFactory) Attach(eng *des.Engine, world *mpi.World, iter int) (Computation, error) {
	if f.Rebind == nil {
		return nil, fmt.Errorf("autonomic: solo factory has no Rebind")
	}
	k, err := f.Rebind(world.Rank(0).Space(), iter)
	if err != nil {
		return nil, err
	}
	return &soloComputation{eng: eng, k: k, computeT: f.ComputeTime}, nil
}

// soloComputation steps the kernel synchronously and pays ComputeTime
// of virtual time per iteration, mirroring the Dist* iterate shape.
type soloComputation struct {
	eng      *des.Engine
	k        SoloKernel
	computeT des.Time

	target  int
	onIter  func(iter int, next func())
	onDone  func()
	stopped bool
}

// Run implements Computation.
func (s *soloComputation) Run(target int, onIter func(iter int, next func()), onDone func()) {
	s.target, s.onIter, s.onDone = target, onIter, onDone
	s.iterate()
}

func (s *soloComputation) iterate() {
	if s.stopped {
		return
	}
	if s.k.Iter() >= s.target {
		if s.onDone != nil {
			s.onDone()
		}
		return
	}
	if err := s.k.Step(); err != nil {
		panic(fmt.Sprintf("autonomic: solo step: %v", err))
	}
	s.eng.After(s.computeT, func() {
		if s.stopped {
			return
		}
		next := func() {
			if !s.stopped {
				s.iterate()
			}
		}
		if s.onIter != nil {
			s.onIter(s.k.Iter(), next)
			return
		}
		next()
	})
}

// Stop implements Computation.
func (s *soloComputation) Stop() { s.stopped = true }

// Iter implements Computation.
func (s *soloComputation) Iter() int { return s.k.Iter() }

// Gather implements Computation.
func (s *soloComputation) Gather() ([]float64, error) { return s.k.Values() }

// ProtectionBindings implements SpecBound; rank is always 0 for a solo
// computation.
func (s *soloComputation) ProtectionBindings(rank int) []ckptspec.Binding {
	if rank != 0 {
		return nil
	}
	return s.k.ProtectionBindings()
}
