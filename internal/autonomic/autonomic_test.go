package autonomic

import (
	"math"
	"repro/internal/kernels"
	"testing"

	"repro/internal/des"
)

// referenceChecksum runs the computation with no failures and no
// checkpoint overhead variation — the ground truth answer.
func referenceChecksum(t *testing.T, cfg Config) float64 {
	t.Helper()
	clean := cfg
	clean.MTBF = 0
	rep, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("reference run did not complete")
	}
	return rep.Checksum
}

func baseConfig() Config {
	return Config{
		Ranks:       4,
		Nx:          32,
		RowsPerRank: 8,
		Boundary:    9,
		Iterations:  40,
		CkptEvery:   5,
		ComputeTime: 200 * des.Millisecond,
		Seed:        3,
	}
}

func TestRunWithoutFailures(t *testing.T) {
	rep, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Iterations != 40 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Failures != 0 || rep.Recoveries != 0 || rep.LostIterations != 0 {
		t.Fatalf("phantom failures: %+v", rep)
	}
	// Efficiency below 1 (checkpoint commits) but high.
	if rep.Efficiency <= 0.5 || rep.Efficiency >= 1 {
		t.Fatalf("efficiency = %v", rep.Efficiency)
	}
	if rep.CheckpointVolumeMB <= 0 || rep.CommitTime <= 0 {
		t.Fatalf("checkpoint accounting: %+v", rep)
	}
	if rep.Checksum == 0 {
		t.Fatal("no checksum")
	}
}

func TestSelfHealingExactness(t *testing.T) {
	cfg := baseConfig()
	want := referenceChecksum(t, cfg)

	// MTBF of ~3 s against an ~8+ s run: several failures guaranteed.
	cfg.MTBF = 3 * des.Second
	cfg.RestartOverhead = 500 * des.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("supervised run did not complete")
	}
	if rep.Failures == 0 {
		t.Fatal("no failures injected — test proves nothing")
	}
	if rep.Recoveries != rep.Failures {
		t.Fatalf("failures %d != recoveries %d", rep.Failures, rep.Recoveries)
	}
	// The headline: failures leave NO trace in the answer.
	if rep.Checksum != want {
		t.Fatalf("checksum after %d failures: %v != reference %v", rep.Failures, rep.Checksum, want)
	}
	// Failures cost time: efficiency below the failure-free run's.
	clean, _ := Run(baseConfig())
	if rep.Efficiency >= clean.Efficiency {
		t.Fatalf("efficiency with failures (%v) not below clean (%v)", rep.Efficiency, clean.Efficiency)
	}
	if rep.LostIterations == 0 {
		t.Fatal("no lost work recorded despite failures")
	}
	// Lost work per failure bounded by the checkpoint cadence.
	if rep.LostIterations > rep.Failures*cfg.CkptEvery {
		t.Fatalf("lost %d iterations over %d failures with cadence %d",
			rep.LostIterations, rep.Failures, cfg.CkptEvery)
	}
}

func TestFailureBeforeFirstCheckpoint(t *testing.T) {
	cfg := baseConfig()
	cfg.Iterations = 12
	cfg.CkptEvery = 50 // never checkpoints mid-run (only the final one)
	want := referenceChecksum(t, cfg)
	// Force an early failure: tiny MTBF for the first hit, but the
	// run is short so usually one failure before any checkpoint.
	cfg.MTBF = 1500 * des.Millisecond
	cfg.RestartOverhead = 100 * des.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if rep.Checksum != want {
		t.Fatalf("restart-from-scratch checksum %v != %v", rep.Checksum, want)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.MTBF = 2 * des.Second
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.Elapsed != b.Elapsed || a.Checksum != b.Checksum {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestValidation(t *testing.T) {
	bad := baseConfig()
	bad.Ranks = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative ranks accepted")
	}
	bad = baseConfig()
	bad.Nx = 2
	if _, err := Run(bad); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestEfficiencyDegradesWithFailureRate(t *testing.T) {
	effAt := func(mtbf des.Time) float64 {
		cfg := baseConfig()
		cfg.MTBF = mtbf
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Completed {
			t.Fatal("incomplete")
		}
		return rep.Efficiency
	}
	healthy := effAt(60 * des.Second)
	sick := effAt(2 * des.Second)
	if sick >= healthy {
		t.Fatalf("efficiency at 2s MTBF (%v) not below 60s MTBF (%v)", sick, healthy)
	}
	if math.IsNaN(healthy) || math.IsNaN(sick) {
		t.Fatal("NaN efficiency")
	}
}

// The supervisor is workload-agnostic: the pipelined wavefront heals
// exactly like the stencil.
func TestSelfHealingWavefront(t *testing.T) {
	cfg := Config{
		Workload:    WavefrontFactory{Nx: 24, RowsPerRank: 6, Seed: 5, ComputeTime: 50 * des.Millisecond},
		Ranks:       4,
		Iterations:  30,
		CkptEvery:   4,
		ComputeTime: 50 * des.Millisecond,
		Seed:        21,
	}
	want := referenceChecksum(t, cfg)
	// Pipelined iterations at 4 ranks cost ~2*4*50ms = 400ms; 30
	// iterations ≈ 12s. MTBF 4s → a few failures.
	cfg.MTBF = 4 * des.Second
	cfg.RestartOverhead = 300 * des.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Failures == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Checksum != want {
		t.Fatalf("wavefront healed checksum %v != %v", rep.Checksum, want)
	}
	// Cross-check against the sequential reference implementation.
	ref := kernelsReferenceSum(24, 6, 4, 30, 5)
	if rep.Checksum != ref {
		t.Fatalf("checksum %v != sequential reference %v", rep.Checksum, ref)
	}
}

func kernelsReferenceSum(nx, rows, ranks, iters int, seed float64) float64 {
	var sum float64
	for _, v := range kernels.WavefrontReference(nx, rows, ranks, iters, seed) {
		sum += v
	}
	return sum
}
