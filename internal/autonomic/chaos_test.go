package autonomic

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/des"
	"repro/internal/storage"
)

// chaosBaseConfig is the grid the equivalence suite runs: small enough
// to keep the suite fast, slow enough (nfs-class sink, 200ms sweeps)
// that commit windows are wide targets for mid-commit kills.
func chaosBaseConfig(seed uint64) Config {
	return Config{
		Ranks: 4, Nx: 32, RowsPerRank: 8, Boundary: 9,
		Iterations: 40, CkptEvery: 5,
		ComputeTime:     200 * des.Millisecond,
		RestartOverhead: 500 * des.Millisecond,
		Sink:            storage.Model{Name: "nfs-class", Latency: 5 * des.Millisecond, Bandwidth: 2e4},
		Seed:            seed,
	}
}

// chaosSchedules are the fault scenarios the acceptance criteria name:
// plain crashes, crashes aimed inside two-phase commit windows, a
// network partition with a correlated crash plus a storage brownout,
// and silent bit flips with a crash to force recovery through the
// corrupted store.
var chaosSchedules = []struct {
	name     string
	text     string
	twoPhase bool
}{
	{"crash", "crash at 1500ms..6s count 2 jitter 400ms", false},
	{"commit-crash", "commit-crash at 1s..30s count 2", true},
	{"partition-brownout",
		"partition at 2s..4s drop 0.9 group a\n" +
			"crash at 2s..4s group a\n" +
			"storage-brownout at 5s..7s rate 0.4",
		false},
	{"bitflip", "bitflip at 2s..9s count 4\ncrash at 3s..8s count 1", false},
}

var chaosSeeds = []uint64{3, 5, 9}

// TestChaosReplayEquivalence is the issue's acceptance test: for every
// seed × schedule, the run torn apart by the chaos plan and stitched
// back together by restore-and-replay must finish in the bit-identical
// final state — per-rank address-space digests and solution checksum —
// of a failure-free run of the same seed, with non-zero lost-work
// accounting attached to every injected failure.
func TestChaosReplayEquivalence(t *testing.T) {
	for _, sc := range chaosSchedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			sched, err := chaos.ParseSchedule(sc.text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, seed := range chaosSeeds {
				cfg := chaosBaseConfig(seed)
				cfg.TwoPhaseCommit = sc.twoPhase
				out, err := ValidateReplay(cfg, sched)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rep := out.Injected
				if !rep.Completed {
					t.Fatalf("seed %d: injected run did not complete", seed)
				}
				if rep.Failures == 0 {
					t.Fatalf("seed %d: chaos plan injected no failures — test proves nothing", seed)
				}
				if !out.ChecksumMatch {
					t.Errorf("seed %d: checksum %v != reference %v",
						seed, rep.Checksum, out.Reference.Checksum)
				}
				if !out.DigestsMatch {
					t.Errorf("seed %d: final address-space digests diverge: %x vs %x",
						seed, rep.SpaceDigests, out.Reference.SpaceDigests)
				}
				if len(rep.FailureLog) != rep.Failures {
					t.Fatalf("seed %d: %d failures but %d log entries",
						seed, rep.Failures, len(rep.FailureLog))
				}
				for i, ev := range rep.FailureLog {
					// Every failure must cost something measurable: replayed
					// iterations, downtime, or a wasted checkpoint line.
					if ev.LostIterations == 0 && ev.Downtime == 0 && ev.WastedCheckpoints == 0 {
						t.Errorf("seed %d: failure %d at %v has zero lost-work accounting", seed, i, ev.At)
					}
					if ev.Downtime <= 0 {
						t.Errorf("seed %d: failure %d downtime %v, want > 0", seed, i, ev.Downtime)
					}
					if ev.LostIterations != ev.Iter-ev.RestoredIter {
						t.Errorf("seed %d: failure %d lost %d != iter %d - restored %d",
							seed, i, ev.LostIterations, ev.Iter, ev.RestoredIter)
					}
				}
			}
		})
	}
}

// TestChaosCommitCrash pins the mid-commit kill path: the driver aims a
// crash strictly inside a two-phase prepare→commit window, the torn
// round aborts (no COMMIT marker, segments deleted), and recovery falls
// back to the previous committed line — yet the replay still converges
// to the bit-exact reference.
func TestChaosCommitCrash(t *testing.T) {
	sched, err := chaos.ParseSchedule("commit-crash at 1s..30s count 2")
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, seed := range chaosSeeds {
		cfg := chaosBaseConfig(seed)
		cfg.TwoPhaseCommit = true
		out, err := ValidateReplay(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Stats.CommitCrashes == 0 {
			continue
		}
		hit = true
		rep := out.Injected
		if rep.AbortedCommits == 0 {
			t.Errorf("seed %d: %d commit crashes but no aborted commits", seed, out.Stats.CommitCrashes)
		}
		var during int
		for _, ev := range rep.FailureLog {
			if ev.DuringCommit {
				during++
			}
		}
		if during == 0 {
			t.Errorf("seed %d: no failure recorded as during-commit", seed)
		}
		if !out.BitExact() {
			t.Errorf("seed %d: commit-crash replay not bit-exact", seed)
		}
	}
	if !hit {
		t.Fatal("no seed produced a mid-commit kill — widen the schedule window")
	}
}

// TestChaosBitFlipDegradesRecovery pins the silent-corruption path: bit
// flips land below the integrity envelope, so recovery's verification
// pass rejects the damaged line and falls back — a degraded recovery —
// while the final state stays bit-exact.
func TestChaosBitFlipDegradesRecovery(t *testing.T) {
	sched, err := chaos.ParseSchedule(
		"bitflip at 2s..9s count 6\ncrash at 9s..10s count 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds {
		out, err := ValidateReplay(chaosBaseConfig(seed), sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Stats.BitFlips == 0 {
			t.Errorf("seed %d: no stored bit flipped — schedule window misses the store's lifetime", seed)
		}
		if out.Injected.DegradedRecoveries == 0 {
			t.Errorf("seed %d: flips never forced a degraded recovery", seed)
		}
		if !out.BitExact() {
			t.Errorf("seed %d: bit-flip replay not bit-exact", seed)
		}
	}
}

// TestChaosDeterminism pins the engine's own contract: the same seed and
// schedule must produce byte-for-byte identical reports — same failure
// instants, same recovery landings, same digests.
func TestChaosDeterminism(t *testing.T) {
	sched, err := chaos.ParseSchedule(chaosSchedules[2].text)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *ReplayOutcome {
		out, err := ValidateReplay(chaosBaseConfig(7), sched)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Injected.Failures != b.Injected.Failures ||
		a.Injected.Elapsed != b.Injected.Elapsed ||
		a.Injected.Checksum != b.Injected.Checksum {
		t.Fatalf("same seed, different runs: %+v vs %+v", a.Injected, b.Injected)
	}
	for i := range a.Injected.FailureLog {
		if a.Injected.FailureLog[i] != b.Injected.FailureLog[i] {
			t.Fatalf("failure %d diverges: %+v vs %+v",
				i, a.Injected.FailureLog[i], b.Injected.FailureLog[i])
		}
	}
}
