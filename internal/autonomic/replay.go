package autonomic

// Crash–restore–replay equivalence validation: the end-to-end claim of
// the whole checkpointing stack is that a run torn apart by failures —
// node crashes, crashes aimed inside commit windows, network partitions,
// storage outages, silent at-rest bit flips — and stitched back together
// by restore-and-replay finishes in the *bit-identical* process image of
// a run that never failed. ValidateReplay measures that claim directly:
// it runs the same seeded configuration twice, once failure-free and
// once under a compiled chaos plan, and compares final per-rank address
// space digests and the gathered solution checksum.

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/des"
	"repro/internal/storage"
)

// ReplayOutcome is the verdict of one equivalence validation.
type ReplayOutcome struct {
	// Reference is the failure-free run's report.
	Reference *Report
	// Injected is the chaos run's report.
	Injected *Report
	// Stats counts what the chaos driver actually injected.
	Stats chaos.Stats
	// Plan is the compiled fault plan the injected run executed.
	Plan *chaos.Plan
	// DigestsMatch reports that every rank's final address-space digest
	// is bit-identical between the two runs.
	DigestsMatch bool
	// ChecksumMatch reports that the gathered solution checksums are
	// bit-identical (exact float equality, not a tolerance).
	ChecksumMatch bool
}

// BitExact reports full replay equivalence: digests and checksum.
func (o *ReplayOutcome) BitExact() bool { return o.DigestsMatch && o.ChecksumMatch }

// ValidateReplay runs cfg once failure-free and once under the given
// chaos schedule (compiled with cfg.Seed), then compares the final
// states bit for bit. The injected run hosts the supervisor on a fresh
// engine bound to a chaos driver, with the driver's timed storage faults
// and bit flips interposed *below* an integrity envelope and a retry
// layer — flips surface as read-back corruption, outages as refusals the
// retries may or may not outlast. MTBF-driven Poisson failures are
// disabled in both runs so the plan is the sole failure source and every
// entry in the injected report's FailureLog is attributable to it.
func ValidateReplay(cfg Config, sched *chaos.Schedule) (*ReplayOutcome, error) {
	// Hardened stack with chaos interposed at the bottom: bit flips
	// corrupt enveloped bytes so IntegrityStore surfaces ErrCorrupt on
	// read-back; outage/brownout refusals bubble through the retry layer.
	return ValidateReplayStore(cfg, sched, func(_ *des.Engine, driver *chaos.Driver) storage.Store {
		return storage.NewResilientStore(
			storage.NewIntegrityStore(driver.WrapStore(storage.NewMemStore())),
			storage.DefaultRetryPolicy())
	})
}

// ValidateReplayStore is ValidateReplay with a caller-supplied storage
// stack for the injected run: build receives the injected run's engine
// and chaos driver and returns the store the supervisor writes through.
// This is how alternative sinks — a networked checkpoint-store service,
// a mirror group — are put under the same bit-exactness contract as the
// default hardened stack: the reference run keeps the pristine in-memory
// store, so any acked-but-lost write in the injected stack shows up as a
// digest divergence.
func ValidateReplayStore(cfg Config, sched *chaos.Schedule, build func(*des.Engine, *chaos.Driver) storage.Store) (*ReplayOutcome, error) {
	plan, err := sched.Compile(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("autonomic: replay validation: %w", err)
	}

	ref := cfg
	ref.MTBF = 0
	ref.NetFaults = nil
	ref.Store = nil
	ref.Engine = nil
	ref.Chaos = nil
	refReport, err := Run(ref)
	if err != nil {
		return nil, fmt.Errorf("autonomic: reference run: %w", err)
	}

	eng := des.NewEngine()
	if cfg.Shards > 1 {
		eng = des.NewGroup(cfg.Shards).Control()
	}
	driver := chaos.NewDriver(eng, plan)
	inj := cfg
	inj.MTBF = 0
	inj.Engine = eng
	inj.Chaos = driver
	inj.Store = build(eng, driver)
	injReport, err := Run(inj)
	if err != nil {
		return nil, fmt.Errorf("autonomic: injected run: %w", err)
	}

	out := &ReplayOutcome{
		Reference:     refReport,
		Injected:      injReport,
		Stats:         driver.Stats(),
		Plan:          plan,
		ChecksumMatch: refReport.Checksum == injReport.Checksum,
		DigestsMatch:  len(refReport.SpaceDigests) == len(injReport.SpaceDigests),
	}
	if out.DigestsMatch {
		for i, d := range refReport.SpaceDigests {
			if injReport.SpaceDigests[i] != d {
				out.DigestsMatch = false
				break
			}
		}
	}
	return out, nil
}
