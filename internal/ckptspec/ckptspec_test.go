package ckptspec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mem"
)

func sample() *Spec {
	return &Spec{
		Package: "repro/internal/kernels",
		Regions: []Region{
			{Name: "SSOR.work", Class: Recomputable, Reason: "staging scratch: written before read in every sweep"},
			{Name: "SSOR.u", Class: Must, Reason: "live across iterations"},
			{Name: "DistPut.arenas", Class: Unknown, Reason: "raw mem.Region arena"},
		},
	}
}

func TestEncodeCanonical(t *testing.T) {
	s := sample()
	enc := s.Encode()
	// Input order above is not sorted; Encode must canonicalise without
	// mutating the caller's slice.
	if s.Regions[0].Name != "SSOR.work" {
		t.Fatalf("Encode mutated caller's region order")
	}
	lines := strings.Split(strings.TrimSuffix(string(enc), "\n"), "\n")
	want := []string{
		"package repro/internal/kernels",
		"region DistPut.arenas unknown raw mem.Region arena",
		"region SSOR.u must live across iterations",
		"region SSOR.work recomputable staging scratch: written before read in every sweep",
	}
	if len(lines) != len(want)+1 || !strings.HasPrefix(lines[0], "# ckptspec v1") {
		t.Fatalf("unexpected encoding:\n%s", enc)
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("line %d = %q, want %q", i+1, lines[i+1], w)
		}
	}
	if !bytes.Equal(enc, s.Encode()) {
		t.Fatalf("Encode not deterministic")
	}
}

func TestParseRoundTrip(t *testing.T) {
	enc := sample().Encode()
	got, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", got.Encode(), enc)
	}
	if r, ok := got.Lookup("SSOR.work"); !ok || r.Class != Recomputable {
		t.Fatalf("Lookup(SSOR.work) = %+v, %v", r, ok)
	}
	if _, ok := got.Lookup("nope"); ok {
		t.Fatalf("Lookup of absent name succeeded")
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"",                                    // no package line
		"region X.y must why",                 // region without package
		"package a\npackage b",                // duplicate package
		"package a\nregion X.y sometimes why", // bad class
		"package a\nregion X.y must",          // missing reason
		"package a\nwhat is this",             // unknown directive
		"package a\nregion B.b must r\nregion A.a must r", // out of canonical order
		"package a\nregion A.a must r\nregion A.a must r", // duplicate name
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestClassProtected(t *testing.T) {
	if !Must.Protected() || !Unknown.Protected() || Recomputable.Protected() {
		t.Fatalf("Protected lattice wrong: must=%v unknown=%v recomputable=%v",
			Must.Protected(), Unknown.Protected(), Recomputable.Protected())
	}
	for _, c := range []Class{Must, Recomputable, Unknown} {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Fatalf("ParseClass(%v.String()) = %v, %v", c, back, err)
		}
	}
}

func TestRecomputableSelection(t *testing.T) {
	sp := mem.NewAddressSpace(mem.Config{PageSize: 4096})
	r1, err := sp.Mmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sp.Mmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	s := sample()
	got := s.Recomputable([]Binding{
		{Name: "SSOR.u", Region: r1},
		{Name: "SSOR.work", Region: r2},
		{Name: "SSOR.work", Region: nil}, // unbound slot: skipped
		{Name: "unlisted.x", Region: r1}, // absent from spec: protected
	})
	if len(got) != 1 || got[0].Region != r2 {
		t.Fatalf("Recomputable = %+v, want just SSOR.work", got)
	}
}
