// Package core is the library's high-level entry point, tying the
// substrates together into the two operations a user wants:
//
//   - Measure: run one of the paper's applications under the
//     instrumentation library and obtain its Incremental Working Set /
//     Incremental Bandwidth profile plus the feasibility verdict of §6.3
//     (how much headroom the network and disk sinks have over the
//     measured requirement).
//
//   - Protect: run an application under coordinated incremental
//     checkpointing across all ranks and obtain the checkpoint volumes,
//     commit latencies and copy-on-write traffic.
//
// Lower-level control (custom workloads, real kernels, restore, failure
// simulation) is available from the subsystem packages: workload,
// tracker, ckpt, kernels, cluster, experiments.
package core

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/tracker"
	"repro/internal/workload"
)

// MB is the paper's megabyte (10^6 bytes).
const MB = 1e6

// Apps returns the names of the built-in application models, in the
// paper's Table 2 order.
func Apps() []string {
	specs := workload.All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// MeasureConfig configures a Measure run.
type MeasureConfig struct {
	// App names one of Apps(). Required.
	App string
	// Ranks is the MPI process count (0 → the paper's 64).
	Ranks int
	// Timeslice is the checkpoint timeslice (0 → 1 s).
	Timeslice des.Time
	// Periods is the minimum number of whole iterations measured
	// (0 → 3).
	Periods int
	// Seed makes runs reproducible (0 → a fixed default).
	Seed uint64
	// IncludeInit keeps the data-initialization burst in the series
	// (summaries are computed either way on the post-init window).
	IncludeInit bool
	// Shards runs the simulation across parallel event shards (0 or 1 →
	// sequential). Results are bit-identical at every shard count.
	Shards int
}

// MeasureResult is the instrumentation profile of one run.
type MeasureResult struct {
	App       string
	Ranks     int
	Timeslice des.Time

	// AvgIBMBs and MaxIBMBs summarise the Incremental Bandwidth in MB/s
	// with the initialization burst excluded — Table 4's quantities.
	AvgIBMBs, MaxIBMBs float64
	// AvgFootprintMB and MaxFootprintMB are Table 2's quantities.
	AvgFootprintMB, MaxFootprintMB float64
	// Slowdown is the modelled instrumentation overhead (§6.5).
	Slowdown float64
	// NetworkHeadroom and DiskHeadroom are available/required bandwidth
	// ratios against the paper's QsNet and SCSI sinks; above 1 means
	// checkpointing keeps up (§6.3).
	NetworkHeadroom, DiskHeadroom float64

	// Raw per-timeslice series (MB, MB/s, MB, MB).
	IWS, IB, Recv, Footprint *metrics.Series
}

// Feasible reports whether the measured average requirement fits within
// both the network and the disk sink.
func (m *MeasureResult) Feasible() bool {
	return m.NetworkHeadroom > 1 && m.DiskHeadroom > 1
}

// Measure runs the named application under the tracker and returns its
// incremental-checkpointing profile.
func Measure(cfg MeasureConfig) (*MeasureResult, error) {
	spec, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	run, err := experiments.RunOne(spec, experiments.RunOpts{
		Ranks:       cfg.Ranks,
		Timeslice:   cfg.Timeslice,
		Periods:     cfg.Periods,
		Seed:        cfg.Seed,
		IncludeInit: cfg.IncludeInit,
		Shards:      cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	ibWindow := run.IB
	if cfg.IncludeInit {
		ibWindow = run.IB.After(run.IterZero.Seconds() + run.Opts.Timeslice.Seconds())
	}
	ib := metrics.Summarize(ibWindow)
	fp := run.FootprintSummary()
	return &MeasureResult{
		App:             spec.Name,
		Ranks:           run.Opts.Ranks,
		Timeslice:       run.Opts.Timeslice,
		AvgIBMBs:        ib.Mean,
		MaxIBMBs:        ib.Max,
		AvgFootprintMB:  fp.Mean,
		MaxFootprintMB:  fp.Max,
		Slowdown:        run.Slowdown,
		NetworkHeadroom: storage.QsNetSink().Headroom(ib.Mean * MB),
		DiskHeadroom:    storage.SCSISink().Headroom(ib.Mean * MB),
		IWS:             run.IWS,
		IB:              run.IB,
		Recv:            run.Recv,
		Footprint:       run.Footprint,
	}, nil
}

// ProtectConfig configures a Protect run.
type ProtectConfig struct {
	// App names one of Apps(). Required.
	App string
	// Ranks is the MPI process count (0 → 8; coordinated
	// checkpointing tracks every rank, so this is the cost knob).
	Ranks int
	// Interval is the coordinated checkpoint interval (0 → 10 s).
	Interval des.Time
	// FullEvery forces a full checkpoint every N checkpoints
	// (0 → only the first).
	FullEvery int
	// Periods is the number of whole iterations to protect (0 → 2).
	Periods int
	// Seed makes runs reproducible.
	Seed uint64
	// Sink models the stable-storage write cost (zero → SCSI).
	Sink storage.Model
	// Store receives the encoded segments (nil → a fresh in-memory
	// store). Pass a storage.FileStore to persist checkpoints on disk
	// for inspection with cmd/ckptinspect.
	Store storage.Store
	// TrackCow enables copy-on-write accounting during drains.
	TrackCow bool
	// Adaptive aligns checkpoint triggers to quiet communication
	// windows detected from the live IWS signal (§6.2/§8), instead of
	// the fixed Interval cadence. The mean cadence stays at Interval.
	Adaptive bool
	// Shards runs the simulation across parallel event shards (0 or 1 →
	// sequential). Incompatible with Adaptive, whose rank-0 tracker
	// feeds a controller that must observe every rank.
	Shards int
}

// ProtectResult summarises a protected run.
type ProtectResult struct {
	App         string
	Ranks       int
	Interval    des.Time
	Checkpoints int
	// TotalMB is the page payload persisted across all ranks and
	// checkpoints; MeanPerCkptMB is the per-global-checkpoint mean.
	TotalMB       float64
	MeanPerCkptMB float64
	// MaxCommitS is the worst global commit latency (slowest rank).
	MaxCommitS float64
	// CowMB is the copy-on-write traffic (TrackCow only).
	CowMB float64
	// ExcludedMB is the data saved by memory exclusion.
	ExcludedMB float64
	// Globals holds the raw coordinated-checkpoint results.
	Globals []ckpt.GlobalResult
}

// Protect runs the named application with coordinated incremental
// checkpointing on every rank.
func Protect(cfg ProtectConfig) (*ProtectResult, error) {
	spec, err := workload.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = 8
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * des.Second
	}
	if cfg.Periods == 0 {
		cfg.Periods = 2
	}
	if cfg.Adaptive && cfg.Shards > 1 {
		return nil, fmt.Errorf("core: Adaptive and Shards are incompatible (the aligner's tracker signal is rank-0-local)")
	}
	r, err := workload.New(spec, workload.Config{Ranks: cfg.Ranks, Seed: cfg.Seed, Shards: cfg.Shards})
	if err != nil {
		return nil, err
	}
	r.Run(r.InitTail())
	for r.IterZero() == 0 {
		if !r.Eng.Step() {
			return nil, fmt.Errorf("core: %s never started iterating", spec.Name)
		}
	}
	store := cfg.Store
	if store == nil {
		store = storage.NewMemStore()
	}
	var cps []*ckpt.Checkpointer
	for i := 0; i < cfg.Ranks; i++ {
		// Per-rank checkpointers bind to the rank's engine; the
		// coordinator below lives on r.Eng (the control engine in a
		// sharded run), so global checkpoints execute at serial
		// instants with every shard parked and all clocks unified.
		c, err := ckpt.NewCheckpointer(r.EngineFor(i), r.Space(i), ckpt.Options{
			Rank:      i,
			Store:     store,
			Sink:      cfg.Sink,
			FullEvery: cfg.FullEvery,
			TrackCow:  cfg.TrackCow,
		})
		if err != nil {
			return nil, err
		}
		c.Exclude(r.World.BounceRegion(i))
		c.Start()
		cps = append(cps, c)
	}
	co, err := ckpt.NewCoordinator(r.Eng, cps)
	if err != nil {
		return nil, err
	}
	if cfg.Adaptive {
		// Quiet-window alignment: a 1 s tracker on rank 0 feeds the
		// aligner, which triggers global checkpoints.
		al, err := adaptive.New(r.Eng, adaptive.Options{Interval: cfg.Interval}, func() {
			if _, err := co.GlobalCheckpoint(); err != nil {
				panic(fmt.Sprintf("core: adaptive checkpoint: %v", err))
			}
		})
		if err != nil {
			return nil, err
		}
		tr, err := tracker.New(r.Eng, r.Space(0), tracker.Options{
			Timeslice: des.Second,
			OnSample:  al.Feed,
		})
		if err != nil {
			return nil, err
		}
		tr.Start()
		al.Start()
		defer tr.Stop()
	} else {
		co.StartInterval(cfg.Interval)
	}
	r.Run(r.Now() + des.Time(cfg.Periods)*spec.PeriodAt(cfg.Ranks))
	co.Stop()

	res := &ProtectResult{
		App:         spec.Name,
		Ranks:       cfg.Ranks,
		Interval:    cfg.Interval,
		Checkpoints: len(co.Results()),
		Globals:     co.Results(),
	}
	for _, g := range co.Results() {
		res.TotalMB += float64(g.TotalPageBytes) / MB
		if s := g.MaxDuration.Seconds(); s > res.MaxCommitS {
			res.MaxCommitS = s
		}
	}
	if res.Checkpoints > 0 {
		res.MeanPerCkptMB = res.TotalMB / float64(res.Checkpoints)
	}
	for _, c := range cps {
		st := c.Stats()
		res.CowMB += float64(st.CowCopyBytes) / MB
		res.ExcludedMB += float64(st.ExcludedPages) * float64(r.Space(0).PageSize()) / MB
	}
	return res, nil
}
