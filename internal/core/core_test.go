package core

import (
	"testing"

	"repro/internal/des"
)

func TestApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 9 {
		t.Fatalf("Apps = %v", apps)
	}
	if apps[0] != "Sage-1000MB" || apps[8] != "FT" {
		t.Fatalf("order: %v", apps)
	}
}

func TestMeasure(t *testing.T) {
	m, err := Measure(MeasureConfig{App: "LU", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.App != "LU" || m.Ranks != 4 || m.Timeslice != des.Second {
		t.Fatalf("config echo: %+v", m)
	}
	// LU: ~12.5 MB/s at 1 s; generous band at 4 ranks.
	if m.AvgIBMBs < 9 || m.AvgIBMBs > 17 {
		t.Fatalf("AvgIB = %.1f", m.AvgIBMBs)
	}
	if m.AvgFootprintMB < 14 || m.AvgFootprintMB > 20 {
		t.Fatalf("footprint = %.1f", m.AvgFootprintMB)
	}
	if !m.Feasible() {
		t.Fatal("LU must be feasible")
	}
	if m.NetworkHeadroom < m.DiskHeadroom {
		t.Fatal("network headroom must exceed disk headroom")
	}
	if m.Slowdown <= 0 || m.Slowdown > 0.10 {
		t.Fatalf("slowdown = %v", m.Slowdown)
	}
	if m.IWS.Len() == 0 || m.IB.Len() == 0 {
		t.Fatal("series missing")
	}
}

func TestMeasureIncludeInit(t *testing.T) {
	m, err := Measure(MeasureConfig{App: "SP", Ranks: 2, IncludeInit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Init writes at 400 MB/s; the summary must exclude it.
	if m.AvgIBMBs > 60 {
		t.Fatalf("init not excluded from summary: %.1f MB/s", m.AvgIBMBs)
	}
	if m.IWS.Points[0].T > 1.5 {
		t.Fatal("series does not start at t=0")
	}
}

func TestMeasureUnknownApp(t *testing.T) {
	if _, err := Measure(MeasureConfig{App: "nope"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestProtect(t *testing.T) {
	p, err := Protect(ProtectConfig{App: "LU", Ranks: 2, Interval: 2 * des.Second, Periods: 8, TrackCow: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d", p.Checkpoints)
	}
	if p.TotalMB <= 0 || p.MeanPerCkptMB <= 0 || p.MaxCommitS <= 0 {
		t.Fatalf("volumes: %+v", p)
	}
	// First global is full: LU footprint ~16.6 MB x 2 ranks; later
	// deltas are smaller. Mean per checkpoint stays below 2x footprint.
	if p.MeanPerCkptMB > 70 {
		t.Fatalf("per-checkpoint volume %.1f MB implausible", p.MeanPerCkptMB)
	}
	if len(p.Globals) != p.Checkpoints {
		t.Fatal("globals mismatch")
	}
}

func TestProtectUnknownApp(t *testing.T) {
	if _, err := Protect(ProtectConfig{App: "nope"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestProtectAdaptive(t *testing.T) {
	p, err := Protect(ProtectConfig{
		App: "Sage-50MB", Ranks: 2, Interval: 8 * des.Second,
		Periods: 3, Adaptive: true, TrackCow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Checkpoints < 3 {
		t.Fatalf("adaptive checkpoints = %d", p.Checkpoints)
	}
	// Quiet-window alignment keeps CoW traffic near zero.
	fixed, err := Protect(ProtectConfig{
		App: "Sage-50MB", Ranks: 2, Interval: 8 * des.Second,
		Periods: 3, TrackCow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.CowMB > 0 && p.CowMB > fixed.CowMB/2 {
		t.Fatalf("adaptive CoW %.1f MB not well below fixed %.1f MB", p.CowMB, fixed.CowMB)
	}
}
