package mem

import (
	"bytes"
	"testing"
)

func TestWriteDirectMarksSilentOnProtectedPages(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(4 * 4096)
	r.ProtectAll()

	data := bytes.Repeat([]byte{0xAB}, 4096+512)
	silent, err := s.WriteDirect(r.Start()+2048, data)
	if err != nil {
		t.Fatal(err)
	}
	if silent != uint64(len(data)) {
		t.Fatalf("silent bytes = %d, want %d (all pages protected)", silent, len(data))
	}
	if s.Faults() != 0 {
		t.Fatalf("DMA write delivered %d faults, want 0", s.Faults())
	}
	// The 4608-byte write at offset 2048 spans pages 0 and 1; both
	// must be silent and still protected.
	if got := r.SilentPages(); got != 2 {
		t.Fatalf("SilentPages = %d, want 2", got)
	}
	if !r.Protected(r.Start() + 2048) {
		t.Fatal("DMA write must not unprotect the page")
	}
	if want := uint64(2 * 4096); s.SilentDirtyBytes() != want {
		t.Fatalf("SilentDirtyBytes = %d, want %d", s.SilentDirtyBytes(), want)
	}
	// Contents landed despite the protection.
	buf := make([]byte, len(data))
	if err := s.Read(r.Start()+2048, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("DMA-written contents did not land")
	}
}

func TestWriteDirectUnprotectedIsNotSilent(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(2 * 4096)
	silent, err := s.WriteDirect(r.Start(), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if silent != 0 {
		t.Fatalf("silent bytes = %d on unprotected page, want 0", silent)
	}
	if got := s.SilentDirtyBytes(); got != 0 {
		t.Fatalf("SilentDirtyBytes = %d, want 0", got)
	}
}

func TestWriteRangeDirectCountsPartialPages(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(4 * 4096)
	r.ProtectAll()
	// Unprotect page 1 so only pages 0 and 2 of the span are silent.
	r.SetProtected(r.Start()+4096, false)

	silent, err := s.WriteRangeDirect(r.Start()+1024, 2*4096)
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 contributes 4096-1024 bytes, page 1 nothing, page 2 the
	// remaining 1024.
	if want := uint64(4096 - 1024 + 1024); silent != want {
		t.Fatalf("silent bytes = %d, want %d", silent, want)
	}
	if got := r.SilentPages(); got != 2 {
		t.Fatalf("SilentPages = %d, want 2", got)
	}
}

func TestFaultClearsSilent(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(2 * 4096)
	r.ProtectAll()
	if _, err := s.WriteDirect(r.Start(), []byte{9}); err != nil {
		t.Fatal(err)
	}
	if r.SilentPages() != 1 {
		t.Fatal("expected one silent page after DMA write")
	}
	// A CPU write faults, the handler unprotects, and the page is no
	// longer silent: the tracker has now seen it.
	s.SetFaultHandler(func(f Fault) { f.Region.SetProtected(f.Addr, false) })
	if err := s.Write(r.Start()+1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if r.SilentPages() != 0 {
		t.Fatalf("SilentPages = %d after fault, want 0", r.SilentPages())
	}
}

func TestReplaySilentDeliversSuppressedFaults(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(4 * 4096)
	r.ProtectAll()
	if _, err := s.WriteRangeDirect(r.Start(), 3*4096); err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	s.SetFaultHandler(func(f Fault) {
		seen = append(seen, f.Page)
		f.Region.SetProtected(f.Addr, false)
	})
	pages := s.ReplaySilent()
	if pages != 3 {
		t.Fatalf("ReplaySilent = %d pages, want 3", pages)
	}
	if len(seen) != 3 {
		t.Fatalf("handler saw %d faults, want 3", len(seen))
	}
	for i, pg := range seen {
		if want := r.Start() + uint64(i)*4096; pg != want {
			t.Fatalf("fault %d at %#x, want %#x (address order)", i, pg, want)
		}
	}
	if s.SilentDirtyBytes() != 0 {
		t.Fatal("silent bitmap not cleared by replay")
	}
	// Idempotent: nothing left to replay.
	if again := s.ReplaySilent(); again != 0 {
		t.Fatalf("second ReplaySilent = %d, want 0", again)
	}
}

func TestReplaySilentWithoutHandlerUnprotects(t *testing.T) {
	s := newBacked(t)
	r := s.MapData(4096)
	r.ProtectAll()
	if _, err := s.WriteDirect(r.Start(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if pages := s.ReplaySilent(); pages != 1 {
		t.Fatalf("ReplaySilent = %d, want 1", pages)
	}
	if r.Protected(r.Start()) {
		t.Fatal("handler-less replay must unprotect the page, not leave it torn")
	}
}

func TestSbrkPreservesSilentBitmap(t *testing.T) {
	s := newBacked(t)
	if _, err := s.Sbrk(4 * 4096); err != nil {
		t.Fatal(err)
	}
	h := s.Heap()
	h.ProtectAll()
	if _, err := s.WriteDirect(h.Start()+3*4096, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sbrk(2 * 4096); err != nil { // grow
		t.Fatal(err)
	}
	if h.SilentPages() != 1 || !h.SilentDirty(h.Start()+3*4096) {
		t.Fatal("grow lost the silent bit")
	}
	if _, err := s.Sbrk(-4 * 4096); err != nil { // shrink past the silent page
		t.Fatal(err)
	}
	if h.SilentPages() != 0 {
		t.Fatalf("shrink left %d silent pages beyond the break", h.SilentPages())
	}
}
