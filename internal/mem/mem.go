// Package mem simulates the virtual-memory subsystem the paper's
// instrumentation library relies on: a paged address space with per-page
// write protection, synchronous write-fault delivery, and the UNIX data
// memory areas (initialized data, BSS, heap grown with brk/sbrk, and
// mmap'ed arenas).
//
// The real system write-protects pages with mprotect and receives SIGSEGV
// on the first write; Go's runtime owns those mechanisms, so this package
// reproduces the semantics in a library: every write goes through
// AddressSpace.Write or AddressSpace.WriteRange, which checks the page's
// protection bit and synchronously invokes the registered fault handler
// before the write completes — exactly the ordering a SIGSEGV handler sees.
//
// Two backing modes are supported. In backed mode each page holds real
// bytes, so a checkpointer can save and restore genuine contents. In
// phantom mode pages carry no contents, only protection metadata, which
// lets full-scale experiments (64 ranks × 1 GB footprints) run in a few
// megabytes of host memory: the paper's feasibility metrics depend only on
// which pages are written when, never on the bytes themselves.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// DefaultPageSize is the 16 KB page size of the Itanium II systems used in
// the paper's evaluation.
const DefaultPageSize = 16 * 1024

// Kind classifies a mapped region, mirroring the UNIX process areas the
// paper enumerates in §4.1.
type Kind uint8

const (
	// Data is compile-time initialized data.
	Data Kind = iota
	// BSS is compile-time allocated, zero-filled data.
	BSS
	// Heap is the brk/sbrk-grown dynamic area.
	Heap
	// Mmap is a dynamically mapped arena (mmap/munmap).
	Mmap
	// Stack is the process stack. It cannot be write-protected: the
	// fault handler itself needs a writable stack (§4.2).
	Stack
)

// String returns the conventional name of the region kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case BSS:
		return "bss"
	case Heap:
		return "heap"
	case Mmap:
		return "mmap"
	case Stack:
		return "stack"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Checkpointable reports whether regions of this kind belong to the data
// memory the paper checkpoints (everything except the stack).
func (k Kind) Checkpointable() bool { return k != Stack }

// Errors returned by address-space operations.
var (
	// ErrSegv is returned when a write hits a protected page and the
	// fault handler leaves the page protected (or none is installed) —
	// the simulation analogue of an unhandled SIGSEGV.
	ErrSegv = errors.New("mem: segmentation violation")
	// ErrUnmapped is returned for accesses outside any live region.
	ErrUnmapped = errors.New("mem: address not mapped")
	// ErrBadRange is returned for ranges that cross region boundaries
	// or otherwise cannot be satisfied.
	ErrBadRange = errors.New("mem: bad address range")
)

// Fault describes a write access to a write-protected page, delivered to
// the fault handler before the write completes.
type Fault struct {
	// Addr is the faulting byte address.
	Addr uint64
	// Page is the page-aligned base address of the faulting page.
	Page uint64
	// Region is the region containing the page.
	Region *Region
}

// FaultHandler receives write faults. A handler that wants the write to
// proceed must unprotect the faulting page (Region.SetProtected(page,
// false)); if the page is still protected when the handler returns, the
// write fails with ErrSegv, like a re-raised signal.
type FaultHandler func(Fault)

// MapHook observes region lifetime. mapped is true when the region was
// just created and false when it was just unmapped. The paper's
// instrumentation library intercepts mmap/munmap the same way to keep its
// view of the footprint current (§4.1).
type MapHook func(r *Region, mapped bool)

// Config parameterises an AddressSpace.
type Config struct {
	// PageSize is the page size in bytes; it must be a power of two.
	// Zero selects DefaultPageSize.
	PageSize uint64
	// Phantom selects metadata-only pages (no contents).
	Phantom bool
}

// Layout constants. Addresses are synthetic; only page arithmetic matters.
const (
	dataBase  uint64 = 0x0000_4000_0000_0000
	heapBase  uint64 = 0x0000_6000_0000_0000
	mmapBase  uint64 = 0x0000_2000_0000_0000
	stackTop  uint64 = 0x0000_7fff_ffff_0000
	stackSize uint64 = 64 * 1024 // paper: max observed stack < 42 KB
)

// Region is a contiguous page-aligned mapping.
type Region struct {
	start uint64
	size  uint64 // bytes, multiple of page size
	kind  Kind

	space *AddressSpace
	wp    []uint64 // write-protect bitmap, one bit per page
	// silent marks pages a DMA write (WriteDirect) landed on while they
	// were write-protected: modified memory no fault handler ever saw —
	// the NIC-vs-mprotect conflict of §4.2 made observable. Allocated
	// lazily on the first silent write; a bit clears when a CPU fault is
	// finally delivered for the page (the tracker sees it after all) or
	// when the page is explicitly reconciled (ReplaySilent).
	silent []uint64
	data   [][]byte // per-page contents; nil slices until first backed write
	dead   bool
	seq    uint64 // creation sequence, distinguishes remaps at the same address
}

// Start returns the base address of the region.
func (r *Region) Start() uint64 { return r.start }

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return r.size }

// End returns one past the last mapped byte.
func (r *Region) End() uint64 { return r.start + r.size }

// Kind returns the region's classification.
func (r *Region) Kind() Kind { return r.kind }

// Dead reports whether the region has been unmapped.
func (r *Region) Dead() bool { return r.dead }

// Seq returns a unique creation sequence number; two regions mapped at the
// same address at different times have different Seq values.
func (r *Region) Seq() uint64 { return r.seq }

// Pages returns the number of pages in the region.
func (r *Region) Pages() uint64 { return r.size >> r.space.pageShift }

// PageIndex converts an address inside the region to a page index.
// The page size is a power of two, so this is a shift, not a hardware
// divide — it sits on the per-fault and per-write hot paths.
func (r *Region) PageIndex(addr uint64) uint64 {
	return (addr - r.start) >> r.space.pageShift
}

// PageAddr converts a page index to the page's base address.
func (r *Region) PageAddr(idx uint64) uint64 {
	return r.start + idx<<r.space.pageShift
}

// Protected reports whether the page holding addr is write-protected.
func (r *Region) Protected(addr uint64) bool {
	idx := r.PageIndex(addr)
	return r.wp[idx/64]&(1<<(idx%64)) != 0
}

// SetProtected sets or clears write protection on the page holding addr.
func (r *Region) SetProtected(addr uint64, protected bool) {
	idx := r.PageIndex(addr)
	if protected {
		r.wp[idx/64] |= 1 << (idx % 64)
	} else {
		r.wp[idx/64] &^= 1 << (idx % 64)
	}
}

// ProtectAll sets write protection on every page of the region.
func (r *Region) ProtectAll() {
	for i := range r.wp {
		r.wp[i] = ^uint64(0)
	}
	r.trimBitmap()
}

// UnprotectAll clears write protection on every page of the region.
func (r *Region) UnprotectAll() {
	for i := range r.wp {
		r.wp[i] = 0
	}
}

// anyProtected reports whether any page in [first, last] (inclusive page
// indexes) is write-protected, testing the bitmap a 64-page word at a time.
// It is the gate for the unprotected-write fast path: after the first
// fault of a timeslice unprotects a page, every later write to it answers
// this with at most three word loads and no per-page bit arithmetic.
func (r *Region) anyProtected(first, last uint64) bool {
	fw, lw := first/64, last/64
	if fw == lw {
		// (1<<64)-1 is all-ones under Go's shift semantics, so a full
		// 64-page span degrades gracefully.
		mask := (uint64(1)<<(last-first+1) - 1) << (first % 64)
		return r.wp[fw]&mask != 0
	}
	if r.wp[fw]>>(first%64) != 0 {
		return true
	}
	for w := fw + 1; w < lw; w++ {
		if r.wp[w] != 0 {
			return true
		}
	}
	return r.wp[lw]&(uint64(1)<<(last%64+1)-1) != 0
}

// trimBitmap clears bits beyond the last page so popcounts stay exact.
func (r *Region) trimBitmap() {
	n := r.Pages()
	if rem := n % 64; rem != 0 && len(r.wp) > 0 {
		r.wp[len(r.wp)-1] &= (1 << rem) - 1
	}
}

// ProtectedPages returns the number of currently protected pages.
func (r *Region) ProtectedPages() uint64 {
	var n uint64
	for _, w := range r.wp {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// markSilent records that a DMA write landed on protected page idx and
// reports whether the bit was newly set.
func (r *Region) markSilent(idx uint64) bool {
	if r.silent == nil {
		r.silent = make([]uint64, len(r.wp))
	}
	w, b := idx/64, uint64(1)<<(idx%64)
	if r.silent[w]&b != 0 {
		return false
	}
	r.silent[w] |= b
	return true
}

// clearSilent drops the silent mark on page idx, if any.
func (r *Region) clearSilent(idx uint64) {
	if r.silent != nil {
		r.silent[idx/64] &^= 1 << (idx % 64)
	}
}

// SilentDirty reports whether the page holding addr was modified by a
// DMA write without a fault ever being delivered for it.
func (r *Region) SilentDirty(addr uint64) bool {
	if r.silent == nil {
		return false
	}
	idx := r.PageIndex(addr)
	return r.silent[idx/64]&(1<<(idx%64)) != 0
}

// SilentPages returns the number of silently dirty pages — pages whose
// contents changed underneath the protection machinery and are therefore
// missing from any fault-derived dirty set.
func (r *Region) SilentPages() uint64 {
	var n uint64
	for _, w := range r.silent {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// ClearSilent forgets all silent-dirty marks. A full checkpoint calls
// this: it captures current page contents regardless of dirty sets, so
// the DMA'd data is in the chain after all.
func (r *Region) ClearSilent() {
	for i := range r.silent {
		r.silent[i] = 0
	}
}

// PeekPage returns the contents of the page at the given index without
// materialising it: nil means the page was never written (all zero).
// It panics in phantom mode.
func (r *Region) PeekPage(idx uint64) []byte {
	if r.space.cfg.Phantom {
		panic("mem: PeekPage on phantom address space")
	}
	return r.data[idx]
}

// LoadPage overwrites the page at the given index with data (len must be
// one page), bypassing protection and fault delivery — the restore path,
// which operates below any tracker. It panics in phantom mode.
func (r *Region) LoadPage(idx uint64, data []byte) {
	if r.space.cfg.Phantom {
		panic("mem: LoadPage on phantom address space")
	}
	if uint64(len(data)) != r.space.cfg.PageSize {
		panic(fmt.Sprintf("mem: LoadPage with %d bytes, want one page (%d)", len(data), r.space.cfg.PageSize))
	}
	if r.data[idx] == nil {
		r.data[idx] = make([]byte, r.space.cfg.PageSize)
	}
	copy(r.data[idx], data)
}

// PageData returns the contents of the page holding addr, materialising a
// zero page on first access. It panics in phantom mode, where pages have
// no contents by construction.
func (r *Region) PageData(addr uint64) []byte {
	if r.space.cfg.Phantom {
		panic("mem: PageData on phantom address space")
	}
	idx := r.PageIndex(addr)
	if r.data[idx] == nil {
		r.data[idx] = make([]byte, r.space.cfg.PageSize)
	}
	return r.data[idx]
}

// AddressSpace is a simulated process address space.
type AddressSpace struct {
	cfg     Config
	regions []*Region // live regions, sorted by start
	heap    *Region
	stack   *Region
	handler FaultHandler
	mapHook MapHook

	pageShift uint // log2(PageSize)

	mmapNext uint64
	mmapFree []span // reusable gaps from unmapped arenas
	seq      uint64
	lastHit  *Region // single-entry lookup cache

	faults     uint64 // total write faults delivered
	writeSeq   byte   // rolling fill value for backed WriteRange
	writeBytes uint64 // total bytes written (logical, not page-rounded)
}

type span struct{ start, size uint64 }

// NewAddressSpace creates an empty address space with a stack region
// already mapped (the stack exists from process start and is never
// write-protected).
func NewAddressSpace(cfg Config) *AddressSpace {
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a power of two", cfg.PageSize))
	}
	s := &AddressSpace{cfg: cfg, mmapNext: mmapBase, pageShift: uint(bits.TrailingZeros64(cfg.PageSize))}
	s.stack = s.insert(stackTop-stackSize, stackSize, Stack)
	return s
}

// Config returns the configuration the space was created with.
func (s *AddressSpace) Config() Config { return s.cfg }

// PageSize returns the page size in bytes.
func (s *AddressSpace) PageSize() uint64 { return s.cfg.PageSize }

// Phantom reports whether pages are metadata-only.
func (s *AddressSpace) Phantom() bool { return s.cfg.Phantom }

// Faults returns the total number of write faults delivered so far.
func (s *AddressSpace) Faults() uint64 { return s.faults }

// WrittenBytes returns the total number of bytes logically written (the
// sum of Write/WriteRange lengths, not page-rounded).
func (s *AddressSpace) WrittenBytes() uint64 { return s.writeBytes }

// SetFaultHandler installs h as the write-fault handler, returning the
// previous handler (nil if none).
func (s *AddressSpace) SetFaultHandler(h FaultHandler) FaultHandler {
	old := s.handler
	s.handler = h
	return old
}

// SetMapHook installs h to observe region map/unmap events, returning the
// previous hook.
func (s *AddressSpace) SetMapHook(h MapHook) MapHook {
	old := s.mapHook
	s.mapHook = h
	return old
}

func (s *AddressSpace) roundUp(n uint64) uint64 {
	ps := s.cfg.PageSize
	return (n + ps - 1) &^ (ps - 1)
}

// insert creates a region and splices it into the sorted live list.
func (s *AddressSpace) insert(start, size uint64, kind Kind) *Region {
	r := &Region{start: start, size: size, kind: kind, space: s, seq: s.seq}
	s.seq++
	nPages := size >> s.pageShift
	r.wp = make([]uint64, (nPages+63)/64)
	if !s.cfg.Phantom {
		r.data = make([][]byte, nPages)
	}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].start >= start })
	s.regions = append(s.regions, nil)
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
	return r
}

func (s *AddressSpace) remove(r *Region) {
	// The live list is sorted by start, so the victim's index is a binary
	// search away — removal stays O(log n + move), not a linear scan.
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].start >= r.start })
	if i < len(s.regions) && s.regions[i] == r {
		s.regions = append(s.regions[:i], s.regions[i+1:]...)
	}
	r.dead = true
	if s.lastHit == r {
		s.lastHit = nil
	}
}

// MapData maps the initialized-data region. It may be called once.
func (s *AddressSpace) MapData(size uint64) *Region { return s.mapStatic(dataBase, size, Data) }

// MapBSS maps the zero-filled BSS region directly above the data region.
func (s *AddressSpace) MapBSS(size uint64) *Region {
	base := dataBase
	if r := s.findKind(Data); r != nil {
		base = r.End()
	}
	return s.mapStatic(base, size, BSS)
}

func (s *AddressSpace) mapStatic(base, size uint64, kind Kind) *Region {
	if r := s.findKind(kind); r != nil {
		panic(fmt.Sprintf("mem: %v region already mapped", kind))
	}
	size = s.roundUp(size)
	r := s.insert(base, size, kind)
	if s.mapHook != nil {
		s.mapHook(r, true)
	}
	return r
}

func (s *AddressSpace) findKind(kind Kind) *Region {
	for _, r := range s.regions {
		if r.kind == kind {
			return r
		}
	}
	return nil
}

// Heap returns the heap region, or nil before the first Sbrk growth.
func (s *AddressSpace) Heap() *Region { return s.heap }

// Stack returns the stack region.
func (s *AddressSpace) Stack() *Region { return s.stack }

// Brk returns the current heap break (heapBase when the heap is empty).
func (s *AddressSpace) Brk() uint64 {
	if s.heap == nil {
		return heapBase
	}
	return s.heap.End()
}

// Sbrk grows (delta > 0) or shrinks (delta < 0) the heap by delta bytes,
// page-rounded, returning the previous break. Shrinking below the heap
// base or growing by a non-representable amount returns an error.
// Growth preserves existing page protection and contents; new pages start
// unprotected and zero-filled, matching kernel brk semantics.
func (s *AddressSpace) Sbrk(delta int64) (uint64, error) {
	old := s.Brk()
	if delta == 0 {
		return old, nil
	}
	if delta > 0 {
		grow := s.roundUp(uint64(delta))
		if s.heap == nil {
			s.heap = s.insert(heapBase, grow, Heap)
			if s.mapHook != nil {
				s.mapHook(s.heap, true)
			}
			return old, nil
		}
		r := s.heap
		oldPages := r.Pages()
		r.size += grow
		newPages := r.Pages()
		wpLen := (newPages + 63) / 64
		for uint64(len(r.wp)) < wpLen {
			r.wp = append(r.wp, 0)
		}
		for r.silent != nil && uint64(len(r.silent)) < wpLen {
			r.silent = append(r.silent, 0)
		}
		if !s.cfg.Phantom {
			r.data = append(r.data, make([][]byte, newPages-oldPages)...)
		}
		return old, nil
	}
	shrink := s.roundUp(uint64(-delta))
	if s.heap == nil || shrink > s.heap.size {
		return old, fmt.Errorf("%w: sbrk(%d) below heap base", ErrBadRange, delta)
	}
	r := s.heap
	r.size -= shrink
	newPages := r.Pages()
	r.wp = r.wp[:(newPages+63)/64]
	r.trimBitmap()
	if r.silent != nil {
		r.silent = r.silent[:len(r.wp)]
		if rem := newPages % 64; rem != 0 && len(r.silent) > 0 {
			r.silent[len(r.silent)-1] &= (1 << rem) - 1
		}
	}
	if !s.cfg.Phantom {
		r.data = r.data[:newPages]
	}
	if r.size == 0 {
		s.remove(r)
		s.heap = nil
		if s.mapHook != nil {
			s.mapHook(r, false)
		}
	}
	return old, nil
}

// Mmap maps a new anonymous arena of at least size bytes (page-rounded)
// and returns its region. Freed arena slots are reused first-fit, so a
// workload that repeatedly frees and reallocates same-sized arenas — as
// Sage's Fortran90 allocator does — observes remapping at recycled
// addresses.
func (s *AddressSpace) Mmap(size uint64) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("%w: mmap of zero bytes", ErrBadRange)
	}
	size = s.roundUp(size)
	start := uint64(0)
	for i, f := range s.mmapFree {
		if f.size >= size {
			start = f.start
			if f.size == size {
				s.mmapFree = append(s.mmapFree[:i], s.mmapFree[i+1:]...)
			} else {
				s.mmapFree[i] = span{f.start + size, f.size - size}
			}
			break
		}
	}
	if start == 0 {
		start = s.mmapNext
		s.mmapNext += size
	}
	r := s.insert(start, size, Mmap)
	if s.mapHook != nil {
		s.mapHook(r, true)
	}
	return r, nil
}

// Munmap unmaps an arena previously returned by Mmap. The pages cease to
// exist: their protection state and contents are discarded, which is what
// enables the paper's memory-exclusion optimisation (§4.2).
func (s *AddressSpace) Munmap(r *Region) error {
	if r == nil || r.dead || r.kind != Mmap || r.space != s {
		return fmt.Errorf("%w: munmap of invalid region", ErrBadRange)
	}
	s.remove(r)
	s.mmapFree = append(s.mmapFree, span{r.start, r.size})
	if s.mapHook != nil {
		s.mapHook(r, false)
	}
	return nil
}

// MapAt maps a region of the given kind at an explicit address — the
// restore path, which must recreate regions at their original addresses.
// start must be page-aligned and the range must not overlap any live
// region. Mapping Heap or Stack this way updates the corresponding
// shortcut so subsequent Sbrk/Stack calls behave normally.
func (s *AddressSpace) MapAt(start, size uint64, kind Kind) (*Region, error) {
	ps := s.cfg.PageSize
	if start%ps != 0 || size == 0 {
		return nil, fmt.Errorf("%w: MapAt(%#x, %d)", ErrBadRange, start, size)
	}
	size = s.roundUp(size)
	for _, r := range s.regions {
		if start < r.End() && r.start < start+size {
			return nil, fmt.Errorf("%w: MapAt overlaps %v region at %#x", ErrBadRange, r.kind, r.start)
		}
	}
	r := s.insert(start, size, kind)
	switch kind {
	case Heap:
		s.heap = r
	case Stack:
		s.stack = r
	case Mmap:
		if start+size > s.mmapNext {
			s.mmapNext = start + size
		}
	}
	if s.mapHook != nil {
		s.mapHook(r, true)
	}
	return r, nil
}

// Find returns the live region containing addr, or nil.
func (s *AddressSpace) Find(addr uint64) *Region {
	if h := s.lastHit; h != nil && !h.dead && addr >= h.start && addr < h.End() {
		return h
	}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	if i < len(s.regions) && addr >= s.regions[i].start {
		s.lastHit = s.regions[i]
		return s.regions[i]
	}
	return nil
}

// Regions returns the live regions in address order. The returned slice
// is a copy; the regions themselves are shared.
func (s *AddressSpace) Regions() []*Region {
	out := make([]*Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// Footprint returns the total mapped bytes of checkpointable (non-stack)
// regions — the paper's "memory footprint".
func (s *AddressSpace) Footprint() uint64 {
	var n uint64
	for _, r := range s.regions {
		if r.kind.Checkpointable() {
			n += r.size
		}
	}
	return n
}

// ProtectAllData write-protects every page of every checkpointable region.
// This is the alarm handler's re-protection step. It returns the number of
// pages protected, which drives the intrusiveness model.
func (s *AddressSpace) ProtectAllData() uint64 {
	var n uint64
	for _, r := range s.regions {
		if r.kind.Checkpointable() {
			r.ProtectAll()
			n += r.Pages()
		}
	}
	return n
}

// UnprotectAllData clears write protection everywhere (detaching a tracker).
func (s *AddressSpace) UnprotectAllData() {
	for _, r := range s.regions {
		r.UnprotectAll()
	}
}

// fault delivers a write fault for the page containing addr and reports
// whether the write may proceed.
func (s *AddressSpace) fault(r *Region, addr uint64) error {
	s.faults++
	// A delivered fault means the handler chain observes this page after
	// all, so any earlier DMA write to it is no longer silent.
	r.clearSilent(r.PageIndex(addr))
	if s.handler != nil {
		page := addr &^ (s.cfg.PageSize - 1)
		s.handler(Fault{Addr: addr, Page: page, Region: r})
	}
	if r.Protected(addr) {
		return fmt.Errorf("%w: write to %#x", ErrSegv, addr)
	}
	return nil
}

// checkRange locates the region wholly containing [addr, addr+n) or fails.
func (s *AddressSpace) checkRange(addr, n uint64) (*Region, error) {
	r := s.Find(addr)
	if r == nil {
		return nil, fmt.Errorf("%w: %#x", ErrUnmapped, addr)
	}
	if addr+n > r.End() {
		return nil, fmt.Errorf("%w: [%#x,%#x) crosses region end %#x", ErrBadRange, addr, addr+n, r.End())
	}
	return r, nil
}

// copyIn stores data into the region starting at addr, page by page. The
// caller guarantees the range lies inside the region and faults have been
// resolved; the page walk is index-based so the per-page address
// arithmetic of the generic path is paid once, not per chunk.
func (r *Region) copyIn(addr uint64, data []byte) {
	ps := r.space.cfg.PageSize
	idx := r.PageIndex(addr)
	po := addr & (ps - 1)
	for len(data) > 0 {
		chunk := ps - po
		if chunk > uint64(len(data)) {
			chunk = uint64(len(data))
		}
		pd := r.data[idx]
		if pd == nil {
			pd = make([]byte, ps)
			r.data[idx] = pd
		}
		copy(pd[po:po+chunk], data[:chunk])
		data = data[chunk:]
		idx++
		po = 0
	}
}

// Write stores data at addr, faulting on protected pages first. In
// phantom mode the bytes are discarded but protection checks, fault
// delivery and accounting behave identically.
//
// The common case — every page in range already unprotected, i.e. any
// write after the first fault of the timeslice — takes a fast path: one
// word-level bitmap test, no Fault construction, no per-page protection
// checks.
func (s *AddressSpace) Write(addr uint64, data []byte) error {
	n := uint64(len(data))
	if n == 0 {
		return nil
	}
	r, err := s.checkRange(addr, n)
	if err != nil {
		return err
	}
	if !r.anyProtected(r.PageIndex(addr), r.PageIndex(addr+n-1)) {
		if !s.cfg.Phantom {
			r.copyIn(addr, data)
		}
		s.writeBytes += n
		return nil
	}
	ps := s.cfg.PageSize
	for off := uint64(0); off < n; {
		pageEnd := (addr + off + ps) &^ (ps - 1)
		chunk := min(n-off, pageEnd-(addr+off))
		if r.Protected(addr + off) {
			if err := s.fault(r, addr+off); err != nil {
				return err
			}
		}
		if !s.cfg.Phantom {
			pd := r.PageData(addr + off)
			po := (addr + off) & (ps - 1)
			copy(pd[po:po+chunk], data[off:off+chunk])
		}
		off += chunk
	}
	s.writeBytes += n
	return nil
}

// Read copies memory at addr into buf. Reads never fault: the paper
// tracks write accesses only. Reading in phantom mode zero-fills.
func (s *AddressSpace) Read(addr uint64, buf []byte) error {
	n := uint64(len(buf))
	if n == 0 {
		return nil
	}
	r, err := s.checkRange(addr, n)
	if err != nil {
		return err
	}
	if s.cfg.Phantom {
		clear(buf)
		return nil
	}
	ps := s.cfg.PageSize
	for off := uint64(0); off < n; {
		pageEnd := (addr + off + ps) &^ (ps - 1)
		chunk := min(n-off, pageEnd-(addr+off))
		idx := r.PageIndex(addr + off)
		po := (addr + off) & (ps - 1)
		if pd := r.data[idx]; pd != nil {
			copy(buf[off:off+chunk], pd[po:po+chunk])
		} else {
			clear(buf[off : off+chunk])
		}
		off += chunk
	}
	return nil
}

// WriteRange marks the whole byte range [addr, addr+n) as written,
// faulting on each protected page it touches, without supplying contents.
// It is the bulk path used by synthetic workloads sweeping large extents:
// cost is O(pages touched), and pages already unprotected are skipped a
// bitmap word (64 pages) at a time. In backed mode the range is filled
// with a rolling per-call byte value so contents remain deterministic.
func (s *AddressSpace) WriteRange(addr, n uint64) error {
	if n == 0 {
		return nil
	}
	r, err := s.checkRange(addr, n)
	if err != nil {
		return err
	}
	ps := s.cfg.PageSize
	first := r.PageIndex(addr)
	last := r.PageIndex(addr + n - 1)
	for idx := first; idx <= last; {
		w := r.wp[idx/64] >> (idx % 64)
		if w == 0 {
			// Whole remainder of this bitmap word is unprotected.
			idx = (idx/64 + 1) * 64
			continue
		}
		skip := uint64(bits.TrailingZeros64(w))
		if skip > 0 {
			idx += skip
			continue
		}
		pa := r.PageAddr(idx)
		if err := s.fault(r, max(pa, addr)); err != nil {
			return err
		}
		idx++
	}
	if !s.cfg.Phantom {
		s.writeSeq++
		v := s.writeSeq
		idx := first
		po := addr & (ps - 1)
		for rem := n; rem > 0; {
			chunk := ps - po
			if chunk > rem {
				chunk = rem
			}
			pd := r.data[idx]
			if pd == nil {
				pd = make([]byte, ps)
				r.data[idx] = pd
			}
			fill := pd[po : po+chunk]
			for i := range fill {
				fill[i] = v
			}
			rem -= chunk
			idx++
			po = 0
		}
	}
	s.writeBytes += n
	return nil
}
