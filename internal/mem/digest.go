package mem

// Address-space digests: a 64-bit fingerprint of region layout and page
// contents, used by the crash–restore–replay equivalence validator to
// assert that a restored-and-replayed run ends in the *bit-identical*
// process image of a failure-free run — a stronger claim than matching
// a floating-point checksum of the gathered solution, because it covers
// every checkpointable byte, not just the answer array.

// fnv64 constants (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// digestState accumulates an FNV-1a hash.
type digestState uint64

func (h *digestState) bytes(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x ^= uint64(b)
		x *= fnvPrime64
	}
	*h = digestState(x)
}

func (h *digestState) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = digestState(x)
}

// zeroPageMark and dataPageMark disambiguate the per-page encoding: each
// page contributes either the zero mark (never-written or materialised
// all-zero — the two must digest identically, because a restore
// materialises pages a fresh run never touched) or the data mark
// followed by the page's bytes.
const (
	zeroPageMark = 0x5A
	dataPageMark = 0xA5
)

// Digest returns a 64-bit FNV-1a digest of the space's live region
// layout and page contents. Regions are visited in address order (the
// space's canonical order), so the digest is deterministic. skip, when
// non-nil, excludes regions — callers exclude communication bounce
// buffers and other state outside the checkpoint contract. A
// never-written (nil) page and a materialised all-zero page digest
// identically. In phantom mode only the layout is digested, since pages
// carry no contents by construction.
func (s *AddressSpace) Digest(skip func(*Region) bool) uint64 {
	h := digestState(fnvOffset64)
	for _, r := range s.regions {
		if skip != nil && skip(r) {
			continue
		}
		h.u64(uint64(r.kind))
		h.u64(r.start)
		h.u64(r.size)
		if s.cfg.Phantom {
			continue
		}
		for idx := uint64(0); idx < r.Pages(); idx++ {
			pd := r.data[idx]
			if pageIsZero(pd) {
				h.bytes([]byte{zeroPageMark})
				continue
			}
			h.bytes([]byte{dataPageMark})
			h.bytes(pd)
		}
	}
	return uint64(h)
}

// pageIsZero reports whether the page holds only zero bytes (a nil page
// was never written and is all-zero by definition).
func pageIsZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
