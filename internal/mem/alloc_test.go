package mem

import "testing"

// TestZeroAllocUnprotectedWrite pins the Write fast path: with no
// protection bits set in the covered range, a backed Write must copy
// bytes in and return without constructing a Fault or allocating.
func TestZeroAllocUnprotectedWrite(t *testing.T) {
	s := NewAddressSpace(Config{})
	r, err := s.Mmap(1024 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	// Warm up so every page in the target range is materialized.
	if err := s.Write(r.Start(), buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Write(r.Start(), buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unprotected backed Write allocates %v/op, want 0", allocs)
	}
}

// TestZeroAllocPhantomWriteRange pins the same property for the phantom
// sweep path used by the full-scale volume experiments.
func TestZeroAllocPhantomWriteRange(t *testing.T) {
	s := NewAddressSpace(Config{Phantom: true})
	r, err := s.Mmap(16 * 1024 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRange(r.Start(), r.Size()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.WriteRange(r.Start(), r.Size()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unprotected phantom WriteRange allocates %v/op, want 0", allocs)
	}
}

// TestFastPathStatsMatchSlowPath checks the fast path accounts written
// bytes identically to the per-page slow path: the same Write issued
// against protected and unprotected pages must leave the same bytes in
// memory and the same writeBytes tally.
func TestFastPathStatsMatchSlowPath(t *testing.T) {
	mk := func(protect bool) (*AddressSpace, *Region) {
		s := NewAddressSpace(Config{})
		r, err := s.Mmap(256 * 1024)
		if err != nil {
			t.Fatal(err)
		}
		s.SetFaultHandler(func(f Fault) { f.Region.SetProtected(f.Page, false) })
		if protect {
			r.ProtectAll()
		}
		return s, r
	}
	buf := make([]byte, 40*1024)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	fastS, fastR := mk(false)
	slowS, slowR := mk(true)
	const off = 1234 // deliberately page-misaligned
	if err := fastS.Write(fastR.Start()+off, buf); err != nil {
		t.Fatal(err)
	}
	if err := slowS.Write(slowR.Start()+off, buf); err != nil {
		t.Fatal(err)
	}
	if fastS.WrittenBytes() != slowS.WrittenBytes() {
		t.Fatalf("writeBytes diverge: fast %d, slow %d",
			fastS.WrittenBytes(), slowS.WrittenBytes())
	}
	got := make([]byte, len(buf))
	want := make([]byte, len(buf))
	if err := fastS.Read(fastR.Start()+off, got); err != nil {
		t.Fatal(err)
	}
	if err := slowS.Read(slowR.Start()+off, want); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("content diverges at offset %d: fast %#x, slow %#x", i, got[i], want[i])
		}
	}
}
