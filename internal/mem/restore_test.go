package mem

import (
	"bytes"
	"errors"
	"testing"
)

func TestMapAt(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	r, err := s.MapAt(0x10000, 3*4096, Mmap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start() != 0x10000 || r.Size() != 3*4096 || r.Kind() != Mmap {
		t.Fatalf("region: %#x %d %v", r.Start(), r.Size(), r.Kind())
	}
	if s.Find(0x10000) != r {
		t.Fatal("MapAt region not findable")
	}
	// Size rounds up to pages.
	r2, err := s.MapAt(0x40000, 100, Data)
	if err != nil || r2.Size() != 4096 {
		t.Fatalf("rounding: %v %d", err, r2.Size())
	}
}

func TestMapAtValidation(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	if _, err := s.MapAt(0x10001, 4096, Mmap); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned MapAt: %v", err)
	}
	if _, err := s.MapAt(0x10000, 0, Mmap); !errors.Is(err, ErrBadRange) {
		t.Fatalf("zero-size MapAt: %v", err)
	}
	s.MapAt(0x10000, 4*4096, Mmap)
	// Overlap in every configuration must fail.
	for _, start := range []uint64{0x10000, 0x11000, 0xf000, 0x13000} {
		if _, err := s.MapAt(start, 2*4096, Mmap); err == nil {
			t.Errorf("overlapping MapAt at %#x accepted", start)
		}
	}
	// Adjacent (non-overlapping) is fine.
	if _, err := s.MapAt(0x14000, 4096, Mmap); err != nil {
		t.Fatalf("adjacent MapAt rejected: %v", err)
	}
}

func TestMapAtHeapRestoresSbrk(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	heapBase := s.Brk()
	r, err := s.MapAt(heapBase, 2*4096, Heap)
	if err != nil {
		t.Fatal(err)
	}
	if s.Heap() != r {
		t.Fatal("heap shortcut not restored")
	}
	// Sbrk continues from the restored break.
	old, err := s.Sbrk(4096)
	if err != nil || old != heapBase+2*4096 {
		t.Fatalf("sbrk after restore: %#x %v", old, err)
	}
	if s.Heap().Size() != 3*4096 {
		t.Fatalf("heap size = %d", s.Heap().Size())
	}
}

func TestMapAtMmapAdvancesAllocator(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	// Restore an mmap region, then a fresh Mmap must not collide.
	a, _ := s.Mmap(4096)
	hi := a.End() + 16*4096
	if _, err := s.MapAt(hi, 4096, Mmap); err != nil {
		t.Fatal(err)
	}
	b, err := s.Mmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	if b.Start() >= hi && b.Start() < hi+4096 {
		t.Fatal("fresh mmap collided with restored region")
	}
}

func TestPeekAndLoadPage(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	r, _ := s.Mmap(2 * 4096)
	if r.PeekPage(0) != nil {
		t.Fatal("untouched page not nil")
	}
	s.Write(r.Start(), []byte{1, 2, 3})
	pd := r.PeekPage(0)
	if pd == nil || pd[0] != 1 || pd[2] != 3 {
		t.Fatalf("PeekPage: %v", pd[:4])
	}
	// LoadPage bypasses protection and faults.
	r.ProtectAll()
	s.SetFaultHandler(func(Fault) { t.Fatal("LoadPage delivered a fault") })
	data := bytes.Repeat([]byte{9}, 4096)
	r.LoadPage(1, data)
	if !r.Protected(r.PageAddr(1)) {
		t.Fatal("LoadPage changed protection")
	}
	got := r.PeekPage(1)
	if !bytes.Equal(got, data) {
		t.Fatal("LoadPage contents")
	}
	s.SetFaultHandler(nil)
}

func TestLoadPageValidation(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096})
	r, _ := s.Mmap(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("short LoadPage did not panic")
		}
	}()
	r.LoadPage(0, []byte{1, 2})
}

func TestPhantomPeekLoadPanic(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
	r, _ := s.Mmap(4096)
	for name, fn := range map[string]func(){
		"PeekPage": func() { r.PeekPage(0) },
		"LoadPage": func() { r.LoadPage(0, make([]byte, 4096)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on phantom did not panic", name)
				}
			}()
			fn()
		}()
	}
}
