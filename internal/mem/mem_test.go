package mem

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newBacked(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(Config{PageSize: 4096})
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{Data: "data", BSS: "bss", Heap: "heap", Mmap: "mmap", Stack: "stack"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !Data.Checkpointable() || Stack.Checkpointable() {
		t.Error("Checkpointable: data must be, stack must not be")
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two page size did not panic")
		}
	}()
	NewAddressSpace(Config{PageSize: 3000})
}

func TestDefaultPageSize(t *testing.T) {
	s := NewAddressSpace(Config{})
	if s.PageSize() != DefaultPageSize {
		t.Fatalf("PageSize = %d, want %d", s.PageSize(), DefaultPageSize)
	}
}

func TestMapDataAndBSS(t *testing.T) {
	s := newBacked(t)
	d := s.MapData(10000) // rounds to 3 pages
	if d.Size() != 12288 || d.Kind() != Data {
		t.Fatalf("data region: size=%d kind=%v", d.Size(), d.Kind())
	}
	b := s.MapBSS(4096)
	if b.Start() != d.End() {
		t.Fatalf("bss start %#x, want %#x (end of data)", b.Start(), d.End())
	}
	if got := s.Footprint(); got != 12288+4096 {
		t.Fatalf("Footprint = %d", got)
	}
}

func TestDoubleMapDataPanics(t *testing.T) {
	s := newBacked(t)
	s.MapData(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("double MapData did not panic")
		}
	}()
	s.MapData(4096)
}

func TestStackNotInFootprint(t *testing.T) {
	s := newBacked(t)
	if s.Footprint() != 0 {
		t.Fatalf("empty space footprint = %d, want 0 (stack excluded)", s.Footprint())
	}
	if s.Stack() == nil || s.Stack().Kind() != Stack {
		t.Fatal("stack region missing")
	}
}

func TestSbrkGrowShrink(t *testing.T) {
	s := newBacked(t)
	base := s.Brk()
	old, err := s.Sbrk(10000)
	if err != nil || old != base {
		t.Fatalf("Sbrk grow: old=%#x err=%v", old, err)
	}
	if s.Heap() == nil || s.Heap().Size() != 12288 {
		t.Fatalf("heap size = %d, want 12288", s.Heap().Size())
	}
	// Write into the new heap, then grow again; contents must survive.
	addr := s.Heap().Start()
	if err := s.Write(addr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sbrk(4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := s.Read(addr, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("heap contents after grow: %q err=%v", buf, err)
	}
	// Shrink back to one page.
	if _, err := s.Sbrk(-12288); err != nil {
		t.Fatal(err)
	}
	if s.Heap().Size() != 4096 {
		t.Fatalf("heap size after shrink = %d", s.Heap().Size())
	}
	// Shrinking below base fails.
	if _, err := s.Sbrk(-8192); err == nil {
		t.Fatal("over-shrink succeeded")
	}
	// Shrink to exactly zero unmaps the heap.
	if _, err := s.Sbrk(-4096); err != nil {
		t.Fatal(err)
	}
	if s.Heap() != nil {
		t.Fatal("heap not unmapped at zero size")
	}
	if s.Brk() != base {
		t.Fatalf("brk after full shrink = %#x, want %#x", s.Brk(), base)
	}
}

func TestSbrkZero(t *testing.T) {
	s := newBacked(t)
	if _, err := s.Sbrk(0); err != nil {
		t.Fatal(err)
	}
	if s.Heap() != nil {
		t.Fatal("Sbrk(0) created a heap")
	}
}

func TestMmapMunmapReuse(t *testing.T) {
	s := newBacked(t)
	a, err := s.Mmap(8192)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Mmap(8192)
	if err != nil {
		t.Fatal(err)
	}
	if a.End() > b.Start() && b.End() > a.Start() {
		t.Fatal("mmap regions overlap")
	}
	aStart := a.Start()
	if err := s.Munmap(a); err != nil {
		t.Fatal(err)
	}
	if !a.Dead() {
		t.Fatal("region not marked dead")
	}
	c, err := s.Mmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.Start() != aStart {
		t.Fatalf("freed slot not reused: got %#x, want %#x", c.Start(), aStart)
	}
	if c.Seq() == a.Seq() {
		t.Fatal("recycled region shares Seq with its predecessor")
	}
	if err := s.Munmap(a); err == nil {
		t.Fatal("double munmap succeeded")
	}
	if err := s.Munmap(nil); err == nil {
		t.Fatal("munmap(nil) succeeded")
	}
}

func TestMmapZeroFails(t *testing.T) {
	s := newBacked(t)
	if _, err := s.Mmap(0); err == nil {
		t.Fatal("mmap(0) succeeded")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(3 * 4096)
	// Write crossing two page boundaries.
	data := make([]byte, 6000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := r.Start() + 2000
	if err := s.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6000)
	if err := s.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	// Untouched pages read as zero.
	zero := make([]byte, 100)
	if err := s.Read(r.Start()+9000, zero); err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("untouched page not zero-filled")
		}
	}
}

func TestWriteUnmappedAndCrossRegion(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(4096)
	if err := s.Write(0xdead0000, []byte{1}); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped write: %v", err)
	}
	if err := s.Write(r.End()-2, []byte{1, 2, 3, 4}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("cross-boundary write: %v", err)
	}
	if err := s.Read(0xdead0000, []byte{0}); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped read: %v", err)
	}
	if err := s.Write(r.Start(), nil); err != nil {
		t.Fatalf("empty write: %v", err)
	}
}

func TestProtectionFaultDelivery(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(4 * 4096)
	var faults []Fault
	s.SetFaultHandler(func(f Fault) {
		faults = append(faults, f)
		f.Region.SetProtected(f.Page, false) // first-touch unprotect
	})
	r.ProtectAll()
	if got := r.ProtectedPages(); got != 4 {
		t.Fatalf("ProtectedPages = %d, want 4", got)
	}
	// First write faults once per page.
	if err := s.Write(r.Start()+100, make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("faults = %d, want 2 (write spans 2 pages)", len(faults))
	}
	if faults[0].Addr != r.Start()+100 || faults[0].Page != r.Start() {
		t.Fatalf("fault[0] = %+v", faults[0])
	}
	// Rewrite of the same pages: no more faults.
	if err := s.Write(r.Start()+100, make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("rewrite faulted again: %d", len(faults))
	}
	if s.Faults() != 2 {
		t.Fatalf("Faults() = %d", s.Faults())
	}
}

func TestSegvWhenHandlerLeavesProtected(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(4096)
	s.SetFaultHandler(func(Fault) {}) // does not unprotect
	r.ProtectAll()
	if err := s.Write(r.Start(), []byte{1}); !errors.Is(err, ErrSegv) {
		t.Fatalf("want ErrSegv, got %v", err)
	}
}

func TestSegvWithoutHandler(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(4096)
	r.ProtectAll()
	if err := s.Write(r.Start(), []byte{1}); !errors.Is(err, ErrSegv) {
		t.Fatalf("want ErrSegv, got %v", err)
	}
	if err := s.WriteRange(r.Start(), 10); !errors.Is(err, ErrSegv) {
		t.Fatalf("WriteRange: want ErrSegv, got %v", err)
	}
}

func TestReadNeverFaults(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(4096)
	s.SetFaultHandler(func(Fault) { t.Fatal("read delivered a fault") })
	r.ProtectAll()
	if err := s.Read(r.Start(), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRangeFaultPerPage(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
	r, _ := s.Mmap(1000 * 4096)
	var n int
	s.SetFaultHandler(func(f Fault) {
		n++
		f.Region.SetProtected(f.Page, false)
	})
	r.ProtectAll()
	if err := s.WriteRange(r.Start(), 1000*4096); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("faults = %d, want 1000", n)
	}
	// Second sweep over unprotected pages: zero faults, fast path.
	if err := s.WriteRange(r.Start(), 1000*4096); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("fast path faulted: %d", n)
	}
	if s.WrittenBytes() != 2*1000*4096 {
		t.Fatalf("WrittenBytes = %d", s.WrittenBytes())
	}
}

func TestWriteRangePartialPages(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
	r, _ := s.Mmap(16 * 4096)
	var pages []uint64
	s.SetFaultHandler(func(f Fault) {
		pages = append(pages, f.Region.PageIndex(f.Page))
		f.Region.SetProtected(f.Page, false)
	})
	r.ProtectAll()
	// Touch bytes [4000, 4100): spans pages 0 and 1 only.
	if err := s.WriteRange(r.Start()+4000, 100); err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0] != 0 {
		// 4000..4100 crosses into page 1 at offset 4096.
		if len(pages) != 2 || pages[0] != 0 || pages[1] != 1 {
			t.Fatalf("pages touched: %v", pages)
		}
	}
}

func TestWriteRangeBackedFill(t *testing.T) {
	s := newBacked(t)
	r, _ := s.Mmap(2 * 4096)
	if err := s.WriteRange(r.Start(), 8192); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, 8192)
	if err := s.Read(r.Start(), a); err != nil {
		t.Fatal(err)
	}
	first := a[0]
	for _, b := range a {
		if b != first {
			t.Fatal("WriteRange fill not uniform")
		}
	}
	if err := s.WriteRange(r.Start(), 4096); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	s.Read(r.Start(), b)
	if b[0] == first {
		t.Fatal("second WriteRange used the same fill value")
	}
}

func TestProtectAllData(t *testing.T) {
	s := newBacked(t)
	s.MapData(4096)
	s.Sbrk(8192)
	m, _ := s.Mmap(4096)
	n := s.ProtectAllData()
	if n != 1+2+1 {
		t.Fatalf("ProtectAllData = %d pages, want 4", n)
	}
	if !m.Protected(m.Start()) {
		t.Fatal("mmap page not protected")
	}
	if s.Stack().ProtectedPages() != 0 {
		t.Fatal("stack was protected — the paper's library cannot protect the stack")
	}
	s.UnprotectAllData()
	if m.ProtectedPages() != 0 {
		t.Fatal("UnprotectAllData left pages protected")
	}
}

func TestMapHook(t *testing.T) {
	s := newBacked(t)
	type ev struct {
		kind   Kind
		mapped bool
	}
	var evs []ev
	s.SetMapHook(func(r *Region, mapped bool) { evs = append(evs, ev{r.Kind(), mapped}) })
	s.MapData(4096)
	r, _ := s.Mmap(4096)
	s.Sbrk(4096)
	s.Munmap(r)
	s.Sbrk(-4096)
	want := []ev{{Data, true}, {Mmap, true}, {Heap, true}, {Mmap, false}, {Heap, false}}
	if len(evs) != len(want) {
		t.Fatalf("hook events: %+v", evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("hook event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestFindCache(t *testing.T) {
	s := newBacked(t)
	a, _ := s.Mmap(4096)
	b, _ := s.Mmap(4096)
	if s.Find(a.Start()) != a || s.Find(b.Start()) != b || s.Find(a.Start()) != a {
		t.Fatal("Find returned wrong region")
	}
	s.Munmap(a)
	if s.Find(a.Start()) == a {
		t.Fatal("Find returned dead region via cache")
	}
}

func TestPhantomPageDataPanics(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
	r, _ := s.Mmap(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("PageData on phantom space did not panic")
		}
	}()
	r.PageData(r.Start())
}

func TestPhantomReadZeroFills(t *testing.T) {
	s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
	r, _ := s.Mmap(4096)
	if err := s.Write(r.Start(), []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	buf := []byte{1, 1}
	if err := s.Read(r.Start(), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatal("phantom read did not zero-fill")
	}
}

// Property: after protecting all and writing a random set of ranges with a
// first-touch-unprotect handler, the set of unprotected pages equals
// exactly the union of pages covered by the ranges.
func TestPropertyDirtyPagesMatchWrites(t *testing.T) {
	const pageSize = 4096
	f := func(seed uint64, nWrites uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		s := NewAddressSpace(Config{PageSize: pageSize, Phantom: true})
		const pages = 256
		r, _ := s.Mmap(pages * pageSize)
		s.SetFaultHandler(func(f Fault) { f.Region.SetProtected(f.Page, false) })
		r.ProtectAll()
		want := make(map[uint64]bool)
		for i := 0; i < int(nWrites%40)+1; i++ {
			start := uint64(rng.IntN(pages * pageSize))
			n := uint64(rng.IntN(8*pageSize) + 1)
			if start+n > pages*pageSize {
				n = pages*pageSize - start
			}
			if n == 0 {
				continue
			}
			if err := s.WriteRange(r.Start()+start, n); err != nil {
				return false
			}
			for p := start / pageSize; p <= (start+n-1)/pageSize; p++ {
				want[p] = true
			}
		}
		for p := uint64(0); p < pages; p++ {
			unprot := !r.Protected(r.PageAddr(p))
			if unprot != want[p] {
				return false
			}
		}
		return uint64(len(want)) == pages-r.ProtectedPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mmap/munmap/sbrk sequences keep regions disjoint,
// sorted, and footprint equal to the sum of live checkpointable sizes.
func TestPropertyRegionInvariants(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		s := NewAddressSpace(Config{PageSize: 4096, Phantom: true})
		var arenas []*Region
		var want uint64
		heapSize := int64(0)
		for i := 0; i < int(nOps); i++ {
			switch rng.IntN(4) {
			case 0:
				sz := uint64(rng.IntN(64)+1) * 4096
				r, err := s.Mmap(sz)
				if err != nil {
					return false
				}
				arenas = append(arenas, r)
				want += sz
			case 1:
				if len(arenas) > 0 {
					i := rng.IntN(len(arenas))
					want -= arenas[i].Size()
					if s.Munmap(arenas[i]) != nil {
						return false
					}
					arenas = append(arenas[:i], arenas[i+1:]...)
				}
			case 2:
				d := int64(rng.IntN(16)+1) * 4096
				s.Sbrk(d)
				heapSize += d
				want += uint64(d)
			case 3:
				if heapSize >= 4096 {
					d := int64(rng.IntN(int(heapSize/4096))+1) * 4096
					s.Sbrk(-d)
					heapSize -= d
					want -= uint64(d)
				}
			}
		}
		if s.Footprint() != want {
			return false
		}
		regs := s.Regions()
		for i := 1; i < len(regs); i++ {
			if regs[i-1].End() > regs[i].Start() {
				return false // overlap or out of order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: backed Write/Read round-trips arbitrary data at arbitrary
// offsets.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	f := func(data []byte, off uint16) bool {
		s := NewAddressSpace(Config{PageSize: 4096})
		r, _ := s.Mmap(64 * 4096)
		addr := r.Start() + uint64(off)
		if uint64(off)+uint64(len(data)) > r.Size() {
			return true // out of scope
		}
		if err := s.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRangeColdSweep(b *testing.B) {
	s := NewAddressSpace(Config{Phantom: true})
	r, _ := s.Mmap(64 * 1024 * 1024)
	s.SetFaultHandler(func(f Fault) { f.Region.SetProtected(f.Page, false) })
	b.SetBytes(64 * 1024 * 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ProtectAll()
		if err := s.WriteRange(r.Start(), r.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteRangeHotSweep(b *testing.B) {
	s := NewAddressSpace(Config{Phantom: true})
	r, _ := s.Mmap(64 * 1024 * 1024)
	s.SetFaultHandler(func(f Fault) { f.Region.SetProtected(f.Page, false) })
	s.WriteRange(r.Start(), r.Size())
	b.SetBytes(64 * 1024 * 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteRange(r.Start(), r.Size()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackedWrite(b *testing.B) {
	s := NewAddressSpace(Config{})
	r, _ := s.Mmap(1024 * 1024)
	buf := make([]byte, 64*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(r.Start(), buf); err != nil {
			b.Fatal(err)
		}
	}
}
