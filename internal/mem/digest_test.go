package mem

import (
	"bytes"
	"testing"
)

// The zero-page equivalence is the load-bearing property: a restore
// materialises pages a fresh run never touched, so a never-written (nil)
// page and an explicitly-written all-zero page must digest identically
// or every restored run would trivially diverge from its reference.
func TestDigestZeroPageEquivalence(t *testing.T) {
	fresh := NewAddressSpace(Config{PageSize: 512})
	if _, err := fresh.Mmap(4 * 512); err != nil {
		t.Fatal(err)
	}

	touched := NewAddressSpace(Config{PageSize: 512})
	r, err := touched.Mmap(4 * 512)
	if err != nil {
		t.Fatal(err)
	}
	// Materialise two pages with explicit zeros.
	if err := touched.Write(r.Start(), make([]byte, 2*512)); err != nil {
		t.Fatal(err)
	}

	if fresh.Digest(nil) != touched.Digest(nil) {
		t.Fatal("nil page and materialised all-zero page digest differently")
	}
}

func TestDigestSensitivity(t *testing.T) {
	build := func(mutate bool) uint64 {
		s := NewAddressSpace(Config{PageSize: 512})
		r, err := s.Mmap(4 * 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(r.Start(), bytes.Repeat([]byte{7}, 2*512)); err != nil {
			t.Fatal(err)
		}
		if mutate {
			if err := s.Write(r.Start()+100, []byte{8}); err != nil {
				t.Fatal(err)
			}
		}
		return s.Digest(nil)
	}
	if build(false) != build(false) {
		t.Fatal("identical construction, different digests")
	}
	if build(false) == build(true) {
		t.Fatal("single-byte mutation left the digest unchanged")
	}
}

// A region excluded by the skip predicate must not vote: two spaces that
// differ only inside the skipped region digest identically.
func TestDigestSkipPredicate(t *testing.T) {
	build := func(fill byte) uint64 {
		s := NewAddressSpace(Config{PageSize: 512})
		keep, err := s.Mmap(2 * 512)
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := s.Mmap(2 * 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(keep.Start(), bytes.Repeat([]byte{1}, 512)); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(noisy.Start(), bytes.Repeat([]byte{fill}, 512)); err != nil {
			t.Fatal(err)
		}
		return s.Digest(func(r *Region) bool { return r == noisy })
	}
	if build(0x10) != build(0x20) {
		t.Fatal("skipped region influenced the digest")
	}
}

// Layout still matters: a skipped region's *absence* is not the same as
// skipping it — and distinct layouts digest distinctly.
func TestDigestLayout(t *testing.T) {
	one := NewAddressSpace(Config{PageSize: 512})
	if _, err := one.Mmap(2 * 512); err != nil {
		t.Fatal(err)
	}
	two := NewAddressSpace(Config{PageSize: 512})
	if _, err := two.Mmap(4 * 512); err != nil {
		t.Fatal(err)
	}
	if one.Digest(nil) == two.Digest(nil) {
		t.Fatal("different layouts, same digest")
	}
}

// Phantom spaces digest layout only, deterministically.
func TestDigestPhantom(t *testing.T) {
	build := func() uint64 {
		s := NewAddressSpace(Config{PageSize: 512, Phantom: true})
		r, err := s.Mmap(4 * 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteRange(r.Start(), 512); err != nil {
			t.Fatal(err)
		}
		return s.Digest(nil)
	}
	if build() != build() {
		t.Fatal("phantom digest not deterministic")
	}
}
