package mem

// DMA write path: a NIC depositing a message directly into user memory
// (RDMA / programmed-I/O direct mode) bypasses the MMU's write
// protection entirely — no fault is raised, the tracker never sees the
// page, and an incremental checkpoint taken afterwards silently omits
// it (the paper's §4.2 NIC-vs-mprotect conflict). WriteDirect and
// WriteRangeDirect model exactly that: they store contents like
// Write/WriteRange but never deliver faults; instead every protected
// page they land on is marked in the region's silent-dirty bitmap, so
// the under-count is measurable (SilentDirtyBytes) and reconcilable
// (ReplaySilent, the deregistration step of a drain protocol).

import "math/bits"

// WriteDirect stores data at addr with DMA semantics: protected pages
// do not fault — the bytes land anyway and the pages are marked
// silent-dirty. It returns the number of bytes that landed on pages
// that were protected at write time, i.e. the bytes the write-fault
// tracker did not observe.
func (s *AddressSpace) WriteDirect(addr uint64, data []byte) (silentBytes uint64, err error) {
	n := uint64(len(data))
	if n == 0 {
		return 0, nil
	}
	r, err := s.checkRange(addr, n)
	if err != nil {
		return 0, err
	}
	ps := s.cfg.PageSize
	for off := uint64(0); off < n; {
		pageEnd := (addr + off + ps) &^ (ps - 1)
		chunk := min(n-off, pageEnd-(addr+off))
		if r.Protected(addr + off) {
			r.markSilent(r.PageIndex(addr + off))
			silentBytes += chunk
		}
		off += chunk
	}
	if !s.cfg.Phantom {
		r.copyIn(addr, data)
	}
	s.writeBytes += n
	return silentBytes, nil
}

// WriteRangeDirect is WriteRange with DMA semantics: the whole byte
// range [addr, addr+n) is written without raising a single fault, and
// every protected page it touches becomes silent-dirty. In backed mode
// the range is filled with the same rolling per-call byte value as
// WriteRange so contents remain deterministic. It returns the number
// of bytes that landed on protected (now silent) pages.
func (s *AddressSpace) WriteRangeDirect(addr, n uint64) (silentBytes uint64, err error) {
	if n == 0 {
		return 0, nil
	}
	r, err := s.checkRange(addr, n)
	if err != nil {
		return 0, err
	}
	ps := s.cfg.PageSize
	first := r.PageIndex(addr)
	last := r.PageIndex(addr + n - 1)
	for idx := first; idx <= last; idx++ {
		if r.wp[idx/64]>>(idx%64)&1 == 0 {
			continue
		}
		r.markSilent(idx)
		pa := r.PageAddr(idx)
		lo := max(pa, addr)
		hi := min(pa+ps, addr+n)
		silentBytes += hi - lo
	}
	if !s.cfg.Phantom {
		s.writeSeq++
		v := s.writeSeq
		idx := first
		po := addr & (ps - 1)
		for rem := n; rem > 0; {
			chunk := ps - po
			if chunk > rem {
				chunk = rem
			}
			pd := r.data[idx]
			if pd == nil {
				pd = make([]byte, ps)
				r.data[idx] = pd
			}
			fill := pd[po : po+chunk]
			for i := range fill {
				fill[i] = v
			}
			rem -= chunk
			idx++
			po = 0
		}
	}
	s.writeBytes += n
	return silentBytes, nil
}

// SilentDirtyBytes returns the total bytes of silently dirty pages
// across all live regions: pages whose contents were changed by DMA
// writes while write-protected, which an incremental checkpoint based
// on fault tracking alone would omit. This is the ground-truth
// under-count of the incremental write set.
func (s *AddressSpace) SilentDirtyBytes() uint64 {
	var pages uint64
	for _, r := range s.regions {
		pages += r.SilentPages()
	}
	return pages * s.cfg.PageSize
}

// ReplaySilent reconciles every silent-dirty page by delivering the
// write fault the DMA engine suppressed: the installed fault-handler
// chain (tracker, checkpointer) observes each page exactly as if the
// CPU had written it, so the pages re-enter the incremental write set
// before the next checkpoint. This is the deregistration step of an
// RDMA drain protocol — once the NIC's mappings are torn down, the
// pages it wrote are handed back to the MMU-based tracker. Returns the
// number of pages replayed.
func (s *AddressSpace) ReplaySilent() uint64 {
	var pages uint64
	for _, r := range s.regions {
		if r.silent == nil {
			continue
		}
		for w := range r.silent {
			for word := r.silent[w]; word != 0; {
				b := bits.TrailingZeros64(word)
				word &^= 1 << b
				idx := uint64(w)*64 + uint64(b)
				pa := r.PageAddr(idx)
				// fault() clears the silent bit and delivers the
				// handler chain. A handler normally unprotects the
				// page; if none is installed the write is recorded
				// directly so the page is never checkpointed torn.
				if err := s.fault(r, pa); err != nil {
					r.SetProtected(pa, false)
				}
				pages++
			}
		}
	}
	return pages
}
