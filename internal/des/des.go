// Package des implements a deterministic discrete-event simulation engine.
//
// Every component of the reproduction — the simulated virtual memory, the
// MPI layer, the checkpoint tracker and the synthetic workloads — advances a
// single shared virtual clock owned by an Engine. Events scheduled at the
// same virtual time fire in the order they were scheduled (FIFO tie-break),
// which makes whole-cluster runs bit-for-bit reproducible regardless of host
// scheduling.
//
// The engine runs in one of two modes. A standalone Engine (NewEngine) is
// strictly sequential: the paper's metrics (Incremental Working Set,
// Incremental Bandwidth) are ratios of bytes to virtual time, so no
// host-level parallelism inside one simulation is needed, and experiment
// sweeps parallelise across independent Engine instances. A Group
// (NewGroup, shard.go) runs several Engines — shards — concurrently on
// worker goroutines, synchronising at conservative epoch barriers so that
// per-seed results stay bit-identical to a sequential run regardless of
// GOMAXPROCS or shard count. Cross-shard communication goes through
// Engine.PostTo and a canonically ordered mailbox; see shard.go for the
// event-class taxonomy (local / comm / serial) and the lookahead contract.
//
// The event queue is allocation-free in steady state: events live in a slot
// arena recycled through a free-list, the priority queue is an index-based
// 4-ary min-heap (shallower than a binary heap, and its four-child nodes
// share cache lines), and Event handles are small values validated by a
// per-slot generation counter, so Schedule and Step perform no heap
// allocations once the arena has reached its high-water mark.
package des

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to the host clock.
type Time int64

// Common durations expressed as virtual time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Running an engine
// until MaxTime drains every scheduled event.
const MaxTime Time = math.MaxInt64

// Seconds reports t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration for formatting purposes.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Event is a handle to a scheduled callback, returned by Engine.Schedule
// and friends. It is a small value: copy it freely, compare it to the zero
// Event to test "no event". The zero Event is inert — Cancel and Pending
// on it report false.
//
// Handles are generation-checked: the engine recycles event storage after
// an event fires, and a handle carries the generation it was issued for,
// so Cancel through a stale handle (the event already fired or was
// cancelled) is a detected no-op rather than an aliased write to whatever
// event now occupies the storage.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint32
	at   Time
}

// Time reports the virtual time at which the event will fire (or fired).
func (e Event) Time() Time { return e.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e Event) Cancel() bool {
	if e.eng == nil {
		return false
	}
	s := &e.eng.slots[e.slot]
	if s.gen != e.gen || s.dead {
		return false
	}
	s.dead = true
	return true
}

// Pending reports whether the event is still queued: scheduled, not yet
// fired and not cancelled. The zero Event is never pending.
func (e Event) Pending() bool {
	if e.eng == nil {
		return false
	}
	s := &e.eng.slots[e.slot]
	return s.gen == e.gen && !s.dead
}

// eventSlot is the arena storage behind one queued event. Slots are
// recycled through the engine's free-list; gen increments at each reap so
// stale handles cannot alias a successor event in the same slot.
type eventSlot struct {
	fn    func()
	gen   uint32
	dead  bool
	local bool // shard-confined event class (see shard.go)
}

// heapNode is one entry of the 4-ary min-heap. The ordering key (at, seq)
// is stored inline so sift comparisons never chase into the arena.
type heapNode struct {
	at   Time
	seq  uint64
	slot int32
}

// before is the heap order: earliest time first, FIFO tie-break on the
// schedule sequence.
func (n heapNode) before(m heapNode) bool {
	return n.at < m.at || (n.at == m.at && n.seq < m.seq)
}

// Engine owns the virtual clock and the pending-event queue.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	heap    []heapNode
	slots   []eventSlot
	free    []int32
	stopped bool
	fired   uint64

	// Sharded mode (nil group for standalone engines; see shard.go).
	group     *Group
	shard     int        // index within the group; controlShard for the control engine
	commHeap  []commNode // pending comm events, for horizon computation
	postSeq   uint64     // canonical per-source ordering of cross-shard posts
	execLocal bool       // class of the event currently executing
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports the total number of events executed so far, a cheap proxy
// for simulation work done (useful in benchmarks). On a grouped engine it
// aggregates across every shard and the control engine, so sequential and
// sharded runs of the same simulation report equal counts; call it
// between runs only.
func (e *Engine) Fired() uint64 {
	if e.group != nil {
		return e.group.firedTotal()
	}
	return e.fired
}

// Pending reports the number of events still queued (including cancelled
// events not yet reaped). On a grouped engine it aggregates heaps and
// undrained mailboxes across the whole group; call it between runs only.
func (e *Engine) Pending() int {
	if e.group != nil {
		return e.group.pending()
	}
	return len(e.heap)
}

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently corrupt causality. On a
// grouped engine the event is a comm event (it may interact with other
// shards); see ScheduleLocal for the shard-confined class.
func (e *Engine) Schedule(at Time, fn func()) Event {
	return e.schedule(at, fn, false)
}

// ScheduleLocal queues a shard-confined event: fn promises to touch only
// this engine's shard (its own memory spaces, its own future events) and
// to schedule only further local events. Local events are excluded from
// the group's horizon computation, which keeps per-shard event mass
// (compute ticks, page faults) from serialising parallel epochs. On a
// standalone engine the class is recorded but changes nothing.
func (e *Engine) ScheduleLocal(at Time, fn func()) Event {
	return e.schedule(at, fn, true)
}

func (e *Engine) schedule(at Time, fn func(), local bool) Event {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	if e.execLocal && !local {
		panic("des: local event scheduled a comm event; use ScheduleLocal/AfterLocal or reclassify the parent")
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		slot = int32(len(e.slots) - 1)
	}
	s := &e.slots[slot]
	s.fn = fn
	s.dead = false
	s.local = local
	e.push(heapNode{at: at, seq: e.seq, slot: slot})
	e.seq++
	if e.group != nil && !local && e.shard != controlShard {
		e.pushComm(commNode{at: at, slot: slot, gen: s.gen})
	}
	return Event{eng: e, slot: slot, gen: s.gen, at: at}
}

// After queues fn to run d after the current virtual time.
// A negative d panics.
func (e *Engine) After(d Time, fn func()) Event {
	return e.schedule(e.now+d, fn, false)
}

// AfterLocal queues a shard-confined event d after the current virtual
// time; see ScheduleLocal.
func (e *Engine) AfterLocal(d Time, fn func()) Event {
	return e.schedule(e.now+d, fn, true)
}

// push inserts n into the 4-ary heap (sift-up).
func (e *Engine) push(n heapNode) {
	h := append(e.heap, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !n.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	e.heap = h
}

// pop removes and returns the minimum heap node.
func (e *Engine) pop() heapNode {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	n := h[last]
	h = h[:last]
	e.heap = h
	if last > 0 {
		// Sift n down from the root.
		i := 0
		for {
			c := 4*i + 1
			if c >= len(h) {
				break
			}
			m := c
			end := c + 4
			if end > len(h) {
				end = len(h)
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(h[m]) {
					m = j
				}
			}
			if !h[m].before(n) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = n
	}
	return top
}

// reap frees the arena slot behind a popped node: drop the callback so the
// GC can collect its closure, bump the generation so outstanding handles
// go stale, and return the slot to the free-list.
func (e *Engine) reap(slot int32) {
	s := &e.slots[slot]
	s.fn = nil
	s.gen++
	e.free = append(e.free, slot)
}

// Stop makes the currently executing Run return after the in-flight event
// completes. Pending events stay queued. On a grouped engine it stops the
// whole group; safe to call from any shard's events.
func (e *Engine) Stop() {
	if e.group != nil {
		e.group.stopped.Store(true)
		return
	}
	e.stopped = true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty. On a grouped
// engine it steps the globally earliest event anywhere in the group
// (control engine first on ties, then shards in index order).
func (e *Engine) Step() bool {
	if e.group != nil {
		return e.group.step()
	}
	for len(e.heap) > 0 {
		n := e.pop()
		s := &e.slots[n.slot]
		if s.dead {
			e.reap(n.slot)
			continue
		}
		fn := s.fn
		e.reap(n.slot)
		e.now = n.at
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, an event
// calls Stop, or the next event would fire strictly after until. The clock
// ends at the time of the last executed event, or at until when the run was
// bounded and events remain. Run returns the number of events executed.
// On a grouped engine, Run drives the whole group through the parallel
// epoch scheduler (shard.go) and returns the group-wide event count.
func (e *Engine) Run(until Time) uint64 {
	if e.group != nil {
		return e.group.run(until)
	}
	e.stopped = false
	var n uint64
	for !e.stopped {
		// Reap cancelled events off the top without firing them.
		for len(e.heap) > 0 && e.slots[e.heap[0].slot].dead {
			d := e.pop()
			e.reap(d.slot)
		}
		if len(e.heap) == 0 {
			break
		}
		if e.heap[0].at > until {
			e.now = until
			break
		}
		top := e.pop()
		fn := e.slots[top.slot].fn
		e.reap(top.slot)
		e.now = top.at
		e.fired++
		fn()
		n++
	}
	return n
}

// Ticker fires a callback at a fixed virtual period until cancelled.
// It is the simulation analogue of the instrumentation library's
// setitimer-based alarm.
type Ticker struct {
	eng    *Engine
	period Time
	fn     func(Time)
	fire   func() // the single closure re-armed every period
	ev     Event
	done   bool
}

// NewTicker schedules fn to run every period, with the first firing at
// Now()+period. The callback receives the firing time. period must be
// positive.
func (e *Engine) NewTicker(period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	// One closure for the ticker's whole lifetime: re-arming schedules the
	// same func value, so steady-state ticking performs no allocations.
	t.fire = func() {
		if t.done {
			return
		}
		at := t.eng.Now()
		t.fn(at)
		if !t.done {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.period, t.fire)
}

// Stop cancels the ticker. Safe to call from inside the callback.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.ev.Cancel()
}

// Period reports the ticker's firing period.
func (t *Ticker) Period() Time { return t.period }
