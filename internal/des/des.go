// Package des implements a deterministic discrete-event simulation engine.
//
// Every component of the reproduction — the simulated virtual memory, the
// MPI layer, the checkpoint tracker and the synthetic workloads — advances a
// single shared virtual clock owned by an Engine. Events scheduled at the
// same virtual time fire in the order they were scheduled (FIFO tie-break),
// which makes whole-cluster runs bit-for-bit reproducible regardless of host
// scheduling.
//
// The engine is intentionally sequential: the paper's metrics (Incremental
// Working Set, Incremental Bandwidth) are ratios of bytes to virtual time,
// so no host-level parallelism inside one simulation is needed. Experiment
// sweeps parallelise across independent Engine instances instead.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to the host clock.
type Time int64

// Common durations expressed as virtual time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Running an engine
// until MaxTime drains every scheduled event.
const MaxTime Time = math.MaxInt64

// Seconds reports t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration for formatting purposes.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.Schedule and friends.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // index in the heap, -1 when not queued
	dead bool
}

// Time reports the virtual time at which the event will fire (or fired).
func (e *Event) Time() Time { return e.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.dead || e.idx < 0 {
		return false
	}
	e.dead = true
	return true
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event queue.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports the total number of events executed so far, a cheap proxy
// for simulation work done (useful in benchmarks).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current virtual time.
// A negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Stop makes the currently executing Run return after the in-flight event
// completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, an event
// calls Stop, or the next event would fire strictly after until. The clock
// ends at the time of the last executed event, or at until when the run was
// bounded and events remain. Run returns the number of events executed.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	var n uint64
	for !e.stopped {
		// Peek for the next live event.
		var next *Event
		for len(e.queue) > 0 {
			if e.queue[0].dead {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil {
			break
		}
		if next.at > until {
			e.now = until
			break
		}
		e.Step()
		n++
	}
	return n
}

// Ticker fires a callback at a fixed virtual period until cancelled.
// It is the simulation analogue of the instrumentation library's
// setitimer-based alarm.
type Ticker struct {
	eng    *Engine
	period Time
	fn     func(Time)
	ev     *Event
	done   bool
}

// NewTicker schedules fn to run every period, with the first firing at
// Now()+period. The callback receives the firing time. period must be
// positive.
func (e *Engine) NewTicker(period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.After(t.period, func() {
		if t.done {
			return
		}
		at := t.eng.Now()
		t.fn(at)
		if !t.done {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Safe to call from inside the callback.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.ev.Cancel()
}

// Period reports the ticker's firing period.
func (t *Ticker) Period() Time { return t.period }
