package des

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v, want 2.0", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.Run(MaxTime)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.Run(MaxTime)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*Second, func() {})
	e.Run(MaxTime)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1*Second, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(Second, nil)
}

func TestRunUntilBound(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1*Second, func() { fired++ })
	e.Schedule(5*Second, func() { fired++ })
	n := e.Run(2 * Second)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(2s) executed %d events (fired=%d), want 1", n, fired)
	}
	if e.Now() != 2*Second {
		t.Fatalf("clock = %v after bounded run, want 2s", e.Now())
	}
	n = e.Run(MaxTime)
	if n != 1 || fired != 2 {
		t.Fatalf("second Run executed %d, fired=%d", n, fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run(MaxTime)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(Second, func() {})
	e.Run(MaxTime)
	if ev.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(1*Second, func() { got = append(got, 1); e.Stop() })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.Run(MaxTime)
	if len(got) != 1 {
		t.Fatalf("Stop did not halt the run: %v", got)
	}
	// The queue still holds the second event.
	e.Run(MaxTime)
	if len(got) != 2 {
		t.Fatalf("resumed run missed events: %v", got)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(Second, func() {
		e.After(Second, func() { got = append(got, e.Now()) })
	})
	e.Run(MaxTime)
	if len(got) != 1 || got[0] != 2*Second {
		t.Fatalf("nested schedule: got %v, want [2s]", got)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var fires []Time
	tk := e.NewTicker(Second, func(at Time) {
		fires = append(fires, at)
		if len(fires) == 5 {
			e.Stop()
		}
	})
	e.Run(MaxTime)
	if len(fires) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(fires))
	}
	for i, at := range fires {
		if want := Time(i+1) * Second; at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop()
	if tk.Period() != Second {
		t.Fatalf("Period() = %v", tk.Period())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.NewTicker(Second, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run(100 * Second)
	if n != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", n)
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	e := NewEngine()
	tk := e.NewTicker(Second, func(Time) {})
	tk.Stop()
	tk.Stop()
	if e.Run(10*Second) != 0 {
		t.Fatal("stopped ticker still fired")
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	e.NewTicker(0, func(Time) {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i)*Second, func() {})
	}
	e.Run(MaxTime)
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: for any set of timestamps, events fire in sorted order and the
// clock is monotonically non-decreasing.
func TestPropertyEventOrder(t *testing.T) {
	f := func(stamps []uint32) bool {
		e := NewEngine()
		var fired []Time
		last := Time(-1)
		mono := true
		for _, s := range stamps {
			at := Time(s) * Microsecond
			e.Schedule(at, func() {
				if e.Now() < last {
					mono = false
				}
				last = e.Now()
				fired = append(fired, e.Now())
			})
		}
		e.Run(MaxTime)
		if !mono || len(fired) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		e := NewEngine()
		total := int(n%64) + 1
		fired := make([]bool, total)
		evs := make([]Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.Schedule(Time(rng.IntN(1000))*Millisecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.IntN(2) == 0 {
				evs[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run(MaxTime)
		for i := 0; i < total; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical simulations produce identical event traces.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewPCG(7, 9))
		var trace []Time
		var spawn func()
		spawn = func() {
			trace = append(trace, e.Now())
			if len(trace) < 500 {
				e.After(Time(rng.IntN(100)+1)*Millisecond, spawn)
			}
		}
		e.Schedule(0, spawn)
		e.Run(MaxTime)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*Microsecond, func() {})
		}
		e.Run(MaxTime)
	}
}

func BenchmarkTickerHot(b *testing.B) {
	e := NewEngine()
	n := 0
	e.NewTicker(Millisecond, func(Time) { n++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + Second)
	}
}
