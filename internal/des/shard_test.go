package des

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// tracePt is one observed event execution on a rank's own timeline.
type tracePt struct {
	at  Time
	tag int
}

// traceSim is a synthetic multi-rank workload whose per-rank execution
// trace must be identical on a sequential engine and on every shard
// count: each rank runs a chain of comm events that spawn local events
// and post continuations to other ranks with delays >= the declared
// lookahead.
type traceSim struct {
	engs   []*Engine
	traces [][]tracePt
	la     Time
	hops   int
}

func newTraceSim(ranks int, shards int, la Time, hops int) *traceSim {
	ts := &traceSim{
		engs:   make([]*Engine, ranks),
		traces: make([][]tracePt, ranks),
		la:     la,
		hops:   hops,
	}
	if shards == 0 {
		eng := NewEngine()
		for i := range ts.engs {
			ts.engs[i] = eng
		}
	} else {
		g := NewGroup(shards)
		g.DeclareLookahead(la)
		for i := range ts.engs {
			ts.engs[i] = g.Shard(i % shards)
		}
	}
	return ts
}

// chain executes hop k of rank r's comm chain: record, spawn a local
// event, and post the next hop to a pseudo-random other rank at a delay
// that is always >= the lookahead (and sometimes exactly equal to it, so
// events land exactly on the causality horizon).
func (ts *traceSim) chain(r, k int) {
	eng := ts.engs[r]
	now := eng.Now()
	ts.traces[r] = append(ts.traces[r], tracePt{at: now, tag: k})
	if k >= ts.hops {
		return
	}
	self := r
	eng.AfterLocal(Time(1+(k%3)), func() {
		ts.traces[self] = append(ts.traces[self], tracePt{at: ts.engs[self].Now(), tag: -k})
	})
	dst := (r + 1 + k*7) % len(ts.engs)
	extra := Time((r * 31 * k) % 5) // 0 => post lands exactly at the horizon
	eng.PostTo(ts.engs[dst], now+ts.la+extra, func() { ts.chain(dst, k+1) })
}

func (ts *traceSim) start() {
	for i := range ts.engs {
		r := i
		ts.engs[i].Schedule(Time(i), func() { ts.chain(r, 0) })
	}
}

func (ts *traceSim) run(until Time) uint64 {
	ts.start()
	return ts.engs[0].Run(until)
}

// normalize sorts runs of same-time points by tag. Within one virtual
// instant the engine guarantees a canonical — but not
// sequential-identical — interleaving of events arriving from different
// shards (mailbox key order vs global schedule order), so same-instant
// runs are compared as sets; the across-instant order must be exact.
// Bit-equality of real observables under same-instant reordering is
// covered by the workload-level digest tests in internal/experiments.
func normalize(traces [][]tracePt) {
	for _, tr := range traces {
		i := 0
		for i < len(tr) {
			j := i + 1
			for j < len(tr) && tr[j].at == tr[i].at {
				j++
			}
			sort.Slice(tr[i:j], func(x, y int) bool { return tr[i+x].tag < tr[i+y].tag })
			i = j
		}
	}
}

func sameTraces(t *testing.T, want, got [][]tracePt, label string) {
	t.Helper()
	normalize(want)
	normalize(got)
	for r := range want {
		if len(want[r]) != len(got[r]) {
			t.Fatalf("%s: rank %d trace length %d, want %d", label, r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s: rank %d event %d = %+v, want %+v", label, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestGroupSequentialEquivalence pins the core determinism claim: the
// per-rank execution traces, event counts, and clocks of a sharded run
// are identical to the sequential engine's at every shard count,
// including a lookahead of zero (where only serial instants can make
// cross-shard progress) and events posted exactly at the horizon.
func TestGroupSequentialEquivalence(t *testing.T) {
	for _, la := range []Time{0, 3} {
		ref := newTraceSim(8, 0, la, 40)
		refFired := ref.run(MaxTime)
		for _, shards := range []int{1, 2, 3, 8} {
			got := newTraceSim(8, shards, la, 40)
			gotFired := got.run(MaxTime)
			label := fmt.Sprintf("lookahead=%d shards=%d", la, shards)
			if gotFired != refFired {
				t.Fatalf("%s: Run returned %d events, want %d", label, gotFired, refFired)
			}
			if got.engs[0].Fired() != ref.engs[0].Fired() {
				t.Fatalf("%s: Fired() = %d, want %d", label, got.engs[0].Fired(), ref.engs[0].Fired())
			}
			if got.engs[0].Now() != ref.engs[0].Now() {
				t.Fatalf("%s: Now() = %v, want %v", label, got.engs[0].Now(), ref.engs[0].Now())
			}
			sameTraces(t, ref.traces, got.traces, label)
		}
	}
}

// TestGroupBoundedRunClock checks clock unification of bounded runs:
// every member engine ends at exactly until when events remain.
func TestGroupBoundedRunClock(t *testing.T) {
	ref := newTraceSim(4, 0, 2, 30)
	const until = 25 * Nanosecond
	refFired := ref.run(until)
	for _, shards := range []int{2, 4} {
		got := newTraceSim(4, shards, 2, 30)
		if f := got.run(until); f != refFired {
			t.Fatalf("shards=%d: fired %d, want %d", shards, f, refFired)
		}
		sameTraces(t, ref.traces, got.traces, fmt.Sprintf("shards=%d", shards))
		g := got.engs[0].group
		if g.Control().Now() != until {
			t.Fatalf("control clock %v, want %v", g.Control().Now(), until)
		}
		for i := 0; i < g.Shards(); i++ {
			if g.Shard(i).Now() != until {
				t.Fatalf("shard %d clock %v, want %v", i, g.Shard(i).Now(), until)
			}
		}
		if got.engs[0].Pending() != ref.engs[0].Pending() {
			t.Fatalf("shards=%d: Pending %d, want %d", shards, got.engs[0].Pending(), ref.engs[0].Pending())
		}
	}
}

// TestGroupCounterAggregation pins the Pending/Fired aggregation fix:
// grouped engines report group-wide sums equal to the sequential run at
// a mid-run cut with events still queued.
func TestGroupCounterAggregation(t *testing.T) {
	ref := newTraceSim(6, 0, 1, 60)
	const until = 40 * Nanosecond
	ref.run(until)
	wantPending, wantFired := ref.engs[0].Pending(), ref.engs[0].Fired()
	if wantPending == 0 {
		t.Fatal("test needs leftover pending events at the cut")
	}
	for _, shards := range []int{1, 3, 6} {
		got := newTraceSim(6, shards, 1, 60)
		got.run(until)
		if p := got.engs[0].Pending(); p != wantPending {
			t.Fatalf("shards=%d: Pending() = %d, want %d", shards, p, wantPending)
		}
		if f := got.engs[0].Fired(); f != wantFired {
			t.Fatalf("shards=%d: Fired() = %d, want %d", shards, f, wantFired)
		}
	}
}

// TestZeroLookaheadHorizonEdge pins the exact horizon edge case: with
// zero lookahead, a cross-shard post at precisely the posting event's
// own time (at == horizon) must still execute at that time, via the
// serialised-instant fallback, and same-instant cross-shard cascades
// must resolve within the instant.
func TestZeroLookaheadHorizonEdge(t *testing.T) {
	g := NewGroup(2)
	g.DeclareLookahead(0)
	var order []string
	var mu sync.Mutex
	note := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	a, b := g.Shard(0), g.Shard(1)
	a.Schedule(10, func() {
		note("a@10")
		// Exactly at the horizon: zero delay, cross-shard.
		a.PostTo(b, 10, func() {
			note("b@10")
			b.PostTo(a, 10, func() { note("a2@10") })
		})
	})
	b.Schedule(20, func() { note("b@20") })
	if fired := a.Run(MaxTime); fired != 4 {
		t.Fatalf("fired %d events, want 4", fired)
	}
	want := []string{"a@10", "b@10", "a2@10", "b@20"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if a.Now() != 20 || b.Now() != 20 {
		t.Fatalf("clocks a=%v b=%v, want 20 after drain", a.Now(), b.Now())
	}
}

// TestControlEngineSerialInstants checks that control events observe
// every shard parked at the same instant and may schedule onto shards
// with zero delay.
func TestControlEngineSerialInstants(t *testing.T) {
	g := NewGroup(3)
	g.DeclareLookahead(5)
	var got []Time
	for i := 0; i < g.Shards(); i++ {
		s := g.Shard(i)
		s.Schedule(Time(7+i), func() {})
	}
	ctl := g.Control()
	ctl.Schedule(50, func() {
		for i := 0; i < g.Shards(); i++ {
			got = append(got, g.Shard(i).Now())
			// Control may reach into any shard with zero delay.
			sh := g.Shard(i)
			sh.Schedule(50, func() {})
		}
	})
	ctl.Run(MaxTime)
	for i, at := range got {
		if at != 50 {
			t.Fatalf("shard %d clock at control instant = %v, want 50", i, at)
		}
	}
	if f := ctl.Fired(); f != 7 {
		t.Fatalf("fired %d, want 7 (3 shard + 1 control + 3 injected)", f)
	}
}

// TestGroupStepOrder checks single-stepping a group fires events in
// global time order with the control engine winning ties.
func TestGroupStepOrder(t *testing.T) {
	g := NewGroup(2)
	var order []string
	g.Shard(1).Schedule(5, func() { order = append(order, "s1@5") })
	g.Shard(0).Schedule(3, func() { order = append(order, "s0@3") })
	g.Control().Schedule(5, func() { order = append(order, "ctl@5") })
	eng := g.Shard(0)
	n := 0
	for eng.Step() {
		n++
	}
	if n != 3 {
		t.Fatalf("stepped %d events, want 3", n)
	}
	want := []string{"s0@3", "ctl@5", "s1@5"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestGroupStop checks Stop from inside a sharded event halts the whole
// group promptly, keeps pending events queued, and that a later Run
// resumes them.
func TestGroupStop(t *testing.T) {
	g := NewGroup(2)
	g.DeclareLookahead(1)
	eng := g.Shard(0)
	var after int
	eng.Schedule(10, func() { eng.Stop() })
	g.Shard(1).Schedule(1000, func() { after++ })
	eng.Run(MaxTime)
	if after != 0 {
		t.Fatal("event after Stop executed in the same run")
	}
	if p := eng.Pending(); p != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", p)
	}
	eng.Run(MaxTime)
	if after != 1 {
		t.Fatal("pending event did not survive Stop")
	}
}

// TestLocalEventCannotGoCross pins the event-class contract: a local
// event scheduling a comm event (or posting cross-shard) panics, because
// local events are invisible to the horizon computation and letting them
// emit communication would break the causality proof.
func TestLocalEventCannotGoCross(t *testing.T) {
	g := NewGroup(2)
	eng := g.Shard(0)
	eng.ScheduleLocal(1, func() {
		eng.After(1, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("local event scheduling a comm event did not panic")
		}
	}()
	eng.Step()
}

// TestWorkerPanicPropagates checks a panic inside a parallel-phase event
// re-raises on the Run caller, as it would on a sequential engine.
func TestWorkerPanicPropagates(t *testing.T) {
	g := NewGroup(2)
	g.DeclareLookahead(1)
	g.Shard(0).Schedule(5, func() {})
	g.Shard(1).Schedule(6, func() { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	g.Shard(0).Run(MaxTime)
}

// TestPostToOrderedCanonical checks that keyed posts from racing shards
// drain in key order, not in goroutine arrival order: two shards each
// post an ordered event to a third shard at the same virtual time from a
// parallel phase; the drained execution order must follow the keys
// (shard 2's key sorts first even though shard 1 posts "earlier" in
// index order).
func TestPostToOrderedCanonical(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		g := NewGroup(3)
		g.DeclareLookahead(10)
		var order []uint64
		dst := g.Shard(0)
		for i := 1; i < 3; i++ {
			src := g.Shard(i)
			key := uint64(3 - i) // shard 1 posts key 2, shard 2 posts key 1
			src.Schedule(5, func() {
				k := key
				src.PostToOrdered(dst, 100, OrderedKeyMin, k, func() {
					order = append(order, k)
				})
			})
		}
		dst.Run(MaxTime)
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("trial %d: drain order %v, want [1 2]", trial, order)
		}
	}
}

// TestGroupParallelismSmoke runs a trace workload at NumCPU shards under
// the race detector's eye (go test -race in CI) to shake out data races
// in the mailbox/barrier machinery.
func TestGroupParallelismSmoke(t *testing.T) {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 2
	}
	ref := newTraceSim(shards*2, 0, 2, 50)
	refFired := ref.run(MaxTime)
	got := newTraceSim(shards*2, shards, 2, 50)
	if f := got.run(MaxTime); f != refFired {
		t.Fatalf("NumCPU shards: fired %d, want %d", f, refFired)
	}
	sameTraces(t, ref.traces, got.traces, "NumCPU")
}
