// Sharded parallel execution for the discrete-event engine.
//
// A Group owns N data shards (each an ordinary Engine with its own
// arena-backed heap) plus one control engine, and runs them concurrently on
// worker goroutines while keeping per-seed results bit-identical to a
// sequential run. The synchronisation scheme is conservative parallel DES
// (Chandy–Misra–Bryant style) specialised to this codebase:
//
// Event classes. Every queued event carries a class:
//
//   - comm (the default, Schedule/After/PostTo): may interact with other
//     shards — send messages, post cross-shard events. Comm events are
//     tracked in a per-shard side heap so the group can compute each
//     shard's earliest future communication cheaply.
//   - local (ScheduleLocal/AfterLocal): promises to touch only its own
//     shard's state and to schedule only further local events there.
//     Local events are invisible to the horizon computation, which is
//     what lets a shard burn through its private event mass (page
//     faults, compute ticks) without dragging every other shard's
//     horizon down to the next tick instant.
//   - serial (any event on the Group's control engine): runs at a
//     single-threaded "instant" with all workers parked, and may touch
//     anything — every data shard's state, global coordinators, cluster
//     supervisors. This is the home for centralised components
//     (checkpoint coordinators, autonomic supervisors) that are not
//     worth parallelising but must observe a consistent global cut.
//
// Epoch protocol. The group repeatedly: drains the cross-shard mailboxes
// in canonical order, computes the per-shard causality horizon
//
//	H[s] = min( min_{s' != s} nextComm[s'] + L,  nextComm[s] + 2L,  nextControl )
//
// where L is the declared lookahead (the minimum virtual delay any comm
// event adds when posting to another shard — for the mpi layer, the link
// latency), and runs every shard's events strictly below its horizon in
// parallel. When no shard can make parallel progress (a control event is
// next, a zero-lookahead tie, a same-instant cross-shard cascade), the
// group falls back to executing one virtual instant serially, which is
// always safe and always makes progress. Safety of the parallel phase:
// any message chain that can reach shard s either starts on another
// shard s' — its first hop leaves a comm event at t >= nextComm[s'] and
// arrives at >= t + L >= H[s] — or starts on s itself and boomerangs,
// arriving back no earlier than nextComm[s] + 2L >= H[s] (one hop out,
// one hop back, each adding at least L). Events s executes strictly
// below H[s] therefore commute with everything still in flight.
//
// Mailboxes. Cross-shard posts made during a parallel phase are buffered
// in per-destination mailboxes and drained between phases in canonical
// (time, a, b) order, where (a, b) is (source shard + 1, per-source post
// sequence) for plain posts and a caller-supplied key >= OrderedKeyMin for
// PostToOrdered. The canonical key — never goroutine arrival order —
// decides the FIFO sequence numbers events receive on the destination
// heap, which is what makes the interleaving independent of GOMAXPROCS.
package des

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// controlShard is the Engine.shard index of a Group's control engine.
const controlShard = -1

// OrderedKeyMin is the smallest primary key callers may pass to
// PostToOrdered. Keys below it are reserved for plain PostTo entries
// (source shard + 1), so ordered posts always sort after plain posts at
// the same virtual time, deterministically.
const OrderedKeyMin uint64 = 1 << 32

// commNode is one entry of a shard's communication side-heap: the pending
// comm events ordered by time, used to compute the group horizon. Entries
// go stale when their event fires or is reaped (detected by generation
// mismatch); cancelled-but-unreaped events still count, which is merely
// conservative.
type commNode struct {
	at   Time
	slot int32
	gen  uint32
}

// mailEntry is one buffered cross-shard post, ordered by (at, a, b).
type mailEntry struct {
	at   Time
	a, b uint64
	fn   func()
}

type mailbox struct {
	mu      sync.Mutex
	entries []mailEntry
}

// phaseReq tells a parked worker to run its shard up to (bound, until).
type phaseReq struct {
	bound, until Time
}

// Group runs one control engine and n data shards as a single logical
// simulation. Construct with NewGroup, hand Shard(i) engines to per-rank
// components and Control() to centralised ones, then drive the whole
// group through any member engine's Run/Step — grouped engines delegate
// to the group scheduler.
//
// A Group is not safe for concurrent driving: call Run/Step from one
// goroutine only (the parallelism lives inside Run). Now/Pending/Fired on
// member engines are safe only between runs.
type Group struct {
	control *Engine
	shards  []*Engine

	lookahead    Time
	lookaheadSet bool

	boxes    []mailbox // index shard+1; boxes[0] is the control mailbox
	parallel atomic.Bool
	stopped  atomic.Bool
	running  bool

	work    []chan phaseReq
	wg      sync.WaitGroup
	counts  []uint64
	panics  []any // per-shard recovered panic values, re-raised by the driver
	started bool

	tops, comms, bounds []Time // scratch, driver-only
	busy                []int  // scratch: shards eligible this epoch

	// critPath accumulates the longest per-shard event chain: each
	// parallel epoch adds its busiest shard's count, serial execution
	// adds every event. firedTotal()/critPath is the run's available
	// concurrency — the speedup an unbounded host could realise.
	critPath uint64
}

// NewGroup creates a group with n data shards and one control engine.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("des: group needs at least one shard")
	}
	g := &Group{
		boxes:  make([]mailbox, n+1),
		counts: make([]uint64, n),
		panics: make([]any, n),
		tops:   make([]Time, n),
		comms:  make([]Time, n),
		bounds: make([]Time, n),
		busy:   make([]int, 0, n),
	}
	g.control = &Engine{group: g, shard: controlShard}
	g.shards = make([]*Engine, n)
	for i := range g.shards {
		g.shards[i] = &Engine{group: g, shard: i}
	}
	return g
}

// Shards reports the number of data shards.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns data shard i.
func (g *Group) Shard(i int) *Engine { return g.shards[i] }

// Control returns the group's control engine. Events scheduled on it run
// serially, with every data shard parked at the same virtual instant, and
// may safely touch any shard's state.
func (g *Group) Control() *Engine { return g.control }

// Group returns the group this engine belongs to, or nil for a
// standalone sequential engine.
func (e *Engine) Group() *Group { return e.group }

// Now reports the group's current virtual time: the maximum member
// clock, i.e. the instant of the most recently fired event (Run unifies
// all member clocks before returning; Step advances only the fired
// member's). Must not be called from inside a parallel phase.
func (g *Group) Now() Time { return g.maxNow() }

// DeclareLookahead records that every cross-shard PostTo made by the
// caller's subsystem carries at least d of virtual delay. The group's
// effective lookahead is the minimum declared by any subsystem (zero if
// none declared — always safe, never fast). Larger lookahead means wider
// parallel epochs.
func (g *Group) DeclareLookahead(d Time) {
	if d < 0 {
		panic("des: negative lookahead")
	}
	if !g.lookaheadSet || d < g.lookahead {
		g.lookahead = d
		g.lookaheadSet = true
	}
}

// Lookahead reports the effective group lookahead.
func (g *Group) Lookahead() Time {
	if !g.lookaheadSet {
		return 0
	}
	return g.lookahead
}

// engineAt maps a mailbox index back to its engine.
func (g *Group) engineAt(box int) *Engine {
	if box == 0 {
		return g.control
	}
	return g.shards[box-1]
}

// PostTo schedules fn at absolute time at on dst, which may live on
// another shard of the same group. During a parallel phase the post is
// buffered in dst's mailbox and delivered at the next epoch boundary in
// canonical order; outside parallel phases (sequential engines, serial
// instants, the driver between phases, dst being the posting engine
// itself) it is a direct schedule. The posted event is a comm event on
// dst.
//
// Contract: at must be at least the posting event's time plus the group
// lookahead when dst is a different shard (the mpi layer guarantees this
// — every cross-rank delay is at least the link latency). Violations that
// would rewind a destination shard panic at drain time.
func (e *Engine) PostTo(dst *Engine, at Time, fn func()) {
	e.postTo(dst, at, 0, 0, false, fn)
}

// PostToOrdered is PostTo with an explicit canonical ordering key. Posts
// buffered for the same destination and virtual time drain in ascending
// (a, b) order regardless of which goroutine posted first; a must be at
// least OrderedKeyMin. Use it when several shards race to emit logically
// simultaneous events (e.g. barrier releases keyed by (generation,
// rank)) whose order must not depend on host scheduling.
func (e *Engine) PostToOrdered(dst *Engine, at Time, a, b uint64, fn func()) {
	if a < OrderedKeyMin {
		panic("des: PostToOrdered key below OrderedKeyMin")
	}
	e.postTo(dst, at, a, b, true, fn)
}

func (e *Engine) postTo(dst *Engine, at Time, a, b uint64, keyed bool, fn func()) {
	if fn == nil {
		panic("des: post with nil callback")
	}
	g := e.group
	if g != nil && e.execLocal {
		panic("des: local event posted a cross-shard event; only comm events may PostTo")
	}
	if g == nil || dst.group != g || dst == e || !g.parallel.Load() {
		dst.schedule(at, fn, false)
		return
	}
	if !keyed {
		a = uint64(e.shard - controlShard) // shard+1; control posts as 0
		b = e.postSeq
		e.postSeq++
	}
	box := &g.boxes[dst.shard-controlShard]
	box.mu.Lock()
	box.entries = append(box.entries, mailEntry{at: at, a: a, b: b, fn: fn})
	box.mu.Unlock()
}

// drain empties every mailbox into its destination heap in canonical
// (time, a, b) order. Driver-only, called between phases with all workers
// parked.
func (g *Group) drain() {
	for i := range g.boxes {
		box := &g.boxes[i]
		if len(box.entries) == 0 {
			continue
		}
		ents := box.entries
		// Keys are unique per destination — plain posts by (src shard,
		// per-source sequence), ordered posts by caller contract — so the
		// order is total and an unstable sort is still deterministic.
		sort.Slice(ents, func(x, y int) bool {
			ex, ey := &ents[x], &ents[y]
			if ex.at != ey.at {
				return ex.at < ey.at
			}
			if ex.a != ey.a {
				return ex.a < ey.a
			}
			return ex.b < ey.b
		})
		dst := g.engineAt(i)
		for k := range ents {
			m := &ents[k]
			if m.at < dst.now {
				panic(fmt.Sprintf("des: cross-shard post at %v behind destination clock %v — lookahead contract violated", m.at, dst.now))
			}
			dst.schedule(m.at, m.fn, false)
			ents[k].fn = nil
		}
		box.entries = ents[:0]
	}
}

// topAlive reaps cancelled events off the top of e's heap and reports the
// time of the earliest live event, or MaxTime when empty.
func (e *Engine) topAlive() Time {
	for len(e.heap) > 0 {
		if e.slots[e.heap[0].slot].dead {
			d := e.pop()
			e.reap(d.slot)
			continue
		}
		return e.heap[0].at
	}
	return MaxTime
}

// nextCommTime reports the time of e's earliest pending comm event
// (MaxTime if none), popping stale side-heap entries as it goes.
func (e *Engine) nextCommTime() Time {
	for len(e.commHeap) > 0 {
		top := e.commHeap[0]
		if e.slots[top.slot].gen != top.gen {
			e.popComm()
			continue
		}
		return top.at
	}
	return MaxTime
}

// pushComm inserts a side-heap entry (binary min-heap by time).
func (e *Engine) pushComm(n commNode) {
	h := append(e.commHeap, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].at <= n.at {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = n
	e.commHeap = h
}

// popComm removes the minimum side-heap entry.
func (e *Engine) popComm() {
	h := e.commHeap
	last := len(h) - 1
	n := h[last]
	h = h[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && h[c+1].at < h[c].at {
				c++
			}
			if h[c].at >= n.at {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = n
	}
	e.commHeap = h
}

// fireTop pops and executes e's earliest live event, advancing the clock
// to its timestamp. The caller has established that the heap top is live.
func (e *Engine) fireTop() {
	top := e.pop()
	s := &e.slots[top.slot]
	fn := s.fn
	e.execLocal = s.local
	e.reap(top.slot)
	e.now = top.at
	e.fired++
	fn()
	e.execLocal = false
}

// runShard executes e's events with at < bound && at <= until, in order.
// Worker-side: runs concurrently with other shards' runShard calls, never
// with the driver.
func (e *Engine) runShard(bound, until Time, stopped *atomic.Bool) uint64 {
	var n uint64
	for {
		at := e.topAlive()
		if at >= bound || at > until {
			return n
		}
		e.fireTop()
		n++
		if stopped.Load() {
			return n
		}
	}
}

// satAdd returns a+b clamped to MaxTime (b non-negative).
func satAdd(a, b Time) Time {
	if a > MaxTime-b {
		return MaxTime
	}
	return a + b
}

// maxNow reports the latest per-engine clock in the group.
func (g *Group) maxNow() Time {
	t := g.control.now
	for _, s := range g.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// unifyNow advances every engine's clock to at least t.
func (g *Group) unifyNow(t Time) {
	if g.control.now < t {
		g.control.now = t
	}
	for _, s := range g.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// runInstant serialises one virtual instant: every engine's clock is set
// to t, then control events and data-shard events at exactly t execute
// single-threaded (control first, then shards in index order) until the
// instant produces no further work. Cross-shard posts made here insert
// directly, so same-instant cascades across shards resolve within the
// instant, exactly as a sequential engine would resolve them.
func (g *Group) runInstant(t Time) uint64 {
	g.unifyNow(t)
	var n uint64
	for {
		ran := false
		for g.control.topAlive() == t {
			g.control.fireTop()
			n++
			ran = true
			if g.stopped.Load() {
				return n
			}
		}
		for _, s := range g.shards {
			for s.topAlive() == t {
				s.fireTop()
				n++
				ran = true
				if g.stopped.Load() {
					return n
				}
			}
		}
		if !ran {
			return n
		}
	}
}

// startWorkers lazily spawns one parked goroutine per shard. Workers are
// reused across runs for the life of the group.
func (g *Group) startWorkers() {
	if g.started {
		return
	}
	g.started = true
	g.work = make([]chan phaseReq, len(g.shards))
	for i := range g.shards {
		ch := make(chan phaseReq)
		g.work[i] = ch
		s := g.shards[i]
		idx := i
		go func() {
			for req := range ch {
				func() {
					defer func() {
						if r := recover(); r != nil {
							g.panics[idx] = r
							g.stopped.Store(true)
						}
					}()
					g.counts[idx] = s.runShard(req.bound, req.until, &g.stopped)
				}()
				g.wg.Done()
			}
		}()
	}
}

// phase runs every busy shard concurrently up to its bound. g.busy lists
// the shards with work this epoch; idle shards are never dispatched. With
// a single busy shard — or a single-processor host, where worker
// round-trips cost latency and buy nothing — the driver runs the shards
// inline instead. Both paths keep parallel set for their duration, so
// cross-shard posts buffer into mailboxes and drain in canonical order
// regardless of which path executed the events.
func (g *Group) phase(until Time) uint64 {
	g.parallel.Store(true)
	if len(g.busy) == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Inline: a panicking event unwinds straight through Run, exactly
		// like a sequential engine.
		defer g.parallel.Store(false)
		var n, maxc uint64
		for _, i := range g.busy {
			c := g.shards[i].runShard(g.bounds[i], until, &g.stopped)
			n += c
			if c > maxc {
				maxc = c
			}
			if g.stopped.Load() {
				break
			}
		}
		g.critPath += maxc
		return n
	}
	g.wg.Add(len(g.busy))
	for _, i := range g.busy {
		g.work[i] <- phaseReq{bound: g.bounds[i], until: until}
	}
	g.wg.Wait()
	g.parallel.Store(false)
	for i, p := range g.panics {
		if p != nil {
			g.panics[i] = nil
			// Re-raise on the driver so a panicking event crashes Run the
			// same way it would on a sequential engine.
			panic(p)
		}
	}
	var n, maxc uint64
	for _, i := range g.busy {
		c := g.counts[i]
		n += c
		if c > maxc {
			maxc = c
		}
	}
	g.critPath += maxc
	return n
}

// run is the epoch driver behind Engine.Run for grouped engines.
func (g *Group) run(until Time) uint64 {
	if g.running {
		panic("des: nested Run on a sharded engine group")
	}
	g.running = true
	defer func() { g.running = false }()
	g.stopped.Store(false)
	g.startWorkers()
	L := g.Lookahead()
	var fired uint64
	for {
		g.drain()
		if g.stopped.Load() {
			break
		}
		ctop := g.control.topAlive()
		floor := ctop
		for i, s := range g.shards {
			t := s.topAlive()
			g.tops[i] = t
			if t < floor {
				floor = t
			}
		}
		if floor == MaxTime {
			// Fully drained: unify clocks at the global frontier, like a
			// sequential engine ending at its last executed event.
			g.unifyNow(g.maxNow())
			break
		}
		if floor > until {
			g.unifyNow(until)
			break
		}
		if ctop == floor {
			n := g.runInstant(floor)
			g.critPath += n
			fired += n
			continue
		}
		// Per-shard horizons: min over the *other* shards' next comm, via
		// the global min and second-min of the comm floors.
		min1, min2 := MaxTime, MaxTime
		argmin := -1
		for i, s := range g.shards {
			c := s.nextCommTime()
			g.comms[i] = c
			if c < min1 {
				min2 = min1
				min1 = c
				argmin = i
			} else if c < min2 {
				min2 = c
			}
		}
		g.busy = g.busy[:0]
		for i := range g.shards {
			other := min1
			if i == argmin {
				other = min2
			}
			bound := satAdd(other, L)
			// The boomerang term: s's own sends can come back after a
			// round trip, so s may not outrun its earliest send + 2L.
			if own := satAdd(g.comms[i], satAdd(L, L)); own < bound {
				bound = own
			}
			if ctop < bound {
				bound = ctop
			}
			g.bounds[i] = bound
			if g.tops[i] < bound && g.tops[i] <= until {
				g.busy = append(g.busy, i)
			}
		}
		if len(g.busy) == 0 {
			// Zero-lookahead tie or a same-instant cross-shard cascade:
			// serialise this instant and try again.
			n := g.runInstant(floor)
			g.critPath += n
			fired += n
			continue
		}
		fired += g.phase(until)
	}
	return fired
}

// step executes the single globally earliest pending event (control
// first on ties, then shards in index order), advancing that engine's
// clock. Driver-side single-threaded; cross-shard posts insert directly.
func (g *Group) step() bool {
	g.drain()
	best := g.control
	at := g.control.topAlive()
	for _, s := range g.shards {
		if t := s.topAlive(); t < at {
			at = t
			best = s
		}
	}
	if at == MaxTime {
		return false
	}
	best.fireTop()
	g.critPath++
	return true
}

// pending sums queued events across the group (between runs only).
func (g *Group) pending() int {
	n := len(g.control.heap)
	for _, s := range g.shards {
		n += len(s.heap)
	}
	for i := range g.boxes {
		n += len(g.boxes[i].entries)
	}
	return n
}

// firedTotal sums executed events across the group (between runs only).
func (g *Group) firedTotal() uint64 {
	n := g.control.fired
	for _, s := range g.shards {
		n += s.fired
	}
	return n
}

// CriticalPathEvents reports the length of the longest dependent event
// chain executed so far: serial instants count every event, parallel
// epochs count only their busiest shard's. Fired()/CriticalPathEvents()
// is the run's available concurrency — the parallel speedup an unbounded
// host could realise — and, unlike wall-clock, it is deterministic per
// seed and shard count. Read between runs only.
func (g *Group) CriticalPathEvents() uint64 { return g.critPath }
