package des

import (
	"container/heap"
	"math/rand/v2"
	"testing"
)

// TestZeroAllocScheduleStep pins the tentpole property of the arena
// engine: once the slot arena and heap have grown to the working-set
// size, Schedule and Step allocate nothing.
func TestZeroAllocScheduleStep(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm up: grow the arena and heap past the steady-state size.
	for i := 0; i < 256; i++ {
		eng.After(Time(i+1)*Microsecond, fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		eng.After(Microsecond, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step steady state allocates %v/op, want 0", allocs)
	}
}

// TestZeroAllocTicker pins the same property for the Ticker's re-arm
// path, which fires once per timeslice in every tracker.
func TestZeroAllocTicker(t *testing.T) {
	eng := NewEngine()
	tick := eng.NewTicker(Millisecond, func(Time) {})
	defer tick.Stop()
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { eng.Step() })
	if allocs != 0 {
		t.Fatalf("Ticker re-arm allocates %v/op, want 0", allocs)
	}
}

// TestZeroAllocCancel covers the cancel-then-reap slot recycling path.
func TestZeroAllocCancel(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(Time(i+1)*Microsecond, fn)
	}
	for eng.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := eng.After(Microsecond, fn)
		ev.Cancel()
		eng.Step() // pops the dead node, recycles the slot
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel+Step allocates %v/op, want 0", allocs)
	}
}

// Reference implementation: the pre-arena engine's binary heap over
// boxed events, via container/heap, with the same (time, seq) ordering
// contract. The property test below drives both implementations with an
// identical random schedule (including cancellations and re-entrant
// scheduling) and requires the exact same fire order.
type refEvent struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].seq < h[j].seq)
}
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestPropertyHeapOrderMatchesReference(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewPCG(0xbeef, uint64(trial)))

		eng := NewEngine()
		var gotOrder []int

		ref := &refHeap{}
		var refSeq uint64
		var wantOrder []int

		const n = 200
		events := make([]Event, n)
		refEvents := make([]*refEvent, n)
		// Identical schedule on both sides: same times, same insertion
		// order (so the FIFO tie-break keys agree).
		for i := 0; i < n; i++ {
			at := Time(rng.Int64N(50)) * Microsecond // heavy tie collisions
			id := i
			events[i] = eng.Schedule(at, func() { gotOrder = append(gotOrder, id) })
			re := &refEvent{at: at, seq: refSeq, id: id}
			refSeq++
			refEvents[i] = re
			heap.Push(ref, re)
		}
		// Cancel a random subset on both sides.
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				events[i].Cancel()
				refEvents[i].dead = true
			}
		}
		for eng.Step() {
		}
		for ref.Len() > 0 {
			re := heap.Pop(ref).(*refEvent)
			if !re.dead {
				wantOrder = append(wantOrder, re.id)
			}
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: fire order diverges at %d: got %d, want %d",
					trial, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// TestPropertyReentrantScheduling checks order equivalence when
// callbacks schedule new events mid-run — the common pattern in the
// simulator (tickers, bursts, drains).
func TestPropertyReentrantScheduling(t *testing.T) {
	run := func(seed uint64) []int {
		rng := rand.New(rand.NewPCG(seed, 42))
		eng := NewEngine()
		var order []int
		next := 0
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			id := next
			next++
			return func() {
				order = append(order, id)
				if depth < 3 {
					kids := int(rng.Int64N(3))
					for k := 0; k < kids; k++ {
						eng.After(Time(rng.Int64N(10)+1)*Microsecond, spawn(depth+1))
					}
				}
			}
		}
		for i := 0; i < 50; i++ {
			eng.After(Time(rng.Int64N(20)+1)*Microsecond, spawn(0))
		}
		for eng.Step() {
		}
		return order
	}
	for seed := uint64(1); seed <= 20; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: nondeterministic event count %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: nondeterministic order at %d", seed, i)
			}
		}
	}
}
