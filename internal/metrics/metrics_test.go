package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "iws"
	for i := 0; i < 5; i++ {
		s.Add(float64(i), float64(i*10))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	v := s.Values()
	if len(v) != 5 || v[3] != 30 {
		t.Fatalf("Values = %v", v)
	}
	after := s.After(2.5)
	if after.Len() != 2 || after.Points[0].T != 3 {
		t.Fatalf("After(2.5) = %+v", after.Points)
	}
	if got := s.After(100); got.Len() != 0 {
		t.Fatalf("After(100) kept %d points", got.Len())
	}
}

func TestSummarize(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(0, v)
	}
	m := Summarize(&s)
	if m.N != 5 || m.Min != 1 || m.Max != 5 || m.Sum != 14 {
		t.Fatalf("Summary = %+v", m)
	}
	if math.Abs(m.Mean-2.8) > 1e-12 {
		t.Fatalf("Mean = %v", m.Mean)
	}
	if Summarize(nil).N != 0 || Summarize(&Series{}).N != 0 {
		t.Fatal("empty summaries not zero")
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func sine(n int, period float64, noise float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/period)
		if noise > 0 {
			out[i] += noise * (rng.Float64() - 0.5)
		}
	}
	return out
}

func TestDetectPeriodSine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, period := range []float64{10, 25, 60} {
		got := DetectPeriod(sine(500, period, 0.5, rng), 1.0)
		if math.Abs(got-period) > period*0.15 {
			t.Errorf("period %.0f: detected %.1f", period, got)
		}
	}
}

func TestDetectPeriodPulseTrain(t *testing.T) {
	// Bursty signal like Fig 1a: tall pulses every 29 samples.
	n := 300
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%29 < 8 {
			vals[i] = 300
		}
	}
	got := DetectPeriod(vals, 1.0)
	if math.Abs(got-29) > 3 {
		t.Fatalf("pulse train: detected %.1f, want 29", got)
	}
}

func TestDetectPeriodHarmonicFolding(t *testing.T) {
	// A pure pulse train can correlate strongly at 2x the fundamental.
	n := 400
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%20 < 4 {
			vals[i] = 100
		}
	}
	got := DetectPeriod(vals, 0.5)
	if math.Abs(got-10.0) > 1.5 { // 20 samples * 0.5 dt
		t.Fatalf("detected %.2f, want 10.0", got)
	}
}

func TestDetectPeriodDegenerate(t *testing.T) {
	if DetectPeriod(nil, 1) != 0 {
		t.Fatal("nil input")
	}
	if DetectPeriod([]float64{1, 2, 3}, 1) != 0 {
		t.Fatal("too-short input")
	}
	if DetectPeriod(make([]float64, 100), 1) != 0 {
		t.Fatal("constant (zero) input")
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 42
	}
	if DetectPeriod(flat, 1) != 0 {
		t.Fatal("constant input")
	}
	rng := rand.New(rand.NewPCG(2, 2))
	noise := make([]float64, 200)
	for i := range noise {
		noise[i] = rng.Float64()
	}
	// White noise should usually not report a period; tolerate rare
	// spurious weak peaks by only requiring no *short* strong period.
	if p := DetectPeriod(noise, 1); p != 0 && p < 4 {
		t.Fatalf("white noise produced period %v", p)
	}
	if DetectPeriod(sine(100, 10, 0, rng), 0) != 0 {
		t.Fatal("dt=0 must return 0")
	}
}

func TestFindBursts(t *testing.T) {
	vals := []float64{0, 0, 10, 12, 11, 0, 0, 0, 9, 10, 0, 0}
	bursts := FindBursts(vals, 0.5, 2)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %+v", bursts)
	}
	if bursts[0].Start != 2 || bursts[0].End != 5 || bursts[0].Peak != 12 {
		t.Fatalf("burst[0] = %+v", bursts[0])
	}
	if bursts[1].Start != 8 || bursts[1].Duration() != 2 {
		t.Fatalf("burst[1] = %+v", bursts[1])
	}
	if bursts[0].Sum != 33 {
		t.Fatalf("burst[0].Sum = %v", bursts[0].Sum)
	}
}

func TestFindBurstsMergeGap(t *testing.T) {
	// Two sub-bursts separated by a 1-sample dip merge with minGap=3.
	vals := []float64{0, 10, 10, 0, 10, 10, 0, 0, 0, 0}
	bursts := FindBursts(vals, 0.5, 3)
	if len(bursts) != 1 {
		t.Fatalf("expected merged burst, got %+v", bursts)
	}
	if bursts[0].Start != 1 || bursts[0].End != 6 {
		t.Fatalf("merged burst = %+v", bursts[0])
	}
}

func TestFindBurstsTrailing(t *testing.T) {
	vals := []float64{0, 0, 5, 6, 7}
	bursts := FindBursts(vals, 0.5, 2)
	if len(bursts) != 1 || bursts[0].End != 5 {
		t.Fatalf("trailing burst = %+v", bursts)
	}
}

func TestFindBurstsEmpty(t *testing.T) {
	if FindBursts(nil, 0.5, 2) != nil {
		t.Fatal("nil input")
	}
	if FindBursts([]float64{0, 0, 0}, 0.5, 2) != nil {
		t.Fatal("all-zero input")
	}
}

func TestMeanBurstGap(t *testing.T) {
	bursts := []Burst{{Start: 10}, {Start: 40}, {Start: 68}}
	if got := MeanBurstGap(bursts); got != 29 {
		t.Fatalf("MeanBurstGap = %v", got)
	}
	if MeanBurstGap(bursts[:1]) != 0 {
		t.Fatal("single burst must yield 0")
	}
}

// Property: Summarize bounds — Min <= Mean <= Max, Sum == Mean*N.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(vals []float64) bool {
		finite := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				finite = append(finite, v)
			}
		}
		if len(finite) == 0 {
			return true
		}
		var s Series
		for _, v := range finite {
			s.Add(0, v)
		}
		m := Summarize(&s)
		if m.Min > m.Mean+1e-9 || m.Mean > m.Max+1e-9 {
			return false
		}
		return math.Abs(m.Sum-m.Mean*float64(m.N)) < 1e-6*(1+math.Abs(m.Sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DetectPeriod recovers the period of random noisy sinusoids
// within 20%.
func TestPropertyDetectPeriodSine(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		period := float64(rng.IntN(40) + 8)
		vals := sine(12*int(period), period, 1.0, rng)
		got := DetectPeriod(vals, 1.0)
		return math.Abs(got-period) <= 0.2*period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every burst's samples exceed the threshold at its edges, and
// bursts are ordered and disjoint.
func TestPropertyBurstInvariants(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		vals := make([]float64, int(n)+10)
		for i := range vals {
			if rng.IntN(3) == 0 {
				vals[i] = rng.Float64() * 100
			}
		}
		bursts := FindBursts(vals, 0.5, 1)
		prevEnd := -1
		for _, b := range bursts {
			if b.Start <= prevEnd || b.End <= b.Start || b.End > len(vals) {
				return false
			}
			prevEnd = b.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDetectPeriod(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	vals := sine(1000, 145, 2, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectPeriod(vals, 1.0)
	}
}

func TestDetectPeriodMin(t *testing.T) {
	// Signal with a strong 3-sample aliasing component and a true
	// 24-sample envelope.
	n := 480
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		env := 0.0
		if i%24 < 16 {
			env = 100
		}
		spike := 0.0
		if i%3 == 0 {
			spike = 60
		}
		vals[i] = env + spike
	}
	// Unconstrained detection may lock onto the 3-sample component.
	if p := DetectPeriod(vals, 1.0); p > 20 {
		t.Logf("unconstrained detection already found the envelope: %v", p)
	}
	got := DetectPeriodMin(vals, 1.0, 8)
	if math.Abs(got-24) > 3 {
		t.Fatalf("DetectPeriodMin = %v, want ~24", got)
	}
	// minPeriod longer than any real periodicity: nothing to report
	// above the threshold at those lags... the envelope repeats at 24,
	// 48, ...; minPeriod 30 should find 48.
	if p := DetectPeriodMin(vals, 1.0, 30); math.Abs(p-48) > 5 {
		t.Fatalf("harmonic above floor = %v, want ~48", p)
	}
}
