// Package metrics provides the time-series tooling the experiments use to
// turn raw tracker samples into the paper's reported quantities: max/avg
// summaries with the initialization burst excluded (§6.3), main-iteration
// period detection (Table 3), and processing-burst segmentation (§6.2).
package metrics

import (
	"fmt"
	"math"
)

// Point is one sample of a time series: a value observed at time T
// (virtual seconds).
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series with a name for reporting.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the sample values in order (a fresh slice).
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// After returns the sub-series with T >= t0, sharing the backing array.
// The paper excludes the data-initialization burst this way (§6.3).
func (s *Series) After(t0 float64) *Series {
	i := 0
	for i < len(s.Points) && s.Points[i].T < t0 {
		i++
	}
	return &Series{Name: s.Name, Points: s.Points[i:]}
}

// Summary aggregates a series.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Sum  float64
}

// String formats the summary compactly.
func (m Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f max=%.2f mean=%.2f", m.N, m.Min, m.Max, m.Mean)
}

// Summarize computes min/max/mean over the series.
// An empty series yields the zero Summary.
func Summarize(s *Series) Summary {
	if s == nil || len(s.Points) == 0 {
		return Summary{}
	}
	m := Summary{N: len(s.Points), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, p := range s.Points {
		m.Sum += p.V
		m.Min = math.Min(m.Min, p.V)
		m.Max = math.Max(m.Max, p.V)
	}
	m.Mean = m.Sum / float64(m.N)
	return m
}

// DetectPeriod estimates the dominant period of a uniformly sampled signal
// using normalized autocorrelation, returning the period in the same time
// unit as dt (the sample spacing). It returns 0 when no credible
// periodicity is found (fewer than two full cycles in the data, or a peak
// correlation below threshold).
//
// Harmonic correction: if the autocorrelation at half the winning lag is
// nearly as strong, the half-lag is preferred, so the estimator reports the
// fundamental rather than a multiple. This mirrors how the paper reads the
// gap between processing bursts off the IWS trace (Table 3).
func DetectPeriod(values []float64, dt float64) float64 {
	return DetectPeriodMin(values, dt, 0)
}

// DetectPeriodMin is DetectPeriod with a lower bound on the period it
// will report. Sampling near the generator's own event granularity can
// create short-lag aliasing peaks; a minimum period excludes them.
func DetectPeriodMin(values []float64, dt, minPeriod float64) float64 {
	n := len(values)
	if n < 8 || dt <= 0 {
		return 0
	}
	minLag := 2
	if minPeriod > 0 {
		if l := int(minPeriod / dt); l > minLag {
			minLag = l
		}
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	dev := make([]float64, n)
	var energy float64
	for i, v := range values {
		dev[i] = v - mean
		energy += dev[i] * dev[i]
	}
	if energy == 0 {
		return 0 // constant signal has no period
	}
	maxLag := n / 2
	ac := make([]float64, maxLag+1)
	for lag := 1; lag <= maxLag; lag++ {
		var sum float64
		for i := 0; i+lag < n; i++ {
			sum += dev[i] * dev[i+lag]
		}
		// Normalize by the number of terms so long lags are comparable.
		ac[lag] = sum / float64(n-lag) / (energy / float64(n))
	}
	// The fundamental is the first prominent local maximum: harmonics at
	// 2x, 3x, ... the fundamental lag correlate comparably, so taking the
	// global maximum would often report a multiple of the true period.
	const threshold = 0.25
	var global float64
	for lag := minLag; lag < maxLag; lag++ {
		global = math.Max(global, ac[lag])
	}
	if global < threshold {
		return 0
	}
	prominent := math.Max(threshold, 0.6*global)
	for lag := minLag; lag < maxLag; lag++ {
		if ac[lag] >= prominent && ac[lag] >= ac[lag-1] && ac[lag] >= ac[lag+1] {
			// Refine within a small neighbourhood in case the true
			// peak is a sample away from where prominence was met.
			best, bestVal := lag, ac[lag]
			for l := lag + 1; l <= min(maxLag, lag+2); l++ {
				if ac[l] > bestVal {
					best, bestVal = l, ac[l]
				}
			}
			return float64(best) * dt
		}
	}
	return 0
}

// Burst is a contiguous run of samples above a threshold.
type Burst struct {
	Start int // index of first sample in the burst
	End   int // index one past the last sample
	Peak  float64
	Sum   float64
}

// Duration returns the burst length in samples.
func (b Burst) Duration() int { return b.End - b.Start }

// FindBursts segments values into bursts: maximal runs where the value
// exceeds frac times the series maximum. Adjacent bursts separated by
// fewer than minGap samples are merged, which keeps the multi-kernel
// sub-bursts of one Sage iteration (§6.2) as a single processing burst.
func FindBursts(values []float64, frac float64, minGap int) []Burst {
	var peak float64
	for _, v := range values {
		peak = math.Max(peak, v)
	}
	if peak <= 0 {
		return nil
	}
	thr := frac * peak
	var bursts []Burst
	in := false
	var cur Burst
	flush := func(end int) {
		cur.End = end
		bursts = append(bursts, cur)
		in = false
	}
	gap := 0
	for i, v := range values {
		switch {
		case v > thr && !in:
			cur = Burst{Start: i, Peak: v, Sum: v}
			in = true
			gap = 0
		case v > thr && in:
			cur.Peak = math.Max(cur.Peak, v)
			cur.Sum += v
			gap = 0
		case v <= thr && in:
			gap++
			if gap >= minGap {
				flush(i - gap + 1)
			}
		}
	}
	if in {
		flush(len(values) - gap)
	}
	return bursts
}

// MeanBurstGap returns the mean distance (in samples) between the starts
// of consecutive bursts — an alternative period estimate used to
// cross-check DetectPeriod.
func MeanBurstGap(bursts []Burst) float64 {
	if len(bursts) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(bursts); i++ {
		sum += float64(bursts[i].Start - bursts[i-1].Start)
	}
	return sum / float64(len(bursts)-1)
}
