package experiments

import (
	"strings"
	"testing"
)

// TestCkptSetAblation is A19's acceptance gate: analysis-selected
// protection must checkpoint strictly fewer bytes than whole-data
// protection on at least two kernels, and every cell — both modes, all
// kernels — must replay bit-exact through a mid-run crash.
func TestCkptSetAblation(t *testing.T) {
	rows, err := CkptSetAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 kernels x 2 modes)", len(rows))
	}
	whole := map[string]CkptSetRow{}
	spec := map[string]CkptSetRow{}
	for _, r := range rows {
		if !r.BitExact {
			t.Errorf("%s/%s replay is not bit-exact", r.Kernel, r.Mode)
		}
		switch r.Mode {
		case "whole":
			whole[r.Kernel] = r
		case "spec":
			spec[r.Kernel] = r
		default:
			t.Errorf("unknown mode %q", r.Mode)
		}
	}
	saved := 0
	for k, w := range whole {
		s, ok := spec[k]
		if !ok {
			t.Fatalf("no spec row for %s", k)
		}
		if w.TotalKB <= 0 {
			t.Errorf("%s: whole mode captured nothing", k)
		}
		if s.TotalKB > w.TotalKB {
			t.Errorf("%s: spec mode captured MORE (%.1f KB > %.1f KB)", k, s.TotalKB, w.TotalKB)
		}
		if s.TotalKB < w.TotalKB {
			saved++
		}
		if w.Excluded != 0 {
			t.Errorf("%s: whole mode excluded %d regions", k, w.Excluded)
		}
		if s.Excluded == 0 {
			t.Errorf("%s: spec mode excluded nothing", k)
		}
		if s.MeanIWSPages > w.MeanIWSPages {
			t.Errorf("%s: spec IWS grew (%.1f > %.1f pages)", k, s.MeanIWSPages, w.MeanIWSPages)
		}
	}
	if saved < 2 {
		t.Errorf("spec saved bytes on %d kernels, want >= 2", saved)
	}
	out := FormatCkptSet(rows)
	for _, want := range []string{"kernel", "stencil", "fft", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCkptSet missing %q:\n%s", want, out)
		}
	}
}
