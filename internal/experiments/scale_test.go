package experiments

import (
	"testing"

	"repro/internal/workload"
)

func TestRankSymmetry(t *testing.T) {
	res, err := RankSymmetry(workload.SP(), RunOpts{Ranks: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 8 || len(res.PerRankAvg) != 8 {
		t.Fatalf("ranks: %+v", res)
	}
	// §6.1's premise: per-rank behaviour is near-identical. Allow 10%.
	if res.MaxSpread > 0.10 {
		t.Fatalf("per-rank spread %.1f%% breaks the bulk-synchronous premise: %v",
			res.MaxSpread*100, res.PerRankAvg)
	}
	// And the mean matches the single-rank measurement (Table 4: 32.6).
	if res.MeanMBs < 25 || res.MeanMBs > 40 {
		t.Fatalf("mean per-rank IB = %.1f", res.MeanMBs)
	}
}

func TestAggregateFeasibility(t *testing.T) {
	rows, err := AggregateFeasibility(workload.Sage1000MB(), RunOpts{Ranks: 4, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[3].Ranks != 65536 {
		t.Fatalf("rows: %+v", rows)
	}
	for i, r := range rows {
		// Per-node disks stay feasible at any scale — the paper's
		// scalability argument.
		if !r.PerNodeFeasible {
			t.Errorf("per-node disks infeasible at %d ranks", r.Ranks)
		}
		if i > 0 && r.AggregateGBs <= rows[i-1].AggregateGBs {
			t.Error("aggregate stream must grow with ranks")
		}
	}
	// BlueGene/L scale: ~80 MB/s x 65536 = several TB/s aggregate.
	if rows[3].AggregateGBs < 3000 || rows[3].AggregateGBs > 9000 {
		t.Errorf("aggregate at 65536 ranks = %.0f GB/s, want several thousand", rows[3].AggregateGBs)
	}
}
