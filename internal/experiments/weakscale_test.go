package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestShardedRunConcurrency pins the deterministic half of A20: a
// sharded run fires the identical event set as the sequential engine,
// and its available concurrency (events over the critical path) clears
// the 2x that a multi-core host converts into wall-clock speedup.
func TestShardedRunConcurrency(t *testing.T) {
	seq, err := RunOne(workload.Sweep3D(), RunOpts{Ranks: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := RunOne(workload.Sweep3D(), RunOpts{Ranks: 16, Seed: 7, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Events != seq.Events {
		t.Fatalf("sharded fired %d events, sequential %d", sh.Events, seq.Events)
	}
	if seq.CritPathEvents != seq.Events {
		t.Fatalf("sequential critical path %d != events %d", seq.CritPathEvents, seq.Events)
	}
	if got, want := sh.IBSummary(), seq.IBSummary(); got != want {
		t.Fatalf("IB summary diverged: sharded %+v, sequential %+v", got, want)
	}
	conc := float64(sh.Events) / float64(sh.CritPathEvents)
	if conc < 2 {
		t.Fatalf("available concurrency %.2fx at 8 shards, want >= 2x (critical path %d of %d events)",
			conc, sh.CritPathEvents, sh.Events)
	}
}

func TestScalingTable(t *testing.T) {
	rows, err := ScalingTable([]workload.Spec{workload.Sweep3D()},
		RunOpts{Ranks: 8, Seed: 7}, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Shards != 0 || rows[1].Shards != 8 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[1].Events != rows[0].Events {
		t.Fatalf("event counts diverged: %d vs %d", rows[1].Events, rows[0].Events)
	}
	if rows[0].Concurrency != 1 {
		t.Fatalf("sequential concurrency = %.2f, want 1", rows[0].Concurrency)
	}
	if rows[1].Concurrency < 2 {
		t.Fatalf("8-shard concurrency = %.2f, want >= 2", rows[1].Concurrency)
	}
	for _, r := range rows {
		if r.WallNsPerRun <= 0 || r.EventsPerSec <= 0 {
			t.Fatalf("missing wall-clock measurement: %+v", r)
		}
	}
	out := FormatScaling(rows)
	for _, col := range []string{"app", "shards", "events/sec", "speedup", "concurrency"} {
		if !strings.Contains(out, col) {
			t.Fatalf("FormatScaling missing %q column:\n%s", col, out)
		}
	}
}

func TestScalingTableRejectsMissingBaseline(t *testing.T) {
	if _, err := ScalingTable(nil, RunOpts{}, []int{1, 8}); err == nil {
		t.Fatal("want error for shardCounts without the sequential baseline")
	}
}
