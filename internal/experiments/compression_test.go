package experiments

import (
	"strings"
	"testing"
)

func TestCompressionAblation(t *testing.T) {
	rows, err := CompressionAblation(64, 18, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]CompressionRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	plain := byName["plain"]
	if plain.PageBytesMB <= 0 || plain.PersistedMB <= 0 {
		t.Fatalf("plain volumes: %+v", plain)
	}
	// Raw dirty volume is configuration-independent (same computation).
	for _, r := range rows {
		if r.PageBytesMB < plain.PageBytesMB*0.99 || r.PageBytesMB > plain.PageBytesMB*1.01 {
			t.Errorf("%s raw volume %f differs from plain %f", r.Config, r.PageBytesMB, plain.PageBytesMB)
		}
	}
	// Each optimisation must save something; both together the most.
	if byName["compress"].PersistedMB >= plain.PersistedMB {
		t.Error("compression saved nothing")
	}
	if byName["dedup"].PersistedMB >= plain.PersistedMB {
		t.Error("dedup saved nothing")
	}
	if byName["dedup"].DedupSkipped == 0 {
		t.Error("no deduplicated pages on a double-buffered stencil")
	}
	both := byName["compress+dedup"]
	if both.PersistedMB > byName["compress"].PersistedMB || both.PersistedMB > byName["dedup"].PersistedMB {
		t.Errorf("combined config not the smallest: %+v", rows)
	}
	if both.Savings <= 0.05 {
		t.Errorf("combined savings only %.1f%%", both.Savings*100)
	}
	out := FormatCompression(rows)
	if !strings.Contains(out, "compress+dedup") {
		t.Error("FormatCompression output incomplete")
	}
}

func TestCompressionAblationDefaults(t *testing.T) {
	rows, err := CompressionAblation(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("defaults: %d rows", len(rows))
	}
}
