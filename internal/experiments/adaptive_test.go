package experiments

import (
	"strings"
	"testing"

	"repro/internal/des"
)

func TestAdaptiveAlignment(t *testing.T) {
	rows, err := AdaptiveAlignment(RunOpts{Ranks: 4, Seed: 7, Periods: 3}, 45*des.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fixed, adapt := rows[0], rows[1]
	// Comparable cadence: within ~40% of each other's checkpoint count
	// (deferral stretches the adaptive cadence a little).
	if adapt.Checkpoints == 0 || fixed.Checkpoints == 0 {
		t.Fatalf("no checkpoints: %+v", rows)
	}
	ratio := float64(adapt.Checkpoints) / float64(fixed.Checkpoints)
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("cadences diverged: %d vs %d", adapt.Checkpoints, fixed.Checkpoints)
	}
	// The headline: aligning into quiet windows slashes CoW traffic.
	if adapt.CowMB > fixed.CowMB*0.4 {
		t.Fatalf("adaptive CoW %.1f MB not well below fixed %.1f MB", adapt.CowMB, fixed.CowMB)
	}
	// Adaptive triggers land predominantly in quiet slices.
	if adapt.QuietShare < 0.9 {
		t.Fatalf("quiet share %.2f too low", adapt.QuietShare)
	}
	if fixed.QuietShare != -1 {
		t.Fatal("fixed policy should report n/a quiet share")
	}
	out := FormatAdaptive(rows)
	if !strings.Contains(out, "quiet-window aligned") || !strings.Contains(out, "n/a") {
		t.Error("FormatAdaptive output incomplete")
	}
}

func TestBurstProfile(t *testing.T) {
	rows, err := BurstProfile(testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Every application is periodic (§6.2)...
		if r.DetectedPeriodS <= 0 {
			t.Errorf("%s: no period detected", r.App)
		}
		// ...with several bursts in the window and real quiet windows.
		if r.Bursts < 3 {
			t.Errorf("%s: only %d bursts", r.App, r.Bursts)
		}
		if r.DutyCycle <= 0 || r.DutyCycle >= 1 {
			t.Errorf("%s: duty cycle %.2f", r.App, r.DutyCycle)
		}
		if r.QuietFrac <= 0.02 {
			t.Errorf("%s: quiet fraction %.2f — nowhere to checkpoint", r.App, r.QuietFrac)
		}
	}
	if FormatBursts(rows) == "" {
		t.Error("empty format")
	}
}
